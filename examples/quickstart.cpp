/**
 * @file
 * Quickstart: assemble a small hard real-time task, execute it on both
 * the explicitly-safe simple-fixed pipeline and the complex
 * out-of-order pipeline, bound it with the static WCET analyzer, and
 * print the numbers the VISA framework is built on.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "isa/assembler.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "wcet/analyzer.hh"

using namespace visa;

namespace
{

// A toy sensor-filter task: scale an input vector, accumulate, and
// publish a checksum. Three sub-tasks, loop bounds annotated for the
// timing analyzer.
const char *taskSource = R"(
        .subtask 1
        la   r4, input
        la   r5, output
        addi r6, r0, 64         # elements
        addi r7, r0, 3          # gain
loop1:  lw   r8, 0(r4)
        mul  r8, r8, r7
        sw   r8, 0(r5)
        addi r4, r4, 4
        addi r5, r5, 4
        subi r6, r6, 1
        .loopbound 64
        bgtz r6, loop1

        .subtask 2
        la   r5, output
        addi r6, r0, 64
        addi r9, r0, 0
loop2:  lw   r8, 0(r5)
        add  r9, r9, r8
        addi r5, r5, 4
        subi r6, r6, 1
        .loopbound 64
        bgtz r6, loop2

        .subtask 3
        li   r10, 0xFFFF0018    # checksum MMIO port
        sw   r9, 0(r10)
        halt

        .data
input:  .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
        .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
        .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
        .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
output: .space 256
wdinc:  .space 12
)";

template <typename CpuT>
std::pair<Cycles, Word>
runOn(const Program &prog)
{
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    mem.loadProgram(prog);
    CpuT cpu(prog, mem, platform, memctrl);
    cpu.resetForTask();
    cpu.run();
    return {cpu.cycles(), platform.lastChecksum()};
}

} // anonymous namespace

int
main()
{
    std::printf("== VISA quickstart ==\n\n");

    Program prog = assemble(taskSource);
    std::printf("assembled %zu instructions, %d sub-tasks\n",
                prog.size(), static_cast<int>(prog.subtaskStarts.size()));

    auto [simple_cycles, simple_ck] = runOn<SimpleCpu>(prog);
    auto [complex_cycles, complex_ck] = runOn<OooCpu>(prog);
    std::printf("simple-fixed pipeline: %8llu cycles (checksum 0x%x)\n",
                static_cast<unsigned long long>(simple_cycles),
                simple_ck);
    std::printf("complex OOO pipeline:  %8llu cycles (checksum 0x%x)\n",
                static_cast<unsigned long long>(complex_cycles),
                complex_ck);
    std::printf("speedup from ILP:      %.2fx\n\n",
                static_cast<double>(simple_cycles) /
                    static_cast<double>(complex_cycles));

    // Static worst-case timing analysis on the VISA (paper §3.3).
    WcetAnalyzer analyzer(prog);
    DMissProfile dmiss = profileDataMisses(prog);
    for (MHz f : {1000u, 500u, 100u}) {
        WcetReport rep = analyzer.analyze(f, &dmiss);
        std::printf("WCET @ %4u MHz: %llu cycles = %.2f us  (sub-tasks:",
                    f, static_cast<unsigned long long>(rep.taskCycles),
                    rep.taskMicros());
        for (Cycles c : rep.subtaskCycles)
            std::printf(" %llu", static_cast<unsigned long long>(c));
        std::printf(")\n");
    }

    WcetReport rep = analyzer.analyze(1000, &dmiss);
    std::printf("\nsafety check: WCET(%llu) >= actual simple (%llu): %s\n",
                static_cast<unsigned long long>(rep.taskCycles),
                static_cast<unsigned long long>(simple_cycles),
                rep.taskCycles >= simple_cycles ? "OK" : "VIOLATION");
    return rep.taskCycles >= simple_cycles &&
                   simple_ck == complex_ck
               ? 0
               : 1;
}
