/**
 * @file
 * Conventional concurrency (paper §1.1): the complex processor's
 * earlier completions leave slack in every period, and a background
 * non-real-time task runs in it — safely, because the hard task's
 * deadlines are still protected by the VISA checkpoints. Compares the
 * background throughput unlocked by the complex processor against the
 * explicitly-safe one.
 *
 *   $ ./examples/concurrency [benchmark] [periods]   (default: fft 25)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/concurrency.hh"
#include "isa/assembler.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

using namespace visa;

namespace
{

// The background task: a compression-ish byte scan over a buffer.
const char *backgroundSource = R"(
        la   r4, bgbuf
        addi r5, r0, 256
        addi r6, r0, 0
bg:     lbu  r7, 0(r4)
        xor  r6, r6, r7
        sll  r6, r6, 1
        addi r4, r4, 1
        subi r5, r5, 1
        .loopbound 256
        bgtz r5, bg
        halt
        .data
bgbuf:  .space 256
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "fft";
    int periods = argc > 2 ? std::atoi(argv[2]) : 25;

    Workload wl = makeWorkload(name);
    WcetAnalyzer analyzer(wl.program);
    DMissProfile dmiss = profileDataMisses(wl.program);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs, &dmiss);
    Program bg = assemble(backgroundSource);

    RuntimeConfig cfg;
    cfg.deadlineSeconds = wcet.taskSeconds(700);
    cfg.ovhdSeconds = 2e-6;
    std::printf("== conventional concurrency on '%s': period %.1f us, "
                "%d periods ==\n\n",
                name.c_str(), cfg.deadlineSeconds * 1e6, periods);

    auto run = [&](bool use_complex) {
        MainMemory mem;
        Platform plat;
        MemController mc;
        mem.loadProgram(wl.program);
        BackgroundStats bgstats;
        int dl_misses = 0;
        if (use_complex) {
            OooCpu cpu(wl.program, mem, plat, mc);
            VisaComplexRuntime rt(cpu, wl.program, mem, wcet, dvs, cfg);
            rt.pets().seed(profileComplexAets(wl.program,
                                              wl.numSubtasks));
            SlackScheduler sched(rt, bg, dvs);
            for (int p = 0; p < periods; ++p)
                sched.runPeriod();
            bgstats = sched.background();
            dl_misses = rt.stats().deadlineMisses;
        } else {
            SimpleCpu cpu(wl.program, mem, plat, mc);
            SimpleFixedRuntime rt(cpu, wl.program, mem, wcet, dvs, cfg);
            SlackScheduler sched(rt, bg, dvs);
            for (int p = 0; p < periods; ++p)
                sched.runPeriod();
            bgstats = sched.background();
            dl_misses = rt.stats().deadlineMisses;
        }
        std::printf("%-13s slack %8.1f us | background: %8llu insts, "
                    "%4d completions | hard deadline misses: %d\n",
                    use_complex ? "complex:" : "simple-fixed:",
                    bgstats.slackSeconds * 1e6,
                    static_cast<unsigned long long>(
                        bgstats.instructionsRetired),
                    bgstats.completions, dl_misses);
        return bgstats.instructionsRetired;
    };

    auto c = run(true);
    auto s = run(false);
    std::printf("\nbackground throughput unlocked by the VISA-compliant"
                " complex processor: %.2fx\n",
                s ? static_cast<double>(c) / static_cast<double>(s)
                  : 0.0);
    return 0;
}
