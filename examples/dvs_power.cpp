/**
 * @file
 * The full §4 pipeline on one benchmark: frequency speculation (EQ 4)
 * on the VISA-compliant complex processor vs the explicitly-safe
 * simple-fixed processor, with power metering — a miniature of the
 * Figure 2 experiment with a per-task trace.
 *
 *   $ ./examples/dvs_power [benchmark] [tasks]   (default: mm 20)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/runtime.hh"
#include "power/meter.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

using namespace visa;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mm";
    int tasks = argc > 2 ? std::atoi(argv[2]) : 20;

    Workload wl = makeWorkload(name);
    WcetAnalyzer analyzer(wl.program);
    DMissProfile dmiss = profileDataMisses(wl.program);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs, &dmiss);

    // A deadline around the 700 MHz operating point of simple-fixed.
    RuntimeConfig cfg;
    cfg.deadlineSeconds = wcet.taskSeconds(700);
    cfg.ovhdSeconds = 2e-6;
    cfg.dvsSoftwareCycles = 500;
    cfg.drainBudgetCycles = 512;
    std::printf("== DVS on '%s': deadline %.1f us, %d tasks ==\n\n",
                name.c_str(), cfg.deadlineSeconds * 1e6, tasks);

    // --- the VISA-compliant complex processor ---
    MainMemory cmem;
    Platform cplat;
    MemController cmc;
    cmem.loadProgram(wl.program);
    OooCpu ooo(wl.program, cmem, cplat, cmc);
    VisaComplexRuntime crt(ooo, wl.program, cmem, wcet, dvs, cfg);
    crt.pets().seed(profileComplexAets(wl.program, wl.numSubtasks));
    PowerMeter cmeter(ooo, complexEnergyModel(), dvs,
                      ClockGating::Perfect);
    crt.attachMeter(&cmeter);

    std::printf("complex (EQ 4 speculation):\n");
    for (int t = 0; t < tasks; ++t) {
        TaskStats ts = crt.runTask();
        if (t < 5 || t == tasks - 1 || ts.missedCheckpoint) {
            std::printf("  task %2d: f_spec=%4u f_rec=%4u done=%6.1fus"
                        " %s%s\n",
                        t, ts.fSpec, ts.fRec,
                        ts.completionSeconds * 1e6,
                        ts.deadlineMet ? "met" : "MISSED-DEADLINE",
                        ts.missedCheckpoint ? " [checkpoint miss]" : "");
        }
    }

    // --- the explicitly-safe simple-fixed processor ---
    MainMemory smem;
    Platform splat;
    MemController smc;
    smem.loadProgram(wl.program);
    SimpleCpu simple(wl.program, smem, splat, smc);
    SimpleFixedRuntime srt(simple, wl.program, smem, wcet, dvs, cfg);
    PowerMeter smeter(simple, simpleFixedEnergyModel(), dvs,
                      ClockGating::Perfect);
    srt.attachMeter(&smeter);

    std::printf("\nsimple-fixed (EQ 2 when beneficial):\n");
    for (int t = 0; t < tasks; ++t) {
        TaskStats ts = srt.runTask();
        if (t < 5 || t == tasks - 1) {
            std::printf("  task %2d: f=%4u (%s) done=%6.1fus %s\n", t,
                        ts.fSpec,
                        ts.speculating ? "speculating" : "static",
                        ts.completionSeconds * 1e6,
                        ts.deadlineMet ? "met" : "MISSED-DEADLINE");
        }
    }

    // Where the complex processor's energy goes (Wattch-style
    // breakdown across all epochs).
    std::printf("\ncomplex energy breakdown:\n");
    std::printf("  %-12s %8.1f%%\n", "clock",
                100.0 * cmeter.clockEnergyJoules() /
                    cmeter.totalEnergyJoules());
    for (int u = 0; u < numUnits; ++u) {
        double j = cmeter.unitEnergyJoules(static_cast<Unit>(u));
        if (j / cmeter.totalEnergyJoules() > 0.001) {
            std::printf("  %-12s %8.1f%%\n",
                        unitName(static_cast<Unit>(u)),
                        100.0 * j / cmeter.totalEnergyJoules());
        }
    }

    double pc = cmeter.averagePowerWatts();
    double ps = smeter.averagePowerWatts();
    std::printf("\naverage power: complex %.3f W, simple-fixed %.3f W "
                "-> %.1f%% savings\n",
                pc, ps, 100.0 * (1.0 - pc / ps));
    std::printf("deadline misses: complex %d, simple-fixed %d "
                "(safety requires 0)\n",
                crt.stats().deadlineMisses, srt.stats().deadlineMisses);
    return crt.stats().deadlineMisses + srt.stats().deadlineMisses == 0
               ? 0
               : 1;
}
