/**
 * @file
 * The static timing-analysis toolset of paper Figure 1, end to end:
 * control-flow construction, loop bounds, caching categorizations
 * (Table 2), and frequency-parameterized WCET — for any of the six
 * C-lab benchmarks.
 *
 *   $ ./examples/wcet_analysis [benchmark]     (default: fft)
 */

#include <cstdio>
#include <map>
#include <string>

#include "cpu/simple_cpu.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

using namespace visa;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "fft";
    Workload wl = makeWorkload(name);
    std::printf("== static WCET analysis of '%s' ==\n\n", name.c_str());
    std::printf("program: %zu instructions, %d sub-tasks, %zu loop "
                "bounds annotated\n",
                wl.program.size(), wl.numSubtasks,
                wl.program.loopBounds.size());

    WcetAnalyzer analyzer(wl.program);
    const Cfg &cfg = analyzer.mainCfg();
    std::printf("CFG: %zu basic blocks, %zu natural loops\n",
                cfg.blocks().size(), cfg.loops().size());
    for (const auto &loop : cfg.loops()) {
        std::printf("  loop @0x%x: %zu blocks, bound %llu, %s\n",
                    cfg.block(loop.header).startPc, loop.blocks.size(),
                    static_cast<unsigned long long>(loop.bound),
                    loop.parent >= 0 ? "nested" : "top-level");
    }

    // Caching categorizations (Table 2).
    std::map<CacheCat, int> counts;
    for (const auto &bb : cfg.blocks())
        for (Addr pc = bb.startPc; pc < bb.endPc; pc += 4)
            ++counts[analyzer.mainCache().at(pc).cat];
    std::printf("\nI-cache categorizations (Table 2):\n");
    for (auto cat : {CacheCat::AlwaysHit, CacheCat::AlwaysMiss,
                     CacheCat::FirstMiss, CacheCat::FirstHit}) {
        std::printf("  %-2s : %d\n", cacheCatName(cat), counts[cat]);
    }

    // Trace-based D-cache padding (the paper's interim method, §3.3).
    DMissProfile dmiss = profileDataMisses(wl.program);
    std::printf("\nD-cache trace padding (misses per sub-task):");
    for (auto m : dmiss.missesPerSubtask)
        std::printf(" %llu", static_cast<unsigned long long>(m));
    std::printf("\n");

    // WCET across the DVS range; validate against the simulator.
    std::printf("\n%8s %14s %12s %12s %8s\n", "f(MHz)", "WCET(cycles)",
                "WCET(us)", "actual(us)", "ratio");
    for (MHz f : {100u, 250u, 500u, 750u, 1000u}) {
        WcetReport rep = analyzer.analyze(f, &dmiss);
        MainMemory mem;
        Platform platform;
        MemController memctrl;
        mem.loadProgram(wl.program);
        SimpleCpu cpu(wl.program, mem, platform, memctrl);
        cpu.resetForTask();
        cpu.setFrequency(f);
        cpu.run();
        double actual_us =
            static_cast<double>(cpu.cycles()) / (f);
        std::printf("%8u %14llu %12.2f %12.2f %8.3f %s\n", f,
                    static_cast<unsigned long long>(rep.taskCycles),
                    rep.taskMicros(), actual_us,
                    static_cast<double>(rep.taskCycles) /
                        static_cast<double>(cpu.cycles()),
                    rep.taskCycles >= cpu.cycles() ? "(safe)"
                                                   : "(VIOLATION)");
    }

    // Per-sub-task decomposition at 1 GHz.
    WcetReport rep = analyzer.analyze(1000, &dmiss);
    std::printf("\nper-sub-task WCET @ 1 GHz (cycles):");
    for (Cycles c : rep.subtaskCycles)
        std::printf(" %llu", static_cast<unsigned long long>(c));
    std::printf("\n");
    return 0;
}
