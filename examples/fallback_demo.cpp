/**
 * @file
 * The heart of the VISA safety argument, step by step: a task running
 * on the unsafe complex pipeline misses a checkpoint (we flush the
 * caches and predictors to force it, the Figure 4 mechanism), the
 * watchdog raises the missed-checkpoint exception, the pipeline
 * drains into simple mode at the recovery frequency — and the deadline
 * is still met.
 *
 *   $ ./examples/fallback_demo [benchmark]      (default: cnt)
 */

#include <cstdio>
#include <string>

#include "core/runtime.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

using namespace visa;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mm";
    Workload wl = makeWorkload(name);
    WcetAnalyzer analyzer(wl.program);
    DMissProfile dmiss = profileDataMisses(wl.program);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs, &dmiss);

    RuntimeConfig cfg;
    // Lean deployment parameters: a fast regulator and a measured
    // (rather than padded) drain bound leave the checkpoints razor
    // sharp, so the induced disturbance visibly trips the watchdog.
    cfg.ovhdSeconds = 1e-6;
    cfg.dvsSoftwareCycles = 100;
    cfg.drainBudgetCycles = 128;

    // Bisect the tightest EQ 4-guaranteeable deadline, then leave only
    // 1% slack: any disturbance must now trip a checkpoint.
    PetEstimator probe(wl.numSubtasks, cfg.petPolicy);
    probe.seed(profileComplexAets(wl.program, wl.numSubtasks));
    double lo = wcet.taskSeconds(1000), hi = wcet.taskSeconds(100);
    for (int i = 0; i < 40; ++i) {
        double mid = 0.5 * (lo + hi);
        bool ok = solveVisaSpeculation(wcet, probe, dvs, mid,
                                       cfg.ovhdSeconds,
                                       cfg.dvsSoftwareCycles +
                                           cfg.drainBudgetCycles)
                      .feasible;
        (ok ? hi : lo) = mid;
    }
    cfg.deadlineSeconds = hi * 1.002;

    std::printf("== missed-checkpoint fallback on '%s' ==\n", name.c_str());
    std::printf("deadline: %.2f us (0.2%% above the tightest "
                "guaranteeable)\n\n", cfg.deadlineSeconds * 1e6);

    MainMemory mem;
    Platform plat;
    MemController mc;
    mem.loadProgram(wl.program);
    OooCpu cpu(wl.program, mem, plat, mc);
    VisaComplexRuntime rt(cpu, wl.program, mem, wcet, dvs, cfg);
    rt.pets().seed(profileComplexAets(wl.program, wl.numSubtasks, 1.02));

    for (int t = 0; t < 16; ++t) {
        // Flush after the first PET re-evaluation so the schedule has
        // converged to its tight steady state.
        bool induce = t == 13;
        if (induce)
            std::printf("--- task 13: flushing caches and predictors "
                        "(induced disturbance) ---\n");
        TaskStats ts = rt.runTask(induce);
        std::printf("task %d: f_spec=%u f_rec=%u  completed %.2f us "
                    "(deadline %.2f us) -> %s\n",
                    t, ts.fSpec, ts.fRec, ts.completionSeconds * 1e6,
                    cfg.deadlineSeconds * 1e6,
                    ts.deadlineMet ? "met" : "MISSED");
        if (ts.missedCheckpoint) {
            std::printf("        watchdog fired in sub-task %d; "
                        "pipeline drained, reconfigured to simple mode"
                        " at %u MHz; remainder bounded by the VISA "
                        "WCET\n",
                        ts.missedSubtask, ts.fRec);
        }
        if (ts.checksum != wl.expectedChecksum)
            std::printf("        CHECKSUM MISMATCH\n");
    }

    std::printf("\ncheckpoint misses: %d, deadline misses: %d "
                "(the VISA guarantee: the second number is 0)\n",
                rt.stats().checkpointMisses,
                rt.stats().deadlineMisses);
    return rt.stats().deadlineMisses == 0 ? 0 : 1;
}
