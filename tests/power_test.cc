/**
 * @file
 * Power-model tests: V^2 scaling, structure geometry effects, clock
 * gating styles (perfect vs 10% standby), die scaling, and the
 * epoch-based power meter.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "power/meter.hh"
#include "tests/test_util.hh"

namespace visa
{
namespace
{

TEST(EnergyModelTest, AccessEnergyScalesWithVoltageSquared)
{
    EnergyModel m = complexEnergyModel();
    double e_lo = m.accessEnergy(Unit::ICache, 0.9);
    double e_hi = m.accessEnergy(Unit::ICache, 1.8);
    EXPECT_NEAR(e_hi / e_lo, 4.0, 1e-9);
}

TEST(EnergyModelTest, ZeroSizedStructuresAreFree)
{
    EnergyModel m = simpleFixedEnergyModel();
    EXPECT_DOUBLE_EQ(m.accessEnergy(Unit::IssueQueue, 1.8), 0.0);
    EXPECT_DOUBLE_EQ(m.accessEnergy(Unit::Bpred, 1.8), 0.0);
    EXPECT_DOUBLE_EQ(m.accessEnergy(Unit::RenameMap, 1.8), 0.0);
    EXPECT_GT(m.accessEnergy(Unit::ICache, 1.8), 0.0);
}

TEST(EnergyModelTest, ComplexStructuresCostMore)
{
    EnergyModel c = complexEnergyModel();
    EnergyModel s = simpleFixedEnergyModel();
    // The 128-entry multi-ported physical register file beats the
    // 32-entry architectural one.
    EXPECT_GT(c.accessEnergy(Unit::RegfileRead, 1.8),
              s.accessEnergy(Unit::RegfileRead, 1.8));
    // Halved die -> half the clock-tree energy.
    EXPECT_NEAR(c.clockEnergyPerCycle(1.8) /
                    s.clockEnergyPerCycle(1.8),
                2.0, 1e-9);
}

TEST(EnergyModelTest, CamStructuresCostMoreThanRam)
{
    // IQ (CAM, 64x32) vs an equal-geometry RAM.
    std::array<StructGeom, numUnits> g{};
    g[static_cast<int>(Unit::IssueQueue)] = {64, 32, 1, true, 1};
    g[static_cast<int>(Unit::FetchQueue)] = {64, 32, 1, false, 1};
    EnergyModel m(g, 1.0);
    EXPECT_GT(m.accessEnergy(Unit::IssueQueue, 1.8),
              m.accessEnergy(Unit::FetchQueue, 1.8));
}

TEST(EnergyModelTest, EpochEnergyAccumulatesAccessesAndClock)
{
    EnergyModel m = complexEnergyModel();
    PowerActivity idle;
    idle.cycles = 1000;
    double clock_only = m.epochEnergy(idle, 1.0, ClockGating::Perfect);
    EXPECT_NEAR(clock_only, m.clockEnergyPerCycle(1.0) * 1000, 1e-15);

    PowerActivity busy = idle;
    busy.add(Unit::ICache, 500);
    double with_fetch = m.epochEnergy(busy, 1.0, ClockGating::Perfect);
    EXPECT_NEAR(with_fetch - clock_only,
                500 * m.accessEnergy(Unit::ICache, 1.0), 1e-15);
}

TEST(EnergyModelTest, StandbyChargesIdleStructures)
{
    EnergyModel m = complexEnergyModel();
    PowerActivity idle;
    idle.cycles = 1000;
    double perfect = m.epochEnergy(idle, 1.0, ClockGating::Perfect);
    double standby = m.epochEnergy(idle, 1.0, ClockGating::Standby10);
    EXPECT_GT(standby, perfect);
    // A fully idle complex chip burns more standby than a simple one.
    EnergyModel s = simpleFixedEnergyModel();
    EXPECT_GT(standby - perfect,
              s.epochEnergy(idle, 1.0, ClockGating::Standby10) -
                  s.epochEnergy(idle, 1.0, ClockGating::Perfect));
}

TEST(PowerMeterTest, IntegratesEpochsAcrossFrequencies)
{
    test::SimpleMachine m(R"(
        addi r4, r0, 200
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    DvsTable dvs;
    PowerMeter meter(*m.cpu, simpleFixedEnergyModel(), dvs,
                     ClockGating::Perfect);
    m.cpu->setFrequency(500);
    m.run(300);
    meter.closeEpoch(500);
    double e1 = meter.totalEnergyJoules();
    double t1 = meter.totalTimeSeconds();
    EXPECT_GT(e1, 0.0);
    EXPECT_NEAR(t1, static_cast<double>(m.cpu->cycles()) / 500e6,
                1e-12);
    m.cpu->setFrequency(1000);
    m.run();
    meter.closeEpoch(1000);
    EXPECT_GT(meter.totalEnergyJoules(), e1);
    EXPECT_GT(meter.averagePowerWatts(), 0.0);
}

TEST(PowerMeterTest, IdleAccountingUsesClockOnly)
{
    test::SimpleMachine m("halt");
    DvsTable dvs;
    PowerMeter meter(*m.cpu, simpleFixedEnergyModel(), dvs,
                     ClockGating::Perfect);
    meter.accountIdle(1e-3, 100);    // 1 ms parked at 100 MHz
    EnergyModel em = simpleFixedEnergyModel();
    double expected =
        em.clockEnergyPerCycle(dvs.voltsAt(100)) * 100e6 * 1e-3;
    EXPECT_NEAR(meter.totalEnergyJoules(), expected, expected * 1e-3);
    EXPECT_NEAR(meter.totalTimeSeconds(), 1e-3, 1e-9);
}

TEST(PowerMeterTest, EmptyEpochsAreIgnored)
{
    test::SimpleMachine m("halt");
    DvsTable dvs15(1.5);
    PowerMeter meter(*m.cpu, simpleFixedEnergyModel(), dvs15,
                     ClockGating::Perfect);
    // 1000 MHz is not in the 1.5x table, but nothing ran yet, so the
    // close must be a no-op rather than a lookup failure.
    meter.closeEpoch(1000);
    EXPECT_DOUBLE_EQ(meter.totalEnergyJoules(), 0.0);
}

TEST(PowerMeterTest, BreakdownSumsToTheTotal)
{
    test::SimpleMachine m(R"(
        la r4, buf
        addi r5, r0, 100
loop:   lw r6, 0(r4)
        add r7, r7, r6
        subi r5, r5, 1
        bgtz r5, loop
        halt
        .data
buf:    .word 5
    )");
    DvsTable dvs;
    PowerMeter meter(*m.cpu, simpleFixedEnergyModel(), dvs,
                     ClockGating::Standby10);
    m.cpu->setFrequency(500);
    m.run();
    meter.closeEpoch(500);
    double sum = meter.clockEnergyJoules();
    for (int u = 0; u < numUnits; ++u)
        sum += meter.unitEnergyJoules(static_cast<Unit>(u));
    EXPECT_NEAR(sum, meter.totalEnergyJoules(),
                meter.totalEnergyJoules() * 1e-9);
    // The caches did real work; zero-sized structures charged nothing.
    EXPECT_GT(meter.unitEnergyJoules(Unit::ICache), 0.0);
    EXPECT_DOUBLE_EQ(meter.unitEnergyJoules(Unit::IssueQueue), 0.0);
}

TEST(PowerMeterTest, SaneAcrossTaskResets)
{
    // Regression: activity cycle counts must stay monotonic across
    // resetForTask() so epoch deltas never underflow (a meter attached
    // across task instances once produced astronomically wrong energy
    // for every task after the first).
    test::OooMachine m(R"(
        addi r4, r0, 50
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    DvsTable dvs;
    PowerMeter meter(*m.cpu, complexEnergyModel(), dvs,
                     ClockGating::Perfect);
    m.cpu->setFrequency(500);
    double prev = 0.0;
    for (int t = 0; t < 4; ++t) {
        m.cpu->resetForTask();
        m.cpu->setFrequency(500);
        m.run();
        meter.closeEpoch(500);
        double e = meter.totalEnergyJoules();
        EXPECT_GT(e, prev) << t;
        // Each task adds a comparable sliver of energy; anything above
        // a microjoule here means an underflowed epoch.
        EXPECT_LT(e - prev, 1e-6) << t;
        prev = e;
    }
    EXPECT_NEAR(meter.totalTimeSeconds(),
                static_cast<double>(m.cpu->activity().cycles) / 500e6,
                1e-9);
}

TEST(PowerMeterTest, LowerVoltageFrequencyBurnsLessForSameWork)
{
    auto run_at = [](MHz f) {
        test::SimpleMachine m(R"(
            addi r4, r0, 300
loop:       subi r4, r4, 1
            bgtz r4, loop
            halt
        )");
        DvsTable dvs;
        PowerMeter meter(*m.cpu, simpleFixedEnergyModel(), dvs,
                         ClockGating::Perfect);
        m.cpu->setFrequency(f);
        m.run();
        meter.closeEpoch(f);
        return meter.totalEnergyJoules();
    };
    // Same instruction count; the 100 MHz / 0.70 V run must use far
    // less energy than 1 GHz / 1.8 V (the DVS premise).
    EXPECT_LT(run_at(100), run_at(1000) * 0.5);
}

} // anonymous namespace
} // namespace visa
