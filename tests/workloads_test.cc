/**
 * @file
 * Workload tests (invariant T5 and friends): every C-lab benchmark
 * assembles, runs to completion on both pipelines and in both modes,
 * reproduces its host-computed golden checksum, reports AETs for all
 * sub-tasks, and is analyzable (T1 holds against both simulators).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

class WorkloadFixture : public ::testing::TestWithParam<std::string>
{
  protected:
    Workload wl_ = makeWorkload(GetParam());
};

TEST_P(WorkloadFixture, AssemblesWithExpectedStructure)
{
    EXPECT_GT(wl_.program.size(), 100u);
    EXPECT_EQ(wl_.numSubtasks,
              static_cast<int>(wl_.program.subtaskStarts.size()));
    EXPECT_GE(wl_.numSubtasks, 5);
    EXPECT_TRUE(wl_.program.symbols.count("wdinc"));
    EXPECT_FALSE(wl_.program.loopBounds.empty());
}

TEST_P(WorkloadFixture, GoldenChecksumOnSimpleFixed)
{
    auto sim = SimBuilder().program(wl_.program)
                   .cpu(CpuKind::Simple).build();
    auto res = sim->cpu().run(2'000'000'000ULL);
    ASSERT_EQ(res.reason, StopReason::Halted) << wl_.name;
    EXPECT_TRUE(sim->platform().checksumReported());
    EXPECT_EQ(sim->platform().lastChecksum(), wl_.expectedChecksum)
        << wl_.name;
}

TEST_P(WorkloadFixture, GoldenChecksumOnComplex)
{
    auto sim = SimBuilder().program(wl_.program)
                   .cpu(CpuKind::Complex).build();
    auto res = sim->cpu().run(2'000'000'000ULL);
    ASSERT_EQ(res.reason, StopReason::Halted) << wl_.name;
    EXPECT_EQ(sim->platform().lastChecksum(), wl_.expectedChecksum)
        << wl_.name;
}

TEST_P(WorkloadFixture, GoldenChecksumInSimpleMode)
{
    auto sim = SimBuilder().program(wl_.program)
                   .cpu(CpuKind::ComplexSimpleMode).build();
    auto res = sim->cpu().run(2'000'000'000ULL);
    ASSERT_EQ(res.reason, StopReason::Halted) << wl_.name;
    EXPECT_EQ(sim->platform().lastChecksum(), wl_.expectedChecksum)
        << wl_.name;
}

TEST_P(WorkloadFixture, SimpleModeMatchesSimpleFixedCycles)
{
    // T2 on real workloads: the complex pipeline's simple mode is
    // cycle-identical to the simple-fixed processor.
    auto simple = SimBuilder().program(wl_.program)
                      .cpu(CpuKind::Simple).build();
    auto ooo = SimBuilder().program(wl_.program)
                   .cpu(CpuKind::ComplexSimpleMode).build();
    simple->cpu().run(2'000'000'000ULL);
    ooo->cpu().run(2'000'000'000ULL);
    EXPECT_EQ(ooo->cpu().cycles(), simple->cpu().cycles()) << wl_.name;
}

TEST_P(WorkloadFixture, AetsReportedForEverySubtask)
{
    auto sim = SimBuilder().program(wl_.program)
                   .cpu(CpuKind::Simple).build();
    std::vector<int> reported;
    sim->platform().onAetReport = [&](int sub, std::uint64_t aet) {
        reported.push_back(sub);
        EXPECT_GT(aet, 0u);
    };
    sim->cpu().run(2'000'000'000ULL);
    ASSERT_EQ(static_cast<int>(reported.size()), wl_.numSubtasks)
        << wl_.name;
    for (int i = 0; i < wl_.numSubtasks; ++i)
        EXPECT_EQ(reported[static_cast<std::size_t>(i)], i + 1);
}

TEST_P(WorkloadFixture, ComplexIsSubstantiallyFaster)
{
    // Table 3: simple/complex is 3.1x - 5.8x. Require at least 2x.
    auto simple_sim = SimBuilder().program(wl_.program)
                          .cpu(CpuKind::Simple).build();
    auto ooo_sim = SimBuilder().program(wl_.program)
                       .cpu(CpuKind::Complex).build();
    Cpu &simple = simple_sim->cpu();
    Cpu &ooo = ooo_sim->cpu();
    simple.run(2'000'000'000ULL);
    ooo.run(2'000'000'000ULL);
    bool paper_six =
        std::find(clabNames().begin(), clabNames().end(), wl_.name) !=
        clabNames().end();
    if (paper_six) {
        // Table 3: simple/complex is 3.1x - 5.8x. Require at least 2x.
        EXPECT_GT(simple.cycles(), 2 * ooo.cycles()) << wl_.name;
    } else {
        // Extended kernels (e.g. crc's unpredictable bit-test branch)
        // must still come out ahead on the complex pipeline.
        EXPECT_GT(simple.cycles(), ooo.cycles()) << wl_.name;
    }
}

TEST_P(WorkloadFixture, WcetBoundsSimpleFixed)
{
    // T1 on real workloads, with the paper's trace-based D padding.
    WcetAnalyzer an(wl_.program);
    DMissProfile dmiss = profileDataMisses(wl_.program);
    EXPECT_EQ(an.numSubtasks(), wl_.numSubtasks);
    for (MHz f : {100u, 500u, 1000u}) {
        auto sim = SimBuilder().program(wl_.program)
                       .cpu(CpuKind::Simple).frequency(f).build();
        auto res = sim->cpu().run(2'000'000'000ULL);
        ASSERT_EQ(res.reason, StopReason::Halted);
        WcetReport rep = an.analyze(f, &dmiss);
        EXPECT_GE(rep.taskCycles, sim->cpu().cycles())
            << wl_.name << " at " << f;
        // Tightness: paper's worst over-estimate is 2.0x (srt).
        EXPECT_LE(rep.taskCycles, sim->cpu().cycles() * 3)
            << wl_.name << " at " << f;
    }
}

TEST_P(WorkloadFixture, RepeatedTasksStayFunctionallyCorrect)
{
    auto sim = SimBuilder().program(wl_.program)
                   .cpu(CpuKind::Complex).build();
    for (int t = 0; t < 3; ++t) {
        sim->cpu().resetForTask();
        auto res = sim->cpu().run(2'000'000'000ULL);
        ASSERT_EQ(res.reason, StopReason::Halted);
        EXPECT_EQ(sim->platform().lastChecksum(), wl_.expectedChecksum)
            << wl_.name << " task " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadFixture,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadCatalog, SixBenchmarksPlusExtendedSuite)
{
    EXPECT_EQ(clabNames().size(), 6u);
    EXPECT_EQ(extendedNames().size(), 3u);
    EXPECT_EQ(allWorkloadNames().size(), 9u);
    EXPECT_THROW(makeWorkload("nope"), FatalError);
}

TEST(WorkloadCatalog, SubtaskCountsMatchTableThree)
{
    EXPECT_EQ(makeAdpcm().numSubtasks, 8);
    EXPECT_EQ(makeCnt().numSubtasks, 5);
    EXPECT_EQ(makeFft().numSubtasks, 10);
    EXPECT_EQ(makeLms().numSubtasks, 10);
    EXPECT_EQ(makeMm().numSubtasks, 10);
    EXPECT_EQ(makeSrt().numSubtasks, 10);
}

} // anonymous namespace
} // namespace visa
