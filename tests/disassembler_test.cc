/**
 * @file
 * Program-level disassembler tests: label synthesis, annotation
 * rendering, and round-trip re-assembly of the rendered text.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

TEST(Disassembler, RendersLabelsAndAnnotations)
{
    Program p = assemble(R"(
        .subtask 1
        addi r4, r0, 8
loop:   subi r4, r4, 1
        .loopbound 8
        bgtz r4, loop
        halt
    )");
    DisasmOptions opts;
    std::string out = disassembleProgram(p, opts);
    EXPECT_NE(out.find(".subtask 1"), std::string::npos);
    EXPECT_NE(out.find(".loopbound 8"), std::string::npos);
    EXPECT_NE(out.find("loop:"), std::string::npos);    // user symbol kept
    EXPECT_NE(out.find("bgtz r4, loop"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
}

TEST(Disassembler, SynthesizesLabelsForAnonymousTargets)
{
    // Branch targets without user symbols get L<n> labels.
    Program p = assemble(R"(
        beq r4, r0, skip
        addi r5, r0, 1
skip:   halt
    )");
    // Strip the user symbol table to force synthesis.
    p.symbols.clear();
    std::string out = disassembleProgram(p);
    EXPECT_NE(out.find("L0:"), std::string::npos);
    EXPECT_NE(out.find("beq r4, r0, L0"), std::string::npos);
}

TEST(Disassembler, EncodingColumnOptional)
{
    Program p = assemble("        nop\n        halt\n");
    DisasmOptions with;
    with.showEncodings = true;
    DisasmOptions without;
    without.showEncodings = false;
    std::string a = disassembleProgram(p, with);
    std::string b = disassembleProgram(p, without);
    EXPECT_GT(a.size(), b.size());
}

TEST(Disassembler, WholeBenchmarkReassemblesToIdenticalText)
{
    // The rendered text of a real benchmark must re-assemble into an
    // instruction-identical program (addresses off, labels renamed —
    // but the decoded stream must match).
    Workload wl = makeWorkload("cnt");
    DisasmOptions opts;
    opts.showAddresses = false;
    opts.showEncodings = false;
    std::string text = disassembleProgram(wl.program, opts);
    Program again = assemble(text);
    ASSERT_EQ(again.size(), wl.program.size());
    for (std::size_t i = 0; i < again.size(); ++i)
        EXPECT_EQ(again.text[i], wl.program.text[i]) << "index " << i;
    EXPECT_EQ(again.loopBounds.size(), wl.program.loopBounds.size());
    EXPECT_EQ(again.subtaskStarts.size(),
              wl.program.subtaskStarts.size());
}

} // anonymous namespace
} // namespace visa
