/**
 * @file
 * Program-level disassembler tests: label synthesis, annotation
 * rendering, and round-trip re-assembly of the rendered text.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "isa/encoding.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

/**
 * One hand-written line per opcode in the encoding table, with
 * representative operands (negative immediates, max shift amounts,
 * both jalr forms, every branch flavor). The coverage assertion below
 * keeps this program honest when the ISA grows.
 */
constexpr const char *kEveryOpcodeProgram = R"(
        add r5, r3, r4
        sub r5, r3, r4
        mul r5, r3, r4
        div r5, r3, r4
        rem r5, r3, r4
        and r5, r3, r4
        or r5, r3, r4
        xor r5, r3, r4
        nor r5, r3, r4
        slt r5, r3, r4
        sltu r5, r3, r4
        sllv r5, r3, r4
        srlv r5, r3, r4
        srav r5, r3, r4
        sll r5, r3, 7
        srl r5, r3, 1
        sra r5, r3, 31
        addi r5, r3, -12
        andi r5, r3, 255
        ori r5, r3, 4097
        xori r5, r3, 15
        slti r5, r3, -4
        sltiu r5, r3, 9
        lui r5, 4660
        lb r5, -3(r9)
        lbu r5, 1(r9)
        lh r5, -2(r9)
        lhu r5, 2(r9)
        lw r5, 4(r9)
        ldc1 f4, 8(r9)
        sb r5, 5(r9)
        sh r5, 6(r9)
        sw r5, 12(r9)
        sdc1 f4, 16(r9)
Ltop:   beq r3, r4, Ltop
        bne r3, r4, Ltop
        blez r3, Ltop
        bgtz r3, Ltop
        bltz r3, Ltop
        bgez r3, Ltop
        bc1t Ltop
        bc1f Ltop
        j Lmid
Lmid:   jal Lret
        jalr r5, r3
        add.d f2, f4, f6
        sub.d f2, f4, f6
        mul.d f2, f4, f6
        div.d f2, f4, f6
        neg.d f2, f4
        abs.d f2, f4
        mov.d f2, f4
        cvt.d.w f2, r3
        cvt.w.d r5, f4
        c.eq.d f2, f4
        c.lt.d f2, f4
        c.le.d f2, f4
        nop
Lret:   jr r31
        halt
)";

TEST(Disassembler, RendersLabelsAndAnnotations)
{
    Program p = assemble(R"(
        .subtask 1
        addi r4, r0, 8
loop:   subi r4, r4, 1
        .loopbound 8
        bgtz r4, loop
        halt
    )");
    DisasmOptions opts;
    std::string out = disassembleProgram(p, opts);
    EXPECT_NE(out.find(".subtask 1"), std::string::npos);
    EXPECT_NE(out.find(".loopbound 8"), std::string::npos);
    EXPECT_NE(out.find("loop:"), std::string::npos);    // user symbol kept
    EXPECT_NE(out.find("bgtz r4, loop"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
}

TEST(Disassembler, SynthesizesLabelsForAnonymousTargets)
{
    // Branch targets without user symbols get L<n> labels.
    Program p = assemble(R"(
        beq r4, r0, skip
        addi r5, r0, 1
skip:   halt
    )");
    // Strip the user symbol table to force synthesis.
    p.symbols.clear();
    std::string out = disassembleProgram(p);
    EXPECT_NE(out.find("L0:"), std::string::npos);
    EXPECT_NE(out.find("beq r4, r0, L0"), std::string::npos);
}

TEST(Disassembler, EncodingColumnOptional)
{
    Program p = assemble("        nop\n        halt\n");
    DisasmOptions with;
    with.showEncodings = true;
    DisasmOptions without;
    without.showEncodings = false;
    std::string a = disassembleProgram(p, with);
    std::string b = disassembleProgram(p, without);
    EXPECT_GT(a.size(), b.size());
}

TEST(Disassembler, WholeBenchmarkReassemblesToIdenticalText)
{
    // The rendered text of a real benchmark must re-assemble into an
    // instruction-identical program (addresses off, labels renamed —
    // but the decoded stream must match).
    Workload wl = makeWorkload("cnt");
    DisasmOptions opts;
    opts.showAddresses = false;
    opts.showEncodings = false;
    std::string text = disassembleProgram(wl.program, opts);
    Program again = assemble(text);
    ASSERT_EQ(again.size(), wl.program.size());
    for (std::size_t i = 0; i < again.size(); ++i)
        EXPECT_EQ(again.text[i], wl.program.text[i]) << "index " << i;
    EXPECT_EQ(again.loopBounds.size(), wl.program.loopBounds.size());
    EXPECT_EQ(again.subtaskStarts.size(),
              wl.program.subtaskStarts.size());
}

TEST(Disassembler, EveryOpcodeRoundTripsThroughRenderedText)
{
    Program p = assemble(kEveryOpcodeProgram);

    // Coverage: the program must exercise the complete opcode table,
    // so a new opcode without a line above fails here by name.
    std::set<Opcode> seen;
    for (const Instruction &inst : p.text)
        seen.insert(inst.op);
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        const Opcode op = static_cast<Opcode>(i);
        EXPECT_TRUE(seen.count(op))
            << "opcode '" << mnemonic(op)
            << "' missing from kEveryOpcodeProgram";
    }

    // Round trip 1: rendered text re-assembles to the identical
    // instruction (and word) stream.
    DisasmOptions opts;
    opts.showAddresses = false;
    opts.showEncodings = false;
    const std::string text = disassembleProgram(p, opts);
    Program again = assemble(text);
    ASSERT_EQ(again.size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_EQ(again.text[i], p.text[i])
            << "instruction " << i << ": "
            << disassemble(p.text[i], p.textBase + 4 * i);
        EXPECT_EQ(again.words[i], p.words[i]) << "word " << i;
    }

    // Round trip 2: encode/decode is the identity on the decoded form.
    for (std::size_t i = 0; i < p.size(); ++i) {
        const Addr pc = p.textBase + static_cast<Addr>(4 * i);
        EXPECT_EQ(decode(encode(p.text[i], pc), pc), p.text[i])
            << disassemble(p.text[i], pc);
    }
}

} // anonymous namespace
} // namespace visa
