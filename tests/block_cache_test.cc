/**
 * @file
 * Basic-block translation cache tests: store-to-code invalidation
 * (self-modifying programs re-decode and match the uncached path
 * exactly), cache-on/off lockstep equivalence over generated programs,
 * the block-granular runFunctional fast path against the per-step
 * reference, the BlockCacheStats group in the stats export, and
 * byte-identical determinism across thread-pool widths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/simple_cpu.hh"
#include "sim/parallel.hh"
#include "tests/test_util.hh"
#include "verify/lockstep.hh"
#include "verify/progen.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

/**
 * A self-modifying program: `run` returns 5 on the first call, then
 * main copies the encoded word of `donor` over `patch` and calls it
 * again, which must yield 77 — but only if the store into text
 * invalidates the already-executed (and chained) block.
 */
const char *selfModifySource = R"(
        .entry main
main:   la   r4, patch
        la   r6, donor
        lw   r5, 0(r6)        # encoded "addi r8, r0, 77"
        jal  run
        add  r10, r0, r8      # first pass: original instruction
        sw   r5, 0(r4)        # overwrite the patch site
        jal  run
        add  r11, r0, r8      # second pass: must see the new code
        halt
run:
patch:  addi r8, r0, 5
        jr   ra
donor:  addi r8, r0, 77       # never reached by fall-through
        jr   ra
)";

/** Final architectural state must match between two ExecCores. */
void
expectSameArchState(const ArchState &a, const ArchState &b)
{
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.fcc, b.fcc);
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(a.readInt(r), b.readInt(r)) << "r" << r;
    for (int f = 0; f < numFpRegs; ++f) {
        const auto fi = static_cast<std::size_t>(f);
        EXPECT_EQ(a.fpRegs[fi], b.fpRegs[fi]) << "f" << f;
    }
}

TEST(BlockCache, SelfModifyingStoreForcesRedecode)
{
    const Program prog = assemble(selfModifySource);

    MainMemory mem;
    mem.loadProgram(prog);
    Platform plat;
    ExecCore core(prog, mem, plat);
    core.reset();
    ASSERT_TRUE(core.blockCacheEnabled());
    const ExecCore::FuncRunResult r = core.runFunctional(100000);
    ASSERT_TRUE(r.halted);

    // Both passes produced their own code's value: the overwrite was
    // picked up even though the patch block had already been decoded.
    EXPECT_EQ(core.state().readInt(10), 5u);
    EXPECT_EQ(core.state().readInt(11), 77u);

    const BlockCacheStats s = core.blockCacheStats();
    EXPECT_TRUE(s.enabled);
    EXPECT_GE(s.invalidations, 1u) << "store-to-code must kill blocks";
    EXPECT_GE(s.codeResyncs, 1u);
    EXPECT_GT(s.blocksDecoded, 0u);
    EXPECT_GT(s.instsDecoded, 0u);
}

TEST(BlockCache, SelfModifyingRunMatchesUncachedPath)
{
    const Program prog = assemble(selfModifySource);

    auto runOne = [&](bool cached, std::uint64_t &insts) {
        MainMemory mem;
        mem.loadProgram(prog);
        Platform plat;
        auto core = std::make_unique<ExecCore>(prog, mem, plat);
        core->setBlockCacheEnabled(cached);
        core->reset();
        const ExecCore::FuncRunResult r = core->runFunctional(100000);
        EXPECT_TRUE(r.halted);
        insts = r.insts;
        return core;
    };

    std::uint64_t cachedInsts = 0, uncachedInsts = 0;
    auto cached = runOne(true, cachedInsts);
    auto uncached = runOne(false, uncachedInsts);
    EXPECT_EQ(cachedInsts, uncachedInsts);
    expectSameArchState(cached->state(), uncached->state());
}

TEST(BlockCache, SelfModifyingPipelineMatchesUncached)
{
    // The same program through a full SimpleCpu pipeline (which steps
    // the core instruction-at-a-time through the cached dispatch),
    // cache on vs off via the SimBuilder knob.
    auto run = [&](bool cache) {
        auto sim = SimBuilder()
                       .source(selfModifySource)
                       .cpu(CpuKind::Simple)
                       .blockCache(cache)
                       .build();
        sim->cpu().run(noCycleLimit);
        return sim;
    };
    auto on = run(true);
    auto off = run(false);
    EXPECT_EQ(on->cpu().execCore().blockCacheStats().enabled, true);
    EXPECT_EQ(off->cpu().execCore().blockCacheStats().enabled, false);
    EXPECT_EQ(on->cpu().cycles(), off->cpu().cycles());
    expectSameArchState(on->cpu().arch(), off->cpu().arch());
    EXPECT_EQ(on->cpu().arch().readInt(10), 5u);
    EXPECT_EQ(on->cpu().arch().readInt(11), 77u);
}

TEST(BlockCache, RunFunctionalMatchesPerStepReference)
{
    const Workload wl = makeWorkload("mm");

    MainMemory memA;
    memA.loadProgram(wl.program);
    Platform platA;
    ExecCore fast(wl.program, memA, platA);
    fast.reset();
    const ExecCore::FuncRunResult r = fast.runFunctional(50'000'000);
    ASSERT_TRUE(r.halted);

    MainMemory memB;
    memB.loadProgram(wl.program);
    Platform platB;
    ExecCore ref(wl.program, memB, platB);
    ref.setBlockCacheEnabled(false);
    ref.reset();
    std::uint64_t n = 0;
    while (!ref.step(false).halted)
        ++n;
    ++n;    // the HALT itself

    EXPECT_EQ(r.insts, n);
    expectSameArchState(fast.state(), ref.state());
    EXPECT_EQ(platA.lastChecksum(), platB.lastChecksum());
    EXPECT_EQ(platA.lastChecksum(), wl.expectedChecksum);
}

TEST(BlockCache, BudgetedRunFunctionalResumesMidBlock)
{
    // Tiny budgets force the fast path to stop inside blocks and
    // resume; the aggregate must still match an unbounded run.
    const Workload wl = makeWorkload("cnt");

    MainMemory memA;
    memA.loadProgram(wl.program);
    Platform platA;
    ExecCore chunked(wl.program, memA, platA);
    chunked.reset();
    std::uint64_t total = 0;
    bool halted = false;
    while (!halted) {
        const ExecCore::FuncRunResult r = chunked.runFunctional(7);
        total += r.insts;
        halted = r.halted;
        ASSERT_LT(total, 50'000'000u) << "no forward progress";
    }

    MainMemory memB;
    memB.loadProgram(wl.program);
    Platform platB;
    ExecCore whole(wl.program, memB, platB);
    whole.reset();
    const ExecCore::FuncRunResult r = whole.runFunctional(50'000'000);
    ASSERT_TRUE(r.halted);

    EXPECT_EQ(total, r.insts);
    expectSameArchState(chunked.state(), whole.state());
}

TEST(BlockCache, SplitLockstepCacheOnVsOff)
{
    // Reference rig uncached, candidate rig cached: every generated
    // program becomes a cache-on/off equivalence check layered on the
    // usual pipeline diff.
    verify::GenParams gen;
    verify::LockstepOptions opts;
    opts.refBlockCache = false;
    opts.candBlockCache = true;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const verify::GeneratedProgram g = verify::generate(seed, gen);
        const verify::LockstepResult res =
            verify::runLockstep(g.program, opts);
        EXPECT_TRUE(res.equivalent)
            << "seed " << seed << "\n" << res.report;
    }
}

TEST(BlockCache, StatsGroupExported)
{
    auto sim = SimBuilder().workload("cnt").cpu(CpuKind::Simple).build();
    sim->cpu().run(noCycleLimit);

    const BlockCacheStats s = sim->cpu().execCore().blockCacheStats();
    EXPECT_TRUE(s.enabled);
    EXPECT_GT(s.blocksDecoded, 0u);
    EXPECT_GT(s.blockHits + s.instsDecoded, 0u);
    EXPECT_EQ(s.invalidations, 0u) << "cnt never writes its text";

    std::ostringstream os;
    sim->cpu().dumpStatsJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("block_cache"), std::string::npos);
    EXPECT_NE(json.find("blocks_decoded"), std::string::npos);
    EXPECT_NE(json.find("block_hits"), std::string::npos);
    EXPECT_NE(json.find("invalidations"), std::string::npos);
    EXPECT_NE(json.find("avg_block_len"), std::string::npos);
    EXPECT_NE(json.find("code_resyncs"), std::string::npos);
}

/** One arm of the pool-width determinism check: run + stats bytes. */
std::string
runStatsArm(const Workload &wl)
{
    auto sim = SimBuilder()
                   .program(wl.program)
                   .cpu(CpuKind::Simple)
                   .blockCache(true)
                   .build();
    sim->cpu().run(noCycleLimit);
    std::ostringstream os;
    sim->cpu().dumpStatsJson(os);
    return os.str();
}

TEST(BlockCache, StatsAreByteIdenticalAcrossPools)
{
    // Same seed/workload, different VISA_THREADS: the block cache must
    // not introduce any pool-width dependence — the exported stats
    // (which include every cache counter) must be byte-identical.
    const std::vector<std::string> names = {"cnt", "fir"};
    std::vector<Workload> wls;
    for (const auto &n : names)
        wls.push_back(makeWorkload(n));

    std::vector<std::string> serial(wls.size());
    for (std::size_t i = 0; i < wls.size(); ++i)
        serial[i] = runStatsArm(wls[i]);

    const char *old = std::getenv("VISA_THREADS");
    const std::string saved = old ? old : "";
    setenv("VISA_THREADS", "4", 1);
    std::vector<std::string> pooled(wls.size());
    parallelFor(wls.size(),
                [&](std::size_t i) { pooled[i] = runStatsArm(wls[i]); });
    if (old)
        setenv("VISA_THREADS", saved.c_str(), 1);
    else
        unsetenv("VISA_THREADS");

    for (std::size_t i = 0; i < wls.size(); ++i) {
        EXPECT_FALSE(serial[i].empty()) << names[i];
        EXPECT_EQ(pooled[i], serial[i]) << names[i];
    }
}

} // anonymous namespace
} // namespace visa
