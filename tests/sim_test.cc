/**
 * @file
 * Tests for the simulation substrate: the statistics package, debug
 * flags, error channels, and the CPUs' statistics dumps.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "tests/test_util.hh"

namespace visa
{
namespace
{

TEST(StatsTest, ScalarArithmetic)
{
    StatGroup g("test");
    auto &s = g.scalar("counter", "a counter");
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 11u);
    s.set(5);
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(StatsTest, ScalarRegistrationIsStable)
{
    StatGroup g("test");
    auto &a = g.scalar("x");
    a += 3;
    auto &b = g.scalar("x");    // same stat
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);
}

TEST(StatsTest, DistributionSampling)
{
    StatGroup g("test");
    auto &d = g.distribution("lat");
    d.init(0, 100, 10);
    for (std::uint64_t v : {5u, 15u, 15u, 95u, 200u})
        d.sample(v);
    EXPECT_EQ(d.samples(), 5u);
    EXPECT_EQ(d.minSeen(), 5u);
    EXPECT_EQ(d.maxSeen(), 200u);
    EXPECT_DOUBLE_EQ(d.mean(), 66.0);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 2u);
    EXPECT_EQ(d.buckets()[9], 1u);    // 95
    // Overflow clamps into the last bucket.
    EXPECT_EQ(d.buckets().back(), 1u);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
}

TEST(StatsTest, FormulaAndDump)
{
    StatGroup g("cpu0");
    auto &insts = g.scalar("insts", "retired");
    auto &cycles = g.scalar("cycles");
    insts.set(300);
    cycles.set(100);
    g.formula("ipc",
              [&]() {
                  return static_cast<double>(insts.value()) /
                         static_cast<double>(cycles.value());
              },
              "instructions per cycle");
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("cpu0.insts 300 # retired"), std::string::npos);
    EXPECT_NE(out.find("cpu0.ipc 3"), std::string::npos);
}

TEST(StatsTest, ResetAllClearsEverything)
{
    StatGroup g("g");
    g.scalar("a") += 7;
    auto &d = g.distribution("d");
    d.init(0, 10, 1);
    d.sample(3);
    g.resetAll();
    EXPECT_EQ(g.scalar("a").value(), 0u);
    EXPECT_EQ(g.distribution("d").samples(), 0u);
}

TEST(DebugTest, FlagsToggle)
{
    EXPECT_FALSE(Debug::enabled("Fetch"));
    Debug::enable("Fetch");
    EXPECT_TRUE(Debug::enabled("Fetch"));
    Debug::disable("Fetch");
    EXPECT_FALSE(Debug::enabled("Fetch"));
}

TEST(LoggingTest, ErrorChannels)
{
    EXPECT_THROW(fatal("user error %d", 7), FatalError);
    EXPECT_THROW(panic("bug %s", "here"), PanicError);
    try {
        fatal("value=%d", 42);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value=42"),
                  std::string::npos);
    }
}

TEST(CpuStatsTest, SimpleCpuDumpHasCoreCounters)
{
    test::SimpleMachine m(R"(
        addi r4, r0, 20
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    m.run();
    std::ostringstream os;
    m.cpu->dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("simple.cycles"), std::string::npos);
    EXPECT_NE(out.find("simple.instructions 42"), std::string::npos);
    EXPECT_NE(out.find("simple.ipc"), std::string::npos);
    EXPECT_NE(out.find("simple.icache_misses 1"), std::string::npos);
    EXPECT_NE(out.find("simple.activity_fu 42"), std::string::npos);
}

TEST(CpuStatsTest, OooCpuDumpAddsBranchAndMode)
{
    test::OooMachine m(R"(
        addi r4, r0, 20
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    m.run();
    std::ostringstream os;
    m.cpu->dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("complex.cycles"), std::string::npos);
    EXPECT_NE(out.find("complex.branch_mispredicts"), std::string::npos);
    EXPECT_NE(out.find("complex.mode_simple 0"), std::string::npos);
    m.cpu->switchToSimple();
    std::ostringstream os2;
    m.cpu->dumpStats(os2);
    EXPECT_NE(os2.str().find("complex.mode_simple 1"),
              std::string::npos);
}

} // anonymous namespace
} // namespace visa
