/**
 * @file
 * Tests of the differential verification harness itself (src/verify):
 * generator determinism and self-termination, lockstep equivalence and
 * bug detection (via the candidate pipeline's deliberate injected
 * bug), minimization quality, the timing oracle, and replay of every
 * corpus repro in tests/corpus/.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "isa/assembler.hh"
#include "verify/corpus.hh"
#include "verify/inject.hh"
#include "verify/lockstep.hh"
#include "verify/minimize.hh"
#include "verify/oracle.hh"
#include "verify/progen.hh"

#ifndef VISA_CORPUS_DIR
#error "VISA_CORPUS_DIR must point at tests/corpus"
#endif

namespace visa
{
namespace
{

using namespace visa::verify;

TEST(Progen, DeterministicForSeedAndParams)
{
    const GenParams params;
    const GeneratedProgram a = generate(42, params);
    const GeneratedProgram b = generate(42, params);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.dynamicBound, b.dynamicBound);
    const GeneratedProgram c = generate(43, params);
    EXPECT_NE(a.source, c.source);
}

TEST(Progen, ProfileNamesRoundTrip)
{
    for (GenProfile p : {GenProfile::Alu, GenProfile::Branch,
                         GenProfile::Memory, GenProfile::Mixed}) {
        GenProfile back{};
        ASSERT_TRUE(parseProfile(profileName(p), back));
        EXPECT_EQ(back, p);
    }
    GenProfile out{};
    EXPECT_FALSE(parseProfile("bogus", out));
}

TEST(Progen, AluProfileEmitsNoMemoryTraffic)
{
    const GenParams params{GenProfile::Alu};
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const GeneratedProgram g = generate(seed, params);
        for (const Instruction &inst : g.program.text)
            EXPECT_EQ(inst.memBytes(), 0)
                << "seed " << seed << ": " << disassemble(inst, 0);
    }
}

TEST(Progen, ExecutionStaysWithinDynamicBound)
{
    // The generator's conservative bound must dominate the actual
    // dynamic instruction count — that is what makes every generated
    // program self-terminating.
    const GenParams params;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        const GeneratedProgram g = generate(seed, params);
        const LockstepResult r = runLockstep(g.program);
        ASSERT_TRUE(r.equivalent) << "seed " << seed << "\n" << r.report;
        EXPECT_LE(r.instructions, g.dynamicBound) << "seed " << seed;
        EXPECT_GT(r.instructions, 0u) << "seed " << seed;
    }
}

TEST(Lockstep, PipelinesAgreeOnAHandWrittenKernel)
{
    const Program prog = assemble(R"(
        li r4, 10
        li r5, 0
Lloop:  add r5, r5, r4
        subi r4, r4, 1
        .loopbound 10
        bgtz r4, Lloop
        sw r5, 0(r0)
        halt
    )");
    const LockstepResult r = runLockstep(prog);
    EXPECT_TRUE(r.equivalent) << r.report;
    EXPECT_FALSE(r.diverged);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.instructions, 30u);
}

TEST(Lockstep, NonTerminatingProgramTimesOutCleanly)
{
    const Program prog = assemble("Lspin:  j Lspin\n");
    LockstepOptions opts;
    opts.maxInstructions = 5000;
    const LockstepResult r = runLockstep(prog, opts);
    EXPECT_FALSE(r.equivalent);
    EXPECT_FALSE(r.diverged);
    EXPECT_TRUE(r.timedOut);
}

/** Lockstep options with the candidate's injected bug enabled. */
LockstepOptions
buggyOptions()
{
    LockstepOptions opts;
    auto inj = std::make_shared<FaultInjector>(loadExtBugSpec());
    opts.prepareComplex = [inj](OooCpu &cpu) {
        cpu.setFaultPort(inj.get());
    };
    return opts;
}

TEST(Lockstep, InjectedCandidateBugIsCaughtWithinThousandPrograms)
{
    // Acceptance gate: a deliberately injected OooCpu bug (subword
    // loads zero- instead of sign-extended) must be caught within 1000
    // generated programs and minimize to a tiny repro.
    GenParams gen;
    gen.profile = GenProfile::Memory;
    const LockstepOptions buggy = buggyOptions();

    std::uint64_t failingSeed = 0;
    std::string failingSource;
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
        const GeneratedProgram g = generate(seed, gen);
        const LockstepResult r = runLockstep(g.program, buggy);
        if (r.diverged) {
            failingSeed = seed;
            failingSource = g.source;
            break;
        }
    }
    ASSERT_NE(failingSeed, 0u)
        << "injected bug not caught in 1000 programs";

    LockstepOptions quick = buggy;
    quick.maxInstructions = 200'000;
    quick.traceTail = 0;
    const MinimizeResult m =
        minimizeSource(failingSource, [&](const Program &p) {
            try {
                return runLockstep(p, quick).diverged;
            } catch (const std::exception &) {
                return false;    // candidate broke the machine: reject
            }
        });
    EXPECT_LE(m.instructions, 20u)
        << "minimized repro still has " << m.instructions
        << " instructions:\n" << m.source;

    // The minimized repro must still fail with the bug and pass
    // without it (it is a *candidate* bug, not a program property).
    const Program minimized = assemble(m.source);
    EXPECT_TRUE(runLockstep(minimized, buggy).diverged);
    EXPECT_TRUE(runLockstep(minimized).equivalent);
}

TEST(Oracle, TimingInvariantsHoldOnInstrumentedPrograms)
{
    GenParams gen;
    gen.instrument = true;
    gen.allowCalls = false;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const GeneratedProgram g = generate(seed, gen);
        const OracleResult r = runTimingOracle(g);
        EXPECT_TRUE(r.ok) << "seed " << seed << "\n" << r.report;
        EXPECT_GE(r.subtasks, 1) << "seed " << seed;
    }
}

TEST(Corpus, ReproFormatRoundTrips)
{
    ReproCase r;
    r.seed = 987654321;
    r.profile = "memory";
    r.note = "final r5 mismatch";
    r.source = "        lh r5, 2(r9)\n        halt\n";
    const ReproCase back = parseRepro(formatRepro(r));
    EXPECT_EQ(back.seed, r.seed);
    EXPECT_EQ(back.profile, r.profile);
    EXPECT_EQ(back.note, r.note);
    EXPECT_EQ(back.source, r.source);
    // Idempotent: formatting the parse reproduces the file.
    EXPECT_EQ(formatRepro(back), formatRepro(r));
}

TEST(Corpus, EveryCheckedInReproReplaysEquivalent)
{
    // Regression replay: every repro in tests/corpus/ must assemble
    // and run equivalently on the current simulator. (Files recording
    // a fixed candidate bug still guard against its return: they
    // diverge again the moment the bug reappears.)
    const std::filesystem::path dir = VISA_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    int replayed = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".s")
            continue;
        const ReproCase rc = loadRepro(entry.path().string());
        EXPECT_FALSE(rc.source.empty()) << entry.path();
        const Program prog = assemble(rc.source);
        const LockstepResult r = runLockstep(prog);
        EXPECT_TRUE(r.equivalent)
            << entry.path() << " (seed " << rc.seed << ", note: "
            << rc.note << ")\n" << r.report;
        ++replayed;
    }
    EXPECT_GE(replayed, 4) << "corpus unexpectedly small in " << dir;
}

TEST(Corpus, SignExtensionReprosCatchTheInjectedBug)
{
    // The subword sign-extension repros were minimized from the
    // injected-bug hunt; they must still detect that bug class.
    const std::filesystem::path dir = VISA_CORPUS_DIR;
    const LockstepOptions buggy = buggyOptions();
    int detected = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".s")
            continue;
        const ReproCase rc = loadRepro(entry.path().string());
        if (rc.note.find("sign-exten") == std::string::npos)
            continue;
        const LockstepResult r =
            runLockstep(assemble(rc.source), buggy);
        EXPECT_TRUE(r.diverged) << entry.path();
        ++detected;
    }
    EXPECT_GE(detected, 1);
}

} // anonymous namespace
} // namespace visa
