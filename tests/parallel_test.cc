/**
 * @file
 * Tests of the campaign thread pool (src/sim/parallel.hh): every index
 * runs exactly once, results land in input order, exceptions propagate
 * like serial execution, VISA_THREADS is honored, and nesting works.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/parallel.hh"

namespace visa
{
namespace
{

/** Scoped VISA_THREADS override, restored on destruction. */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(const char *value)
    {
        const char *old = std::getenv("VISA_THREADS");
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value)
            setenv("VISA_THREADS", value, 1);
        else
            unsetenv("VISA_THREADS");
    }

    ~ThreadsEnv()
    {
        if (had_)
            setenv("VISA_THREADS", saved_.c_str(), 1);
        else
            unsetenv("VISA_THREADS");
    }

  private:
    bool had_ = false;
    std::string saved_;
};

TEST(SimThreads, EnvOverrideAndClamp)
{
    {
        ThreadsEnv env("3");
        EXPECT_EQ(simThreads(), 3u);
    }
    {
        ThreadsEnv env("0");    // nonsense values clamp to 1
        EXPECT_EQ(simThreads(), 1u);
    }
    {
        ThreadsEnv env(nullptr);
        EXPECT_GE(simThreads(), 1u);
    }
}

TEST(ParallelFor, EveryIndexRunsExactlyOnceInOrderSlots)
{
    for (const char *threads : {"1", "4"}) {
        ThreadsEnv env(threads);
        const std::size_t n = 100;
        std::vector<int> out(n, -1);
        std::atomic<int> calls{0};
        parallelFor(n, [&](std::size_t i) {
            out[i] = static_cast<int>(i) * 3;
            ++calls;
        });
        EXPECT_EQ(calls.load(), static_cast<int>(n));
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(out[i], static_cast<int>(i) * 3);
    }
}

TEST(ParallelFor, ZeroAndOneAreNoopAndInline)
{
    int ran = 0;
    parallelFor(0, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0);
    parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++ran;
    });
    EXPECT_EQ(ran, 1);
}

TEST(ParallelFor, LowestIndexExceptionWins)
{
    for (const char *threads : {"1", "4"}) {
        ThreadsEnv env(threads);
        std::atomic<int> completed{0};
        try {
            parallelFor(8, [&](std::size_t i) {
                if (i == 2)
                    throw std::runtime_error("arm 2");
                if (i == 5)
                    throw std::runtime_error("arm 5");
                ++completed;
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            // Either mode reports the lowest-index failure, exactly as
            // a serial loop would surface it.
            EXPECT_STREQ(e.what(), "arm 2");
        }
        // Pooled arms all run to completion before the rethrow; the
        // serial fallback stops at the first throw, like any loop.
        if (std::string(threads) == "1")
            EXPECT_EQ(completed.load(), 2);
        else
            EXPECT_EQ(completed.load(), 6);
    }
}

TEST(ParallelFor, NestedCallsAreSafe)
{
    ThreadsEnv env("2");
    std::atomic<int> total{0};
    parallelFor(3, [&](std::size_t) {
        parallelFor(4, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 12);
}

TEST(ThreadPool, SubmitWaitAndReuseAcrossWaves)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.threads(), 2u);
    std::atomic<int> sum{0};
    for (int wave = 0; wave < 3; ++wave) {
        for (int j = 0; j < 16; ++j)
            pool.submit([&sum] { ++sum; });
        pool.wait();
        EXPECT_EQ(sum.load(), 16 * (wave + 1));
    }
}

TEST(ThreadPool, ZeroThreadsRunsInlineOnWait)
{
    ThreadPool pool(0);
    int ran = 0;
    pool.submit([&ran] { ++ran; });
    pool.submit([&ran] { ++ran; });
    EXPECT_EQ(pool.threads(), 0u);
    pool.wait();
    EXPECT_EQ(ran, 2);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int j = 0; j < 8; ++j)
            pool.submit([&ran] { ++ran; });
        // no explicit wait()
    }
    EXPECT_EQ(ran.load(), 8);
}

} // anonymous namespace
} // namespace visa
