/**
 * @file
 * SimpleCpu tests: functional correctness, VISA pipeline timing rules
 * (load-use interlock, static-prediction penalties, cache miss stalls),
 * MMIO devices, and the watchdog.
 */

#include <gtest/gtest.h>

#include "tests/test_util.hh"

namespace visa
{
namespace
{

using test::SimpleMachine;

TEST(SimpleCpuFunctional, ArithmeticLoop)
{
    SimpleMachine m(R"(
        addi r4, r0, 10
        addi r5, r0, 0
loop:   add  r5, r5, r4
        subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    auto res = m.run();
    EXPECT_EQ(res.reason, StopReason::Halted);
    EXPECT_EQ(m.intReg(5), 55u);    // 10+9+...+1
}

TEST(SimpleCpuFunctional, MemoryRoundTrip)
{
    SimpleMachine m(R"(
        la  r4, buf
        addi r5, r0, -123
        sw  r5, 0(r4)
        lw  r6, 0(r4)
        sb  r5, 8(r4)
        lbu r7, 8(r4)
        lb  r8, 8(r4)
        halt
        .data
buf:    .space 16
    )");
    m.run();
    EXPECT_EQ(static_cast<std::int32_t>(m.intReg(6)), -123);
    EXPECT_EQ(m.intReg(7), 0x85u);    // -123 & 0xff
    EXPECT_EQ(static_cast<std::int32_t>(m.intReg(8)), -123);
}

TEST(SimpleCpuFunctional, FloatingPoint)
{
    SimpleMachine m(R"(
        la   r4, vals
        ldc1 f2, 0(r4)
        ldc1 f4, 8(r4)
        add.d f6, f2, f4
        mul.d f8, f2, f4
        div.d f10, f4, f2
        c.lt.d f2, f4
        bc1t was_less
        addi r5, r0, 0
        j done
was_less:
        addi r5, r0, 1
done:   cvt.w.d r6, f8
        sdc1 f6, 16(r4)
        halt
        .data
vals:   .double 2.5, 4.0
        .space 8
    )");
    m.run();
    EXPECT_EQ(m.intReg(5), 1u);
    EXPECT_EQ(m.intReg(6), 10u);    // trunc(2.5*4.0)
    EXPECT_DOUBLE_EQ(m.mem.readDouble(m.prog.symbol("vals") + 16), 6.5);
}

TEST(SimpleCpuFunctional, JalAndJr)
{
    SimpleMachine m(R"(
        .entry main
func:   addi r5, r0, 7
        jr ra
main:   jal func
        addi r5, r5, 1
        halt
    )");
    m.run();
    EXPECT_EQ(m.intReg(5), 8u);
}

TEST(SimpleCpuTiming, ColdStartSingleInstruction)
{
    // One cold I-cache miss (100 cycles at 1 GHz) + six pipe stages.
    SimpleMachine m(R"(
        addi r4, r0, 1
        halt
    )");
    m.run();
    // addi: IF 0..100 (1+100 miss), ID 101, RR 102, EX 103, MEM 104,
    // WB 105 -> halt one cycle behind at every stage -> total 107.
    EXPECT_EQ(m.cpu->cycles(), 107u);
}

TEST(SimpleCpuTiming, PipelinedThroughputOneInstrPerCycle)
{
    SimpleMachine a(R"(
        add r5, r5, r5
        halt
    )");
    SimpleMachine b(R"(
        add r5, r5, r5
        add r6, r6, r6
        add r7, r7, r7
        add r8, r8, r8
        halt
    )");
    a.run();
    b.run();
    // Three extra independent ALU instructions cost exactly 3 cycles.
    EXPECT_EQ(b.cpu->cycles() - a.cpu->cycles(), 3u);
}

TEST(SimpleCpuTiming, LoadUseInterlockCostsOneCycle)
{
    SimpleMachine dep(R"(
        la r4, buf
        lw r5, 0(r4)
        add r6, r5, r5     # depends on the load directly ahead
        halt
        .data
buf:    .word 3
    )");
    SimpleMachine indep(R"(
        la r4, buf
        lw r5, 0(r4)
        add r6, r7, r7     # independent
        halt
        .data
buf:    .word 3
    )");
    dep.run();
    indep.run();
    EXPECT_EQ(dep.cpu->cycles(), indep.cpu->cycles() + 1);
}

TEST(SimpleCpuTiming, MispredictedForwardBranchCostsFour)
{
    // A forward branch to the fall-through address commits the same
    // instruction stream taken or not; only the prediction differs.
    const char *src = R"(
        beq r4, r0, next
next:   addi r5, r0, 1
        halt
    )";
    SimpleMachine taken(src);       // r4 == 0: taken, predicted NT
    SimpleMachine nottaken(src);
    nottaken.cpu->arch().writeInt(4, 99);    // not taken: correct
    taken.run();
    nottaken.run();
    EXPECT_EQ(taken.cpu->mispredicts(), 1u);
    EXPECT_EQ(nottaken.cpu->mispredicts(), 0u);
    EXPECT_EQ(taken.cpu->cycles(), nottaken.cpu->cycles() + 4);
}

TEST(SimpleCpuTiming, BackwardLoopBranchPredictedCorrectly)
{
    // Steady-state loop iterations cost exactly 2 cycles (2 instrs,
    // backward branch predicted taken, no bubbles). The final exit
    // iteration mispredicts; both versions share that cost.
    const char *tpl = R"(
        addi r4, r0, %d
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )";
    char src10[256], src30[256];
    std::snprintf(src10, sizeof(src10), tpl, 10);
    std::snprintf(src30, sizeof(src30), tpl, 30);
    SimpleMachine a(src10), b(src30);
    a.run();
    b.run();
    EXPECT_EQ(b.cpu->cycles() - a.cpu->cycles(), 40u);    // 20 iters * 2
}

TEST(SimpleCpuTiming, UnpipelinedFuSerializesMultiCycleOps)
{
    // Two independent div operations cannot overlap on the single
    // unpipelined universal FU: the second waits all 35 cycles.
    SimpleMachine two(R"(
        div r5, r6, r7
        div r8, r9, r10
        halt
    )");
    SimpleMachine one(R"(
        div r5, r6, r7
        add r8, r9, r10
        halt
    )");
    two.run();
    one.run();
    EXPECT_EQ(two.cpu->cycles() - one.cpu->cycles(), 34u);
}

TEST(SimpleCpuTiming, IndirectJumpStallsFetch)
{
    SimpleMachine indirect(R"(
        .entry main
main:   la r4, tgt
        jr r4
tgt:    halt
    )");
    SimpleMachine direct(R"(
        .entry main
main:   la r4, tgt     # keep identical instruction count
        j tgt
tgt:    halt
    )");
    indirect.run();
    direct.run();
    EXPECT_EQ(indirect.cpu->cycles(), direct.cpu->cycles() + 4);
}

TEST(SimpleCpuTiming, DCacheMissStallsMemoryStage)
{
    // Two loads from the same cold line: first misses (100 cycles at
    // 1 GHz), second hits.
    SimpleMachine m(R"(
        la r4, buf
        lw r5, 0(r4)
        lw r6, 4(r4)
        halt
        .data
buf:    .word 1, 2
    )");
    SimpleMachine warm(R"(
        la r4, buf
        lw r5, 0(r4)
        lw r6, 4(r4)
        lw r7, 8(r4)
        halt
        .data
buf:    .word 1, 2, 3
    )");
    m.run();
    warm.run();
    // The third load hits: costs exactly 1 extra cycle.
    EXPECT_EQ(warm.cpu->cycles() - m.cpu->cycles(), 1u);
    EXPECT_EQ(m.cpu->dcache().misses(), 1u);
    EXPECT_EQ(warm.cpu->dcache().misses(), 1u);
}

TEST(SimpleCpuTiming, FrequencyScalesMissPenalty)
{
    // At 100 MHz the 100 ns memory stall is 10 cycles; at 1 GHz, 100.
    auto run_at = [](MHz f) {
        SimpleMachine m(R"(
            addi r4, r0, 1
            halt
        )");
        m.cpu->setFrequency(f);
        m.run();
        return m.cpu->cycles();
    };
    Cycles at1000 = run_at(1000);
    Cycles at100 = run_at(100);
    EXPECT_EQ(at1000 - at100, 90u);    // one cold I-miss difference
}

TEST(SimpleCpuMmio, CycleCounterAndChecksum)
{
    SimpleMachine m(R"(
        li r4, 0xFFFF0004      # cycle counter
        sw r0, 0(r4)           # reset
        lw r5, 0(r4)           # read
        li r6, 0xFFFF0018      # checksum port
        li r7, 0xBEEF
        sw r7, 0(r6)
        halt
    )");
    m.run();
    EXPECT_TRUE(m.platform.checksumReported());
    EXPECT_EQ(m.platform.lastChecksum(), 0xBEEFu);
    // The counter read happens one memory-stage cycle after the reset.
    EXPECT_EQ(m.intReg(5), 1u);
}

TEST(SimpleCpuMmio, SubtaskAndAetReporting)
{
    SimpleMachine m(R"(
        li r4, 0xFFFF0010      # subtask id port
        li r5, 3
        sw r5, 0(r4)
        li r6, 0xFFFF0014      # AET report port
        li r7, 1234
        sw r7, 0(r6)
        halt
    )");
    int begun = -1;
    std::uint64_t aet = 0;
    int aet_sub = -1;
    m.platform.onSubtaskBegin = [&](int s) { begun = s; };
    m.platform.onAetReport = [&](int s, std::uint64_t v) {
        aet_sub = s;
        aet = v;
    };
    m.run();
    EXPECT_EQ(begun, 3);
    EXPECT_EQ(aet_sub, 3);
    EXPECT_EQ(aet, 1234u);
}

TEST(SimpleCpuWatchdog, ExpiresWhenUnmasked)
{
    SimpleMachine m(R"(
        li r4, 0xFFFF0000      # watchdog
        li r5, 200
        sw r5, 0(r4)           # arm with 200 cycles
loop:   j loop                 # never halts
    )");
    m.platform.maskWatchdog(false);
    auto res = m.run(1000000);
    EXPECT_EQ(res.reason, StopReason::WatchdogExpired);
    EXPECT_FALSE(m.platform.watchdogArmed());
    EXPECT_LT(m.cpu->cycles(), 1000u);
}

TEST(SimpleCpuWatchdog, MaskedExpiryIsSilent)
{
    SimpleMachine m(R"(
        li r4, 0xFFFF0000
        li r5, 50
        sw r5, 0(r4)
        li r6, 2000
loop:   subi r6, r6, 1
        bgtz r6, loop
        halt
    )");
    // masked by default
    auto res = m.run();
    EXPECT_EQ(res.reason, StopReason::Halted);
    EXPECT_EQ(m.platform.expiredWhileMasked(), 1u);
}

TEST(SimpleCpuWatchdog, AdvancingPreventsExpiry)
{
    SimpleMachine m(R"(
        li r4, 0xFFFF0000
        li r5, 5000
        sw r5, 0(r4)           # arm generously
        li r6, 10
loop:   sw r5, 0(r4)           # keep advancing the interim deadline
        subi r6, r6, 1
        bgtz r6, loop
        halt
    )");
    m.platform.maskWatchdog(false);
    auto res = m.run();
    EXPECT_EQ(res.reason, StopReason::Halted);
}

TEST(SimpleCpuRun, CycleBudgetStopsAndResumes)
{
    SimpleMachine m(R"(
        addi r4, r0, 1000
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    auto res = m.run(50);
    EXPECT_EQ(res.reason, StopReason::CycleBudget);
    res = m.run();
    EXPECT_EQ(res.reason, StopReason::Halted);
    EXPECT_EQ(m.intReg(4), 0u);
}

TEST(SimpleCpuRun, AdvanceIdleAddsCyclesWithoutWork)
{
    SimpleMachine m(R"(
        addi r4, r0, 1
        halt
    )");
    m.cpu->advanceIdle(500);
    m.run();
    EXPECT_EQ(m.cpu->cycles(), 607u);    // 500 idle + 107 from cold start
    EXPECT_EQ(m.cpu->retired(), 2u);
}

TEST(SimpleCpuRun, ResetForTaskKeepsCachesWarm)
{
    SimpleMachine m(R"(
        addi r4, r0, 1
        halt
    )");
    m.run();
    Cycles cold = m.cpu->cycles();
    m.cpu->resetForTask();
    m.run();
    Cycles warm = m.cpu->cycles();
    EXPECT_EQ(cold - warm, 100u);    // second task avoids the I-miss
}

} // anonymous namespace
} // namespace visa
