/**
 * @file
 * OooCpu tests: functional equivalence with the simple pipeline, ILP
 * speedup, branch prediction effects, simple-mode VISA conformance
 * (identical cycle counts to SimpleCpu), mode switching, and the
 * watchdog on the complex pipeline.
 */

#include <gtest/gtest.h>

#include "tests/test_util.hh"

namespace visa
{
namespace
{

using test::OooMachine;
using test::SimpleMachine;

const char *sumLoop = R"(
        addi r4, r0, 100
        addi r5, r0, 0
loop:   add  r5, r5, r4
        subi r4, r4, 1
        bgtz r4, loop
        halt
)";

TEST(OooCpuFunctional, MatchesSimpleCpuResults)
{
    SimpleMachine s(sumLoop);
    OooMachine o(sumLoop);
    s.run();
    o.run();
    EXPECT_EQ(o.intReg(5), s.intReg(5));
    EXPECT_EQ(o.intReg(5), 5050u);
    EXPECT_EQ(o.cpu->retired(), s.cpu->retired());
}

TEST(OooCpuFunctional, MemoryAndFp)
{
    OooMachine m(R"(
        la   r4, vals
        ldc1 f2, 0(r4)
        ldc1 f4, 8(r4)
        mul.d f6, f2, f4
        sdc1 f6, 16(r4)
        lw   r5, 16(r4)
        halt
        .data
vals:   .double 3.0, 7.0
        .space 8
    )");
    auto res = m.run();
    EXPECT_EQ(res.reason, StopReason::Halted);
    EXPECT_DOUBLE_EQ(m.mem.readDouble(m.prog.symbol("vals") + 16), 21.0);
}

TEST(OooCpuFunctional, StoreToLoadForwarding)
{
    OooMachine m(R"(
        la  r4, buf
        addi r5, r0, 77
        sw  r5, 0(r4)
        lw  r6, 0(r4)      # must see the in-flight store's value
        add r7, r6, r6
        halt
        .data
buf:    .word 0
    )");
    m.run();
    EXPECT_EQ(m.intReg(6), 77u);
    EXPECT_EQ(m.intReg(7), 154u);
}

TEST(OooCpuPerformance, FasterThanSimpleOnIlp)
{
    // Independent work the 4-wide OOO core can overlap.
    std::string src = "        addi r4, r0, 50\n";
    src += "loop:\n";
    for (int i = 5; i < 25; ++i) {
        src += "        add r" + std::to_string(i) + ", r" +
               std::to_string(i) + ", r4\n";
    }
    src += R"(
        subi r4, r4, 1
        bgtz r4, loop
        halt
    )";
    SimpleMachine s(src);
    OooMachine o(src);
    s.run();
    o.run();
    EXPECT_EQ(o.cpu->retired(), s.cpu->retired());
    // Expect a healthy speedup (paper Table 3 reports 3.1x - 5.8x).
    EXPECT_GT(s.cpu->cycles(), o.cpu->cycles() * 2);
}

TEST(OooCpuPerformance, GshareLearnsLoopBranch)
{
    OooMachine m(sumLoop);
    m.run();
    // 100 loop branches; after warmup nearly all predicted.
    EXPECT_LT(m.cpu->branchMispredicts(), 12u);
}

TEST(OooCpuPerformance, MemoryLevelParallelism)
{
    // Independent loads from distinct cold lines overlap in the OOO
    // core (contention-limited) but serialize on the simple pipeline.
    const char *src = R"(
        la r4, buf
        lw r5, 0(r4)
        lw r6, 256(r4)
        lw r7, 512(r4)
        lw r8, 768(r4)
        halt
        .data
buf:    .space 1024
    )";
    SimpleMachine s(src);
    OooMachine o(src);
    s.run();
    o.run();
    // Simple: 4 serialized 100-cycle misses ~400+. OOO: overlapped.
    EXPECT_GT(s.cpu->cycles(), o.cpu->cycles() + 150);
}

TEST(OooCpuSimpleMode, CycleCountsMatchSimpleFixed)
{
    // T2 invariant: the complex pipeline in simple mode is cycle-exact
    // with the simple-fixed processor (same VISA timing recurrence,
    // same cache geometry, cold start).
    const char *programs[] = {
        sumLoop,
        R"(
        la r4, buf
        addi r5, r0, 16
loop:   lw r6, 0(r4)
        add r7, r7, r6
        sw r7, 64(r4)
        addi r4, r4, 4
        subi r5, r5, 1
        bgtz r5, loop
        halt
        .data
buf:    .space 256
        )",
        R"(
        la r4, v
        ldc1 f2, 0(r4)
        ldc1 f4, 8(r4)
        div.d f6, f4, f2
        mul.d f8, f6, f6
        sdc1 f8, 16(r4)
        halt
        .data
v:      .double 2.0, 10.0
        .space 8
        )",
    };
    for (const char *src : programs) {
        SimpleMachine s(src);
        OooMachine o(src);
        o.cpu->switchToSimple();
        s.run();
        o.run();
        EXPECT_EQ(o.cpu->cycles(), s.cpu->cycles());
        EXPECT_EQ(o.cpu->retired(), s.cpu->retired());
    }
}

TEST(OooCpuSimpleMode, SlowerThanComplexMode)
{
    OooMachine complex_m(sumLoop);
    OooMachine simple_m(sumLoop);
    simple_m.cpu->switchToSimple();
    complex_m.run();
    simple_m.run();
    EXPECT_LT(complex_m.cpu->cycles(), simple_m.cpu->cycles());
}

TEST(OooCpuModeSwitch, MidTaskSwitchPreservesFunction)
{
    OooMachine m(sumLoop);
    // Run a little in complex mode, then fall back to simple mode.
    m.run(40);
    m.cpu->switchToSimple();
    EXPECT_EQ(m.cpu->mode(), OooCpu::Mode::Simple);
    auto res = m.run();
    EXPECT_EQ(res.reason, StopReason::Halted);
    EXPECT_EQ(m.intReg(5), 5050u);
}

TEST(OooCpuModeSwitch, DrainCompletesInflightWork)
{
    OooMachine m(R"(
        div r5, r6, r7
        div r8, r9, r10
        addi r11, r0, 3
        halt
    )");
    m.run(110);    // past the cold I-miss; divides in flight
    Cycles before = m.cpu->cycles();
    m.cpu->switchToSimple();
    EXPECT_GT(m.cpu->cycles(), before);    // the drain took time
    m.run();
    EXPECT_EQ(m.intReg(11), 3u);
}

TEST(OooCpuWatchdog, ExpiresInComplexMode)
{
    OooMachine m(R"(
        li r4, 0xFFFF0000
        li r5, 300
        sw r5, 0(r4)
loop:   j loop
    )");
    m.platform.maskWatchdog(false);
    auto res = m.run(1000000);
    EXPECT_EQ(res.reason, StopReason::WatchdogExpired);
    EXPECT_LT(m.cpu->cycles(), 2000u);
}

TEST(OooCpuWatchdog, RecoverySequenceMeetsFunctionalGoal)
{
    // The canonical missed-checkpoint response: mask, drain+switch,
    // charge overhead, continue in simple mode.
    OooMachine m(R"(
        li r4, 0xFFFF0000
        li r5, 50
        sw r5, 0(r4)
        addi r6, r0, 400
loop:   subi r6, r6, 1
        bgtz r6, loop
        halt
    )");
    m.platform.maskWatchdog(false);
    auto res = m.run(1000000);
    ASSERT_EQ(res.reason, StopReason::WatchdogExpired);
    m.platform.maskWatchdog(true);
    m.cpu->switchToSimple();
    m.cpu->advanceIdle(100);    // reconfiguration overhead
    res = m.run();
    EXPECT_EQ(res.reason, StopReason::Halted);
    EXPECT_EQ(m.intReg(6), 0u);
}

TEST(OooCpuChecks, FlushingPredictorsSlowsNextRun)
{
    OooMachine warm(sumLoop);
    warm.run();
    warm.cpu->resetForTask();
    warm.run();
    Cycles warm_cycles = warm.cpu->cycles();

    OooMachine flushed(sumLoop);
    flushed.run();
    flushed.cpu->resetForTask();
    flushed.cpu->flushCachesAndPredictors();
    flushed.run();
    Cycles flushed_cycles = flushed.cpu->cycles();

    EXPECT_GT(flushed_cycles, warm_cycles);
}

TEST(OooCpuChecks, RobNeverExceedsCapacity)
{
    // Long dependent chain of divs keeps the ROB full; the program
    // still completes and retires everything.
    std::string src;
    for (int i = 0; i < 300; ++i)
        src += "        add r5, r5, r6\n";
    src += "        halt\n";
    OooMachine m(src);
    auto res = m.run();
    EXPECT_EQ(res.reason, StopReason::Halted);
    EXPECT_EQ(m.cpu->retired(), 301u);
}

} // anonymous namespace
} // namespace visa
