/**
 * @file
 * Tests for the later extensions: assembler .equ/.ascii directives,
 * cache replacement policies, and reproduction-shape regression locks
 * (the Table 3 bands as executable assertions).
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

// ---- assembler directives ----

TEST(AssemblerDirectives, EquDefinesAbsoluteSymbols)
{
    Program p = assemble(R"(
        .equ COUNT, 12
        .equ PORT, 0xFFFF0018
        addi r4, r0, COUNT
        li   r5, 7
        lui  r6, %hi(PORT)
        ori  r6, r6, %lo(PORT)
        sw   r5, 0(r6)
        halt
    )");
    EXPECT_EQ(p.symbol("COUNT"), 12u);
    EXPECT_EQ(p.text[0].imm, 12);
    test::SimpleMachine m(R"(
        .equ PORT, 0xFFFF0018
        li   r5, 7
        lui  r6, %hi(PORT)
        ori  r6, r6, %lo(PORT)
        sw   r5, 0(r6)
        halt
    )");
    m.run();
    EXPECT_EQ(m.platform.lastChecksum(), 7u);
}

TEST(AssemblerDirectives, EquDuplicateRejected)
{
    EXPECT_THROW(assemble(".equ A, 1\n.equ A, 2\nhalt"), FatalError);
    EXPECT_THROW(assemble(".equ A\nhalt"), FatalError);
}

TEST(AssemblerDirectives, AsciiAndAsciz)
{
    Program p = assemble(R"(
        halt
        .data
msg:    .asciz "hi\n"
raw:    .ascii "ab"
end:    .byte 7
    )");
    Addr msg = p.symbol("msg") - p.dataBase;
    EXPECT_EQ(p.data[msg], 'h');
    EXPECT_EQ(p.data[msg + 1], 'i');
    EXPECT_EQ(p.data[msg + 2], '\n');
    EXPECT_EQ(p.data[msg + 3], 0);          // asciz terminator
    Addr raw = p.symbol("raw") - p.dataBase;
    EXPECT_EQ(raw, msg + 4);                // no terminator on .ascii
    EXPECT_EQ(p.data[raw], 'a');
    EXPECT_EQ(p.data[raw + 1], 'b');
    EXPECT_EQ(p.data[p.symbol("end") - p.dataBase], 7);
}

TEST(AssemblerDirectives, AsciiRequiresQuotes)
{
    EXPECT_THROW(assemble("halt\n.data\n.ascii nope"), FatalError);
    EXPECT_THROW(assemble(".ascii \"in-text\"\nhalt"), FatalError);
}

TEST(AssemblerDirectives, SymbolPlusAddend)
{
    Program p = assemble(R"(
        la r4, buf+8
        halt
        .data
buf:    .word 1, 2, 3, 4
tag:    .word buf+4
    )");
    // la expands via %hi/%lo of buf+8.
    Addr target = p.symbol("buf") + 8;
    EXPECT_EQ(static_cast<Word>(p.text[0].imm), target >> 16);
    EXPECT_EQ(static_cast<Word>(p.text[1].imm), target & 0xFFFF);
    // .word with addend
    Addr off = p.symbol("tag") - p.dataBase;
    Word v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p.data[off + static_cast<std::size_t>(i)];
    EXPECT_EQ(v, p.symbol("buf") + 4);
}

// ---- replacement policies ----

TEST(ReplacementPolicy, FifoIgnoresRecency)
{
    CacheParams params{"c", 1024, 2, 64, ReplPolicy::Fifo};
    Cache c(params);
    // Set 0 conflicts at stride 512.
    c.access(0, false);        // fill A
    c.access(512, false);      // fill B
    EXPECT_TRUE(c.access(0, false));    // hit A (no recency update)
    c.access(1024, false);     // FIFO evicts A (oldest fill)
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(512));
    // Under LRU, the refresh of A would have evicted B instead.
    Cache l({"c", 1024, 2, 64, ReplPolicy::Lru});
    l.access(0, false);
    l.access(512, false);
    l.access(0, false);
    l.access(1024, false);
    EXPECT_TRUE(l.probe(0));
    EXPECT_FALSE(l.probe(512));
}

TEST(ReplacementPolicy, RandomIsDeterministic)
{
    auto run = []() {
        Cache c({"c", 1024, 2, 64, ReplPolicy::Random});
        std::vector<bool> hits;
        for (int i = 0; i < 64; ++i)
            hits.push_back(c.access(static_cast<Addr>((i % 5) * 512),
                                    false));
        return hits;
    };
    EXPECT_EQ(run(), run());
}

TEST(ReplacementPolicy, AllPoliciesFillInvalidWaysFirst)
{
    for (auto pol :
         {ReplPolicy::Lru, ReplPolicy::Fifo, ReplPolicy::Random}) {
        Cache c({"c", 2048, 4, 64, pol});
        for (Addr a = 0; a < 4; ++a)
            c.access(a * 512, false);    // 4 blocks, one set, 4 ways
        for (Addr a = 0; a < 4; ++a)
            EXPECT_TRUE(c.probe(a * 512)) << static_cast<int>(pol);
    }
}

// ---- reproduction shape locks ----

struct ShapeBand
{
    const char *name;
    double wcetRatioLo, wcetRatioHi;    // WCET / simple actual
    double speedupLo;                   // simple / complex
};

class ShapeRegression : public ::testing::TestWithParam<ShapeBand>
{
};

TEST_P(ShapeRegression, TableThreeBandsHold)
{
    const ShapeBand &band = GetParam();
    Workload wl = makeWorkload(band.name);
    DMissProfile dmiss = profileDataMisses(wl.program);
    WcetAnalyzer an(wl.program);

    test::SimpleMachine s(wl.source);
    test::OooMachine o(wl.source);
    s.run(20'000'000'000ULL);
    o.run(20'000'000'000ULL);
    double wcet_ratio =
        static_cast<double>(an.analyze(1000, &dmiss).taskCycles) /
        static_cast<double>(s.cpu->cycles());
    double speedup = static_cast<double>(s.cpu->cycles()) /
                     static_cast<double>(o.cpu->cycles());
    EXPECT_GE(wcet_ratio, band.wcetRatioLo) << band.name;
    EXPECT_LE(wcet_ratio, band.wcetRatioHi) << band.name;
    EXPECT_GE(speedup, band.speedupLo) << band.name;
}

// The bands the reproduction must keep (paper Table 3 shapes with
// slack for implementation drift; srt's 2x bound is the headline).
const ShapeBand shapeBands[] = {
    {"adpcm", 1.0, 1.3, 2.5},
    {"cnt", 1.0, 1.35, 2.2},
    {"fft", 1.0, 1.25, 2.2},
    {"lms", 1.0, 1.25, 2.5},
    {"mm", 1.0, 1.25, 4.0},
    {"srt", 1.6, 2.4, 2.0},
};

INSTANTIATE_TEST_SUITE_P(PaperSix, ShapeRegression,
                         ::testing::ValuesIn(shapeBands),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

} // anonymous namespace
} // namespace visa
