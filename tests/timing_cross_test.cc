/**
 * @file
 * Timing-equivalence oracle tests: the event-driven OooCpu must be
 * cycle-for-cycle identical to the frozen per-cycle reference stepper
 * (verify/ref_ooo_cpu.hh) on real workloads, the checked-in corpus,
 * and generated programs — including runs that drain into simple mode
 * and back mid-flight. A final test proves the oracle's detection
 * power by enabling the injected verification bug on the candidate
 * side only.
 *
 * The suite name carries "Differential" so the sanitizer tier
 * (tests/san_check.cmake) picks it up, putting both cores and the
 * comparison harness under ASan/UBSan.
 */

#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "cpu/ooo_cpu.hh"
#include "isa/assembler.hh"
#include "verify/corpus.hh"
#include "verify/inject.hh"
#include "verify/progen.hh"
#include "verify/timing_cross.hh"
#include "workloads/clab.hh"

#ifndef VISA_CORPUS_DIR
#error "VISA_CORPUS_DIR must point at tests/corpus"
#endif

namespace visa
{
namespace
{

using verify::runTimingCross;
using verify::TimingCrossOptions;
using verify::TimingCrossResult;

TEST(TimingCrossDifferential, WorkloadsAreCycleIdentical)
{
    for (const std::string &name : allWorkloadNames()) {
        const Workload w = makeWorkload(name);
        const TimingCrossResult r = runTimingCross(w.program);
        EXPECT_TRUE(r.equivalent) << name << "\n" << r.report;
        EXPECT_GT(r.eventsCompared, 0u) << name;
    }
}

TEST(TimingCrossDifferential, WorkloadsWithModeSwitchAreCycleIdentical)
{
    // Drain mid-flight into simple mode and back: exercises the drain
    // loop's idle skipping and the ModeSwitchDrain cycle accounting on
    // a real instruction mix.
    TimingCrossOptions opts;
    opts.modeSwitchAtCycle = 5000;
    opts.modeSwitchDwell = 4096;
    for (const char *name : {"adpcm", "mm", "jfdctint"}) {
        const Workload w = makeWorkload(name);
        const TimingCrossResult r = runTimingCross(w.program, opts);
        EXPECT_TRUE(r.equivalent) << name << "\n" << r.report;
    }
}

TEST(TimingCrossDifferential, CorpusProgramsAreCycleIdentical)
{
    const std::filesystem::path dir = VISA_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    int checked = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".s")
            continue;
        const verify::ReproCase rc =
            verify::loadRepro(entry.path().string());
        const TimingCrossResult r =
            runTimingCross(assemble(rc.source));
        EXPECT_TRUE(r.equivalent) << entry.path() << "\n" << r.report;
        ++checked;
    }
    EXPECT_GE(checked, 4);
}

TEST(TimingCrossDifferential, GeneratedProgramsAreCycleIdentical)
{
    verify::GenParams gen;
    for (std::uint64_t seed = 1; seed <= 48; ++seed) {
        gen.profile = static_cast<verify::GenProfile>(
            seed % 4);    // cycle through all profiles
        const verify::GeneratedProgram g = verify::generate(seed, gen);
        TimingCrossOptions opts;
        if (seed % 4 == 0)
            opts.modeSwitchAtCycle = 1024 + (seed % 7) * 512;
        const TimingCrossResult r = runTimingCross(g.program, opts);
        EXPECT_TRUE(r.equivalent)
            << "seed " << seed << "\n" << r.report;
    }
}

TEST(TimingCrossDifferential, DetectsCandidateOnlyBehaviorChange)
{
    // Enable the injected subword-load bug on the candidate side only:
    // the architectural streams fork, so the event streams must too.
    // This proves a one-sided change cannot slip past the oracle.
    TimingCrossOptions opts;
    auto inj = std::make_shared<verify::FaultInjector>(
        verify::loadExtBugSpec());
    opts.prepareCandidate = [inj](OooCpu &cpu) {
        cpu.setFaultPort(inj.get());
    };
    const std::filesystem::path dir = VISA_CORPUS_DIR;
    int detected = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".s")
            continue;
        const verify::ReproCase rc =
            verify::loadRepro(entry.path().string());
        if (rc.note.find("sign-exten") == std::string::npos)
            continue;
        const TimingCrossResult r =
            runTimingCross(assemble(rc.source), opts);
        EXPECT_TRUE(r.diverged) << entry.path();
        EXPECT_FALSE(r.report.empty()) << entry.path();
        ++detected;
    }
    EXPECT_GE(detected, 1);
}

} // anonymous namespace
} // namespace visa
