/**
 * @file
 * Golden cycle-count regression test: every workload in src/workloads
 * runs cold-start to completion on each of the three machine
 * configurations (the simple-fixed pipeline, the complex pipeline in
 * its default out-of-order mode, and the complex pipeline forced into
 * the VISA simple mode) and the total cycle count and retired
 * instruction count are compared against the checked-in table
 * (tests/timing_golden.inc).
 *
 * The table pins the timing model bit-for-bit: any change to the
 * cycle-level behavior of either pipeline — intended or not — shows up
 * as an explicit one-line diff of the table, reviewed like any other
 * code change. The event-driven complex core (DESIGN.md) was landed
 * against this table unchanged, which is the cycle-identity proof the
 * refactor claims.
 *
 * Regenerating after an intentional timing change:
 *
 *   VISA_TIMING_GOLDEN_DUMP=1 build/tests/visa_tests \
 *       --gtest_filter='TimingGolden.*' 2>/dev/null > tests/timing_golden.inc
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/builder.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

struct GoldenRow
{
    const char *workload;
    const char *config;
    std::uint64_t cycles;
    std::uint64_t retired;
};

constexpr GoldenRow goldenRows[] = {
#include "tests/timing_golden.inc"
};

constexpr const char *configNames[] = {"simple-fixed", "complex",
                                       "forced-simple"};

CpuKind
configKind(const std::string &config)
{
    if (config == "simple-fixed")
        return CpuKind::Simple;
    if (config == "complex")
        return CpuKind::Complex;
    return CpuKind::ComplexSimpleMode;
}

/** Cold-start run of @p workload on @p config until HALT. */
GoldenRow
measure(const char *workload, const char *config)
{
    auto sim = SimBuilder()
                   .workload(workload)
                   .cpu(configKind(config))
                   .build();
    RunResult r = sim->cpu().run();
    EXPECT_EQ(r.reason, StopReason::Halted)
        << workload << " on " << config << " did not halt";
    EXPECT_EQ(sim->platform().lastChecksum(),
              sim->workload()->expectedChecksum)
        << workload << " on " << config << " computed a bad checksum";
    return {workload, config, sim->cpu().cycles(), sim->cpu().retired()};
}

TEST(TimingGolden, AllWorkloadsMatchTable)
{
    const bool dump = std::getenv("VISA_TIMING_GOLDEN_DUMP") != nullptr;
    for (const std::string &name : allWorkloadNames()) {
        for (const char *config : configNames) {
            const GoldenRow actual = measure(name.c_str(), config);
            if (dump) {
                std::printf("    {\"%s\", \"%s\", %lluull, %lluull},\n",
                            actual.workload, actual.config,
                            static_cast<unsigned long long>(actual.cycles),
                            static_cast<unsigned long long>(
                                actual.retired));
                continue;
            }
            const GoldenRow *golden = nullptr;
            for (const GoldenRow &row : goldenRows)
                if (name == row.workload && actual.config == row.config) {
                    golden = &row;
                    break;
                }
            ASSERT_NE(golden, nullptr)
                << "no golden row for " << name << " / " << config
                << " — regenerate tests/timing_golden.inc (see file "
                   "comment)";
            EXPECT_EQ(actual.cycles, golden->cycles)
                << name << " on " << config
                << ": cycle count changed — if intentional, regenerate "
                   "tests/timing_golden.inc (see file comment)";
            EXPECT_EQ(actual.retired, golden->retired)
                << name << " on " << config
                << ": retired count changed — if intentional, regenerate "
                   "tests/timing_golden.inc (see file comment)";
        }
    }
}

/** The table covers exactly workloads x configs, nothing stale. */
TEST(TimingGolden, TableIsComplete)
{
    const std::size_t expected = allWorkloadNames().size() * 3;
    EXPECT_EQ(std::size(goldenRows), expected)
        << "tests/timing_golden.inc is stale — regenerate it (see file "
           "comment)";
}

} // anonymous namespace
} // namespace visa
