/**
 * @file
 * Block-granular profiler tests (sim/prof): install/uninstall gating,
 * the equivalence of the cached batch path, the uncached per-step
 * path, and the observer path (identical block/edge profiles and
 * architectural results), cycle-attribution reconciliation on both
 * timing pipelines, checkpoint slack joins against the run-time
 * system's own AET counter, bound-side attribution summing exactly to
 * the WCET table, coverage-map monotonicity, profile-JSON
 * well-formedness, and byte-identical profiles across thread-pool
 * widths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/runtime.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "sim/builder.hh"
#include "sim/json.hh"
#include "sim/parallel.hh"
#include "sim/prof/coverage.hh"
#include "sim/prof/prof.hh"
#include "verify/progen.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

/** Bare functional rig around one program. */
struct FuncRig
{
    explicit FuncRig(const Program &prog)
        : core(prog, mem, platform)
    {
        mem.loadProgram(prog);
        core.reset();
    }

    MainMemory mem;
    Platform platform;
    ExecCore core;
};

/** Run @p prog to completion on a bare ExecCore under a profiler. */
prof::BlockProfiler
profileFunctional(const Program &prog, bool block_cache,
                  ExecObserver *obs = nullptr)
{
    FuncRig rig(prog);
    rig.core.setBlockCacheEnabled(block_cache);
    rig.core.reset();
    if (obs)
        rig.core.setObserver(obs);
    prof::BlockProfiler prof(prog);
    {
        prof::ScopedProfiler scope(prof);
        const ExecCore::FuncRunResult r =
            rig.core.runFunctional(50'000'000);
        EXPECT_TRUE(r.halted);
    }
    return prof;
}

void
expectSameProfile(const prof::BlockProfiler &a,
                  const prof::BlockProfiler &b, const char *what)
{
    EXPECT_EQ(a.totalInsts(), b.totalInsts()) << what;
    EXPECT_EQ(a.totalEntries(), b.totalEntries()) << what;
    EXPECT_EQ(a.instCounts(), b.instCounts()) << what;
    EXPECT_EQ(a.edges(), b.edges()) << what;
    const auto ba = a.blocks(), bb = b.blocks();
    ASSERT_EQ(ba.size(), bb.size()) << what;
    for (std::size_t i = 0; i < ba.size(); ++i) {
        EXPECT_EQ(ba[i].pc, bb[i].pc) << what;
        EXPECT_EQ(ba[i].entries, bb[i].entries) << what;
        EXPECT_EQ(ba[i].insts, bb[i].insts) << what;
    }
}

TEST(Prof, InstallUninstallGating)
{
    EXPECT_EQ(prof::currentProfiler(), nullptr);
    const Workload wl = makeWorkload("cnt");
    prof::BlockProfiler outer(wl.program);
    {
        prof::ScopedProfiler s1(outer);
        EXPECT_EQ(prof::currentProfiler(), &outer);
        prof::BlockProfiler inner(wl.program);
        {
            prof::ScopedProfiler s2(inner);
            EXPECT_EQ(prof::currentProfiler(), &inner);
        }
        EXPECT_EQ(prof::currentProfiler(), &outer);
    }
    EXPECT_EQ(prof::currentProfiler(), nullptr);

    // An uninstalled run records nothing into the profiler.
    FuncRig rig(wl.program);
    EXPECT_TRUE(rig.core.runFunctional(50'000'000).halted);
    EXPECT_EQ(outer.totalInsts(), 0u);
    EXPECT_EQ(outer.totalEntries(), 0u);
}

TEST(Prof, CachedUncachedAndObserverPathsAgree)
{
    // The cached batch path, the uncached per-step dispatch, and the
    // observer-forced per-instruction path must produce the same
    // block/edge profile and the same architectural result.
    struct NullObs final : ExecObserver
    {
        std::uint64_t steps = 0;
        void onStep(const ExecInfo &, const ArchState &) override
        {
            ++steps;
        }
    };

    for (const char *name : {"cnt", "mm", "fir"}) {
        const Workload wl = makeWorkload(name);
        const prof::BlockProfiler cached =
            profileFunctional(wl.program, true);
        const prof::BlockProfiler uncached =
            profileFunctional(wl.program, false);
        NullObs obs;
        const prof::BlockProfiler observed =
            profileFunctional(wl.program, true, &obs);

        EXPECT_GT(cached.totalInsts(), 0u) << name;
        EXPECT_GT(cached.totalEntries(), 0u) << name;
        expectSameProfile(cached, uncached, name);
        expectSameProfile(cached, observed, name);
        // The observer saw every instruction individually.
        EXPECT_EQ(obs.steps, cached.totalInsts()) << name;
    }
}

TEST(Prof, SimpleCpuAttributionReconciles)
{
    const Workload wl = makeWorkload("cnt");
    auto sim =
        SimBuilder().program(wl.program).cpu(CpuKind::Simple).build();
    prof::BlockProfiler prof(wl.program);
    {
        prof::ScopedProfiler scope(prof);
        sim->cpu().run(noCycleLimit);
    }
    EXPECT_EQ(prof.totalInsts(), sim->cpu().retired());
    // The in-order pipeline charges every cycle to an instruction:
    // attributed cycles alone cover the whole run.
    EXPECT_EQ(prof.attributedCycles() + prof.unattributedCycles(),
              sim->cpu().cycles());
    EXPECT_EQ(prof.unattributedCycles(), 0u);
}

TEST(Prof, OooCpuAttributionBoundsAndCounts)
{
    const Workload wl = makeWorkload("cnt");
    auto sim =
        SimBuilder().program(wl.program).cpu(CpuKind::Complex).build();
    prof::BlockProfiler prof(wl.program);
    {
        prof::ScopedProfiler scope(prof);
        sim->cpu().run(noCycleLimit);
    }
    EXPECT_EQ(prof.totalInsts(), sim->cpu().retired());
    // Retire-time attribution: every charged cycle is a real cycle,
    // and only the post-final-retire drain can go uncharged.
    EXPECT_GT(prof.attributedCycles(), 0u);
    EXPECT_LE(prof.attributedCycles() + prof.unattributedCycles(),
              sim->cpu().cycles());
}

TEST(Prof, RuntimeCheckpointJoinMatchesAetCounter)
{
    // Full VISA runtime instances: every guest AET report must land in
    // the profile, and the profile's AET total must equal the
    // run-time system's own counter exactly.
    struct Stack
    {
        explicit Stack(const std::string &name)
            : wl(makeWorkload(name)), analyzer(wl.program),
              dmiss(profileDataMisses(wl.program)),
              wcet(analyzer, dvs, &dmiss)
        {
            mem.loadProgram(wl.program);
        }
        Workload wl;
        WcetAnalyzer analyzer;
        DMissProfile dmiss;
        DvsTable dvs;
        WcetTable wcet;
        MainMemory mem;
        Platform platform;
        MemController memctrl;
    };

    Stack s("cnt");
    OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    RuntimeConfig cfg;
    cfg.deadlineSeconds = s.wcet.taskSeconds(600);
    cfg.ovhdSeconds = 2e-6;
    cfg.dvsSoftwareCycles = 500;
    cfg.drainBudgetCycles = 512;
    VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs, cfg);

    prof::BlockProfiler prof(s.wl.program);
    constexpr int tasks = 6;
    {
        prof::ScopedProfiler scope(prof);
        for (int t = 0; t < tasks; ++t)
            EXPECT_TRUE(rt.runTask().deadlineMet);
    }

    const int nsub = s.wcet.numSubtasks();
    EXPECT_EQ(prof.checkpoints().size(),
              static_cast<std::size_t>(tasks * nsub));
    EXPECT_EQ(prof.aetCyclesTotal(), rt.aetCyclesTotal());
    EXPECT_GT(prof.aetCyclesTotal(), 0u);
    for (const prof::CheckpointRecord &c : prof.checkpoints()) {
        EXPECT_GE(c.subtask, 1);
        EXPECT_LE(c.subtask, nsub);
        EXPECT_GT(c.aet, 0u);
        EXPECT_GT(c.wcet, 0u);
        EXPECT_GE(c.freq, s.dvs.minFreq());
        EXPECT_LE(c.freq, s.dvs.maxFreq());
    }
    // Sub-task phase switches were observed: cycles landed in phases
    // beyond the "outside any sub-task" bucket.
    std::uint64_t in_phase = 0;
    for (std::size_t i = 1; i < prof.phaseCycles().size(); ++i)
        in_phase += prof.phaseCycles()[i];
    EXPECT_GT(in_phase, 0u);
}

TEST(Prof, WcetAttributionSumsToTable)
{
    const Workload wl = makeWorkload("cnt");
    WcetAnalyzer analyzer(wl.program);
    const DMissProfile dmiss = profileDataMisses(wl.program);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs, &dmiss);

    for (MHz f : {dvs.minFreq(), dvs.maxFreq()}) {
        const WcetAttribution attr = analyzer.attribute(f, &dmiss);
        EXPECT_EQ(attr.frequency, f);
        ASSERT_EQ(attr.subtaskCharges.size(),
                  static_cast<std::size_t>(wcet.numSubtasks()));
        for (int k = 0; k < wcet.numSubtasks(); ++k) {
            const auto &charges =
                attr.subtaskCharges[static_cast<std::size_t>(k)];
            std::uint64_t sum = 0;
            for (const WcetCharge &c : charges)
                sum += c.cycles;
            // The re-derived worst-case path must account for the
            // published bound cycle-for-cycle.
            EXPECT_EQ(sum, wcet.subtaskCycles(k, f))
                << "subtask " << k + 1 << " @ " << f << " MHz";
        }
    }
}

TEST(Prof, CoverageMapMonotonicAndDeterministic)
{
    prof::CoverageMap map(1 << 16);
    EXPECT_EQ(map.population(), 0u);
    EXPECT_TRUE(map.insert(0x1234567890abcdefULL));
    EXPECT_FALSE(map.insert(0x1234567890abcdefULL)) << "same bit twice";
    EXPECT_EQ(map.population(), 1u);

    // Features are deterministic per program and accumulate
    // monotonically across a corpus.
    verify::GenParams gen;
    std::uint64_t last_pop = map.population();
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const verify::GeneratedProgram g = verify::generate(seed, gen);
        const prof::BlockProfiler p = profileFunctional(g.program, true);
        const std::vector<std::uint64_t> feats =
            prof::coverageFeatures(p, g.program);
        EXPECT_FALSE(feats.empty()) << "seed " << seed;

        const prof::BlockProfiler p2 =
            profileFunctional(g.program, false);
        EXPECT_EQ(feats, prof::coverageFeatures(p2, g.program))
            << "features must not depend on the dispatch path";

        map.add(feats);
        EXPECT_GE(map.population(), last_pop);
        last_pop = map.population();
        EXPECT_EQ(map.add(feats), 0u) << "re-adding discovers nothing";
    }
    EXPECT_GT(map.population(), 1u);
}

TEST(Prof, ProfileJsonParsesAndMatchesAccessors)
{
    const Workload wl = makeWorkload("cnt");
    const prof::BlockProfiler prof = profileFunctional(wl.program, true);

    std::ostringstream os;
    prof.writeJson(os);
    const json::Value doc = json::Parser(os.str()).parse();
    EXPECT_EQ(doc.at("kind").string, "visa-profile");
    EXPECT_EQ(static_cast<std::uint64_t>(doc.at("schema").number), 3u);
    const json::Value &total = doc.at("total");
    EXPECT_EQ(static_cast<std::uint64_t>(total.at("insts").number),
              prof.totalInsts());
    EXPECT_EQ(
        static_cast<std::uint64_t>(total.at("block_entries").number),
        prof.totalEntries());
    EXPECT_EQ(doc.at("blocks").array.size(), prof.blocks().size());
    EXPECT_EQ(doc.at("edges").array.size(), prof.edges().size());
    // Every block row carries its disassembly.
    for (const json::Value &b : doc.at("blocks").array)
        EXPECT_EQ(b.at("disasm").array.size(),
                  static_cast<std::size_t>(b.at("words").number));
}

/** One arm of the pool-width determinism check: profile JSON bytes. */
std::string
profileArm(const Workload &wl)
{
    auto sim = SimBuilder()
                   .program(wl.program)
                   .cpu(CpuKind::Simple)
                   .blockCache(true)
                   .build();
    prof::BlockProfiler prof(wl.program);
    {
        prof::ScopedProfiler scope(prof);
        sim->cpu().run(noCycleLimit);
    }
    std::ostringstream os;
    prof.writeJson(os);
    return os.str();
}

TEST(Prof, ProfilesAreByteIdenticalAcrossPools)
{
    // Same workloads, serial vs a 4-wide pool: profiling is
    // thread-local, so the exported profiles must not change by a byte.
    const std::vector<std::string> names = {"cnt", "fir"};
    std::vector<Workload> wls;
    for (const auto &n : names)
        wls.push_back(makeWorkload(n));

    std::vector<std::string> serial(wls.size());
    for (std::size_t i = 0; i < wls.size(); ++i)
        serial[i] = profileArm(wls[i]);

    const char *old = std::getenv("VISA_THREADS");
    const std::string saved = old ? old : "";
    setenv("VISA_THREADS", "4", 1);
    std::vector<std::string> pooled(wls.size());
    parallelFor(wls.size(),
                [&](std::size_t i) { pooled[i] = profileArm(wls[i]); });
    if (old)
        setenv("VISA_THREADS", saved.c_str(), 1);
    else
        unsetenv("VISA_THREADS");

    for (std::size_t i = 0; i < wls.size(); ++i) {
        EXPECT_FALSE(serial[i].empty()) << names[i];
        EXPECT_EQ(pooled[i], serial[i]) << names[i];
    }
}

} // anonymous namespace
} // namespace visa
