# End-to-end check of the tracing pipeline, run as a ctest entry (and
# therefore also under the ASan/UBSan debug preset):
#
#   1. visa-sim runs a small VISA campaign with induced mispredictions
#      at the fig4-style minimum deadline, recording a Chrome trace, a
#      JSONL trace, and a hierarchical stats JSON;
#   2. visa-trace --validate schema-checks both trace formats against
#      the event-kind table;
#   3. visa-trace summarizes the JSONL trace (slack, margins, residency)
#      and must exit cleanly.
#
# Expects -DVISA_SIM=..., -DVISA_TRACE=..., -DWORK_DIR=...

foreach(var VISA_SIM VISA_TRACE WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "trace_schema_check.cmake: ${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(chrome "${WORK_DIR}/trace.json")
set(jsonl "${WORK_DIR}/trace.jsonl")
set(stats "${WORK_DIR}/stats.json")

execute_process(
    COMMAND "${VISA_SIM}" --runtime visa --workload cnt --tasks 60
            --induce-every 7 --deadline min
            --trace "${chrome}" --trace-jsonl "${jsonl}"
            --trace-buffer 4194304 --stats-json "${stats}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "visa-sim failed (rc=${rc}):\n${out}\n${err}")
endif()

foreach(f "${chrome}" "${jsonl}" "${stats}")
    if(NOT EXISTS "${f}")
        message(FATAL_ERROR "visa-sim did not write ${f}")
    endif()
endforeach()

# The fig3/fig4-style regime must actually exercise the VISA machinery:
# checkpoints armed, at least one watchdog recovery, DVS decisions.
file(READ "${jsonl}" trace_text)
foreach(ev checkpoint_arm checkpoint_hit checkpoint_miss watchdog_fire
        simple_mode_enter mode_switch_drain freq_decision freq_change
        task_begin task_end)
    if(NOT trace_text MATCHES "\"ev\":\"${ev}\"")
        message(FATAL_ERROR "trace is missing expected event '${ev}'")
    endif()
endforeach()

foreach(f "${chrome}" "${jsonl}")
    execute_process(
        COMMAND "${VISA_TRACE}" --validate "${f}"
        RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "visa-trace --validate ${f} failed (rc=${rc}):\n${out}\n${err}")
    endif()
endforeach()

execute_process(
    COMMAND "${VISA_TRACE}" "${jsonl}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "visa-trace summary failed (rc=${rc}):\n${err}")
endif()
foreach(section "event counts" "checkpoint slack" "frequency residency")
    if(NOT out MATCHES "${section}")
        message(FATAL_ERROR
            "visa-trace summary is missing the '${section}' section:\n${out}")
    endif()
endforeach()

# The stats export must be finite (the guards turn 0/0 into 0).
file(READ "${stats}" stats_text)
if(stats_text MATCHES "nan" OR stats_text MATCHES "inf")
    message(FATAL_ERROR "stats JSON contains non-finite values")
endif()

message(STATUS "trace_schema: all checks passed")
