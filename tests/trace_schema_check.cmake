# End-to-end check of the tracing pipeline, run as a ctest entry (and
# therefore also under the ASan/UBSan debug preset):
#
#   1. visa-sim runs a small VISA campaign with induced mispredictions
#      at the fig4-style minimum deadline, recording a Chrome trace, a
#      JSONL trace, and a hierarchical stats JSON;
#   2. visa-trace --validate schema-checks both trace formats against
#      the event-kind table;
#   3. visa-trace summarizes the JSONL trace (slack, margins, residency)
#      and must exit cleanly;
#   4. visa-fuzz --inject records a fault-injection demo trace whose
#      fault_inject / fault_detect / recovery_restart events must be
#      present, schema-validate, and show up in the summary's fault
#      section.
#
# Expects -DVISA_SIM=..., -DVISA_TRACE=..., -DVISA_FUZZ=...,
# -DWORK_DIR=...

foreach(var VISA_SIM VISA_TRACE VISA_FUZZ WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "trace_schema_check.cmake: ${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(chrome "${WORK_DIR}/trace.json")
set(jsonl "${WORK_DIR}/trace.jsonl")
set(stats "${WORK_DIR}/stats.json")

execute_process(
    COMMAND "${VISA_SIM}" --runtime visa --workload cnt --tasks 60
            --induce-every 7 --deadline min
            --trace "${chrome}" --trace-jsonl "${jsonl}"
            --trace-buffer 4194304 --stats-json "${stats}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "visa-sim failed (rc=${rc}):\n${out}\n${err}")
endif()

foreach(f "${chrome}" "${jsonl}" "${stats}")
    if(NOT EXISTS "${f}")
        message(FATAL_ERROR "visa-sim did not write ${f}")
    endif()
endforeach()

# The fig3/fig4-style regime must actually exercise the VISA machinery:
# checkpoints armed, at least one watchdog recovery, DVS decisions.
file(READ "${jsonl}" trace_text)
foreach(ev checkpoint_arm checkpoint_hit checkpoint_miss watchdog_fire
        simple_mode_enter mode_switch_drain freq_decision freq_change
        task_begin task_end)
    if(NOT trace_text MATCHES "\"ev\":\"${ev}\"")
        message(FATAL_ERROR "trace is missing expected event '${ev}'")
    endif()
endforeach()

foreach(f "${chrome}" "${jsonl}")
    execute_process(
        COMMAND "${VISA_TRACE}" --validate "${f}"
        RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "visa-trace --validate ${f} failed (rc=${rc}):\n${out}\n${err}")
    endif()
endforeach()

execute_process(
    COMMAND "${VISA_TRACE}" "${jsonl}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "visa-trace summary failed (rc=${rc}):\n${err}")
endif()
foreach(section "event counts" "checkpoint slack" "frequency residency")
    if(NOT out MATCHES "${section}")
        message(FATAL_ERROR
            "visa-trace summary is missing the '${section}' section:\n${out}")
    endif()
endforeach()

# ---- fault-injection trace (visa-fuzz --inject) ----

set(inj_jsonl "${WORK_DIR}/inject.jsonl")
execute_process(
    COMMAND "${VISA_FUZZ}" --inject reg-bit-flip --count 2 --seed 3
            --trace-jsonl "${inj_jsonl}" --out "${WORK_DIR}/inj_corpus"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "visa-fuzz --inject failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${inj_jsonl}")
    message(FATAL_ERROR "visa-fuzz did not write ${inj_jsonl}")
endif()

file(READ "${inj_jsonl}" inj_text)
foreach(ev fault_inject fault_detect recovery_restart)
    if(NOT inj_text MATCHES "\"ev\":\"${ev}\"")
        message(FATAL_ERROR
            "injection trace is missing expected event '${ev}'")
    endif()
endforeach()

execute_process(
    COMMAND "${VISA_TRACE}" --validate "${inj_jsonl}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "visa-trace --validate ${inj_jsonl} failed (rc=${rc}):"
        "\n${out}\n${err}")
endif()

execute_process(
    COMMAND "${VISA_TRACE}" "${inj_jsonl}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "visa-trace fault summary failed (rc=${rc}):\n${err}")
endif()
if(NOT out MATCHES "fault injection / recovery")
    message(FATAL_ERROR
        "visa-trace summary is missing the fault section:\n${out}")
endif()

# The stats export must be finite (the guards turn 0/0 into 0).
file(READ "${stats}" stats_text)
if(stats_text MATCHES "nan" OR stats_text MATCHES "inf")
    message(FATAL_ERROR "stats JSON contains non-finite values")
endif()

message(STATUS "trace_schema: all checks passed")
