/**
 * @file
 * Assembler tests: labels, directives, pseudo-instructions, annotation
 * capture, data layout, and error reporting.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "sim/logging.hh"

namespace visa
{
namespace
{

TEST(Assembler, MinimalProgram)
{
    Program p = assemble(R"(
        addi r4, r0, 42
        halt
    )");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.text[0].op, Opcode::ADDI);
    EXPECT_EQ(p.text[0].rd, 4);
    EXPECT_EQ(p.text[0].imm, 42);
    EXPECT_EQ(p.text[1].op, Opcode::HALT);
    EXPECT_EQ(p.entry, defaultTextBase);
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = assemble(R"(
start:  addi r4, r0, 10
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.symbol("start"), defaultTextBase);
    EXPECT_EQ(p.symbol("loop"), defaultTextBase + 4);
    const Instruction &b = p.text[2];
    EXPECT_EQ(b.op, Opcode::BGTZ);
    EXPECT_EQ(static_cast<Addr>(b.imm), p.symbol("loop"));
}

TEST(Assembler, EncodedWordsRoundTrip)
{
    Program p = assemble(R"(
        addi r4, r0, 10
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    for (std::size_t i = 0; i < p.size(); ++i) {
        Addr pc = p.textBase + static_cast<Addr>(i * 4);
        EXPECT_EQ(decode(p.words[i], pc), p.text[i]) << "at index " << i;
    }
}

TEST(Assembler, DataDirectives)
{
    Program p = assemble(R"(
        .data
a:      .word 1, 2, -3
b:      .half 4, 5
c:      .byte 6
        .align 3
d:      .double 1.5
e:      .space 16
f:      .word a
        .text
        halt
    )");
    EXPECT_EQ(p.symbol("a"), defaultDataBase);
    EXPECT_EQ(p.symbol("b"), defaultDataBase + 12);
    EXPECT_EQ(p.symbol("c"), defaultDataBase + 16);
    EXPECT_EQ(p.symbol("d") % 8, 0u);

    // .word little-endian
    EXPECT_EQ(p.data[0], 1);
    EXPECT_EQ(p.data[4], 2);
    // -3 sign bytes
    EXPECT_EQ(p.data[8], 0xFD);
    EXPECT_EQ(p.data[11], 0xFF);

    // .double 1.5 = 0x3FF8000000000000
    std::size_t off = p.symbol("d") - p.dataBase;
    EXPECT_EQ(p.data[off + 7], 0x3F);
    EXPECT_EQ(p.data[off + 6], 0xF8);

    // .word with a symbol operand resolves to its address
    off = p.symbol("f") - p.dataBase;
    Word v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p.data[off + static_cast<std::size_t>(i)];
    EXPECT_EQ(v, p.symbol("a"));
}

TEST(Assembler, PseudoLi)
{
    Program p = assemble(R"(
        li r4, 42
        li r5, -5
        li r6, 0x12345678
        li r7, 0x10000
        halt
    )");
    // small -> addi; big -> lui+ori; 0x10000 -> lui only
    EXPECT_EQ(p.text[0].op, Opcode::ADDI);
    EXPECT_EQ(p.text[1].op, Opcode::ADDI);
    EXPECT_EQ(p.text[1].imm, -5);
    EXPECT_EQ(p.text[2].op, Opcode::LUI);
    EXPECT_EQ(p.text[2].imm, 0x1234);
    EXPECT_EQ(p.text[3].op, Opcode::ORI);
    EXPECT_EQ(p.text[3].imm, 0x5678);
    EXPECT_EQ(p.text[4].op, Opcode::LUI);
    EXPECT_EQ(p.text[4].imm, 1);
    EXPECT_EQ(p.text[5].op, Opcode::HALT);
}

TEST(Assembler, PseudoLaResolvesDataSymbol)
{
    Program p = assemble(R"(
        la r4, buf
        lw r5, 4(r4)
        halt
        .data
        .space 8
buf:    .word 9, 10
    )");
    Addr buf = p.symbol("buf");
    EXPECT_EQ(p.text[0].op, Opcode::LUI);
    EXPECT_EQ(static_cast<Word>(p.text[0].imm), buf >> 16);
    EXPECT_EQ(p.text[1].op, Opcode::ORI);
    EXPECT_EQ(static_cast<Word>(p.text[1].imm), buf & 0xFFFF);
}

TEST(Assembler, PseudoCompareBranches)
{
    Program p = assemble(R"(
l:      blt r4, r5, l
        bge r4, r5, l
        bgt r4, r5, l
        ble r4, r5, l
        halt
    )");
    ASSERT_EQ(p.size(), 9u);
    EXPECT_EQ(p.text[0].op, Opcode::SLT);    // at = r4 < r5
    EXPECT_EQ(p.text[0].rd, reg::at);
    EXPECT_EQ(p.text[1].op, Opcode::BNE);
    EXPECT_EQ(p.text[2].op, Opcode::SLT);
    EXPECT_EQ(p.text[3].op, Opcode::BEQ);
    // bgt swaps operands
    EXPECT_EQ(p.text[4].rs, 5);
    EXPECT_EQ(p.text[4].rt, 4);
}

TEST(Assembler, LoopBoundAndSubtaskAnnotations)
{
    Program p = assemble(R"(
        .subtask 1
        addi r4, r0, 8
loop:   subi r4, r4, 1
        .loopbound 8
        bgtz r4, loop
        .subtask 2
        halt
    )");
    ASSERT_EQ(p.loopBounds.size(), 1u);
    Addr branch_pc = defaultTextBase + 8;
    EXPECT_EQ(p.loopBounds.at(branch_pc), 8u);
    EXPECT_EQ(p.subtaskStarts.at(defaultTextBase), 1);
    EXPECT_EQ(p.subtaskStarts.at(defaultTextBase + 12), 2);
}

TEST(Assembler, EntryDirective)
{
    Program p = assemble(R"(
        .entry main
helper: jr ra
main:   halt
    )");
    EXPECT_EQ(p.entry, p.symbol("main"));
}

TEST(Assembler, RegisterAliases)
{
    Program p = assemble(R"(
        move sp, ra
        addi gp, zero, 1
        halt
    )");
    EXPECT_EQ(p.text[0].rd, reg::sp);
    EXPECT_EQ(p.text[0].rs, reg::ra);
    EXPECT_EQ(p.text[1].rd, reg::gp);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(R"(
        # full-line comment
        addi r4, r0, 1   # trailing comment
        ; semicolon comment
        halt ; done
    )");
    EXPECT_EQ(p.size(), 2u);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("bogus r1, r2\n halt"), FatalError);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("j nowhere\n halt"), FatalError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("a: nop\na: halt"), FatalError);
}

TEST(AssemblerErrors, ImmediateOverflow)
{
    EXPECT_THROW(assemble("addi r1, r0, 40000\n halt"), FatalError);
    EXPECT_THROW(assemble("sll r1, r2, 32\n halt"), FatalError);
    EXPECT_THROW(assemble("andi r1, r2, -1\n halt"), FatalError);
}

TEST(AssemblerErrors, WrongRegisterKind)
{
    EXPECT_THROW(assemble("add.d r1, r2, r3\n halt"), FatalError);
    EXPECT_THROW(assemble("add f1, f2, f3\n halt"), FatalError);
}

TEST(AssemblerErrors, EmptyProgram)
{
    EXPECT_THROW(assemble("  # nothing\n"), FatalError);
}

TEST(AssemblerErrors, InstructionInData)
{
    EXPECT_THROW(assemble(".data\n add r1, r2, r3\n"), FatalError);
}

} // anonymous namespace
} // namespace visa
