/**
 * @file
 * Tests for the fault-injection matrix (verify/inject.hh): per-class
 * determinism under a fixed seed, watchdog detection within the
 * recovery budget, admission-control rejection when the restart cost
 * breaks EQ 4 feasibility, restart recovery preserving architectural
 * state, the minimized-repro round trip, and campaign bookkeeping.
 *
 * Registered as the `inject_suite` ctest (default and sanitizer
 * tiers).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/freq_spec.hh"
#include "cpu/ooo_cpu.hh"
#include "core/pet.hh"
#include "core/wcet_table.hh"
#include "isa/assembler.hh"
#include "verify/corpus.hh"
#include "verify/inject.hh"
#include "verify/lockstep.hh"
#include "verify/minimize.hh"
#include "verify/progen.hh"
#include "wcet/analyzer.hh"

namespace visa
{
namespace
{

using namespace verify;

std::vector<FaultClass>
allClasses()
{
    std::vector<FaultClass> out;
    for (int c = 0; c < numFaultClasses; ++c)
        out.push_back(static_cast<FaultClass>(c));
    return out;
}

TEST(Inject, FaultClassNamesRoundTrip)
{
    for (FaultClass cls : allClasses()) {
        FaultClass parsed;
        ASSERT_TRUE(parseFaultClass(faultClassName(cls), parsed))
            << faultClassName(cls);
        EXPECT_EQ(parsed, cls);
    }
    FaultClass dummy;
    EXPECT_FALSE(parseFaultClass("not-a-class", dummy));
}

TEST(Inject, DeterministicUnderFixedSeed)
{
    // A {seed, class} pair names one fault in one program: every field
    // that downstream tooling keys on must reproduce exactly.
    for (FaultClass cls :
         {FaultClass::RegBitFlip, FaultClass::BranchDir,
          FaultClass::WakeupStall}) {
        const InjectRunResult a = runInjectProgram(11, cls);
        const InjectRunResult b = runInjectProgram(11, cls);
        EXPECT_EQ(a.outcome, b.outcome);
        EXPECT_EQ(a.fault.fired, b.fault.fired);
        EXPECT_EQ(a.fault.seq, b.fault.seq);
        EXPECT_EQ(a.fault.pc, b.fault.pc);
        EXPECT_EQ(a.fault.cycle, b.fault.cycle);
        EXPECT_EQ(a.checksum, b.checksum);
        EXPECT_EQ(a.goldenChecksum, b.goldenChecksum);
        EXPECT_EQ(a.detectionLatencyCycles, b.detectionLatencyCycles);
        EXPECT_EQ(a.restarts, b.restarts);
    }
}

TEST(Inject, CampaignTableIsDeterministic)
{
    // The parallel campaign merges batches deterministically: the
    // rendered coverage table is byte-identical across runs (and, by
    // construction, across thread counts).
    const std::vector<FaultClass> classes = allClasses();
    const InjectCampaignResult a = runInjectCampaign(1, 18, classes);
    const InjectCampaignResult b = runInjectCampaign(1, 18, classes);
    EXPECT_EQ(formatCoverageTable(a), formatCoverageTable(b));
    EXPECT_EQ(a.programs, 18u);
    EXPECT_EQ(a.escapes.size(), b.escapes.size());
}

TEST(Inject, EveryClassFiresSomewhere)
{
    // Each fault class must find an eligible victim within a modest
    // seed budget — otherwise the matrix silently stops covering a
    // structure.
    for (FaultClass cls : allClasses()) {
        bool fired = false;
        for (std::uint64_t seed = 1; seed <= 40 && !fired; ++seed)
            fired = runInjectProgram(seed, cls).fault.fired;
        EXPECT_TRUE(fired)
            << "class " << faultClassName(cls)
            << " never fired in 40 programs";
    }
}

TEST(Inject, WatchdogDetectsWithinRecoveryBudget)
{
    // For every fault class, some seed must drive the fault down the
    // watchdog path (missed checkpoint or machine-check trap), and
    // every watchdog detection must recover within the
    // restart-budgeted deadline — the schedulability argument, run
    // rather than argued.
    for (FaultClass cls : allClasses()) {
        bool proven = false;
        for (std::uint64_t seed = 1; seed <= 60 && !proven; ++seed) {
            const InjectRunResult r = runInjectProgram(seed, cls);
            if (r.outcome != InjectOutcome::DetectedWatchdog)
                continue;
            EXPECT_TRUE(r.fault.fired) << faultClassName(cls);
            EXPECT_TRUE(r.deadlineMet)
                << faultClassName(cls) << " seed " << seed
                << ": completion " << r.completionSeconds
                << "s vs deadline " << r.deadlineSeconds << "s";
            proven = true;
        }
        EXPECT_TRUE(proven)
            << "class " << faultClassName(cls)
            << ": no watchdog-detected run in 60 seeds";
    }
}

// Toy three-sub-task program for the solver-level admission test
// (mirrors core_test's fixture).
const char *injectCoreProgram = R"(
        .subtask 1
        addi r4, r0, 500
a:      subi r4, r4, 1
        .loopbound 500
        bgtz r4, a
        .subtask 2
        addi r5, r0, 1000
b:      mul r6, r5, r5
        subi r5, r5, 1
        .loopbound 1000
        bgtz r5, b
        .subtask 3
        addi r7, r0, 300
c:      subi r7, r7, 1
        .loopbound 300
        bgtz r7, c
        halt
)";

TEST(Inject, AdmissionControlRejectsInfeasibleRestart)
{
    // The restart bound is EQ 4 plus the snapshot-restore term: with a
    // zero restore cost it must agree with EQ 4, and a restore cost
    // larger than the deadline's headroom must be rejected as
    // infeasible (the runtime then declines speculation — safety
    // before performance).
    const Program prog = assemble(injectCoreProgram);
    WcetAnalyzer analyzer(prog);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs);

    PetEstimator pets(3, PetPolicy{});
    std::vector<std::uint64_t> seed;
    for (int k = 0; k < 3; ++k)
        seed.push_back(wcet.subtaskCycles(k, 1000) / 4);
    pets.seed(seed);

    const double D = wcet.taskSeconds(700);
    const FreqPair plain = solveVisaSpeculation(wcet, pets, dvs, D, 2e-7);
    ASSERT_TRUE(plain.feasible);

    const FreqPair free_restore =
        solveRestartSpeculation(wcet, pets, dvs, D, 2e-7, 0, 0);
    ASSERT_TRUE(free_restore.feasible);
    EXPECT_EQ(free_restore.fSpec, plain.fSpec);
    EXPECT_EQ(free_restore.fRec, plain.fRec);

    // Restore cost grows the recovery tail: the pair can only move up.
    const FreqPair costly =
        solveRestartSpeculation(wcet, pets, dvs, D, 2e-7, 0, 20000);
    if (costly.feasible)
        EXPECT_GE(costly.fSpec, plain.fSpec);

    // A restore larger than the whole deadline can never fit.
    const FreqPair absurd = solveRestartSpeculation(
        wcet, pets, dvs, D, 2e-7, 0,
        static_cast<Cycles>(D * 1000e6 * 2));
    EXPECT_FALSE(absurd.feasible);
}

TEST(Inject, RuntimeDeclinesSpeculationWhenRestartCostHuge)
{
    // End-to-end admission control: the same injected run that
    // speculates (and fires) under a modest restore cost must fall
    // back to whole-task safe mode — where the complex core, and with
    // it the injector, never runs — when the modeled restore cost
    // breaks the restart bound.
    InjectRunOptions cheap;
    std::uint64_t firing_seed = 0;
    for (std::uint64_t seed = 1; seed <= 20 && !firing_seed; ++seed)
        if (runInjectProgram(seed, FaultClass::RegBitFlip, cheap)
                .fault.fired)
            firing_seed = seed;
    ASSERT_NE(firing_seed, 0u);

    InjectRunOptions huge = cheap;
    huge.restartRestoreCycles = 50'000'000;
    const InjectRunResult r =
        runInjectProgram(firing_seed, FaultClass::RegBitFlip, huge);
    EXPECT_FALSE(r.fault.fired);
    EXPECT_EQ(r.outcome, InjectOutcome::NoTrigger);
    EXPECT_EQ(r.restarts, 0);
    // Safe mode is still correct and still meets the deadline.
    EXPECT_EQ(r.checksum, r.goldenChecksum);
    EXPECT_TRUE(r.deadlineMet);
}

TEST(Inject, RestartRecoveryPreservesChecksum)
{
    // WakeupStall is timing-only: the restart path (snapshot restore +
    // simple-mode re-execution) must reproduce the golden checksum
    // exactly — recovery may cost time, never correctness.
    InjectRunOptions opts;
    opts.forceMiss = true;
    opts.triggerFirst = true;
    bool proven = false;
    for (std::uint64_t seed = 1; seed <= 20 && !proven; ++seed) {
        const InjectRunResult r =
            runInjectProgram(seed, FaultClass::WakeupStall, opts);
        if (!r.fault.fired)
            continue;
        EXPECT_EQ(r.checksum, r.goldenChecksum)
            << "seed " << seed << ": restart recovery corrupted state";
        EXPECT_GE(r.restarts, 1);
        proven = true;
    }
    EXPECT_TRUE(proven);
}

TEST(Inject, MinimizedReproRoundTrip)
{
    // The legacy subword-load bug, now a FaultPort matrix entry: find
    // a diverging program, ddmin it, and round-trip the minimized
    // repro through the corpus format. The loaded repro must still
    // exhibit the divergence.
    const auto diverges = [](const Program &p) {
        auto inj =
            std::make_shared<FaultInjector>(loadExtBugSpec());
        LockstepOptions lo;
        lo.maxInstructions = 200'000;
        lo.prepareComplex = [inj](OooCpu &cpu) {
            cpu.setFaultPort(inj.get());
        };
        return runLockstep(p, lo).diverged;
    };

    GenParams gen;
    gen.profile = GenProfile::Memory;
    gen.statements = 24;
    std::uint64_t failing_seed = 0;
    std::string failing_source;
    for (std::uint64_t seed = 1; seed <= 200 && !failing_seed; ++seed) {
        const GeneratedProgram g = generate(seed, gen);
        if (diverges(g.program)) {
            failing_seed = seed;
            failing_source = g.source;
        }
    }
    ASSERT_NE(failing_seed, 0u)
        << "load-ext bug not caught in 200 memory-profile programs";

    const MinimizeResult m = minimizeSource(failing_source, diverges);
    EXPECT_LE(m.instructions, 16u) << m.source;
    EXPECT_TRUE(diverges(assemble(m.source)));

    ReproCase rc;
    rc.seed = failing_seed;
    rc.profile = "memory";
    rc.note = "minimized load-ext injection repro (inject_test)";
    rc.source = m.source;
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        "visa_inject_repro_test.s";
    ASSERT_TRUE(saveRepro(path.string(), rc));
    const ReproCase back = loadRepro(path.string());
    std::filesystem::remove(path);
    EXPECT_EQ(back.seed, rc.seed);
    EXPECT_EQ(back.source, rc.source);
    EXPECT_TRUE(diverges(assemble(back.source)));
}

TEST(Inject, CorpusEscapesStillEscape)
{
    // Pinned silent-data-corruption escapes from the 10k acceptance
    // campaign (tests/corpus/inject/). Each file's note names the
    // {class, seed} pair; replaying it must still produce the escape.
    // If a detector improvement starts catching one of these, the pin
    // fails — deliberately: the repro then documents a *fixed* escape
    // and should be moved or retired, not silently re-bucketed.
    const std::filesystem::path dir =
        std::filesystem::path(VISA_CORPUS_DIR) / "inject";
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    int replayed = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".s")
            continue;
        const ReproCase rc = loadRepro(entry.path().string());
        const std::string tag = "class ";
        const std::size_t at = rc.note.find(tag);
        ASSERT_NE(at, std::string::npos) << entry.path();
        const std::string cls_name = rc.note.substr(
            at + tag.size(),
            rc.note.find_first_of(" (,", at + tag.size()) -
                (at + tag.size()));
        FaultClass cls;
        ASSERT_TRUE(parseFaultClass(cls_name.c_str(), cls))
            << entry.path() << ": '" << cls_name << "'";
        const InjectRunResult r = runInjectProgram(rc.seed, cls);
        EXPECT_EQ(r.outcome, InjectOutcome::SilentCorruption)
            << entry.path() << ": outcome now "
            << injectOutcomeName(r.outcome);
        EXPECT_EQ(r.source, rc.source) << entry.path()
            << ": generator drifted from the pinned program";
        ++replayed;
    }
    EXPECT_GE(replayed, 1) << "no pinned escapes in " << dir;
}

TEST(Inject, CampaignBookkeepingIsConsistent)
{
    // Outcome buckets must partition each class's runs, and silent
    // corruptions must surface in the escape list — an escape that
    // isn't reported is the one failure mode a coverage campaign
    // cannot have.
    const std::vector<FaultClass> classes = allClasses();
    const InjectCampaignResult res = runInjectCampaign(100, 27, classes);
    EXPECT_EQ(res.programs, 27u);
    std::uint64_t total = 0, sdc = 0;
    for (const InjectClassCoverage &c : res.classes) {
        EXPECT_EQ(c.programs,
                  c.noTrigger + c.watchdog + c.lockstep +
                      c.silentBenign + c.silentCorruption)
            << faultClassName(c.cls);
        EXPECT_EQ(c.fired, c.programs - c.noTrigger)
            << faultClassName(c.cls);
        total += c.programs;
        sdc += c.silentCorruption;
    }
    EXPECT_EQ(total, res.programs);
    EXPECT_EQ(sdc, res.escapes.size());
    for (const InjectRunResult &e : res.escapes) {
        EXPECT_EQ(e.outcome, InjectOutcome::SilentCorruption);
        EXPECT_FALSE(e.source.empty());
    }
}

} // anonymous namespace
} // namespace visa
