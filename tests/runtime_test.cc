/**
 * @file
 * End-to-end run-time system tests: the hard safety invariants T3
 * (no deadline misses, ever — including induced mispredictions) and
 * T4 (missed checkpoints recover within budget), plus PET adaptation,
 * frequency-speculation behavior over many task instances, and the
 * EQ 4-infeasible fallback.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "power/meter.hh"
#include "sim/logging.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

/** Full experiment stack around one workload. */
struct Stack
{
    explicit Stack(const std::string &name)
        : wl(makeWorkload(name)), analyzer(wl.program),
          dmiss(profileDataMisses(wl.program)),
          wcet(analyzer, dvs, &dmiss)
    {
        mem.loadProgram(wl.program);
    }

    RuntimeConfig
    config(double deadline) const
    {
        RuntimeConfig cfg;
        cfg.deadlineSeconds = deadline;
        cfg.ovhdSeconds = 2e-6;
        cfg.dvsSoftwareCycles = 500;
        cfg.drainBudgetCycles = 512;
        return cfg;
    }

    Workload wl;
    WcetAnalyzer analyzer;
    DMissProfile dmiss;
    DvsTable dvs;
    WcetTable wcet;
    MainMemory mem;
    Platform platform;
    MemController memctrl;
};

TEST(RuntimeComplex, AllTasksMeetDeadlineAndChecksum)
{
    Stack s("cnt");
    OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    double d = s.wcet.taskSeconds(600);
    VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                          s.config(d));
    for (int t = 0; t < 24; ++t) {
        TaskStats ts = rt.runTask();
        EXPECT_TRUE(ts.deadlineMet) << "task " << t;
        EXPECT_TRUE(ts.checksumReported);
        EXPECT_EQ(ts.checksum, s.wl.expectedChecksum) << "task " << t;
        EXPECT_LE(ts.fSpec, ts.fRec);
    }
    EXPECT_EQ(rt.stats().deadlineMisses, 0);
    EXPECT_EQ(rt.stats().tasks, 24);
}

TEST(RuntimeComplex, PetAdaptationLowersFrequency)
{
    Stack s("mm");
    OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    double d = s.wcet.taskSeconds(700);
    VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                          s.config(d));
    MHz first = rt.runTask().fSpec;
    MHz last = first;
    for (int t = 1; t < 22; ++t)
        last = rt.runTask().fSpec;
    // Histories replace the conservative WCET seeds: f_spec drops.
    EXPECT_LT(last, first);
    EXPECT_EQ(rt.stats().deadlineMisses, 0);
}

TEST(RuntimeComplex, InducedMissesRecoverSafely)
{
    // T3/T4 under stress: a near-minimum deadline plus cache flushes.
    Stack s("cnt");
    OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);

    // Bisect the tightest feasible deadline with profiled PETs.
    RuntimeConfig probe_cfg = s.config(1.0);
    PetEstimator pets(s.wl.numSubtasks, probe_cfg.petPolicy);
    pets.seed(profileComplexAets(s.wl.program, s.wl.numSubtasks));
    double lo = s.wcet.taskSeconds(1000);
    double hi = s.wcet.taskSeconds(100);
    for (int i = 0; i < 40; ++i) {
        double mid = 0.5 * (lo + hi);
        bool ok = solveVisaSpeculation(
                      s.wcet, pets, s.dvs, mid, probe_cfg.ovhdSeconds,
                      probe_cfg.dvsSoftwareCycles +
                          probe_cfg.drainBudgetCycles)
                      .feasible;
        (ok ? hi : lo) = mid;
    }

    VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                          s.config(hi * 1.01));
    rt.pets().seed(profileComplexAets(s.wl.program, s.wl.numSubtasks,
                                      1.02));
    int misses = 0;
    for (int t = 0; t < 18; ++t) {
        bool induce = (t % 6) == 3;
        TaskStats ts = rt.runTask(induce);
        EXPECT_TRUE(ts.deadlineMet) << "task " << t;
        EXPECT_EQ(ts.checksum, s.wl.expectedChecksum);
        if (ts.missedCheckpoint) {
            ++misses;
            EXPECT_GE(ts.missedSubtask, 1);
            EXPECT_LE(ts.missedSubtask, s.wl.numSubtasks);
        }
    }
    EXPECT_EQ(rt.stats().deadlineMisses, 0);
    EXPECT_EQ(rt.stats().checkpointMisses, misses);
}

TEST(RuntimeComplex, InfeasibleSpeculationFallsBackToSafeMode)
{
    Stack s("cnt");
    OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    // A deadline only the static schedule satisfies: PETs seeded at
    // the WCETs make EQ 4 infeasible (ovhd eats the slack).
    double d = s.wcet.taskSeconds(1000) * 1.002;
    VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                          s.config(d));
    TaskStats ts = rt.runTask();
    EXPECT_FALSE(ts.speculating);
    EXPECT_TRUE(ts.deadlineMet);
    EXPECT_EQ(ts.checksum, s.wl.expectedChecksum);
    EXPECT_EQ(cpu.mode(), OooCpu::Mode::Simple);
}

TEST(RuntimeComplex, InfeasibleDeadlineIsFatal)
{
    Stack s("cnt");
    OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                          s.config(s.wcet.taskSeconds(1000) * 0.5));
    EXPECT_THROW(rt.runTask(), FatalError);
}

TEST(RuntimeSimpleFixed, StaticScheduleWhenWcetIsTight)
{
    Stack s("mm");
    SimpleCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    double d = s.wcet.taskSeconds(700);
    SimpleFixedRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                          s.config(d));
    TaskStats ts = rt.runTask();
    // With WCET-seeded PETs, EQ 2 cannot beat the static frequency on
    // the first task.
    EXPECT_FALSE(ts.speculating);
    EXPECT_EQ(ts.fSpec, 700u);
    EXPECT_TRUE(ts.deadlineMet);
    EXPECT_EQ(ts.checksum, s.wl.expectedChecksum);
}

TEST(RuntimeSimpleFixed, SpeculationEngagesWhenItLowersFrequency)
{
    Stack s("srt");    // srt's WCET is ~2x its typical time
    SimpleCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    double d = s.wcet.taskSeconds(700);
    SimpleFixedRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                          s.config(d));
    MHz static_f = 0;
    bool speculated = false;
    for (int t = 0; t < 24; ++t) {
        TaskStats ts = rt.runTask();
        ASSERT_TRUE(ts.deadlineMet) << "task " << t;
        EXPECT_EQ(ts.checksum, s.wl.expectedChecksum);
        if (t == 0)
            static_f = ts.fSpec;
        if (ts.speculating) {
            speculated = true;
            EXPECT_LT(ts.fSpec, static_f);
        }
    }
    EXPECT_TRUE(speculated);
    EXPECT_EQ(rt.stats().deadlineMisses, 0);
}

TEST(RuntimeMetering, ComplexBeatsSimpleFixedPowerAtEqualDeadline)
{
    // The headline claim of the paper, as a regression test: at a
    // comfortable deadline the VISA-compliant complex processor
    // consumes measurably less power than simple-fixed.
    auto run_power = [](bool use_complex) {
        Stack s("mm");
        double d = s.wcet.taskSeconds(700);
        if (use_complex) {
            OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
            VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet,
                                  s.dvs, s.config(d));
            rt.pets().seed(
                profileComplexAets(s.wl.program, s.wl.numSubtasks));
            PowerMeter meter(cpu, complexEnergyModel(), s.dvs,
                             ClockGating::Perfect);
            rt.attachMeter(&meter);
            for (int t = 0; t < 12; ++t)
                rt.runTask();
            EXPECT_EQ(rt.stats().deadlineMisses, 0);
            return meter.averagePowerWatts();
        }
        SimpleCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
        SimpleFixedRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                              s.config(d));
        PowerMeter meter(cpu, simpleFixedEnergyModel(), s.dvs,
                         ClockGating::Perfect);
        rt.attachMeter(&meter);
        for (int t = 0; t < 12; ++t)
            rt.runTask();
        EXPECT_EQ(rt.stats().deadlineMisses, 0);
        return meter.averagePowerWatts();
    };
    double p_complex = run_power(true);
    double p_simple = run_power(false);
    EXPECT_GT(p_simple, 0.0);
    EXPECT_LT(p_complex, p_simple);
}

TEST(RuntimeIncremental, SlicedInstanceMatchesRunTask)
{
    // The incremental instance API (beginInstance / stepInstance /
    // finishInstance) must reproduce runTask() exactly: same retired
    // count, checksum, speculation choice and busy time, regardless of
    // how the instance is sliced.
    Stack whole("cnt");
    Stack sliced("cnt");
    const double d = whole.wcet.taskSeconds(600);

    OooCpu cpu_w(whole.wl.program, whole.mem, whole.platform,
                 whole.memctrl);
    VisaComplexRuntime rt_w(cpu_w, whole.wl.program, whole.mem,
                            whole.wcet, whole.dvs, whole.config(d));
    const TaskStats ref = rt_w.runTask();

    OooCpu cpu_s(sliced.wl.program, sliced.mem, sliced.platform,
                 sliced.memctrl);
    VisaComplexRuntime rt_s(cpu_s, sliced.wl.program, sliced.mem,
                            sliced.wcet, sliced.dvs, sliced.config(d));
    rt_s.beginInstance();
    ASSERT_TRUE(rt_s.instanceActive());
    int slices = 0;
    while (true) {
        const StepResult sr = rt_s.stepInstance(4000);
        ++slices;
        if (sr.completed)
            break;
        ASSERT_LT(slices, 100000);
    }
    const TaskStats got = rt_s.finishInstance();
    EXPECT_FALSE(rt_s.instanceActive());

    EXPECT_GT(slices, 1);
    EXPECT_EQ(got.retired, ref.retired);
    EXPECT_EQ(got.checksum, ref.checksum);
    EXPECT_EQ(got.fSpec, ref.fSpec);
    EXPECT_EQ(got.deadlineMet, ref.deadlineMet);
    EXPECT_NEAR(got.completionSeconds, ref.completionSeconds,
                1e-12 + 1e-9 * ref.completionSeconds);
}

TEST(RuntimeIncremental, ForcedMissRecoversAcrossDrainedSlices)
{
    // A forced watchdog expiry while the instance is being sliced and
    // drained at every scheduling point (the preemption pattern) must
    // take the normal recovery path and still finish correctly.
    Stack s("cnt");
    const double d = s.wcet.taskSeconds(600);
    OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs,
                          s.config(d));

    rt.forceNextMiss();
    rt.beginInstance();
    bool recovered = false;
    int slices = 0;
    while (true) {
        StepResult sr = rt.stepInstance(2000);
        recovered = recovered || sr.recovered;
        if (sr.completed)
            break;
        // Drain to a preemption point between every pair of slices.
        sr = rt.preemptDrain();
        recovered = recovered || sr.recovered;
        ASSERT_FALSE(sr.completed);
        ++slices;
        ASSERT_LT(slices, 100000);
    }
    const TaskStats ts = rt.finishInstance();
    EXPECT_TRUE(recovered);
    EXPECT_TRUE(ts.missedCheckpoint);
    EXPECT_TRUE(ts.deadlineMet);
    EXPECT_EQ(ts.checksum, s.wl.expectedChecksum);
    EXPECT_EQ(rt.stats().checkpointMisses, 1);
    EXPECT_EQ(rt.stats().deadlineMisses, 0);
}

TEST(RuntimeProfiling, ComplexAetProfileCoversSubtasks)
{
    Workload wl = makeWorkload("fft");
    auto aets = profileComplexAets(wl.program, wl.numSubtasks, 1.1);
    ASSERT_EQ(static_cast<int>(aets.size()), wl.numSubtasks);
    for (auto a : aets)
        EXPECT_GT(a, 0u);
    // The margin scales the values.
    auto tight = profileComplexAets(wl.program, wl.numSubtasks, 1.0);
    for (std::size_t i = 0; i < aets.size(); ++i)
        EXPECT_GE(aets[i], tight[i]);
}

} // anonymous namespace
} // namespace visa
