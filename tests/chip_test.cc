/**
 * @file
 * Multi-core chip model tests (src/chip + the scheduler's multi-core
 * engine): interconnect contention units (bank arbitration, the chip
 * MSHR pool), free-run contention through SimBuilder::cores(),
 * single-core chip equivalence with the historical rig, partitioned /
 * global EDF placement (determinism, affinity pins, cross-core
 * preemption isolation), the interference-aware admission bound, and
 * the FlexStep-style paired-core detector against the inject matrix.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bench/bench_util.hh"
#include "chip/chip.hh"
#include "chip/interconnect.hh"
#include "chip/paired.hh"
#include "core/scheduler.hh"
#include "sim/builder.hh"
#include "sim/stats.hh"
#include "verify/inject.hh"
#include "workloads/clab.hh"
#include "workloads/tasksets.hh"

namespace visa
{
namespace
{

using bench::makeTaskSetDefs;

void
addAll(MultiTaskScheduler &sched, const std::vector<SchedTaskDef> &defs)
{
    for (const SchedTaskDef &d : defs)
        sched.addTask(d);
}

std::vector<SchedTaskDef>
clab6Defs(double util)
{
    return makeTaskSetDefs(parseTaskSet("clab6"), util);
}

// ---- interconnect units ----

TEST(Chip, InterconnectBankConflictQueuesSecondRequest)
{
    chip::ChipBusParams p;
    p.banks = 1;    // every block collides
    p.mshrs = 16;
    chip::ChipInterconnect ic(2, p);

    // Same wall instant, different cores, different blocks: the second
    // request must queue behind the first's bank occupancy.
    const Cycles d0 = ic.route(0, 0, 1000, 0x1000);
    const Cycles d1 = ic.route(1, 0, 1000, 0x2000);
    EXPECT_GT(d1, d0);
    EXPECT_EQ(ic.requests(), 2u);
    EXPECT_EQ(ic.bankConflicts(), 1u);
    EXPECT_GT(ic.bankWaitNs(), 0.0);
    EXPECT_EQ(ic.mshrStalls(), 0u);
}

TEST(Chip, InterconnectMshrPoolStallsWhenFull)
{
    chip::ChipBusParams p;
    p.banks = 8;    // no bank conflicts at these addresses
    p.mshrs = 1;    // one outstanding fill chip-wide
    chip::ChipInterconnect ic(2, p);

    const Cycles d0 = ic.route(0, 0, 1000, 0x1000);
    const Cycles d1 = ic.route(1, 0, 1000, 0x2040);
    EXPECT_GT(d1, d0);
    EXPECT_EQ(ic.mshrStalls(), 1u);
    EXPECT_GT(ic.mshrWaitNs(), 0.0);
}

TEST(Chip, InterconnectSharedL2HitsAfterFill)
{
    chip::ChipBusParams p;
    chip::ChipInterconnect ic(2, p);

    // Core 0 fills the block; core 1 touching the same block much
    // later must hit the *shared* L2 (cross-core reuse).
    ic.route(0, 0, 1000, 0x3000);
    EXPECT_EQ(ic.l2Hits(), 0u);
    ic.route(1, 100000, 1000, 0x3000);
    EXPECT_EQ(ic.l2Hits(), 1u);
}

// ---- chip free run ----

TEST(Chip, TwoCoreFreeRunContendsAndBothHalt)
{
    auto c = SimBuilder()
                 .workload("mm")
                 .cpu(CpuKind::Complex)
                 .cores(2)
                 .buildChip();
    const chip::Chip::RunAllResult r = c->runAll(20'000'000'000ULL);
    ASSERT_TRUE(r.allHalted);
    EXPECT_EQ(c->core(0).ooo().retired(), c->core(1).ooo().retired());
    // Both cores ran the same program through the shared bus: the
    // contention model must have seen traffic.
    EXPECT_GT(c->bus().requests(), 0u);
    EXPECT_GT(c->bus().bankConflicts() + c->bus().mshrStalls(), 0u);
}

TEST(Chip, SingleCoreChipMatchesHistoricalRig)
{
    // cores(1) must be the pre-chip rig bit-for-bit: same cycles, same
    // retired count (the bus is never attached for one core).
    const Workload wl = makeWorkload("cnt");
    bench::Rig<OooCpu> rig(wl.program);
    rig.cpu->run(20'000'000'000ULL);

    auto c = SimBuilder()
                 .workload("cnt")
                 .cpu(CpuKind::Complex)
                 .cores(1)
                 .buildChip();
    const chip::Chip::RunAllResult r = c->runAll(20'000'000'000ULL);
    ASSERT_TRUE(r.allHalted);
    EXPECT_EQ(c->core(0).ooo().retired(), rig.cpu->retired());
    EXPECT_EQ(c->core(0).ooo().cycles(), rig.cpu->cycles());
    EXPECT_EQ(c->bus().requests(), 0u);
}

// ---- placement policies ----

TEST(Chip, PartitionedEdfScheduleIsDeterministic)
{
    SchedulerConfig cfg;
    cfg.cores = 4;
    cfg.placement = PlacementPolicy::Partitioned;

    ScheduleOutcome out[2];
    std::vector<int> asg[2];
    std::vector<std::uint64_t> retired[2];
    for (int pass = 0; pass < 2; ++pass) {
        MultiTaskScheduler sched(cfg);
        addAll(sched, clab6Defs(0.85));
        ASSERT_EQ(sched.admissionError(), "");
        out[pass] = sched.run(3);
        asg[pass] = sched.assignment();
        for (int t = 0; t < sched.numTasks(); ++t)
            retired[pass].push_back(sched.taskStats(t).retired);
    }
    EXPECT_EQ(out[0].deadlineMisses, 0);
    EXPECT_EQ(out[0].wallSeconds, out[1].wallSeconds);
    EXPECT_EQ(out[0].jobs, out[1].jobs);
    EXPECT_EQ(out[0].preemptions, out[1].preemptions);
    EXPECT_EQ(out[0].contextSwitches, out[1].contextSwitches);
    EXPECT_EQ(asg[0], asg[1]);
    EXPECT_EQ(retired[0], retired[1]);
}

TEST(Chip, GlobalEdfSchedulesClab6OnFourCores)
{
    SchedulerConfig cfg;
    cfg.cores = 4;
    cfg.placement = PlacementPolicy::Global;
    MultiTaskScheduler sched(cfg);
    addAll(sched, clab6Defs(0.85));
    ASSERT_EQ(sched.admissionError(), "");

    const ScheduleOutcome out = sched.run(3);
    EXPECT_EQ(out.deadlineMisses, 0);
    EXPECT_EQ(out.jobs, 6 * 3);
    // Global placement never pins: jobs migrate.
    for (int a : sched.assignment())
        EXPECT_EQ(a, -1);
}

TEST(Chip, PartitionedAffinityPinsAreRespected)
{
    SchedulerConfig cfg;
    cfg.cores = 2;
    cfg.placement = PlacementPolicy::Partitioned;
    cfg.affinity = {1, -1, 0, -1, -1, -1};
    MultiTaskScheduler sched(cfg);
    addAll(sched, clab6Defs(0.8));
    ASSERT_EQ(sched.admissionError(), "");
    sched.run(1);

    const std::vector<int> &asg = sched.assignment();
    ASSERT_EQ(asg.size(), 6u);
    EXPECT_EQ(asg[0], 1);
    EXPECT_EQ(asg[2], 0);
    for (int a : asg) {
        EXPECT_GE(a, 0);
        EXPECT_LT(a, 2);
    }
}

TEST(Chip, CrossCorePreemptionIsolation)
{
    // cnt + mm pinned to core 0, with mm phased so its job straddles
    // cnt's next release (EDF must preempt on core 0); srt alone on
    // core 1. A core-0 preemption must never touch the core-1 task.
    // The phase is tighter than the single-core preempting trio's 0.9:
    // with srt off-core, core 0 is idle when mm releases, so mm needs
    // less headroom before cnt's release to still be mid-job there.
    const std::vector<TaskSetMemberSpec> members = {
        {"cnt", 1.0}, {"mm", 1.0}, {"srt", 1.0}};
    std::vector<SchedTaskDef> defs = makeTaskSetDefs(members, 0.9);
    defs[1].phaseSeconds = 0.95 * defs[0].periodSeconds;

    SchedulerConfig cfg;
    cfg.cores = 2;
    cfg.placement = PlacementPolicy::Partitioned;
    cfg.affinity = {0, 0, 1};
    MultiTaskScheduler sched(cfg);
    addAll(sched, defs);
    ASSERT_EQ(sched.admissionError(), "");

    const ScheduleOutcome out = sched.run(8);
    EXPECT_EQ(out.deadlineMisses, 0);
    EXPECT_GT(sched.taskStats(0).preemptions +
                  sched.taskStats(1).preemptions,
              0);
    EXPECT_EQ(sched.taskStats(2).preemptions, 0);
    EXPECT_EQ(sched.taskStats(2).deadlineMisses, 0);
}

TEST(Chip, AdmissionRejectsWhenInterferenceInflatesDemand)
{
    // The same set admits on one core but must be rejected on four
    // once the cross-core interference bound inflates every budget
    // past per-core feasibility.
    {
        SchedulerConfig cfg;
        cfg.cores = 1;
        MultiTaskScheduler sched(cfg);
        addAll(sched, clab6Defs(0.8));
        EXPECT_EQ(sched.admissionError(), "");
    }
    SchedulerConfig cfg;
    cfg.cores = 4;
    cfg.placement = PlacementPolicy::Partitioned;
    cfg.memStallShare = 1.0;            // every cycle stalls...
    cfg.bus.busOccupancyNs = 500.0;     // ...behind a very slow bus
    MultiTaskScheduler sched(cfg);
    addAll(sched, clab6Defs(0.8));
    const std::string err = sched.admissionError();
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("P-EDF"), std::string::npos) << err;
}

TEST(Chip, GlobalAdmissionEnforcesGfbBound)
{
    SchedulerConfig cfg;
    cfg.cores = 2;
    cfg.placement = PlacementPolicy::Global;
    cfg.memStallShare = 1.0;
    cfg.bus.busOccupancyNs = 500.0;
    MultiTaskScheduler sched(cfg);
    addAll(sched, clab6Defs(0.9));
    const std::string err = sched.admissionError();
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("GFB"), std::string::npos) << err;
}

TEST(Chip, ParsePolicyNamesWithPlacement)
{
    SchedPolicy pol = SchedPolicy::RateMonotonic;
    PlacementPolicy pl = PlacementPolicy::Global;
    EXPECT_TRUE(parseSchedPolicyEx("pedf", pol, pl));
    EXPECT_EQ(pol, SchedPolicy::Edf);
    EXPECT_EQ(pl, PlacementPolicy::Partitioned);
    EXPECT_TRUE(parseSchedPolicyEx("gedf", pol, pl));
    EXPECT_EQ(pl, PlacementPolicy::Global);
    // Plain names keep the current placement.
    EXPECT_TRUE(parseSchedPolicyEx("rm", pol, pl));
    EXPECT_EQ(pol, SchedPolicy::RateMonotonic);
    EXPECT_EQ(pl, PlacementPolicy::Global);
    EXPECT_FALSE(parseSchedPolicyEx("bogus", pol, pl));
}

TEST(Chip, MultiCoreStatsCarryPerCoreAndBusGroups)
{
    SchedulerConfig cfg;
    cfg.cores = 2;
    cfg.placement = PlacementPolicy::Partitioned;
    MultiTaskScheduler sched(cfg);
    addAll(sched, clab6Defs(0.8));
    ASSERT_EQ(sched.admissionError(), "");
    sched.run(2);

    StatSet set;
    sched.buildStats(set);
    std::ostringstream os;
    set.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"core0\""), std::string::npos);
    EXPECT_NE(json.find("\"core1\""), std::string::npos);
    EXPECT_NE(json.find("\"bus\""), std::string::npos);
}

// ---- paired-core detector ----

TEST(Chip, PairedCheckPassesFaultFree)
{
    const Workload wl = makeWorkload("cnt");
    const chip::PairedCheckResult r =
        chip::runPairedCheck(wl.program, nullptr, 20'000'000'000ULL);
    EXPECT_FALSE(r.detected) << r.report;
    EXPECT_EQ(r.victimRetired, r.spareRetired);
}

TEST(Chip, PairedDetectorCoversLoadExtAtLeastAsWellAsLockstep)
{
    // The acceptance bar: over a seed sweep of the load-ext class, the
    // paired-core vote must catch at least the lockstep-detected
    // fraction (both detectors see the same plain-twin injections).
    verify::InjectRunOptions io;
    io.pairedCheck = true;
    int fired = 0, lockstep = 0, paired = 0;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const verify::InjectRunResult r = verify::runInjectProgram(
            seed, verify::FaultClass::LoadExt, io);
        if (r.fault.fired)
            ++fired;
        if (r.outcome == verify::InjectOutcome::DetectedLockstep)
            ++lockstep;
        if (r.pairedChecked && r.pairedDetected)
            ++paired;
    }
    EXPECT_GT(fired, 0);
    EXPECT_GT(paired, 0);
    EXPECT_GE(paired, lockstep);
}

} // anonymous namespace
} // namespace visa
