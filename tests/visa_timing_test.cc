/**
 * @file
 * Unit tests of the VisaTimer recurrence in isolation: the exact cycle
 * math every higher layer (both simulators and the WCET analyzer)
 * depends on.
 */

#include <gtest/gtest.h>

#include "cpu/visa_timing.hh"

namespace visa
{
namespace
{

TimingRecord
alu(Cycles lat = 1)
{
    TimingRecord r;
    r.exLatency = lat;
    return r;
}

TEST(VisaTimerTest, SingleInstructionTakesSixStages)
{
    VisaTimer t;
    t.reset();
    t.consume(alu());
    // IF 0, ID 1, RR 2, EX 3, MEM 4, WB 5 -> done after 6 cycles.
    EXPECT_EQ(t.totalCycles(), 6u);
}

TEST(VisaTimerTest, PipelinedAluThroughput)
{
    VisaTimer t;
    t.reset();
    for (int i = 0; i < 10; ++i)
        t.consume(alu());
    EXPECT_EQ(t.totalCycles(), 15u);    // 6 + 9
}

TEST(VisaTimerTest, IcacheMissDelaysEverything)
{
    VisaTimer t;
    t.reset();
    TimingRecord r = alu();
    r.imissPenalty = 100;
    t.consume(r);
    EXPECT_EQ(t.totalCycles(), 106u);
}

TEST(VisaTimerTest, DcacheMissBlocksMemoryStage)
{
    VisaTimer t;
    t.reset();
    TimingRecord ld = alu();
    ld.dmissPenalty = 100;
    t.consume(ld);
    EXPECT_EQ(t.totalCycles(), 106u);
    t.consume(alu());
    // The next instruction waits for the memory stage to free.
    EXPECT_EQ(t.totalCycles(), 107u);
}

TEST(VisaTimerTest, UnpipelinedFuOccupancy)
{
    VisaTimer a, b;
    a.reset();
    b.reset();
    a.consume(alu(35));
    a.consume(alu(35));
    b.consume(alu(35));
    b.consume(alu(1));
    EXPECT_EQ(a.totalCycles() - b.totalCycles(), 34u);
}

TEST(VisaTimerTest, LoadUseStallsOneCycle)
{
    VisaTimer dep, indep;
    dep.reset();
    indep.reset();
    TimingRecord ld = alu();    // a hitting load
    dep.consume(ld);
    indep.consume(ld);
    TimingRecord use = alu();
    use.loadUseStall = true;
    dep.consume(use);
    indep.consume(alu());
    EXPECT_EQ(dep.totalCycles(), indep.totalCycles() + 1);
}

TEST(VisaTimerTest, LoadUseAfterMissingLoadStillCostsOneCycle)
{
    // When the load misses, both versions stall on the blocked memory
    // stage; the dependent additionally waits for the loaded value
    // before entering execute, serializing one more cycle.
    VisaTimer dep, indep;
    dep.reset();
    indep.reset();
    TimingRecord ld = alu();
    ld.dmissPenalty = 100;
    dep.consume(ld);
    indep.consume(ld);
    TimingRecord use = alu();
    use.loadUseStall = true;
    dep.consume(use);
    indep.consume(alu());
    EXPECT_EQ(dep.totalCycles(), indep.totalCycles() + 1);
}

TEST(VisaTimerTest, RedirectCostsFourCycles)
{
    VisaTimer mis, ok;
    mis.reset();
    ok.reset();
    TimingRecord br = alu();
    br.redirect = true;
    mis.consume(br);
    ok.consume(alu());
    for (int i = 0; i < 3; ++i) {
        mis.consume(alu());
        ok.consume(alu());
    }
    EXPECT_EQ(mis.totalCycles(), ok.totalCycles() + 4);
}

TEST(VisaTimerTest, RedirectAtEndHasNoTrailingCost)
{
    // A redirect on the last instruction doesn't extend its own WB.
    VisaTimer mis, ok;
    mis.reset();
    ok.reset();
    TimingRecord br = alu();
    br.redirect = true;
    mis.consume(br);
    ok.consume(alu());
    EXPECT_EQ(mis.totalCycles(), ok.totalCycles());
}

TEST(VisaTimerTest, CopyForksPipelineState)
{
    VisaTimer t;
    t.reset();
    t.consume(alu());
    VisaTimer fork = t;
    t.consume(alu(35));
    fork.consume(alu(1));
    EXPECT_GT(t.totalCycles(), fork.totalCycles());
    EXPECT_EQ(fork.totalCycles(), 7u);
}

TEST(VisaTimerTest, InstructionCountTracks)
{
    VisaTimer t;
    t.reset();
    for (int i = 0; i < 5; ++i)
        t.consume(alu());
    EXPECT_EQ(t.instructions(), 5u);
    t.reset();
    EXPECT_EQ(t.instructions(), 0u);
}

TEST(VisaTimerTest, MissUnderDivOverlapsFetchStall)
{
    // An I-miss for a later instruction can be absorbed under a long
    // divide occupying the execute stage (fetch runs ahead).
    VisaTimer overlap, base;
    overlap.reset();
    base.reset();
    overlap.consume(alu(35));    // div
    base.consume(alu(35));
    TimingRecord missing = alu();
    missing.imissPenalty = 20;
    overlap.consume(missing);
    base.consume(alu());
    // The 20-cycle fetch penalty hides under the 35-cycle divide.
    EXPECT_EQ(overlap.totalCycles(), base.totalCycles());
}

} // anonymous namespace
} // namespace visa
