/**
 * @file
 * Targeted microarchitectural tests of the complex pipeline's timing
 * model: structure capacity backpressure (ROB/IQ/LSQ), load/store
 * ordering, MSHR limits, cache-port contention, front-end width, and
 * the memory-contention channel the paper's §3.2 contrasts with the
 * VISA's single outstanding request.
 */

#include <gtest/gtest.h>

#include "tests/test_util.hh"

namespace visa
{
namespace
{

using test::OooMachine;

/** Run once to warm the caches, then measure a second task. */
Cycles
warmCycles(OooMachine &m)
{
    m.run();
    m.cpu->resetForTask();
    m.run();
    return m.cpu->cycles();
}

/** Build N copies of @p line followed by halt. */
std::string
repeated(const std::string &line, int n, const std::string &prologue = "")
{
    std::string src = prologue;
    for (int i = 0; i < n; ++i)
        src += line + "\n";
    src += "        halt\n";
    return src;
}

TEST(OooStructures, IssueWidthBoundsIpc)
{
    // 400 independent single-cycle instructions: IPC can approach but
    // never exceed the 4-wide issue width.
    OooMachine m(repeated("        add r5, r6, r7", 400));
    Cycles warm = warmCycles(m);
    double ipc = static_cast<double>(m.cpu->retired()) /
                 static_cast<double>(warm);
    EXPECT_LE(ipc, 4.0);
    EXPECT_GT(ipc, 2.0);
}

TEST(OooStructures, DependentChainSerializes)
{
    // A fully dependent chain runs at IPC <= 1 no matter the width.
    OooMachine chain(repeated("        add r5, r5, r6", 300));
    OooMachine par(repeated("        add r5, r6, r7", 300));
    Cycles chain_w = warmCycles(chain);
    Cycles par_w = warmCycles(par);
    EXPECT_GT(chain_w, par_w * 2);
}

TEST(OooStructures, LoadsWaitForOlderStoreAddresses)
{
    // A load cannot issue before an older store's address is known;
    // with the store address dependent on a long divide, the load is
    // delayed despite having ready operands.
    const char *slow_store = R"(
        la  r4, buf
        div r5, r6, r7          # 35 cycles
        add r5, r5, r4          # store address depends on the divide
        sw  r8, 0(r5)
        lw  r9, 64(r4)          # younger load, ready immediately
        halt
        .data
buf:    .space 256
    )";
    const char *fast_store = R"(
        la  r4, buf
        div r5, r6, r7
        add r10, r5, r4         # divide result not used by the store
        sw  r8, 0(r4)
        lw  r9, 64(r4)
        halt
        .data
buf:    .space 256
    )";
    OooMachine slow(slow_store), fast(fast_store);
    slow.run();
    fast.run();
    // In both versions the divide must retire before HALT, so compare
    // the loads' completion indirectly via total cycles: the slow
    // version additionally serializes store-address -> load issue.
    EXPECT_GE(slow.cpu->cycles(), fast.cpu->cycles());
}

TEST(OooStructures, StoreToLoadForwardingBeatsCacheMiss)
{
    // A load that hits an in-flight older store forwards from the LSQ
    // and never touches the (cold) cache line.
    const char *forwarded = R"(
        la  r4, buf
        sw  r5, 0(r4)
        lw  r6, 0(r4)
        halt
        .data
buf:    .space 64
    )";
    const char *missing = R"(
        la  r4, buf
        sw  r5, 64(r4)
        lw  r6, 0(r4)           # different line: cold miss
        halt
        .data
buf:    .space 128
    )";
    OooMachine f(forwarded), m(missing);
    f.run();
    m.run();
    EXPECT_LT(f.cpu->cycles() + 50, m.cpu->cycles());
}

TEST(OooStructures, MlpBoundedByMshrs)
{
    // More independent cold misses than MSHRs: the ninth muss wait.
    // Compare 8 misses (fits maxOutstanding=8) vs 16 misses.
    auto build = [](int n) {
        std::string src = "        la r4, buf\n";
        for (int i = 0; i < n; ++i)
            src += "        lw r" + std::to_string(5 + (i % 20)) +
                   ", " + std::to_string(i * 256) + "(r4)\n";
        src += "        halt\n        .data\nbuf:    .space 8192\n";
        return src;
    };
    OooMachine eight(build(8)), sixteen(build(16));
    eight.run();
    sixteen.run();
    // Doubling the misses must cost noticeably more than doubling a
    // fully-overlapped burst would (channel occupancy: 30 cycles each
    // at 1 GHz).
    EXPECT_GT(sixteen.cpu->cycles(), eight.cpu->cycles() + 8 * 30 - 1);
}

TEST(OooStructures, MemoryContentionExceedsVisaStall)
{
    // §3.2: "memory stall time can be worse than the stall time
    // indicated in Table 1, due to contention among multiple
    // outstanding memory requests." One isolated miss resolves in
    // ~100 cycles; a burst's later misses take longer than that.
    auto build = [](int n) {
        std::string src = "        la r4, buf\n";
        for (int i = 0; i < n; ++i)
            src += "        lw r" + std::to_string(5 + i) + ", " +
                   std::to_string(i * 256) + "(r4)\n";
        // Serialize completion: consume the last load.
        src += "        add r3, r" + std::to_string(5 + n - 1) +
               ", r0\n";
        src += "        halt\n        .data\nbuf:    .space 4096\n";
        return src;
    };
    OooMachine one(build(1)), six(build(6));
    one.run();
    six.run();
    Cycles one_t = one.cpu->cycles();
    Cycles six_t = six.cpu->cycles();
    // Perfect overlap would finish the burst within ~5 cycles of the
    // single miss; channel occupancy forces 30 cycles per extra miss.
    EXPECT_GT(six_t, one_t + 5 * 30 - 10);
}

TEST(OooStructures, RobCapacityLimitsRunahead)
{
    // A long-latency head (divide chain) with >128 independent
    // instructions behind it: the window fills and fetch stalls, so
    // adding instructions beyond the ROB size costs real time.
    auto build = [](int fill) {
        std::string src;
        src += "        div r2, r3, r4\n";
        src += "        div r2, r2, r4\n";    // dependent: ~70 cycles
        for (int i = 0; i < fill; ++i)
            src += "        add r5, r6, r7\n";
        src += "        add r8, r2, r0\n";
        src += "        halt\n";
        return src;
    };
    OooMachine small(build(60)), big(build(250));
    small.run();
    big.run();
    // 60 fillers hide entirely under the divides; 250 exceed the
    // 128-entry window, so the extra 190 cannot all hide.
    EXPECT_GT(big.cpu->cycles(), small.cpu->cycles() + 20);
}

TEST(OooStructures, TakenBranchLimitsFetchBlock)
{
    // A chain of always-taken branches fetches one block per cycle;
    // straight-line code of the same instruction count fetches four
    // per cycle.
    std::string jumpy;
    for (int i = 0; i < 100; ++i) {
        jumpy += "        j t" + std::to_string(i) + "\n";
        jumpy += "t" + std::to_string(i) + ":\n";
    }
    jumpy += "        halt\n";
    OooMachine j(jumpy);
    OooMachine s(repeated("        add r5, r6, r7", 100));
    j.run();
    s.run();
    EXPECT_GT(j.cpu->cycles(), s.cpu->cycles() + 40);
}

TEST(OooStructures, IndirectPredictorLearnsStableTarget)
{
    // A loop calling through a register: the first pass stalls fetch;
    // subsequent passes are predicted.
    const char *src = R"(
        .entry main
fn:     add r5, r5, r6
        jr  ra
main:   la  r9, fn
        addi r4, r0, 50
loop:   jalr r31, r9
        subi r4, r4, 1
        .loopbound 50
        bgtz r4, loop
        halt
    )";
    OooMachine m(src);
    m.run();
    // 50 jalr + 50 jr: far fewer mispredictions than indirect jumps.
    EXPECT_LT(m.cpu->branchMispredicts(), 25u);
    EXPECT_EQ(m.intReg(5), 0u + 50u * m.intReg(6));
}

TEST(OooStructures, WrongPathDoesNotPolluteCaches)
{
    // Perfect squash (DESIGN.md): a mispredicted branch around a load
    // must not install the wrong-path line.
    const char *src = R"(
        la  r4, buf
        addi r5, r0, 1
        beq r5, r0, skip      # never taken; forward branch
        j after
skip:   lw  r6, 512(r4)       # never executed
after:  halt
        .data
buf:    .space 1024
    )";
    OooMachine m(src);
    m.run();
    EXPECT_FALSE(m.cpu->dcache().probe(m.prog.symbol("buf") + 512));
}

} // anonymous namespace
} // namespace visa
