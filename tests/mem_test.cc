/**
 * @file
 * Memory-system tests: sparse memory, cache geometry/LRU/flush, memory
 * controller contention, and platform devices.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "sim/logging.hh"

namespace visa
{
namespace
{

TEST(MainMemoryTest, ReadWriteWidths)
{
    MainMemory m;
    m.write(0x1000, 0x11223344, 4);
    EXPECT_EQ(m.read(0x1000, 4), 0x11223344u);
    EXPECT_EQ(m.read(0x1000, 1), 0x44u);    // little-endian
    EXPECT_EQ(m.read(0x1001, 2), 0x2233u);
    m.write(0x1002, 0xAB, 1);
    EXPECT_EQ(m.read(0x1000, 4), 0x11AB3344u);
}

TEST(MainMemoryTest, CrossPageAccess)
{
    MainMemory m;
    m.write(0x1FFE, 0xDDCCBBAA, 4);    // spans a 4 KB page boundary
    EXPECT_EQ(m.read(0x1FFE, 4), 0xDDCCBBAAu);
    EXPECT_EQ(m.read(0x2000, 1), 0xCCu);
}

TEST(MainMemoryTest, UntouchedMemoryReadsZero)
{
    MainMemory m;
    EXPECT_EQ(m.read(0xABCDE, 8), 0u);
}

TEST(MainMemoryTest, DoubleRoundTrip)
{
    MainMemory m;
    m.writeDouble(0x4000, -123.456);
    EXPECT_DOUBLE_EQ(m.readDouble(0x4000), -123.456);
}

// ---- safety net for the page-split memcpy fast path ----

TEST(MainMemoryTest, EveryWidthStraddlesPageBoundary)
{
    // Writes and reads of every width, placed so the access straddles
    // the 4 KB page boundary at every possible split point.
    for (int bytes : {2, 4, 8}) {
        for (int split = 1; split < bytes; ++split) {
            MainMemory m;
            const Addr base = 0x3000 - static_cast<Addr>(split);
            const std::uint64_t val = 0x1122334455667788ULL >>
                                      (8 * (8 - bytes));
            m.write(base, val, bytes);
            EXPECT_EQ(m.read(base, bytes), val)
                << bytes << " bytes split at " << split;
            // Byte-wise readback proves little-endian placement across
            // the boundary.
            for (int i = 0; i < bytes; ++i)
                EXPECT_EQ(m.read(base + static_cast<Addr>(i), 1),
                          (val >> (8 * i)) & 0xFF);
        }
    }
}

TEST(MainMemoryTest, DoubleStraddlesPageBoundary)
{
    MainMemory m;
    m.writeDouble(0x1FFC, 3.14159265358979);    // 4 bytes on each page
    EXPECT_DOUBLE_EQ(m.readDouble(0x1FFC), 3.14159265358979);
}

TEST(MainMemoryTest, UnmappedDoubleAndPartialPageReadZero)
{
    MainMemory m;
    EXPECT_DOUBLE_EQ(m.readDouble(0x9000), 0.0);
    // One mapped page next to an unmapped one: the straddling read
    // must see zeros for the unmapped half.
    m.write(0x5FFC, 0xAABBCCDD, 4);
    EXPECT_EQ(m.read(0x5FFC, 8), 0xAABBCCDDull);
}

TEST(MainMemoryTest, LittleEndianByteOrder)
{
    MainMemory m;
    m.write(0x100, 0x0102030405060708ULL, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(m.read(0x100 + static_cast<Addr>(i), 1),
                  static_cast<std::uint64_t>(8 - i));
    m.write(0x200, 0xBEEF, 2);
    EXPECT_EQ(m.read(0x200, 1), 0xEFu);
    EXPECT_EQ(m.read(0x201, 1), 0xBEu);
}

TEST(MainMemoryTest, BulkCopyRoundTripAcrossPages)
{
    MainMemory m;
    std::vector<std::uint8_t> src(10000);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 37 + 11);
    m.writeBytes(0x0FF0, src.data(), src.size());    // spans 3+ pages
    std::vector<std::uint8_t> dst(src.size(), 0);
    m.readBytes(0x0FF0, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
    // Spot-check against single-byte reads (same underlying pages).
    EXPECT_EQ(m.read(0x0FF0, 1), src[0]);
    EXPECT_EQ(m.read(0x0FF0 + 5000, 1), src[5000]);
}

TEST(MainMemoryTest, ClearDropsAllPages)
{
    MainMemory m;
    m.write(0x1FFE, 0x12345678, 4);    // straddle: touches two pages
    m.clear();
    EXPECT_EQ(m.read(0x1FFE, 4), 0u);
    // Memory is usable again after clear (page cache re-primed).
    m.write(0x1FFE, 0x9ABCDEF0, 4);
    EXPECT_EQ(m.read(0x1FFE, 4), 0x9ABCDEF0u);
}

TEST(MainMemoryTest, LoadProgramPlacesTextAndData)
{
    Program p = assemble(R"(
        addi r4, r0, 7
        halt
        .data
x:      .word 0x1234
    )");
    MainMemory m;
    m.loadProgram(p);
    EXPECT_EQ(m.readWord(p.textBase), p.words[0]);
    EXPECT_EQ(m.readWord(p.symbol("x")), 0x1234u);
}

TEST(CacheTest, VisaGeometry)
{
    Cache c({"c", 64 * 1024, 4, 64});
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.assoc(), 4u);
}

TEST(CacheTest, HitAfterMiss)
{
    Cache c({"c", 64 * 1024, 4, 64});
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103F, false));    // same 64B block
    EXPECT_FALSE(c.access(0x1040, false));   // next block
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheTest, LruEviction)
{
    Cache c({"c", 1024, 2, 64});    // 8 sets, 2 ways
    // Three blocks mapping to set 0: stride = 8 sets * 64 B = 512.
    EXPECT_FALSE(c.access(0, false));
    EXPECT_FALSE(c.access(512, false));
    EXPECT_TRUE(c.access(0, false));        // refresh block 0
    EXPECT_FALSE(c.access(1024, false));    // evicts 512 (LRU)
    EXPECT_TRUE(c.access(0, false));
    EXPECT_FALSE(c.access(512, false));     // was evicted
}

TEST(CacheTest, ProbeDoesNotDisturbState)
{
    Cache c({"c", 1024, 2, 64});
    c.access(0, false);
    c.access(512, false);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(1024));
    // probe must not refresh LRU: 0 is still LRU-older than 512 after
    // the probes? (0 accessed first, so 0 is LRU) -> inserting 1024
    // evicts 0.
    c.access(1024, false);
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(512));
}

TEST(CacheTest, EvictedBlockMissesEvenWhenMostRecentlyHit)
{
    // Regression test for the one-entry MRU filter in access(): a
    // block that was the most recent hit and is then evicted must miss
    // on its next access (the filter must not report a phantom hit).
    Cache c({"c", 1024, 2, 64});    // 8 sets, 2 ways
    EXPECT_FALSE(c.access(0, false));
    EXPECT_TRUE(c.access(0, false));        // block 0 is the MRU hit
    EXPECT_FALSE(c.access(512, false));
    EXPECT_FALSE(c.access(1024, false));    // evicts block 0 (LRU)
    EXPECT_FALSE(c.access(0, false));       // must be a genuine miss
    EXPECT_EQ(c.misses(), 4u);
}

TEST(CacheTest, FlushInvalidatesEverything)
{
    Cache c({"c", 64 * 1024, 4, 64});
    c.access(0x1000, false);
    c.access(0x2000, true);
    c.flush();
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(CacheTest, BadGeometryRejected)
{
    EXPECT_THROW(Cache({"c", 1000, 4, 64}), FatalError);
    EXPECT_THROW(Cache({"c", 1024, 3, 64}), FatalError);
}

TEST(MemCtrlTest, StallCyclesScaleWithFrequency)
{
    MemController mc;
    EXPECT_EQ(mc.stallCycles(1000), 100u);    // 100 ns at 1 GHz
    EXPECT_EQ(mc.stallCycles(100), 10u);
    EXPECT_EQ(mc.stallCycles(250), 25u);
    EXPECT_EQ(mc.stallCycles(333), 34u);      // ceil(33.3)
}

TEST(MemCtrlTest, ExclusiveAccessHasNoContention)
{
    MemController mc;
    EXPECT_EQ(mc.scheduleExclusive(1000, 1000), 1100u);
    EXPECT_EQ(mc.scheduleExclusive(1000, 1000), 1100u);    // stateless
}

TEST(MemCtrlTest, ChannelContentionDelaysBursts)
{
    MemController mc;
    Cycles c1 = mc.schedule(0, 1000);
    Cycles c2 = mc.schedule(0, 1000);
    Cycles c3 = mc.schedule(0, 1000);
    EXPECT_EQ(c1, 100u);
    EXPECT_EQ(c2, 130u);    // 30 ns occupancy delay
    EXPECT_EQ(c3, 160u);
    // A later isolated request sees no contention.
    mc.reset();
    EXPECT_EQ(mc.schedule(5000, 1000), 5100u);
}

TEST(PlatformTest, WatchdogStoreAccumulates)
{
    Platform p;
    p.store(mmio::watchdog, 100);
    p.store(mmio::watchdog, 50);
    EXPECT_EQ(p.watchdogValue(), 150);
    EXPECT_TRUE(p.watchdogArmed());
}

TEST(PlatformTest, TickNExpiryOffset)
{
    Platform p;
    p.maskWatchdog(false);
    p.store(mmio::watchdog, 10);
    auto r = p.tickN(4);
    EXPECT_FALSE(r.expired);
    r = p.tickN(20);
    EXPECT_TRUE(r.expired);
    EXPECT_EQ(r.offset, 6u);    // expired 6 cycles into the span
    EXPECT_EQ(p.cycleCounter(), 24u);
}

TEST(PlatformTest, SingleTickMatchesTickN)
{
    Platform a, b;
    a.maskWatchdog(false);
    b.maskWatchdog(false);
    a.store(mmio::watchdog, 5);
    b.store(mmio::watchdog, 5);
    int a_expired_at = -1;
    for (int i = 1; i <= 10; ++i)
        if (a.tick() && a_expired_at < 0)
            a_expired_at = i;
    auto r = b.tickN(10);
    EXPECT_TRUE(r.expired);
    EXPECT_EQ(static_cast<int>(r.offset), a_expired_at);
    EXPECT_EQ(a.cycleCounter(), b.cycleCounter());
}

TEST(PlatformTest, FrequencyRegisters)
{
    Platform p;
    p.setCurrentFreq(450);
    p.setRecoveryFreq(900);
    EXPECT_EQ(p.load(mmio::currentFreq), 450u);
    EXPECT_EQ(p.load(mmio::recoveryFreq), 900u);
}

TEST(PlatformTest, ConsoleOutput)
{
    Platform p;
    for (char ch : std::string("hi"))
        p.store(mmio::putChar, static_cast<Word>(ch));
    EXPECT_EQ(p.consoleOutput(), "hi");
}

TEST(PlatformTest, ResetClearsState)
{
    Platform p;
    p.store(mmio::watchdog, 5);
    p.store(mmio::checksum, 1);
    p.tickN(3);
    p.reset();
    EXPECT_FALSE(p.watchdogArmed());
    EXPECT_FALSE(p.checksumReported());
    EXPECT_EQ(p.cycleCounter(), 0u);
}

} // anonymous namespace
} // namespace visa
