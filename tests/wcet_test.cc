/**
 * @file
 * WCET analyzer tests: CFG construction, loop discovery, caching
 * categorizations (Table 2), and — most importantly — the soundness
 * invariant T1: the analyzer's bound is never below the cycles the
 * simple-fixed simulator actually takes, at any DVS frequency, while
 * staying reasonably tight.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "wcet/analyzer.hh"

namespace visa
{
namespace
{

using test::SimpleMachine;

// ---- CFG ----

TEST(CfgTest, StraightLineSingleBlock)
{
    Program p = assemble(R"(
        addi r4, r0, 1
        addi r5, r0, 2
        halt
    )");
    Cfg cfg(p, p.entry);
    EXPECT_EQ(cfg.blocks().size(), 1u);
    EXPECT_TRUE(cfg.loops().empty());
    EXPECT_EQ(cfg.block(0).numInsts(), 3);
}

TEST(CfgTest, DiamondControlFlow)
{
    Program p = assemble(R"(
        beq r4, r0, alt
        addi r5, r0, 1
        j join
alt:    addi r5, r0, 2
join:   halt
    )");
    Cfg cfg(p, p.entry);
    EXPECT_EQ(cfg.blocks().size(), 4u);
    const BasicBlock &head = cfg.block(cfg.entryBlock());
    ASSERT_EQ(head.succs.size(), 2u);
    // Taken edge listed first.
    EXPECT_EQ(cfg.block(head.succs[0]).startPc, p.symbol("alt"));
}

TEST(CfgTest, LoopDiscoveryAndBound)
{
    Program p = assemble(R"(
        addi r4, r0, 10
loop:   subi r4, r4, 1
        .loopbound 10
        bgtz r4, loop
        halt
    )");
    Cfg cfg(p, p.entry);
    ASSERT_EQ(cfg.loops().size(), 1u);
    EXPECT_EQ(cfg.loops()[0].bound, 10u);
    EXPECT_EQ(cfg.block(cfg.loops()[0].header).startPc,
              p.symbol("loop"));
}

TEST(CfgTest, NestedLoops)
{
    Program p = assemble(R"(
        addi r4, r0, 5
outer:  addi r5, r0, 3
inner:  subi r5, r5, 1
        .loopbound 3
        bgtz r5, inner
        subi r4, r4, 1
        .loopbound 5
        bgtz r4, outer
        halt
    )");
    Cfg cfg(p, p.entry);
    ASSERT_EQ(cfg.loops().size(), 2u);
    const Loop *inner = nullptr, *outer = nullptr;
    for (const auto &l : cfg.loops())
        (l.bound == 3 ? inner : outer) = &l;
    ASSERT_TRUE(inner && outer);
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_EQ(outer->parent, -1);
}

TEST(CfgTest, CallGraphDiscovery)
{
    Program p = assemble(R"(
        .entry main
leaf:   addi r5, r5, 1
        jr ra
main:   jal leaf
        jal leaf
        halt
    )");
    Cfg cfg(p, p.entry);
    ASSERT_EQ(cfg.callTargets().size(), 1u);
    EXPECT_EQ(*cfg.callTargets().begin(), p.symbol("leaf"));
}

TEST(CfgTest, MissingLoopBoundRejected)
{
    Program p = assemble(R"(
        addi r4, r0, 10
loop:   subi r4, r4, 1
        bgtz r4, loop
        halt
    )");
    EXPECT_THROW((Cfg(p, p.entry)), FatalError);
}

TEST(CfgTest, JalrRejected)
{
    Program p = assemble(R"(
        jalr r31, r4
        halt
    )");
    EXPECT_THROW((Cfg(p, p.entry)), FatalError);
}

// ---- I-cache categorizations ----

TEST(ICacheCatTest, SmallProgramFirstMissThenHits)
{
    Program p = assemble(R"(
        .subtask 1
        addi r4, r0, 100
loop:   subi r4, r4, 1
        .loopbound 100
        bgtz r4, loop
        halt
    )");
    WcetAnalyzer an(p);
    const auto &cache = an.mainCache();
    // First instruction leads its memory block: first-miss at the
    // task level (the program fits the cache untouched).
    EXPECT_EQ(cache.at(p.textBase).cat, CacheCat::FirstMiss);
    EXPECT_EQ(cache.at(p.textBase).fmScope, -1);
    // +4 starts a new basic block (the loop header), so it is
    // re-categorized; +8 follows in the same block and memory line.
    EXPECT_EQ(cache.at(p.textBase + 4).cat, CacheCat::FirstMiss);
    EXPECT_EQ(cache.at(p.textBase + 8).cat, CacheCat::AlwaysHit);
    // The charge is deduplicated per memory block: this whole program
    // occupies one 64-byte line, so exactly one first-miss is billed.
    EXPECT_EQ(cache.fmBlocks(-1).size(), 1u);
}

TEST(ICacheCatTest, TableTwoNames)
{
    EXPECT_STREQ(cacheCatName(CacheCat::AlwaysHit), "h");
    EXPECT_STREQ(cacheCatName(CacheCat::AlwaysMiss), "m");
    EXPECT_STREQ(cacheCatName(CacheCat::FirstMiss), "fm");
    EXPECT_STREQ(cacheCatName(CacheCat::FirstHit), "fh");
}

// ---- WCET bounds: soundness (T1) and tightness ----

struct WcetCase
{
    const char *name;
    const char *source;
};

const WcetCase wcetCases[] = {
    {"straightline", R"(
        addi r4, r0, 1
        add  r5, r4, r4
        mul  r6, r5, r5
        div  r7, r6, r5
        halt
    )"},
    {"counted_loop", R"(
        addi r4, r0, 64
        addi r5, r0, 0
loop:   add  r5, r5, r4
        subi r4, r4, 1
        .loopbound 64
        bgtz r4, loop
        halt
    )"},
    {"memory_loop", R"(
        la   r4, buf
        addi r5, r0, 32
loop:   lw   r6, 0(r4)
        add  r7, r7, r6
        sw   r7, 128(r4)
        addi r4, r4, 4
        subi r5, r5, 1
        .loopbound 32
        bgtz r5, loop
        halt
        .data
buf:    .space 512
    )"},
    {"branchy_loop", R"(
        addi r4, r0, 50
        addi r5, r0, 0
loop:   andi r6, r4, 1
        beq  r6, r0, even
        add  r5, r5, r4
        j next
even:   sub  r5, r5, r4
next:   subi r4, r4, 1
        .loopbound 50
        bgtz r4, loop
        halt
    )"},
    {"nested_loops", R"(
        addi r4, r0, 8
outer:  addi r5, r0, 8
inner:  mul  r6, r4, r5
        add  r7, r7, r6
        subi r5, r5, 1
        .loopbound 8
        bgtz r5, inner
        subi r4, r4, 1
        .loopbound 8
        bgtz r4, outer
        halt
    )"},
    {"fp_kernel", R"(
        la   r4, v
        addi r5, r0, 16
        ldc1 f2, 0(r4)
loop:   ldc1 f4, 8(r4)
        mul.d f6, f2, f4
        add.d f8, f8, f6
        addi r4, r4, 8
        subi r5, r5, 1
        .loopbound 16
        bgtz r5, loop
        sdc1 f8, 0(r4)
        halt
        .data
v:      .double 1.5, 2.5, 0.5, 1.25, 3.0, 0.25, 2.0, 1.0
        .double 1.5, 2.5, 0.5, 1.25, 3.0, 0.25, 2.0, 1.0
        .double 0.0
    )"},
    {"call_leaf", R"(
        .entry main
leaf:   mul  r6, r4, r4
        add  r5, r5, r6
        jr   ra
main:   addi r4, r0, 5
        jal  leaf
        addi r4, r4, 2
        jal  leaf
        halt
    )"},
    {"early_exit_loop", R"(
        addi r4, r0, 100
        addi r5, r0, 0
loop:   add  r5, r5, r4
        slti r6, r5, 1000
        beq  r6, r0, done      # early exit once the sum is large
        subi r4, r4, 1
        .loopbound 100
        bgtz r4, loop
done:   halt
    )"},
};

class WcetSoundness : public ::testing::TestWithParam<WcetCase>
{
};

TEST_P(WcetSoundness, BoundsSimulatorAtEveryFrequency)
{
    const WcetCase &wc = GetParam();
    SimpleMachine m(wc.source);
    WcetAnalyzer an(m.prog);
    DMissProfile dmiss = profileDataMisses(m.prog);

    for (MHz f : {100u, 250u, 475u, 700u, 1000u}) {
        SimpleMachine run(wc.source);
        run.cpu->setFrequency(f);
        auto res = run.run();
        ASSERT_EQ(res.reason, StopReason::Halted) << wc.name;
        WcetReport rep = an.analyze(f, &dmiss);
        EXPECT_GE(rep.taskCycles, run.cpu->cycles())
            << wc.name << " at " << f << " MHz";
        // Tightness guard: the bound should not explode (the paper's
        // worst over-estimate is 2.0x for srt; allow slack for tiny
        // kernels where fixed costs dominate).
        EXPECT_LE(rep.taskCycles, run.cpu->cycles() * 4 + 2000)
            << wc.name << " at " << f << " MHz";
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, WcetSoundness,
                         ::testing::ValuesIn(wcetCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST(WcetSoundness, AlsoBoundsComplexPipelineSimpleMode)
{
    const char *src = wcetCases[1].source;    // counted_loop
    test::OooMachine m(src);
    m.cpu->switchToSimple();
    m.run();
    WcetAnalyzer an(m.prog);
    WcetReport rep = an.analyze(1000);
    EXPECT_GE(rep.taskCycles, m.cpu->cycles());
}

TEST(WcetTightness, SteadyLoopWithinFifteenPercent)
{
    // A regular counted loop is the analyzer's best case: the bound
    // should be close to reality (paper: 1.00-1.16 for such kernels).
    const char *src = R"(
        addi r4, r0, 256
        addi r5, r0, 0
loop:   add  r5, r5, r4
        add  r6, r6, r5
        add  r7, r7, r6
        subi r4, r4, 1
        .loopbound 256
        bgtz r4, loop
        halt
    )";
    SimpleMachine m(src);
    m.run();
    WcetAnalyzer an(m.prog);
    WcetReport rep = an.analyze(1000);
    double ratio = static_cast<double>(rep.taskCycles) /
                   static_cast<double>(m.cpu->cycles());
    EXPECT_GE(ratio, 1.0);
    EXPECT_LE(ratio, 1.15);
}

TEST(WcetSubtasks, PerSubtaskBoundsSumToTask)
{
    Program p = assemble(R"(
        .subtask 1
        addi r4, r0, 40
s1:     subi r4, r4, 1
        .loopbound 40
        bgtz r4, s1
        .subtask 2
        addi r5, r0, 40
s2:     subi r5, r5, 1
        .loopbound 40
        bgtz r5, s2
        .subtask 3
        addi r6, r0, 7
        halt
    )");
    WcetAnalyzer an(p);
    EXPECT_EQ(an.numSubtasks(), 3);
    WcetReport rep = an.analyze(1000);
    ASSERT_EQ(rep.subtaskCycles.size(), 3u);
    Cycles sum = 0;
    for (Cycles c : rep.subtaskCycles)
        sum += c;
    EXPECT_EQ(sum, rep.taskCycles);
    // The two loop sub-tasks should dominate the straight-line tail.
    EXPECT_GT(rep.subtaskCycles[0], rep.subtaskCycles[2]);
    EXPECT_GT(rep.subtaskCycles[1], rep.subtaskCycles[2]);
}

TEST(WcetSubtasks, SubtaskBoundsCoverPartialExecutions)
{
    // Invariant T4 groundwork: each sub-task bound must cover the
    // cycles the simulator spends inside that sub-task.
    const char *src = R"(
        .subtask 1
        li   r8, 0xFFFF0010
        li   r11, 1
        sw   r11, 0(r8)
        addi r4, r0, 30
        la   r9, buf
s1:     lw   r10, 0(r9)
        add  r10, r10, r4
        sw   r10, 0(r9)
        subi r4, r4, 1
        .loopbound 30
        bgtz r4, s1
        .subtask 2
        li   r11, 2
        sw   r11, 0(r8)
        addi r5, r0, 60
s2:     mul  r6, r5, r5
        subi r5, r5, 1
        .loopbound 60
        bgtz r5, s2
        halt
        .data
buf:    .word 0
    )";
    SimpleMachine m(src);
    WcetAnalyzer an(m.prog);
    DMissProfile dmiss = profileDataMisses(m.prog);
    WcetReport rep = an.analyze(1000, &dmiss);

    // Measure per-subtask actual cycles via marker callbacks.
    std::vector<Cycles> stamps;
    m.platform.onSubtaskBegin = [&](int) {
        stamps.push_back(m.cpu->cycles());
    };
    m.run();
    stamps.push_back(m.cpu->cycles());
    ASSERT_EQ(stamps.size(), 3u);
    // Note: stamps lag the marker by the in-flight snippet, so compare
    // cumulative sums conservatively.
    EXPECT_GE(rep.subtaskCycles[0] + rep.subtaskCycles[1],
              stamps[2] - stamps[0]);
    EXPECT_GE(rep.subtaskCycles[0] + 100, stamps[1] - stamps[0]);
}

TEST(WcetFrequency, BoundScalesWithMissPenalty)
{
    Program p = assemble(R"(
        addi r4, r0, 4
        halt
    )");
    WcetAnalyzer an(p);
    EXPECT_EQ(an.missPenalty(1000), 100u);
    EXPECT_EQ(an.missPenalty(100), 10u);
    WcetReport fast = an.analyze(1000);
    WcetReport slow = an.analyze(100);
    EXPECT_GT(fast.taskCycles, slow.taskCycles);    // more stall cycles
    // Wall-clock time at the lower frequency is longer.
    EXPECT_GT(slow.taskMicros(), fast.taskMicros());
}

TEST(WcetDmissPad, PaddingAddsMissPenalty)
{
    Program p = assemble(R"(
        .subtask 1
        addi r4, r0, 4
        halt
    )");
    WcetAnalyzer an(p);
    WcetReport base = an.analyze(1000);
    DMissProfile pad;
    pad.missesPerSubtask = {5};
    WcetReport padded = an.analyze(1000, &pad);
    EXPECT_EQ(padded.taskCycles, base.taskCycles + 5 * 100);
    pad.safetyFactor = 2.0;
    WcetReport padded2 = an.analyze(1000, &pad);
    EXPECT_EQ(padded2.taskCycles, base.taskCycles + 10 * 100);
}

TEST(WcetDmissProfile, CountsColdMisses)
{
    // Sub-tasks are announced through the MMIO port, exactly as the
    // instrumentation snippets emitted by the workload generators do.
    Program p = assemble(R"(
        .subtask 1
        li  r8, 0xFFFF0010
        li  r9, 1
        sw  r9, 0(r8)
        la  r4, buf
        lw  r5, 0(r4)
        lw  r6, 256(r4)
        .subtask 2
        li  r9, 2
        sw  r9, 0(r8)
        lw  r7, 512(r4)
        halt
        .data
buf:    .space 1024
    )");
    DMissProfile prof = profileDataMisses(p);
    ASSERT_EQ(prof.missesPerSubtask.size(), 2u);
    EXPECT_EQ(prof.missesPerSubtask[0], 2u);
    EXPECT_EQ(prof.missesPerSubtask[1], 1u);
}

} // anonymous namespace
} // namespace visa
