# Sanitizer tier (`ctest -C san -L san` from a configured build tree):
# configures the repository's "debug" preset (-O0 -g, ASan + UBSan),
# builds it, and runs the differential fuzzing suite plus the
# end-to-end trace pipeline under the sanitizers. Any sanitizer report
# aborts the inner ctest and fails this test.
#
# Expects -DSOURCE_DIR=... (the repository root).

if(NOT DEFINED SOURCE_DIR)
    message(FATAL_ERROR "san_check.cmake: SOURCE_DIR not set")
endif()

set(build_dir "${SOURCE_DIR}/build-debug")

execute_process(
    COMMAND "${CMAKE_COMMAND}" --preset debug
    WORKING_DIRECTORY "${SOURCE_DIR}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "configure --preset debug failed (rc=${rc}):\n"
        "${out}\n${err}")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --parallel
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sanitizer build failed (rc=${rc}):\n${out}\n${err}")
endif()

# halt_on_error is the ASan default; UBSan needs the explicit ask so a
# UB report fails the run instead of scrolling past.
set(ENV{UBSAN_OPTIONS} "halt_on_error=1:print_stacktrace=1")
set(ENV{ASAN_OPTIONS} "detect_leaks=0")

execute_process(
    COMMAND "${CMAKE_CTEST_COMMAND}"
            # "differential" (lower-case) is the 2000-program timing
            # cross-check of the event-driven OooCpu vs its frozen
            # per-cycle reference; "bench_gate" stays out (wall-clock
            # thresholds are meaningless on a sanitized build).
            -R "Differential|differential|Lockstep|Progen|Oracle|Corpus|Scheduler|trace_schema|prof_suite|Prof\\.|inject_suite|Inject\\.|chip_suite|Chip\\."
            --output-on-failure
    WORKING_DIRECTORY "${build_dir}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "sanitized differential suite failed (rc=${rc}):\n${out}\n${err}")
endif()

message(STATUS "san_check: sanitized differential suite passed")
