/**
 * @file
 * Robustness and edge-case tests of the WCET analyzer: rejection of
 * unanalyzable shapes (recursion, irreducible flow, marker misuse),
 * the path-explosion fallback, loop-bound semantics, call handling,
 * and the analyzer's own conservatism knobs.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "wcet/analyzer.hh"

namespace visa
{
namespace
{

using test::SimpleMachine;

TEST(WcetRobustness, RecursionRejected)
{
    Program p = assemble(R"(
        .entry main
rec:    subi r4, r4, 1
        blez r4, out
        jal rec
out:    jr ra
main:   addi r4, r0, 3
        jal rec
        halt
    )");
    EXPECT_THROW(WcetAnalyzer{p}, FatalError);
}

TEST(WcetRobustness, MultipleBackEdgesRejected)
{
    // Two latches into one header: the single-latch discipline the
    // analyzer documents.
    Program p = assemble(R"(
        addi r4, r0, 10
head:   subi r4, r4, 1
        andi r5, r4, 1
        beq r5, r0, other
        .loopbound 10
        bgtz r4, head
        j done
other:  .loopbound 10
        bgtz r4, head
done:   halt
    )");
    EXPECT_THROW(WcetAnalyzer{p}, FatalError);
}

TEST(WcetRobustness, SubtaskMarkerInsideLoopRejected)
{
    Program p = assemble(R"(
        .subtask 1
        addi r4, r0, 10
loop:   subi r4, r4, 1
        .subtask 2
        nop
        .loopbound 10
        bgtz r4, loop
        halt
    )");
    EXPECT_THROW(WcetAnalyzer{p}, FatalError);
}

TEST(WcetRobustness, SubtaskIdsMustBeOrdered)
{
    Program p = assemble(R"(
        .subtask 2
        addi r4, r0, 1
        .subtask 1
        halt
    )");
    EXPECT_THROW(WcetAnalyzer{p}, FatalError);
}

TEST(WcetRobustness, FirstMarkerMustSitAtEntry)
{
    Program p = assemble(R"(
        addi r4, r0, 1
        .subtask 1
        halt
    )");
    EXPECT_THROW(WcetAnalyzer{p}, FatalError);
}

TEST(WcetRobustness, PathExplosionFallsBackSoundly)
{
    // 16 consecutive diamonds = 65536 paths > the 4096 cap: the
    // analyzer must warn, fall back to drain composition, and stay
    // sound (and conservative).
    std::string src;
    for (int i = 0; i < 16; ++i) {
        std::string t = std::to_string(i);
        src += "        andi r2, r9, " + std::to_string(1 << (i % 10)) +
               "\n";
        src += "        beq r2, r0, e" + t + "\n";
        src += "        add r5, r5, r6\n";
        src += "        j j" + t + "\n";
        src += "e" + t + ":  sub r5, r5, r6\n";
        src += "j" + t + ":  nop\n";
    }
    src += "        halt\n";
    AnalyzerParams params;
    params.maxPaths = 4096;
    Program p = assemble(src);
    WcetAnalyzer an(p, params);
    SimpleMachine m(src);
    m.cpu->arch().writeInt(9, 0x2AA);
    m.run();
    WcetReport rep = an.analyze(1000);
    EXPECT_GE(rep.taskCycles, m.cpu->cycles());
}

TEST(WcetRobustness, LoopBoundIsPerEntry)
{
    // The inner loop runs its full bound on every outer iteration:
    // WCET must scale with the product.
    auto build = [](int outer) {
        std::string s;
        s += "        addi r4, r0, " + std::to_string(outer) + "\n";
        s += "o:      addi r5, r0, 6\n";
        s += "i:      subi r5, r5, 1\n";
        s += "        .loopbound 6\n";
        s += "        bgtz r5, i\n";
        s += "        subi r4, r4, 1\n";
        s += "        .loopbound " + std::to_string(outer) + "\n";
        s += "        bgtz r4, o\n";
        s += "        halt\n";
        return s;
    };
    Program p4 = assemble(build(4));
    Program p8 = assemble(build(8));
    WcetAnalyzer a4(p4);
    WcetAnalyzer a8(p8);
    Cycles w4 = a4.analyze(1000).taskCycles;
    Cycles w8 = a8.analyze(1000).taskCycles;
    // Four extra outer iterations, each running the full inner bound
    // (~25 cycles per iteration); the fixed cold-miss charge does not
    // grow.
    EXPECT_GT(w8, w4 + 4 * 20);
    EXPECT_LT(w8, w4 * 2);
}

TEST(WcetRobustness, CalleeChargedPerCallSite)
{
    auto build = [](int calls) {
        std::string s = "        .entry main\n";
        s += "leaf:   mul r5, r6, r7\n";
        s += "        add r8, r8, r5\n";
        s += "        jr ra\n";
        s += "main:\n";
        for (int i = 0; i < calls; ++i)
            s += "        jal leaf\n";
        s += "        halt\n";
        return s;
    };
    Program p2 = assemble(build(2));
    Program p6 = assemble(build(6));
    WcetAnalyzer a2(p2);
    WcetAnalyzer a6(p6);
    Cycles w2 = a2.analyze(1000).taskCycles;
    Cycles w6 = a6.analyze(1000).taskCycles;
    EXPECT_GT(w6, w2);
    // And both bound the simulator.
    SimpleMachine m(build(6));
    m.run();
    EXPECT_GE(w6, m.cpu->cycles());
}

TEST(WcetRobustness, CallInsideLoopMultiplies)
{
    const char *src = R"(
        .entry main
leaf:   mul r5, r6, r7
        jr ra
main:   addi r4, r0, 12
loop:   jal leaf
        subi r4, r4, 1
        .loopbound 12
        bgtz r4, loop
        halt
    )";
    Program p = assemble(src);
    WcetAnalyzer an(p);
    SimpleMachine m(src);
    m.run();
    Cycles w = an.analyze(1000).taskCycles;
    EXPECT_GE(w, m.cpu->cycles());
    // Documented conservatism (DESIGN.md): the callee's first-miss
    // charge is billed once per call, so the bound includes up to
    // 12 extra I-miss penalties plus drain boundaries.
    EXPECT_LT(w, m.cpu->cycles() + 12 * 150 + 500);
}

TEST(WcetRobustness, IterSlackKnobIsMonotone)
{
    const char *src = R"(
        addi r4, r0, 100
loop:   add r5, r5, r4
        subi r4, r4, 1
        .loopbound 100
        bgtz r4, loop
        halt
    )";
    Program p = assemble(src);
    AnalyzerParams tight;
    AnalyzerParams slack;
    slack.iterSlack = 3;
    WcetAnalyzer at(p, tight);
    WcetAnalyzer as(p, slack);
    Cycles wt = at.analyze(1000).taskCycles;
    Cycles ws = as.analyze(1000).taskCycles;
    EXPECT_EQ(ws, wt + 99 * 3);    // (bound-1) * slack
}

TEST(WcetRobustness, SelfLoopSingleBlock)
{
    const char *src = R"(
        addi r4, r0, 40
loop:   subi r4, r4, 1
        .loopbound 40
        bgtz r4, loop
        halt
    )";
    Program p = assemble(src);
    Cfg cfg(p, p.entry);
    ASSERT_EQ(cfg.loops().size(), 1u);
    EXPECT_EQ(cfg.loops()[0].blocks.size(), 1u);
    SimpleMachine m(src);
    m.run();
    WcetAnalyzer an(p);
    EXPECT_GE(an.analyze(1000).taskCycles, m.cpu->cycles());
}

TEST(WcetRobustness, BoundViolationWouldBeUnsound)
{
    // Sanity that the tests themselves can detect unsoundness: an
    // intentionally under-annotated loop yields WCET below the
    // simulator (demonstrating why correct bounds are load-bearing).
    const char *src = R"(
        addi r4, r0, 50
loop:   add r5, r5, r4
        subi r4, r4, 1
        .loopbound 5
        bgtz r4, loop
        halt
    )";
    Program p = assemble(src);
    WcetAnalyzer an(p);
    SimpleMachine m(src);
    m.run();
    EXPECT_LT(an.analyze(1000).taskCycles, m.cpu->cycles());
}

} // anonymous namespace
} // namespace visa
