/**
 * @file
 * Determinism and API-contract tests: simulators must be bit-exact
 * across repeated runs (no hidden host-dependent state), the CFG's
 * topological order must respect forward edges, and the run-time
 * system must behave identically given identical inputs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/concurrency.hh"
#include "core/runtime.hh"
#include "sim/parallel.hh"
#include "sim/trace.hh"
#include "tests/test_util.hh"
#include "wcet/analyzer.hh"
#include "wcet/cfg.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

TEST(Determinism, OooCpuIsBitExactAcrossRuns)
{
    Workload wl = makeWorkload("fft");
    Cycles first = 0;
    for (int i = 0; i < 3; ++i) {
        MainMemory mem;
        Platform plat;
        MemController mc;
        mem.loadProgram(wl.program);
        OooCpu cpu(wl.program, mem, plat, mc);
        cpu.resetForTask();
        cpu.run(20'000'000'000ULL);
        if (i == 0)
            first = cpu.cycles();
        else
            EXPECT_EQ(cpu.cycles(), first) << "run " << i;
        EXPECT_EQ(plat.lastChecksum(), wl.expectedChecksum);
    }
}

TEST(Determinism, WorkloadGeneratorsAreStable)
{
    // Generators embed LCG-derived data; two constructions must be
    // identical (golden values are compile-time stable).
    Workload a = makeWorkload("srt");
    Workload b = makeWorkload("srt");
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.expectedChecksum, b.expectedChecksum);
}

TEST(Determinism, AnalyzerIsStableAcrossConstructions)
{
    Workload wl = makeWorkload("cnt");
    WcetAnalyzer a(wl.program);
    WcetAnalyzer b(wl.program);
    for (MHz f : {100u, 1000u})
        EXPECT_EQ(a.analyze(f).taskCycles, b.analyze(f).taskCycles);
}

TEST(CfgTopoOrder, RespectsForwardEdges)
{
    Workload wl = makeWorkload("adpcm");
    Cfg cfg(wl.program, wl.program.entry);
    const auto &topo = cfg.topoOrder();
    ASSERT_EQ(topo.size(), cfg.blocks().size());
    std::vector<int> pos(topo.size());
    for (std::size_t i = 0; i < topo.size(); ++i)
        pos[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
    for (const auto &bb : cfg.blocks()) {
        for (int s : bb.succs) {
            bool is_back = false;
            for (const auto &l : cfg.loops())
                if (l.header == s && l.backedgeTail == bb.id)
                    is_back = true;
            if (!is_back) {
                EXPECT_LT(pos[static_cast<std::size_t>(bb.id)],
                          pos[static_cast<std::size_t>(s)])
                    << bb.id << " -> " << s;
            }
        }
    }
}

TEST(RuntimeHistogramPolicy, RunsSafelyEndToEnd)
{
    Workload wl = makeWorkload("mm");
    WcetAnalyzer analyzer(wl.program);
    DMissProfile dmiss = profileDataMisses(wl.program);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs, &dmiss);
    MainMemory mem;
    Platform plat;
    MemController mc;
    mem.loadProgram(wl.program);
    OooCpu cpu(wl.program, mem, plat, mc);
    RuntimeConfig cfg;
    cfg.deadlineSeconds = wcet.taskSeconds(650);
    cfg.ovhdSeconds = 2e-6;
    cfg.petPolicy.kind = PetPolicy::Histogram;
    cfg.petPolicy.targetMissRate = 0.1;
    VisaComplexRuntime rt(cpu, wl.program, mem, wcet, dvs, cfg);
    rt.pets().seed(profileComplexAets(wl.program, wl.numSubtasks));
    for (int t = 0; t < 15; ++t) {
        TaskStats ts = rt.runTask();
        EXPECT_TRUE(ts.deadlineMet) << t;
        EXPECT_EQ(ts.checksum, wl.expectedChecksum);
    }
    EXPECT_EQ(rt.stats().deadlineMisses, 0);
}

TEST(SlackEdgeCases, NoBackgroundWorkWithoutSlack)
{
    // A deadline equal to the static requirement leaves ~no slack at
    // the floor frequency; the scheduler must grant ~nothing and must
    // not disturb the hard task.
    Workload wl = makeWorkload("cnt");
    WcetAnalyzer analyzer(wl.program);
    DMissProfile dmiss = profileDataMisses(wl.program);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs, &dmiss);
    MainMemory mem;
    Platform plat;
    MemController mc;
    mem.loadProgram(wl.program);
    SimpleCpu cpu(wl.program, mem, plat, mc);
    RuntimeConfig cfg;
    cfg.deadlineSeconds = wcet.taskSeconds(1000) * 1.001;
    cfg.ovhdSeconds = 2e-6;
    SimpleFixedRuntime rt(cpu, wl.program, mem, wcet, dvs, cfg);
    Program bg = assemble("idle:   j idle_done\nidle_done: halt");
    SlackScheduler sched(rt, bg, dvs);
    TaskStats ts = sched.runPeriod();
    EXPECT_TRUE(ts.deadlineMet);
    // The hard task runs near the top setting: slack per period is a
    // sliver of the deadline.
    EXPECT_LT(sched.background().slackSeconds,
              cfg.deadlineSeconds * 0.8);
}

/** One campaign arm: both pipelines on one benchmark. */
struct ArmResult
{
    Cycles simpleCycles = 0;
    Cycles complexCycles = 0;
    Word simpleChecksum = 0;
    Word complexChecksum = 0;

    bool operator==(const ArmResult &) const = default;
};

ArmResult
runArm(const Workload &wl)
{
    ArmResult r;
    {
        MainMemory mem;
        Platform plat;
        MemController mc;
        mem.loadProgram(wl.program);
        SimpleCpu cpu(wl.program, mem, plat, mc);
        cpu.resetForTask();
        cpu.run(20'000'000'000ULL);
        r.simpleCycles = cpu.cycles();
        r.simpleChecksum = plat.lastChecksum();
    }
    {
        MainMemory mem;
        Platform plat;
        MemController mc;
        mem.loadProgram(wl.program);
        OooCpu cpu(wl.program, mem, plat, mc);
        cpu.resetForTask();
        cpu.run(20'000'000'000ULL);
        r.complexCycles = cpu.cycles();
        r.complexChecksum = plat.lastChecksum();
    }
    return r;
}

/** Run one benchmark on the complex pipeline under a tracer and
 *  return the JSONL dump (the byte-stable trace wire format). */
std::string
runTracedArm(const Workload &wl)
{
    MainMemory mem;
    Platform plat;
    MemController mc;
    mem.loadProgram(wl.program);
    OooCpu cpu(wl.program, mem, plat, mc);
    cpu.resetForTask();
    Tracer tracer(1 << 22);
    {
        ScopedTracer scope(tracer);
        cpu.run(20'000'000'000ULL);
    }
    std::ostringstream os;
    tracer.writeJsonl(os);
    return os.str();
}

TEST(Determinism, TracesAreByteIdenticalAcrossPools)
{
    // The tracer is installed per thread, so parallel arms observe only
    // their own rig's events: a pooled campaign must produce the exact
    // bytes a serial run produces, whatever VISA_THREADS says.
    const std::vector<std::string> names = {"cnt", "fir"};
    std::vector<Workload> wls;
    for (const auto &n : names)
        wls.push_back(makeWorkload(n));

    std::vector<std::string> serial(wls.size());
    for (std::size_t i = 0; i < wls.size(); ++i)
        serial[i] = runTracedArm(wls[i]);

    const char *old = std::getenv("VISA_THREADS");
    const std::string saved = old ? old : "";
    setenv("VISA_THREADS", "4", 1);
    std::vector<std::string> pooled(wls.size());
    parallelFor(wls.size(),
                [&](std::size_t i) { pooled[i] = runTracedArm(wls[i]); });
    if (old)
        setenv("VISA_THREADS", saved.c_str(), 1);
    else
        unsetenv("VISA_THREADS");

    for (std::size_t i = 0; i < wls.size(); ++i) {
        EXPECT_FALSE(serial[i].empty()) << names[i];
        EXPECT_EQ(pooled[i], serial[i]) << names[i];
    }
}

TEST(Determinism, PooledCampaignMatchesSerialBitExactly)
{
    // The campaign binaries run their per-benchmark arms on the thread
    // pool; the results they collect must be bit-identical to a serial
    // run of the same arms, in the same (input) order.
    const std::vector<std::string> names = {"cnt", "srt", "fir"};
    std::vector<Workload> wls;
    for (const auto &n : names)
        wls.push_back(makeWorkload(n));

    std::vector<ArmResult> serial(wls.size());
    for (std::size_t i = 0; i < wls.size(); ++i)
        serial[i] = runArm(wls[i]);

    const char *old = std::getenv("VISA_THREADS");
    const std::string saved = old ? old : "";
    setenv("VISA_THREADS", "4", 1);
    std::vector<ArmResult> pooled(wls.size());
    parallelFor(wls.size(),
                [&](std::size_t i) { pooled[i] = runArm(wls[i]); });
    if (old)
        setenv("VISA_THREADS", saved.c_str(), 1);
    else
        unsetenv("VISA_THREADS");

    for (std::size_t i = 0; i < wls.size(); ++i) {
        EXPECT_EQ(pooled[i], serial[i]) << names[i];
        EXPECT_EQ(pooled[i].simpleChecksum, wls[i].expectedChecksum);
    }
}

} // anonymous namespace
} // namespace visa
