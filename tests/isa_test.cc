/**
 * @file
 * Unit tests for the VPISA layer: opcode classification and latencies,
 * operand/hazard queries, encode/decode round trips, and semantics.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"
#include "isa/instruction.hh"
#include "isa/semantics.hh"

namespace visa
{
namespace
{

TEST(IsaClassify, R10kLatencies)
{
    EXPECT_EQ(latencyOf(Opcode::ADD), 1u);
    EXPECT_EQ(latencyOf(Opcode::MUL), 6u);
    EXPECT_EQ(latencyOf(Opcode::DIV), 35u);
    EXPECT_EQ(latencyOf(Opcode::REM), 35u);
    EXPECT_EQ(latencyOf(Opcode::ADD_D), 2u);
    EXPECT_EQ(latencyOf(Opcode::MUL_D), 2u);
    EXPECT_EQ(latencyOf(Opcode::DIV_D), 19u);
    EXPECT_EQ(latencyOf(Opcode::LW), 1u);
}

TEST(IsaClassify, Classes)
{
    EXPECT_EQ(classOf(Opcode::BEQ), InstrClass::CondBranch);
    EXPECT_EQ(classOf(Opcode::BC1T), InstrClass::CondBranch);
    EXPECT_EQ(classOf(Opcode::J), InstrClass::DirectJump);
    EXPECT_EQ(classOf(Opcode::JR), InstrClass::IndirectJump);
    EXPECT_EQ(classOf(Opcode::JALR), InstrClass::IndirectJump);
    EXPECT_EQ(classOf(Opcode::LDC1), InstrClass::Load);
    EXPECT_EQ(classOf(Opcode::SDC1), InstrClass::Store);
    EXPECT_EQ(classOf(Opcode::CVT_D_W), InstrClass::FpAlu);
}

TEST(InstructionOperands, IntAluDest)
{
    Instruction add;
    add.op = Opcode::ADD;
    add.rd = 5;
    add.rs = 1;
    add.rt = 2;
    EXPECT_EQ(add.destIntReg(), 5);
    EXPECT_EQ(add.destFpReg(), -1);
    auto srcs = add.srcIntRegs();
    EXPECT_EQ(srcs[0], 1);
    EXPECT_EQ(srcs[1], 2);
}

TEST(InstructionOperands, WriteToR0Discarded)
{
    Instruction add;
    add.op = Opcode::ADD;
    add.rd = 0;
    EXPECT_EQ(add.destIntReg(), -1);
}

TEST(InstructionOperands, JalWritesRa)
{
    Instruction jal;
    jal.op = Opcode::JAL;
    EXPECT_EQ(jal.destIntReg(), reg::ra);
}

TEST(InstructionOperands, StoreSources)
{
    Instruction sw;
    sw.op = Opcode::SW;
    sw.rs = 4;    // base
    sw.rt = 7;    // data
    auto srcs = sw.srcIntRegs();
    EXPECT_EQ(srcs[0], 4);
    EXPECT_EQ(srcs[1], 7);

    Instruction sdc1;
    sdc1.op = Opcode::SDC1;
    sdc1.rs = 4;
    sdc1.rt = 9;
    EXPECT_EQ(sdc1.srcIntRegs()[0], 4);
    EXPECT_EQ(sdc1.srcIntRegs()[1], -1);
    // Slots map to instruction fields (rs -> [0], rt -> [1]); SDC1's
    // FP data operand lives in rt. Consumers treat slots symmetrically.
    EXPECT_EQ(sdc1.srcFpRegs()[0], -1);
    EXPECT_EQ(sdc1.srcFpRegs()[1], 9);
}

TEST(InstructionOperands, FccDependence)
{
    Instruction cmp;
    cmp.op = Opcode::C_LT_D;
    Instruction br;
    br.op = Opcode::BC1T;
    EXPECT_TRUE(cmp.writesFcc());
    EXPECT_TRUE(br.readsFcc());
    EXPECT_TRUE(br.dependsOn(cmp));
    EXPECT_FALSE(cmp.dependsOn(br));
}

TEST(InstructionOperands, LoadUseDependence)
{
    Instruction lw;
    lw.op = Opcode::LW;
    lw.rd = 8;
    lw.rs = 4;
    Instruction add;
    add.op = Opcode::ADD;
    add.rd = 9;
    add.rs = 8;
    add.rt = 3;
    EXPECT_TRUE(add.dependsOn(lw));
    Instruction other;
    other.op = Opcode::ADD;
    other.rd = 9;
    other.rs = 3;
    other.rt = 3;
    EXPECT_FALSE(other.dependsOn(lw));
}

// ---- Encoding round trips ----

class EncodingRoundTrip : public ::testing::TestWithParam<Instruction>
{
};

TEST_P(EncodingRoundTrip, Roundtrips)
{
    const Addr pc = 0x00400100;
    Instruction inst = GetParam();
    Word w = encode(inst, pc);
    Instruction back = decode(w, pc);
    EXPECT_EQ(back, inst) << disassemble(inst, pc) << " vs "
                          << disassemble(back, pc);
}

std::vector<Instruction>
roundTripCases()
{
    std::vector<Instruction> v;
    auto mk = [&](Opcode op, int rd, int rs, int rt, std::int32_t imm) {
        Instruction i;
        i.op = op;
        i.rd = static_cast<std::uint8_t>(rd);
        i.rs = static_cast<std::uint8_t>(rs);
        i.rt = static_cast<std::uint8_t>(rt);
        i.imm = imm;
        v.push_back(i);
    };
    mk(Opcode::ADD, 1, 2, 3, 0);
    mk(Opcode::SUB, 31, 30, 29, 0);
    mk(Opcode::MUL, 4, 5, 6, 0);
    mk(Opcode::DIV, 7, 8, 9, 0);
    mk(Opcode::REM, 10, 11, 12, 0);
    mk(Opcode::NOR, 13, 14, 15, 0);
    mk(Opcode::SLT, 16, 17, 18, 0);
    mk(Opcode::SLTU, 19, 20, 21, 0);
    mk(Opcode::SLLV, 22, 23, 24, 0);
    mk(Opcode::SLL, 25, 26, 0, 31);
    mk(Opcode::SRA, 27, 28, 0, 1);
    mk(Opcode::ADDI, 1, 2, 0, -32768);
    mk(Opcode::ADDI, 1, 2, 0, 32767);
    mk(Opcode::ORI, 3, 4, 0, 0xFFFF);
    mk(Opcode::LUI, 5, 0, 0, 0x1234);
    mk(Opcode::LW, 6, 7, 0, -4);
    mk(Opcode::LB, 8, 9, 0, 127);
    mk(Opcode::LDC1, 10, 11, 0, 8);
    mk(Opcode::SW, 0, 12, 13, 100);
    mk(Opcode::SDC1, 0, 14, 15, -8);
    mk(Opcode::BEQ, 0, 1, 2, 0x00400000);
    mk(Opcode::BNE, 0, 3, 4, 0x00400200);
    mk(Opcode::BLEZ, 0, 5, 0, 0x00400080);
    mk(Opcode::BGEZ, 0, 6, 0, 0x00400104);
    mk(Opcode::BC1T, 0, 0, 0, 0x00400000);
    mk(Opcode::J, 0, 0, 0, 0x00400000);
    mk(Opcode::JAL, 0, 0, 0, 0x00401000);
    mk(Opcode::JR, 0, 31, 0, 0);
    mk(Opcode::JALR, 31, 2, 0, 0);
    mk(Opcode::ADD_D, 1, 2, 3, 0);
    mk(Opcode::DIV_D, 4, 5, 6, 0);
    mk(Opcode::NEG_D, 7, 8, 0, 0);
    mk(Opcode::CVT_D_W, 9, 10, 0, 0);
    mk(Opcode::CVT_W_D, 11, 12, 0, 0);
    mk(Opcode::C_LT_D, 0, 13, 14, 0);
    mk(Opcode::NOP, 0, 0, 0, 0);
    mk(Opcode::HALT, 0, 0, 0, 0);
    return v;
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EncodingRoundTrip,
                         ::testing::ValuesIn(roundTripCases()));

// ---- Semantics ----

TEST(Semantics, IntAluBasics)
{
    Instruction i;
    i.op = Opcode::ADD;
    EXPECT_EQ(evalIntAlu(i, 2, 3), 5u);
    i.op = Opcode::SUB;
    EXPECT_EQ(evalIntAlu(i, 2, 3), static_cast<Word>(-1));
    i.op = Opcode::SLT;
    EXPECT_EQ(evalIntAlu(i, static_cast<Word>(-1), 0), 1u);
    i.op = Opcode::SLTU;
    EXPECT_EQ(evalIntAlu(i, static_cast<Word>(-1), 0), 0u);
    i.op = Opcode::SRA;
    i.imm = 4;
    EXPECT_EQ(evalIntAlu(i, static_cast<Word>(-64), 0),
              static_cast<Word>(-4));
    i.op = Opcode::SRL;
    EXPECT_EQ(evalIntAlu(i, 0x80000000u, 0), 0x08000000u);
}

TEST(Semantics, DivisionEdgeCases)
{
    Instruction i;
    i.op = Opcode::DIV;
    EXPECT_EQ(evalIntAlu(i, 7, 0), 0u);    // div by zero defined as 0
    EXPECT_EQ(evalIntAlu(i, static_cast<Word>(INT32_MIN),
                         static_cast<Word>(-1)),
              static_cast<Word>(INT32_MIN));
    i.op = Opcode::REM;
    EXPECT_EQ(evalIntAlu(i, 7, 0), 0u);
    EXPECT_EQ(evalIntAlu(i, 7, 3), 1u);
    EXPECT_EQ(evalIntAlu(i, static_cast<Word>(-7), 3),
              static_cast<Word>(-1));
}

TEST(Semantics, ControlEval)
{
    Instruction b;
    b.op = Opcode::BNE;
    b.imm = 0x00400010;
    auto ev = evalControl(b, 0x00400100, 1, 2, false);
    EXPECT_TRUE(ev.taken);
    EXPECT_EQ(ev.target, 0x00400010u);
    ev = evalControl(b, 0x00400100, 2, 2, false);
    EXPECT_FALSE(ev.taken);
    EXPECT_EQ(ev.target, 0x00400104u);

    Instruction jr;
    jr.op = Opcode::JR;
    ev = evalControl(jr, 0x00400100, 0x00400ABC, 0, false);
    EXPECT_TRUE(ev.taken);
    EXPECT_EQ(ev.target, 0x00400ABCu);
}

TEST(Semantics, ExtendLoad)
{
    EXPECT_EQ(extendLoad(Opcode::LB, 0x80), 0xFFFFFF80u);
    EXPECT_EQ(extendLoad(Opcode::LBU, 0x80), 0x80u);
    EXPECT_EQ(extendLoad(Opcode::LH, 0x8000), 0xFFFF8000u);
    EXPECT_EQ(extendLoad(Opcode::LHU, 0x8000), 0x8000u);
    EXPECT_EQ(extendLoad(Opcode::LW, 0xDEADBEEF), 0xDEADBEEFu);
}

TEST(Semantics, BackwardBranchDetection)
{
    Instruction b;
    b.op = Opcode::BNE;
    b.imm = 0x00400000;
    EXPECT_TRUE(b.isBackward(0x00400100));
    b.imm = 0x00400200;
    EXPECT_FALSE(b.isBackward(0x00400100));
}

} // anonymous namespace
} // namespace visa
