/**
 * @file
 * The Table 1 contract: the VisaSpec parameters, their propagation
 * into the analyzer and the memory system, and the pipeline facts the
 * paper states in §3.1 (six stages, four-cycle redirect, R10K
 * latencies, merged BTB).
 */

#include <gtest/gtest.h>

#include "core/visa_spec.hh"
#include "cpu/simple_cpu.hh"
#include "cpu/visa_timing.hh"

namespace visa
{
namespace
{

TEST(VisaSpecTest, TableOneParameters)
{
    VisaSpec spec;
    EXPECT_EQ(spec.pipelineStages, 6);
    EXPECT_EQ(spec.mispredictPenalty, 4);
    EXPECT_EQ(spec.icache.sizeBytes, 64u * 1024u);
    EXPECT_EQ(spec.icache.assoc, 4u);
    EXPECT_EQ(spec.icache.blockBytes, 64u);
    EXPECT_EQ(spec.dcache.sizeBytes, 64u * 1024u);
    EXPECT_DOUBLE_EQ(spec.memStallNs, 100.0);
}

TEST(VisaSpecTest, PropagatesToAnalyzerAndMemory)
{
    VisaSpec spec;
    AnalyzerParams ap = spec.analyzerParams();
    EXPECT_EQ(ap.icache.sizeBytes, spec.icache.sizeBytes);
    EXPECT_DOUBLE_EQ(ap.memStallNs, spec.memStallNs);
    MemCtrlParams mp = spec.memCtrlParams();
    EXPECT_DOUBLE_EQ(mp.accessNs, 100.0);
    MemController mc(mp);
    EXPECT_EQ(mc.stallCycles(1000), 100u);
}

TEST(VisaSpecTest, SimulatorCachesMatchTheSpec)
{
    VisaSpec spec;
    CacheParams ic = visaICacheParams();
    EXPECT_EQ(ic.sizeBytes, spec.icache.sizeBytes);
    EXPECT_EQ(ic.assoc, spec.icache.assoc);
    EXPECT_EQ(ic.blockBytes, spec.icache.blockBytes);
    CacheParams dc = visaDCacheParams();
    EXPECT_EQ(dc.sizeBytes, spec.dcache.sizeBytes);
}

TEST(VisaSpecTest, PipelineDepthMatchesTheRecurrence)
{
    // One hit instruction traverses exactly pipelineStages cycles.
    VisaSpec spec;
    VisaTimer t;
    t.reset();
    TimingRecord r;
    t.consume(r);
    EXPECT_EQ(t.totalCycles(),
              static_cast<Cycles>(spec.pipelineStages));
}

TEST(VisaSpecTest, RedirectPenaltyMatchesTheRecurrence)
{
    // The four-cycle misprediction penalty (§3.1: "four stages
    // between fetch and execute").
    VisaSpec spec;
    VisaTimer mis, ok;
    mis.reset();
    ok.reset();
    TimingRecord br;
    br.redirect = true;
    mis.consume(br);
    ok.consume(TimingRecord{});
    for (int i = 0; i < 2; ++i) {
        mis.consume(TimingRecord{});
        ok.consume(TimingRecord{});
    }
    EXPECT_EQ(mis.totalCycles() - ok.totalCycles(),
              static_cast<Cycles>(spec.mispredictPenalty));
}

TEST(VisaSpecTest, R10kLatenciesAreTheContract)
{
    // Table 1: "execution latencies: MIPS R10K latencies."
    EXPECT_EQ(latencyOf(Opcode::ADD), 1u);
    EXPECT_EQ(latencyOf(Opcode::MUL), 6u);
    EXPECT_EQ(latencyOf(Opcode::DIV), 35u);
    EXPECT_EQ(latencyOf(Opcode::ADD_D), 2u);
    EXPECT_EQ(latencyOf(Opcode::MUL_D), 2u);
    EXPECT_EQ(latencyOf(Opcode::DIV_D), 19u);
}

} // anonymous namespace
} // namespace visa
