/**
 * @file
 * Tests for the structured event tracer (sim/trace.hh) and the JSON
 * statistics export (StatSet): wire-format goldens, ring-buffer
 * wraparound, category masks, cycle-offset banking, pipeline and
 * runtime instrumentation, distribution range guards, and formula
 * finiteness.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "core/runtime.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "isa/assembler.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "tests/test_util.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

// ---- wire format ----

TEST(TraceFormat, JsonlGoldenBytes)
{
    // The JSONL sink is a stable wire format: hand-recorded events
    // must serialize to these exact bytes (visa-trace and the golden
    // workload traces depend on it).
    Tracer t(8);
    t.record(EventKind::TaskBegin, 0, 3, 900, 700, 125e-6);
    t.record(EventKind::CheckpointHit, 1200, 2, 1100, 1250, 150.0);
    t.record(EventKind::FreqChange, 1300, 900, 700);
    t.record(EventKind::SimpleModeEnter, 1400);
    std::ostringstream os;
    t.writeJsonl(os);
    EXPECT_EQ(os.str(),
              "{\"schema\":3}\n"
              "{\"ev\":\"task_begin\",\"cat\":\"task\",\"cycle\":0,"
              "\"task\":3,\"fspec_mhz\":900,\"frec_mhz\":700,"
              "\"deadline_s\":0.000125}\n"
              "{\"ev\":\"checkpoint_hit\",\"cat\":\"checkpoint\","
              "\"cycle\":1200,\"subtask\":2,\"aet_cycles\":1100,"
              "\"pet_cycles\":1250,\"slack_cycles\":150}\n"
              "{\"ev\":\"freq_change\",\"cat\":\"dvs\",\"cycle\":1300,"
              "\"from_mhz\":900,\"to_mhz\":700}\n"
              "{\"ev\":\"simple_mode_enter\",\"cat\":\"mode\","
              "\"cycle\":1400}\n");
}

TEST(TraceFormat, NonFiniteDoubleArgsDumpAsZero)
{
    Tracer t(4);
    t.record(EventKind::TaskEnd, 10, 0, 1, 0,
             std::numeric_limits<double>::quiet_NaN());
    std::ostringstream os;
    t.writeJsonl(os);
    EXPECT_NE(os.str().find("\"completion_s\":0"), std::string::npos);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

TEST(TraceFormat, ChromeTraceStructure)
{
    Tracer t(16);
    t.record(EventKind::SimpleModeEnter, 100);
    t.record(EventKind::MshrOccupancy, 150, 3);
    t.record(EventKind::FreqChange, 180, 1000, 700);
    t.record(EventKind::SimpleModeExit, 200);
    std::ostringstream os;
    t.writeChromeTrace(os);
    const std::string out = os.str();
    // Top-level object leading with the schema version, then the
    // traceEvents array and track names.
    EXPECT_EQ(out.find("{\"schema\":3,\"traceEvents\":["), 0u);
    EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
    // The simple mode renders as a B/E duration slice.
    EXPECT_NE(out.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"E\""), std::string::npos);
    // MSHR occupancy and the clock are counter tracks.
    EXPECT_NE(out.find("\"name\":\"mshr_outstanding\",\"ph\":\"C\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\":\"frequency_mhz\",\"ph\":\"C\""),
              std::string::npos);
    EXPECT_NE(out.find("\"dropped_events\":0"), std::string::npos);
}

TEST(TraceFormat, EventKindTableIsComplete)
{
    for (int k = 0; k < numEventKinds; ++k) {
        const EventKindInfo &info =
            eventKindInfo(static_cast<EventKind>(k));
        ASSERT_NE(info.name, nullptr) << k;
        ASSERT_NE(info.category, nullptr) << k;
        EXPECT_NE(Tracer::maskFor(info.category), 0u) << info.name;
    }
    EXPECT_EQ(Tracer::maskFor("all"), Tracer::allKinds());
    EXPECT_EQ(Tracer::maskFor("no-such-category"), 0u);
}

// ---- ring buffer ----

TEST(TraceRing, WraparoundKeepsNewestEvents)
{
    Tracer t(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(EventKind::Retire, i, /*pc=*/4 * i, /*seq=*/i);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
    // Chronological order over the retained tail (seq 6..9).
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(t.at(i).b, 6 + i);
        EXPECT_EQ(t.at(i).cycle, 6 + i);
    }
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.capacity(), 4u);
}

TEST(TraceRing, KindMaskFilters)
{
    Tracer t(16);
    t.setKindMask(Tracer::maskFor("mem"));
    t.record(EventKind::Retire, 1);
    t.record(EventKind::DcacheMiss, 2, 0x100);
    t.record(EventKind::TaskBegin, 3);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.at(0).kind, EventKind::DcacheMiss);
}

TEST(TraceRing, CycleOffsetShiftsTimeline)
{
    Tracer t(8);
    t.record(EventKind::TaskBegin, 0);
    t.setCycleOffset(5000);
    t.record(EventKind::TaskBegin, 0);
    EXPECT_EQ(t.at(0).cycle, 0u);
    EXPECT_EQ(t.at(1).cycle, 5000u);
}

// ---- installation ----

TEST(TraceInstall, ScopedTracerInstallsAndRestores)
{
    EXPECT_EQ(currentTracer(), nullptr);
    Tracer t(8);
    {
        ScopedTracer scope(t);
        EXPECT_EQ(currentTracer(), &t);
        VISA_TRACE(EventKind::WatchdogFire, 42, 2);
    }
    EXPECT_EQ(currentTracer(), nullptr);
    VISA_TRACE(EventKind::WatchdogFire, 43, 3);    // no-op when empty
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.at(0).cycle, 42u);
    EXPECT_EQ(t.at(0).a, 2u);
}

// ---- pipeline instrumentation ----

TEST(TracePipelines, SimpleCpuEmitsRetires)
{
    Program prog = assemble("addi r1, r0, 5\n"
                            "addi r2, r0, 7\n"
                            "add  r3, r1, r2\n"
                            "halt\n");
    auto sim = SimBuilder().program(std::move(prog))
                   .cpu(CpuKind::Simple).build();
    Cpu &cpu = sim->cpu();
    Tracer t(1 << 12);
    {
        ScopedTracer scope(t);
        cpu.run();
    }
    std::size_t retires = 0, imisses = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t.at(i).kind == EventKind::Retire)
            ++retires;
        if (t.at(i).kind == EventKind::IcacheMiss)
            ++imisses;
    }
    EXPECT_EQ(retires, cpu.retired());
    EXPECT_EQ(imisses, cpu.icache().misses());
    // First retired instruction is the entry instruction.
    EXPECT_EQ(t.at(0).kind, EventKind::IcacheMiss);    // cold cache
}

TEST(TracePipelines, OooCpuEmitsFetchRetireAndMispredicts)
{
    auto sim = SimBuilder().workload("cnt")
                   .cpu(CpuKind::Complex).build();
    OooCpu &cpu = sim->ooo();
    Tracer t(1 << 22);
    {
        ScopedTracer scope(t);
        cpu.run();
    }
    ASSERT_EQ(t.dropped(), 0u);
    std::size_t fetches = 0, retires = 0, mispredicts = 0, squashes = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        switch (t.at(i).kind) {
          case EventKind::Fetch: ++fetches; break;
          case EventKind::Retire: ++retires; break;
          case EventKind::BranchMispredict: ++mispredicts; break;
          case EventKind::Squash: ++squashes; break;
          default: break;
        }
    }
    EXPECT_EQ(retires, cpu.retired());
    EXPECT_EQ(fetches, cpu.retired());    // perfect squash: fetch==retire
    EXPECT_EQ(mispredicts, cpu.branchMispredicts());
    EXPECT_EQ(squashes, mispredicts);     // every mispredict resolves
}

TEST(TracePipelines, TracingDoesNotPerturbTiming)
{
    Workload wl = makeWorkload("srt");
    auto run_cycles = [&](bool traced) {
        auto sim = SimBuilder().program(wl.program)
                       .cpu(CpuKind::Complex).build();
        Tracer t(1 << 22);
        if (traced) {
            ScopedTracer scope(t);
            sim->cpu().run();
        } else {
            sim->cpu().run();
        }
        return sim->cpu().cycles();
    };
    EXPECT_EQ(run_cycles(false), run_cycles(true));
}

// ---- runtime instrumentation ----

TEST(TraceRuntime, VisaRunEmitsCheckpointAndDvsEvents)
{
    Workload wl = makeWorkload("cnt");
    WcetAnalyzer analyzer(wl.program);
    DMissProfile dmiss = profileDataMisses(wl.program);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs, &dmiss);
    RuntimeConfig cfg;
    cfg.deadlineSeconds = wcet.taskSeconds(650);
    cfg.ovhdSeconds = 2e-6;
    cfg.dvsSoftwareCycles = 500;
    cfg.drainBudgetCycles = 512;
    auto sim = SimBuilder().program(wl.program)
                   .runtime(RuntimeKind::Visa, wcet, dvs, cfg).build();
    DvsRuntime &rt = sim->runtime();
    rt.pets().seed(profileComplexAets(wl.program, wl.numSubtasks));

    Tracer t(1 << 20);
    t.setKindMask(Tracer::maskFor("task") | Tracer::maskFor("checkpoint") |
                  Tracer::maskFor("dvs"));
    {
        ScopedTracer scope(t);
        for (int i = 0; i < 3; ++i)
            rt.runTask();
    }
    ASSERT_EQ(t.dropped(), 0u);

    std::size_t begins = 0, ends = 0, arms = 0, hits = 0, decisions = 0;
    Cycles last_cycle = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const TraceEvent &e = t.at(i);
        EXPECT_GE(e.cycle, last_cycle)
            << "timeline must stay monotonic across tasks (event " << i
            << ")";
        last_cycle = e.cycle;
        switch (e.kind) {
          case EventKind::TaskBegin: ++begins; break;
          case EventKind::TaskEnd: ++ends; break;
          case EventKind::CheckpointArm: ++arms; break;
          case EventKind::CheckpointHit: ++hits; break;
          case EventKind::FreqDecision: ++decisions; break;
          default: break;
        }
    }
    EXPECT_EQ(begins, 3u);
    EXPECT_EQ(ends, 3u);
    EXPECT_GE(decisions, 1u);
    // Speculating from task 0 (PETs were seeded from a profile), so
    // every task arms the watchdog and reports per-sub-task hits.
    EXPECT_EQ(arms, 3u);
    EXPECT_EQ(hits, 3u * static_cast<std::size_t>(wl.numSubtasks));
}

TEST(TraceRuntime, RuntimeStatsGroupExportsSlackDistribution)
{
    Workload wl = makeWorkload("cnt");
    WcetAnalyzer analyzer(wl.program);
    DMissProfile dmiss = profileDataMisses(wl.program);
    DvsTable dvs;
    WcetTable wcet(analyzer, dvs, &dmiss);
    RuntimeConfig cfg;
    cfg.deadlineSeconds = wcet.taskSeconds(650);
    cfg.ovhdSeconds = 2e-6;
    auto sim = SimBuilder().program(wl.program)
                   .runtime(RuntimeKind::Visa, wcet, dvs, cfg).build();
    DvsRuntime &rt = sim->runtime();
    rt.pets().seed(profileComplexAets(wl.program, wl.numSubtasks));

    // Before any task: the miss-rate formula divides 0 by 0 and must
    // still dump as a finite 0 in both sinks.
    {
        StatSet set;
        rt.buildStats(set);
        std::ostringstream text, json;
        set.dump(text);
        set.dumpJson(json);
        EXPECT_NE(text.str().find("runtime.checkpoint_miss_rate 0"),
                  std::string::npos);
        EXPECT_EQ(json.str().find("nan"), std::string::npos);
        EXPECT_EQ(json.str().find("inf"), std::string::npos);
    }

    for (int i = 0; i < 2; ++i)
        rt.runTask();

    StatSet set;
    sim->cpu().buildStats(set);
    rt.buildStats(set);
    std::ostringstream text;
    set.dump(text);
    EXPECT_NE(text.str().find("runtime.tasks 2"), std::string::npos);
    EXPECT_NE(text.str().find("runtime.checkpoint_slack_cycles.samples"),
              std::string::npos);
    std::ostringstream json;
    set.dumpJson(json);
    EXPECT_NE(json.str().find("\"checkpoint_slack_cycles\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"buckets\""), std::string::npos);
}

// ---- stats guards and JSON export ----

TEST(StatsGuards, DistributionCountsUnderAndOverflow)
{
    StatGroup::Distribution d;
    d.init(100, 200, 10);
    d.sample(50);      // below range -> first bucket, underflow
    d.sample(100);     // in range
    d.sample(199);     // in range
    d.sample(200);     // at max -> overflow bucket
    d.sample(1'000'000'000ULL);    // far beyond -> overflow bucket
    EXPECT_EQ(d.samples(), 5u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 2u);
    EXPECT_EQ(d.buckets().front(), 2u);    // 50 (clamped) + 100
    EXPECT_EQ(d.buckets().back(), 2u);     // 200 + 1e9 (clamped)
    d.reset();
    EXPECT_EQ(d.underflows(), 0u);
    EXPECT_EQ(d.overflows(), 0u);
}

TEST(StatsGuards, FormulaZeroDenominatorDumpsZero)
{
    StatGroup g("g");
    g.formula("rate", [] { return 0.0 / 0.0; });
    g.formula("ratio", [] { return 1.0 / 0.0; });
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("g.rate 0"), std::string::npos);
    EXPECT_NE(os.str().find("g.ratio 0"), std::string::npos);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
    EXPECT_EQ(os.str().find("inf"), std::string::npos);

    std::ostringstream json;
    g.dumpJson(json);
    EXPECT_EQ(json.str().find("nan"), std::string::npos);
    EXPECT_EQ(json.str().find("inf"), std::string::npos);
}

TEST(StatsJson, HierarchicalExportNestsDottedGroups)
{
    StatSet set;
    set.group("cpu.core0").scalar("cycles").set(100);
    set.group("cpu.core1").scalar("cycles").set(200);
    set.group("runtime").scalar("tasks").set(7);
    std::ostringstream os;
    set.dumpJson(os);
    const std::string out = os.str();
    // "cpu" appears once as a parent with core0/core1 children.
    EXPECT_NE(out.find("\"cpu\""), std::string::npos);
    EXPECT_NE(out.find("\"core0\""), std::string::npos);
    EXPECT_NE(out.find("\"core1\""), std::string::npos);
    EXPECT_NE(out.find("\"runtime\""), std::string::npos);
    EXPECT_NE(out.find("\"tasks\": 7"), std::string::npos);
}

TEST(StatsJson, CpuJsonDumpIsWellFormedEnough)
{
    auto sim = SimBuilder().source("addi r1, r0, 1\nhalt\n")
                   .cpu(CpuKind::Simple).build();
    sim->cpu().run();
    std::ostringstream os;
    sim->cpu().dumpStatsJson(os);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '{');
    EXPECT_NE(out.find("\"simple\""), std::string::npos);
    EXPECT_NE(out.find("\"instructions\": "), std::string::npos);
    // Balanced braces (cheap well-formedness check; visa-trace's real
    // parser covers the trace formats).
    int depth = 0;
    bool in_string = false;
    for (char c : out) {
        if (c == '"')
            in_string = !in_string;
        else if (!in_string && c == '{')
            ++depth;
        else if (!in_string && c == '}')
            --depth;
    }
    EXPECT_EQ(depth, 0);
}

// ---- debug flag registry ----

TEST(DebugFlags, RegistryKnowsEveryUsedFlag)
{
    // Every DPRINTF site's flag must be registered, or --debug help
    // lies. (Grep-based: the known list is short.)
    for (const char *flag : {"Exec", "Mode", "Runtime", "Watchdog"})
        EXPECT_TRUE(Debug::isKnown(flag)) << flag;
    EXPECT_FALSE(Debug::isKnown("NoSuchFlag"));
    EXPECT_FALSE(Debug::knownFlags().empty());
}

} // anonymous namespace
} // namespace visa
