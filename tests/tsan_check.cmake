# Thread-sanitizer tier (`ctest -C tsan -L tsan` from a configured
# build tree): configures the repository's "tsan" preset (-O1 -g,
# -fsanitize=thread), builds it, and runs the suites that exercise the
# process-wide worker pool — the multi-core chip engines
# (Chip./ChipParallel.), the standalone pool tests (Parallel.), and a
# differential sample — with VISA_THREADS raised so the pool really
# spawns workers. Any data-race report aborts the inner ctest and
# fails this test.
#
# Expects -DSOURCE_DIR=... (the repository root).

if(NOT DEFINED SOURCE_DIR)
    message(FATAL_ERROR "tsan_check.cmake: SOURCE_DIR not set")
endif()

set(build_dir "${SOURCE_DIR}/build-tsan")

execute_process(
    COMMAND "${CMAKE_COMMAND}" --preset tsan
    WORKING_DIRECTORY "${SOURCE_DIR}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "configure --preset tsan failed (rc=${rc}):\n"
        "${out}\n${err}")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --parallel
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tsan build failed (rc=${rc}):\n${out}\n${err}")
endif()

# A race report must fail the run, not scroll past.
set(ENV{TSAN_OPTIONS} "halt_on_error=1")
# The determinism tests pin VISA_THREADS per case; everything else in
# the filter runs with a thread pool wide enough to interleave for
# real even on a small host.
set(ENV{VISA_THREADS} "8")

execute_process(
    COMMAND "${CMAKE_CTEST_COMMAND}"
            # The threaded surfaces: the chip suites (epoch-buffered
            # free run + partitioned scheduler + paired detector), the
            # worker-pool unit tests, and the differential_nocache
            # sample (500 programs; the full 2000-program run is too
            # slow under TSan's ~10x overhead). "bench_gate" stays out
            # (wall-clock thresholds are meaningless when sanitized).
            -R "chip_suite|Chip\\.|ChipParallel\\.|Parallel\\.|differential_nocache"
            --output-on-failure
    WORKING_DIRECTORY "${build_dir}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "tsan chip/parallel suite failed (rc=${rc}):\n${out}\n${err}")
endif()

message(STATUS "tsan_check: thread-sanitized chip/parallel suite passed")
