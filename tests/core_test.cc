/**
 * @file
 * Unit tests for the VISA core framework: WCET tables, checkpoint
 * arithmetic (EQ 1), frequency-speculation solvers (EQ 2/EQ 4), PET
 * estimation (last-N and histogram), and schedulability utilities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/checkpoints.hh"
#include "core/freq_spec.hh"
#include "core/pet.hh"
#include "core/schedulability.hh"
#include "core/wcet_table.hh"
#include "isa/assembler.hh"
#include "sim/logging.hh"
#include "wcet/analyzer.hh"

namespace visa
{
namespace
{

/** A three-sub-task toy program shared by the core tests. */
const char *coreProgram = R"(
        .subtask 1
        addi r4, r0, 500
a:      subi r4, r4, 1
        .loopbound 500
        bgtz r4, a
        .subtask 2
        addi r5, r0, 1000
b:      mul r6, r5, r5
        subi r5, r5, 1
        .loopbound 1000
        bgtz r5, b
        .subtask 3
        addi r7, r0, 300
c:      subi r7, r7, 1
        .loopbound 300
        bgtz r7, c
        halt
)";

class CoreFixture : public ::testing::Test
{
  protected:
    CoreFixture()
        : prog_(assemble(coreProgram)), analyzer_(prog_),
          wcet_(analyzer_, dvs_)
    {
    }

    Program prog_;
    WcetAnalyzer analyzer_;
    DvsTable dvs_;
    WcetTable wcet_;
};

// ---- DVS table ----

TEST(DvsTableTest, ThirtySevenXscalePoints)
{
    DvsTable dvs;
    ASSERT_EQ(dvs.settings().size(), 37u);
    EXPECT_EQ(dvs.minFreq(), 100u);
    EXPECT_EQ(dvs.maxFreq(), 1000u);
    EXPECT_DOUBLE_EQ(dvs.voltsAt(100), 0.70);
    EXPECT_DOUBLE_EQ(dvs.voltsAt(1000), 1.80);
    // ~0.03 V per 25 MHz step (paper §5.2).
    EXPECT_NEAR(dvs.voltsAt(125) - dvs.voltsAt(100), 0.0306, 1e-3);
}

TEST(DvsTableTest, CeilSettingAndMembership)
{
    DvsTable dvs;
    EXPECT_EQ(dvs.ceilSetting(101).freq, 125u);
    EXPECT_EQ(dvs.ceilSetting(1000).freq, 1000u);
    EXPECT_TRUE(dvs.isSetting(475));
    EXPECT_FALSE(dvs.isSetting(480));
    EXPECT_THROW(dvs.voltsAt(480), FatalError);
    EXPECT_THROW(dvs.ceilSetting(2000), FatalError);
}

TEST(DvsTableTest, FrequencyAdvantageMultiplier)
{
    DvsTable dvs15(1.5);
    EXPECT_EQ(dvs15.minFreq(), 150u);
    EXPECT_EQ(dvs15.maxFreq(), 1500u);
    // Same voltage ladder: 1.5x frequency at equal volts (Fig. 3).
    EXPECT_DOUBLE_EQ(dvs15.voltsAt(150), 0.70);
    EXPECT_DOUBLE_EQ(dvs15.voltsAt(1500), 1.80);
}

// ---- WCET table ----

TEST_F(CoreFixture, WcetTableCoversEverySetting)
{
    EXPECT_EQ(wcet_.numSubtasks(), 3);
    for (const auto &s : dvs_.settings()) {
        EXPECT_GT(wcet_.taskCycles(s.freq), 0u);
        Cycles sum = 0;
        for (int k = 0; k < 3; ++k)
            sum += wcet_.subtaskCycles(k, s.freq);
        EXPECT_EQ(sum, wcet_.taskCycles(s.freq));
    }
    EXPECT_THROW(wcet_.taskCycles(999), FatalError);
}

TEST_F(CoreFixture, WcetTimeMonotoneInFrequency)
{
    // Higher frequency -> shorter wall-clock WCET (more stall cycles,
    // but each cycle is shorter).
    double prev = 1e9;
    for (const auto &s : dvs_.settings()) {
        double t = wcet_.taskSeconds(s.freq);
        EXPECT_LT(t, prev);
        prev = t;
    }
}

TEST_F(CoreFixture, RemainingSecondsSuffixSums)
{
    double whole = wcet_.remainingSeconds(0, 500);
    EXPECT_NEAR(whole, wcet_.taskSeconds(500), 1e-12);
    EXPECT_NEAR(wcet_.remainingSeconds(2, 500),
                wcet_.subtaskSeconds(2, 500), 1e-12);
    EXPECT_LT(wcet_.remainingSeconds(1, 500), whole);
}

// ---- Checkpoints (EQ 1) ----

TEST_F(CoreFixture, CheckpointsFollowEquationOne)
{
    const double D = wcet_.taskSeconds(500) * 1.5;
    const double ovhd = 2e-7;
    CheckpointPlan plan = computeCheckpoints(wcet_, 500, 300, D, ovhd);
    ASSERT_EQ(plan.checkpoints.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(plan.checkpoints[static_cast<std::size_t>(i)],
                    D - ovhd - wcet_.remainingSeconds(i, 500), 1e-12);
    }
    // Monotone increasing.
    EXPECT_LT(plan.checkpoints[0], plan.checkpoints[1]);
    EXPECT_LT(plan.checkpoints[1], plan.checkpoints[2]);
}

TEST_F(CoreFixture, WatchdogIncrementsMatchCheckpointDeltas)
{
    const double D = wcet_.taskSeconds(500) * 1.5;
    CheckpointPlan plan = computeCheckpoints(wcet_, 500, 300, D, 2e-7);
    // increments[0] ~ cp1 * f; increments[i] ~ (cp_i+1 - cp_i) * f.
    EXPECT_EQ(plan.increments[0],
              static_cast<std::int64_t>(
                  std::floor(plan.checkpoints[0] * 300e6)));
    for (int i = 1; i < 3; ++i) {
        double delta = plan.checkpoints[static_cast<std::size_t>(i)] -
                       plan.checkpoints[static_cast<std::size_t>(i - 1)];
        EXPECT_EQ(plan.increments[static_cast<std::size_t>(i)],
                  static_cast<std::int64_t>(std::floor(delta * 300e6)));
    }
}

TEST_F(CoreFixture, ArmDelayShrinksFirstIncrementOnly)
{
    const double D = wcet_.taskSeconds(500) * 1.5;
    CheckpointPlan base = computeCheckpoints(wcet_, 500, 300, D, 2e-7);
    CheckpointPlan delayed =
        computeCheckpoints(wcet_, 500, 300, D, 2e-7, 1000);
    EXPECT_EQ(delayed.increments[0], base.increments[0] - 1000);
    EXPECT_EQ(delayed.increments[1], base.increments[1]);
}

TEST_F(CoreFixture, InfeasibleCheckpointRejected)
{
    // Deadline below the recovery-frequency WCET: checkpoint 1 < 0.
    double D = wcet_.taskSeconds(500) * 0.5;
    EXPECT_THROW(computeCheckpoints(wcet_, 500, 300, D, 2e-7),
                 FatalError);
}

// ---- Frequency speculation ----

TEST_F(CoreFixture, StaticFrequencyIsLowestSufficient)
{
    double D = wcet_.taskSeconds(475);
    MHz f = solveStaticFrequency(wcet_, dvs_, D);
    EXPECT_EQ(f, 475u);
    EXPECT_EQ(solveStaticFrequency(wcet_, dvs_, D * 0.01), 0u);
    EXPECT_EQ(solveStaticFrequency(wcet_, dvs_, 1.0), 100u);
}

TEST_F(CoreFixture, VisaSpeculationLowersFrequencyWithTightPets)
{
    PetEstimator pets(3, PetPolicy{});
    // Tight PETs: complex finishes each sub-task in a quarter of its
    // WCET cycles.
    std::vector<std::uint64_t> seed;
    for (int k = 0; k < 3; ++k)
        seed.push_back(wcet_.subtaskCycles(k, 1000) / 4);
    pets.seed(seed);

    double D = wcet_.taskSeconds(700);
    MHz fstatic = solveStaticFrequency(wcet_, dvs_, D);
    FreqPair pair = solveVisaSpeculation(wcet_, pets, dvs_, D, 2e-7);
    ASSERT_TRUE(pair.feasible);
    EXPECT_LT(pair.fSpec, fstatic);
    EXPECT_GE(pair.fRec, pair.fSpec);

    // EQ 4 must hold at the returned pair for every i.
    double pet_prefix = 0.0;
    for (int i = 0; i < 3; ++i) {
        pet_prefix += pets.petSeconds(i, pair.fSpec);
        EXPECT_LE(pet_prefix + 2e-7 +
                      wcet_.remainingSeconds(i, pair.fRec),
                  D + 1e-12);
    }
}

TEST_F(CoreFixture, SpeculationInfeasibleBelowMinimum)
{
    PetEstimator pets(3, PetPolicy{});
    std::vector<std::uint64_t> seed;
    for (int k = 0; k < 3; ++k)
        seed.push_back(wcet_.subtaskCycles(k, 1000));
    pets.seed(seed);
    FreqPair pair = solveVisaSpeculation(wcet_, pets, dvs_,
                                         wcet_.taskSeconds(1000) * 0.2,
                                         2e-7);
    EXPECT_FALSE(pair.feasible);
}

TEST_F(CoreFixture, OverheadCyclesRaiseTheSpeculativeFrequency)
{
    PetEstimator pets(3, PetPolicy{});
    std::vector<std::uint64_t> seed;
    for (int k = 0; k < 3; ++k)
        seed.push_back(wcet_.subtaskCycles(k, 1000) / 4);
    pets.seed(seed);
    double D = wcet_.taskSeconds(700);
    FreqPair cheap = solveVisaSpeculation(wcet_, pets, dvs_, D, 2e-7, 0);
    FreqPair costly =
        solveVisaSpeculation(wcet_, pets, dvs_, D, 2e-7, 2000);
    ASSERT_TRUE(cheap.feasible);
    ASSERT_TRUE(costly.feasible);
    EXPECT_GT(costly.fSpec, cheap.fSpec);
}

TEST_F(CoreFixture, ConventionalNeedsWcetHeadroomPerSubtask)
{
    PetEstimator pets(3, PetPolicy{});
    std::vector<std::uint64_t> seed;
    for (int k = 0; k < 3; ++k)
        seed.push_back(wcet_.subtaskCycles(k, 1000) / 4);
    pets.seed(seed);
    double D = wcet_.taskSeconds(700);
    FreqPair conv =
        solveConventionalSpeculation(wcet_, pets, dvs_, D, 2e-7);
    FreqPair vis = solveVisaSpeculation(wcet_, pets, dvs_, D, 2e-7);
    ASSERT_TRUE(conv.feasible);
    ASSERT_TRUE(vis.feasible);
    // EQ 2 charges WCET_i at f_spec for the mispredicted sub-task, so
    // it can never speculate lower than EQ 4.
    EXPECT_GE(conv.fSpec, vis.fSpec);
}

// ---- PET estimation ----

TEST(PetTest, LastNTakesWindowMaximum)
{
    PetEstimator pets(1, PetPolicy{PetPolicy::LastN, 5, 0.0, 64});
    for (std::uint64_t v : {100u, 300u, 200u})
        pets.record(0, v);
    pets.reevaluate();
    EXPECT_EQ(pets.petCycles(0), 300u);
    // Window slides: six larger-then-smaller samples push 300 out.
    for (std::uint64_t v : {50u, 60u, 70u, 80u, 90u})
        pets.record(0, v);
    pets.reevaluate();
    EXPECT_EQ(pets.petCycles(0), 90u);
}

TEST(PetTest, HistogramTargetsMissRate)
{
    PetPolicy pol;
    pol.kind = PetPolicy::Histogram;
    pol.window = 10;
    pol.bucketCycles = 1;
    pol.targetMissRate = 0.0;
    PetEstimator zero(1, pol);
    pol.targetMissRate = 0.2;
    PetEstimator twenty(1, pol);
    for (std::uint64_t v = 1; v <= 10; ++v) {
        zero.record(0, v * 100);
        twenty.record(0, v * 100);
    }
    zero.reevaluate();
    twenty.reevaluate();
    // 0% target covers the maximum; 20% may leave the top two samples
    // above the PET.
    EXPECT_EQ(zero.petCycles(0), 1000u);
    EXPECT_EQ(twenty.petCycles(0), 800u);
}

TEST(PetTest, UnrecordedSubtaskKeepsSeed)
{
    PetEstimator pets(2, PetPolicy{});
    pets.seed({111, 222});
    pets.record(0, 50);
    pets.reevaluate();
    EXPECT_EQ(pets.petCycles(0), 50u);
    EXPECT_EQ(pets.petCycles(1), 222u);
}

TEST(PetTest, InvalidConfigsRejected)
{
    EXPECT_THROW(PetEstimator(0, PetPolicy{}), FatalError);
    PetPolicy bad;
    bad.window = 0;
    EXPECT_THROW(PetEstimator(1, bad), FatalError);
    PetEstimator p(2, PetPolicy{});
    EXPECT_THROW(p.seed({1}), FatalError);
}

// ---- Schedulability ----

TEST(SchedulabilityTest, LiuLaylandBound)
{
    EXPECT_DOUBLE_EQ(rmUtilizationBound(1), 1.0);
    EXPECT_NEAR(rmUtilizationBound(2), 0.8284, 1e-3);
    EXPECT_NEAR(rmUtilizationBound(3), 0.7798, 1e-3);
}

TEST(SchedulabilityTest, RmBoundTest)
{
    std::vector<PeriodicTask> ok = {{1.0, 4.0}, {1.0, 5.0}, {1.0, 10.0}};
    EXPECT_TRUE(rmSchedulableByBound(ok));
    std::vector<PeriodicTask> heavy = {{2.0, 4.0}, {2.0, 5.0}};
    EXPECT_FALSE(rmSchedulableByBound(heavy));    // U = 0.9 > 0.828
}

TEST(SchedulabilityTest, ResponseTimeAnalysisBeatsTheBound)
{
    // Harmonic periods: schedulable up to U = 1 even though the
    // utilization bound fails.
    std::vector<PeriodicTask> harmonic = {{2.0, 4.0}, {4.0, 8.0}};
    EXPECT_FALSE(rmSchedulableByBound(harmonic));    // U = 1.0
    EXPECT_TRUE(rmResponseTimeFeasible(harmonic));
    std::vector<PeriodicTask> infeasible = {{2.0, 4.0}, {5.0, 8.0}};
    EXPECT_FALSE(rmResponseTimeFeasible(infeasible));
}

TEST(SchedulabilityTest, EdfUtilizationTest)
{
    std::vector<PeriodicTask> full = {{2.0, 4.0}, {4.0, 8.0}};
    EXPECT_TRUE(edfSchedulable(full));
    std::vector<PeriodicTask> over = {{3.0, 4.0}, {3.0, 8.0}};
    EXPECT_FALSE(edfSchedulable(over));
    EXPECT_THROW(utilization({{1.0, 0.0}}), FatalError);
}

} // anonymous namespace
} // namespace visa
