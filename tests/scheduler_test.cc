/**
 * @file
 * Preemptive multi-task scheduler tests (core/scheduler.hh): the
 * multi-task safety composition — per-task deadline guarantees under
 * EDF and rate-monotonic dispatching, watchdog isolation (one task's
 * forced recoveries never consume another task's slack), deterministic
 * tie-breaking, and the admission control that refuses infeasible
 * sets. Task definitions come from the same analyzed-benchmark path
 * the tools use (bench/bench_util.hh).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bench/bench_util.hh"
#include "core/scheduler.hh"
#include "workloads/tasksets.hh"

namespace visa
{
namespace
{

using bench::makeTaskSetDefs;

std::vector<SchedTaskDef>
trioDefs(double util)
{
    return makeTaskSetDefs(parseTaskSet("trio"), util);
}

/**
 * The trio's workloads with all period scales at 1, so @p util is the
 * set's actual utilization (the named set's staggered scales dilute
 * it); high values make preemption certain.
 */
std::vector<SchedTaskDef>
flatTrioDefs(double util)
{
    const std::vector<TaskSetMemberSpec> members = {
        {"cnt", 1.0}, {"mm", 1.0}, {"srt", 1.0}};
    return makeTaskSetDefs(members, util);
}

void
addAll(MultiTaskScheduler &sched, const std::vector<SchedTaskDef> &defs)
{
    for (const SchedTaskDef &d : defs)
        sched.addTask(d);
}

/**
 * Phase the longest-running member (mm) so its execution straddles
 * cnt's next release: cnt re-releases with an earlier absolute
 * deadline while mm is mid-job, so EDF must preempt. (Admissible sets
 * spend far less than their WCET budgets, so without phasing, jobs of
 * these short benchmarks rarely overlap.)
 */
std::vector<SchedTaskDef>
preemptingTrioDefs(double util)
{
    std::vector<SchedTaskDef> defs = flatTrioDefs(util);
    defs[1].phaseSeconds = 0.9 * defs[0].periodSeconds;
    return defs;
}

TEST(Scheduler, ThreeTaskEdfMeetsEveryDeadlineWithPreemptions)
{
    // High enough utilization that jobs overlap and EDF must preempt.
    MultiTaskScheduler sched;
    addAll(sched, preemptingTrioDefs(0.9));
    ASSERT_EQ(sched.admissionError(), "");

    const ScheduleOutcome out = sched.run(12);
    EXPECT_EQ(out.deadlineMisses, 0);
    EXPECT_GT(out.preemptions, 0);
    EXPECT_EQ(out.jobs, 3 * 12);
    for (int t = 0; t < sched.numTasks(); ++t) {
        const SchedTaskStats &st = sched.taskStats(t);
        EXPECT_EQ(st.jobs, 12) << "task " << t;
        EXPECT_EQ(st.deadlineMisses, 0) << "task " << t;
        EXPECT_EQ(st.badChecksums, 0) << "task " << t;
        EXPECT_GE(st.minSlackSeconds, 0.0) << "task " << t;
    }
}

TEST(Scheduler, ForcedExpiryOfAnyOneTaskIsIsolated)
{
    // The acceptance scenario: force watchdog expiries in each task of
    // the trio in turn; every task's deadlines must still hold, and
    // the recoveries must stay confined to the victim.
    for (int victim = 0; victim < 3; ++victim) {
        std::vector<SchedTaskDef> defs = trioDefs(0.85);
        defs[static_cast<std::size_t>(victim)].forceMissEvery = 2;

        MultiTaskScheduler sched;
        addAll(sched, defs);
        ASSERT_EQ(sched.admissionError(), "") << "victim " << victim;

        const ScheduleOutcome out = sched.run(8);
        EXPECT_EQ(out.deadlineMisses, 0) << "victim " << victim;
        for (int t = 0; t < sched.numTasks(); ++t) {
            const SchedTaskStats &st = sched.taskStats(t);
            EXPECT_EQ(st.deadlineMisses, 0)
                << "victim " << victim << " task " << t;
            EXPECT_EQ(st.badChecksums, 0)
                << "victim " << victim << " task " << t;
            if (t == victim)
                EXPECT_GT(st.checkpointMisses, 0) << "victim " << victim;
            else
                EXPECT_EQ(st.checkpointMisses, 0)
                    << "victim " << victim << " task " << t;
        }
    }
}

TEST(Scheduler, RecoveringTaskAlsoSurvivesPreemption)
{
    // A task that both recovers from forced expiries and gets
    // preempted in the same schedule: the watchdog freezes across
    // preemption, so recovery + preemption compose safely.
    std::vector<SchedTaskDef> defs = preemptingTrioDefs(0.9);
    defs[0].forceMissEvery = 1;    // every job of task 0 recovers

    MultiTaskScheduler sched;
    addAll(sched, defs);
    ASSERT_EQ(sched.admissionError(), "");

    const ScheduleOutcome out = sched.run(10);
    EXPECT_EQ(out.deadlineMisses, 0);
    const SchedTaskStats &victim = sched.taskStats(0);
    EXPECT_EQ(victim.checkpointMisses, 10);
    EXPECT_EQ(victim.deadlineMisses, 0);
    EXPECT_EQ(victim.badChecksums, 0);
    // The schedule must actually interleave: some job of some task was
    // preempted while the victim kept recovering.
    EXPECT_GT(out.preemptions, 0);
}

TEST(Scheduler, EdfTieBreaksByTaskIndexDeterministically)
{
    // Two identical tasks release simultaneously with equal absolute
    // deadlines at every job: the tie must always go to the lower
    // index, so task 0's k-th job completes before task 1's.
    const std::vector<TaskSetMemberSpec> twins = {{"cnt", 1.0},
                                                  {"cnt", 1.0}};
    MultiTaskScheduler sched;
    addAll(sched, makeTaskSetDefs(twins, 0.8));
    ASSERT_EQ(sched.admissionError(), "");

    const ScheduleOutcome out = sched.run(6);
    EXPECT_EQ(out.deadlineMisses, 0);

    double completion[2][6] = {};
    for (const JobRecord &j : sched.jobs())
        completion[j.task][j.job] = j.completionSeconds;
    for (int k = 0; k < 6; ++k)
        EXPECT_LT(completion[0][k], completion[1][k]) << "job " << k;
}

TEST(Scheduler, ScheduleIsReproducible)
{
    // Same defs, two independent schedulers: byte-identical job
    // records (dispatch order, completions, preemption counts).
    auto runOnce = [] {
        MultiTaskScheduler sched;
        addAll(sched, trioDefs(0.85));
        sched.run(8);
        std::ostringstream ss;
        for (const JobRecord &j : sched.jobs())
            ss << j.task << ':' << j.job << ':' << j.preemptions << ':'
               << j.completionSeconds << '\n';
        return ss.str();
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(Scheduler, RateMonotonicPolicyAlsoMeetsDeadlines)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RateMonotonic;
    MultiTaskScheduler sched(cfg);
    // RM's feasible region is smaller than EDF's: use moderate load.
    addAll(sched, trioDefs(0.6));
    ASSERT_EQ(sched.admissionError(), "");

    const ScheduleOutcome out = sched.run(8);
    EXPECT_EQ(out.deadlineMisses, 0);
    EXPECT_EQ(out.checkpointMisses, 0);
}

TEST(Scheduler, MaxRequestGovernorStaysSafe)
{
    // Running any task at (at least) its requested operating point is
    // deadline- and watchdog-safe; the max-request governor must not
    // introduce misses.
    SchedulerConfig cfg;
    cfg.governor = GovernorPolicy::MaxRequest;
    MultiTaskScheduler sched(cfg);
    addAll(sched, trioDefs(0.85));
    ASSERT_EQ(sched.admissionError(), "");

    const ScheduleOutcome out = sched.run(8);
    EXPECT_EQ(out.deadlineMisses, 0);
    for (int t = 0; t < sched.numTasks(); ++t)
        EXPECT_EQ(sched.taskStats(t).badChecksums, 0);
}

TEST(Scheduler, AdmissionRejectsOverload)
{
    // Utilization target far above 1: periods shrink below the
    // execution budgets, and admission must name the offender rather
    // than let run() miss deadlines.
    MultiTaskScheduler sched;
    addAll(sched, trioDefs(1.5));
    const std::string err = sched.admissionError();
    EXPECT_NE(err, "");

    // And near the boundary, the switch-overhead inflation and the
    // margin still reject a set whose true utilization is 0.995.
    MultiTaskScheduler tight;
    addAll(tight, flatTrioDefs(0.995));
    EXPECT_NE(tight.admissionError(), "");
}

TEST(Scheduler, StatsGroupsExportPerTaskCounters)
{
    MultiTaskScheduler sched;
    addAll(sched, trioDefs(0.85));
    ASSERT_EQ(sched.admissionError(), "");
    sched.run(4);

    StatSet set;
    sched.buildStats(set);
    std::ostringstream json;
    set.dumpJson(json);
    // Dotted group names nest: "sched.task0" exports as "task0"
    // inside the "sched" object.
    const std::string text = json.str();
    EXPECT_NE(text.find("\"sched\""), std::string::npos);
    EXPECT_NE(text.find("\"task0\""), std::string::npos);
    EXPECT_NE(text.find("\"task2\""), std::string::npos);
}

} // anonymous namespace
} // namespace visa
