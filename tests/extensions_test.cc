/**
 * @file
 * Tests for the forward-looking extensions the paper sketches:
 * conventional concurrency in the slack (§1.1) and parameterized WCET
 * metadata for timing-safe binary compatibility (§1.2).
 */

#include <gtest/gtest.h>

#include "core/concurrency.hh"
#include "core/wcet_binary.hh"
#include "isa/assembler.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

// ---- Conventional concurrency (§1.1) ----

const char *backgroundSource = R"(
        addi r4, r0, 500
bg:     add  r5, r5, r4
        subi r4, r4, 1
        .loopbound 500
        bgtz r4, bg
        halt
)";

struct ConcurrencyStack
{
    ConcurrencyStack()
        : wl(makeWorkload("cnt")), analyzer(wl.program),
          dmiss(profileDataMisses(wl.program)),
          wcet(analyzer, dvs, &dmiss), bg(assemble(backgroundSource))
    {
        mem.loadProgram(wl.program);
    }

    Workload wl;
    WcetAnalyzer analyzer;
    DMissProfile dmiss;
    DvsTable dvs;
    WcetTable wcet;
    Program bg;
    MainMemory mem;
    Platform platform;
    MemController memctrl;
};

TEST(SlackScheduler, BackgroundWorkRunsInTheSlack)
{
    ConcurrencyStack s;
    OooCpu cpu(s.wl.program, s.mem, s.platform, s.memctrl);
    RuntimeConfig cfg;
    cfg.deadlineSeconds = s.wcet.taskSeconds(600);
    cfg.ovhdSeconds = 2e-6;
    VisaComplexRuntime rt(cpu, s.wl.program, s.mem, s.wcet, s.dvs, cfg);
    rt.pets().seed(profileComplexAets(s.wl.program, s.wl.numSubtasks));

    SlackScheduler sched(rt, s.bg, s.dvs);
    for (int p = 0; p < 12; ++p) {
        TaskStats ts = sched.runPeriod();
        ASSERT_TRUE(ts.deadlineMet) << "period " << p;
        EXPECT_EQ(ts.checksum, s.wl.expectedChecksum);
    }
    // The hard task is untouched and the background task made real
    // progress, completing several times over.
    EXPECT_GT(sched.background().instructionsRetired, 10000u);
    EXPECT_GT(sched.background().completions, 2);
    EXPECT_GT(sched.background().slackSeconds, 0.0);
}

TEST(SlackScheduler, FasterProcessorYieldsMoreBackgroundThroughput)
{
    // The paper's point: the complex pipeline's earlier completions
    // buy more slack than the explicitly-safe pipeline's.
    ConcurrencyStack sc;
    OooCpu ooo(sc.wl.program, sc.mem, sc.platform, sc.memctrl);
    RuntimeConfig cfg;
    cfg.deadlineSeconds = sc.wcet.taskSeconds(600);
    cfg.ovhdSeconds = 2e-6;
    VisaComplexRuntime crt(ooo, sc.wl.program, sc.mem, sc.wcet, sc.dvs,
                           cfg);
    crt.pets().seed(profileComplexAets(sc.wl.program, sc.wl.numSubtasks));
    // Pin the complex processor to the top frequency: here slack is
    // harvested for throughput rather than for DVS (§1.1 lists these
    // as alternative uses).
    SlackScheduler csched(crt, sc.bg, sc.dvs);

    ConcurrencyStack ss;
    SimpleCpu simple(ss.wl.program, ss.mem, ss.platform, ss.memctrl);
    RuntimeConfig scfg;
    scfg.deadlineSeconds = ss.wcet.taskSeconds(600);
    scfg.ovhdSeconds = 2e-6;
    SimpleFixedRuntime srt(simple, ss.wl.program, ss.mem, ss.wcet,
                           ss.dvs, scfg);
    SlackScheduler ssched(srt, ss.bg, ss.dvs);

    for (int p = 0; p < 10; ++p) {
        csched.runPeriod();
        ssched.runPeriod();
    }
    EXPECT_GT(csched.background().slackSeconds,
              ssched.background().slackSeconds);
}

// ---- Parameterized WCET (§1.2) ----

class ParamWcetTest : public ::testing::Test
{
  protected:
    ParamWcetTest()
        : wl_(makeWorkload("cnt")), analyzer_(wl_.program),
          dmiss_(profileDataMisses(wl_.program)),
          param_(ParameterizedWcet::fit(analyzer_, dvs_, &dmiss_))
    {
    }

    Workload wl_;
    WcetAnalyzer analyzer_;
    DvsTable dvs_;
    DMissProfile dmiss_;
    ParameterizedWcet param_;
};

TEST_F(ParamWcetTest, DominatesTheAnalyzerAtEverySetting)
{
    for (const auto &s : dvs_.settings()) {
        WcetReport rep = analyzer_.analyze(s.freq, &dmiss_);
        EXPECT_GE(param_.taskCycles(s.freq, 100.0), rep.taskCycles)
            << s.freq;
        for (int k = 0; k < param_.numSubtasks(); ++k) {
            EXPECT_GE(param_.subtaskCycles(k, s.freq, 100.0),
                      rep.subtaskCycles[static_cast<std::size_t>(k)]);
        }
    }
}

TEST_F(ParamWcetTest, StaysReasonablyTight)
{
    WcetReport rep = analyzer_.analyze(1000, &dmiss_);
    EXPECT_LE(param_.taskCycles(1000, 100.0),
              rep.taskCycles + rep.taskCycles / 10);
}

TEST_F(ParamWcetTest, SlowerMemoryRaisesTheBound)
{
    Cycles native = param_.taskCycles(1000, 100.0);
    Cycles slow = param_.taskCycles(1000, 150.0);
    Cycles fast = param_.taskCycles(1000, 60.0);
    EXPECT_GT(slow, native);
    EXPECT_LT(fast, native);
}

TEST_F(ParamWcetTest, SerializationRoundTrips)
{
    std::string blob = param_.serialize();
    EXPECT_NE(blob.find("VISAWCET 1"), std::string::npos);
    ParameterizedWcet back = ParameterizedWcet::deserialize(blob);
    EXPECT_EQ(back.numSubtasks(), param_.numSubtasks());
    for (MHz f : {100u, 500u, 1000u})
        EXPECT_EQ(back.taskCycles(f, 100.0),
                  param_.taskCycles(f, 100.0));
}

TEST_F(ParamWcetTest, MalformedBlobsRejected)
{
    EXPECT_THROW(ParameterizedWcet::deserialize("garbage"), FatalError);
    EXPECT_THROW(ParameterizedWcet::deserialize("VISAWCET 2\n"),
                 FatalError);
    EXPECT_THROW(ParameterizedWcet::deserialize(
                     "VISAWCET 1\nmemns 100\nsubtasks 3\n1 2\n"),
                 FatalError);
}

TEST_F(ParamWcetTest, SafeOnADifferentVisaCompliantSystem)
{
    // The §1.2 scenario: the binary (with its appended WCET section)
    // moves to another VISA-compliant system whose memory is slower.
    // Instantiating the bound with that system's worst-case memory
    // latency must still cover execution on it.
    std::string shipped = param_.serialize();
    ParameterizedWcet on_target = ParameterizedWcet::deserialize(shipped);

    const double target_mem_ns = 140.0;
    MainMemory mem;
    Platform platform;
    MemController memctrl({target_mem_ns, 30.0, 8});
    mem.loadProgram(wl_.program);
    SimpleCpu cpu(wl_.program, mem, platform, memctrl);
    cpu.resetForTask();
    cpu.setFrequency(750);
    auto res = cpu.run(2'000'000'000ULL);
    ASSERT_EQ(res.reason, StopReason::Halted);
    EXPECT_GE(on_target.taskCycles(750, target_mem_ns), cpu.cycles());
}

} // anonymous namespace
} // namespace visa
