# Performance gate: run the bench-report micro benchmarks and campaign
# phases, then compare the load-bearing metrics against the checked-in
# baseline (-DBASELINE, currently BENCH_PR10.json). The gate fails when
# a metric is more than 25% worse than baseline:
#   - OooCpuRun    ns_per_op  (lower is better)
#   - SimpleCpuRun ns_per_op  (lower is better)
#   - visa_campaign sim_mips  (higher is better)
#   - chip_campaign_c4 sim_mips (higher is better; the 4-core chip
#     model sweep — skipped against baselines predating the phase)
#   - chip_parallel_speedup speedup (higher is better; serial vs
#     threaded wall clock of the widest chip campaign — skipped
#     against baselines predating the phase)
#
# math(EXPR) has no floating point, so values compare as milli-unit
# integers (45.559 -> 45559); the "1${frac} - 1000" dance below keeps
# fraction digits with leading zeros ("057") from being parsed as
# octal.
#
# Wall-clock noise on a loaded host can exceed the margins (the bench
# phases are tens of milliseconds, and scheduler/cache interference is
# strictly one-sided — it only ever makes a run *slower*), so the gate
# keeps the best value seen for each metric across up to 5 attempts and
# judges those: each metric independently needs one quiet sample, rather
# than every metric being quiet in the same attempt. The ctest entry is
# RUN_SERIAL so sibling tests do not add contention of our own making.
#
# The report carries host metadata ("host": cpu_model/cores/...). When
# the current host differs from the baseline's recorded host, every
# gate downgrades to a warning: a throughput number recorded on another
# machine bounds nothing on this one. Baselines predating the host
# field gate normally.
#
# The same reasoning covers ambient load: when /proc/loadavg already
# exceeds the core count before the gate's first attempt, the machine
# is contended by work we neither own nor can serialize against, and a
# persisting failure downgrades to a warning rather than flaking the
# suite. A calm start gates normally.
#
# Inputs: -DBENCH_REPORT=<exe> -DBASELINE=<BENCH_PR*.json> -DWORK_DIR=<dir>
#         [-DPROF_BASELINE=<BENCH_PR*.json>]
#         [-DINJECT_BASELINE=<BENCH_PR*.json>]
#
# PROF_BASELINE adds the profiling-overhead gate: the block-profiling
# hooks are always compiled in (sim/prof), so ExecCoreStep with no
# profiler installed must stay within 2% of the pre-profiling baseline
# — the disabled path must be a dead branch, not a tax.
#
# INJECT_BASELINE adds the injection-overhead gate, same idea for the
# fault-injection hooks (cpu/fault_port.hh): OooCpuRun with no fault
# port installed must stay within 2% of the pre-injection baseline.
#
# A 2% margin is far below this host's run-to-run wall-clock noise
# (absolute ns/op swings 5-10% with background load), so both overhead
# gates compare RATIOS against a hook-free control benchmark from the
# same report rather than absolute ns/op: ExecCoreStep/MemoryRead for
# profiling and OooCpuRun/SimpleCpuRun for injection (SimpleCpu never
# sees a FaultPort). Host slowdown hits numerator and denominator of
# one report together and cancels; measured spread of the ratios is
# well under 1% across load regimes where the absolutes move 10%.

foreach(var BENCH_REPORT BASELINE WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_gate: -D${var}=... is required")
    endif()
endforeach()

# Decimal string -> milli-unit integer ("45.559" -> 45559, "17" -> 17000).
function(to_milli value out)
    if(value MATCHES "^([0-9]+)\\.([0-9]+)$")
        set(int_part ${CMAKE_MATCH_1})
        string(SUBSTRING "${CMAKE_MATCH_2}000" 0 3 frac)
        math(EXPR milli "${int_part} * 1000 + 1${frac} - 1000")
    elseif(value MATCHES "^[0-9]+$")
        math(EXPR milli "${value} * 1000")
    else()
        message(FATAL_ERROR "bench_gate: unparseable metric value '${value}'")
    endif()
    set(${out} ${milli} PARENT_SCOPE)
endfunction()

# Fetch <key> of the entry named <name> in the JSON array <section>.
function(bench_metric json section name key out)
    string(JSON n LENGTH "${json}" ${section})
    math(EXPR last "${n} - 1")
    foreach(i RANGE ${last})
        string(JSON nm GET "${json}" ${section} ${i} name)
        if(nm STREQUAL name)
            string(JSON v GET "${json}" ${section} ${i} ${key})
            set(${out} ${v} PARENT_SCOPE)
            return()
        endif()
    endforeach()
    message(FATAL_ERROR "bench_gate: '${name}' not found in ${section}")
endfunction()

# Like bench_metric, but sets <out> to "" when the entry is absent
# (baselines predating a phase skip that phase's gate).
function(bench_metric_optional json section name key out)
    set(${out} "" PARENT_SCOPE)
    string(JSON n LENGTH "${json}" ${section})
    math(EXPR last "${n} - 1")
    foreach(i RANGE ${last})
        string(JSON nm GET "${json}" ${section} ${i} name)
        if(nm STREQUAL name)
            string(JSON v GET "${json}" ${section} ${i} ${key})
            set(${out} ${v} PARENT_SCOPE)
            return()
        endif()
    endforeach()
endfunction()

file(READ ${BASELINE} base_json)
bench_metric("${base_json}" benchmarks OooCpuRun ns_per_op base_ooo)
bench_metric("${base_json}" benchmarks SimpleCpuRun ns_per_op base_simple)
bench_metric("${base_json}" campaign_phases visa_campaign sim_mips base_mips)
bench_metric_optional("${base_json}" campaign_phases chip_campaign_c4
    sim_mips base_chip)
# Parallel chip-execution speedup (higher is better). Gated relative to
# the baseline rather than against an absolute bar: the achievable
# ratio is a property of the recording host (a single-CPU container
# tops out near 1.0x; a 4-way host near 4x), and the host-mismatch
# downgrade below already covers cross-machine comparisons.
bench_metric_optional("${base_json}" campaign_phases chip_parallel_speedup
    speedup base_spd)
to_milli(${base_ooo} base_ooo_m)
to_milli(${base_simple} base_simple_m)
to_milli(${base_mips} base_mips_m)
if(NOT base_chip STREQUAL "")
    to_milli(${base_chip} base_chip_m)
endif()
if(NOT base_spd STREQUAL "")
    to_milli(${base_spd} base_spd_m)
endif()

if(DEFINED PROF_BASELINE)
    file(READ ${PROF_BASELINE} prof_base_json)
    bench_metric("${prof_base_json}" benchmarks ExecCoreStep ns_per_op
        base_step)
    bench_metric("${prof_base_json}" benchmarks MemoryRead ns_per_op
        base_mr)
    to_milli(${base_step} base_step_m)
    to_milli(${base_mr} base_mr_m)
endif()

if(DEFINED INJECT_BASELINE)
    file(READ ${INJECT_BASELINE} inject_base_json)
    bench_metric("${inject_base_json}" benchmarks OooCpuRun ns_per_op
        base_inj_ooo)
    bench_metric("${inject_base_json}" benchmarks SimpleCpuRun ns_per_op
        base_inj_simple)
    to_milli(${base_inj_ooo} base_inj_ooo_m)
    to_milli(${base_inj_simple} base_inj_simple_m)
endif()

# "<cpu_model>/<cores>" of a report's host object, or "" if absent.
function(host_id json out)
    string(JSON host ERROR_VARIABLE err GET "${json}" host)
    if(err)
        set(${out} "" PARENT_SCOPE)
        return()
    endif()
    string(JSON model GET "${host}" cpu_model)
    string(JSON cores GET "${host}" cores)
    set(${out} "${model}/${cores}" PARENT_SCOPE)
endfunction()

host_id("${base_json}" base_host)

# Ambient load before the first attempt (the gate itself has not run
# yet, so this is pure foreign contention). Empty when unreadable.
set(ambient_load "")
if(EXISTS "/proc/loadavg")
    file(READ "/proc/loadavg" loadavg_text)
    string(REGEX MATCH "^[0-9]+\\.[0-9]+" ambient_load "${loadavg_text}")
endif()
include(ProcessorCount)
ProcessorCount(ncores)
if(ncores EQUAL 0)
    set(ncores 1)
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
foreach(attempt RANGE 1 5)
    execute_process(
        COMMAND ${BENCH_REPORT} -o ${WORK_DIR}/bench_gate.json
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "bench_gate: bench-report exited with ${rc}")
    endif()
    file(READ ${WORK_DIR}/bench_gate.json cur_json)
    bench_metric("${cur_json}" benchmarks OooCpuRun ns_per_op cur_ooo)
    bench_metric("${cur_json}" benchmarks SimpleCpuRun ns_per_op cur_simple)
    bench_metric("${cur_json}" campaign_phases visa_campaign sim_mips cur_mips)
    to_milli(${cur_ooo} cur_ooo_m)
    to_milli(${cur_simple} cur_simple_m)
    to_milli(${cur_mips} cur_mips_m)
    if(NOT base_chip STREQUAL "")
        bench_metric("${cur_json}" campaign_phases chip_campaign_c4
            sim_mips cur_chip)
        to_milli(${cur_chip} cur_chip_m)
    endif()
    if(NOT base_spd STREQUAL "")
        bench_metric("${cur_json}" campaign_phases chip_parallel_speedup
            speedup cur_spd)
        to_milli(${cur_spd} cur_spd_m)
    endif()

    host_id("${cur_json}" cur_host)
    set(host_mismatch FALSE)
    if(NOT base_host STREQUAL "" AND NOT cur_host STREQUAL base_host)
        set(host_mismatch TRUE)
    endif()

    # Fold this attempt into the per-metric best-so-far (noise only
    # inflates ns/op and deflates MIPS, so best = least-noisy sample).
    if(attempt EQUAL 1 OR cur_ooo_m LESS best_ooo_m)
        set(best_ooo_m ${cur_ooo_m})
        set(best_ooo ${cur_ooo})
    endif()
    if(attempt EQUAL 1 OR cur_simple_m LESS best_simple_m)
        set(best_simple_m ${cur_simple_m})
        set(best_simple ${cur_simple})
    endif()
    if(attempt EQUAL 1 OR cur_mips_m GREATER best_mips_m)
        set(best_mips_m ${cur_mips_m})
        set(best_mips ${cur_mips})
    endif()
    if(NOT base_chip STREQUAL "")
        if(attempt EQUAL 1 OR cur_chip_m GREATER best_chip_m)
            set(best_chip_m ${cur_chip_m})
            set(best_chip ${cur_chip})
        endif()
    endif()
    if(NOT base_spd STREQUAL "")
        if(attempt EQUAL 1 OR cur_spd_m GREATER best_spd_m)
            set(best_spd_m ${cur_spd_m})
            set(best_spd ${cur_spd})
        endif()
    endif()
    # The overhead gates track the best *paired* ratio: numerator and
    # denominator must come from the same attempt for host noise to
    # cancel, so the fold keeps the pair, not two independent minima.
    # ratio(cur) < ratio(best)  <=>  cur_num * best_den < best_num * cur_den.
    if(DEFINED PROF_BASELINE)
        bench_metric("${cur_json}" benchmarks ExecCoreStep ns_per_op
            cur_step)
        bench_metric("${cur_json}" benchmarks MemoryRead ns_per_op cur_mr)
        to_milli(${cur_step} cur_step_m)
        to_milli(${cur_mr} cur_mr_m)
        set(take FALSE)
        if(attempt EQUAL 1)
            set(take TRUE)
        else()
            math(EXPR lhs "${cur_step_m} * ${best_prof_mr_m}")
            math(EXPR rhs "${best_prof_step_m} * ${cur_mr_m}")
            if(lhs LESS rhs)
                set(take TRUE)
            endif()
        endif()
        if(take)
            set(best_prof_step_m ${cur_step_m})
            set(best_prof_mr_m ${cur_mr_m})
            set(best_prof_step ${cur_step})
            set(best_prof_mr ${cur_mr})
        endif()
    endif()
    if(DEFINED INJECT_BASELINE)
        set(take FALSE)
        if(attempt EQUAL 1)
            set(take TRUE)
        else()
            math(EXPR lhs "${cur_ooo_m} * ${best_inj_simple_m}")
            math(EXPR rhs "${best_inj_ooo_m} * ${cur_simple_m}")
            if(lhs LESS rhs)
                set(take TRUE)
            endif()
        endif()
        if(take)
            set(best_inj_ooo_m ${cur_ooo_m})
            set(best_inj_simple_m ${cur_simple_m})
            set(best_inj_ooo ${cur_ooo})
            set(best_inj_simple ${cur_simple})
        endif()
    endif()

    set(failures "")
    # Lower-is-better: fail when best > 1.25 * base.
    math(EXPR lhs "${best_ooo_m} * 100")
    math(EXPR rhs "${base_ooo_m} * 125")
    if(lhs GREATER rhs)
        string(APPEND failures
            " OooCpuRun ${best_ooo} ns/op vs baseline ${base_ooo};")
    endif()
    math(EXPR lhs "${best_simple_m} * 100")
    math(EXPR rhs "${base_simple_m} * 125")
    if(lhs GREATER rhs)
        string(APPEND failures
            " SimpleCpuRun ${best_simple} ns/op vs baseline ${base_simple};")
    endif()
    # Higher-is-better: fail when best < 0.75 * base.
    math(EXPR lhs "${best_mips_m} * 100")
    math(EXPR rhs "${base_mips_m} * 75")
    if(lhs LESS rhs)
        string(APPEND failures
            " visa_campaign ${best_mips} sim-MIPS vs baseline ${base_mips};")
    endif()
    if(NOT base_chip STREQUAL "")
        math(EXPR lhs "${best_chip_m} * 100")
        math(EXPR rhs "${base_chip_m} * 75")
        if(lhs LESS rhs)
            string(APPEND failures
                " chip_campaign_c4 ${best_chip} sim-MIPS vs baseline"
                " ${base_chip};")
        endif()
    endif()
    if(NOT base_spd STREQUAL "")
        math(EXPR lhs "${best_spd_m} * 100")
        math(EXPR rhs "${base_spd_m} * 75")
        if(lhs LESS rhs)
            string(APPEND failures
                " chip_parallel_speedup ${best_spd}x vs baseline"
                " ${base_spd}x;")
        endif()
    endif()
    # Profiling-off overhead: ExecCoreStep/MemoryRead within 2% of the
    # same ratio in the pre-profiling baseline (the hooks compile in
    # unconditionally; the uninstalled path must cost nothing).
    # best_step/best_mr > 1.02 * base_step/base_mr, cross-multiplied.
    if(DEFINED PROF_BASELINE)
        math(EXPR lhs "${best_prof_step_m} * ${base_mr_m} * 100")
        math(EXPR rhs "${base_step_m} * ${best_prof_mr_m} * 102")
        if(lhs GREATER rhs)
            string(APPEND failures
                " ExecCoreStep/MemoryRead ${best_prof_step}/${best_prof_mr}"
                " ns/op vs pre-profiling baseline ${base_step}/${base_mr}"
                " (>2% profiling-off overhead);")
        endif()
    endif()

    # Injection-off overhead: OooCpuRun/SimpleCpuRun within 2% of the
    # same ratio in the pre-injection baseline (the FaultPort hooks
    # compile in unconditionally; with no port installed they must cost
    # nothing, and SimpleCpu never sees a port).
    if(DEFINED INJECT_BASELINE)
        math(EXPR lhs "${best_inj_ooo_m} * ${base_inj_simple_m} * 100")
        math(EXPR rhs "${base_inj_ooo_m} * ${best_inj_simple_m} * 102")
        if(lhs GREATER rhs)
            string(APPEND failures
                " OooCpuRun/SimpleCpuRun ${best_inj_ooo}/${best_inj_simple}"
                " ns/op vs pre-injection baseline"
                " ${base_inj_ooo}/${base_inj_simple}"
                " (>2% injection-off overhead);")
        endif()
    endif()

    if(failures STREQUAL "")
        message(STATUS
            "bench_gate pass (attempt ${attempt}): OooCpuRun ${best_ooo} "
            "(base ${base_ooo}), SimpleCpuRun ${best_simple} "
            "(base ${base_simple}), visa_campaign ${best_mips} sim-MIPS "
            "(base ${base_mips})")
        return()
    endif()
    message(STATUS
        "bench_gate attempt ${attempt}/5, best still over margin:${failures}")
endforeach()

if(host_mismatch)
    message(WARNING
        "bench_gate: regression over margin, but this host "
        "('${cur_host}') differs from the baseline's ('${base_host}') "
        "— numbers are not comparable, downgrading to a warning:"
        "${failures}")
    return()
endif()

if(NOT ambient_load STREQUAL "")
    to_milli(${ambient_load} load_m)
    math(EXPR load_limit "${ncores} * 1000")
    if(load_m GREATER load_limit)
        message(WARNING
            "bench_gate: regression over margin, but ambient load was "
            "already ${ambient_load} on ${ncores} core(s) before the "
            "first attempt — the machine is contended by foreign work "
            "and the numbers bound nothing, downgrading to a warning:"
            "${failures}")
        return()
    endif()
endif()

message(FATAL_ERROR
    "bench_gate: regression persisted across 5 attempts "
    "(best of each metric):${failures}")
