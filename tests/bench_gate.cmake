# Performance gate: run the bench-report micro benchmarks and campaign
# phases, then compare the load-bearing metrics against the checked-in
# baseline (currently BENCH_PR6.json). The gate fails when a metric is more than
# 25% worse than baseline:
#   - OooCpuRun    ns_per_op  (lower is better)
#   - SimpleCpuRun ns_per_op  (lower is better)
#   - visa_campaign sim_mips  (higher is better)
#
# math(EXPR) has no floating point, so values compare as milli-unit
# integers (45.559 -> 45559); the "1${frac} - 1000" dance below keeps
# fraction digits with leading zeros ("057") from being parsed as
# octal.
#
# Wall-clock noise on a loaded host can exceed the 25% margin (the
# bench phases are tens of milliseconds), so the gate passes if ANY of
# up to 3 attempts is clean; the ctest entry is RUN_SERIAL so sibling
# tests do not add contention of our own making.
#
# Inputs: -DBENCH_REPORT=<exe> -DBASELINE=<BENCH_PR*.json> -DWORK_DIR=<dir>

foreach(var BENCH_REPORT BASELINE WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_gate: -D${var}=... is required")
    endif()
endforeach()

# Decimal string -> milli-unit integer ("45.559" -> 45559, "17" -> 17000).
function(to_milli value out)
    if(value MATCHES "^([0-9]+)\\.([0-9]+)$")
        set(int_part ${CMAKE_MATCH_1})
        string(SUBSTRING "${CMAKE_MATCH_2}000" 0 3 frac)
        math(EXPR milli "${int_part} * 1000 + 1${frac} - 1000")
    elseif(value MATCHES "^[0-9]+$")
        math(EXPR milli "${value} * 1000")
    else()
        message(FATAL_ERROR "bench_gate: unparseable metric value '${value}'")
    endif()
    set(${out} ${milli} PARENT_SCOPE)
endfunction()

# Fetch <key> of the entry named <name> in the JSON array <section>.
function(bench_metric json section name key out)
    string(JSON n LENGTH "${json}" ${section})
    math(EXPR last "${n} - 1")
    foreach(i RANGE ${last})
        string(JSON nm GET "${json}" ${section} ${i} name)
        if(nm STREQUAL name)
            string(JSON v GET "${json}" ${section} ${i} ${key})
            set(${out} ${v} PARENT_SCOPE)
            return()
        endif()
    endforeach()
    message(FATAL_ERROR "bench_gate: '${name}' not found in ${section}")
endfunction()

file(READ ${BASELINE} base_json)
bench_metric("${base_json}" benchmarks OooCpuRun ns_per_op base_ooo)
bench_metric("${base_json}" benchmarks SimpleCpuRun ns_per_op base_simple)
bench_metric("${base_json}" campaign_phases visa_campaign sim_mips base_mips)
to_milli(${base_ooo} base_ooo_m)
to_milli(${base_simple} base_simple_m)
to_milli(${base_mips} base_mips_m)

file(MAKE_DIRECTORY ${WORK_DIR})
foreach(attempt RANGE 1 3)
    execute_process(
        COMMAND ${BENCH_REPORT} -o ${WORK_DIR}/bench_gate.json
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "bench_gate: bench-report exited with ${rc}")
    endif()
    file(READ ${WORK_DIR}/bench_gate.json cur_json)
    bench_metric("${cur_json}" benchmarks OooCpuRun ns_per_op cur_ooo)
    bench_metric("${cur_json}" benchmarks SimpleCpuRun ns_per_op cur_simple)
    bench_metric("${cur_json}" campaign_phases visa_campaign sim_mips cur_mips)
    to_milli(${cur_ooo} cur_ooo_m)
    to_milli(${cur_simple} cur_simple_m)
    to_milli(${cur_mips} cur_mips_m)

    set(failures "")
    # Lower-is-better: fail when cur > 1.25 * base.
    math(EXPR lhs "${cur_ooo_m} * 100")
    math(EXPR rhs "${base_ooo_m} * 125")
    if(lhs GREATER rhs)
        string(APPEND failures
            " OooCpuRun ${cur_ooo} ns/op vs baseline ${base_ooo};")
    endif()
    math(EXPR lhs "${cur_simple_m} * 100")
    math(EXPR rhs "${base_simple_m} * 125")
    if(lhs GREATER rhs)
        string(APPEND failures
            " SimpleCpuRun ${cur_simple} ns/op vs baseline ${base_simple};")
    endif()
    # Higher-is-better: fail when cur < 0.75 * base.
    math(EXPR lhs "${cur_mips_m} * 100")
    math(EXPR rhs "${base_mips_m} * 75")
    if(lhs LESS rhs)
        string(APPEND failures
            " visa_campaign ${cur_mips} sim-MIPS vs baseline ${base_mips};")
    endif()

    if(failures STREQUAL "")
        message(STATUS
            "bench_gate pass (attempt ${attempt}): OooCpuRun ${cur_ooo} "
            "(base ${base_ooo}), SimpleCpuRun ${cur_simple} "
            "(base ${base_simple}), visa_campaign ${cur_mips} sim-MIPS "
            "(base ${base_mips})")
        return()
    endif()
    message(STATUS "bench_gate attempt ${attempt}/3 over margin:${failures}")
endforeach()

message(FATAL_ERROR
    "bench_gate: >25% regression persisted across 3 attempts:${failures}")
