# Performance gate: run the bench-report micro benchmarks and campaign
# phases, then compare the load-bearing metrics against the checked-in
# baseline (currently BENCH_PR6.json). The gate fails when a metric is more than
# 25% worse than baseline:
#   - OooCpuRun    ns_per_op  (lower is better)
#   - SimpleCpuRun ns_per_op  (lower is better)
#   - visa_campaign sim_mips  (higher is better)
#
# math(EXPR) has no floating point, so values compare as milli-unit
# integers (45.559 -> 45559); the "1${frac} - 1000" dance below keeps
# fraction digits with leading zeros ("057") from being parsed as
# octal.
#
# Wall-clock noise on a loaded host can exceed the 25% margin (the
# bench phases are tens of milliseconds), so the gate passes if ANY of
# up to 3 attempts is clean; the ctest entry is RUN_SERIAL so sibling
# tests do not add contention of our own making.
#
# The report carries host metadata ("host": cpu_model/cores/...). When
# the current host differs from the baseline's recorded host, every
# gate downgrades to a warning: a throughput number recorded on another
# machine bounds nothing on this one. Baselines predating the host
# field gate normally.
#
# Inputs: -DBENCH_REPORT=<exe> -DBASELINE=<BENCH_PR*.json> -DWORK_DIR=<dir>
#         [-DPROF_BASELINE=<BENCH_PR*.json>]
#
# PROF_BASELINE adds the profiling-overhead gate: the block-profiling
# hooks are always compiled in (sim/prof), so ExecCoreStep with no
# profiler installed must stay within 2% of the pre-profiling baseline
# — the disabled path must be a dead branch, not a tax.

foreach(var BENCH_REPORT BASELINE WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_gate: -D${var}=... is required")
    endif()
endforeach()

# Decimal string -> milli-unit integer ("45.559" -> 45559, "17" -> 17000).
function(to_milli value out)
    if(value MATCHES "^([0-9]+)\\.([0-9]+)$")
        set(int_part ${CMAKE_MATCH_1})
        string(SUBSTRING "${CMAKE_MATCH_2}000" 0 3 frac)
        math(EXPR milli "${int_part} * 1000 + 1${frac} - 1000")
    elseif(value MATCHES "^[0-9]+$")
        math(EXPR milli "${value} * 1000")
    else()
        message(FATAL_ERROR "bench_gate: unparseable metric value '${value}'")
    endif()
    set(${out} ${milli} PARENT_SCOPE)
endfunction()

# Fetch <key> of the entry named <name> in the JSON array <section>.
function(bench_metric json section name key out)
    string(JSON n LENGTH "${json}" ${section})
    math(EXPR last "${n} - 1")
    foreach(i RANGE ${last})
        string(JSON nm GET "${json}" ${section} ${i} name)
        if(nm STREQUAL name)
            string(JSON v GET "${json}" ${section} ${i} ${key})
            set(${out} ${v} PARENT_SCOPE)
            return()
        endif()
    endforeach()
    message(FATAL_ERROR "bench_gate: '${name}' not found in ${section}")
endfunction()

file(READ ${BASELINE} base_json)
bench_metric("${base_json}" benchmarks OooCpuRun ns_per_op base_ooo)
bench_metric("${base_json}" benchmarks SimpleCpuRun ns_per_op base_simple)
bench_metric("${base_json}" campaign_phases visa_campaign sim_mips base_mips)
to_milli(${base_ooo} base_ooo_m)
to_milli(${base_simple} base_simple_m)
to_milli(${base_mips} base_mips_m)

if(DEFINED PROF_BASELINE)
    file(READ ${PROF_BASELINE} prof_base_json)
    bench_metric("${prof_base_json}" benchmarks ExecCoreStep ns_per_op
        base_step)
    to_milli(${base_step} base_step_m)
endif()

# "<cpu_model>/<cores>" of a report's host object, or "" if absent.
function(host_id json out)
    string(JSON host ERROR_VARIABLE err GET "${json}" host)
    if(err)
        set(${out} "" PARENT_SCOPE)
        return()
    endif()
    string(JSON model GET "${host}" cpu_model)
    string(JSON cores GET "${host}" cores)
    set(${out} "${model}/${cores}" PARENT_SCOPE)
endfunction()

host_id("${base_json}" base_host)

file(MAKE_DIRECTORY ${WORK_DIR})
foreach(attempt RANGE 1 3)
    execute_process(
        COMMAND ${BENCH_REPORT} -o ${WORK_DIR}/bench_gate.json
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "bench_gate: bench-report exited with ${rc}")
    endif()
    file(READ ${WORK_DIR}/bench_gate.json cur_json)
    bench_metric("${cur_json}" benchmarks OooCpuRun ns_per_op cur_ooo)
    bench_metric("${cur_json}" benchmarks SimpleCpuRun ns_per_op cur_simple)
    bench_metric("${cur_json}" campaign_phases visa_campaign sim_mips cur_mips)
    to_milli(${cur_ooo} cur_ooo_m)
    to_milli(${cur_simple} cur_simple_m)
    to_milli(${cur_mips} cur_mips_m)

    host_id("${cur_json}" cur_host)
    set(host_mismatch FALSE)
    if(NOT base_host STREQUAL "" AND NOT cur_host STREQUAL base_host)
        set(host_mismatch TRUE)
    endif()

    set(failures "")
    # Lower-is-better: fail when cur > 1.25 * base.
    math(EXPR lhs "${cur_ooo_m} * 100")
    math(EXPR rhs "${base_ooo_m} * 125")
    if(lhs GREATER rhs)
        string(APPEND failures
            " OooCpuRun ${cur_ooo} ns/op vs baseline ${base_ooo};")
    endif()
    math(EXPR lhs "${cur_simple_m} * 100")
    math(EXPR rhs "${base_simple_m} * 125")
    if(lhs GREATER rhs)
        string(APPEND failures
            " SimpleCpuRun ${cur_simple} ns/op vs baseline ${base_simple};")
    endif()
    # Higher-is-better: fail when cur < 0.75 * base.
    math(EXPR lhs "${cur_mips_m} * 100")
    math(EXPR rhs "${base_mips_m} * 75")
    if(lhs LESS rhs)
        string(APPEND failures
            " visa_campaign ${cur_mips} sim-MIPS vs baseline ${base_mips};")
    endif()
    # Profiling-off overhead: ExecCoreStep within 2% of the
    # pre-profiling baseline (the hooks compile in unconditionally; the
    # uninstalled path must cost nothing).
    if(DEFINED PROF_BASELINE)
        bench_metric("${cur_json}" benchmarks ExecCoreStep ns_per_op
            cur_step)
        to_milli(${cur_step} cur_step_m)
        math(EXPR lhs "${cur_step_m} * 100")
        math(EXPR rhs "${base_step_m} * 102")
        if(lhs GREATER rhs)
            string(APPEND failures
                " ExecCoreStep ${cur_step} ns/op vs pre-profiling "
                "baseline ${base_step} (>2% profiling-off overhead);")
        endif()
    endif()

    if(failures STREQUAL "")
        message(STATUS
            "bench_gate pass (attempt ${attempt}): OooCpuRun ${cur_ooo} "
            "(base ${base_ooo}), SimpleCpuRun ${cur_simple} "
            "(base ${base_simple}), visa_campaign ${cur_mips} sim-MIPS "
            "(base ${base_mips})")
        return()
    endif()
    message(STATUS "bench_gate attempt ${attempt}/3 over margin:${failures}")
endforeach()

if(host_mismatch)
    message(WARNING
        "bench_gate: regression over margin, but this host "
        "('${cur_host}') differs from the baseline's ('${base_host}') "
        "— numbers are not comparable, downgrading to a warning:"
        "${failures}")
    return()
endif()

message(FATAL_ERROR
    "bench_gate: >25% regression persisted across 3 attempts:${failures}")
