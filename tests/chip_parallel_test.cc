/**
 * @file
 * Deterministic parallel chip execution tests: the epoch-buffered
 * multi-core engines (free-run Chip::runAll and the partitioned
 * scheduler) must produce bit-identical stats JSON and trace JSONL for
 * any VISA_THREADS setting; the paired-core detector must vote the
 * same way under the threaded dispatcher; runAll must charge only the
 * cycles the cores actually consume; and the shared --cores/--affinity
 * CLI validation must reject garbage with the offending value.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "bench/bench_util.hh"
#include "chip/chip.hh"
#include "chip/paired.hh"
#include "core/scheduler.hh"
#include "sim/builder.hh"
#include "sim/cli.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "verify/inject.hh"
#include "workloads/clab.hh"
#include "workloads/tasksets.hh"

namespace visa
{
namespace
{

using bench::makeTaskSetDefs;

/** Pin VISA_THREADS for one scope; restores the prior value. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(const char *value)
    {
        if (const char *prev = std::getenv("VISA_THREADS")) {
            had_ = true;
            saved_ = prev;
        }
        setenv("VISA_THREADS", value, 1);
    }
    ~ScopedThreads()
    {
        if (had_)
            setenv("VISA_THREADS", saved_.c_str(), 1);
        else
            unsetenv("VISA_THREADS");
    }
    ScopedThreads(const ScopedThreads &) = delete;
    ScopedThreads &operator=(const ScopedThreads &) = delete;

  private:
    bool had_ = false;
    std::string saved_;
};

/** Everything a determinism comparison needs from one run. */
struct RunCapture
{
    std::string statsJson;
    std::string traceJsonl;
    std::uint64_t retired = 0;
};

RunCapture
freeRunChip(int cores)
{
    Tracer tracer(1 << 16);
    tracer.setKindMask(Tracer::maskFor("mem"));
    auto c = SimBuilder()
                 .workload("mm")
                 .cpu(CpuKind::Complex)
                 .cores(cores)
                 .buildChip();
    RunCapture cap;
    {
        ScopedTracer install(tracer);
        const chip::Chip::RunAllResult r = c->runAll(20'000'000'000ULL);
        EXPECT_TRUE(r.allHalted);
        cap.retired = r.retired;
    }
    StatSet set;
    c->buildStats(set);
    std::ostringstream stats, trace;
    set.dumpJson(stats);
    tracer.writeJsonl(trace);
    cap.statsJson = stats.str();
    cap.traceJsonl = trace.str();
    return cap;
}

RunCapture
partitionedRun(int cores)
{
    SchedulerConfig cfg;
    cfg.cores = cores;
    cfg.placement = PlacementPolicy::Partitioned;
    Tracer tracer(1 << 16);
    tracer.setKindMask(Tracer::maskFor("sched"));
    MultiTaskScheduler sched(cfg);
    for (const SchedTaskDef &d :
         makeTaskSetDefs(parseTaskSet("clab6"), 0.8))
        sched.addTask(d);
    EXPECT_EQ(sched.admissionError(), "");
    RunCapture cap;
    {
        ScopedTracer install(tracer);
        const ScheduleOutcome out = sched.run(3);
        EXPECT_EQ(out.deadlineMisses, 0);
    }
    for (int t = 0; t < sched.numTasks(); ++t)
        cap.retired += sched.taskStats(t).retired;
    StatSet set;
    sched.buildStats(set);
    std::ostringstream stats, trace;
    set.dumpJson(stats);
    tracer.writeJsonl(trace);
    cap.statsJson = stats.str();
    cap.traceJsonl = trace.str();
    return cap;
}

// ---- threaded == serial, bit for bit ----

TEST(ChipParallel, FreeRunBitIdenticalAcrossThreadCounts)
{
    for (int cores : {2, 4}) {
        RunCapture ref;
        {
            ScopedThreads threads("1");
            ref = freeRunChip(cores);
        }
        EXPECT_FALSE(ref.traceJsonl.empty());
        for (const char *threads : {"2", "8"}) {
            ScopedThreads pin(threads);
            const RunCapture cur = freeRunChip(cores);
            EXPECT_EQ(cur.statsJson, ref.statsJson)
                << "cores=" << cores << " threads=" << threads;
            EXPECT_EQ(cur.traceJsonl, ref.traceJsonl)
                << "cores=" << cores << " threads=" << threads;
            EXPECT_EQ(cur.retired, ref.retired);
        }
    }
}

TEST(ChipParallel, PartitionedScheduleBitIdenticalAcrossThreadCounts)
{
    for (int cores : {2, 4}) {
        RunCapture ref;
        {
            ScopedThreads threads("1");
            ref = partitionedRun(cores);
        }
        EXPECT_FALSE(ref.traceJsonl.empty());
        for (const char *threads : {"2", "8"}) {
            ScopedThreads pin(threads);
            const RunCapture cur = partitionedRun(cores);
            EXPECT_EQ(cur.statsJson, ref.statsJson)
                << "cores=" << cores << " threads=" << threads;
            EXPECT_EQ(cur.traceJsonl, ref.traceJsonl)
                << "cores=" << cores << " threads=" << threads;
            EXPECT_EQ(cur.retired, ref.retired);
        }
    }
}

// ---- paired detector under the threaded dispatcher ----

TEST(ChipParallel, PairedDetectorMatchesSerialUnderThreads)
{
    const Workload wl = makeWorkload("cnt");
    chip::PairedCheckResult ref;
    {
        ScopedThreads threads("1");
        ref = chip::runPairedCheck(wl.program, nullptr,
                                   20'000'000'000ULL);
    }
    ScopedThreads threads("8");
    const chip::PairedCheckResult r =
        chip::runPairedCheck(wl.program, nullptr, 20'000'000'000ULL);
    EXPECT_FALSE(r.detected) << r.report;
    EXPECT_EQ(r.detected, ref.detected);
    EXPECT_EQ(r.victimRetired, ref.victimRetired);
    EXPECT_EQ(r.spareRetired, ref.spareRetired);
}

TEST(ChipParallel, InjectedPairedOutcomesMatchSerial)
{
    verify::InjectRunOptions io;
    io.pairedCheck = true;
    for (std::uint64_t seed : {1, 5, 9}) {
        verify::InjectRunResult serial, threaded;
        {
            ScopedThreads threads("1");
            serial = verify::runInjectProgram(
                seed, verify::FaultClass::LoadExt, io);
        }
        {
            ScopedThreads threads("8");
            threaded = verify::runInjectProgram(
                seed, verify::FaultClass::LoadExt, io);
        }
        EXPECT_EQ(serial.outcome, threaded.outcome) << "seed " << seed;
        EXPECT_EQ(serial.pairedDetected, threaded.pairedDetected);
        EXPECT_EQ(serial.checksum, threaded.checksum);
    }
}

// ---- window accounting ----

TEST(ChipParallel, RunAllChargesActualCyclesNotFullWindows)
{
    // Measure how many cycles the longest-running core actually needs,
    // then re-run with exactly that budget: a chip that charged the
    // full window for a quantum in which the cores halted early would
    // run out of budget before the final (partial) quantum.
    const Cycles window = 5000;
    auto probe = SimBuilder()
                     .workload("cnt")
                     .cpu(CpuKind::Complex)
                     .cores(2)
                     .buildChip();
    ASSERT_TRUE(probe->runAll(20'000'000'000ULL, window).allHalted);
    const Cycles need = std::max(probe->core(0).ooo().cycles(),
                                 probe->core(1).ooo().cycles());
    EXPECT_NE(need % window, 0u);    // the interesting case

    auto exact = SimBuilder()
                     .workload("cnt")
                     .cpu(CpuKind::Complex)
                     .cores(2)
                     .buildChip();
    const chip::Chip::RunAllResult r = exact->runAll(need, window);
    EXPECT_TRUE(r.allHalted);
    EXPECT_EQ(r.retired, probe->core(0).ooo().retired() +
                             probe->core(1).ooo().retired());
}

// ---- CLI validation ----

TEST(ChipParallel, CoresFlagRejectsGarbage)
{
    EXPECT_EQ(parseCoresFlag(""), 1);
    EXPECT_EQ(parseCoresFlag("4"), 4);
    EXPECT_THROW(parseCoresFlag("abc"), FatalError);
    EXPECT_THROW(parseCoresFlag("4x"), FatalError);
    EXPECT_THROW(parseCoresFlag("0"), FatalError);
    EXPECT_THROW(parseCoresFlag("-2"), FatalError);
    EXPECT_THROW(parseCoresFlag("65"), FatalError);
}

TEST(ChipParallel, AffinityPinsValidatedAgainstCores)
{
    EXPECT_NO_THROW(validateAffinity({1, -1, 0}, 2));
    EXPECT_NO_THROW(validateAffinity({}, 1));
    EXPECT_THROW(validateAffinity({0, 2}, 2), FatalError);
    EXPECT_THROW(validateAffinity({4}, 4), FatalError);
}

} // anonymous namespace
} // namespace visa
