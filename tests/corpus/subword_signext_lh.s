# visa-fuzz repro
# seed: 1
# profile: memory
# note: subword sign-extension (lh/lb zero- instead of sign-extended in the candidate); minimized from the injected-bug hunt
        la r9, scratch
        lh r5, 0(r9)
        lb r6, 3(r9)
        lhu r7, 0(r9)
        lbu r8, 2(r9)
        sw r5, 8(r9)
        sw r6, 12(r9)
        halt
        .data
scratch:
        .word -559038737, -1, 0, 0
