# visa-fuzz repro
# seed: 0
# profile: mixed
# note: FP NaN propagation and condition-code branches (0/0 NaN through compares, bc1t/bc1f both directions)
        li r3, 0
        cvt.d.w f2, r3
        div.d f4, f2, f2
        c.eq.d f4, f4
        bc1t Ltaken
        li r5, 111
Ltaken:
        c.lt.d f2, f4
        bc1f Lnottaken
        li r6, 222
Lnottaken:
        add.d f6, f4, f2
        abs.d f8, f4
        neg.d f10, f4
        mov.d f12, f4
        li r4, 3
        cvt.d.w f14, r4
        c.le.d f2, f14
        bc1t Lend
        li r7, 333
Lend:
        halt
