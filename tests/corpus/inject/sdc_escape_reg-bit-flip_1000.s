# visa-fuzz repro
# seed: 1000
# profile: mixed
# note: silent corruption escape, class reg-bit-flip (reproduce: visa-fuzz --inject reg-bit-flip --seed 1000 --count 1)
        .subtask 1
        li r25, 0xFFFF0010
        li r1, 1
        sw r1, 0(r25)
        li r25, 0xFFFF0004
        sw r0, 0(r25)
        la r25, wdinc
        lw r1, 0(r25)
        li r25, 0xFFFF0000
        sw r1, 0(r25)
        la r26, scratch
        li r2, 9483
        cvt.d.w f2, r2
        li r2, -5365
        cvt.d.w f3, r2
        li r2, -289
        cvt.d.w f4, r2
        li r2, 5657
        cvt.d.w f5, r2
        li r2, -6077
        cvt.d.w f6, r2
        li r2, 2507
        cvt.d.w f7, r2
        li r2, 1567
        cvt.d.w f8, r2
        li r2, 7704
        cvt.d.w f9, r2
        li r2, -204947803
        li r3, 932837812
        li r4, -885460105
        li r5, 98194526
        li r6, -1019786727
        li r7, -367311208
        li r8, -491736309
        li r9, 582485730
        li r10, -25300275
        li r11, 226332604
        li r12, -61423137
        li r13, 214122406
        li r14, -456004415
        li r15, 506231072
        li r24, 29682
        xor r24, r24, r14
        xor r24, r24, r12
        mov.d f4, f9
        c.le.d f8, f5
        lui r5, 60610
        lbu r5, 278(r26)
        li r16, 5
Lloop0:
        xor r24, r24, r2
        lb r12, 197(r26)
        subi r16, r16, 1
        .loopbound 5
        bgtz r16, Lloop0
        sb r12, 457(r26)
        bc1t Lskip1
        xor r24, r24, r15
        xor r24, r24, r5
        div.d f2, f7, f8
Lskip1:
        xor r24, r24, r5
        sllv r10, r11, r6
        mul r3, r6, r13
        li r16, 3
Lloop2:
        mul.d f5, f6, f3
        li r17, 2
Lloop3:
        sb r11, 348(r26)
        slti r2, r3, -176
        xor r24, r24, r2
        subi r17, r17, 1
        .loopbound 2
        bgtz r17, Lloop3
        lb r14, 445(r26)
        sh r12, 130(r26)
        subi r16, r16, 1
        .loopbound 3
        bgtz r16, Lloop2
        sw r4, 20(r26)
        sltu r5, r6, r15
        li r16, 3
Lloop4:
        rem r13, r2, r13
        lh r15, 480(r26)
        lb r5, 292(r26)
        subi r16, r16, 1
        .loopbound 3
        bgtz r16, Lloop4
        xor r24, r24, r11
        c.le.d f4, f9
        lh r15, 188(r26)
        div.d f6, f3, f4
        and r6, r3, r4
        sdc1 f8, 88(r26)
        mul r11, r10, r5
        xor r24, r24, r7
        j Lseg_2
Lseg_2:
        .subtask 2
        li r25, 0xFFFF0004
        lw r1, 0(r25)
        li r25, 0xFFFF0014
        sw r1, 0(r25)
        li r25, 0xFFFF0010
        li r1, 2
        sw r1, 0(r25)
        li r25, 0xFFFF0004
        sw r0, 0(r25)
        la r25, wdinc
        lw r1, 4(r25)
        li r25, 0xFFFF0000
        sw r1, 0(r25)
        ldc1 f9, 448(r26)
        and r12, r11, r10
        lh r8, 382(r26)
        ori r15, r4, 1379
        blez r5, Lskip5
        xor r24, r24, r10
        mul r15, r10, r5
        addi r10, r9, 54
Lskip5:
        srlv r7, r2, r9
        sb r11, 128(r26)
        sub.d f8, f5, f6
        lhu r5, 308(r26)
        div.d f2, f7, f8
        div r6, r15, r4
        sll r11, r4, 23
        xor r12, r11, r10
        xor r24, r24, r6
        sdc1 f8, 280(r26)
        sltu r13, r10, r15
        sw r7, 56(r26)
        sh r15, 68(r26)
        srav r4, r13, r2
        sb r12, 481(r26)
        li r16, 4
Lloop6:
        div r10, r5, r2
        mul.d f9, f2, f7
        subi r16, r16, 1
        .loopbound 4
        bgtz r16, Lloop6
        bltz r13, Lskip7
        mov.d f4, f9
Lskip7:
        slt r12, r3, r2
        sw r2, 4(r26)
        xor r24, r24, r2
        xor r24, r24, r3
        xor r24, r24, r4
        xor r24, r24, r5
        xor r24, r24, r6
        xor r24, r24, r7
        lw r2, 0(r26)
        xor r24, r24, r2
        li r25, 0xFFFF0004
        lw r1, 0(r25)
        li r25, 0xFFFF0014
        sw r1, 0(r25)
        li r25, 0xFFFF0018
        sw r24, 0(r25)
        halt
        .data
scratch:
        .word -108526885, 1625119358, 805879749, -477745568, -937849281, 2022655634, 1444263113, -382584940
        .word -2087404061, -1177548314, -2023286771, -1987749368, 618378695, 1718843514, 909553041, -1182365252
        .word -1233069589, 532719182, -652707499, -598607184, -1851077041, -704256158, 226410329, 466428132
        .word -1757907213, 124571574, 1082000285, 312127576, 153417687, -1576127670, 567347745, 995007756
        .word -399788805, 491136542, 1696388837, -656270592, -106147233, -1639449550, -1787515415, 1281859124
        .word -640764925, 1005734278, -14806227, 201251496, -1108935193, -1243422182, -208352591, -1358379940
        .word -887516149, 852154862, -338765707, -1013215408, 624892527, -637369086, 1287684217, 1630973828
        .word 436761875, 1549629270, -769636675, -1397303048, 207800311, -1069644566, -479531199, -1047920724
        .word 68908827, 82559422, 1462205957, -1272752224, 96740991, 1898086866, 1751856905, -1582345004
        .word -1764312541, -1595188954, -492986803, 17279816, 303650311, -1498539078, -948144175, -1461235972
        .word -1337827797, -746201714, -211826795, 1063154672, 1759278735, -86707550, -2084712039, 109481508
        .word 258638643, 1159261942, 66001373, 980832664, 1355524119, -436296054, -1540201375, 1953870412
        .word 1960790331, 1236675934, -17779419, -948837312, 141101727, -1920542862, 809586729, -1984865420
        .word -751513533, 1470314694, 1135458669, -3683352, -1099252185, 1648174426, 1010152689, 1556752796
        .word -1887225781, 1306112302, 982730421, -876435312, -1702174033, -1897582526, -2051099975, 1986313412
        .word -773414573, -1970850154, 2041740541, -1124001224, -714631113, 917936170, -1603311231, 330937580
wdinc:
        .space 8
