# visa-fuzz repro
# seed: 1060
# profile: mixed
# note: silent corruption escape, class decode-imm (reproduce: visa-fuzz --inject decode-imm --seed 1060 --count 1)
        .subtask 1
        li r25, 0xFFFF0010
        li r1, 1
        sw r1, 0(r25)
        li r25, 0xFFFF0004
        sw r0, 0(r25)
        la r25, wdinc
        lw r1, 0(r25)
        li r25, 0xFFFF0000
        sw r1, 0(r25)
        la r26, scratch
        li r2, -1170
        cvt.d.w f2, r2
        li r2, 8075
        cvt.d.w f3, r2
        li r2, -6560
        cvt.d.w f4, r2
        li r2, -4223
        cvt.d.w f5, r2
        li r2, -418
        cvt.d.w f6, r2
        li r2, -6147
        cvt.d.w f7, r2
        li r2, 7615
        cvt.d.w f8, r2
        li r2, -6447
        cvt.d.w f9, r2
        li r2, -825258751
        li r3, 874978400
        li r4, 1023426099
        li r5, 18614250
        li r6, 1002647605
        li r7, 1067523588
        li r8, 400403335
        li r9, 85855534
        li r10, -1046836055
        li r11, -507836440
        li r12, -39623653
        li r13, -30972750
        li r14, 735483485
        li r15, 624508428
        li r24, 31726
        li r16, 2
Lloop0:
        c.lt.d f6, f3
        ldc1 f9, 448(r26)
        xor r24, r24, r9
        xor r24, r24, r15
        subi r16, r16, 1
        .loopbound 2
        bgtz r16, Lloop0
        li r16, 3
Lloop1:
        mul.d f5, f6, f3
        lw r10, 28(r26)
        subi r16, r16, 1
        .loopbound 3
        bgtz r16, Lloop1
        nor r3, r10, r5
        slt r14, r7, r8
        c.eq.d f7, f8
        lhu r2, 194(r26)
        sltiu r11, r2, 293
        srl r6, r13, 20
        sb r14, 39(r26)
        bltz r7, Lskip2
        lb r14, 175(r26)
        mul r13, r8, r15
        div.d f6, f3, f4
Lskip2:
        sh r15, 448(r26)
        bne r15, r10, Lskip3
        mul r7, r10, r7
        xor r24, r24, r7
        div r10, r5, r14
Lskip3:
        li r16, 2
Lloop4:
        sub.d f4, f9, f2
        sb r7, 158(r26)
        xor r24, r24, r9
        subi r16, r16, 1
        .loopbound 2
        bgtz r16, Lloop4
        xor r4, r9, r10
        sll r15, r10, 7
        xor r24, r24, r15
        div r8, r3, r6
        li r16, 2
Lloop5:
        bgez r10, Lskip6
        xor r24, r24, r15
Lskip6:
        lhu r13, 124(r26)
        subi r16, r16, 1
        .loopbound 2
        bgtz r16, Lloop5
        lh r7, 164(r26)
        lbu r13, 422(r26)
        sh r5, 116(r26)
        addi r2, r15, -242
        sb r2, 25(r26)
        nor r13, r8, r13
        j Lseg_2
Lseg_2:
        .subtask 2
        li r25, 0xFFFF0004
        lw r1, 0(r25)
        li r25, 0xFFFF0014
        sw r1, 0(r25)
        li r25, 0xFFFF0010
        li r1, 2
        sw r1, 0(r25)
        li r25, 0xFFFF0004
        sw r0, 0(r25)
        la r25, wdinc
        lw r1, 4(r25)
        li r25, 0xFFFF0000
        sw r1, 0(r25)
        sllv r6, r11, r4
        xor r24, r24, r10
        li r16, 4
Lloop7:
        li r17, 5
Lloop8:
        sltu r15, r6, r13
        sllv r4, r13, r10
        srlv r13, r14, r15
        subi r17, r17, 1
        .loopbound 5
        bgtz r17, Lloop8
        sh r11, 368(r26)
        subi r16, r16, 1
        .loopbound 4
        bgtz r16, Lloop7
        ldc1 f5, 352(r26)
        and r2, r5, r14
        neg.d f8, f5
        lb r9, 378(r26)
        and r14, r3, r2
        xor r24, r24, r14
        sdc1 f8, 408(r26)
        sdc1 f4, 184(r26)
        bltz r15, Lskip9
        sltu r13, r8, r7
Lskip9:
        xor r24, r24, r3
        slt r6, r13, r12
        abs.d f8, f5
        xor r10, r5, r2
        mul.d f9, f2, f7
        rem r13, r8, r15
        sub r12, r11, r14
        lhu r10, 154(r26)
        xor r24, r24, r4
        neg.d f8, f5
        div.d f6, f3, f4
        li r16, 3
Lloop10:
        sra r5, r2, 1
        xor r24, r24, r5
        subi r16, r16, 1
        .loopbound 3
        bgtz r16, Lloop10
        xor r24, r24, r2
        xor r24, r24, r3
        xor r24, r24, r4
        xor r24, r24, r5
        xor r24, r24, r6
        xor r24, r24, r7
        lw r2, 0(r26)
        xor r24, r24, r2
        li r25, 0xFFFF0004
        lw r1, 0(r25)
        li r25, 0xFFFF0014
        sw r1, 0(r25)
        li r25, 0xFFFF0018
        sw r24, 0(r25)
        halt
        .data
scratch:
        .word 755825472, 997406111, 1697449586, -244600023, -414555532, 1002711875, -1473456186, -1224422291
        .word 1741013736, 1439320359, 1437152346, 497842161, 746852508, -1124207797, -963170258, 1137490357
        .word 1652522896, 2127285679, -153936062, -250751559, -597982268, -1044857773, 301241750, 890916861
        .word 978899256, 80077623, -2090703062, 815983745, -1215734804, 1125426779, 497461246, -1935495355
        .word 1346656224, 533375423, 755149842, 1675811913, 903493908, 2117456227, -1992095898, -1564543091
        .word -1014451320, 707805511, -86798854, 556320017, 1756281660, 1959026027, -2028776498, -85178155
        .word 1010861104, -384775729, 2011737314, -365705511, 763069028, 2104257139, 848637238, -1471429859
        .word 98200024, -456498345, 835299530, -1733885535, -1337381236, -463595397, -1225116770, 1109558885
        .word 2040071296, -780194337, 116531634, 1518966121, 1043619764, -1681029245, 1168639750, 1750708909
        .word -1189940184, 127224167, 1162983322, 1053205041, 1743631836, -59582581, -591902866, -671193099
        .word -1196238640, 204920303, -1731458430, 1370310649, 1949946116, -1777719149, -579300138, 264357437
        .word -1707650440, 701625207, -910640534, 1232119489, 577851692, 265525915, 1927974718, -2072449659
        .word 1462960416, 412664319, 1264805714, -1029185911, -1124018604, 420695459, -935078234, 1704787405
        .word -1148418872, -1224646265, -1702121158, 214830929, 2078867580, 1771135403, 258870030, -238348523
        .word -1342276240, -767167985, 1810184226, -2034083559, 926838692, -770050381, 1468451958, 1531205981
        .word -728265960, -18574441, -1432904694, -1958224927, 1772733388, 1560095931, 861911774, 1013834917
wdinc:
        .space 8
