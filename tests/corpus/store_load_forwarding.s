# visa-fuzz repro
# seed: 0
# profile: memory
# note: store-to-load forwarding across widths (sb/sh under lw, sw under lb/lh) exercised back to back
        la r9, scratch
        li r3, -559038737
        sw r3, 0(r9)
        lb r4, 0(r9)
        lbu r5, 1(r9)
        lh r6, 2(r9)
        sb r3, 4(r9)
        sh r3, 6(r9)
        lw r7, 4(r9)
        lhu r8, 6(r9)
        add r10, r4, r5
        add r10, r10, r6
        add r10, r10, r7
        add r10, r10, r8
        sw r10, 8(r9)
        ldc1 f2, 0(r9)
        sdc1 f2, 16(r9)
        halt
        .data
scratch:
        .space 24
