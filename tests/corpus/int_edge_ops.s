# visa-fuzz repro
# seed: 0
# profile: alu
# note: integer edge semantics (INT_MIN/-1 div and rem, divide by zero, shift amounts masked to 31, unsigned compares)
        li r3, -2147483648
        li r4, -1
        div r5, r3, r4
        rem r6, r3, r4
        li r7, 0
        div r8, r3, r7
        rem r10, r3, r7
        sra r11, r3, 31
        srl r12, r3, 31
        sll r13, r4, 31
        sllv r14, r4, r3
        srav r15, r3, r4
        sltu r16, r4, r3
        slt r17, r4, r3
        mul r18, r3, r4
        sltiu r19, r4, -1
        slti r20, r3, 0
        halt
