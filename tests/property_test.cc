/**
 * @file
 * Property-based differential tests over randomly generated (but
 * structured and analyzable) programs:
 *
 *  - both pipelines and the simple mode produce identical
 *    architectural results,
 *  - the complex pipeline's simple mode is cycle-identical to
 *    simple-fixed (T2),
 *  - the WCET analyzer bounds the simulator at several DVS points
 *    (T1), with the trace-based D padding,
 *  - all generated instructions survive an encode/decode round trip.
 *
 * The generator emits counted loops (annotated), nested loops,
 * data-dependent diamonds, FP arithmetic, and memory traffic over a
 * scratch buffer — the shape of analyzable hard real-time code.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "isa/encoding.hh"
#include "tests/test_util.hh"
#include "wcet/analyzer.hh"
#include "workloads/asm_builder.hh"

namespace visa
{
namespace
{

/** Deterministic random generator of analyzable VPISA programs. */
class RandomProgram
{
  public:
    explicit RandomProgram(std::uint32_t seed) : lcg_(seed)
    {
        build();
    }

    const std::string &source() const { return src_; }

  private:
    int
    pick(int lo, int hi)
    {
        return lcg_.range(lo, hi);
    }

    /** A scratch integer register r4..r19. */
    std::string
    reg()
    {
        return "r" + std::to_string(pick(4, 19));
    }

    /** A scratch FP register f2..f12 (even). */
    std::string
    freg()
    {
        return "f" + std::to_string(pick(1, 6) * 2);
    }

    void
    emitAlu(AsmBuilder &b)
    {
        switch (pick(0, 7)) {
          case 0:
            b.ins("add %s, %s, %s", reg().c_str(), reg().c_str(),
                  reg().c_str());
            break;
          case 1:
            b.ins("sub %s, %s, %s", reg().c_str(), reg().c_str(),
                  reg().c_str());
            break;
          case 2:
            b.ins("mul %s, %s, %s", reg().c_str(), reg().c_str(),
                  reg().c_str());
            break;
          case 3:
            b.ins("xor %s, %s, %s", reg().c_str(), reg().c_str(),
                  reg().c_str());
            break;
          case 4:
            b.ins("addi %s, %s, %d", reg().c_str(), reg().c_str(),
                  pick(-100, 100));
            break;
          case 5:
            b.ins("sll %s, %s, %d", reg().c_str(), reg().c_str(),
                  pick(0, 7));
            break;
          case 6:
            b.ins("slt %s, %s, %s", reg().c_str(), reg().c_str(),
                  reg().c_str());
            break;
          default:
            b.ins("div %s, %s, %s", reg().c_str(), reg().c_str(),
                  reg().c_str());
        }
    }

    void
    emitMem(AsmBuilder &b)
    {
        // 1020(r20) is reserved for the loop-counter spill slot.
        int off = pick(0, 254) * 4;
        if (pick(0, 1))
            b.ins("lw %s, %d(r20)", reg().c_str(), off);
        else
            b.ins("sw %s, %d(r20)", reg().c_str(), off);
    }

    void
    emitFp(AsmBuilder &b)
    {
        switch (pick(0, 4)) {
          case 0:
            b.ins("add.d %s, %s, %s", freg().c_str(), freg().c_str(),
                  freg().c_str());
            break;
          case 1:
            b.ins("mul.d %s, %s, %s", freg().c_str(), freg().c_str(),
                  freg().c_str());
            break;
          case 2:
            b.ins("ldc1 %s, %d(r21)", freg().c_str(), pick(0, 15) * 8);
            break;
          case 3:
            b.ins("sdc1 %s, %d(r21)", freg().c_str(),
                  128 + pick(0, 15) * 8);
            break;
          default:
            b.ins("cvt.d.w %s, %s", freg().c_str(), reg().c_str());
        }
    }

    void
    emitBody(AsmBuilder &b, int n)
    {
        for (int i = 0; i < n; ++i) {
            switch (pick(0, 9)) {
              case 0: case 1: case 2: case 3: case 4:
                emitAlu(b);
                break;
              case 5: case 6: case 7:
                emitMem(b);
                break;
              default:
                emitFp(b);
            }
        }
    }

    void
    emitDiamond(AsmBuilder &b)
    {
        int id = labelId_++;
        b.ins("andi r2, %s, %d", reg().c_str(), pick(1, 15));
        b.ins("beq r2, r0, rnd_else_%d", id);
        emitBody(b, pick(1, 4));
        b.ins("j rnd_join_%d", id);
        b.label("rnd_else_" + std::to_string(id));
        emitBody(b, pick(1, 4));
        b.label("rnd_join_" + std::to_string(id));
    }

    void
    emitLoop(AsmBuilder &b, bool allow_nested)
    {
        int id = labelId_++;
        int bound = pick(2, 12);
        b.ins("li r2, %d", bound);
        b.label("rnd_loop_" + std::to_string(id));
        b.ins("sw r2, 1020(r20)");    // keep the counter live in memory
        emitBody(b, pick(1, 5));
        if (allow_nested && pick(0, 2) == 0) {
            int iid = labelId_++;
            int ibound = pick(2, 6);
            b.ins("li r3, %d", ibound);
            b.label("rnd_inner_" + std::to_string(iid));
            emitBody(b, pick(1, 3));
            b.ins("subi r3, r3, 1");
            b.ins(".loopbound %d", ibound);
            b.ins("bgtz r3, rnd_inner_%d", iid);
        }
        if (pick(0, 2) == 0)
            emitDiamond(b);
        b.ins("lw r2, 1020(r20)");
        b.ins("subi r2, r2, 1");
        b.ins(".loopbound %d", bound);
        b.ins("bgtz r2, rnd_loop_%d", id);
    }

    void
    build()
    {
        AsmBuilder b;
        b.ins(".text");
        b.ins("la r20, rnd_buf");
        b.ins("la r21, rnd_fp");
        // Seed the integer scratch registers with varied values.
        for (int r = 4; r <= 19; ++r)
            b.ins("li r%d, %d", r, pick(-5000, 5000));
        int segments = pick(3, 6);
        for (int s = 0; s < segments; ++s) {
            switch (pick(0, 3)) {
              case 0:
                emitBody(b, pick(2, 8));
                break;
              case 1:
                emitDiamond(b);
                break;
              default:
                emitLoop(b, true);
            }
        }
        // Publish a checksum of the scratch registers.
        b.ins("li r2, 0");
        for (int r = 4; r <= 19; ++r)
            b.ins("xor r2, r2, r%d", r);
        b.ins("li r3, 0x%X", mmio::checksum);
        b.ins("sw r2, 0(r3)");
        b.ins("halt");
        b.beginData();
        b.space("rnd_buf", 1024);
        std::vector<double> fp;
        for (int i = 0; i < 16; ++i)
            fp.push_back(lcg_.unit() * 3.0);
        b.doubles("rnd_fp", fp);
        b.space("rnd_fp_spill", 128);
        src_ = b.finish();
    }

    Lcg lcg_;
    int labelId_ = 0;
    std::string src_;
};

class RandomProgramTest : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    RandomProgramTest() : gen_(GetParam()) {}

    RandomProgram gen_;
};

TEST_P(RandomProgramTest, PipelinesAgreeFunctionally)
{
    test::SimpleMachine simple(gen_.source());
    test::OooMachine ooo(gen_.source());
    auto r1 = simple.run(500'000'000);
    auto r2 = ooo.run(500'000'000);
    ASSERT_EQ(r1.reason, StopReason::Halted);
    ASSERT_EQ(r2.reason, StopReason::Halted);
    EXPECT_EQ(simple.cpu->retired(), ooo.cpu->retired());
    EXPECT_TRUE(simple.platform.checksumReported());
    EXPECT_EQ(simple.platform.lastChecksum(),
              ooo.platform.lastChecksum());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(simple.intReg(r), ooo.intReg(r)) << "r" << r;
    for (int f = 0; f < numFpRegs; ++f) {
        // Bit-compare: NaNs (inf - inf is reachable) must also agree.
        std::uint64_t a, b;
        double da = simple.fpReg(f), db = ooo.fpReg(f);
        std::memcpy(&a, &da, 8);
        std::memcpy(&b, &db, 8);
        EXPECT_EQ(a, b) << "f" << f;
    }
}

TEST_P(RandomProgramTest, SimpleModeMatchesSimpleFixed)
{
    test::SimpleMachine simple(gen_.source());
    test::OooMachine ooo(gen_.source());
    ooo.cpu->switchToSimple();
    simple.run(500'000'000);
    ooo.run(500'000'000);
    EXPECT_EQ(ooo.cpu->cycles(), simple.cpu->cycles());
}

TEST_P(RandomProgramTest, WcetBoundsSimulatorAcrossFrequencies)
{
    Program prog = assemble(gen_.source());
    WcetAnalyzer an(prog);
    DMissProfile dmiss = profileDataMisses(prog);
    for (MHz f : {100u, 425u, 1000u}) {
        test::SimpleMachine m(gen_.source());
        m.cpu->setFrequency(f);
        auto res = m.run(500'000'000);
        ASSERT_EQ(res.reason, StopReason::Halted);
        WcetReport rep = an.analyze(f, &dmiss);
        EXPECT_GE(rep.taskCycles, m.cpu->cycles())
            << "seed " << GetParam() << " at " << f << " MHz";
    }
}

TEST_P(RandomProgramTest, EncodingRoundTripsWholeProgram)
{
    Program prog = assemble(gen_.source());
    for (std::size_t i = 0; i < prog.size(); ++i) {
        Addr pc = prog.textBase + static_cast<Addr>(i * 4);
        EXPECT_EQ(decode(prog.words[i], pc), prog.text[i])
            << disassemble(prog.text[i], pc);
    }
}

TEST_P(RandomProgramTest, DisassemblyIsReassemblable)
{
    // Disassemble every instruction and spot-check the mnemonic is
    // known to the assembler's table by reassembling simple forms.
    Program prog = assemble(gen_.source());
    for (std::size_t i = 0; i < prog.size(); ++i) {
        std::string text =
            disassemble(prog.text[i],
                        prog.textBase + static_cast<Addr>(i * 4));
        EXPECT_FALSE(text.empty());
        EXPECT_EQ(text.find("<bad>"), std::string::npos) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(1u, 25u));

} // anonymous namespace
} // namespace visa
