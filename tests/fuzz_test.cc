/**
 * @file
 * Fuzzing suites, two layers:
 *
 *  - robustness fuzzing of the input-facing layers: mutated assembly
 *    sources and random instruction words must produce clean
 *    diagnostics (FatalError) or valid results — never crashes, hangs,
 *    or undefined behavior;
 *
 *  - differential fuzzing of the two pipelines: thousands of seeded
 *    random programs per instruction-mix profile, each run on the
 *    in-order reference and the out-of-order candidate in lockstep
 *    (src/verify) — any architectural divergence fails with the full
 *    divergence report. FuzzLong is the 100k-program edition, excluded
 *    from the default ctest run (`ctest -C slow -L slow`).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>

#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "verify/lockstep.hh"
#include "verify/progen.hh"
#include "workloads/asm_builder.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

class MutationFuzz : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MutationFuzz, MutatedBenchmarkSourceNeverCrashesTheAssembler)
{
    // Take a real benchmark source and splatter random character
    // mutations over it; every outcome must be a clean assemble or a
    // FatalError with a line diagnostic.
    static const std::string base = makeCnt().source;
    Lcg lcg(GetParam() * 2654435761u + 17);
    std::string src = base;
    const int mutations = 1 + static_cast<int>(lcg.next() % 12);
    const char charset[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 ,.()-%$#\n\t";
    for (int i = 0; i < mutations; ++i) {
        std::size_t pos = lcg.next() % src.size();
        src[pos] = charset[lcg.next() % (sizeof(charset) - 1)];
    }
    try {
        Program p = assemble(src);
        EXPECT_GT(p.size(), 0u);
    } catch (const FatalError &) {
        // clean rejection
    }
}

TEST_P(MutationFuzz, RandomWordsDecodeOrRejectCleanly)
{
    Lcg lcg(GetParam() * 0x9E3779B9u + 3);
    for (int i = 0; i < 200; ++i) {
        Word w = lcg.next();
        try {
            Instruction inst = decode(w, 0x00400000);
            // A decodable word must disassemble and re-encode to a
            // word that decodes to the same instruction (canonical
            // form; don't-care fields may differ in the raw word).
            std::string text = disassemble(inst, 0x00400000);
            EXPECT_FALSE(text.empty());
            Word w2 = encode(inst, 0x00400000);
            EXPECT_EQ(decode(w2, 0x00400000), inst) << text;
        } catch (const FatalError &) {
            // unallocated opcode: clean rejection
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Range(1u, 21u));

/**
 * Scan @p count seeded programs of @p profile starting at @p firstSeed
 * through the lockstep checker, in parallel. Fails the test with the
 * first (lowest-seed) divergence report.
 */
void
differentialScan(verify::GenProfile profile, std::uint64_t firstSeed,
                 std::uint64_t count)
{
    verify::GenParams gen;
    gen.profile = profile;

    std::mutex mu;
    std::uint64_t worstSeed = 0;
    std::string worstReport;
    std::atomic<std::uint64_t> instructions{0};

    parallelFor(static_cast<std::size_t>(count), [&](std::size_t i) {
        const std::uint64_t seed = firstSeed + i;
        const verify::GeneratedProgram g = verify::generate(seed, gen);
        const verify::LockstepResult r = verify::runLockstep(g.program);
        instructions += r.instructions;
        if (!r.equivalent) {
            std::lock_guard<std::mutex> lock(mu);
            if (worstReport.empty() || seed < worstSeed) {
                worstSeed = seed;
                worstReport = r.report;
            }
        }
    });

    EXPECT_TRUE(worstReport.empty())
        << "first divergence at seed " << worstSeed
        << " (reproduce: visa-fuzz --seed " << worstSeed
        << " --count 1 --profile " << profileName(profile) << ")\n"
        << worstReport;
    // The scan must have simulated something: an accidentally empty
    // generator would otherwise pass vacuously.
    EXPECT_GT(instructions.load(), count);
}

class DifferentialFuzz
    : public ::testing::TestWithParam<verify::GenProfile>
{
};

TEST_P(DifferentialFuzz, TenThousandProgramsMatchInLockstep)
{
    differentialScan(GetParam(), 1, 10000);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, DifferentialFuzz,
    ::testing::Values(verify::GenProfile::Alu,
                      verify::GenProfile::Branch,
                      verify::GenProfile::Memory,
                      verify::GenProfile::Mixed),
    [](const ::testing::TestParamInfo<verify::GenProfile> &info) {
        return std::string(verify::profileName(info.param));
    });

/**
 * 100k-program soak run. DISABLED_ keeps it out of gtest_discover_tests
 * and the default ctest tier; tests/CMakeLists.txt registers it
 * explicitly as `fuzz_long` under the "slow" ctest configuration/label
 * (`ctest -C slow -L slow`, or run the binary with
 * --gtest_also_run_disabled_tests --gtest_filter='*FuzzLong*').
 */
TEST(DifferentialFuzzSoak, DISABLED_FuzzLongHundredThousandPrograms)
{
    differentialScan(verify::GenProfile::Mixed, 1, 100000);
}

} // anonymous namespace
} // namespace visa
