/**
 * @file
 * Robustness fuzzing of the input-facing layers: mutated assembly
 * sources and random instruction words must produce clean diagnostics
 * (FatalError) or valid results — never crashes, hangs, or undefined
 * behavior.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "sim/logging.hh"
#include "workloads/asm_builder.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace
{

class MutationFuzz : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MutationFuzz, MutatedBenchmarkSourceNeverCrashesTheAssembler)
{
    // Take a real benchmark source and splatter random character
    // mutations over it; every outcome must be a clean assemble or a
    // FatalError with a line diagnostic.
    static const std::string base = makeCnt().source;
    Lcg lcg(GetParam() * 2654435761u + 17);
    std::string src = base;
    const int mutations = 1 + static_cast<int>(lcg.next() % 12);
    const char charset[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 ,.()-%$#\n\t";
    for (int i = 0; i < mutations; ++i) {
        std::size_t pos = lcg.next() % src.size();
        src[pos] = charset[lcg.next() % (sizeof(charset) - 1)];
    }
    try {
        Program p = assemble(src);
        EXPECT_GT(p.size(), 0u);
    } catch (const FatalError &) {
        // clean rejection
    }
}

TEST_P(MutationFuzz, RandomWordsDecodeOrRejectCleanly)
{
    Lcg lcg(GetParam() * 0x9E3779B9u + 3);
    for (int i = 0; i < 200; ++i) {
        Word w = lcg.next();
        try {
            Instruction inst = decode(w, 0x00400000);
            // A decodable word must disassemble and re-encode to a
            // word that decodes to the same instruction (canonical
            // form; don't-care fields may differ in the raw word).
            std::string text = disassemble(inst, 0x00400000);
            EXPECT_FALSE(text.empty());
            Word w2 = encode(inst, 0x00400000);
            EXPECT_EQ(decode(w2, 0x00400000), inst) << text;
        } catch (const FatalError &) {
            // unallocated opcode: clean rejection
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Range(1u, 21u));

} // anonymous namespace
} // namespace visa
