/**
 * @file
 * Shared helpers for the test suite: assemble-and-run harnesses for
 * both pipelines.
 */

#ifndef VISA_TESTS_TEST_UTIL_HH
#define VISA_TESTS_TEST_UTIL_HH

#include <memory>
#include <string>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "isa/assembler.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"

namespace visa::test
{

/** A fully wired machine around one program. */
template <typename CpuT>
struct Machine
{
    explicit Machine(const std::string &source)
        : prog(assemble(source))
    {
        mem.loadProgram(prog);
        cpu = std::make_unique<CpuT>(prog, mem, platform, memctrl);
        cpu->resetForTask();
    }

    RunResult
    run(Cycles budget = noCycleLimit)
    {
        return cpu->run(budget);
    }

    Word
    intReg(int r) const
    {
        return cpu->arch().readInt(r);
    }

    double
    fpReg(int r) const
    {
        return cpu->arch().fpRegs[static_cast<std::size_t>(r)];
    }

    Program prog;
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    std::unique_ptr<CpuT> cpu;
};

using SimpleMachine = Machine<SimpleCpu>;
using OooMachine = Machine<OooCpu>;

} // namespace visa::test

#endif // VISA_TESTS_TEST_UTIL_HH
