/**
 * @file
 * Shared helpers for the test suite: assemble-and-run harnesses for
 * both pipelines.
 */

#ifndef VISA_TESTS_TEST_UTIL_HH
#define VISA_TESTS_TEST_UTIL_HH

#include <memory>
#include <string>
#include <type_traits>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "isa/assembler.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "sim/builder.hh"

namespace visa::test
{

/**
 * A fully wired machine around one assembled source, built through
 * SimBuilder (the same construction path the tools use).
 */
template <typename CpuT>
struct Machine
{
    explicit Machine(const std::string &source)
        : sim(SimBuilder()
                  .source(source)
                  .cpu(std::is_same_v<CpuT, SimpleCpu>
                           ? CpuKind::Simple
                           : CpuKind::Complex)
                  .build()),
          prog(sim->program()), mem(sim->mem()),
          platform(sim->platform()), memctrl(sim->memctrl()),
          cpu(static_cast<CpuT *>(&sim->cpu()))
    {
    }

    RunResult
    run(Cycles budget = noCycleLimit)
    {
        return cpu->run(budget);
    }

    Word
    intReg(int r) const
    {
        return cpu->arch().readInt(r);
    }

    double
    fpReg(int r) const
    {
        return cpu->arch().fpRegs[static_cast<std::size_t>(r)];
    }

    std::unique_ptr<Sim> sim;
    const Program &prog;
    MainMemory &mem;
    Platform &platform;
    MemController &memctrl;
    CpuT *cpu;
};

using SimpleMachine = Machine<SimpleCpu>;
using OooMachine = Machine<OooCpu>;

} // namespace visa::test

#endif // VISA_TESTS_TEST_UTIL_HH
