# A small hard real-time task for visa-sim: scale, accumulate, publish.
# Three sub-tasks with loop bounds; the wdinc table is the parameter
# block the run-time system programs with watchdog increments.
#
#   visa-sim --cpu complex --wcet --stats share/demo_task.s

        .subtask 1
        la   r4, input
        la   r5, output
        addi r6, r0, 64
        addi r7, r0, 3
scale:  lw   r8, 0(r4)
        mul  r8, r8, r7
        sw   r8, 0(r5)
        addi r4, r4, 4
        addi r5, r5, 4
        subi r6, r6, 1
        .loopbound 64
        bgtz r6, scale

        .subtask 2
        la   r5, output
        addi r6, r0, 64
        addi r9, r0, 0
acc:    lw   r8, 0(r5)
        add  r9, r9, r8
        addi r5, r5, 4
        subi r6, r6, 1
        .loopbound 64
        bgtz r6, acc

        .subtask 3
        li   r10, 0xFFFF0018        # checksum MMIO port
        sw   r9, 0(r10)
        halt

        .data
input:  .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
        .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
        .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
        .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
output: .space 256
wdinc:  .space 12
