/**
 * @file
 * The multi-core VISA chip: N cores — each with its own Platform
 * (watchdog, cycle counter, DVS registers: the per-core safety and
 * clock domain) and its own SimpleCpu/OooCpu pair sharing per-core
 * L1s — in front of one ChipInterconnect (banked bus + shared L2 +
 * chip MSHR pool).
 *
 * Sharing boundary, and why: the L2 and the bus are per-chip objects
 * (the scale-out the ROADMAP calls for); the Platform stays per-core
 * because it *is* the VISA watchdog — the paper's safety argument
 * needs one independent checkpoint counter per execution domain, and
 * a shared watchdog would let one core's recovery mask another's
 * missed checkpoint. On a multi-core chip each core also runs on its
 * own functional memory image (a loadProgram replica of the chip's):
 * free-running N copies of one program is SPMD replication — the same
 * private-rig model the paired detector and the multi-task scheduler
 * use — and private images are what lets the cores execute on
 * concurrent host threads without the functional state racing. The
 * single-core chip keeps the chip-level MainMemory, bit-identical to
 * the historical rig.
 *
 * Cores are stepped deterministically: runAll() executes the cores in
 * fixed cycle windows with the interconnect in epoch-buffered mode, so
 * a chip run is a pure function of (program, config, window) — the
 * cores of one window may run serially or on worker threads
 * (sim/parallel.hh) with bit-identical results.
 */

#ifndef VISA_CHIP_CHIP_HH
#define VISA_CHIP_CHIP_HH

#include <memory>
#include <vector>

#include "chip/interconnect.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "sim/stats.hh"
#include "workloads/clab.hh"

namespace visa
{
namespace chip
{

/** Chip geometry; the bus/L2 knobs ride in ChipBusParams. */
struct ChipConfig
{
    int cores = 1;
    ChipBusParams bus;
    /**
     * Attach per-core MemControllers to the shared bus. Off for a
     * single core: a 1-core chip is the historical rig, bit-identical
     * (the bus only ever sees contention with >= 2 requestors).
     */
    bool attachBus = true;
    MemCtrlParams memctrl;
};

class Chip;

/**
 * One execution slot: Platform + bus-attached MemController, plus the
 * SimpleCpu/OooCpu pair built on demand (a VISA core is the pair — the
 * complex pipeline for throughput, the simple one for recovery and
 * for paired-core redundant execution).
 */
class ChipCore
{
  public:
    int id() const { return id_; }
    Platform &platform() { return platform_; }
    MemController &memctrl() { return memctrl_; }
    /** The functional memory this core's pipelines run on: its private
     *  replica on a multi-core chip, the chip image on a single-core
     *  one (see the file comment). */
    MainMemory &mem();

    /** The complex (out-of-order) pipeline; built on first use. */
    OooCpu &ooo();
    /** The simple in-order pipeline; built on first use. */
    SimpleCpu &simple();

    /**
     * Construct the pipeline WITHOUT resetting it for a task — the
     * builder owns the exact construction dance (block-cache knob
     * before reset, mode switch and frequency after); fatal if this
     * pipeline was already built.
     */
    OooCpu &makeOoo();
    SimpleCpu &makeSimple();

    bool hasOoo() const { return ooo_ != nullptr; }
    bool hasSimple() const { return simple_ != nullptr; }

  private:
    friend class Chip;
    ChipCore(Chip &chip, int id);

    Chip &chip_;
    int id_;
    Platform platform_;
    MemController memctrl_;
    /** Multi-core chips only: this core's functional image. */
    std::unique_ptr<MainMemory> privMem_;
    std::unique_ptr<OooCpu> ooo_;
    std::unique_ptr<SimpleCpu> simple_;
};

class Chip
{
  public:
    /** @p prog must outlive the chip (the builder owns both). */
    Chip(const Program &prog, const ChipConfig &cfg);
    ~Chip();
    Chip(const Chip &) = delete;
    Chip &operator=(const Chip &) = delete;

    const Program &program() const { return prog_; }
    const ChipConfig &config() const { return cfg_; }
    int numCores() const { return static_cast<int>(cores_.size()); }

    MainMemory &mem() { return mem_; }
    ChipInterconnect &bus() { return bus_; }
    ChipCore &core(int i) { return *cores_[static_cast<std::size_t>(i)]; }

    /** Result of a free chip run. */
    struct RunAllResult
    {
        bool allHalted = false;
        std::uint64_t retired = 0;    ///< sum over cores
    };

    /**
     * Free-run the chip: every core executes the chip's program on its
     * complex pipeline in @p window-cycle synchronization quanta until
     * every core halts or @p maxCycles is exhausted. Cores the caller
     * never touched are built (and resetForTask) on first use here.
     *
     * Multi-core chips run each quantum's cores over the process-wide
     * worker pool with the interconnect in epoch-buffered mode, and
     * merge per-core trace rings at every quantum barrier by
     * (cycle, core id): the result — stats, traces, RunAllResult — is
     * bit-identical for any VISA_THREADS setting. A single-core chip
     * takes the historical serial path untouched. Only the cycles the
     * cores actually consume are charged against @p maxCycles (a
     * quantum in which every live core halts early charges the longest
     * actual run, not the whole window), and halted cores leave the
     * schedule instead of being re-scanned every quantum.
     */
    RunAllResult runAll(Cycles maxCycles, Cycles window = 4096);

    /** Bus counters as a "chip.bus" stats group. */
    void buildStats(StatSet &set) const;

    /**
     * Transfer ownership of the program (and the workload it came
     * from, if any) into the chip. The ctor's @p prog reference must
     * point at @p prog's heap object (SimBuilder guarantees this).
     */
    void
    adoptProgram(std::unique_ptr<Program> prog,
                 std::unique_ptr<Workload> workload)
    {
        ownedProg_ = std::move(prog);
        workload_ = std::move(workload);
    }
    /** The built workload, or nullptr unless one was adopted. */
    const Workload *workload() const { return workload_.get(); }

  private:
    friend class ChipCore;

    // Ownership slots first: cores (whose CPUs reference the program)
    // are destroyed before the program they run.
    std::unique_ptr<Program> ownedProg_;
    std::unique_ptr<Workload> workload_;
    const Program &prog_;
    ChipConfig cfg_;
    MainMemory mem_;
    ChipInterconnect bus_;
    std::vector<std::unique_ptr<ChipCore>> cores_;
};

} // namespace chip
} // namespace visa

#endif // VISA_CHIP_CHIP_HH
