/**
 * @file
 * FlexStep-style paired-core redundant execution: a spare core
 * re-executes a sub-task in simple mode and the two final
 * architectural states are voted at the sub-task boundary. Unlike the
 * per-instruction lockstep checker (verify/lockstep.hh), the paired
 * detector compares only once — registers, memory image, platform
 * checksum and console — which is what a real spare core can afford:
 * no per-record stream crosses the chip, just the boundary state.
 *
 * Each core of the pair owns a private memory image (redundant
 * spatial execution): the victim's corrupted stores must not leak
 * into the spare's input state, exactly as on a chip where the pair
 * runs in split mode with separate allocations.
 *
 * The victim is the complex pipeline with a FaultPort attached (the
 * same seam visa-fuzz --inject drives); the spare is the simple
 * pipeline, which takes no faults by design. Detection fires on any
 * final-state mismatch, on a victim trap, or on the victim failing to
 * reach the boundary inside the cycle budget (the spare's completion
 * plus the budget is the pair's deadline).
 */

#ifndef VISA_CHIP_PAIRED_HH
#define VISA_CHIP_PAIRED_HH

#include <cstdint>
#include <string>

#include "cpu/fault_port.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace visa
{
namespace chip
{

struct PairedCheckResult
{
    /** The vote failed: the pair disagrees (or the victim trapped or
     *  overran the budget). */
    bool detected = false;
    bool victimTrapped = false;
    bool victimTimedOut = false;
    std::uint64_t victimRetired = 0;
    std::uint64_t spareRetired = 0;
    /** First mismatch per state class, human-readable (empty if the
     *  vote passed). */
    std::string report;
};

/**
 * Run @p prog on the victim/spare pair and vote the final states.
 * @p victimPort is attached to the victim's complex pipeline (null =
 * fault-free control run); @p maxCycles bounds both executions.
 */
PairedCheckResult runPairedCheck(const Program &prog,
                                 FaultPort *victimPort,
                                 std::uint64_t maxCycles);

} // namespace chip
} // namespace visa

#endif // VISA_CHIP_PAIRED_HH
