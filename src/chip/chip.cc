#include "chip/chip.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/trace.hh"

namespace visa
{
namespace chip
{

ChipCore::ChipCore(Chip &chip, int id)
    : chip_(chip), id_(id), memctrl_(chip.cfg_.memctrl)
{
    if (chip.cfg_.attachBus && chip.cfg_.cores > 1)
        memctrl_.attachBus(&chip.bus_, id);
    if (chip.cfg_.cores > 1) {
        // SPMD replica (see the file comment): every core of a
        // multi-core chip free-runs its own image of the program, so
        // concurrent core threads never touch shared functional state.
        privMem_ = std::make_unique<MainMemory>();
        privMem_->loadProgram(chip.prog_);
    }
}

MainMemory &
ChipCore::mem()
{
    return privMem_ ? *privMem_ : chip_.mem_;
}

OooCpu &
ChipCore::makeOoo()
{
    if (ooo_)
        fatal("ChipCore %d: complex pipeline already built", id_);
    ooo_ = std::make_unique<OooCpu>(chip_.prog_, mem(), platform_,
                                    memctrl_);
    return *ooo_;
}

SimpleCpu &
ChipCore::makeSimple()
{
    if (simple_)
        fatal("ChipCore %d: simple pipeline already built", id_);
    simple_ = std::make_unique<SimpleCpu>(chip_.prog_, mem(), platform_,
                                          memctrl_);
    return *simple_;
}

OooCpu &
ChipCore::ooo()
{
    if (!ooo_)
        makeOoo().resetForTask();
    return *ooo_;
}

SimpleCpu &
ChipCore::simple()
{
    if (!simple_)
        makeSimple().resetForTask();
    return *simple_;
}

Chip::Chip(const Program &prog, const ChipConfig &cfg)
    : prog_(prog), cfg_(cfg), bus_(cfg.cores < 1 ? 1 : cfg.cores, cfg.bus)
{
    if (cfg.cores < 1)
        fatal("Chip: need at least one core (got %d)", cfg.cores);
    mem_.loadProgram(prog);
    cores_.reserve(static_cast<std::size_t>(cfg.cores));
    for (int i = 0; i < cfg.cores; ++i)
        cores_.emplace_back(new ChipCore(*this, i));
}

Chip::~Chip() = default;

Chip::RunAllResult
Chip::runAll(Cycles maxCycles, Cycles window)
{
    if (window < 1)
        window = 1;
    RunAllResult res;

    if (cores_.size() == 1) {
        // The historical single-core fast path: one pipeline, no
        // epochs, no per-core trace rings (events flow straight into
        // the caller's tracer, unstamped — byte-compatible with the
        // pre-chip rig).
        OooCpu &cpu = core(0).ooo();
        Cycles spent = 0;
        bool halted = false;
        while (!halted && spent < maxCycles) {
            const Cycles budget =
                std::min<Cycles>(window, maxCycles - spent);
            const Cycles before = cpu.cycles();
            halted = cpu.run(budget).reason == StopReason::Halted;
            // Charge what actually ran: a mid-window halt must not
            // burn the rest of the window's budget.
            spent += std::min<Cycles>(budget, cpu.cycles() - before);
        }
        res.allHalted = halted;
        res.retired = cpu.retired();
        return res;
    }

    // Multi-core: build every core up front (construction is not
    // thread-safe), then free-run them in window-cycle quanta over the
    // worker pool with the bus in epoch-buffered mode. Within a
    // quantum each core sees only the epoch-frozen bus snapshot plus
    // its own requests, so the interleaving of host threads is
    // unobservable; the barrier drain orders all requests by
    // (ns, core id).
    for (std::size_t i = 0; i < cores_.size(); ++i)
        core(static_cast<int>(i)).ooo();

    Tracer *const tr = currentTracer();
    std::vector<Tracer> rings;
    if (tr) {
        rings.reserve(cores_.size());
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            rings.emplace_back(tr->capacity());
            rings.back().setKindMask(tr->kindMask());
            rings.back().setCoreId(static_cast<int>(i));
        }
    }

    std::vector<std::size_t> live(cores_.size());
    for (std::size_t i = 0; i < live.size(); ++i)
        live[i] = i;
    Cycles spent = 0;
    while (!live.empty() && spent < maxCycles) {
        const Cycles budget = std::min<Cycles>(window, maxCycles - spent);
        std::vector<Cycles> used(live.size(), 0);
        std::vector<char> halted(live.size(), 0);
        bus_.beginEpoch();
        parallelFor(live.size(), [&](std::size_t k) {
            OooCpu &cpu = core(static_cast<int>(live[k])).ooo();
            Tracer *const ring = tr ? &rings[live[k]] : nullptr;
            Tracer *const prev = ring ? installTracer(ring) : nullptr;
            const Cycles before = cpu.cycles();
            halted[k] = cpu.run(budget).reason == StopReason::Halted;
            used[k] = cpu.cycles() - before;
            if (ring)
                installTracer(prev);
        });
        bus_.drainEpoch();
        if (tr)
            Tracer::mergeInto(*tr, rings);
        // Charge the longest actual run: when every live core halts
        // mid-window this is less than the budget (the satellite fix);
        // when any core ran out of budget it equals the budget.
        Cycles maxUsed = 0;
        for (std::size_t k = 0; k < live.size(); ++k)
            maxUsed = std::max(maxUsed, used[k]);
        spent += std::min<Cycles>(budget, std::max<Cycles>(maxUsed, 1));
        // Halted cores leave the schedule.
        std::vector<std::size_t> still;
        still.reserve(live.size());
        for (std::size_t k = 0; k < live.size(); ++k)
            if (!halted[k])
                still.push_back(live[k]);
        live.swap(still);
    }
    res.allHalted = live.empty();
    for (const auto &c : cores_)
        if (c->hasOoo())
            res.retired += c->ooo_->retired();
    return res;
}

void
Chip::buildStats(StatSet &set) const
{
    StatGroup &g = set.group("chip.bus");
    g.scalar("requests", "misses routed over the shared bus")
        .set(bus_.requests());
    g.scalar("l2_hits", "shared-L2 tag hits").set(bus_.l2Hits());
    g.scalar("bank_conflicts", "requests that waited on a busy bank")
        .set(bus_.bankConflicts());
    g.scalar("mshr_stalls", "requests that waited for a chip MSHR")
        .set(bus_.mshrStalls());
    g.scalar("bank_wait_ns", "total queueing delay behind busy banks, ns")
        .set(static_cast<std::uint64_t>(bus_.bankWaitNs()));
    g.scalar("mshr_wait_ns",
             "total stall waiting for a free chip MSHR, ns")
        .set(static_cast<std::uint64_t>(bus_.mshrWaitNs()));
}

} // namespace chip
} // namespace visa
