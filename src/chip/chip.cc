#include "chip/chip.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace visa
{
namespace chip
{

ChipCore::ChipCore(Chip &chip, int id)
    : chip_(chip), id_(id), memctrl_(chip.cfg_.memctrl)
{
    if (chip.cfg_.attachBus && chip.cfg_.cores > 1)
        memctrl_.attachBus(&chip.bus_, id);
}

OooCpu &
ChipCore::makeOoo()
{
    if (ooo_)
        fatal("ChipCore %d: complex pipeline already built", id_);
    ooo_ = std::make_unique<OooCpu>(chip_.prog_, chip_.mem_, platform_,
                                    memctrl_);
    return *ooo_;
}

SimpleCpu &
ChipCore::makeSimple()
{
    if (simple_)
        fatal("ChipCore %d: simple pipeline already built", id_);
    simple_ = std::make_unique<SimpleCpu>(chip_.prog_, chip_.mem_,
                                          platform_, memctrl_);
    return *simple_;
}

OooCpu &
ChipCore::ooo()
{
    if (!ooo_)
        makeOoo().resetForTask();
    return *ooo_;
}

SimpleCpu &
ChipCore::simple()
{
    if (!simple_)
        makeSimple().resetForTask();
    return *simple_;
}

Chip::Chip(const Program &prog, const ChipConfig &cfg)
    : prog_(prog), cfg_(cfg), bus_(cfg.cores < 1 ? 1 : cfg.cores, cfg.bus)
{
    if (cfg.cores < 1)
        fatal("Chip: need at least one core (got %d)", cfg.cores);
    mem_.loadProgram(prog);
    cores_.reserve(static_cast<std::size_t>(cfg.cores));
    for (int i = 0; i < cfg.cores; ++i)
        cores_.emplace_back(new ChipCore(*this, i));
}

Chip::~Chip() = default;

Chip::RunAllResult
Chip::runAll(Cycles maxCycles, Cycles window)
{
    if (window < 1)
        window = 1;
    std::vector<bool> done(cores_.size(), false);
    Cycles spent = 0;
    bool all = false;
    while (!all && spent < maxCycles) {
        const Cycles budget = std::min<Cycles>(window, maxCycles - spent);
        all = true;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (done[i])
                continue;
            OooCpu &cpu = core(static_cast<int>(i)).ooo();
            if (cpu.run(budget).reason == StopReason::Halted)
                done[i] = true;
            else
                all = false;
        }
        spent += budget;
    }
    RunAllResult res;
    res.allHalted = all;
    for (const auto &c : cores_)
        if (c->hasOoo())
            res.retired += c->ooo_->retired();
    return res;
}

void
Chip::buildStats(StatSet &set) const
{
    StatGroup &g = set.group("chip.bus");
    g.scalar("requests", "misses routed over the shared bus")
        .set(bus_.requests());
    g.scalar("l2_hits", "shared-L2 tag hits").set(bus_.l2Hits());
    g.scalar("bank_conflicts", "requests that waited on a busy bank")
        .set(bus_.bankConflicts());
    g.scalar("mshr_stalls", "requests that waited for a chip MSHR")
        .set(bus_.mshrStalls());
    g.scalar("bank_wait_ns", "total queueing delay behind busy banks, ns")
        .set(static_cast<std::uint64_t>(bus_.bankWaitNs()));
    g.scalar("mshr_wait_ns",
             "total stall waiting for a free chip MSHR, ns")
        .set(static_cast<std::uint64_t>(bus_.mshrWaitNs()));
}

} // namespace chip
} // namespace visa
