#include "chip/paired.hh"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/trace.hh"

namespace visa
{
namespace chip
{
namespace
{

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

std::uint64_t
fpBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

/** One side of the pair: a private rig around one pipeline. */
template <typename CpuT>
struct CoreRig
{
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    std::unique_ptr<CpuT> cpu;

    explicit CoreRig(const Program &prog)
    {
        mem.loadProgram(prog);
        cpu = std::make_unique<CpuT>(prog, mem, platform, memctrl);
        cpu->resetForTask();
    }
};

} // anonymous namespace

PairedCheckResult
runPairedCheck(const Program &prog, FaultPort *victimPort,
               std::uint64_t maxCycles)
{
    PairedCheckResult res;

    // The two arms are fully private rigs, so they can run on
    // concurrent workers (nested fine inside a campaign's own
    // parallelFor arm — the pool lets arms claim indices on their own
    // stack). Only with a tracer installed do they stay serial: two
    // arms must not interleave one ring, and a detector check is a
    // rare, traced-for-debugging path, not the campaign hot loop.
    CoreRig<SimpleCpu> spare(prog);
    CoreRig<OooCpu> victim(prog);
    victim.cpu->setFaultPort(victimPort);
    bool trapped = false;
    const auto arm = [&](std::size_t i) {
        if (i == 0) {
            spare.cpu->run(maxCycles);
            return;
        }
        try {
            victim.cpu->run(maxCycles);
        } catch (const std::exception &) {
            // A corrupted pc/operand drove the pipeline into a panic
            // (unmapped fetch, malformed instruction): the spare's
            // clean completion against a dead victim is an immediate
            // detection.
            trapped = true;
        }
    };
    if (currentTracer()) {
        arm(0);
        arm(1);
    } else {
        parallelFor(2, arm);
    }
    res.spareRetired = spare.cpu->retired();
    if (trapped) {
        res.victimTrapped = true;
        res.detected = true;
        res.report = "victim trapped before the boundary\n";
        return res;
    }
    res.victimRetired = victim.cpu->retired();

    if (!victim.cpu->halted()) {
        // The boundary deadline passed (the spare finished inside the
        // same budget): a wedged or looping victim is a detection.
        res.victimTimedOut = true;
        res.detected = true;
        res.report = "victim missed the boundary deadline\n";
        return res;
    }

    std::string &report = res.report;
    const ArchState &v = victim.cpu->arch();
    const ArchState &s = spare.cpu->arch();
    if (v.pc != s.pc)
        appendf(report, "pc: victim=0x%08X spare=0x%08X\n", v.pc, s.pc);
    // r1 is the assembler scratch (`at`): workload boundary snippets
    // load the MMIO cycle counter through it for AET reporting, and
    // cycle counts legitimately differ between the complex victim and
    // the simple spare — timing state, not functional state. Faults
    // that corrupt r1 with functional consequences still surface in
    // the memory / checksum / console votes below.
    for (int r = 0; r < numIntRegs; ++r)
        if (r != 1 && v.readInt(r) != s.readInt(r)) {
            appendf(report, "r%d: victim=0x%08X spare=0x%08X\n", r,
                    v.readInt(r), s.readInt(r));
            break;    // one sample per state class keeps reports small
        }
    for (int f = 0; f < numFpRegs; ++f)
        if (fpBits(v.fpRegs[f]) != fpBits(s.fpRegs[f])) {
            appendf(report, "f%d: bits differ\n", f);
            break;
        }
    if (v.fcc != s.fcc)
        appendf(report, "fcc: victim=%d spare=%d\n", v.fcc, s.fcc);

    static const std::uint8_t zeros[4096] = {};
    std::vector<Addr> bases = spare.mem.pageBases();
    for (Addr base : victim.mem.pageBases())
        if (!spare.mem.peekPage(base))
            bases.push_back(base);
    for (Addr base : bases) {
        const std::uint8_t *pv = victim.mem.peekPage(base);
        const std::uint8_t *ps = spare.mem.peekPage(base);
        if (!pv)
            pv = zeros;
        if (!ps)
            ps = zeros;
        if (std::memcmp(pv, ps,
                        static_cast<std::size_t>(
                            MainMemory::pageBytes())) != 0) {
            appendf(report, "memory page 0x%08X differs\n", base);
            break;
        }
    }

    if (victim.platform.lastChecksum() != spare.platform.lastChecksum() ||
        victim.platform.checksumReported() !=
            spare.platform.checksumReported())
        appendf(report, "checksum: victim=0x%08X(%d) spare=0x%08X(%d)\n",
                victim.platform.lastChecksum(),
                victim.platform.checksumReported(),
                spare.platform.lastChecksum(),
                spare.platform.checksumReported());
    if (victim.platform.consoleOutput() != spare.platform.consoleOutput())
        appendf(report, "console output differs\n");

    res.detected = !report.empty();
    return res;
}

} // namespace chip
} // namespace visa
