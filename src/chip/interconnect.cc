#include "chip/interconnect.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace visa
{
namespace chip
{

ChipInterconnect::ChipInterconnect(int cores, const ChipBusParams &params)
    : params_(params), l2_(params.l2)
{
    if (cores < 1)
        fatal("ChipInterconnect: need at least one core (got %d)", cores);
    if (params_.banks < 1)
        fatal("ChipInterconnect: need at least one bank (got %d)",
              params_.banks);
    clocks_.resize(static_cast<std::size_t>(cores));
    lanes_.resize(static_cast<std::size_t>(cores));
    bankFreeNs_.assign(static_cast<std::size_t>(params_.banks), 0.0);
}

double
ChipInterconnect::advanceClock(int core, Cycles now, MHz f)
{
    CoreClock &ck = clocks_[static_cast<std::size_t>(core)];
    // Advance the core's shared-timeline position. Frequency changes
    // between two misses attribute the whole gap to the frequency of
    // the later call; the scheduler's per-dispatch syncCore() bounds
    // the resulting drift to one quantum.
    if (now > ck.lastCycle)
        ck.ns += static_cast<double>(now - ck.lastCycle) * 1000.0 /
                 static_cast<double>(f);
    ck.lastCycle = now;
    return ck.ns;
}

double
ChipInterconnect::replay(double reqNs, Addr addr)
{
    // Retire fills that completed before this request arrived.
    auto drained = std::upper_bound(fills_.begin(), fills_.end(), reqNs);
    fills_.erase(fills_.begin(), drained);

    // Chip MSHR pool: a full pool blocks the request until the
    // earliest outstanding fill frees its entry.
    double startNs = reqNs;
    while (static_cast<int>(fills_.size()) >= params_.mshrs) {
        startNs = std::max(startNs, fills_.front());
        fills_.erase(fills_.begin());
        ++mshrStalls_;
    }
    mshrWaitNs_ += startNs - reqNs;

    // Bank arbitration: the block's bank serializes requests at
    // busOccupancyNs apiece.
    const Addr block = addr >> l2_.blockShift();
    const std::size_t bank =
        static_cast<std::size_t>(block % static_cast<Addr>(params_.banks));
    const double grantNs = std::max(startNs, bankFreeNs_[bank]);
    if (grantNs > startNs)
        ++bankConflicts_;
    bankWaitNs_ += grantNs - startNs;
    bankFreeNs_[bank] = grantNs + params_.busOccupancyNs;

    // Shared L2 lookup (tag-only, allocate on miss).
    const bool hit = l2_.access(addr, false);
    const double fillNs =
        grantNs + (hit ? params_.l2HitNs : params_.memAccessNs);
    fills_.insert(std::upper_bound(fills_.begin(), fills_.end(), fillNs),
                  fillNs);

    ++requests_;
    if (hit)
        ++l2Hits_;
    return fillNs;
}

double
ChipInterconnect::laneRoute(EpochLane &lane, double reqNs, Addr addr)
{
    // The same MSHR -> bank -> L2 pipeline as replay(), but against
    // the lane's private snapshot-plus-own-traffic view, and counting
    // nothing: the drain's replay is the single source of stats, so
    // totals are independent of the epoch structure's thread layout.
    auto drained =
        std::upper_bound(lane.fills.begin(), lane.fills.end(), reqNs);
    lane.fills.erase(lane.fills.begin(), drained);

    double startNs = reqNs;
    while (static_cast<int>(lane.fills.size()) >= params_.mshrs) {
        startNs = std::max(startNs, lane.fills.front());
        lane.fills.erase(lane.fills.begin());
    }

    const Addr block = addr >> l2_.blockShift();
    const std::size_t bank =
        static_cast<std::size_t>(block % static_cast<Addr>(params_.banks));
    const double grantNs = std::max(startNs, lane.bankFree[bank]);
    lane.bankFree[bank] = grantNs + params_.busOccupancyNs;

    // L2 view: the epoch-frozen tags (probe() is a read-only scan, so
    // concurrent lanes share them safely) plus this core's own fills.
    bool hit = l2_.probe(addr);
    if (!hit)
        hit = std::find(lane.filledBlocks.begin(),
                        lane.filledBlocks.end(),
                        block) != lane.filledBlocks.end();
    if (!hit)
        lane.filledBlocks.push_back(block);
    const double fillNs =
        grantNs + (hit ? params_.l2HitNs : params_.memAccessNs);
    lane.fills.insert(std::upper_bound(lane.fills.begin(),
                                       lane.fills.end(), fillNs),
                      fillNs);
    return fillNs;
}

Cycles
ChipInterconnect::route(int core, Cycles now, MHz f, Addr addr)
{
    const double reqNs = advanceClock(core, now, f);

    double fillNs;
    if (epochActive_) {
        EpochLane &lane = lanes_[static_cast<std::size_t>(core)];
        lane.reqNs.push_back(reqNs);
        lane.addrs.push_back(addr);
        fillNs = laneRoute(lane, reqNs, addr);
    } else {
        fillNs = replay(reqNs, addr);
    }

    // Back to the core's cycle domain: the fill lands ceil(delay * f)
    // core cycles after issue (at least the L2 hit time, so a routed
    // miss is never cheaper than one bus round trip).
    const double delayNs = fillNs - reqNs;
    const auto delayCycles = static_cast<Cycles>(
        std::ceil(delayNs * static_cast<double>(f) / 1000.0));
    return now + std::max<Cycles>(delayCycles, 1);
}

void
ChipInterconnect::syncCore(int core, double wallNs, Cycles coreCycle)
{
    CoreClock &ck = clocks_[static_cast<std::size_t>(core)];
    ck.ns = wallNs;
    ck.lastCycle = coreCycle;
}

void
ChipInterconnect::beginEpoch()
{
    if (epochActive_)
        fatal("ChipInterconnect: beginEpoch() inside an open epoch");
    epochActive_ = true;
    for (EpochLane &lane : lanes_) {
        lane.reqNs.clear();
        lane.addrs.clear();
        lane.filledBlocks.clear();
        lane.fills = fills_;
        lane.bankFree = bankFreeNs_;
    }
}

void
ChipInterconnect::drainEpoch()
{
    if (!epochActive_)
        fatal("ChipInterconnect: drainEpoch() without beginEpoch()");
    epochActive_ = false;
    // K-way merge of the per-core streams (each already ascending in
    // request ns) keyed by (request ns, core id): the replay order —
    // and with it every counter and every future epoch's snapshot — is
    // a pure function of the request streams.
    std::vector<std::size_t> idx(lanes_.size(), 0);
    for (;;) {
        int pick = -1;
        double pickNs = 0.0;
        for (std::size_t c = 0; c < lanes_.size(); ++c) {
            const EpochLane &lane = lanes_[c];
            if (idx[c] >= lane.reqNs.size())
                continue;
            const double ns = lane.reqNs[idx[c]];
            if (pick < 0 || ns < pickNs) {
                pick = static_cast<int>(c);
                pickNs = ns;
            }
        }
        if (pick < 0)
            break;
        EpochLane &lane = lanes_[static_cast<std::size_t>(pick)];
        replay(pickNs, lane.addrs[idx[static_cast<std::size_t>(pick)]]);
        ++idx[static_cast<std::size_t>(pick)];
    }
    for (EpochLane &lane : lanes_) {
        lane.reqNs.clear();
        lane.addrs.clear();
        lane.filledBlocks.clear();
        lane.fills.clear();
        lane.bankFree.clear();
    }
}

void
ChipInterconnect::reset()
{
    for (CoreClock &ck : clocks_)
        ck = CoreClock{};
    std::fill(bankFreeNs_.begin(), bankFreeNs_.end(), 0.0);
    fills_.clear();
    for (EpochLane &lane : lanes_) {
        lane.reqNs.clear();
        lane.addrs.clear();
        lane.filledBlocks.clear();
        lane.fills.clear();
        lane.bankFree.clear();
    }
    epochActive_ = false;
    l2_.flush();
    l2_.resetStats();
    requests_ = 0;
    l2Hits_ = 0;
    bankConflicts_ = 0;
    mshrStalls_ = 0;
    bankWaitNs_ = 0.0;
    mshrWaitNs_ = 0.0;
}

} // namespace chip
} // namespace visa
