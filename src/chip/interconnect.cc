#include "chip/interconnect.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace visa
{
namespace chip
{

ChipInterconnect::ChipInterconnect(int cores, const ChipBusParams &params)
    : params_(params), l2_(params.l2)
{
    if (cores < 1)
        fatal("ChipInterconnect: need at least one core (got %d)", cores);
    if (params_.banks < 1)
        fatal("ChipInterconnect: need at least one bank (got %d)",
              params_.banks);
    clocks_.resize(static_cast<std::size_t>(cores));
    bankFreeNs_.assign(static_cast<std::size_t>(params_.banks), 0.0);
}

Cycles
ChipInterconnect::route(int core, Cycles now, MHz f, Addr addr)
{
    CoreClock &ck = clocks_[static_cast<std::size_t>(core)];
    // Advance the core's shared-timeline position. Frequency changes
    // between two misses attribute the whole gap to the frequency of
    // the later call; the scheduler's per-dispatch syncCore() bounds
    // the resulting drift to one quantum.
    if (now > ck.lastCycle)
        ck.ns += static_cast<double>(now - ck.lastCycle) * 1000.0 /
                 static_cast<double>(f);
    ck.lastCycle = now;
    const double reqNs = ck.ns;

    // Retire fills that completed before this request arrived.
    auto drained = std::upper_bound(fills_.begin(), fills_.end(), reqNs);
    fills_.erase(fills_.begin(), drained);

    // Chip MSHR pool: a full pool blocks the request until the
    // earliest outstanding fill frees its entry.
    double startNs = reqNs;
    while (static_cast<int>(fills_.size()) >= params_.mshrs) {
        startNs = std::max(startNs, fills_.front());
        fills_.erase(fills_.begin());
        ++mshrStalls_;
    }
    mshrWaitNs_ += startNs - reqNs;

    // Bank arbitration: the block's bank serializes requests at
    // busOccupancyNs apiece.
    const Addr block = addr >> l2_.blockShift();
    const std::size_t bank =
        static_cast<std::size_t>(block % static_cast<Addr>(params_.banks));
    const double grantNs = std::max(startNs, bankFreeNs_[bank]);
    if (grantNs > startNs)
        ++bankConflicts_;
    bankWaitNs_ += grantNs - startNs;
    bankFreeNs_[bank] = grantNs + params_.busOccupancyNs;

    // Shared L2 lookup (tag-only, allocate on miss).
    const bool hit = l2_.access(addr, false);
    const double fillNs =
        grantNs + (hit ? params_.l2HitNs : params_.memAccessNs);
    fills_.insert(std::upper_bound(fills_.begin(), fills_.end(), fillNs),
                  fillNs);

    ++requests_;
    if (hit)
        ++l2Hits_;

    // Back to the core's cycle domain: the fill lands ceil(delay * f)
    // core cycles after issue (at least the L2 hit time, so a routed
    // miss is never cheaper than one bus round trip).
    const double delayNs = fillNs - reqNs;
    const auto delayCycles = static_cast<Cycles>(
        std::ceil(delayNs * static_cast<double>(f) / 1000.0));
    return now + std::max<Cycles>(delayCycles, 1);
}

void
ChipInterconnect::syncCore(int core, double wallNs, Cycles coreCycle)
{
    CoreClock &ck = clocks_[static_cast<std::size_t>(core)];
    ck.ns = wallNs;
    ck.lastCycle = coreCycle;
}

void
ChipInterconnect::reset()
{
    for (CoreClock &ck : clocks_)
        ck = CoreClock{};
    std::fill(bankFreeNs_.begin(), bankFreeNs_.end(), 0.0);
    fills_.clear();
    l2_.flush();
    l2_.resetStats();
    requests_ = 0;
    l2Hits_ = 0;
    bankConflicts_ = 0;
    mshrStalls_ = 0;
    bankWaitNs_ = 0.0;
    mshrWaitNs_ = 0.0;
}

} // namespace chip
} // namespace visa
