/**
 * @file
 * The chip-level shared memory system: a banked bus in front of a
 * shared tag-only L2 and one chip-wide pool of outstanding fills
 * (MSHRs), ticked on a single nanosecond timeline. Per-core
 * MemControllers attach through the ChipBusPort seam (mem/memctrl.hh);
 * only complex-mode D-side misses are routed here. Simple-mode and
 * simple-fixed traffic keeps the static Table-1 penalty — it occupies
 * a reserved TDM lane of the bus by construction — so the VISA
 * watchdog budgets derived from the single-core bound stay valid on
 * the chip, and the dynamic contention modeled here is charged to the
 * complex pipeline only, where the paper already gave up on bounds.
 *
 * Time base: each attached core advances its own (cycle, ns) clock on
 * every routed miss using the frequency of that call; the multi-core
 * scheduler re-anchors the per-core clocks to the shared wall at every
 * dispatch boundary (syncCore), which bounds cross-domain drift to one
 * scheduling quantum. All contention state (bank free times, fill
 * completion times) lives in nanoseconds, so cores at different DVS
 * operating points contend on one timeline.
 *
 * Execution modes (PR 10):
 *
 *  - synchronous (the default): route() charges the request against
 *    the shared state immediately. Correct whenever one host thread
 *    drives all cores in timestamp order (the single-core rig, the
 *    serial G-EDF engine, unit tests).
 *
 *  - epoch-buffered (between beginEpoch() and drainEpoch()): each
 *    core's route() calls see a private lane — a snapshot of the
 *    shared bank/MSHR/L2 state frozen at the epoch boundary plus the
 *    core's own in-epoch requests — and buffer the request instead of
 *    touching shared state. drainEpoch() then replays every buffered
 *    request against the authoritative state in (request ns, core id)
 *    order. Because a core's observed latency is a pure function of
 *    the frozen snapshot and its own request stream, the lanes can be
 *    driven from concurrent host threads and the run is bit-identical
 *    no matter how many threads execute it; cross-core contention
 *    lands in the shared counters (and in later epochs' snapshots)
 *    with at most one epoch of lag — the same drift concession the
 *    per-dispatch clock anchoring already makes.
 */

#ifndef VISA_CHIP_INTERCONNECT_HH
#define VISA_CHIP_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "mem/cache.hh"
#include "mem/memctrl.hh"
#include "sim/types.hh"

namespace visa
{
namespace chip
{

/** Geometry and timing of the shared bus + L2. */
struct ChipBusParams
{
    /** Bus banks; a block maps to bank (blockAddr % banks). */
    int banks = 4;
    /** Per-request bank occupancy, ns (the contention quantum). */
    double busOccupancyNs = 30.0;
    /** Shared-L2 hit latency, ns. */
    double l2HitNs = 20.0;
    /** L2-miss (main memory) latency, ns (Table 1). */
    double memAccessNs = 100.0;
    /** Chip-wide outstanding-fill cap (the shared MSHR pool). */
    int mshrs = 16;
    /** Shared L2 geometry (tag-only, like the L1s). */
    CacheParams l2 = {"l2", 512 * 1024, 8, 64, ReplPolicy::Lru};
};

/**
 * The shared banked bus + L2 + MSHR pool. Deterministic: state is a
 * pure function of the route()/syncCore() call sequence (synchronous
 * mode) or of the per-core request streams and the epoch boundaries
 * (epoch mode) — thread interleaving is unobservable in either.
 */
class ChipInterconnect final : public ChipBusPort
{
  public:
    explicit ChipInterconnect(int cores, const ChipBusParams &params = {});

    /**
     * Route one complex-mode miss (ChipBusPort). Applies, in order:
     * the chip MSHR pool (a full pool stalls the request until the
     * earliest outstanding fill completes), bank arbitration (the
     * block's bank must be free for busOccupancyNs), and the L2 lookup
     * (hit: l2HitNs, miss: memAccessNs beyond the grant). Inside an
     * epoch the same pipeline runs against the caller's private lane;
     * only the per-core clock and lane are touched, so concurrent
     * calls from different cores are race-free.
     */
    Cycles route(int core, Cycles now, MHz f, Addr addr) override;

    /**
     * Re-anchor @p core's clock: core-local cycle @p coreCycle is
     * declared to be at @p wallNs on the shared timeline. Called by
     * the scheduler at every dispatch boundary (and whenever a task
     * migrates onto @p core with its own cycle domain). Touches only
     * @p core's slot — safe from that core's epoch thread.
     */
    void syncCore(int core, double wallNs, Cycles coreCycle);

    /**
     * Enter epoch-buffered mode: freeze a per-core snapshot of the
     * bank/MSHR state (the L2 is snapshot by leaving it untouched —
     * lanes probe its tags read-only) and start buffering requests.
     */
    void beginEpoch();

    /**
     * Leave epoch mode: replay every buffered request against the
     * authoritative shared state in (request ns, core id) order,
     * counting all contention stats there. Must be called from one
     * thread after all cores' epoch work joined.
     */
    void drainEpoch();

    /** True between beginEpoch() and drainEpoch(). */
    bool epochActive() const { return epochActive_; }

    /** Forget all contention and L2 state (between campaigns). */
    void reset();

    int cores() const { return static_cast<int>(clocks_.size()); }
    const ChipBusParams &params() const { return params_; }
    Cache &l2() { return l2_; }

    /** The shared-timeline position of @p core, ns. */
    double coreNs(int core) const { return clocks_[core].ns; }

    std::uint64_t requests() const { return requests_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t bankConflicts() const { return bankConflicts_; }
    std::uint64_t mshrStalls() const { return mshrStalls_; }
    /** Total queueing delay behind busy banks, ns. */
    double bankWaitNs() const { return bankWaitNs_; }
    /** Total stall waiting for a free chip MSHR, ns. */
    double mshrWaitNs() const { return mshrWaitNs_; }

  private:
    /** Per-core (cycle, ns) anchor; advanced by route(), reset by
     *  syncCore(). */
    struct CoreClock
    {
        double ns = 0.0;
        Cycles lastCycle = 0;
    };

    /**
     * One core's private epoch view: the bank/MSHR state frozen at
     * beginEpoch() evolved by this core's own requests, plus the
     * buffered request stream for the drain. Thread-confined to the
     * core's host thread for the duration of the epoch.
     */
    struct EpochLane
    {
        std::vector<double> reqNs;       ///< buffered request times
        std::vector<Addr> addrs;         ///< buffered request addrs
        std::vector<double> fills;       ///< lane view of fills_
        std::vector<double> bankFree;    ///< lane view of bankFreeNs_
        /** Blocks this core filled into the L2 during the epoch (its
         *  own refills hit; other cores' land next epoch). */
        std::vector<Addr> filledBlocks;
    };

    /**
     * The shared-state pipeline of one request (MSHR pool -> bank
     * arbitration -> L2), mutating fills_/bankFreeNs_/l2_ and all
     * counters. @return the fill completion time, ns.
     */
    double replay(double reqNs, Addr addr);
    /** The same pipeline against @p lane's private view; counts
     *  nothing (the drain's replay owns the stats). */
    double laneRoute(EpochLane &lane, double reqNs, Addr addr);
    /** Advance @p core's clock to @p now at @p f; @return its ns. */
    double advanceClock(int core, Cycles now, MHz f);

    ChipBusParams params_;
    Cache l2_;
    std::vector<CoreClock> clocks_;
    std::vector<double> bankFreeNs_;
    /** Outstanding fill completion times, ns, ascending. */
    std::vector<double> fills_;
    std::vector<EpochLane> lanes_;
    bool epochActive_ = false;

    std::uint64_t requests_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t bankConflicts_ = 0;
    std::uint64_t mshrStalls_ = 0;
    double bankWaitNs_ = 0.0;
    double mshrWaitNs_ = 0.0;
};

} // namespace chip
} // namespace visa

#endif // VISA_CHIP_INTERCONNECT_HH
