/**
 * @file
 * Parameterized WCET metadata (paper §1.2): "Parameterized WCET
 * information for a task would be appended to the task's binary, and
 * the task will execute safely within any system that complies with
 * the VISA for which the WCET information was calculated (WCET would
 * be expressed in cycles for frequency scaling, divided into
 * components that scale and do not scale with frequency, and
 * parameterized in terms of worst-case memory latency since the
 * memory sub-system is outside the influence of processor design)."
 *
 * This module realizes that: each sub-task's WCET is decomposed into
 *   core cycles (scale with frequency)  +
 *   memory-stall events x ceil(mem_ns * f)  (memory-latency term),
 * fitted conservatively against the analyzer across the DVS range, and
 * serialized to a text section a deployment appends to the binary. A
 * VISA-compliant system with a *different* memory latency can then
 * instantiate safe WCETs without re-running the analyzer.
 */

#ifndef VISA_CORE_WCET_BINARY_HH
#define VISA_CORE_WCET_BINARY_HH

#include <string>
#include <vector>

#include "power/dvs.hh"
#include "wcet/analyzer.hh"

namespace visa
{

/** Frequency- and memory-latency-parameterized WCET of one task. */
class ParameterizedWcet
{
  public:
    /** One sub-task's decomposition. */
    struct Component
    {
        Cycles coreCycles = 0;         ///< scales with frequency
        std::uint64_t memEvents = 0;   ///< worst-case memory stalls
    };

    ParameterizedWcet() = default;

    /**
     * Fit the decomposition against the analyzer over every operating
     * point of @p dvs so that the parameterized bound dominates the
     * analyzer's bound at each sampled setting.
     */
    static ParameterizedWcet fit(const WcetAnalyzer &analyzer,
                                 const DvsTable &dvs,
                                 const DMissProfile *dmiss = nullptr);

    /**
     * WCET of sub-task @p k in cycles at @p f MHz on a VISA system
     * whose worst-case memory stall time is @p mem_ns.
     */
    Cycles subtaskCycles(int k, MHz f, double mem_ns) const;

    /** Whole-task WCET (sum over sub-tasks), cycles. */
    Cycles taskCycles(MHz f, double mem_ns) const;

    int numSubtasks() const
    {
        return static_cast<int>(components_.size());
    }

    const std::vector<Component> &components() const
    {
        return components_;
    }

    /** Worst-case memory stall time the fit was computed for, ns. */
    double nativeMemNs() const { return nativeMemNs_; }

    /** Serialize to the text section appended to a task binary. */
    std::string serialize() const;

    /** Parse a serialized section; fatal on malformed input. */
    static ParameterizedWcet deserialize(const std::string &text);

  private:
    std::vector<Component> components_;
    double nativeMemNs_ = 100.0;
};

} // namespace visa

#endif // VISA_CORE_WCET_BINARY_HH
