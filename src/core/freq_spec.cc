#include "core/freq_spec.hh"

namespace visa
{

namespace
{

/** Check EQ 4 for every misprediction point. */
bool
visaFeasible(const WcetTable &wcet, const PetEstimator &pet,
             MHz f_spec, MHz f_rec, double deadline_s, double ovhd_s,
             Cycles extra_cycles)
{
    const int s = wcet.numSubtasks();
    double pet_prefix =
        static_cast<double>(extra_cycles) / (f_spec * 1e6);
    for (int i = 0; i < s; ++i) {
        pet_prefix += pet.petSeconds(i, f_spec);
        double total =
            pet_prefix + ovhd_s + wcet.remainingSeconds(i, f_rec);
        if (total > deadline_s)
            return false;
    }
    return true;
}

/** Check EQ 2 for every misprediction point. */
bool
conventionalFeasible(const WcetTable &wcet, const PetEstimator &pet,
                     MHz f_spec, MHz f_rec, double deadline_s,
                     double ovhd_s, Cycles extra_cycles)
{
    const int s = wcet.numSubtasks();
    double pet_prefix =
        static_cast<double>(extra_cycles) / (f_spec * 1e6);
    for (int i = 0; i < s; ++i) {
        double total = pet_prefix + wcet.subtaskSeconds(i, f_spec) +
                       ovhd_s + wcet.remainingSeconds(i + 1, f_rec);
        if (total > deadline_s)
            return false;
        pet_prefix += pet.petSeconds(i, f_spec);
    }
    // Also require the fully-speculative schedule itself to fit.
    return pet_prefix <= deadline_s;
}

template <typename Feasible>
FreqPair
lowestPair(const DvsTable &dvs, Feasible feasible)
{
    for (const auto &spec : dvs.settings()) {
        for (const auto &rec : dvs.settings()) {
            if (rec.freq < spec.freq)
                continue;
            if (feasible(spec.freq, rec.freq))
                return {true, spec.freq, rec.freq};
        }
    }
    return {};
}

} // anonymous namespace

FreqPair
solveVisaSpeculation(const WcetTable &wcet, const PetEstimator &pet,
                     const DvsTable &dvs, double deadline_s,
                     double ovhd_s, Cycles overhead_cycles_at_fspec)
{
    return lowestPair(dvs, [&](MHz fs, MHz fr) {
        return visaFeasible(wcet, pet, fs, fr, deadline_s, ovhd_s,
                            overhead_cycles_at_fspec);
    });
}

FreqPair
solveRestartSpeculation(const WcetTable &wcet, const PetEstimator &pet,
                        const DvsTable &dvs, double deadline_s,
                        double ovhd_s, Cycles overhead_cycles_at_fspec,
                        Cycles restore_cycles)
{
    // EQ 4 with the snapshot-restore overhead folded into the fixed
    // per-recovery term: restore runs at f_rec, so its wall-clock cost
    // depends on the candidate pair and cannot be pre-added to ovhd_s.
    return lowestPair(dvs, [&](MHz fs, MHz fr) {
        const double restore_s =
            static_cast<double>(restore_cycles) / (fr * 1e6);
        return visaFeasible(wcet, pet, fs, fr, deadline_s,
                            ovhd_s + restore_s,
                            overhead_cycles_at_fspec);
    });
}

FreqPair
solveConventionalSpeculation(const WcetTable &wcet,
                             const PetEstimator &pet,
                             const DvsTable &dvs, double deadline_s,
                             double ovhd_s,
                             Cycles overhead_cycles_at_fspec)
{
    return lowestPair(dvs, [&](MHz fs, MHz fr) {
        return conventionalFeasible(wcet, pet, fs, fr, deadline_s,
                                    ovhd_s, overhead_cycles_at_fspec);
    });
}

MHz
solveStaticFrequency(const WcetTable &wcet, const DvsTable &dvs,
                     double deadline_s)
{
    for (const auto &s : dvs.settings())
        if (wcet.taskSeconds(s.freq) <= deadline_s)
            return s.freq;
    return 0;
}

} // namespace visa
