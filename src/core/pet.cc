#include "core/pet.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace visa
{

PetEstimator::PetEstimator(int num_subtasks, PetPolicy policy)
    : policy_(policy),
      history_(static_cast<std::size_t>(num_subtasks)),
      pets_(static_cast<std::size_t>(num_subtasks), 0)
{
    if (num_subtasks <= 0)
        fatal("pet: need at least one sub-task");
    if (policy.window <= 0)
        fatal("pet: history window must be positive");
}

void
PetEstimator::record(int k, std::uint64_t aet_cycles)
{
    auto &h = history_[static_cast<std::size_t>(k)];
    h.push_back(aet_cycles);
    while (static_cast<int>(h.size()) > policy_.window)
        h.pop_front();
}

void
PetEstimator::reevaluate()
{
    for (std::size_t k = 0; k < history_.size(); ++k) {
        const auto &h = history_[k];
        if (h.empty())
            continue;
        if (policy_.kind == PetPolicy::LastN) {
            pets_[k] = *std::max_element(h.begin(), h.end());
        } else {
            // Histogram: choose the smallest bucket boundary such
            // that at most targetMissRate of samples lie above it.
            std::vector<std::uint64_t> sorted(h.begin(), h.end());
            std::sort(sorted.begin(), sorted.end());
            auto allowed = static_cast<std::size_t>(std::floor(
                policy_.targetMissRate *
                static_cast<double>(sorted.size())));
            std::size_t idx = sorted.size() - 1 -
                              std::min(allowed, sorted.size() - 1);
            std::uint64_t v = sorted[idx];
            // Round up to the bucket boundary (histogram resolution).
            std::uint64_t b = policy_.bucketCycles;
            pets_[k] = (v + b - 1) / b * b;
        }
    }
}

std::uint64_t
PetEstimator::petCycles(int k) const
{
    return pets_[static_cast<std::size_t>(k)];
}

void
PetEstimator::seed(const std::vector<std::uint64_t> &pets)
{
    if (pets.size() != pets_.size())
        fatal("pet: seed size mismatch");
    pets_ = pets;
}

} // namespace visa
