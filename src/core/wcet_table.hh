/**
 * @file
 * Per-frequency, per-sub-task WCET tables. The analyzer's memory
 * stalls are specified in nanoseconds, so the cycle-level WCET differs
 * per DVS setting (paper §2.1: "there is a different WCET for each
 * frequency setting"); this table precomputes all of them.
 */

#ifndef VISA_CORE_WCET_TABLE_HH
#define VISA_CORE_WCET_TABLE_HH

#include <map>
#include <vector>

#include "power/dvs.hh"
#include "wcet/analyzer.hh"

namespace visa
{

/** WCET_{k,f} for every sub-task k and DVS setting f. */
class WcetTable
{
  public:
    /**
     * Run the analyzer at every operating point of @p dvs.
     * @param dmiss optional trace-based D-cache padding (§3.3)
     */
    WcetTable(const WcetAnalyzer &analyzer, const DvsTable &dvs,
              const DMissProfile *dmiss = nullptr);

    int numSubtasks() const { return numSubtasks_; }

    /** WCET of sub-task @p k (0-based) in cycles at @p f. */
    Cycles subtaskCycles(int k, MHz f) const;

    /** WCET of sub-task @p k in seconds at @p f. */
    double
    subtaskSeconds(int k, MHz f) const
    {
        return static_cast<double>(subtaskCycles(k, f)) / (f * 1e6);
    }

    /** Whole-task WCET in cycles at @p f (sum over sub-tasks). */
    Cycles taskCycles(MHz f) const;

    /** Whole-task WCET in seconds at @p f. */
    double
    taskSeconds(MHz f) const
    {
        return static_cast<double>(taskCycles(f)) / (f * 1e6);
    }

    /** Sum of sub-task WCET seconds for sub-tasks k..s-1 at @p f. */
    double remainingSeconds(int k, MHz f) const;

  private:
    const std::vector<Cycles> &row(MHz f) const;

    int numSubtasks_ = 0;
    std::map<MHz, std::vector<Cycles>> table_;
};

} // namespace visa

#endif // VISA_CORE_WCET_TABLE_HH
