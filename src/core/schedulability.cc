#include "core/schedulability.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace visa
{

double
utilization(const std::vector<PeriodicTask> &tasks)
{
    double u = 0.0;
    for (const auto &t : tasks) {
        if (t.period <= 0.0)
            fatal("schedulability: non-positive period");
        u += t.wcet / t.period;
    }
    return u;
}

double
rmUtilizationBound(int n)
{
    if (n <= 0)
        fatal("schedulability: need at least one task");
    return n * (std::pow(2.0, 1.0 / n) - 1.0);
}

bool
rmSchedulableByBound(const std::vector<PeriodicTask> &tasks)
{
    return utilization(tasks) <=
           rmUtilizationBound(static_cast<int>(tasks.size())) + 1e-12;
}

bool
rmResponseTimeFeasible(const std::vector<PeriodicTask> &tasks)
{
    std::vector<PeriodicTask> sorted = tasks;
    std::sort(sorted.begin(), sorted.end(),
              [](const PeriodicTask &a, const PeriodicTask &b) {
                  return a.period < b.period;
              });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        double r = sorted[i].wcet;
        for (int iter = 0; iter < 1000; ++iter) {
            double interference = 0.0;
            for (std::size_t j = 0; j < i; ++j) {
                interference += std::ceil(r / sorted[j].period) *
                                sorted[j].wcet;
            }
            double next = sorted[i].wcet + interference;
            if (next > sorted[i].period)
                return false;
            if (std::fabs(next - r) < 1e-12) {
                r = next;
                break;
            }
            r = next;
        }
        if (r > sorted[i].period)
            return false;
    }
    return true;
}

bool
edfSchedulable(const std::vector<PeriodicTask> &tasks)
{
    return utilization(tasks) <= 1.0 + 1e-12;
}

} // namespace visa
