/**
 * @file
 * The Virtual Simple Architecture specification (paper §3.1, Table 1).
 *
 * A VISA is the *timing contract* worst-case analysis is performed
 * against: a six-stage scalar in-order pipeline (fetch, decode,
 * register read, execute, memory, writeback) with
 *  - an instruction cache but no dynamic branch predictor; conditional
 *    branches follow the backward-taken/forward-not-taken heuristic,
 *    branch targets are cached with the branches (merged BTB/I-cache),
 *    and indirect-branch targets are not predicted (fetch stalls),
 *  - a four-cycle misprediction penalty / indirect stall (four stages
 *    between fetch and execute),
 *  - a single unpipelined universal function unit with MIPS R10K
 *    latencies,
 *  - a one-cycle load-use interlock,
 *  - the cache geometry and worst-case memory stall time of Table 1.
 *
 * Executable semantics of the contract live in cpu/visa_timing.hh
 * (the recurrence shared by the simple-fixed simulator, the complex
 * processor's simple mode, and the WCET analyzer); this header
 * aggregates the parameters so the three layers of §3 — VISA, timing
 * analyzer, processor — are configured from one place.
 */

#ifndef VISA_CORE_VISA_SPEC_HH
#define VISA_CORE_VISA_SPEC_HH

#include "mem/cache.hh"
#include "mem/memctrl.hh"
#include "wcet/analyzer.hh"

namespace visa
{

/** The VISA contract parameters (Table 1). */
struct VisaSpec
{
    /** Pipeline depth (fetch ... writeback). */
    int pipelineStages = 6;
    /** Stages between fetch and execute: the redirect penalty. */
    int mispredictPenalty = 4;
    /** L1 caches: 64 KB, 4-way, 64 B blocks, 1-cycle hits. */
    CacheParams icache{"icache", 64 * 1024, 4, 64};
    CacheParams dcache{"dcache", 64 * 1024, 4, 64};
    /** Worst-case memory stall time (ns, frequency-independent). */
    double memStallNs = 100.0;

    /** Analyzer parameters consistent with this contract. */
    AnalyzerParams
    analyzerParams() const
    {
        AnalyzerParams p;
        p.icache = icache;
        p.memStallNs = memStallNs;
        return p;
    }

    /** Memory-controller timing consistent with this contract. */
    MemCtrlParams
    memCtrlParams() const
    {
        MemCtrlParams p;
        p.accessNs = memStallNs;
        return p;
    }
};

} // namespace visa

#endif // VISA_CORE_VISA_SPEC_HH
