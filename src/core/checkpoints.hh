/**
 * @file
 * Checkpoint arithmetic (paper §2.1-2.2). Each sub-task i gets an
 * interim deadline
 *
 *   checkpoint_i = deadline - ovhd - sum_{k=i..s} WCET_{k,f_rec}   (EQ 1)
 *
 * — the latest time sub-task i-1 may still be running such that
 * switching to the safe configuration (simple mode at the recovery
 * frequency) still meets the final deadline even if *no* work of
 * sub-task i survives. The watchdog counter enforces checkpoints in
 * cycles at the executing (speculative) frequency: the first sub-task
 * arms it with floor(checkpoint_1 * f) cycles and each later sub-task
 * i adds floor((checkpoint_i - checkpoint_{i-1}) * f).
 */

#ifndef VISA_CORE_CHECKPOINTS_HH
#define VISA_CORE_CHECKPOINTS_HH

#include <vector>

#include "core/wcet_table.hh"

namespace visa
{

/** Checkpoint schedule for one task instance. */
struct CheckpointPlan
{
    /** checkpoint_i in seconds from task start (index 0 = sub-task 1). */
    std::vector<double> checkpoints;
    /**
     * Watchdog programming at the speculative frequency: increments[0]
     * arms the counter at the start of sub-task 1; increments[i] is
     * added at the start of sub-task i+1.
     */
    std::vector<std::int64_t> increments;
};

/**
 * Compute EQ 1 checkpoints and the watchdog increments.
 *
 * @param wcet         per-sub-task WCETs (for the safe configuration)
 * @param f_rec        recovery frequency used in EQ 1
 * @param f_spec       executing frequency (watchdog cycle conversion)
 * @param deadline_s   the task deadline, seconds from task start
 * @param ovhd_s       reconfiguration + frequency switch overhead
 *
 * Fails (FatalError) if any checkpoint is non-positive — the deadline
 * cannot be guaranteed with this {f_spec, f_rec} pair.
 */
/**
 * @param arm_delay_cycles cycles (at f_spec) elapsing between task
 *        release and the first snippet arming the watchdog (DVS
 *        software plus the snippet prologue); subtracted from the
 *        first watchdog increment so checkpoints stay anchored to the
 *        task release time.
 */
CheckpointPlan computeCheckpoints(const WcetTable &wcet, MHz f_rec,
                                  MHz f_spec, double deadline_s,
                                  double ovhd_s,
                                  Cycles arm_delay_cycles = 0);

} // namespace visa

#endif // VISA_CORE_CHECKPOINTS_HH
