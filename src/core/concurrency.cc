#include "core/concurrency.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace visa
{

SlackScheduler::SlackScheduler(DvsRuntime &rt, const Program &bg_prog,
                               const DvsTable &dvs)
    : rt_(rt), bgProg_(bg_prog), bgFreq_(dvs.minFreq()),
      period_(rt.deadlineSeconds())
{
    bgMem_.loadProgram(bgProg_);
    bgCpu_ = std::make_unique<SimpleCpu>(bgProg_, bgMem_, bgPlatform_,
                                         bgMemctrl_);
    bgCpu_->resetForTask();
    bgCpu_->setFrequency(bgFreq_);
}

TaskStats
SlackScheduler::runPeriod()
{
    TaskStats ts = rt_.runTask();
    if (!ts.deadlineMet)
        return ts;    // no slack to give away (and a safety bug)

    const double slack =
        std::max(0.0, period_ - ts.completionSeconds);
    Cycles remaining =
        static_cast<Cycles>(slack * bgFreq_ * 1e6);
    bg_.slackSeconds += slack;
    bg_.cyclesGranted += remaining;

    while (remaining > 0) {
        const Cycles before = bgCpu_->cycles();
        RunResult r = bgCpu_->run(remaining);
        const Cycles used = bgCpu_->cycles() - before;
        bg_.instructionsRetired += bgCpu_->retired() - bgRetiredBase_;
        bgRetiredBase_ = bgCpu_->retired();
        remaining -= std::min(used, remaining);
        if (r.reason == StopReason::Halted) {
            ++bg_.completions;
            bgCpu_->resetForTask();
            bgRetiredBase_ = 0;
        } else {
            break;    // period boundary: the hard task preempts
        }
    }
    return ts;
}

} // namespace visa
