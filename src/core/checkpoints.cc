#include "core/checkpoints.hh"

#include <cmath>

#include "sim/logging.hh"

namespace visa
{

CheckpointPlan
computeCheckpoints(const WcetTable &wcet, MHz f_rec, MHz f_spec,
                   double deadline_s, double ovhd_s,
                   Cycles arm_delay_cycles)
{
    CheckpointPlan plan;
    const int s = wcet.numSubtasks();
    for (int i = 0; i < s; ++i) {
        double cp = deadline_s - ovhd_s - wcet.remainingSeconds(i, f_rec);
        if (cp <= 0.0)
            fatal("checkpoints: checkpoint %d is %.3g us; deadline "
                  "cannot be guaranteed at f_rec=%u MHz", i + 1,
                  cp * 1e6, f_rec);
        plan.checkpoints.push_back(cp);
    }
    // Monotonicity follows from WCET positivity; enforce anyway.
    for (int i = 1; i < s; ++i) {
        if (plan.checkpoints[static_cast<std::size_t>(i)] <
            plan.checkpoints[static_cast<std::size_t>(i - 1)]) {
            panic("checkpoints: non-monotonic schedule");
        }
    }
    const double fhz = f_spec * 1e6;
    std::int64_t first =
        static_cast<std::int64_t>(std::floor(plan.checkpoints[0] * fhz)) -
        static_cast<std::int64_t>(arm_delay_cycles);
    if (first <= 0)
        fatal("checkpoints: first checkpoint unreachable after the "
              "%llu-cycle arming delay",
              static_cast<unsigned long long>(arm_delay_cycles));
    plan.increments.push_back(first);
    for (int i = 1; i < s; ++i) {
        double delta = plan.checkpoints[static_cast<std::size_t>(i)] -
                       plan.checkpoints[static_cast<std::size_t>(i - 1)];
        plan.increments.push_back(
            static_cast<std::int64_t>(std::floor(delta * fhz)));
    }
    return plan;
}

} // namespace visa
