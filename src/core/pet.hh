/**
 * @file
 * Predicted execution times (paper §4.3). Each sub-task records its
 * actual execution times (AET, in cycles, from the memory-mapped cycle
 * counter); PETs are re-evaluated every tenth task execution using
 * either
 *  - last-N: PET = max of the last N recorded AETs, or
 *  - histogram: PET = the value such that a target fraction of
 *    recorded AETs exceed it (a probabilistic misprediction-rate
 *    knob; 0 targets no mispredictions).
 *
 * AETs of sub-tasks that ran (partly) in simple mode are scaled down
 * by a configurable factor before recording, approximating what the
 * complex pipeline would have taken (§4.3).
 */

#ifndef VISA_CORE_PET_HH
#define VISA_CORE_PET_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sim/types.hh"

namespace visa
{

/** PET selection policy. */
struct PetPolicy
{
    enum Kind { LastN, Histogram } kind = LastN;
    /** last-N window / histogram depth. */
    int window = 10;
    /** Histogram: target probability that an AET exceeds the PET. */
    double targetMissRate = 0.0;
    /** Histogram bucket width, cycles. */
    std::uint64_t bucketCycles = 64;
};

/** AET history and PET estimation for one task's sub-tasks. */
class PetEstimator
{
  public:
    PetEstimator(int num_subtasks, PetPolicy policy);

    /** Record the AET (cycles) of sub-task @p k (0-based). */
    void record(int k, std::uint64_t aet_cycles);

    /**
     * Recompute PETs from the recorded histories (call every tenth
     * task, per the paper). Sub-tasks with no history keep their
     * previous PET.
     */
    void reevaluate();

    /** Current PET of sub-task @p k, cycles. */
    std::uint64_t petCycles(int k) const;

    /** PET of sub-task @p k in seconds at frequency @p f. */
    double
    petSeconds(int k, MHz f) const
    {
        return static_cast<double>(petCycles(k)) / (f * 1e6);
    }

    /** Seed all PETs (used before any history exists). */
    void seed(const std::vector<std::uint64_t> &pets);

    int numSubtasks() const
    {
        return static_cast<int>(pets_.size());
    }

  private:
    PetPolicy policy_;
    std::vector<std::deque<std::uint64_t>> history_;
    std::vector<std::uint64_t> pets_;
};

} // namespace visa

#endif // VISA_CORE_PET_HH
