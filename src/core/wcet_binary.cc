#include "core/wcet_binary.hh"

#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace visa
{

namespace
{

Cycles
stallCycles(double mem_ns, MHz f)
{
    auto num = static_cast<Cycles>(mem_ns * f);
    return (num + 999) / 1000;
}

} // anonymous namespace

ParameterizedWcet
ParameterizedWcet::fit(const WcetAnalyzer &analyzer, const DvsTable &dvs,
                       const DMissProfile *dmiss)
{
    ParameterizedWcet out;
    out.nativeMemNs_ = 100.0;

    // Sample the analyzer across the table.
    std::vector<WcetReport> samples;
    for (const auto &s : dvs.settings())
        samples.push_back(analyzer.analyze(s.freq, dmiss));

    const int subtasks = analyzer.numSubtasks();
    for (int k = 0; k < subtasks; ++k) {
        // Upper-bound the memory-event count with the steepest slope
        // of WCET cycles against the stall penalty, then raise the
        // core component until the line dominates every sample.
        double max_slope = 0.0;
        for (std::size_t i = 1; i < samples.size(); ++i) {
            double dp = static_cast<double>(
                            stallCycles(out.nativeMemNs_,
                                        samples[i].frequency)) -
                        static_cast<double>(
                            stallCycles(out.nativeMemNs_,
                                        samples[i - 1].frequency));
            if (dp <= 0)
                continue;
            double dw =
                static_cast<double>(
                    samples[i].subtaskCycles[static_cast<std::size_t>(
                        k)]) -
                static_cast<double>(
                    samples[i - 1]
                        .subtaskCycles[static_cast<std::size_t>(k)]);
            max_slope = std::max(max_slope, dw / dp);
        }
        Component c;
        c.memEvents =
            static_cast<std::uint64_t>(std::ceil(max_slope));
        std::int64_t core = 0;
        for (const auto &rep : samples) {
            std::int64_t need =
                static_cast<std::int64_t>(
                    rep.subtaskCycles[static_cast<std::size_t>(k)]) -
                static_cast<std::int64_t>(
                    c.memEvents *
                    stallCycles(out.nativeMemNs_, rep.frequency));
            core = std::max(core, need);
        }
        c.coreCycles = static_cast<Cycles>(std::max<std::int64_t>(core, 0));
        out.components_.push_back(c);
    }
    return out;
}

Cycles
ParameterizedWcet::subtaskCycles(int k, MHz f, double mem_ns) const
{
    if (k < 0 || k >= numSubtasks())
        fatal("parameterized wcet: bad sub-task %d", k);
    const Component &c = components_[static_cast<std::size_t>(k)];
    return c.coreCycles + c.memEvents * stallCycles(mem_ns, f);
}

Cycles
ParameterizedWcet::taskCycles(MHz f, double mem_ns) const
{
    Cycles sum = 0;
    for (int k = 0; k < numSubtasks(); ++k)
        sum += subtaskCycles(k, f, mem_ns);
    return sum;
}

std::string
ParameterizedWcet::serialize() const
{
    std::ostringstream os;
    os << "VISAWCET 1\n";
    os << "memns " << nativeMemNs_ << '\n';
    os << "subtasks " << components_.size() << '\n';
    for (const auto &c : components_)
        os << c.coreCycles << ' ' << c.memEvents << '\n';
    return os.str();
}

ParameterizedWcet
ParameterizedWcet::deserialize(const std::string &text)
{
    std::istringstream is(text);
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != "VISAWCET" || version != 1)
        fatal("parameterized wcet: bad header");
    ParameterizedWcet out;
    std::string key;
    std::size_t n = 0;
    if (!(is >> key >> out.nativeMemNs_) || key != "memns")
        fatal("parameterized wcet: missing memns");
    if (!(is >> key >> n) || key != "subtasks")
        fatal("parameterized wcet: missing subtasks");
    for (std::size_t i = 0; i < n; ++i) {
        Component c;
        if (!(is >> c.coreCycles >> c.memEvents))
            fatal("parameterized wcet: truncated component list");
        out.components_.push_back(c);
    }
    return out;
}

} // namespace visa
