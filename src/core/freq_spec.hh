/**
 * @file
 * Frequency speculation solvers (paper §4).
 *
 * Conventional frequency speculation (Rotenberg; EQ 2) guards every
 * possible misprediction point i:
 *
 *   sum_{j<i} PET_{j,fspec} + WCET_{i,fspec} + ovhd
 *     + sum_{k>i} WCET_{k,frec} <= deadline
 *
 * The VISA adaptation (EQ 4) removes the need to bound the mispredicted
 * sub-task on the complex pipeline — recovery switches to simple mode,
 * so the VISA WCET covers it:
 *
 *   sum_{j<=i} PET_{j,fspec} + ovhd
 *     + sum_{k>=i} WCET_{k,frec} <= deadline
 *
 * Both solvers return the lowest feasible {f_spec, f_rec} pair over
 * the DVS table (minimal f_spec, then minimal f_rec >= f_spec).
 */

#ifndef VISA_CORE_FREQ_SPEC_HH
#define VISA_CORE_FREQ_SPEC_HH

#include "core/pet.hh"
#include "core/wcet_table.hh"
#include "power/dvs.hh"

namespace visa
{

/** A speculative/recovery operating-point pair. */
struct FreqPair
{
    bool feasible = false;
    MHz fSpec = 0;
    MHz fRec = 0;
};

/**
 * EQ 4: the VISA-adapted speculation solver.
 * @param overhead_cycles_at_fspec cycles charged at the speculative
 *        frequency on top of the PETs (DVS software at task start plus
 *        the pipeline-drain budget at a missed checkpoint)
 */
FreqPair solveVisaSpeculation(const WcetTable &wcet,
                              const PetEstimator &pet,
                              const DvsTable &dvs, double deadline_s,
                              double ovhd_s,
                              Cycles overhead_cycles_at_fspec = 0);

/**
 * EQ 4 extended for restart-based recovery (Abdi et al.): on a missed
 * checkpoint the runtime restores the sub-task-boundary snapshot and
 * re-executes the mispredicted sub-task from its beginning in simple
 * mode. EQ 4's recovery tail already charges sub-task i's *full* VISA
 * WCET at f_rec — re-execution from the boundary costs no more than
 * that — so the only additional demand is the snapshot-restore
 * overhead, charged at f_rec on top of every misprediction point:
 *
 *   sum_{j<=i} PET_{j,fspec} + ovhd + restore_{frec}
 *     + sum_{k>=i} WCET_{k,frec} <= deadline
 *
 * @param restore_cycles modeled snapshot-restore cost, charged at
 *        the recovery frequency
 */
FreqPair solveRestartSpeculation(const WcetTable &wcet,
                                 const PetEstimator &pet,
                                 const DvsTable &dvs, double deadline_s,
                                 double ovhd_s,
                                 Cycles overhead_cycles_at_fspec,
                                 Cycles restore_cycles);

/**
 * EQ 2: conventional frequency speculation (requires the WCETs to
 * hold on the executing processor — usable by simple-fixed only).
 */
FreqPair solveConventionalSpeculation(const WcetTable &wcet,
                                      const PetEstimator &pet,
                                      const DvsTable &dvs,
                                      double deadline_s, double ovhd_s,
                                      Cycles overhead_cycles_at_fspec = 0);

/**
 * No speculation: the lowest single frequency whose whole-task WCET
 * meets the deadline. @return 0 MHz if infeasible even at the top
 * setting.
 */
MHz solveStaticFrequency(const WcetTable &wcet, const DvsTable &dvs,
                         double deadline_s);

} // namespace visa

#endif // VISA_CORE_FREQ_SPEC_HH
