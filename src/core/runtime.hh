/**
 * @file
 * The VISA run-time system: executes a periodic hard real-time task
 * instance by instance, programming the watchdog from the checkpoint
 * schedule (EQ 1), choosing operating points by frequency speculation
 * (EQ 2 on the explicitly-safe processor, EQ 4 on the VISA-compliant
 * complex processor), collecting AET histories from the guest's
 * instrumentation snippets, re-evaluating PETs every tenth task, and
 * responding to missed-checkpoint exceptions by reconfiguring to the
 * safe configuration (simple mode and/or the recovery frequency).
 */

#ifndef VISA_CORE_RUNTIME_HH
#define VISA_CORE_RUNTIME_HH

#include <optional>
#include <utility>
#include <vector>

#include "core/checkpoints.hh"
#include "core/freq_spec.hh"
#include "core/pet.hh"
#include "core/wcet_table.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "power/meter.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace visa
{

/**
 * What the missed-checkpoint response does with the work the complex
 * core had already (possibly incorrectly) performed.
 *
 *  - Resume: the paper's policy — switch to the safe configuration and
 *    continue from the current architectural state. Bounds *timing*
 *    misbehavior; state corrupted by a faulty complex core persists.
 *  - Restart: restart-based recovery (Abdi et al., DESIGN.md §11) —
 *    restore the sub-task-boundary snapshot and re-execute the
 *    mispredicted sub-task in simple mode, discarding everything the
 *    complex core did since the boundary. Admission control charges
 *    the restore on top of EQ 4 (solveRestartSpeculation).
 */
enum class RecoveryPolicy
{
    Resume,
    Restart,
};

/** Configuration of the run-time system. */
struct RuntimeConfig
{
    /** Task deadline == period, seconds. */
    double deadlineSeconds = 0.0;
    /** Mode/frequency switch overhead (the ovhd term of EQ 1-4). */
    double ovhdSeconds = dvsSwitchOverheadNs * 1e-9;
    /** PETs are re-evaluated every this many task executions (§4.3). */
    int reevalPeriod = 10;
    /** PET selection policy. */
    PetPolicy petPolicy{};
    /**
     * Factor applied to AET cycles recorded while in simple mode
     * (§4.3): approximates complex-mode time, "based on the relative
     * performance of the complex and simple modes". Deployments should
     * measure it per task (the experiment harnesses do); a too-small
     * factor underestimates PETs and can trap the schedule in a
     * recurring-miss loop. The default matches the paper's mid-range
     * 3.5x speedup.
     */
    double simpleModeAetScale = 0.28;
    /**
     * Park frequency between completion and the deadline (§5.2);
     * 0 selects the DVS table's lowest operating point.
     */
    MHz idleFreq = 0;
    /**
     * Modeled cost, in cycles, of the DVS software that re-evaluates
     * PETs and recomputes frequencies/checkpoints every tenth task
     * (charged on re-evaluation tasks; see DESIGN.md substitution 4).
     */
    Cycles dvsSoftwareCycles = 5000;
    /**
     * Budget, in cycles at the speculative frequency, for draining the
     * complex pipeline after a missed-checkpoint exception. Part of
     * the recovery budget in EQ 1/EQ 4 (the paper folds it into the
     * "fixed implementation-dependent overhead").
     */
    Cycles drainBudgetCycles = 2048;
    /**
     * Cycles between task release and the first snippet's watchdog
     * store (snippet prologue), subtracted from the first watchdog
     * increment.
     */
    Cycles armSlackCycles = 64;
    /** Missed-checkpoint response; see RecoveryPolicy. */
    RecoveryPolicy recoveryPolicy = RecoveryPolicy::Resume;
    /**
     * Modeled cost, in cycles at the recovery frequency, of restoring
     * the sub-task-boundary snapshot under RecoveryPolicy::Restart
     * (memory image + register state). Charged per recovery and in the
     * restart admission bound; the snapshot *capture* at each boundary
     * is modeled as free (hardware-assisted copy-on-write).
     */
    Cycles restartRestoreCycles = 4096;
};

/** Outcome of one task instance. */
struct TaskStats
{
    double completionSeconds = 0.0;
    bool deadlineMet = false;
    bool missedCheckpoint = false;
    int missedSubtask = -1;          ///< 1-based, -1 = none
    MHz fSpec = 0;
    MHz fRec = 0;
    bool speculating = false;        ///< simple-fixed may decline EQ 2
    std::uint64_t retired = 0;
    Word checksum = 0;
    bool checksumReported = false;
};

/** Aggregates over a whole experiment. */
struct ExperimentStats
{
    int tasks = 0;
    int deadlineMisses = 0;          ///< must stay 0 (safety!)
    int checkpointMisses = 0;
    int restarts = 0;                ///< Restart-policy recoveries
    double totalBusySeconds = 0.0;
};

/** Progress of one stepInstance() slice. */
struct StepResult
{
    Cycles ranCycles = 0;       ///< CPU cycles this slice consumed
    double ranSeconds = 0.0;    ///< wall-clock seconds of those cycles
    bool completed = false;     ///< the instance executed HALT
    bool recovered = false;     ///< a missed checkpoint was handled
};

/** Common machinery of both run-time flavors. */
class DvsRuntime
{
  public:
    virtual ~DvsRuntime() = default;

    /**
     * Execute one task instance to completion.
     * @param induce_miss flush caches/predictors first (Fig. 4's
     *        mechanism for forcing mispredicted tasks)
     */
    TaskStats runTask(bool induce_miss = false);

    // ---- incremental instance API (preemptive multi-task use) ----
    //
    // runTask() == beginInstance() + stepInstance() until completed +
    // finishInstance(). The multi-task scheduler (core/scheduler.hh)
    // interleaves slices of several runtimes on one core; between
    // slices this runtime's CPU does not tick, so its watchdog — which
    // bounds the instance's *execution-time* demand — is naturally
    // frozen while the task is preempted.

    /**
     * Start a task instance: PET re-evaluation, frequency speculation,
     * checkpoint programming, and watchdog arming. An instance is
     * active until finishInstance().
     */
    void beginInstance(bool induce_miss = false);

    /**
     * Run the active instance for at most @p max_cycles CPU cycles.
     * Missed-checkpoint recoveries are handled inside the slice (the
     * drain and reconfiguration may overshoot the budget slightly —
     * the returned counts are actual, not requested).
     */
    StepResult stepInstance(Cycles max_cycles);

    /**
     * Drain the pipeline to a preemption point (in-flight instructions
     * retire; cycles are charged to this instance). A watchdog expiry
     * during the drain takes the normal recovery path first.
     */
    StepResult preemptDrain();

    /** Close the completed instance and account its statistics. */
    TaskStats finishInstance();

    bool instanceActive() const { return instanceActive_; }

    /** Sub-task of the active instance's missed checkpoint (-1 = none). */
    int activeMissedSubtask() const { return missedSubtask_; }

    /** Wall-clock seconds consumed by the active instance so far. */
    double
    instanceSeconds() const
    {
        return taskSeconds_ +
               static_cast<double>(cpu_.cycles() - epochStartCycles_) /
                   (cpu_.frequency() * 1e6);
    }

    /**
     * Overrule the task's requested operating point (the shared-core
     * DVS governor resolving several tasks' requests into one core
     * frequency). Raising the frequency is always deadline- and
     * watchdog-safe: checkpoints are programmed in cycles, and EQ 1-4
     * budgets only shrink in wall time at a faster clock.
     */
    void overrideFrequency(MHz f) { switchFrequency(f); }

    /** The operating point this task last requested (f_spec, or f_rec
     *  after a recovery). */
    MHz requestedFrequency() const { return cpu_.frequency(); }

    /**
     * Force the next instance's first watchdog increment down to a
     * handful of cycles, deterministically triggering the
     * missed-checkpoint recovery early in sub-task 1. Expiring ahead
     * of the EQ 1 checkpoint is always safe (more budget remains than
     * the recovery needs), so this exercises the full recovery path
     * without perturbing the safety argument — the scheduler tests'
     * forced-expiry scenarios are built on it.
     */
    void forceNextMiss(Cycles increment = 0)
    {
        forceMiss_ = true;
        forcedIncrement_ = increment;
    }

    /** Attach a power meter; the runtime closes epochs at switches. */
    void attachMeter(PowerMeter *meter) { meter_ = meter; }

    const ExperimentStats &stats() const { return stats_; }
    PetEstimator &pets() { return pets_; }
    /** Sum of all AETs the guest reported, across every task run. The
     *  profiler's checkpoint records reconcile against this exactly. */
    std::uint64_t aetCyclesTotal() const { return aetCyclesTotal_; }
    int tasksRun() const { return tasksRun_; }
    double deadlineSeconds() const { return cfg_.deadlineSeconds; }
    const RuntimeConfig &config() const { return cfg_; }
    Cpu &cpu() { return cpu_; }

    /**
     * Contribute the "runtime" statistics group to @p set: task /
     * recovery / deadline counters, the checkpoint miss rate, and the
     * PET-AET detection-slack distribution. Formulas capture `this`;
     * dump the set while the runtime is alive.
     */
    void buildStats(StatSet &set) const;

  protected:
    DvsRuntime(Cpu &cpu, const Program &prog, MainMemory &mem,
               const WcetTable &wcet, const DvsTable &dvs,
               RuntimeConfig cfg);

    /** Choose {f_spec, f_rec} for the next task. */
    virtual FreqPair chooseFrequencies() = 0;
    /** Build the watchdog programming for the chosen pair. */
    virtual CheckpointPlan buildPlan() = 0;
    /** Respond to a missed checkpoint (switch mode and/or frequency). */
    virtual void recover() = 0;
    /** Reconfigure for a fresh task attempt (complex mode etc.). */
    virtual void prepare() = 0;

    void switchFrequency(MHz f);
    void writeWatchdogParams(const CheckpointPlan &plan);
    void disableWatchdogParams();

    // ---- restart-based recovery (RecoveryPolicy::Restart) ----

    /**
     * Capture the restart snapshot: the architectural state and every
     * materialized memory page, taken at each sub-task boundary (the
     * platform's onSubtaskBegin hook) and at instance begin.
     */
    void takeSnapshot(int subtask);
    /**
     * Rewind memory and architectural state to the last snapshot
     * (pages are compared first so unchanged ones — in particular the
     * text image — are not rewritten). @return pages rewritten.
     */
    std::uint64_t restoreSnapshot();
    /** The Restart recovery tail shared by both runtime flavors:
     *  restore, charge cfg_.restartRestoreCycles, trace + count. */
    void restartFromSnapshot();

    /** Fold the open frequency epoch into taskSeconds_ (the meter's
     *  epoch stays open: the frequency did not change). */
    void foldOpenEpoch();
    /** The missed-checkpoint response shared by stepInstance() and
     *  preemptDrain(): record the miss, mask the watchdog, recover. */
    void handleMiss();

    Cpu &cpu_;
    const Program &prog_;
    MainMemory &mem_;
    const WcetTable &wcet_;
    const DvsTable &dvs_;
    RuntimeConfig cfg_;
    PetEstimator pets_;
    PowerMeter *meter_ = nullptr;

    FreqPair current_{};
    bool speculating_ = true;
    std::optional<CheckpointPlan> plan_;
    int tasksRun_ = 0;
    ExperimentStats stats_;

    /** Solver budget charged at f_spec (DVS software + drain). */
    Cycles
    overheadCyclesAtFspec() const
    {
        return cfg_.dvsSoftwareCycles + cfg_.drainBudgetCycles;
    }

    /**
     * Set by chooseFrequencies() when the whole task runs in the safe
     * configuration on the complex processor: all its AETs must be
     * scaled to the complex-mode domain before entering the history.
     */
    bool scaleAllAets_ = false;

    /**
     * Factor applied to AETs of sub-tasks that ran (partly) after a
     * missed checkpoint. The complex runtime maps simple-mode cycles
     * back to the complex domain (§4.3); the simple-fixed runtime's
     * recovery only changes frequency, so its AETs stay comparable
     * (factor 1).
     */
    double recoveryAetScale_ = 1.0;

    // per-instance bookkeeping
    double taskSeconds_ = 0.0;
    Cycles epochStartCycles_ = 0;
    int missedSubtask_ = -1;
    bool instanceActive_ = false;
    bool armed_ = false;              ///< watchdog armed this instance
    Cycles instanceCycles_ = 0;       ///< runaway guard accumulator
    TaskStats inst_;                  ///< stats of the active instance
    /** AET reports collected by the platform hook this instance. */
    std::vector<std::pair<int, std::uint64_t>> aets_;
    bool forceMiss_ = false;          ///< see forceNextMiss()
    Cycles forcedIncrement_ = 0;

    /** Restart snapshot (valid only under RecoveryPolicy::Restart). */
    struct SubtaskSnapshot
    {
        bool valid = false;
        int subtask = 0;
        ArchState arch{};
        /** (base, pageBytes() of content) per materialized page. */
        std::vector<std::pair<Addr, std::vector<std::uint8_t>>> pages;
    };
    SubtaskSnapshot snap_;
    /** Restart recovery-cost accumulators (buildStats exports them). */
    std::uint64_t restartRestoreCyclesTotal_ = 0;
    std::uint64_t restartPagesTotal_ = 0;

    /**
     * Detection slack (PET - AET, cycles) at every armed checkpoint
     * that was met. The range is intentionally modest: large slacks
     * clamp into the explicit overflow bucket.
     */
    StatGroup::Distribution slackDist_;

    /**
     * Cycles of finished task instances, banked into the tracer's
     * cycle offset so exported timelines stay monotonic across tasks
     * (per-task cycle counters reset to zero each instance).
     */
    Cycles tracedCycles_ = 0;

    /** See aetCyclesTotal(). */
    std::uint64_t aetCyclesTotal_ = 0;
};

/**
 * The VISA framework on the complex processor: EQ 4 speculation,
 * recovery = drain + simple mode + recovery frequency.
 */
class VisaComplexRuntime : public DvsRuntime
{
  public:
    VisaComplexRuntime(OooCpu &cpu, const Program &prog, MainMemory &mem,
                       const WcetTable &wcet, const DvsTable &dvs,
                       RuntimeConfig cfg)
        : DvsRuntime(cpu, prog, mem, wcet, dvs, cfg), ooo_(cpu)
    {
        recoveryAetScale_ = cfg_.simpleModeAetScale;
    }

  protected:
    FreqPair chooseFrequencies() override;
    CheckpointPlan buildPlan() override;
    void recover() override;
    void prepare() override;

  private:
    OooCpu &ooo_;
    /**
     * When EQ 4 is infeasible with the current PETs (e.g. before any
     * history exists under very tight deadlines), the task runs
     * explicitly safe: simple mode at a statically sufficient
     * frequency.
     */
    bool fallbackSimple_ = false;
};

/**
 * The explicitly-safe simple-fixed processor: EQ 2 speculation when it
 * lowers the frequency (paper §6.2), otherwise a fixed safe frequency;
 * recovery = recovery frequency only.
 */
class SimpleFixedRuntime : public DvsRuntime
{
  public:
    SimpleFixedRuntime(SimpleCpu &cpu, const Program &prog,
                       MainMemory &mem, const WcetTable &wcet,
                       const DvsTable &dvs, RuntimeConfig cfg)
        : DvsRuntime(cpu, prog, mem, wcet, dvs, cfg)
    {
    }

  protected:
    FreqPair chooseFrequencies() override;
    CheckpointPlan buildPlan() override;
    void recover() override;
    void prepare() override;
};

/**
 * Off-line profiling of per-sub-task AETs on the complex processor
 * (the PET seeding method of Rotenberg's original frequency
 * speculation, which §4.3's run-time profiling then keeps refining).
 *
 * @param margin multiplier applied to the measured AETs
 * @return AET cycles per sub-task (at 1 GHz), scaled by @p margin
 */
std::vector<std::uint64_t> profileComplexAets(const Program &prog,
                                              int num_subtasks,
                                              double margin = 1.1,
                                              MHz freq = 1000);

} // namespace visa

#endif // VISA_CORE_RUNTIME_HH
