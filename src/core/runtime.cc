#include "core/runtime.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/logging.hh"
#include "sim/prof/prof.hh"

namespace visa
{

namespace
{

/** Hard cap so runaway guest code cannot hang an experiment. */
constexpr Cycles runawayBudget = 20'000'000'000ULL;

} // anonymous namespace

DvsRuntime::DvsRuntime(Cpu &cpu, const Program &prog, MainMemory &mem,
                       const WcetTable &wcet, const DvsTable &dvs,
                       RuntimeConfig cfg)
    : cpu_(cpu), prog_(prog), mem_(mem), wcet_(wcet), dvs_(dvs),
      cfg_(std::move(cfg)), pets_(wcet.numSubtasks(), cfg_.petPolicy)
{
    if (cfg_.deadlineSeconds <= 0.0)
        fatal("runtime: deadline must be positive");
    // Seed PETs conservatively with the WCETs at the top setting: the
    // first tasks run fast and histories tighten the PETs from there.
    std::vector<std::uint64_t> seed;
    for (int k = 0; k < wcet.numSubtasks(); ++k)
        seed.push_back(wcet.subtaskCycles(k, dvs.maxFreq()));
    pets_.seed(seed);
    slackDist_.init(0, 1u << 16, 1u << 12);
}

void
DvsRuntime::buildStats(StatSet &set) const
{
    StatGroup &g = set.group("runtime");
    g.scalar("tasks", "task instances executed").set(
        static_cast<std::uint64_t>(stats_.tasks));
    g.scalar("checkpoint_misses", "missed-checkpoint recoveries")
        .set(static_cast<std::uint64_t>(stats_.checkpointMisses));
    g.scalar("deadline_misses", "deadline violations (must stay 0)")
        .set(static_cast<std::uint64_t>(stats_.deadlineMisses));
    g.scalar("aet_cycles_total",
             "sum of guest-reported sub-task AETs (all tasks)")
        .set(aetCyclesTotal_);
    g.scalar("restarts", "restart-based recoveries (Restart policy)")
        .set(static_cast<std::uint64_t>(stats_.restarts));
    g.scalar("restart_restore_cycles_total",
             "snapshot-restore cycles charged across all restarts")
        .set(restartRestoreCyclesTotal_);
    g.scalar("restart_pages_total",
             "memory pages rewritten across all restarts")
        .set(restartPagesTotal_);
    g.formula("checkpoint_miss_rate",
              [this] {
                  // Deliberately unguarded: 0/0 before any task ran is
                  // the stats package's finite-guard's job to clean up.
                  return static_cast<double>(stats_.checkpointMisses) /
                         static_cast<double>(stats_.tasks);
              },
              "missed checkpoints per task");
    g.distribution("checkpoint_slack_cycles",
                   "PET - AET detection slack at met checkpoints") =
        slackDist_;
}

void
DvsRuntime::switchFrequency(MHz f)
{
    const MHz old = cpu_.frequency();
    const Cycles now = cpu_.cycles();
    taskSeconds_ += static_cast<double>(now - epochStartCycles_) /
                    (old * 1e6);
    epochStartCycles_ = now;
    if (meter_)
        meter_->closeEpoch(old);
    VISA_TRACE(EventKind::FreqChange, now, old, f);
    cpu_.setFrequency(f);
}

void
DvsRuntime::writeWatchdogParams(const CheckpointPlan &plan)
{
    auto it = prog_.symbols.find("wdinc");
    if (it == prog_.symbols.end())
        fatal("runtime: program has no 'wdinc' parameter table but "
              "checkpointing is enabled");
    for (std::size_t i = 0; i < plan.increments.size(); ++i) {
        mem_.writeWord(it->second + static_cast<Addr>(4 * i),
                       static_cast<Word>(plan.increments[i]));
    }
}

void
DvsRuntime::disableWatchdogParams()
{
    auto it = prog_.symbols.find("wdinc");
    if (it == prog_.symbols.end())
        return;
    for (int i = 0; i < wcet_.numSubtasks(); ++i)
        mem_.writeWord(it->second + static_cast<Addr>(4 * i), 0);
}

TaskStats
DvsRuntime::runTask(bool induce_miss)
{
    beginInstance(induce_miss);
    while (!stepInstance(runawayBudget).completed) {
    }
    return finishInstance();
}

void
DvsRuntime::beginInstance(bool induce_miss)
{
    if (instanceActive_)
        fatal("runtime: beginInstance with an instance already active");
    const bool reeval =
        tasksRun_ == 0 ||
        (cfg_.reevalPeriod > 0 && tasksRun_ % cfg_.reevalPeriod == 0);
    if (reeval) {
        if (tasksRun_ > 0)
            pets_.reevaluate();
        current_ = chooseFrequencies();
        if (!current_.feasible)
            fatal("runtime: deadline %.3g ms infeasible",
                  cfg_.deadlineSeconds * 1e3);
        if (speculating_)
            plan_ = buildPlan();
        else
            plan_.reset();
    }

    inst_ = TaskStats{};
    inst_.fSpec = current_.fSpec;
    inst_.fRec = current_.fRec;
    inst_.speculating = speculating_;

    cpu_.resetForTask();

    Tracer *const tr = currentTracer();
    if (tr) {
        // The per-task cycle counter just reset; bank the previous
        // instances' cycles so the timeline stays monotonic.
        tr->setCycleOffset(tracedCycles_);
        tr->record(EventKind::TaskBegin, 0,
                   static_cast<std::uint64_t>(tasksRun_), current_.fSpec,
                   current_.fRec, cfg_.deadlineSeconds);
        if (reeval) {
            double pet_sum = 0.0;
            for (int k = 0; k < wcet_.numSubtasks(); ++k)
                pet_sum += pets_.petSeconds(k, current_.fSpec);
            tr->record(EventKind::FreqDecision, 0, current_.fSpec,
                       current_.fRec, speculating_ ? 1 : 0, pet_sum);
        }
    }

    prepare();

    Platform &platform = cpu_.platform();
    platform.clearWatchdog();
    platform.resetCycleCounter();
    platform.maskWatchdog(!(speculating_ && plan_));
    platform.setRecoveryFreq(current_.fRec);

    if (induce_miss)
        cpu_.flushCachesAndPredictors();

    taskSeconds_ = 0.0;
    epochStartCycles_ = 0;
    missedSubtask_ = -1;
    switchFrequency(current_.fSpec);

    // The DVS software (PET re-evaluation, EQ 1/EQ 4 solving) runs on
    // this processor every tenth task; charge its modeled cost.
    if (reeval && tasksRun_ > 0)
        cpu_.advanceIdle(cfg_.dvsSoftwareCycles);

    if (plan_ && speculating_) {
        writeWatchdogParams(*plan_);
        if (forceMiss_ && !plan_->increments.empty()) {
            // Overwrite only the first programmed increment: the
            // watchdog fires a few cycles into sub-task 1, well before
            // the EQ 1 checkpoint, where recovery budget is plentiful.
            const Cycles inc = forcedIncrement_
                ? forcedIncrement_
                : cfg_.armSlackCycles + 64;
            auto it = prog_.symbols.find("wdinc");
            mem_.writeWord(it->second, static_cast<Word>(inc));
        }
        if (tr)
            tr->record(EventKind::CheckpointArm, cpu_.cycles(),
                       plan_->increments.size(),
                       plan_->increments.empty()
                           ? 0
                           : static_cast<std::uint64_t>(
                                 plan_->increments[0]));
    } else {
        disableWatchdogParams();
    }
    forceMiss_ = false;

    armed_ = plan_.has_value() && speculating_;
    aets_.clear();
    platform.onAetReport = [this](int sub, std::uint64_t aet) {
        aets_.emplace_back(sub, aet);
        aetCyclesTotal_ += aet;
        if (prof::BlockProfiler *prof = prof::currentProfiler()) {
            prof::CheckpointRecord rec;
            rec.subtask = sub;
            rec.aet = aet;
            if (sub >= 1 && sub <= pets_.numSubtasks()) {
                rec.pet = pets_.petCycles(sub - 1);
                rec.wcet =
                    wcet_.subtaskCycles(sub - 1, cpu_.frequency());
            }
            rec.freq = cpu_.frequency();
            rec.stamp = tracedCycles_ + cpu_.cycles();
            prof->recordCheckpoint(rec);
        }
        if (armed_ && sub >= 1 && sub <= pets_.numSubtasks()) {
            const std::uint64_t pet = pets_.petCycles(sub - 1);
            const std::uint64_t slack = pet > aet ? pet - aet : 0;
            slackDist_.sample(slack);
            if (Tracer *t = currentTracer())
                t->record(EventKind::CheckpointHit, cpu_.cycles(),
                          static_cast<std::uint64_t>(sub), aet, pet,
                          static_cast<double>(slack));
        }
    };

    // Restart policy: snapshot at instance begin (covers a miss inside
    // sub-task 1) and again at every sub-task boundary.
    snap_.valid = false;
    if (cfg_.recoveryPolicy == RecoveryPolicy::Restart) {
        takeSnapshot(0);
        platform.onSubtaskBegin = [this](int sub) { takeSnapshot(sub); };
    } else {
        platform.onSubtaskBegin = nullptr;
    }

    instanceCycles_ = 0;
    instanceActive_ = true;
}

void
DvsRuntime::takeSnapshot(int subtask)
{
    snap_.subtask = subtask;
    snap_.arch = cpu_.arch();
    snap_.pages.clear();
    const std::size_t page_bytes = MainMemory::pageBytes();
    for (Addr base : mem_.pageBases()) {
        const std::uint8_t *p = mem_.peekPage(base);
        snap_.pages.emplace_back(
            base, std::vector<std::uint8_t>(p, p + page_bytes));
    }
    snap_.valid = true;
}

std::uint64_t
DvsRuntime::restoreSnapshot()
{
    const std::size_t page_bytes = MainMemory::pageBytes();
    std::uint64_t rewritten = 0;
    for (const auto &[base, bytes] : snap_.pages) {
        const std::uint8_t *cur = mem_.peekPage(base);
        if (cur && std::memcmp(cur, bytes.data(), page_bytes) == 0)
            continue;
        // writeBytes bumps the code-page generation counters when the
        // page is text, so the pipelines' block caches resync.
        mem_.writeBytes(base, bytes.data(), page_bytes);
        ++rewritten;
    }
    // Pages the task materialized after the snapshot read as zero in
    // it (snap_.pages is sorted: pageBases() sorts).
    std::vector<std::uint8_t> zeros;
    for (Addr base : mem_.pageBases()) {
        auto it = std::lower_bound(
            snap_.pages.begin(), snap_.pages.end(), base,
            [](const auto &p, Addr b) { return p.first < b; });
        if (it != snap_.pages.end() && it->first == base)
            continue;
        const std::uint8_t *cur = mem_.peekPage(base);
        if (!cur || std::all_of(cur, cur + page_bytes,
                                [](std::uint8_t b) { return b == 0; }))
            continue;
        if (zeros.empty())
            zeros.assign(page_bytes, 0);
        mem_.writeBytes(base, zeros.data(), page_bytes);
        ++rewritten;
    }
    cpu_.arch() = snap_.arch;
    return rewritten;
}

void
DvsRuntime::restartFromSnapshot()
{
    if (!snap_.valid)
        return;
    const std::uint64_t pages = restoreSnapshot();
    // The restore cost is charged at the (already-switched) recovery
    // frequency — the same term solveRestartSpeculation budgets.
    cpu_.advanceIdle(cfg_.restartRestoreCycles);
    ++stats_.restarts;
    restartRestoreCyclesTotal_ += cfg_.restartRestoreCycles;
    restartPagesTotal_ += pages;
    VISA_TRACE(EventKind::RecoveryRestart, cpu_.cycles(),
               static_cast<std::uint64_t>(snap_.subtask),
               cfg_.restartRestoreCycles, pages);
}

void
DvsRuntime::foldOpenEpoch()
{
    const Cycles now = cpu_.cycles();
    taskSeconds_ += static_cast<double>(now - epochStartCycles_) /
                    (cpu_.frequency() * 1e6);
    epochStartCycles_ = now;
}

void
DvsRuntime::handleMiss()
{
    Platform &platform = cpu_.platform();
    DPRINTF("Runtime",
            "missed checkpoint in sub-task %d of task %d; "
            "recovering\n",
            platform.currentSubtask(), tasksRun_);
    inst_.missedCheckpoint = true;
    missedSubtask_ = platform.currentSubtask();
    inst_.missedSubtask = missedSubtask_;
    ++stats_.checkpointMisses;
    if (Tracer *tr = currentTracer()) {
        tr->record(EventKind::WatchdogFire, cpu_.cycles(),
                   static_cast<std::uint64_t>(missedSubtask_));
        tr->record(EventKind::CheckpointMiss, cpu_.cycles(),
                   static_cast<std::uint64_t>(missedSubtask_),
                   static_cast<std::uint64_t>(tasksRun_));
    }
    platform.maskWatchdog(true);
    recover();
}

StepResult
DvsRuntime::stepInstance(Cycles max_cycles)
{
    if (!instanceActive_)
        fatal("runtime: stepInstance without an active instance");
    StepResult sr;
    const Cycles start_cycles = cpu_.cycles();
    const double start_seconds = taskSeconds_;
    Cycles remaining = max_cycles ? max_cycles : 1;
    for (;;) {
        RunResult res = cpu_.run(remaining);
        if (res.reason == StopReason::Halted) {
            sr.completed = true;
            break;
        }
        if (res.reason == StopReason::WatchdogExpired) {
            handleMiss();
            sr.recovered = true;
            // Recovery itself may exhaust the slice (drain +
            // reconfiguration cycles are simulated, not requested).
            const Cycles used = cpu_.cycles() - start_cycles;
            if (used >= max_cycles)
                break;
            remaining = max_cycles - used;
            continue;
        }
        break;    // CycleBudget: a normal preemption point
    }
    sr.ranCycles = cpu_.cycles() - start_cycles;
    instanceCycles_ += sr.ranCycles;
    if (!sr.completed && instanceCycles_ >= runawayBudget)
        fatal("runtime: task exceeded the runaway cycle budget");
    foldOpenEpoch();
    sr.ranSeconds = taskSeconds_ - start_seconds;
    return sr;
}

StepResult
DvsRuntime::preemptDrain()
{
    StepResult sr;
    if (!instanceActive_)
        return sr;
    const Cycles start_cycles = cpu_.cycles();
    const double start_seconds = taskSeconds_;
    const DrainResult d = cpu_.drainForPreemption();
    if (d.watchdogExpired) {
        handleMiss();
        sr.recovered = true;
    }
    sr.ranCycles = cpu_.cycles() - start_cycles;
    instanceCycles_ += sr.ranCycles;
    foldOpenEpoch();
    sr.ranSeconds = taskSeconds_ - start_seconds;
    return sr;
}

TaskStats
DvsRuntime::finishInstance()
{
    if (!instanceActive_)
        fatal("runtime: finishInstance without an active instance");
    Platform &platform = cpu_.platform();
    platform.onAetReport = nullptr;
    platform.onSubtaskBegin = nullptr;

    // Close the final epoch.
    foldOpenEpoch();
    const MHz final_freq = cpu_.frequency();
    if (meter_)
        meter_->closeEpoch(final_freq);

    TaskStats ts = inst_;
    ts.completionSeconds = taskSeconds_;
    ts.deadlineMet = taskSeconds_ <= cfg_.deadlineSeconds + 1e-12;
    ts.retired = cpu_.retired();
    ts.checksum = platform.lastChecksum();
    ts.checksumReported = platform.checksumReported();

    // Park at the floor frequency until the period ends (§5.2).
    if (meter_ && ts.deadlineMet) {
        MHz idle = cfg_.idleFreq ? cfg_.idleFreq : dvs_.minFreq();
        meter_->accountIdle(cfg_.deadlineSeconds - taskSeconds_, idle);
    }

    // Record AET histories; simple-mode portions are scaled (§4.3).
    for (auto [sub, aet] : aets_) {
        double v = static_cast<double>(aet);
        if (scaleAllAets_ ||
            (missedSubtask_ >= 1 && sub >= missedSubtask_))
            v *= recoveryAetScale_;
        if (sub >= 1 && sub <= pets_.numSubtasks())
            pets_.record(sub - 1,
                         static_cast<std::uint64_t>(std::llround(v)));
    }

    if (Tracer *tr = currentTracer())
        tr->record(EventKind::TaskEnd, cpu_.cycles(),
                   static_cast<std::uint64_t>(tasksRun_),
                   ts.deadlineMet ? 1 : 0, ts.missedCheckpoint ? 1 : 0,
                   taskSeconds_);
    tracedCycles_ += cpu_.cycles();

    ++tasksRun_;
    ++stats_.tasks;
    stats_.totalBusySeconds += taskSeconds_;
    if (!ts.deadlineMet)
        ++stats_.deadlineMisses;
    instanceActive_ = false;
    return ts;
}

// ---- VISA framework on the complex processor ----

FreqPair
VisaComplexRuntime::chooseFrequencies()
{
    // Restart recovery re-executes the mispredicted sub-task, so its
    // admission bound carries the snapshot-restore overhead on top of
    // EQ 4 (DESIGN.md §11).
    FreqPair pair =
        cfg_.recoveryPolicy == RecoveryPolicy::Restart
            ? solveRestartSpeculation(wcet_, pets_, dvs_,
                                      cfg_.deadlineSeconds,
                                      cfg_.ovhdSeconds,
                                      overheadCyclesAtFspec(),
                                      cfg_.restartRestoreCycles)
            : solveVisaSpeculation(wcet_, pets_, dvs_,
                                   cfg_.deadlineSeconds, cfg_.ovhdSeconds,
                                   overheadCyclesAtFspec());
    if (pair.feasible) {
        speculating_ = true;
        fallbackSimple_ = false;
        scaleAllAets_ = false;
        return pair;
    }
    // EQ 4 infeasible with the current PETs: attempt the task in the
    // explicitly-safe configuration (simple mode at a statically
    // sufficient frequency). PET histories recorded meanwhile let a
    // later re-evaluation switch speculation back on.
    MHz fstatic = solveStaticFrequency(wcet_, dvs_, cfg_.deadlineSeconds);
    if (fstatic == 0)
        return {};
    speculating_ = false;
    fallbackSimple_ = true;
    scaleAllAets_ = true;    // AETs will be simple-mode cycles
    return {true, fstatic, fstatic};
}

CheckpointPlan
VisaComplexRuntime::buildPlan()
{
    // EQ 1 checkpoints at the recovery frequency (§4.2). The drain
    // budget shifts every checkpoint earlier; the DVS software and
    // snippet prologue delay the arming.
    double drain_s = static_cast<double>(cfg_.drainBudgetCycles) /
                     (current_.fSpec * 1e6);
    // Restart recovery additionally pays the snapshot restore before
    // re-execution begins; shift every checkpoint earlier by it.
    double restore_s =
        cfg_.recoveryPolicy == RecoveryPolicy::Restart
            ? static_cast<double>(cfg_.restartRestoreCycles) /
                  (current_.fRec * 1e6)
            : 0.0;
    return computeCheckpoints(wcet_, current_.fRec, current_.fSpec,
                              cfg_.deadlineSeconds - drain_s - restore_s,
                              cfg_.ovhdSeconds,
                              cfg_.dvsSoftwareCycles +
                                  cfg_.armSlackCycles);
}

void
VisaComplexRuntime::recover()
{
    // Drain the out-of-order engine into simple mode (cycles are
    // simulated), then switch to the recovery frequency and charge the
    // fixed reconfiguration overhead.
    ooo_.switchToSimple();
    switchFrequency(current_.fRec);
    const Cycles ovhd_cycles = static_cast<Cycles>(
        std::ceil(cfg_.ovhdSeconds * current_.fRec * 1e6));
    cpu_.advanceIdle(ovhd_cycles);
    // Restart policy: discard everything the complex core did since
    // the sub-task boundary and re-execute it in the trusted simple
    // mode — a state-recovery guarantee on top of the paper's timing
    // guarantee (DESIGN.md §11).
    if (cfg_.recoveryPolicy == RecoveryPolicy::Restart)
        restartFromSnapshot();
}

void
VisaComplexRuntime::prepare()
{
    if (fallbackSimple_)
        ooo_.switchToSimple();
    else
        ooo_.switchToComplex();
}

// ---- explicitly-safe simple-fixed processor ----

FreqPair
SimpleFixedRuntime::chooseFrequencies()
{
    // Restart recovery needs the VISA WCET tail EQ 4 provides (the
    // re-executed sub-task runs at f_rec); EQ 2 charges the
    // mispredicted sub-task at f_spec and cannot absorb it.
    if (cfg_.recoveryPolicy == RecoveryPolicy::Restart)
        fatal("runtime: RecoveryPolicy::Restart requires the VISA "
              "complex runtime");
    // Frequency speculation is used only when it lowers the frequency
    // below the static requirement (paper §6.2).
    MHz fstatic = solveStaticFrequency(wcet_, dvs_, cfg_.deadlineSeconds);
    // The per-sub-task detection slack (see buildPlan) can let every
    // sub-task overrun its PET by armSlackCycles undetected; budget it.
    FreqPair spec = solveConventionalSpeculation(
        wcet_, pets_, dvs_, cfg_.deadlineSeconds, cfg_.ovhdSeconds,
        cfg_.dvsSoftwareCycles +
            static_cast<Cycles>(wcet_.numSubtasks()) *
                cfg_.armSlackCycles);
    if (spec.feasible && (fstatic == 0 || spec.fSpec < fstatic)) {
        speculating_ = true;
        return spec;
    }
    if (fstatic != 0) {
        speculating_ = false;
        return {true, fstatic, fstatic};
    }
    return {};
}

CheckpointPlan
SimpleFixedRuntime::buildPlan()
{
    // Conventional frequency speculation (Rotenberg): the watchdog
    // detects a sub-task exceeding its *predicted* execution time —
    // each sub-task adds its own PET budget. EQ 2 already charges the
    // full WCET of the mispredicted sub-task at f_spec, so detection
    // inside the sub-task is safe by construction.
    // Each budget carries a small slack covering the instrumentation
    // snippet between the AET measurement and the watchdog advance;
    // otherwise a PET equal to the historical maximum expires inside
    // the snippet on every typical task.
    CheckpointPlan plan;
    double t = 0.0;
    for (int i = 0; i < wcet_.numSubtasks(); ++i) {
        std::uint64_t inc = pets_.petCycles(i) + cfg_.armSlackCycles;
        plan.increments.push_back(static_cast<std::int64_t>(inc));
        t += pets_.petSeconds(i, current_.fSpec);
        plan.checkpoints.push_back(t);
    }
    return plan;
}

void
SimpleFixedRuntime::recover()
{
    switchFrequency(current_.fRec);
    const Cycles ovhd_cycles = static_cast<Cycles>(
        std::ceil(cfg_.ovhdSeconds * current_.fRec * 1e6));
    cpu_.advanceIdle(ovhd_cycles);
}

void
SimpleFixedRuntime::prepare()
{
}

std::vector<std::uint64_t>
profileComplexAets(const Program &prog, int num_subtasks, double margin,
                   MHz freq)
{
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    mem.loadProgram(prog);
    OooCpu cpu(prog, mem, platform, memctrl);
    cpu.resetForTask();
    cpu.setFrequency(freq);
    std::vector<std::uint64_t> aets(
        static_cast<std::size_t>(num_subtasks), 0);
    platform.onAetReport = [&](int sub, std::uint64_t aet) {
        if (sub >= 1 && sub <= num_subtasks) {
            aets[static_cast<std::size_t>(sub - 1)] =
                static_cast<std::uint64_t>(
                    std::ceil(static_cast<double>(aet) * margin));
        }
    };
    auto res = cpu.run(20'000'000'000ULL);
    if (res.reason != StopReason::Halted)
        fatal("profileComplexAets: program did not halt");
    return aets;
}

} // namespace visa
