/**
 * @file
 * Conventional concurrency (paper §1.1, first application): because
 * tasks finish much sooner on the complex pipeline than on the
 * explicitly-safe one, non-real-time and soft real-time work can be
 * scheduled into the slack after the hard real-time task completes
 * each period. This module runs a background (non-RT) program in that
 * slack, preempting it at each period boundary, and reports the
 * throughput the VISA approach unlocks.
 *
 * (The paper's SMT application — running other threads *simultaneously*
 * with the critical task — is explicitly left to future work there and
 * here; this is the conventional-concurrency baseline it compares
 * against.)
 */

#ifndef VISA_CORE_CONCURRENCY_HH
#define VISA_CORE_CONCURRENCY_HH

#include <memory>

#include "core/runtime.hh"

namespace visa
{

/** Progress of the background workload across periods. */
struct BackgroundStats
{
    std::uint64_t instructionsRetired = 0;
    Cycles cyclesGranted = 0;
    int completions = 0;    ///< times the background program finished
    double slackSeconds = 0.0;
};

/**
 * Runs a hard real-time task under a DvsRuntime and fills the
 * remaining slack of every period with a background program executing
 * on its own (non-critical) core model at the idle operating point.
 */
class SlackScheduler
{
  public:
    /**
     * @param rt        the hard real-time task's run-time system
     * @param bg_prog   the background (non-RT) program; restarted
     *                  whenever it halts
     * @param dvs       the DVS table (the background core runs at the
     *                  floor operating point, where the paper parks
     *                  the processor anyway)
     */
    SlackScheduler(DvsRuntime &rt, const Program &bg_prog,
                   const DvsTable &dvs);

    /**
     * Execute one period: the hard task first, then background work
     * until the period ends. @return the hard task's stats.
     */
    TaskStats runPeriod();

    const BackgroundStats &background() const { return bg_; }

  private:
    DvsRuntime &rt_;
    const Program &bgProg_;
    MHz bgFreq_;
    double period_;

    MainMemory bgMem_;
    Platform bgPlatform_;
    MemController bgMemctrl_;
    std::unique_ptr<SimpleCpu> bgCpu_;
    std::uint64_t bgRetiredBase_ = 0;
    BackgroundStats bg_;
};

} // namespace visa

#endif // VISA_CORE_CONCURRENCY_HH
