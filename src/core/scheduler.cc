#include "core/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace visa
{

namespace
{

std::string
formatted(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // anonymous namespace

/** One admitted task: its private rig plus the scheduler's job state. */
struct MultiTaskScheduler::ManagedTask
{
    SchedTaskDef def;

    // The rig: every task keeps its own cycle/watchdog/memory domain,
    // so preemption freezes exactly this task's watchdog and nothing
    // else (member order is construction order; the CPU references
    // mem/platform/memctrl).
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    std::unique_ptr<Cpu> cpu;
    std::unique_ptr<DvsRuntime> rt;

    // Job state of the current period.
    int released = 0;              ///< jobs released so far
    int done = 0;                  ///< jobs completed so far
    bool ready = false;            ///< a released job awaits completion
    double releaseNominal = 0.0;   ///< r_k of the current job
    double deadline = 0.0;         ///< absolute deadline r_k + T
    int jobPreemptions = 0;
    double jobBusy = 0.0;
    /** Wall time from which the current job may (re)start: its release,
     *  or the preemption point it was last suspended at (multi-core
     *  runs; a core must not run a job from its local future). */
    double avail = 0.0;

    SchedTaskStats stats;
};

MultiTaskScheduler::MultiTaskScheduler(SchedulerConfig cfg)
    : cfg_(cfg)
{
}

MultiTaskScheduler::~MultiTaskScheduler() = default;

int
MultiTaskScheduler::addTask(const SchedTaskDef &def)
{
    if (!def.program || !def.wcet || !def.dvs)
        fatal("scheduler: task '%s' needs program, wcet and dvs",
              def.name.c_str());
    if (def.periodSeconds <= 0.0)
        fatal("scheduler: task '%s' needs a positive period",
              def.name.c_str());
    auto t = std::make_unique<ManagedTask>();
    t->def = def;
    t->mem.loadProgram(*def.program);
    if (def.complexMachine) {
        auto cpu = std::make_unique<OooCpu>(*def.program, t->mem,
                                            t->platform, t->memctrl);
        t->rt = std::make_unique<VisaComplexRuntime>(
            *cpu, *def.program, t->mem, *def.wcet, *def.dvs, def.runtime);
        t->cpu = std::move(cpu);
    } else {
        auto cpu = std::make_unique<SimpleCpu>(*def.program, t->mem,
                                               t->platform, t->memctrl);
        t->rt = std::make_unique<SimpleFixedRuntime>(
            *cpu, *def.program, t->mem, *def.wcet, *def.dvs, def.runtime);
        t->cpu = std::move(cpu);
    }
    t->stats.minSlackSeconds = def.periodSeconds;
    tasks_.push_back(std::move(t));
    return numTasks() - 1;
}

double
MultiTaskScheduler::switchSeconds(MHz f) const
{
    return static_cast<double>(cfg_.contextSwitchCycles) / (f * 1e6);
}

double
MultiTaskScheduler::nominalRelease(const ManagedTask &t) const
{
    return t.def.phaseSeconds + t.released * t.def.periodSeconds;
}

double
MultiTaskScheduler::interferenceFactor() const
{
    if (cfg_.cores <= 1)
        return 1.0;
    // Worst case, every shared-memory access in B_i queues behind one
    // in-flight access from each of the other m-1 cores; memStallShare
    // bounds the fraction of B_i that is such accesses.
    const double perAccess = cfg_.bus.memAccessNs > 0.0
        ? cfg_.bus.busOccupancyNs / cfg_.bus.memAccessNs
        : 0.0;
    return 1.0 + (cfg_.cores - 1) * cfg_.memStallShare * perAccess;
}

double
MultiTaskScheduler::inflatedDemand(int task) const
{
    const SchedTaskDef &d =
        tasks_[static_cast<std::size_t>(task)]->def;
    const double sw = 2.0 * switchSeconds(d.dvs->minFreq());
    return (d.runtime.deadlineSeconds * interferenceFactor() + sw) /
           (1.0 - cfg_.utilizationMargin);
}

std::vector<int>
MultiTaskScheduler::partitionedAssignment() const
{
    const int m = cfg_.cores;
    std::vector<int> assign(static_cast<std::size_t>(numTasks()), -1);
    std::vector<double> load(static_cast<std::size_t>(m), 0.0);
    for (int i = 0; i < numTasks(); ++i) {
        const double u = inflatedDemand(i) /
                         tasks_[static_cast<std::size_t>(i)]
                             ->def.periodSeconds;
        int core;
        if (i < static_cast<int>(cfg_.affinity.size()) &&
            cfg_.affinity[static_cast<std::size_t>(i)] >= 0) {
            core = cfg_.affinity[static_cast<std::size_t>(i)];
            if (core >= m)
                fatal("scheduler: task %d pinned to core %d of a "
                      "%d-core chip",
                      i, core, m);
        } else {
            // Worst-fit: the least-loaded core; strict < keeps the
            // lowest id on ties, so placement is deterministic.
            core = 0;
            for (int c = 1; c < m; ++c)
                if (load[static_cast<std::size_t>(c)] <
                    load[static_cast<std::size_t>(core)])
                    core = c;
        }
        assign[static_cast<std::size_t>(i)] = core;
        load[static_cast<std::size_t>(core)] += u;
    }
    return assign;
}

std::string
MultiTaskScheduler::admissionError() const
{
    if (tasks_.empty())
        return "no tasks";
    if (cfg_.cores < 1)
        return "cores must be >= 1";
    std::vector<PeriodicTask> set;
    for (const auto &tp : tasks_) {
        const SchedTaskDef &d = tp->def;
        const double budget = d.runtime.deadlineSeconds;
        if (budget > d.periodSeconds)
            return formatted("task '%s': budget %.3g ms exceeds its "
                             "period %.3g ms",
                             d.name.c_str(), budget * 1e3,
                             d.periodSeconds * 1e3);
        // Single-task feasibility of the budget: the task must have a
        // safe schedule within B_i on its own machine — statically, or
        // by frequency speculation with conservatively seeded PETs.
        bool feasible =
            solveStaticFrequency(*d.wcet, *d.dvs, budget) != 0;
        if (!feasible) {
            PetEstimator pets(d.wcet->numSubtasks(),
                              d.runtime.petPolicy);
            std::vector<std::uint64_t> seed;
            for (int k = 0; k < d.wcet->numSubtasks(); ++k)
                seed.push_back(
                    d.wcet->subtaskCycles(k, d.dvs->maxFreq()));
            pets.seed(seed);
            const FreqPair pair = d.complexMachine
                ? solveVisaSpeculation(
                      *d.wcet, pets, *d.dvs, budget, d.runtime.ovhdSeconds,
                      d.runtime.dvsSoftwareCycles +
                          d.runtime.drainBudgetCycles)
                : solveConventionalSpeculation(
                      *d.wcet, pets, *d.dvs, budget, d.runtime.ovhdSeconds,
                      d.runtime.dvsSoftwareCycles +
                          static_cast<Cycles>(d.wcet->numSubtasks()) *
                              d.runtime.armSlackCycles);
            feasible = pair.feasible;
        }
        if (!feasible)
            return formatted("task '%s': budget %.3g ms is infeasible "
                             "even at the top operating point",
                             d.name.c_str(), budget * 1e3);
        // Demand per job: the budget plus two context switches (in and
        // out), costed at the slowest clock the governor could pick.
        const double sw = 2.0 * switchSeconds(d.dvs->minFreq());
        set.push_back({budget + sw, d.periodSeconds});
    }
    if (cfg_.cores == 1) {
        // The configured margin inflates demand rather than deflating
        // the bound, so the reported utilization stays recognizable.
        for (PeriodicTask &pt : set)
            pt.wcet /= (1.0 - cfg_.utilizationMargin);
        if (cfg_.policy == SchedPolicy::Edf) {
            if (!edfSchedulable(set))
                return formatted("EDF: utilization %.3f of the inflated "
                                 "set exceeds 1",
                                 utilization(set));
        } else {
            if (!rmResponseTimeFeasible(set))
                return formatted("RM: response-time analysis rejects "
                                 "the inflated set (utilization %.3f)",
                                 utilization(set));
        }
        return "";
    }

    // Multi-core: compose the per-task single-core feasibility above
    // with a placement-aware test over demands inflated by the
    // cross-core shared-memory interference bound.
    const int m = cfg_.cores;
    for (std::size_t i = 0; i < cfg_.affinity.size(); ++i)
        if (cfg_.affinity[i] >= m)
            return formatted("affinity: task %d pinned to core %d of a "
                             "%d-core chip",
                             static_cast<int>(i), cfg_.affinity[i], m);
    if (cfg_.placement == PlacementPolicy::Global) {
        if (cfg_.policy != SchedPolicy::Edf)
            return "global placement supports EDF only";
        double total = 0.0;
        double umax = 0.0;
        for (int i = 0; i < numTasks(); ++i) {
            const double u =
                inflatedDemand(i) /
                tasks_[static_cast<std::size_t>(i)]->def.periodSeconds;
            if (u > 1.0)
                return formatted(
                    "G-EDF: task '%s': interference-inflated "
                    "utilization %.3f exceeds 1",
                    tasks_[static_cast<std::size_t>(i)]
                        ->def.name.c_str(),
                    u);
            total += u;
            umax = std::max(umax, u);
        }
        const double bound = m - (m - 1) * umax;
        if (total > bound)
            return formatted("G-EDF: inflated utilization %.3f exceeds "
                             "the GFB bound %.3f (m=%d, Umax=%.3f)",
                             total, bound, m, umax);
        return "";
    }
    const std::vector<int> assign = partitionedAssignment();
    for (int c = 0; c < m; ++c) {
        std::vector<PeriodicTask> part;
        for (int i = 0; i < numTasks(); ++i)
            if (assign[static_cast<std::size_t>(i)] == c)
                part.push_back(
                    {inflatedDemand(i),
                     tasks_[static_cast<std::size_t>(i)]
                         ->def.periodSeconds});
        if (part.empty())
            continue;
        if (cfg_.policy == SchedPolicy::Edf) {
            if (!edfSchedulable(part))
                return formatted("P-EDF: core %d: interference-inflated "
                                 "utilization %.3f exceeds 1",
                                 c, utilization(part));
        } else if (!rmResponseTimeFeasible(part)) {
            return formatted("P-RM: core %d: response-time analysis "
                             "rejects the partition (utilization %.3f)",
                             c, utilization(part));
        }
    }
    return "";
}

int
MultiTaskScheduler::pickReady() const
{
    int best = -1;
    double best_key = 0.0;
    for (int i = 0; i < numTasks(); ++i) {
        const ManagedTask &t = *tasks_[i];
        if (!t.ready)
            continue;
        const double key = cfg_.policy == SchedPolicy::Edf
            ? t.deadline
            : t.def.periodSeconds;
        // Strict < keeps the lowest task index on ties — the
        // deterministic tie-break the tests pin down.
        if (best < 0 || key < best_key) {
            best = i;
            best_key = key;
        }
    }
    return best;
}

MHz
MultiTaskScheduler::resolveFrequencyOn(int next, MHz &slot)
{
    ManagedTask &t = *tasks_[next];
    const MHz requested = t.rt->requestedFrequency();
    MHz f = requested;
    if (cfg_.governor == GovernorPolicy::MaxRequest) {
        for (const auto &u : tasks_)
            if (u->ready && u->rt->instanceActive())
                f = std::max(f, u->rt->requestedFrequency());
    }
    if (f != requested)
        t.rt->overrideFrequency(f);
    if (slot != 0 && f != slot)
        ++outcome_.freqChanges;
    slot = f;
    return f;
}

ScheduleOutcome
MultiTaskScheduler::run(int jobs_per_task)
{
    if (jobs_per_task <= 0)
        fatal("scheduler: jobs_per_task must be positive");
    const std::string err = admissionError();
    if (!err.empty())
        fatal("scheduler: task set rejected: %s", err.c_str());
    if (cfg_.cores > 1)
        return cfg_.placement == PlacementPolicy::Partitioned
            ? runPartitioned(jobs_per_task)
            : runMulti(jobs_per_task);
    // Stale multi-core state (a prior runMulti) must not leak into the
    // single-core stats.
    bus_.reset();
    assignment_.clear();
    coreStats_.clear();

    jobs_.clear();
    outcome_ = ScheduleOutcome{};
    wall_ = 0.0;
    onCore_ = -1;
    lastOnCore_ = -1;
    coreFreq_ = 0;

    // Runaway guard: an admitted set completes well within one extra
    // hyperperiod of the last release.
    double horizon = 1e-3;
    for (const auto &t : tasks_)
        horizon = std::max(horizon,
                           t->def.phaseSeconds +
                               (jobs_per_task + 2) * t->def.periodSeconds);
    horizon = 10.0 * horizon + 1.0;

    Tracer *const tr = currentTracer();
    // Scheduler events carry the wall clock (integer nanoseconds in
    // the cycle field): per-task cycle domains are incomparable, and
    // the runtimes bank their own offsets into the tracer.
    const auto schedEvent = [&](EventKind k, int task, std::uint64_t b,
                                std::uint64_t c) {
        if (!tr)
            return;
        const Cycles off = tr->cycleOffset();
        tr->setCycleOffset(0);
        tr->record(k, static_cast<Cycles>(std::llround(wall_ * 1e9)),
                   static_cast<std::uint64_t>(task), b, c, wall_);
        tr->setCycleOffset(off);
    };

    for (;;) {
        // 1. Release every job that is due. A task re-releases only
        // after its previous job completed (jobs of one task do not
        // overlap; an overrun shows up as a deadline miss instead).
        bool all_done = true;
        for (int i = 0; i < numTasks(); ++i) {
            ManagedTask &t = *tasks_[i];
            if (t.released < jobs_per_task || t.done < t.released)
                all_done = false;
            if (t.released < jobs_per_task && t.done == t.released &&
                !t.ready && nominalRelease(t) <= wall_ + 1e-15) {
                t.releaseNominal = nominalRelease(t);
                t.deadline = t.releaseNominal + t.def.periodSeconds;
                t.ready = true;
                t.jobPreemptions = 0;
                t.jobBusy = 0.0;
                ++t.released;
                schedEvent(EventKind::SchedRelease, i,
                           static_cast<std::uint64_t>(t.released - 1), 0);
            }
        }
        if (all_done)
            break;

        // 2. Pick the highest-priority ready job.
        const int next = pickReady();
        if (next < 0) {
            double nr = std::numeric_limits<double>::infinity();
            for (const auto &t : tasks_)
                if (t->released < jobs_per_task &&
                    t->done == t->released)
                    nr = std::min(nr, nominalRelease(*t));
            if (!std::isfinite(nr))
                fatal("scheduler: idle with no pending release");
            if (nr > wall_) {
                outcome_.idleSeconds += nr - wall_;
                wall_ = nr;
            }
            continue;
        }
        ManagedTask &t = *tasks_[next];

        // 3. Dispatch (possibly preempting the running task).
        if (onCore_ != next) {
            if (onCore_ >= 0) {
                ManagedTask &out = *tasks_[onCore_];
                // Retire the outgoing task's in-flight instructions;
                // the cycles are its own execution time. A watchdog
                // expiry surfacing here takes the recovery path before
                // the task is suspended.
                const StepResult d = out.rt->preemptDrain();
                wall_ += d.ranSeconds;
                out.jobBusy += d.ranSeconds;
                out.stats.busySeconds += d.ranSeconds;
                if (d.recovered) {
                    ++out.stats.checkpointMisses;
                    ++outcome_.checkpointMisses;
                    schedEvent(EventKind::SchedRecovery, onCore_,
                               static_cast<std::uint64_t>(std::max(
                                   0, out.rt->activeMissedSubtask())),
                               0);
                }
                ++out.jobPreemptions;
                ++out.stats.preemptions;
                ++outcome_.preemptions;
                schedEvent(EventKind::SchedPreempt, onCore_,
                           static_cast<std::uint64_t>(out.released - 1),
                           static_cast<std::uint64_t>(next));
            }
            if (!t.rt->instanceActive()) {
                const int job = t.released - 1;
                if (t.def.forceMissEvery > 0 &&
                    job % t.def.forceMissEvery == 0)
                    t.rt->forceNextMiss(t.def.forceMissIncrement);
                const bool induce = t.def.induceMissEvery > 0 &&
                                    job > 0 &&
                                    job % t.def.induceMissEvery == 0;
                t.rt->beginInstance(induce);
            }
            const MHz f = resolveFrequencyOn(next, coreFreq_);
            if (lastOnCore_ != next) {
                // Context-switch cost: wall time only, charged to no
                // task's CPU — it must not tick any watchdog.
                const double sw = switchSeconds(f);
                wall_ += sw;
                outcome_.switchOverheadSeconds += sw;
                ++outcome_.contextSwitches;
            }
            onCore_ = next;
            lastOnCore_ = next;
            ++outcome_.dispatches;
            schedEvent(EventKind::SchedDispatch, next,
                       static_cast<std::uint64_t>(t.released - 1),
                       static_cast<std::uint64_t>(f));
        }

        // 4. Run until the next scheduling point: the earliest pending
        // release (a possible preemption), capped by the quantum.
        double next_event = std::numeric_limits<double>::infinity();
        for (const auto &u : tasks_)
            if (u->released < jobs_per_task && u->done == u->released &&
                !u->ready)
                next_event = std::min(next_event, nominalRelease(*u));
        Cycles budget = cfg_.quantumCycles;
        if (std::isfinite(next_event) && next_event > wall_) {
            const MHz f = t.cpu->frequency();
            const Cycles until = static_cast<Cycles>(
                std::ceil((next_event - wall_) * f * 1e6));
            budget = std::min(budget, std::max<Cycles>(until, 1));
        }

        const StepResult sr = t.rt->stepInstance(budget);
        wall_ += sr.ranSeconds;
        t.jobBusy += sr.ranSeconds;
        t.stats.busySeconds += sr.ranSeconds;
        if (sr.recovered) {
            ++t.stats.checkpointMisses;
            ++outcome_.checkpointMisses;
            schedEvent(EventKind::SchedRecovery, next,
                       static_cast<std::uint64_t>(std::max(
                           0, t.rt->activeMissedSubtask())),
                       0);
        }

        if (sr.completed) {
            const TaskStats ts = t.rt->finishInstance();
            JobRecord jr;
            jr.task = next;
            jr.job = t.released - 1;
            jr.releaseSeconds = t.releaseNominal;
            jr.completionSeconds = wall_;
            jr.deadlineSeconds = t.deadline;
            jr.deadlineMet = wall_ <= t.deadline + 1e-12;
            jr.missedCheckpoint = ts.missedCheckpoint;
            jr.preemptions = t.jobPreemptions;
            jr.busySeconds = t.jobBusy;
            jobs_.push_back(jr);
            ++outcome_.jobs;

            SchedTaskStats &st = t.stats;
            ++st.jobs;
            st.retired += ts.retired;
            if (!jr.deadlineMet) {
                ++st.deadlineMisses;
                ++outcome_.deadlineMisses;
            }
            if (t.def.expectedChecksum &&
                (!ts.checksumReported ||
                 ts.checksum != t.def.expectedChecksum))
                ++st.badChecksums;
            const double slack = t.deadline - wall_;
            if (st.jobs == 1 || slack < st.minSlackSeconds)
                st.minSlackSeconds = slack;
            st.maxResponseSeconds = std::max(
                st.maxResponseSeconds, wall_ - t.releaseNominal);

            t.ready = false;
            ++t.done;
            schedEvent(EventKind::SchedComplete, next,
                       static_cast<std::uint64_t>(jr.job),
                       jr.deadlineMet ? 1 : 0);
            onCore_ = -1;
        }

        if (wall_ > horizon)
            fatal("scheduler: wall clock %.3g s exceeded the runaway "
                  "horizon %.3g s",
                  wall_, horizon);
    }

    outcome_.wallSeconds = wall_;
    return outcome_;
}

/**
 * The multi-core engine: every core keeps its own wall clock (they are
 * independent clock domains), and the chip is stepped by always letting
 * the lowest-id core with runnable work at the earliest local time run
 * one slice. Releases are observed lazily against each core's own
 * clock — a core never sees a job released, or a migrated job
 * suspended, in its local future — which keeps the interleaving a pure
 * function of the task set (determinism the chip_suite pins down).
 */
ScheduleOutcome
MultiTaskScheduler::runMulti(int jobs_per_task)
{
    const int m = cfg_.cores;
    bus_ = std::make_unique<chip::ChipInterconnect>(m, cfg_.bus);
    assignment_.assign(static_cast<std::size_t>(numTasks()), -1);
    if (cfg_.placement == PlacementPolicy::Partitioned)
        assignment_ = partitionedAssignment();

    jobs_.clear();
    outcome_ = ScheduleOutcome{};
    coreStats_.assign(static_cast<std::size_t>(m), CoreStats{});
    std::vector<double> cwall(static_cast<std::size_t>(m), 0.0);
    std::vector<int> onCore(static_cast<std::size_t>(m), -1);
    std::vector<int> lastOn(static_cast<std::size_t>(m), -1);
    std::vector<MHz> cfreq(static_cast<std::size_t>(m), 0);
    std::vector<int> taskCore(static_cast<std::size_t>(numTasks()), -1);
    for (auto &t : tasks_)
        t->avail = 0.0;

    double horizon = 1e-3;
    for (const auto &t : tasks_)
        horizon = std::max(horizon,
                           t->def.phaseSeconds +
                               (jobs_per_task + 2) * t->def.periodSeconds);
    horizon = 10.0 * horizon + 1.0;

    Tracer *const tr = currentTracer();
    const auto schedEvent = [&](int core, double w, EventKind k, int task,
                                std::uint64_t b, std::uint64_t c) {
        if (!tr)
            return;
        const Cycles off = tr->cycleOffset();
        const int prevCore = tr->coreId();
        tr->setCycleOffset(0);
        tr->setCoreId(core);
        tr->record(k, static_cast<Cycles>(std::llround(w * 1e9)),
                   static_cast<std::uint64_t>(task), b, c, w);
        tr->setCoreId(prevCore);
        tr->setCycleOffset(off);
    };

    // Task @p i has an unreleased job pending?
    const auto pendingRelease = [&](const ManagedTask &t) {
        return t.released < jobs_per_task && t.done == t.released &&
               !t.ready;
    };
    // May core @p c ever run task @p i?
    const auto placedOn = [&](int i, int c) {
        const int a = assignment_[static_cast<std::size_t>(i)];
        return a < 0 || a == c;
    };
    // Release task @p i's next job, first observed due at wall @p w.
    const auto release = [&](int i, double w) {
        ManagedTask &t = *tasks_[static_cast<std::size_t>(i)];
        t.releaseNominal = nominalRelease(t);
        t.deadline = t.releaseNominal + t.def.periodSeconds;
        t.ready = true;
        t.avail = t.releaseNominal;
        t.jobPreemptions = 0;
        t.jobBusy = 0.0;
        ++t.released;
        schedEvent(-1, w, EventKind::SchedRelease, i,
                   static_cast<std::uint64_t>(t.released - 1), 0);
    };

    for (;;) {
        bool all_done = true;
        for (const auto &t : tasks_)
            if (t->released < jobs_per_task || t->done < t->released)
                all_done = false;
        if (all_done)
            break;

        // Visit cores in (local wall, id) order; the first one with a
        // runnable job executes a slice this iteration.
        std::vector<int> order(static_cast<std::size_t>(m));
        for (int c = 0; c < m; ++c)
            order[static_cast<std::size_t>(c)] = c;
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return cwall[static_cast<std::size_t>(a)] <
                   cwall[static_cast<std::size_t>(b)];
        });

        int core = -1;
        int next = -1;
        for (int c : order) {
            const double w = cwall[static_cast<std::size_t>(c)];
            for (int i = 0; i < numTasks(); ++i)
                if (pendingRelease(*tasks_[static_cast<std::size_t>(i)]) &&
                    nominalRelease(*tasks_[static_cast<std::size_t>(i)]) <=
                        w + 1e-15)
                    release(i, w);
            int best = -1;
            double best_key = 0.0;
            for (int i = 0; i < numTasks(); ++i) {
                const ManagedTask &t = *tasks_[static_cast<std::size_t>(i)];
                if (!t.ready || !placedOn(i, c))
                    continue;
                const int host = taskCore[static_cast<std::size_t>(i)];
                if (host != -1 && host != c)
                    continue;    // its context is live on another core
                if (t.avail > w + 1e-15)
                    continue;    // released/suspended in c's future
                const double key = cfg_.policy == SchedPolicy::Edf
                    ? t.deadline
                    : t.def.periodSeconds;
                if (best < 0 || key < best_key) {
                    best = i;
                    best_key = key;
                }
            }
            if (best >= 0) {
                core = c;
                next = best;
                break;
            }
        }

        if (core < 0) {
            // Every core is idle at its local time: advance each to its
            // next local event (a fresh release, or a suspended job
            // becoming available to it).
            bool advanced = false;
            for (int c = 0; c < m; ++c) {
                double tn = std::numeric_limits<double>::infinity();
                for (int i = 0; i < numTasks(); ++i) {
                    const ManagedTask &t =
                        *tasks_[static_cast<std::size_t>(i)];
                    if (!placedOn(i, c))
                        continue;
                    if (pendingRelease(t))
                        tn = std::min(tn, nominalRelease(t));
                    else if (t.ready &&
                             taskCore[static_cast<std::size_t>(i)] == -1)
                        tn = std::min(tn, t.avail);
                }
                double &w = cwall[static_cast<std::size_t>(c)];
                if (std::isfinite(tn) && tn > w) {
                    coreStats_[static_cast<std::size_t>(c)].idleSeconds +=
                        tn - w;
                    outcome_.idleSeconds += tn - w;
                    w = tn;
                    advanced = true;
                }
            }
            if (!advanced)
                fatal("scheduler: idle with no pending release");
            continue;
        }

        ManagedTask &t = *tasks_[static_cast<std::size_t>(next)];
        double &w = cwall[static_cast<std::size_t>(core)];
        CoreStats &cs = coreStats_[static_cast<std::size_t>(core)];
        if (tr)
            tr->setCoreId(core);

        if (onCore[static_cast<std::size_t>(core)] != next) {
            const int out_i = onCore[static_cast<std::size_t>(core)];
            if (out_i >= 0) {
                ManagedTask &out = *tasks_[static_cast<std::size_t>(out_i)];
                const StepResult d = out.rt->preemptDrain();
                w += d.ranSeconds;
                cs.busySeconds += d.ranSeconds;
                out.jobBusy += d.ranSeconds;
                out.stats.busySeconds += d.ranSeconds;
                if (d.recovered) {
                    ++out.stats.checkpointMisses;
                    ++outcome_.checkpointMisses;
                    schedEvent(core, w, EventKind::SchedRecovery, out_i,
                               static_cast<std::uint64_t>(std::max(
                                   0, out.rt->activeMissedSubtask())),
                               0);
                }
                ++out.jobPreemptions;
                ++out.stats.preemptions;
                ++outcome_.preemptions;
                // Suspended here: available to any core from this wall
                // time on (its context ships with its private rig).
                out.avail = w;
                taskCore[static_cast<std::size_t>(out_i)] = -1;
                schedEvent(core, w, EventKind::SchedPreempt, out_i,
                           static_cast<std::uint64_t>(out.released - 1),
                           static_cast<std::uint64_t>(next));
            }
            if (!t.rt->instanceActive()) {
                const int job = t.released - 1;
                if (t.def.forceMissEvery > 0 &&
                    job % t.def.forceMissEvery == 0)
                    t.rt->forceNextMiss(t.def.forceMissIncrement);
                const bool induce = t.def.induceMissEvery > 0 &&
                                    job > 0 &&
                                    job % t.def.induceMissEvery == 0;
                t.rt->beginInstance(induce);
            }
            const MHz f = resolveFrequencyOn(
                next, cfreq[static_cast<std::size_t>(core)]);
            if (lastOn[static_cast<std::size_t>(core)] != next) {
                const double sw = switchSeconds(f);
                w += sw;
                outcome_.switchOverheadSeconds += sw;
                ++outcome_.contextSwitches;
                ++cs.contextSwitches;
            }
            onCore[static_cast<std::size_t>(core)] = next;
            lastOn[static_cast<std::size_t>(core)] = next;
            taskCore[static_cast<std::size_t>(next)] = core;
            ++outcome_.dispatches;
            ++cs.dispatches;
            schedEvent(core, w, EventKind::SchedDispatch, next,
                       static_cast<std::uint64_t>(t.released - 1),
                       static_cast<std::uint64_t>(f));
        }

        // Route the task's misses through this core's bus port and
        // re-anchor the bus clock to the core's wall; anchoring every
        // slice bounds cycle-to-ns drift to one quantum.
        t.memctrl.attachBus(bus_.get(), core);
        bus_->syncCore(core, w * 1e9, t.cpu->cycles());

        // Run to the next scheduling point: the earliest release that
        // could preempt on this core, capped by the quantum.
        double next_event = std::numeric_limits<double>::infinity();
        for (int i = 0; i < numTasks(); ++i)
            if (pendingRelease(*tasks_[static_cast<std::size_t>(i)]) &&
                placedOn(i, core))
                next_event = std::min(
                    next_event,
                    nominalRelease(*tasks_[static_cast<std::size_t>(i)]));
        Cycles budget = cfg_.quantumCycles;
        if (std::isfinite(next_event) && next_event > w) {
            const MHz f = t.cpu->frequency();
            const Cycles until = static_cast<Cycles>(
                std::ceil((next_event - w) * f * 1e6));
            budget = std::min(budget, std::max<Cycles>(until, 1));
        }

        const StepResult sr = t.rt->stepInstance(budget);
        w += sr.ranSeconds;
        cs.busySeconds += sr.ranSeconds;
        t.jobBusy += sr.ranSeconds;
        t.stats.busySeconds += sr.ranSeconds;
        if (sr.recovered) {
            ++t.stats.checkpointMisses;
            ++outcome_.checkpointMisses;
            schedEvent(core, w, EventKind::SchedRecovery, next,
                       static_cast<std::uint64_t>(std::max(
                           0, t.rt->activeMissedSubtask())),
                       0);
        }

        if (sr.completed) {
            const TaskStats ts = t.rt->finishInstance();
            JobRecord jr;
            jr.task = next;
            jr.job = t.released - 1;
            jr.releaseSeconds = t.releaseNominal;
            jr.completionSeconds = w;
            jr.deadlineSeconds = t.deadline;
            jr.deadlineMet = w <= t.deadline + 1e-12;
            jr.missedCheckpoint = ts.missedCheckpoint;
            jr.preemptions = t.jobPreemptions;
            jr.busySeconds = t.jobBusy;
            jobs_.push_back(jr);
            ++outcome_.jobs;

            SchedTaskStats &st = t.stats;
            ++st.jobs;
            st.retired += ts.retired;
            if (!jr.deadlineMet) {
                ++st.deadlineMisses;
                ++outcome_.deadlineMisses;
            }
            if (t.def.expectedChecksum &&
                (!ts.checksumReported ||
                 ts.checksum != t.def.expectedChecksum))
                ++st.badChecksums;
            const double slack = t.deadline - w;
            if (st.jobs == 1 || slack < st.minSlackSeconds)
                st.minSlackSeconds = slack;
            st.maxResponseSeconds =
                std::max(st.maxResponseSeconds, w - t.releaseNominal);

            t.ready = false;
            ++t.done;
            schedEvent(core, w, EventKind::SchedComplete, next,
                       static_cast<std::uint64_t>(jr.job),
                       jr.deadlineMet ? 1 : 0);
            onCore[static_cast<std::size_t>(core)] = -1;
            taskCore[static_cast<std::size_t>(next)] = -1;
        }

        if (w > horizon)
            fatal("scheduler: core %d wall clock %.3g s exceeded the "
                  "runaway horizon %.3g s",
                  core, w, horizon);
    }

    if (tr)
        tr->setCoreId(-1);
    double wmax = 0.0;
    for (int c = 0; c < m; ++c) {
        coreStats_[static_cast<std::size_t>(c)].wallSeconds =
            cwall[static_cast<std::size_t>(c)];
        wmax = std::max(wmax, cwall[static_cast<std::size_t>(c)]);
    }
    wall_ = wmax;
    outcome_.wallSeconds = wmax;
    // The rigs outlive this run; detach them from the bus (the bus
    // itself stays alive for buildStats).
    for (auto &t : tasks_)
        t->memctrl.attachBus(nullptr);
    return outcome_;
}

/**
 * The partitioned engine: every core owns a disjoint partition, so the
 * per-core schedules are independent except for shared-bus contention
 * (resolved by epoch-buffered routing: within one epochSeconds quantum
 * a core sees only the barrier-frozen bus plus its own traffic, and the
 * barrier drain replays all requests in (ns, core id) order) and the
 * output streams (per-core job lists, counters and trace rings, merged
 * in deterministic order at the barriers / at the end). Every per-core
 * quantity has exactly one writer, so the epoch's cores can run on
 * concurrent worker threads — and because nothing a core computes
 * depends on how the host interleaved them, the result is bit-identical
 * for any VISA_THREADS setting, including 1.
 */
ScheduleOutcome
MultiTaskScheduler::runPartitioned(int jobs_per_task)
{
    const int m = cfg_.cores;
    bus_ = std::make_unique<chip::ChipInterconnect>(m, cfg_.bus);
    assignment_ = partitionedAssignment();

    jobs_.clear();
    outcome_ = ScheduleOutcome{};
    coreStats_.assign(static_cast<std::size_t>(m), CoreStats{});
    for (auto &t : tasks_)
        t->avail = 0.0;

    double horizon = 1e-3;
    for (const auto &t : tasks_)
        horizon = std::max(horizon,
                           t->def.phaseSeconds +
                               (jobs_per_task + 2) * t->def.periodSeconds);
    horizon = 10.0 * horizon + 1.0;
    const double epoch =
        cfg_.epochSeconds > 0.0 ? cfg_.epochSeconds : 1e-3;

    Tracer *const tr = currentTracer();
    std::vector<Tracer> rings;
    if (tr) {
        rings.reserve(static_cast<std::size_t>(m));
        for (int c = 0; c < m; ++c) {
            rings.emplace_back(tr->capacity());
            rings.back().setKindMask(tr->kindMask());
            rings.back().setCoreId(c);
        }
    }

    /** One core's whole engine state; written only by its own arm. */
    struct CoreEngine
    {
        std::vector<int> members;    ///< task indices of the partition
        double w = 0.0;              ///< local wall clock
        int onCore = -1;
        int lastOn = -1;
        MHz freq = 0;
        bool done = false;
        ScheduleOutcome out;         ///< this core's counter shares
        std::vector<JobRecord> jobs;
    };
    std::vector<CoreEngine> eng(static_cast<std::size_t>(m));
    for (int i = 0; i < numTasks(); ++i)
        eng[static_cast<std::size_t>(assignment_[static_cast<std::size_t>(
                i)])]
            .members.push_back(i);

    // Stamp @p k on @p ring at wall @p w; @p core overrides the ring's
    // standing core id (releases stay unstamped, core -1, like the
    // serial engines').
    const auto ringEvent = [](Tracer *ring, int core, double w,
                              EventKind k, int task, std::uint64_t b,
                              std::uint64_t c) {
        if (!ring)
            return;
        const Cycles off = ring->cycleOffset();
        const int prevCore = ring->coreId();
        ring->setCycleOffset(0);
        ring->setCoreId(core);
        ring->record(k, static_cast<Cycles>(std::llround(w * 1e9)),
                     static_cast<std::uint64_t>(task), b, c, w);
        ring->setCoreId(prevCore);
        ring->setCycleOffset(off);
    };
    const auto pendingRelease = [&](const ManagedTask &t) {
        return t.released < jobs_per_task && t.done == t.released &&
               !t.ready;
    };

    // Advance core @p c's schedule to @p epochEnd (or to completion of
    // its partition). Runs on a worker thread; touches only this
    // core's engine, its own tasks' rigs/stats, its coreStats_ slot,
    // its bus lane/clock, and its trace ring.
    const auto advanceTo = [&](int c, double epochEnd) {
        CoreEngine &e = eng[static_cast<std::size_t>(c)];
        if (e.done)
            return;
        CoreStats &cs = coreStats_[static_cast<std::size_t>(c)];
        Tracer *const ring =
            tr ? &rings[static_cast<std::size_t>(c)] : nullptr;
        Tracer *const prev = ring ? installTracer(ring) : nullptr;

        for (;;) {
            bool all_done = true;
            for (int i : e.members) {
                const ManagedTask &t = *tasks_[static_cast<std::size_t>(i)];
                if (t.released < jobs_per_task || t.done < t.released) {
                    all_done = false;
                    break;
                }
            }
            if (all_done) {
                e.done = true;
                break;
            }
            if (e.w >= epochEnd)
                break;

            // Release every own job due at the local wall.
            for (int i : e.members) {
                ManagedTask &t = *tasks_[static_cast<std::size_t>(i)];
                if (pendingRelease(t) &&
                    nominalRelease(t) <= e.w + 1e-15) {
                    t.releaseNominal = nominalRelease(t);
                    t.deadline = t.releaseNominal + t.def.periodSeconds;
                    t.ready = true;
                    t.avail = t.releaseNominal;
                    t.jobPreemptions = 0;
                    t.jobBusy = 0.0;
                    ++t.released;
                    ringEvent(ring, -1, e.w, EventKind::SchedRelease, i,
                              static_cast<std::uint64_t>(t.released - 1),
                              0);
                }
            }

            // Highest-priority ready own job; lowest index on ties.
            int next = -1;
            double best_key = 0.0;
            for (int i : e.members) {
                const ManagedTask &t = *tasks_[static_cast<std::size_t>(i)];
                if (!t.ready || t.avail > e.w + 1e-15)
                    continue;
                const double key = cfg_.policy == SchedPolicy::Edf
                    ? t.deadline
                    : t.def.periodSeconds;
                if (next < 0 || key < best_key) {
                    next = i;
                    best_key = key;
                }
            }

            if (next < 0) {
                // Idle to the next own event, capped at the barrier.
                double tn = std::numeric_limits<double>::infinity();
                for (int i : e.members) {
                    const ManagedTask &t =
                        *tasks_[static_cast<std::size_t>(i)];
                    if (pendingRelease(t))
                        tn = std::min(tn, nominalRelease(t));
                    else if (t.ready)
                        tn = std::min(tn, t.avail);
                }
                if (!std::isfinite(tn))
                    fatal("scheduler: core %d idle with no pending "
                          "release",
                          c);
                const double target = std::min(tn, epochEnd);
                if (target > e.w) {
                    cs.idleSeconds += target - e.w;
                    e.out.idleSeconds += target - e.w;
                    e.w = target;
                }
                if (tn > epochEnd)
                    break;    // nothing more until after the barrier
                continue;
            }

            ManagedTask &t = *tasks_[static_cast<std::size_t>(next)];
            if (e.onCore != next) {
                if (e.onCore >= 0) {
                    ManagedTask &out =
                        *tasks_[static_cast<std::size_t>(e.onCore)];
                    const StepResult d = out.rt->preemptDrain();
                    e.w += d.ranSeconds;
                    cs.busySeconds += d.ranSeconds;
                    out.jobBusy += d.ranSeconds;
                    out.stats.busySeconds += d.ranSeconds;
                    if (d.recovered) {
                        ++out.stats.checkpointMisses;
                        ++e.out.checkpointMisses;
                        ringEvent(ring, c, e.w, EventKind::SchedRecovery,
                                  e.onCore,
                                  static_cast<std::uint64_t>(std::max(
                                      0, out.rt->activeMissedSubtask())),
                                  0);
                    }
                    ++out.jobPreemptions;
                    ++out.stats.preemptions;
                    ++e.out.preemptions;
                    out.avail = e.w;
                    ringEvent(ring, c, e.w, EventKind::SchedPreempt,
                              e.onCore,
                              static_cast<std::uint64_t>(out.released - 1),
                              static_cast<std::uint64_t>(next));
                }
                if (!t.rt->instanceActive()) {
                    const int job = t.released - 1;
                    if (t.def.forceMissEvery > 0 &&
                        job % t.def.forceMissEvery == 0)
                        t.rt->forceNextMiss(t.def.forceMissIncrement);
                    const bool induce = t.def.induceMissEvery > 0 &&
                                        job > 0 &&
                                        job % t.def.induceMissEvery == 0;
                    t.rt->beginInstance(induce);
                }
                // Per-partition governor: on a partitioned chip each
                // core is its own DVS domain, so MaxRequest maximizes
                // over the partition's ready tasks only.
                const MHz requested = t.rt->requestedFrequency();
                MHz f = requested;
                if (cfg_.governor == GovernorPolicy::MaxRequest) {
                    for (int i : e.members) {
                        const ManagedTask &u =
                            *tasks_[static_cast<std::size_t>(i)];
                        if (u.ready && u.rt->instanceActive())
                            f = std::max(f, u.rt->requestedFrequency());
                    }
                }
                if (f != requested)
                    t.rt->overrideFrequency(f);
                if (e.freq != 0 && f != e.freq)
                    ++e.out.freqChanges;
                e.freq = f;
                if (e.lastOn != next) {
                    const double sw = switchSeconds(f);
                    e.w += sw;
                    e.out.switchOverheadSeconds += sw;
                    ++e.out.contextSwitches;
                    ++cs.contextSwitches;
                }
                e.onCore = next;
                e.lastOn = next;
                ++e.out.dispatches;
                ++cs.dispatches;
                ringEvent(ring, c, e.w, EventKind::SchedDispatch, next,
                          static_cast<std::uint64_t>(t.released - 1),
                          static_cast<std::uint64_t>(f));
            }

            t.memctrl.attachBus(bus_.get(), c);
            bus_->syncCore(c, e.w * 1e9, t.cpu->cycles());

            // Slice to the next scheduling point: the earliest own
            // release or the barrier, capped by the quantum.
            double next_event = epochEnd;
            for (int i : e.members) {
                const ManagedTask &u =
                    *tasks_[static_cast<std::size_t>(i)];
                if (pendingRelease(u))
                    next_event = std::min(next_event, nominalRelease(u));
            }
            Cycles budget = cfg_.quantumCycles;
            if (next_event > e.w) {
                const MHz f = t.cpu->frequency();
                const Cycles until = static_cast<Cycles>(
                    std::ceil((next_event - e.w) * f * 1e6));
                budget = std::min(budget, std::max<Cycles>(until, 1));
            }

            const StepResult sr = t.rt->stepInstance(budget);
            e.w += sr.ranSeconds;
            cs.busySeconds += sr.ranSeconds;
            t.jobBusy += sr.ranSeconds;
            t.stats.busySeconds += sr.ranSeconds;
            if (sr.recovered) {
                ++t.stats.checkpointMisses;
                ++e.out.checkpointMisses;
                ringEvent(ring, c, e.w, EventKind::SchedRecovery, next,
                          static_cast<std::uint64_t>(std::max(
                              0, t.rt->activeMissedSubtask())),
                          0);
            }

            if (sr.completed) {
                const TaskStats ts = t.rt->finishInstance();
                JobRecord jr;
                jr.task = next;
                jr.job = t.released - 1;
                jr.releaseSeconds = t.releaseNominal;
                jr.completionSeconds = e.w;
                jr.deadlineSeconds = t.deadline;
                jr.deadlineMet = e.w <= t.deadline + 1e-12;
                jr.missedCheckpoint = ts.missedCheckpoint;
                jr.preemptions = t.jobPreemptions;
                jr.busySeconds = t.jobBusy;
                e.jobs.push_back(jr);
                ++e.out.jobs;

                SchedTaskStats &st = t.stats;
                ++st.jobs;
                st.retired += ts.retired;
                if (!jr.deadlineMet) {
                    ++st.deadlineMisses;
                    ++e.out.deadlineMisses;
                }
                if (t.def.expectedChecksum &&
                    (!ts.checksumReported ||
                     ts.checksum != t.def.expectedChecksum))
                    ++st.badChecksums;
                const double slack = t.deadline - e.w;
                if (st.jobs == 1 || slack < st.minSlackSeconds)
                    st.minSlackSeconds = slack;
                st.maxResponseSeconds = std::max(st.maxResponseSeconds,
                                                 e.w - t.releaseNominal);

                t.ready = false;
                ++t.done;
                ringEvent(ring, c, e.w, EventKind::SchedComplete, next,
                          static_cast<std::uint64_t>(jr.job),
                          jr.deadlineMet ? 1 : 0);
                e.onCore = -1;
            }

            if (e.w > horizon)
                fatal("scheduler: core %d wall clock %.3g s exceeded "
                      "the runaway horizon %.3g s",
                      c, e.w, horizon);
        }

        if (ring)
            installTracer(prev);
    };

    // The epoch loop: barrier-synchronized quanta until every
    // partition's schedule completes.
    for (double epochStart = 0.0;; epochStart += epoch) {
        bool any = false;
        for (const CoreEngine &e : eng)
            if (!e.done)
                any = true;
        if (!any)
            break;
        if (epochStart > horizon)
            fatal("scheduler: epoch clock %.3g s exceeded the runaway "
                  "horizon %.3g s",
                  epochStart, horizon);
        const double epochEnd = epochStart + epoch;
        bus_->beginEpoch();
        parallelFor(static_cast<std::size_t>(m), [&](std::size_t c) {
            advanceTo(static_cast<int>(c), epochEnd);
        });
        bus_->drainEpoch();
        if (tr)
            Tracer::mergeInto(*tr, rings);
    }

    // Deterministic merges, all in core order: counters summed, the
    // job lists k-way merged by (completion, core).
    double wmax = 0.0;
    for (int c = 0; c < m; ++c) {
        const CoreEngine &e = eng[static_cast<std::size_t>(c)];
        coreStats_[static_cast<std::size_t>(c)].wallSeconds = e.w;
        wmax = std::max(wmax, e.w);
        outcome_.jobs += e.out.jobs;
        outcome_.dispatches += e.out.dispatches;
        outcome_.preemptions += e.out.preemptions;
        outcome_.contextSwitches += e.out.contextSwitches;
        outcome_.freqChanges += e.out.freqChanges;
        outcome_.switchOverheadSeconds += e.out.switchOverheadSeconds;
        outcome_.idleSeconds += e.out.idleSeconds;
        outcome_.deadlineMisses += e.out.deadlineMisses;
        outcome_.checkpointMisses += e.out.checkpointMisses;
    }
    std::vector<std::size_t> idx(static_cast<std::size_t>(m), 0);
    for (;;) {
        int pick = -1;
        double pickT = 0.0;
        for (int c = 0; c < m; ++c) {
            const CoreEngine &e = eng[static_cast<std::size_t>(c)];
            const std::size_t i = idx[static_cast<std::size_t>(c)];
            if (i >= e.jobs.size())
                continue;
            if (pick < 0 || e.jobs[i].completionSeconds < pickT) {
                pick = c;
                pickT = e.jobs[i].completionSeconds;
            }
        }
        if (pick < 0)
            break;
        jobs_.push_back(eng[static_cast<std::size_t>(pick)]
                            .jobs[idx[static_cast<std::size_t>(pick)]]);
        ++idx[static_cast<std::size_t>(pick)];
    }
    wall_ = wmax;
    outcome_.wallSeconds = wmax;
    for (auto &t : tasks_)
        t->memctrl.attachBus(nullptr);
    return outcome_;
}

const SchedTaskStats &
MultiTaskScheduler::taskStats(int task) const
{
    return tasks_.at(static_cast<std::size_t>(task))->stats;
}

const SchedTaskDef &
MultiTaskScheduler::taskDef(int task) const
{
    return tasks_.at(static_cast<std::size_t>(task))->def;
}

DvsRuntime &
MultiTaskScheduler::taskRuntime(int task)
{
    return *tasks_.at(static_cast<std::size_t>(task))->rt;
}

void
MultiTaskScheduler::buildStats(StatSet &set) const
{
    StatGroup &g = set.group("sched");
    g.scalar("tasks", "tasks in the set")
        .set(static_cast<std::uint64_t>(numTasks()));
    g.scalar("jobs", "jobs completed")
        .set(static_cast<std::uint64_t>(outcome_.jobs));
    g.scalar("dispatches", "dispatch decisions")
        .set(static_cast<std::uint64_t>(outcome_.dispatches));
    g.scalar("preemptions", "jobs suspended mid-execution")
        .set(static_cast<std::uint64_t>(outcome_.preemptions));
    g.scalar("context_switches", "running-task changes")
        .set(static_cast<std::uint64_t>(outcome_.contextSwitches));
    g.scalar("freq_changes", "governor-visible core clock changes")
        .set(static_cast<std::uint64_t>(outcome_.freqChanges));
    g.scalar("deadline_misses", "job deadline violations (must stay 0)")
        .set(static_cast<std::uint64_t>(outcome_.deadlineMisses));
    g.scalar("checkpoint_misses", "missed-checkpoint recoveries")
        .set(static_cast<std::uint64_t>(outcome_.checkpointMisses));
    g.formula("wall_seconds", [this] { return outcome_.wallSeconds; },
              "schedule length");
    g.formula("switch_overhead_seconds",
              [this] { return outcome_.switchOverheadSeconds; },
              "modeled context-switch cost");
    g.formula("idle_seconds", [this] { return outcome_.idleSeconds; },
              "core idle time");
    g.formula("utilization",
              [this] {
                  // Multi-core: total execution over m x makespan
                  // (per-core idle is measured against local walls, so
                  // the single-core identity does not generalize).
                  if (!coreStats_.empty()) {
                      double busy = 0.0;
                      for (const CoreStats &cs : coreStats_)
                          busy += cs.busySeconds;
                      return busy /
                             (static_cast<double>(coreStats_.size()) *
                              outcome_.wallSeconds);
                  }
                  return (outcome_.wallSeconds - outcome_.idleSeconds) /
                         outcome_.wallSeconds;
              },
              "busy fraction of the schedule");
    for (int i = 0; i < numTasks(); ++i) {
        const ManagedTask &t = *tasks_[i];
        StatGroup &tg = set.group("sched.task" + std::to_string(i));
        tg.scalar("jobs", "jobs completed (" + t.def.name + ")")
            .set(static_cast<std::uint64_t>(t.stats.jobs));
        tg.scalar("deadline_misses", "deadline violations (must stay 0)")
            .set(static_cast<std::uint64_t>(t.stats.deadlineMisses));
        tg.scalar("checkpoint_misses", "missed-checkpoint recoveries")
            .set(static_cast<std::uint64_t>(t.stats.checkpointMisses));
        tg.scalar("preemptions", "times suspended mid-job")
            .set(static_cast<std::uint64_t>(t.stats.preemptions));
        tg.scalar("bad_checksums", "checksum mismatches (must stay 0)")
            .set(static_cast<std::uint64_t>(t.stats.badChecksums));
        tg.scalar("retired", "instructions retired")
            .set(t.stats.retired);
        tg.formula("busy_seconds",
                   [&t] { return t.stats.busySeconds; },
                   "execution time consumed");
        tg.formula("min_slack_seconds",
                   [&t] { return t.stats.minSlackSeconds; },
                   "worst observed deadline slack");
        tg.formula("max_response_seconds",
                   [&t] { return t.stats.maxResponseSeconds; },
                   "worst observed response time");
    }
    // Multi-core runs add per-core groups plus the shared-bus counters.
    for (int c = 0; c < static_cast<int>(coreStats_.size()); ++c) {
        const CoreStats &cs = coreStats_[static_cast<std::size_t>(c)];
        StatGroup &cg = set.group("sched.core" + std::to_string(c));
        cg.scalar("dispatches", "dispatch decisions on this core")
            .set(static_cast<std::uint64_t>(cs.dispatches));
        cg.scalar("context_switches", "running-task changes")
            .set(static_cast<std::uint64_t>(cs.contextSwitches));
        cg.formula("busy_seconds", [&cs] { return cs.busySeconds; },
                   "execution time spent on this core");
        cg.formula("idle_seconds", [&cs] { return cs.idleSeconds; },
                   "idle time on this core");
        cg.formula("wall_seconds", [&cs] { return cs.wallSeconds; },
                   "this core's local schedule length");
    }
    if (bus_) {
        StatGroup &bg = set.group("sched.bus");
        bg.scalar("requests", "misses routed over the shared bus")
            .set(bus_->requests());
        bg.scalar("l2_hits", "shared-L2 tag hits").set(bus_->l2Hits());
        bg.scalar("bank_conflicts", "requests that waited on a busy bank")
            .set(bus_->bankConflicts());
        bg.scalar("mshr_stalls", "requests that waited for a chip MSHR")
            .set(bus_->mshrStalls());
        bg.scalar("bank_wait_ns",
                  "total queueing delay behind busy banks, ns")
            .set(static_cast<std::uint64_t>(bus_->bankWaitNs()));
        bg.scalar("mshr_wait_ns",
                  "total stall waiting for a free chip MSHR, ns")
            .set(static_cast<std::uint64_t>(bus_->mshrWaitNs()));
    }
}

const char *
schedPolicyName(SchedPolicy p)
{
    return p == SchedPolicy::Edf ? "edf" : "rm";
}

const char *
governorPolicyName(GovernorPolicy p)
{
    return p == GovernorPolicy::PerTask ? "pertask" : "max";
}

const char *
placementName(PlacementPolicy p)
{
    return p == PlacementPolicy::Partitioned ? "partitioned" : "global";
}

bool
parseSchedPolicy(const std::string &name, SchedPolicy &out)
{
    if (name == "edf")
        out = SchedPolicy::Edf;
    else if (name == "rm")
        out = SchedPolicy::RateMonotonic;
    else
        return false;
    return true;
}

bool
parseSchedPolicyEx(const std::string &name, SchedPolicy &pol,
                   PlacementPolicy &pl)
{
    if (name == "pedf") {
        pol = SchedPolicy::Edf;
        pl = PlacementPolicy::Partitioned;
    } else if (name == "gedf") {
        pol = SchedPolicy::Edf;
        pl = PlacementPolicy::Global;
    } else {
        return parseSchedPolicy(name, pol);
    }
    return true;
}

bool
parseGovernorPolicy(const std::string &name, GovernorPolicy &out)
{
    if (name == "pertask")
        out = GovernorPolicy::PerTask;
    else if (name == "max")
        out = GovernorPolicy::MaxRequest;
    else
        return false;
    return true;
}

} // namespace visa
