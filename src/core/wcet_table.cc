#include "core/wcet_table.hh"

#include "sim/logging.hh"

namespace visa
{

WcetTable::WcetTable(const WcetAnalyzer &analyzer, const DvsTable &dvs,
                     const DMissProfile *dmiss)
{
    numSubtasks_ = analyzer.numSubtasks();
    for (const auto &setting : dvs.settings()) {
        WcetReport rep = analyzer.analyze(setting.freq, dmiss);
        table_[setting.freq] = rep.subtaskCycles;
    }
}

const std::vector<Cycles> &
WcetTable::row(MHz f) const
{
    auto it = table_.find(f);
    if (it == table_.end())
        fatal("wcet table: no entry for %u MHz", f);
    return it->second;
}

Cycles
WcetTable::subtaskCycles(int k, MHz f) const
{
    const auto &r = row(f);
    if (k < 0 || k >= static_cast<int>(r.size()))
        fatal("wcet table: bad sub-task index %d", k);
    return r[static_cast<std::size_t>(k)];
}

Cycles
WcetTable::taskCycles(MHz f) const
{
    Cycles sum = 0;
    for (Cycles c : row(f))
        sum += c;
    return sum;
}

double
WcetTable::remainingSeconds(int k, MHz f) const
{
    const auto &r = row(f);
    double sum = 0.0;
    for (std::size_t i = static_cast<std::size_t>(k); i < r.size(); ++i)
        sum += static_cast<double>(r[i]) / (f * 1e6);
    return sum;
}

} // namespace visa
