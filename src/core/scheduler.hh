/**
 * @file
 * Preemptive multi-task VISA runtime: several periodic hard real-time
 * tasks share one DVS-capable core under EDF (or rate-monotonic)
 * scheduling, each carrying its own VISA machinery — per-task WCET
 * table, checkpoint schedule (EQ 1), PET history, watchdog arming and
 * speculation state (core/runtime.hh's incremental instance API).
 *
 * Safety composition: each task's runtime is configured with an
 * *execution-time budget* B_i (its `deadlineSeconds`), so its watchdog
 * and EQ 1/EQ 4 checkpoints bound the CPU time the task can demand per
 * job — including recovery, which EQ 1 sizes to finish within B_i.
 * Because a preempted task's core does not tick, its watchdog freezes
 * across preemption: the bound is on execution time, not wall time.
 * Classic schedulability analysis (core/schedulability.hh) over
 * {B_i + switch overhead, T_i} then guarantees every job's wall-clock
 * deadline r_k + T_i, and one task's recovery cannot consume another
 * task's slack — it is confined to the recovering task's own budget.
 *
 * Tasks keep their own cycle/watchdog/memory domains (one rig per
 * task); the scheduler advances a shared wall clock by each slice's
 * wall-time cost and models the context-switch cost at every change of
 * the running task. A shared DVS governor resolves the ready tasks'
 * per-task frequency requests into the single core frequency.
 *
 * With cores > 1 the engine scales out to a multi-core chip: each core
 * keeps its own wall clock and DVS domain, tasks are placed either
 * partitioned (P-EDF/P-RM: affinity pins, then worst-fit) or global
 * (G-EDF with migration at scheduling points), complex-mode misses of
 * the dispatched tasks contend on a shared chip bus
 * (chip/interconnect.hh), and admission composes the per-task
 * single-core feasibility with a cross-core shared-memory interference
 * bound (see SchedulerConfig::memStallShare) before the per-core EDF/RM
 * or Goossens-Funk-Baruah test. cores == 1 is the historical engine,
 * bit-identical.
 */

#ifndef VISA_CORE_SCHEDULER_HH
#define VISA_CORE_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "chip/interconnect.hh"
#include "core/runtime.hh"
#include "core/schedulability.hh"

namespace visa
{

/** Dispatching policy. */
enum class SchedPolicy
{
    Edf,              ///< earliest absolute deadline first
    RateMonotonic,    ///< shortest period first (fixed priority)
};

/** How jobs map onto the cores of a multi-core chip (cores > 1). */
enum class PlacementPolicy
{
    /** Every task is pinned to one core (affinity, else worst-fit by
     *  inflated utilization); each core runs its partition under the
     *  configured policy. Admission is per-core. */
    Partitioned,
    /** One chip-wide ready queue; a preempted job may resume on any
     *  core (migration at scheduling points only). EDF only; admission
     *  is the Goossens/Funk/Baruah bound. */
    Global,
};

/** How per-task frequency requests map to the one core clock. */
enum class GovernorPolicy
{
    /** The dispatched task's own operating point (switches on every
     *  context switch; each task runs exactly its EQ 2/EQ 4 choice). */
    PerTask,
    /** The maximum over all ready tasks' requests: fewer DVS
     *  transitions, never below any task's requirement (running a task
     *  faster than its f_spec is deadline- and watchdog-safe). */
    MaxRequest,
};

/** One periodic task submitted to the scheduler. */
struct SchedTaskDef
{
    std::string name;
    /** Task binary and analysis products; must outlive the scheduler. */
    const Program *program = nullptr;
    const WcetTable *wcet = nullptr;
    const DvsTable *dvs = nullptr;
    /**
     * Per-task runtime configuration. `runtime.deadlineSeconds` is the
     * task's execution-time budget B_i (see file comment), NOT its
     * period: the wall-clock deadline of job k is its release plus
     * periodSeconds.
     */
    RuntimeConfig runtime;
    double periodSeconds = 0.0;    ///< period == relative deadline
    double phaseSeconds = 0.0;     ///< first release offset
    /** Complex pipeline + VISA runtime (EQ 4) when true; the
     *  explicitly-safe simple-fixed pipeline (EQ 2) when false. */
    bool complexMachine = true;
    Word expectedChecksum = 0;     ///< 0 = don't check
    /** Flush caches/predictors every Nth job (0 = never). */
    int induceMissEvery = 0;
    /** Force a watchdog expiry every Nth job (0 = never); see
     *  DvsRuntime::forceNextMiss(). */
    int forceMissEvery = 0;
    /** Cycle count for forced expiries (0 = the runtime's default). */
    Cycles forceMissIncrement = 0;
};

struct SchedulerConfig
{
    SchedPolicy policy = SchedPolicy::Edf;
    GovernorPolicy governor = GovernorPolicy::PerTask;
    /**
     * Modeled context-switch cost, charged to the wall clock at every
     * dispatch that changes the running task. Deliberately charged to
     * no task's CPU: it must not consume any task's watchdog budget,
     * so admission reserves it per job instead (two switches per job).
     */
    Cycles contextSwitchCycles = 500;
    /** Longest slice between scheduling points while a job runs. */
    Cycles quantumCycles = 20000;
    /** Core-utilization headroom the admission test reserves. */
    double utilizationMargin = 0.02;

    // --- multi-core chip (cores > 1); cores == 1 is the historical
    // --- single-core engine, bit-identical.
    int cores = 1;
    PlacementPolicy placement = PlacementPolicy::Partitioned;
    /** Optional per-task core pins (task index -> core id; -1 = let
     *  worst-fit place it). Partitioned placement only. */
    std::vector<int> affinity;
    /** Geometry of the shared bus + L2 the cores contend on. */
    chip::ChipBusParams bus;
    /**
     * Admission-side interference bound: the fraction of a budget B_i
     * assumed to be shared-memory stall time in the worst case. Each
     * such access can queue behind every other core's in-flight access,
     * so admission inflates B_i' = B_i * (1 + (m-1) * memStallShare *
     * busOccupancyNs / memAccessNs) before the schedulability test.
     */
    double memStallShare = 0.2;
    /**
     * Synchronization quantum of the partitioned multi-core engine:
     * between two barriers every core advances its local schedule up to
     * this much wall time with the shared bus in epoch-buffered mode
     * (cores may run on concurrent worker threads; the barrier drain
     * replays all bus traffic in deterministic order). Smaller epochs
     * tighten cross-core contention lag; larger ones amortize the
     * barrier. Partitioned placement only — global placement keeps the
     * serial migrating engine.
     */
    double epochSeconds = 1e-3;
};

/** One completed job (task instance) in wall-clock terms. */
struct JobRecord
{
    int task = 0;
    int job = 0;                   ///< per-task job index
    double releaseSeconds = 0.0;   ///< nominal release r_k
    double completionSeconds = 0.0;
    double deadlineSeconds = 0.0;  ///< absolute: r_k + T
    bool deadlineMet = false;
    bool missedCheckpoint = false;
    int preemptions = 0;           ///< times this job was preempted
    double busySeconds = 0.0;      ///< execution time consumed
};

/** Aggregates per task across the whole schedule. */
struct SchedTaskStats
{
    int jobs = 0;
    int deadlineMisses = 0;        ///< must stay 0 (safety!)
    int checkpointMisses = 0;
    int preemptions = 0;
    int badChecksums = 0;
    double busySeconds = 0.0;
    /** min over jobs of (absolute deadline - completion). */
    double minSlackSeconds = 0.0;
    double maxResponseSeconds = 0.0;
    std::uint64_t retired = 0;
};

/** Whole-schedule outcome. */
struct ScheduleOutcome
{
    double wallSeconds = 0.0;
    int jobs = 0;
    int dispatches = 0;
    int preemptions = 0;
    int contextSwitches = 0;
    int freqChanges = 0;           ///< governor-visible core changes
    double switchOverheadSeconds = 0.0;
    double idleSeconds = 0.0;
    int deadlineMisses = 0;
    int checkpointMisses = 0;
};

/**
 * The preemptive multi-task engine. Construction order: addTask() for
 * each task, then run(). Deterministic: dispatch ties break by task
 * index, and every modeled cost is derived from simulated state.
 */
class MultiTaskScheduler
{
  public:
    explicit MultiTaskScheduler(SchedulerConfig cfg = {});
    ~MultiTaskScheduler();

    MultiTaskScheduler(const MultiTaskScheduler &) = delete;
    MultiTaskScheduler &operator=(const MultiTaskScheduler &) = delete;

    /** Admit a task (builds its private rig). @return its index. */
    int addTask(const SchedTaskDef &def);

    /**
     * The admission test run() enforces: per-task single-task
     * feasibility of each budget B_i, plus the policy's schedulability
     * test over {B_i + 2 * switch, T_i} with the configured margin.
     * @return an explanation naming the offender, or "" if admitted.
     */
    std::string admissionError() const;

    /** Execute @p jobs_per_task jobs of every task. */
    ScheduleOutcome run(int jobs_per_task);

    int numTasks() const { return static_cast<int>(tasks_.size()); }
    const SchedTaskStats &taskStats(int task) const;
    const SchedTaskDef &taskDef(int task) const;
    DvsRuntime &taskRuntime(int task);
    const std::vector<JobRecord> &jobs() const { return jobs_; }
    const ScheduleOutcome &outcome() const { return outcome_; }

    /**
     * Contribute "sched" and per-task "sched.taskN" statistics groups
     * to @p set — plus "sched.coreN" and "sched.bus" groups after a
     * multi-core run. Formulas capture `this`; dump while alive.
     */
    void buildStats(StatSet &set) const;

    /** Task-to-core map of the last multi-core run (-1 under global
     *  placement: jobs migrate). Empty before run() / single-core. */
    const std::vector<int> &assignment() const { return assignment_; }

  private:
    struct ManagedTask;

    /** Per-core accounting of a multi-core run. */
    struct CoreStats
    {
        int dispatches = 0;
        int contextSwitches = 0;
        double busySeconds = 0.0;
        double idleSeconds = 0.0;
        double wallSeconds = 0.0;
    };

    /** Wall seconds one switch takes at @p f. */
    double switchSeconds(MHz f) const;
    /** Nominal release time of task @p t's next unreleased job. */
    double nominalRelease(const ManagedTask &t) const;
    int pickReady() const;
    /** Resolve the governor for dispatching @p next; switches the
     *  clock slot @p slot (and possibly the task's runtime). */
    MHz resolveFrequencyOn(int next, MHz &slot);

    /** B_i multiplier bounding cross-core shared-memory interference;
     *  1.0 on a single core. */
    double interferenceFactor() const;
    /** Admission-side demand of task @p task: interference-inflated
     *  budget plus two context switches, margin applied. */
    double inflatedDemand(int task) const;
    /** Deterministic partitioned placement (affinity pins, then
     *  worst-fit by inflated utilization). Never fails; feasibility of
     *  the result is admissionError()'s job. */
    std::vector<int> partitionedAssignment() const;
    /** The serial migrating multi-core engine (global placement). */
    ScheduleOutcome runMulti(int jobs_per_task);
    /**
     * The partitioned multi-core engine: one independent per-core
     * schedule per partition, advanced in epochSeconds quanta over the
     * worker pool (sim/parallel.hh) with the shared bus epoch-buffered.
     * Deterministic for any VISA_THREADS setting.
     */
    ScheduleOutcome runPartitioned(int jobs_per_task);

    SchedulerConfig cfg_;
    std::vector<std::unique_ptr<ManagedTask>> tasks_;
    std::vector<JobRecord> jobs_;
    ScheduleOutcome outcome_;
    double wall_ = 0.0;
    int onCore_ = -1;        ///< task currently dispatched (-1 = idle)
    int lastOnCore_ = -1;    ///< last task whose context is loaded
    MHz coreFreq_ = 0;
    // Multi-core state (cores > 1 runs only).
    std::unique_ptr<chip::ChipInterconnect> bus_;
    std::vector<int> assignment_;
    std::vector<CoreStats> coreStats_;
};

const char *schedPolicyName(SchedPolicy p);
const char *governorPolicyName(GovernorPolicy p);
const char *placementName(PlacementPolicy p);
/** Parse "edf" / "rm"; @return false on unknown names. */
bool parseSchedPolicy(const std::string &name, SchedPolicy &out);
/**
 * Parse a policy name that may carry a placement: "edf" / "rm" (keep
 * the current placement), "pedf" (EDF, partitioned), "gedf" (EDF,
 * global). @return false on unknown names.
 */
bool parseSchedPolicyEx(const std::string &name, SchedPolicy &pol,
                        PlacementPolicy &pl);
/** Parse "pertask" / "max"; @return false on unknown names. */
bool parseGovernorPolicy(const std::string &name, GovernorPolicy &out);

} // namespace visa

#endif // VISA_CORE_SCHEDULER_HH
