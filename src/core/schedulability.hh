/**
 * @file
 * Classic schedulability tests for periodic task sets (Liu & Layland,
 * the paper's reference [19]): the rate-monotonic utilization bound
 * and the EDF utilization test, plus RM response-time analysis. Used
 * to validate that the single periodic hard real-time task plus its
 * deadline is a schedulable configuration, and provided as part of the
 * library's public API for system designers budgeting WCETs.
 */

#ifndef VISA_CORE_SCHEDULABILITY_HH
#define VISA_CORE_SCHEDULABILITY_HH

#include <vector>

namespace visa
{

/** One periodic task: WCET C and period T (deadline = period). */
struct PeriodicTask
{
    double wcet = 0.0;      ///< seconds
    double period = 0.0;    ///< seconds
};

/** Total utilization sum(C_i / T_i). */
double utilization(const std::vector<PeriodicTask> &tasks);

/** Liu-Layland RM bound: n (2^(1/n) - 1). */
double rmUtilizationBound(int n);

/**
 * Sufficient RM test: utilization <= the Liu-Layland bound.
 * (Necessary-and-sufficient analysis is rmResponseTimeFeasible.)
 */
bool rmSchedulableByBound(const std::vector<PeriodicTask> &tasks);

/**
 * Exact RM response-time analysis (tasks sorted by period internally;
 * deadline = period). @return true if every task's worst-case response
 * time fits its period.
 */
bool rmResponseTimeFeasible(const std::vector<PeriodicTask> &tasks);

/** EDF: feasible iff utilization <= 1. */
bool edfSchedulable(const std::vector<PeriodicTask> &tasks);

} // namespace visa

#endif // VISA_CORE_SCHEDULABILITY_HH
