#include "cpu/activity.hh"

namespace visa
{

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::ICache:       return "icache";
      case Unit::DCache:       return "dcache";
      case Unit::Bpred:        return "bpred";
      case Unit::FetchQueue:   return "fetchq";
      case Unit::RenameMap:    return "rename";
      case Unit::IssueQueue:   return "iq";
      case Unit::Lsq:          return "lsq";
      case Unit::RegfileRead:  return "regread";
      case Unit::RegfileWrite: return "regwrite";
      case Unit::Fu:           return "fu";
      case Unit::ActiveList:   return "activelist";
      case Unit::ResultBus:    return "resultbus";
      default:                 return "<bad>";
    }
}

} // namespace visa
