/**
 * @file
 * Branch predictors: the VISA's static backward-taken/forward-not-taken
 * heuristic, the complex processor's 2^16-entry gshare predictor
 * (McFarling), and the 2^16-entry indirect-target table indexed the same
 * way as gshare (paper §3.2).
 */

#ifndef VISA_CPU_BPRED_HH
#define VISA_CPU_BPRED_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace visa
{

/**
 * Static heuristic used by the VISA and by simple mode: backward
 * conditional branches predicted taken, forward predicted not-taken.
 */
inline bool
staticPredictTaken(const Instruction &inst, Addr pc)
{
    return inst.isBackward(pc);
}

/** A gshare conditional-branch predictor with 2-bit counters. */
class Gshare
{
  public:
    /** @param log2_entries log2 of the prediction table size (paper: 16) */
    explicit Gshare(unsigned log2_entries = 16);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Train with the resolved direction and update global history.
     * @return true if the prediction (recomputed pre-update) was correct.
     */
    bool update(Addr pc, bool taken);

    /** Clear all counters and history (Fig. 4 flush). */
    void flush();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::uint32_t index(Addr pc) const;

    unsigned log2Entries_;
    std::uint32_t historyMask_;
    std::uint32_t history_ = 0;
    std::vector<std::uint8_t> table_;    ///< 2-bit saturating counters
    mutable std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

/**
 * Tagless indirect-target table, indexed like gshare: predicts the
 * target of JR/JALR in complex mode.
 */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(unsigned log2_entries = 16);

    /** Predict the target of the indirect jump at @p pc (0 = no idea). */
    Addr predict(Addr pc) const;

    /**
     * Train with the actual target.
     * @return true if the pre-update prediction matched.
     */
    bool update(Addr pc, Addr target);

    void flush();

  private:
    std::uint32_t index(Addr pc) const;

    unsigned log2Entries_;
    std::vector<Addr> table_;
};

} // namespace visa

#endif // VISA_CPU_BPRED_HH
