/**
 * @file
 * The complex processor (paper §3.2): a dynamically scheduled 4-way
 * superscalar with a 128-entry reorder buffer, 64-entry issue queue,
 * 64-entry load/store queue, 4 pipelined universal function units,
 * 2 data-cache ports, a 2^16-entry gshare predictor and a 2^16-entry
 * indirect-target table. Seven stages: fetch, dispatch, issue, register
 * read, execute/memory, writeback, retire.
 *
 * It also implements the VISA-compliant *simple mode* with every §3.2
 * alteration: BTFN static prediction, fetch-block buffering with
 * 1 instruction/cycle hand-down, renaming without map updates, issue
 * queue bypass, a single unpipelined FU, LSQ bypass with program-order
 * data-cache access, stores issuing in the memory stage, no active-list
 * residency, and a single outstanding memory request. Simple-mode
 * timing is produced by the same VisaTimer recurrence as the
 * simple-fixed processor, making VISA conformance structural; power
 * accounting differs (large physical register file, rename lookups).
 *
 * Modeling approach (the SimpleScalar sim-outorder one): instructions
 * execute functionally, in order, at fetch; the cycle-driven timing
 * model tracks structure occupancy and dependences. Mispredicted
 * branches stall fetch until they resolve (perfect squash: wrong-path
 * instructions consume no resources; documented in DESIGN.md).
 */

#ifndef VISA_CPU_OOO_CPU_HH
#define VISA_CPU_OOO_CPU_HH

#include <deque>
#include <set>
#include <vector>

#include "cpu/bpred.hh"
#include "cpu/cpu.hh"
#include "cpu/visa_timing.hh"
#include "sim/trace.hh"

namespace visa
{

/** Complex-processor structure sizes (paper §3.2). */
struct OooParams
{
    int fetchWidth = 4;
    int dispatchWidth = 4;
    int issueWidth = 4;
    int retireWidth = 4;
    int robSize = 128;
    int iqSize = 64;
    int lsqSize = 64;
    int dcachePorts = 2;
    int fetchQueueSize = 16;
    /** Cycles between fetch and dispatch (front-end depth). */
    int frontLatency = 2;
    unsigned gshareLog2 = 16;
    unsigned indirectLog2 = 16;
};

/** The complex 4-way out-of-order processor with a VISA simple mode. */
class OooCpu final : public Cpu
{
  public:
    enum class Mode { Complex, Simple };

    OooCpu(const Program &prog, MainMemory &mem, Platform &platform,
           MemController &memctrl, const OooParams &params = {});

    void resetForTask() override;
    RunResult run(Cycles max_cycles = noCycleLimit) override;
    void advanceIdle(Cycles n) override;
    Cycles cycles() const override { return cycle_; }
    void flushCachesAndPredictors() override;

    /**
     * Drain the out-of-order engine and reconfigure into simple mode
     * (the missed-checkpoint response). The cycles the drain takes are
     * simulated; the caller additionally charges the fixed
     * reconfiguration overhead via advanceIdle().
     */
    void switchToSimple();

    /** Reconfigure back to complex mode; the pipeline must be idle. */
    void switchToComplex();

    /**
     * Preemption drain (multi-task operation): retire everything in
     * flight without fetching, staying in the current mode. Unlike
     * switchToSimple() the watchdog is live here — an expiry aborts
     * the drain and is reported so the scheduler can run the
     * missed-checkpoint recovery (which finishes the drain itself).
     */
    DrainResult drainForPreemption() override;

    Mode mode() const { return mode_; }

    std::uint64_t branchMispredicts() const { return mispredicts_; }
    const OooParams &params() const { return params_; }

    /**
     * Hidden verification hook (tests and `visa-fuzz --inject-bug`
     * only): when enabled, the complex engine zero- instead of
     * sign-extends LB/LH results — a classic sub-word datapath bug.
     * The differential harness must detect it, which validates that
     * the lockstep checker would catch a real divergence of this
     * class. Never enabled in production paths.
     */
    void testInjectLoadExtBug(bool on) { injectLoadExtBug_ = on; }

    void buildStats(StatSet &set) const override;

  protected:
    const char *statsName() const override { return "complex"; }

  private:
    // ---- complex engine ----
    struct FetchEntry
    {
        ExecInfo info;
        std::uint64_t seq = 0;
        Cycles fetchCycle = 0;
        bool mispredicted = false;
    };

    struct RobEntry
    {
        ExecInfo info;
        std::uint64_t seq = 0;
        std::array<std::int64_t, 3> srcProducers{-1, -1, -1};
        Cycles dispatchCycle = 0;
        Cycles completeCycle = 0;
        bool issued = false;
        bool wasMiss = false;
        bool mispredicted = false;
    };

    RunResult runComplex(Cycles budget_end);
    RunResult runSimple(Cycles budget_end);

    /**
     * The simple-mode per-instruction loop, templated on whether a
     * tracer is installed so the untraced instantiation carries no
     * tracing code at all (see SimpleCpu::runLoop).
     */
    template <bool Traced>
    RunResult runSimpleLoop(Cycles budget_end);

    void fetchStage();
    void dispatchStage();
    void issueStage();
    void retireStage();

    bool olderStoresIssued(const RobEntry &load) const;
    bool overlapsOlderStore(const RobEntry &load) const;
    int outstandingLoadMisses();

    /** Corrupt a sub-word load per the injected bug (cold path). */
    void applyLoadExtBug(const ExecInfo &info);

    // ROB sequence numbers are contiguous (dispatch appends, retire pops
    // the front), so seq lookup is an O(1) index off the oldest entry.
    // Inline: called up to three times per entry per issue scan.
    const RobEntry *
    findBySeq(std::uint64_t seq) const
    {
        if (rob_.empty() || seq < rob_.front().seq)
            return nullptr;
        std::size_t idx =
            static_cast<std::size_t>(seq - rob_.front().seq);
        if (idx >= rob_.size())
            return nullptr;
        return &rob_[idx];
    }
    RobEntry *
    findBySeq(std::uint64_t seq)
    {
        return const_cast<RobEntry *>(
            static_cast<const OooCpu *>(this)->findBySeq(seq));
    }

    bool
    sourcesReady(const RobEntry &e) const
    {
        for (std::int64_t p : e.srcProducers) {
            if (p < 0)
                continue;
            const RobEntry *prod =
                findBySeq(static_cast<std::uint64_t>(p));
            if (!prod)
                continue;    // producer already retired
            if (!prod->issued || prod->completeCycle > cycle_)
                return false;
        }
        return true;
    }

    Platform::TickResult tickTo(Cycles to);

    bool robFull() const
    {
        return static_cast<int>(rob_.size()) >= params_.robSize;
    }
    int iqOccupancy() const { return iqCount_; }
    int lsqOccupancy() const { return lsqCount_; }

    OooParams params_;
    Mode mode_ = Mode::Complex;
    Gshare gshare_;
    IndirectPredictor indirect_;

    Cycles cycle_ = 0;
    Cycles ticked_ = 0;
    std::uint64_t seqCounter_ = 0;

    std::deque<FetchEntry> fetchQueue_;
    std::deque<RobEntry> rob_;

    // Last writer (sequence number) of each architectural register.
    std::array<std::int64_t, numIntRegs> lastIntWriter_;
    std::array<std::int64_t, numFpRegs> lastFpWriter_;
    std::int64_t lastFccWriter_ = -1;

    Cycles fetchReadyCycle_ = 0;
    std::int64_t fetchBlockedSeq_ = -1;   ///< unresolved mispredict
    Addr lastFetchBlock_ = ~0u;
    bool haltFetched_ = false;
    int memPortsUsed_ = 0;
    int iqCount_ = 0;
    int lsqCount_ = 0;

    // Incremental views of the ROB, so the per-cycle issue stage does
    // not rescan all 128 entries. Each mirrors a predicate the old
    // full-ROB walks computed; they are updated at dispatch, issue, and
    // retire, and must stay exactly consistent with rob_.

    /** Dispatched-but-unissued entries, in program (seq) order. */
    std::vector<std::uint64_t> unissuedSeqs_;
    /** Unissued non-MMIO stores (min element gates load issue). */
    std::set<std::uint64_t> unissuedStoreSeqs_;
    /** In-flight (dispatched, unretired) non-MMIO stores, seq order. */
    struct StoreRef
    {
        std::uint64_t seq;
        Addr lo, hi;
    };
    std::deque<StoreRef> inflightStores_;
    /** Fill-completion cycles of issued, still-outstanding load misses. */
    std::vector<Cycles> missFillTimes_;

    std::uint64_t mispredicts_ = 0;
    /** See testInjectLoadExtBug. */
    bool injectLoadExtBug_ = false;

    /**
     * The thread's tracer, hoisted once per run() call so the per-cycle
     * stages pay one member load and a predictable branch when tracing
     * is off (see sim/trace.hh's cost model).
     */
    Tracer *tracer_ = nullptr;

    // ---- simple-mode engine (shared VISA timing recurrence) ----
    VisaTimer timer_;
    Cycles timerBase_ = 0;
    Instruction prevInst_;
    bool prevWasLoad_ = false;
    std::uint64_t simpleFetchGroup_ = 0;
};

} // namespace visa

#endif // VISA_CPU_OOO_CPU_HH
