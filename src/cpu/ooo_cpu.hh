/**
 * @file
 * The complex processor (paper §3.2): a dynamically scheduled 4-way
 * superscalar with a 128-entry reorder buffer, 64-entry issue queue,
 * 64-entry load/store queue, 4 pipelined universal function units,
 * 2 data-cache ports, a 2^16-entry gshare predictor and a 2^16-entry
 * indirect-target table. Seven stages: fetch, dispatch, issue, register
 * read, execute/memory, writeback, retire.
 *
 * It also implements the VISA-compliant *simple mode* with every §3.2
 * alteration: BTFN static prediction, fetch-block buffering with
 * 1 instruction/cycle hand-down, renaming without map updates, issue
 * queue bypass, a single unpipelined FU, LSQ bypass with program-order
 * data-cache access, stores issuing in the memory stage, no active-list
 * residency, and a single outstanding memory request. Simple-mode
 * timing is produced by the same VisaTimer recurrence as the
 * simple-fixed processor, making VISA conformance structural; power
 * accounting differs (large physical register file, rename lookups).
 *
 * Modeling approach (the SimpleScalar sim-outorder one): instructions
 * execute functionally, in order, at fetch; the cycle-driven timing
 * model tracks structure occupancy and dependences. Mispredicted
 * branches stall fetch until they resolve (perfect squash: wrong-path
 * instructions consume no resources; documented in DESIGN.md).
 *
 * The complex-mode timing core is *event-driven* (DESIGN.md
 * "Event-driven complex core"): completing instructions wake their
 * consumers through per-entry waiter lists instead of the issue stage
 * polling every unissued entry, the ROB and fetch queue are fixed ring
 * buffers with O(1) seq indexing, and cycles in which no stage can do
 * anything are skipped in one jump to the next scheduled event. The
 * model is cycle-for-cycle identical to the historical per-cycle
 * stepper, which is preserved as verify::RefOooCpu and cross-checked
 * continuously by the timing-equivalence oracle
 * (verify/timing_cross.hh) and the golden cycle-count table
 * (tests/timing_golden_test.cc).
 */

#ifndef VISA_CPU_OOO_CPU_HH
#define VISA_CPU_OOO_CPU_HH

#include <bit>
#include <vector>

#include "cpu/bpred.hh"
#include "cpu/cpu.hh"
#include "cpu/fault_port.hh"
#include "cpu/visa_timing.hh"
#include "sim/trace.hh"

namespace visa::prof
{
class BlockProfiler;
} // namespace visa::prof

namespace visa
{

/** Complex-processor structure sizes (paper §3.2). */
struct OooParams
{
    int fetchWidth = 4;
    int dispatchWidth = 4;
    int issueWidth = 4;
    int retireWidth = 4;
    int robSize = 128;
    int iqSize = 64;
    int lsqSize = 64;
    int dcachePorts = 2;
    int fetchQueueSize = 16;
    /** Cycles between fetch and dispatch (front-end depth). */
    int frontLatency = 2;
    unsigned gshareLog2 = 16;
    unsigned indirectLog2 = 16;
};

/** The complex 4-way out-of-order processor with a VISA simple mode. */
class OooCpu final : public Cpu
{
  public:
    enum class Mode { Complex, Simple };

    OooCpu(const Program &prog, MainMemory &mem, Platform &platform,
           MemController &memctrl, const OooParams &params = {});

    void resetForTask() override;
    RunResult run(Cycles max_cycles = noCycleLimit) override;
    void advanceIdle(Cycles n) override;
    Cycles cycles() const override { return cycle_; }
    void flushCachesAndPredictors() override;

    /**
     * Drain the out-of-order engine and reconfigure into simple mode
     * (the missed-checkpoint response). The cycles the drain takes are
     * simulated; the caller additionally charges the fixed
     * reconfiguration overhead via advanceIdle().
     */
    void switchToSimple();

    /** Reconfigure back to complex mode; the pipeline must be idle. */
    void switchToComplex();

    /**
     * Preemption drain (multi-task operation): retire everything in
     * flight without fetching, staying in the current mode. Unlike
     * switchToSimple() the watchdog is live here — an expiry aborts
     * the drain and is reported so the scheduler can run the
     * missed-checkpoint recovery (which finishes the drain itself).
     */
    DrainResult drainForPreemption() override;

    Mode mode() const { return mode_; }

    std::uint64_t branchMispredicts() const { return mispredicts_; }
    const OooParams &params() const { return params_; }

    /**
     * Install (or clear, with nullptr) the fault-injection port
     * (cpu/fault_port.hh). Verification harnesses only — the port is
     * consulted on the complex-mode execute and issue paths; simple
     * mode never takes faults. Not owned. With -DVISA_INJECT=0 the
     * call sites compile out and the installed port is ignored.
     */
    void setFaultPort(FaultPort *port) { faultPort_ = port; }
    FaultPort *faultPort() const { return faultPort_; }

    void buildStats(StatSet &set) const override;

  protected:
    const char *statsName() const override { return "complex"; }

  private:
    // ---- complex engine ----
    struct FetchEntry
    {
        ExecInfo info;
        std::uint64_t seq = 0;
        Cycles fetchCycle = 0;
        bool mispredicted = false;
    };

    struct RobEntry
    {
        ExecInfo info;
        std::uint64_t seq = 0;
        Cycles completeCycle = 0;
        /**
         * Earliest cycle the entry can issue once its last producer has
         * issued: max(dispatch cycle + 1, producers' completeCycle).
         * Folded incrementally — at dispatch for already-issued
         * producers, at wakeup for the rest.
         */
        Cycles readyAt = 0;
        /**
         * Dependence-linked wakeup: consumers registered while this
         * entry was unissued; drained (and their pending counts
         * decremented) the cycle it issues. The vector lives in the
         * ring slot and keeps its capacity across reuse, so the steady
         * state allocates nothing.
         */
        std::vector<std::uint64_t> waiters;
        /** Producers this entry still waits on (0 = data-ready). */
        std::uint8_t pending = 0;
        /**
         * Regfile accesses charged at issue, derived once at dispatch
         * from the same operand-flags load that drives renaming (the
         * historical model re-queried the operand table at issue).
         */
        std::uint8_t regReads = 0;
        bool regWrite = false;
        bool issued = false;
        bool mispredicted = false;
    };

    /** In-flight (dispatched, unretired) non-MMIO store. */
    struct StoreRef
    {
        std::uint64_t seq;
        Addr lo, hi;
    };

    RunResult runComplex(Cycles budget_end);
    RunResult runSimple(Cycles budget_end);

    /**
     * The simple-mode per-instruction loop, templated on whether a
     * tracer is installed so the untraced instantiation carries no
     * tracing code at all (see SimpleCpu::runLoop).
     */
    template <bool Traced>
    RunResult runSimpleLoop(Cycles budget_end);

    // Each stage returns how many instructions it moved this cycle.
    // A cycle where every stage reports zero is the only kind that can
    // start an idle span, so the run loops consult nextEventCycle()
    // (and attempt a skip) only then — busy cycles pay nothing for the
    // event machinery.
    int fetchStage();
    int dispatchStage();
    int issueStage();
    int retireStage();

    /**
     * First future cycle at which any stage can make progress, given
     * the state after this cycle's stages, or noCycleLimit if nothing
     * is scheduled (only possible when the machine is finished). The
     * run loops jump straight to it when it is beyond cycle_ + 1; see
     * DESIGN.md for the argument that the skipped span is observably
     * empty. @p fetching is false inside the drain loops, which run
     * with fetch disabled.
     */
    Cycles nextEventCycle(bool fetching) const;

    /**
     * Advance cycle_ to the cycle before @p next (clamped to
     * @p budget_end and, when the watchdog is live, to its expiry
     * cycle), ticking the platform across the whole span at once.
     * @return true if the watchdog expired in the span (cycle_ then
     * sits exactly on the expiry cycle, as the per-cycle stepper would
     * leave it).
     */
    bool skipIdleCycles(Cycles next, Cycles budget_end);

    bool olderStoresIssued(const RobEntry &load) const;
    bool overlapsOlderStore(const RobEntry &load) const;
    int outstandingLoadMisses();

    // ROB sequence numbers are contiguous (dispatch appends, retire
    // pops the front), so an entry's ring slot is an O(1) index off the
    // oldest entry: slot(head + (seq - frontSeq)). Inline: called for
    // every producer of every dispatched instruction.
    RobEntry *
    findBySeq(std::uint64_t seq)
    {
        if (robCount_ == 0)
            return nullptr;
        const std::uint64_t front_seq = rob_[robHead_].seq;
        if (seq < front_seq)
            return nullptr;
        const std::size_t idx =
            static_cast<std::size_t>(seq - front_seq);
        if (idx >= robCount_)
            return nullptr;
        return &rob_[(robHead_ + idx) & robMask_];
    }

    RobEntry &robFront() { return rob_[robHead_]; }
    const RobEntry &robFront() const { return rob_[robHead_]; }
    void
    robPopFront()
    {
        robHead_ = (robHead_ + 1) & robMask_;
        --robCount_;
    }
    /** The slot a new entry dispatches into (fields are overwritten). */
    RobEntry &
    robPushSlot()
    {
        RobEntry &e = rob_[(robHead_ + robCount_) & robMask_];
        ++robCount_;
        return e;
    }

    FetchEntry &fqFront() { return fetchQueue_[fqHead_]; }
    void
    fqPopFront()
    {
        fqHead_ = (fqHead_ + 1) & fqMask_;
        --fqCount_;
    }
    FetchEntry &
    fqPushSlot()
    {
        FetchEntry &e = fetchQueue_[(fqHead_ + fqCount_) & fqMask_];
        ++fqCount_;
        return e;
    }

    Platform::TickResult tickTo(Cycles to);

    bool robFull() const
    {
        return static_cast<int>(robCount_) >= params_.robSize;
    }
    int iqOccupancy() const { return iqCount_; }
    int lsqOccupancy() const { return lsqCount_; }

    OooParams params_;
    Mode mode_ = Mode::Complex;
    Gshare gshare_;
    IndirectPredictor indirect_;

    Cycles cycle_ = 0;
    Cycles ticked_ = 0;
    std::uint64_t seqCounter_ = 0;

    // Fixed ring buffers (capacity = next power of two >= the
    // configured size, so indexing is a mask, not a modulo).
    std::vector<FetchEntry> fetchQueue_;
    std::size_t fqHead_ = 0, fqCount_ = 0, fqMask_ = 0;
    std::vector<RobEntry> rob_;
    std::size_t robHead_ = 0, robCount_ = 0, robMask_ = 0;

    // Last writer (sequence number) of each architectural register.
    std::array<std::int64_t, numIntRegs> lastIntWriter_;
    std::array<std::int64_t, numFpRegs> lastFpWriter_;
    std::int64_t lastFccWriter_ = -1;

    Cycles fetchReadyCycle_ = 0;
    std::int64_t fetchBlockedSeq_ = -1;   ///< unresolved mispredict
    Addr lastFetchBlock_ = ~0u;
    bool haltFetched_ = false;
    int memPortsUsed_ = 0;
    int iqCount_ = 0;
    int lsqCount_ = 0;

    /**
     * Data-ready, unissued entries in program (seq) order: exactly the
     * entries whose pending count is zero. The issue stage scans only
     * this list — the wakeup-list replacement for the historical
     * sourcesReady() poll over every unissued entry. Entries stay
     * until they issue (structural stalls keep them here); a ready
     * entry whose readyAt is still in the future is skipped until that
     * cycle arrives.
     */
    std::vector<std::uint64_t> readyList_;
    /** Consumers woken mid-scan; merged into readyList_ after it. */
    std::vector<std::uint64_t> wokenBuf_;
    /**
     * Earliest future cycle the issue stage could issue anything:
     * recomputed by each issueStage() pass, then folded by same-cycle
     * wakeups and dispatches. Feeds nextEventCycle().
     */
    Cycles issueEvent_ = 0;

    /** Unissued non-MMIO stores, ascending seq (front gates loads). */
    std::vector<std::uint64_t> unissuedStoreSeqs_;
    /** In-flight non-MMIO stores, a ring in program order. */
    std::vector<StoreRef> inflightStores_;
    std::size_t storeHead_ = 0, storeCount_ = 0, storeMask_ = 0;
    /** Fill-completion cycles of issued, still-outstanding load misses. */
    std::vector<Cycles> missFillTimes_;

    std::uint64_t mispredicts_ = 0;
    /** Last MshrOccupancy value traced (dedupe: emit per change). */
    int lastMshrTraced_ = -1;
    /** See setFaultPort(). Null on every production path. */
    FaultPort *faultPort_ = nullptr;

    /**
     * The thread's tracer, hoisted once per run() call so the per-cycle
     * stages pay one member load and a predictable branch when tracing
     * is off (see sim/trace.hh's cost model).
     */
    Tracer *tracer_ = nullptr;

    /**
     * The thread's profiler, hoisted like tracer_. Cycle attribution
     * charges each retired instruction the cycles elapsed since the
     * previous retirement (the first retire of a cycle absorbs any
     * stall gap; same-cycle retires charge zero), so attributed
     * cycles never exceed elapsed cycles.
     */
    prof::BlockProfiler *prof_ = nullptr;
    Cycles profLastRetire_ = 0;

    // ---- simple-mode engine (shared VISA timing recurrence) ----
    VisaTimer timer_;
    Cycles timerBase_ = 0;
    Instruction prevInst_;
    bool prevWasLoad_ = false;
    std::uint64_t simpleFetchGroup_ = 0;
};

} // namespace visa

#endif // VISA_CPU_OOO_CPU_HH
