#include "cpu/simple_cpu.hh"

#include "cpu/bpred.hh"
#include "sim/logging.hh"
#include "sim/prof/prof.hh"
#include "sim/trace.hh"

namespace visa
{

CacheParams
visaICacheParams()
{
    return {"icache", 64 * 1024, 4, 64};
}

CacheParams
visaDCacheParams()
{
    return {"dcache", 64 * 1024, 4, 64};
}

SimpleCpu::SimpleCpu(const Program &prog, MainMemory &mem,
                     Platform &platform, MemController &memctrl)
    : Cpu(prog, mem, platform, memctrl,
          visaICacheParams(), visaDCacheParams())
{
}

void
SimpleCpu::resetForTask()
{
    Cpu::resetForTask();
    timer_.reset();
    cycleBase_ = 0;
    ticked_ = 0;
    prevWasLoad_ = false;
    prevInst_ = Instruction{};
    mispredicts_ = 0;
}

void
SimpleCpu::advanceIdle(Cycles n)
{
    // The pipeline drains and sits idle for n cycles (reconfiguration /
    // frequency switch). The watchdog and cycle counter keep running.
    if (prof::BlockProfiler *prof = prof::currentProfiler())
        prof->addUnattributed(n);
    cycleBase_ = cycles() + n;
    timer_.reset();
    tickTo(cycleBase_);
    prevWasLoad_ = false;
    syncActivityCycles();
}

void
SimpleCpu::buildStats(StatSet &set) const
{
    Cpu::buildStats(set);
    set.group(statsName())
        .scalar("branch_mispredicts", "static BTFN mispredictions")
        .set(mispredicts_);
}

RunResult
SimpleCpu::run(Cycles max_cycles)
{
    const Cycles budget_end = max_cycles == noCycleLimit
        ? noCycleLimit
        : cycles() + max_cycles;

    // Dispatch once on the installed tracer: the untraced instantiation
    // of the loop contains no tracing code, so recording costs nothing
    // unless a tracer is actually installed.
    Tracer *const tracer = currentTracer();
    return tracer ? runLoop<true>(budget_end, tracer)
                  : runLoop<false>(budget_end, nullptr);
}

template <bool Traced>
RunResult
SimpleCpu::runLoop(Cycles budget_end, [[maybe_unused]] Tracer *tracer)
{
    // Loop-invariant per-instruction work, hoisted: the frequency (and
    // with it the miss penalty) only changes between run() calls, and
    // trace flags are set before a run starts.
    const Cycles penalty = missPenalty();
    const bool trace_exec = Debug::enabled("Exec");
    // Profiler hoisted like the tracer; attribution charges each
    // retired instruction the cycles the timer advanced for it.
    prof::BlockProfiler *const prof = prof::currentProfiler();
    Cycles profPrev = cycles();

    while (true) {
        if (halted_)
            return {StopReason::Halted};
        if (cycles() >= budget_end)
            return {StopReason::CycleBudget};

        const Addr pc = core_.state().pc;

        // Fetch: blocking I-cache, one access per instruction (scalar).
        bool ihit = icache_.access(pc, false);
        activity_.add(Unit::ICache);

        // Functional execution (commit semantics); MMIO deferred until
        // simulated time reaches this instruction's memory stage.
        ExecInfo info = core_.step(true);
        const Instruction &inst = info.inst;
        if (trace_exec) [[unlikely]] {
            DPRINTF("Exec", "%8llu  %08x  %s\n",
                    static_cast<unsigned long long>(cycles()), pc,
                    disassemble(inst, pc).c_str());
        }

        // Data cache (devices are uncached).
        bool dhit = true;
        if (info.isMem && !info.isMmio) {
            dhit = dcache_.access(info.effAddr, !info.isLoad);
            activity_.add(Unit::DCache);
        }

        // Static BTFN prediction; merged BTB means correctly predicted
        // taken branches cost nothing. Indirect jumps always stall.
        bool redirect = false;
        if (inst.isCondBranch()) {
            bool predicted_taken = staticPredictTaken(inst, pc);
            redirect = predicted_taken != info.taken;
            if (redirect)
                ++mispredicts_;
        } else if (inst.isIndirectJump()) {
            redirect = true;
        }

        TimingRecord rec;
        rec.exLatency = inst.latency();
        rec.imissPenalty = ihit ? 0 : penalty;
        rec.dmissPenalty =
            (info.isMem && !info.isMmio && !dhit) ? penalty : 0;
        rec.loadUseStall = prevWasLoad_ && inst.dependsOn(prevInst_);
        rec.redirect = redirect;
        timer_.consume(rec);

        if (prof) [[unlikely]] {
            const Cycles pnow = cycleBase_ + timer_.totalCycles();
            prof->countTimed(pc, inst.isControl(), pnow - profPrev);
            profPrev = pnow;
        }

        if constexpr (Traced) {
            const Cycles now = cycleBase_ + timer_.totalCycles();
            if (!ihit)
                tracer->record(EventKind::IcacheMiss, now, pc);
            if (info.isMem && !info.isMmio && !dhit)
                tracer->record(EventKind::DcacheMiss, now,
                               info.effAddr, pc);
            if (redirect && inst.isCondBranch())
                tracer->record(EventKind::BranchMispredict, now, pc,
                               retired_, info.taken);
            tracer->record(EventKind::Retire, now, pc, retired_);
        }

        // Activity: register file and FU usage. Source-read counts fall
        // straight out of the operand-role flags (the four source flags
        // occupy bits 0-3, so a branchless shift-add counts them; r0
        // sources still count as reads, exactly as the slot loops did).
        static_assert((detail::opSrcRsInt | detail::opSrcRtInt |
                       detail::opSrcRsFp | detail::opSrcRtFp) == 0xF);
        const unsigned src = detail::operandFlags(inst.op) & 0xFu;
        activity_.add(Unit::RegfileRead,
                      (src & 1) + ((src >> 1) & 1) + ((src >> 2) & 1) +
                          (src >> 3));
        if (inst.destIntReg() >= 0 || inst.destFpReg() >= 0)
            activity_.add(Unit::RegfileWrite);
        activity_.add(Unit::Fu);
        activity_.add(Unit::ResultBus);

        // Advance the platform to this instruction's memory stage, then
        // perform any deferred MMIO access at that exact cycle.
        auto tick = tickTo(cycleBase_ + timer_.lastMemDone());
        if (info.isMmio)
            core_.performMmio(info);

        prevInst_ = inst;
        prevWasLoad_ = info.isLoad;
        ++retired_;
        syncActivityCycles();

        if (tick.expired)
            return {StopReason::WatchdogExpired};
        if (info.halted) {
            halted_ = true;
            tickTo(cycleBase_ + timer_.totalCycles());
            return {StopReason::Halted};
        }
    }
}

} // namespace visa
