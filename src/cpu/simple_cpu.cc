#include "cpu/simple_cpu.hh"

#include "cpu/bpred.hh"
#include "sim/logging.hh"

namespace visa
{

CacheParams
visaICacheParams()
{
    return {"icache", 64 * 1024, 4, 64};
}

CacheParams
visaDCacheParams()
{
    return {"dcache", 64 * 1024, 4, 64};
}

SimpleCpu::SimpleCpu(const Program &prog, MainMemory &mem,
                     Platform &platform, MemController &memctrl)
    : Cpu(prog, mem, platform, memctrl,
          visaICacheParams(), visaDCacheParams())
{
}

void
SimpleCpu::resetForTask()
{
    Cpu::resetForTask();
    timer_.reset();
    cycleBase_ = 0;
    ticked_ = 0;
    prevWasLoad_ = false;
    prevInst_ = Instruction{};
    mispredicts_ = 0;
}

Platform::TickResult
SimpleCpu::tickTo(Cycles to)
{
    if (to <= ticked_)
        return {};
    auto res = platform_.tickN(to - ticked_);
    if (res.expired)
        res.offset += ticked_;    // make the offset absolute
    ticked_ = to;
    return res;
}

void
SimpleCpu::advanceIdle(Cycles n)
{
    // The pipeline drains and sits idle for n cycles (reconfiguration /
    // frequency switch). The watchdog and cycle counter keep running.
    cycleBase_ = cycles() + n;
    timer_.reset();
    tickTo(cycleBase_);
    prevWasLoad_ = false;
    syncActivityCycles();
}

RunResult
SimpleCpu::run(Cycles max_cycles)
{
    const Cycles budget_end = max_cycles == noCycleLimit
        ? noCycleLimit
        : cycles() + max_cycles;

    while (true) {
        if (halted_)
            return {StopReason::Halted};
        if (cycles() >= budget_end)
            return {StopReason::CycleBudget};

        const Addr pc = core_.state().pc;
        const Cycles penalty = missPenalty();

        // Fetch: blocking I-cache, one access per instruction (scalar).
        bool ihit = icache_.access(pc, false);
        activity_.add(Unit::ICache);

        // Functional execution (commit semantics); MMIO deferred until
        // simulated time reaches this instruction's memory stage.
        ExecInfo info = core_.step(true);
        const Instruction &inst = info.inst;
        if (Debug::enabled("Exec")) {
            DPRINTF("Exec", "%8llu  %08x  %s\n",
                    static_cast<unsigned long long>(cycles()), pc,
                    disassemble(inst, pc).c_str());
        }

        // Data cache (devices are uncached).
        bool dhit = true;
        if (info.isMem && !info.isMmio) {
            dhit = dcache_.access(info.effAddr, !info.isLoad);
            activity_.add(Unit::DCache);
        }

        // Static BTFN prediction; merged BTB means correctly predicted
        // taken branches cost nothing. Indirect jumps always stall.
        bool redirect = false;
        if (inst.isCondBranch()) {
            bool predicted_taken = staticPredictTaken(inst, pc);
            redirect = predicted_taken != info.taken;
            if (redirect)
                ++mispredicts_;
        } else if (inst.isIndirectJump()) {
            redirect = true;
        }

        TimingRecord rec;
        rec.exLatency = inst.latency();
        rec.imissPenalty = ihit ? 0 : penalty;
        rec.dmissPenalty =
            (info.isMem && !info.isMmio && !dhit) ? penalty : 0;
        rec.loadUseStall = prevWasLoad_ && inst.dependsOn(prevInst_);
        rec.redirect = redirect;
        timer_.consume(rec);

        // Activity: register file and FU usage.
        for (int s : inst.srcIntRegs())
            if (s >= 0)
                activity_.add(Unit::RegfileRead);
        for (int s : inst.srcFpRegs())
            if (s >= 0)
                activity_.add(Unit::RegfileRead);
        if (inst.destIntReg() >= 0 || inst.destFpReg() >= 0)
            activity_.add(Unit::RegfileWrite);
        activity_.add(Unit::Fu);
        activity_.add(Unit::ResultBus);

        // Advance the platform to this instruction's memory stage, then
        // perform any deferred MMIO access at that exact cycle.
        auto tick = tickTo(cycleBase_ + timer_.lastMemDone());
        if (info.isMmio)
            core_.performMmio(info);

        prevInst_ = inst;
        prevWasLoad_ = info.isLoad;
        ++retired_;
        syncActivityCycles();

        if (tick.expired)
            return {StopReason::WatchdogExpired};
        if (info.halted) {
            halted_ = true;
            tickTo(cycleBase_ + timer_.totalCycles());
            return {StopReason::Halted};
        }
    }
}

} // namespace visa
