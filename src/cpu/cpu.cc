#include "cpu/cpu.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace visa
{

void
ExecCore::reset()
{
    state_ = ArchState{};
    state_.pc = prog_.entry;
    state_.writeInt(reg::sp, defaultStackTop);
}

ExecInfo
ExecCore::step(bool defer_mmio)
{
    ExecInfo info;
    info.pc = state_.pc;
    const Instruction &inst = prog_.at(state_.pc);
    info.inst = inst;
    info.nextPc = state_.pc + 4;

    switch (inst.cls()) {
      case InstrClass::IntAlu:
      case InstrClass::IntMult:
      case InstrClass::IntDiv:
        state_.writeInt(inst.rd,
                        evalIntAlu(inst, state_.readInt(inst.rs),
                                   state_.readInt(inst.rt)));
        break;

      case InstrClass::FpAlu:
      case InstrClass::FpMult:
      case InstrClass::FpDiv:
        switch (inst.op) {
          case Opcode::CVT_D_W:
            state_.fpRegs[inst.rd] = static_cast<double>(
                static_cast<std::int32_t>(state_.readInt(inst.rs)));
            break;
          case Opcode::CVT_W_D:
            state_.writeInt(inst.rd,
                            static_cast<Word>(static_cast<std::int32_t>(
                                state_.fpRegs[inst.rs])));
            break;
          case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
            state_.fcc = evalFpCmp(inst, state_.fpRegs[inst.rs],
                                   state_.fpRegs[inst.rt]);
            break;
          default:
            state_.fpRegs[inst.rd] = evalFpAlu(inst, state_.fpRegs[inst.rs],
                                               state_.fpRegs[inst.rt]);
        }
        break;

      case InstrClass::Load: {
        info.isMem = true;
        info.isLoad = true;
        info.effAddr = effectiveAddr(inst, state_.readInt(inst.rs));
        info.isMmio = mmio::contains(info.effAddr);
        if (info.isMmio) {
            if (inst.op != Opcode::LW)
                fatal("MMIO access must use lw/sw (pc 0x%x)", info.pc);
            if (defer_mmio)
                info.mmioDest = inst.rd;
            else
                state_.writeInt(inst.rd, platform_.load(info.effAddr));
        } else if (inst.op == Opcode::LDC1) {
            state_.fpRegs[inst.rd] = mem_.readDouble(info.effAddr);
        } else {
            Word raw = static_cast<Word>(
                mem_.read(info.effAddr, inst.memBytes()));
            state_.writeInt(inst.rd, extendLoad(inst.op, raw));
        }
        break;
      }

      case InstrClass::Store: {
        info.isMem = true;
        info.effAddr = effectiveAddr(inst, state_.readInt(inst.rs));
        info.isMmio = mmio::contains(info.effAddr);
        if (info.isMmio) {
            if (inst.op != Opcode::SW)
                fatal("MMIO access must use lw/sw (pc 0x%x)", info.pc);
            if (!defer_mmio)
                platform_.store(info.effAddr, state_.readInt(inst.rt));
            // deferred stores are performed by performMmio()
        } else if (inst.op == Opcode::SDC1) {
            mem_.writeDouble(info.effAddr, state_.fpRegs[inst.rt]);
        } else {
            mem_.write(info.effAddr, state_.readInt(inst.rt),
                       inst.memBytes());
        }
        break;
      }

      case InstrClass::CondBranch:
      case InstrClass::DirectJump:
      case InstrClass::IndirectJump: {
        ControlEval ev = evalControl(inst, info.pc, state_.readInt(inst.rs),
                                     state_.readInt(inst.rt), state_.fcc);
        info.taken = ev.taken;
        info.nextPc = ev.taken ? ev.target : info.pc + 4;
        if (inst.op == Opcode::JAL)
            state_.writeInt(reg::ra, info.pc + 4);
        else if (inst.op == Opcode::JALR)
            state_.writeInt(inst.rd, info.pc + 4);
        break;
      }

      case InstrClass::Nop:
        break;

      case InstrClass::Halt:
        info.halted = true;
        info.nextPc = info.pc;
        break;
    }

    state_.pc = info.nextPc;
    return info;
}

void
ExecCore::performMmio(const ExecInfo &info)
{
    if (!info.isMmio)
        return;
    if (info.isLoad) {
        state_.writeInt(info.mmioDest, platform_.load(info.effAddr));
    } else {
        platform_.store(info.effAddr, state_.readInt(info.inst.rt));
    }
}

Cpu::Cpu(const Program &prog, MainMemory &mem, Platform &platform,
         MemController &memctrl,
         const CacheParams &icache_params, const CacheParams &dcache_params)
    : prog_(prog), mem_(mem), platform_(platform), memctrl_(memctrl),
      icache_(icache_params), dcache_(dcache_params),
      core_(prog, mem, platform)
{
}

void
Cpu::resetForTask()
{
    // Bank the finished instance's cycles so the activity counters
    // stay monotonic across tasks (the subclass resets its per-task
    // cycle counter after this call).
    activityCycleBase_ += cycles();
    core_.reset();
    retired_ = 0;
    halted_ = false;
    // No sync here: the subclass zeroes its per-task cycle counter
    // after this call, and the banked base already equals the
    // cumulative count. activity_.cycles refreshes on the first step.
}

void
Cpu::flushCachesAndPredictors()
{
    icache_.flush();
    dcache_.flush();
}

void
Cpu::dumpStats(std::ostream &os) const
{
    StatGroup g(statsName());
    g.scalar("cycles", "simulated cycles this task").set(cycles());
    g.scalar("instructions", "instructions retired").set(retired_);
    g.formula("ipc",
              [this]() {
                  Cycles c = cycles();
                  return c ? static_cast<double>(retired_) /
                                 static_cast<double>(c)
                           : 0.0;
              },
              "retired instructions per cycle");
    g.scalar("icache_accesses").set(icache_.accesses());
    g.scalar("icache_misses").set(icache_.misses());
    g.scalar("dcache_accesses").set(dcache_.accesses());
    g.scalar("dcache_misses").set(dcache_.misses());
    g.formula("dcache_miss_rate", [this]() {
        return dcache_.accesses()
                   ? static_cast<double>(dcache_.misses()) /
                         static_cast<double>(dcache_.accesses())
                   : 0.0;
    });
    for (int u = 0; u < numUnits; ++u) {
        g.scalar(std::string("activity_") +
                 unitName(static_cast<Unit>(u)))
            .set(activity_.count(static_cast<Unit>(u)));
    }
    g.dump(os);
}

} // namespace visa
