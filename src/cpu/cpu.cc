#include "cpu/cpu.hh"

#include <algorithm>

#include "isa/encoding.hh"
#include "sim/logging.hh"
#include "sim/prof/prof.hh"
#include "sim/stats.hh"

namespace visa
{

void
ExecCore::reset()
{
    state_ = ArchState{};
    state_.pc = prog_.entry;
    state_.writeInt(reg::sp, defaultStackTop);
    leaveBlock();
}

void
ExecCore::refill()
{
    // Block-entry store-to-code probe: one counter compare per block,
    // the cached path's analogue of the uncached path's per-step probe.
    if (mem_.codeWriteCount() != codeWriteSnap_) [[unlikely]]
        resyncCode();
    const Addr pc = state_.pc;
    CodeBlock *parent = curBlock_;
    CodeBlock *b = nullptr;
    if (parent) {
        // Chains are hints; confirm the target (indirect jumps can land
        // anywhere) and validity before trusting one.
        CodeBlock *t = parent->chainTaken;
        if (t && t->valid && t->startPc == pc) {
            b = t;
        } else {
            CodeBlock *f = parent->chainFall;
            if (f && f->valid && f->startPc == pc)
                b = f;
        }
        if (b)
            ++chainHits_;
    }
    if (!b) {
        b = blocks_.ensure(text_, textCopy_.size(), textBase_, pc);
        if (!b) [[unlikely]] {
            // Off-text or misaligned PC: Program::at carries the
            // existing panic diagnostics for exactly this case.
            prog_.at(pc);
            panic("ExecCore::refill: no block at pc 0x%x", pc);
        }
        if (parent) {
            if (pc == parent->fallPc())
                parent->chainFall = b;
            else
                parent->chainTaken = b;
        }
    }
    curBlock_ = b;
    cur_ = b->insts.data();
    curEnd_ = cur_ + b->count;
    cachePc_ = pc;
}

ExecCore::FuncRunResult
ExecCore::runFunctional(std::uint64_t max_insts)
{
    // Hoisted once per run, like the pipelines hoist the tracer: the
    // batch path below pays one predicted branch per *block* when no
    // profiler is installed (and none at all under -DVISA_PROFILING=0,
    // where currentProfiler() is a constant nullptr).
    prof::BlockProfiler *const prof = prof::currentProfiler();
    std::uint64_t n = 0;
    if (!cacheOn_ || obs_) {
        while (n < max_insts) {
            const ExecInfo info = step(false);
            ++n;
            if (prof) [[unlikely]]
                prof->countStep(info.pc, info.inst.isControl());
            if (info.halted)
                return {n, true};
        }
        return {n, false};
    }

#if !defined(__GNUC__) && !defined(__clang__)
    // Portable fallback: the per-record dense-switch dispatch.
    while (n < max_insts) {
        const ExecInfo info = step(false);
        ++n;
        if (prof) [[unlikely]]
            prof->countStep(info.pc, info.inst.isControl());
        if (info.halted)
            return {n, true};
    }
    return {n, false};
#else
    // Threaded dispatch: every handler ends in its own computed goto,
    // so the host branch predictor sees one indirect-jump site per
    // opcode pair instead of a single shared dispatch point that every
    // instruction funnels through.
    //
    // The table is written in Opcode declaration order with two extra
    // slots: the NumOpcodes marker resyncCode() creates for
    // undecodable words (BlockMap::ensure normalizes any other
    // out-of-range opcode to it), and the end-of-block sentinel each
    // CodeBlock stores after its last real record, which is what lets
    // the dispatch macro omit the per-instruction cursor-limit compare.
    static_assert(static_cast<std::size_t>(Opcode::HALT) + 1 ==
                      detail::numOpcodeSlots,
                  "opcode order changed: update runFunctional's table");
    static const void *const jumpTable[detail::numOpcodeSlots + 2] = {
        &&op_ADD, &&op_SUB, &&op_MUL, &&op_DIV, &&op_REM,
        &&op_AND, &&op_OR, &&op_XOR, &&op_NOR,
        &&op_SLT, &&op_SLTU,
        &&op_SLLV, &&op_SRLV, &&op_SRAV,
        &&op_SLL, &&op_SRL, &&op_SRA,
        &&op_ADDI, &&op_ANDI, &&op_ORI, &&op_XORI,
        &&op_SLTI, &&op_SLTIU, &&op_LUI,
        &&op_LB, &&op_LBU, &&op_LH, &&op_LHU, &&op_LW, &&op_LDC1,
        &&op_SB, &&op_SH, &&op_SW, &&op_SDC1,
        &&op_BEQ, &&op_BNE, &&op_BLEZ, &&op_BGTZ, &&op_BLTZ, &&op_BGEZ,
        &&op_BC1T, &&op_BC1F,
        &&op_J, &&op_JAL, &&op_JR, &&op_JALR,
        &&op_ADD_D, &&op_SUB_D, &&op_MUL_D, &&op_DIV_D,
        &&op_NEG_D, &&op_ABS_D, &&op_MOV_D,
        &&op_CVT_D_W, &&op_CVT_W_D,
        &&op_C_EQ_D, &&op_C_LT_D, &&op_C_LE_D,
        &&op_NOP, &&op_HALT,
        &&op_invalid,
        &&op_blockend,
    };

// Operand accessors for the current record. WR's write goes through
// writeInt so the r0-stays-zero rule holds on this path too.
#define VISA_RS state_.readInt(pi->inst.rs)
#define VISA_RT state_.readInt(pi->inst.rt)
#define VISA_IMM (pi->inst.imm)
#define VISA_WR(v) state_.writeInt(pi->inst.rd, (v))
#define VISA_FS state_.fpRegs[pi->inst.rs]
#define VISA_FT state_.fpRegs[pi->inst.rt]
#define VISA_FD state_.fpRegs[pi->inst.rd]
#define VISA_EA (VISA_RS + static_cast<Word>(VISA_IMM))
// The guest PC of the record pi points at, reconstructed from the
// block cursor: cur_ still holds the block start until block_done
// writes it back. Only block-exit and error paths need a PC, so the
// dispatch loop maintains neither a PC nor an instruction count per
// instruction -- both fall out of pointer arithmetic at block exit.
#define VISA_PC (cachePc_ + 4 * static_cast<Addr>(pi - cur_))
// No cursor-limit compare either: every block carries a trailing
// blockEndOpcode sentinel whose handler ends the block, so the
// dispatch is an unconditional load-increment-jump.
#define VISA_DISPATCH()                                                 \
    do {                                                                \
        pi = p++;                                                       \
        goto *jumpTable[static_cast<std::size_t>(pi->inst.op)];         \
    } while (0)

    while (n < max_insts) {
        if (cur_ == curEnd_ || state_.pc != cachePc_)
            refill();
        if (static_cast<std::uint64_t>(curEnd_ - cur_) >
            max_insts - n) [[unlikely]] {
            // The budget runs out inside this block. Finish the turn on
            // the per-step path, which can stop at any record; the
            // sentinel-terminated fast path only runs whole blocks.
            while (n < max_insts) {
                const ExecInfo info = step(false);
                ++n;
                if (prof) [[unlikely]]
                    prof->countStep(info.pc, info.inst.isControl());
                if (info.halted)
                    return {n, true};
            }
            return {n, false};
        }
        // Hoist the cursor and PC into locals for the whole block: the
        // compiler keeps them in registers across the simulated loads
        // and stores below, which it could never prove safe for the
        // member fields themselves.
        const PredecodedInst *p = cur_;
        const PredecodedInst *pi = p;
        Addr pc;    // assigned on every path into block_done
        bool halted = false;
        bool leave = false;    // store-to-code: force a refill/resync
        bool xfer = false;     // block ended in a control transfer

        VISA_DISPATCH();

      op_ADD:   VISA_WR(VISA_RS + VISA_RT); VISA_DISPATCH();
      op_SUB:   VISA_WR(VISA_RS - VISA_RT); VISA_DISPATCH();
      op_MUL:
        VISA_WR(static_cast<Word>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(VISA_RS)) *
            static_cast<std::int32_t>(VISA_RT)));
        VISA_DISPATCH();
      op_DIV: {
        const auto s = static_cast<std::int32_t>(VISA_RS);
        const auto t = static_cast<std::int32_t>(VISA_RT);
        Word r = 0;
        if (t == 0)
            r = 0;
        else if (s == INT32_MIN && t == -1)
            r = static_cast<Word>(INT32_MIN);
        else
            r = static_cast<Word>(s / t);
        VISA_WR(r);
        VISA_DISPATCH();
      }
      op_REM: {
        const auto s = static_cast<std::int32_t>(VISA_RS);
        const auto t = static_cast<std::int32_t>(VISA_RT);
        VISA_WR((t == 0 || (s == INT32_MIN && t == -1))
                    ? 0
                    : static_cast<Word>(s % t));
        VISA_DISPATCH();
      }
      op_AND:   VISA_WR(VISA_RS & VISA_RT); VISA_DISPATCH();
      op_OR:    VISA_WR(VISA_RS | VISA_RT); VISA_DISPATCH();
      op_XOR:   VISA_WR(VISA_RS ^ VISA_RT); VISA_DISPATCH();
      op_NOR:   VISA_WR(~(VISA_RS | VISA_RT)); VISA_DISPATCH();
      op_SLT:
        VISA_WR(static_cast<std::int32_t>(VISA_RS) <
                        static_cast<std::int32_t>(VISA_RT)
                    ? 1
                    : 0);
        VISA_DISPATCH();
      op_SLTU:  VISA_WR(VISA_RS < VISA_RT ? 1 : 0); VISA_DISPATCH();
      op_SLLV:  VISA_WR(VISA_RS << (VISA_RT & 31)); VISA_DISPATCH();
      op_SRLV:  VISA_WR(VISA_RS >> (VISA_RT & 31)); VISA_DISPATCH();
      op_SRAV:
        VISA_WR(static_cast<Word>(static_cast<std::int32_t>(VISA_RS) >>
                                  (VISA_RT & 31)));
        VISA_DISPATCH();
      op_SLL:   VISA_WR(VISA_RS << (VISA_IMM & 31)); VISA_DISPATCH();
      op_SRL:   VISA_WR(VISA_RS >> (VISA_IMM & 31)); VISA_DISPATCH();
      op_SRA:
        VISA_WR(static_cast<Word>(static_cast<std::int32_t>(VISA_RS) >>
                                  (VISA_IMM & 31)));
        VISA_DISPATCH();
      op_ADDI:  VISA_WR(VISA_RS + static_cast<Word>(VISA_IMM)); VISA_DISPATCH();
      op_ANDI:
        VISA_WR(VISA_RS & (static_cast<Word>(VISA_IMM) & 0xFFFF));
        VISA_DISPATCH();
      op_ORI:
        VISA_WR(VISA_RS | (static_cast<Word>(VISA_IMM) & 0xFFFF));
        VISA_DISPATCH();
      op_XORI:
        VISA_WR(VISA_RS ^ (static_cast<Word>(VISA_IMM) & 0xFFFF));
        VISA_DISPATCH();
      op_SLTI:
        VISA_WR(static_cast<std::int32_t>(VISA_RS) < VISA_IMM ? 1 : 0);
        VISA_DISPATCH();
      op_SLTIU:
        VISA_WR(VISA_RS < static_cast<Word>(VISA_IMM) ? 1 : 0);
        VISA_DISPATCH();
      op_LUI:   VISA_WR(static_cast<Word>(VISA_IMM) << 16); VISA_DISPATCH();

      op_LB: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(VISA_PC);
        VISA_WR(static_cast<Word>(static_cast<std::int32_t>(
            static_cast<std::int8_t>(mem_.read(ea, 1)))));
        VISA_DISPATCH();
      }
      op_LBU: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(VISA_PC);
        VISA_WR(static_cast<Word>(mem_.read(ea, 1)) & 0xFF);
        VISA_DISPATCH();
      }
      op_LH: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(VISA_PC);
        VISA_WR(static_cast<Word>(static_cast<std::int32_t>(
            static_cast<std::int16_t>(mem_.read(ea, 2)))));
        VISA_DISPATCH();
      }
      op_LHU: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(VISA_PC);
        VISA_WR(static_cast<Word>(mem_.read(ea, 2)) & 0xFFFF);
        VISA_DISPATCH();
      }
      op_LW: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            VISA_WR(platform_.load(ea));
        else
            VISA_WR(static_cast<Word>(mem_.read(ea, 4)));
        VISA_DISPATCH();
      }
      op_LDC1: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(VISA_PC);
        VISA_FD = mem_.readDouble(ea);
        VISA_DISPATCH();
      }

      op_SB: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(VISA_PC);
        mem_.write(ea, VISA_RT, 1);
        if (touchesText(ea, 1)) [[unlikely]] {
            leave = true;
            pc = VISA_PC + 4;
            goto block_done;
        }
        VISA_DISPATCH();
      }
      op_SH: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(VISA_PC);
        mem_.write(ea, VISA_RT, 2);
        if (touchesText(ea, 2)) [[unlikely]] {
            leave = true;
            pc = VISA_PC + 4;
            goto block_done;
        }
        VISA_DISPATCH();
      }
      op_SW: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]] {
            platform_.store(ea, VISA_RT);
        } else {
            mem_.write(ea, VISA_RT, 4);
            if (touchesText(ea, 4)) [[unlikely]] {
                leave = true;
                pc = VISA_PC + 4;
                goto block_done;
            }
        }
        VISA_DISPATCH();
      }
      op_SDC1: {
        const Addr ea = VISA_EA;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(VISA_PC);
        mem_.writeDouble(ea, VISA_FT);
        if (touchesText(ea, 8)) [[unlikely]] {
            leave = true;
            pc = VISA_PC + 4;
            goto block_done;
        }
        VISA_DISPATCH();
      }

      // Terminators are always a block's last real record, so when one
      // dispatches p already sits on the trailing sentinel (== curEnd_)
      // and the handler can jump straight to block_done.
      op_BEQ:
        pc = VISA_RS == VISA_RT ? static_cast<Addr>(VISA_IMM)
                                : VISA_PC + 4;
        goto block_done_xfer;
      op_BNE:
        pc = VISA_RS != VISA_RT ? static_cast<Addr>(VISA_IMM)
                                : VISA_PC + 4;
        goto block_done_xfer;
      op_BLEZ:
        pc = static_cast<std::int32_t>(VISA_RS) <= 0
                 ? static_cast<Addr>(VISA_IMM)
                 : VISA_PC + 4;
        goto block_done_xfer;
      op_BGTZ:
        pc = static_cast<std::int32_t>(VISA_RS) > 0
                 ? static_cast<Addr>(VISA_IMM)
                 : VISA_PC + 4;
        goto block_done_xfer;
      op_BLTZ:
        pc = static_cast<std::int32_t>(VISA_RS) < 0
                 ? static_cast<Addr>(VISA_IMM)
                 : VISA_PC + 4;
        goto block_done_xfer;
      op_BGEZ:
        pc = static_cast<std::int32_t>(VISA_RS) >= 0
                 ? static_cast<Addr>(VISA_IMM)
                 : VISA_PC + 4;
        goto block_done_xfer;
      op_BC1T:
        pc = state_.fcc ? static_cast<Addr>(VISA_IMM) : VISA_PC + 4;
        goto block_done_xfer;
      op_BC1F:
        pc = !state_.fcc ? static_cast<Addr>(VISA_IMM) : VISA_PC + 4;
        goto block_done_xfer;
      op_J:
        pc = static_cast<Addr>(VISA_IMM);
        goto block_done_xfer;
      op_JAL:
        state_.writeInt(reg::ra, VISA_PC + 4);
        pc = static_cast<Addr>(VISA_IMM);
        goto block_done_xfer;
      op_JR:
        pc = VISA_RS;
        goto block_done_xfer;
      op_JALR: {
        const Addr target = VISA_RS;    // read rs before a write to rd
        VISA_WR(VISA_PC + 4);
        pc = target;
        goto block_done_xfer;
      }

      op_ADD_D: VISA_FD = VISA_FS + VISA_FT; VISA_DISPATCH();
      op_SUB_D: VISA_FD = VISA_FS - VISA_FT; VISA_DISPATCH();
      op_MUL_D: VISA_FD = VISA_FS * VISA_FT; VISA_DISPATCH();
      op_DIV_D: VISA_FD = VISA_FS / VISA_FT; VISA_DISPATCH();
      op_NEG_D: VISA_FD = -VISA_FS; VISA_DISPATCH();
      op_ABS_D: VISA_FD = std::fabs(VISA_FS); VISA_DISPATCH();
      op_MOV_D: VISA_FD = VISA_FS; VISA_DISPATCH();
      op_CVT_D_W:
        VISA_FD = static_cast<double>(static_cast<std::int32_t>(VISA_RS));
        VISA_DISPATCH();
      op_CVT_W_D:
        VISA_WR(static_cast<Word>(static_cast<std::int32_t>(VISA_FS)));
        VISA_DISPATCH();
      op_C_EQ_D: state_.fcc = VISA_FS == VISA_FT; VISA_DISPATCH();
      op_C_LT_D: state_.fcc = VISA_FS < VISA_FT; VISA_DISPATCH();
      op_C_LE_D: state_.fcc = VISA_FS <= VISA_FT; VISA_DISPATCH();

      op_NOP:   VISA_DISPATCH();
      op_HALT:
        pc = VISA_PC;    // HALT does not advance the PC
        halted = true;
        goto block_done;
      op_invalid:
        detail::badOpcode("ExecCore::runFunctional", pi->inst.op);
      op_blockend:
        // Fall-through off the block's end: pi is the trailing
        // sentinel, whose reconstructed PC is exactly the fall-through
        // address. Step p back onto the block end (the sentinel is not
        // a real record) so the cursor write-back lands on curEnd_.
        pc = VISA_PC;
        --p;
        goto block_done;

      block_done_xfer:
        xfer = true;
        // falls through into block_done
      block_done:
        // cachePc_ still holds the block's entry PC here, so the whole
        // batch is attributed in one call. Non-transfer exits (HALT,
        // store-to-code leave, fall-off-the-end) tell the profiler the
        // next counted PC is a *continuation*, not a block entry --
        // keeping cached and per-step profiles identical.
        if (prof) [[unlikely]]
            prof->countBlockRun(cachePc_,
                                static_cast<std::uint32_t>(p - cur_), xfer);
        n += static_cast<std::uint64_t>(p - cur_);
        cur_ = leave ? curEnd_ : p;
        cachePc_ = pc;
        state_.pc = pc;
        if (halted)
            return {n, true};
    }
    return {n, false};

#undef VISA_RS
#undef VISA_RT
#undef VISA_IMM
#undef VISA_WR
#undef VISA_FS
#undef VISA_FT
#undef VISA_FD
#undef VISA_EA
#undef VISA_PC
#undef VISA_DISPATCH
#endif // threaded dispatch
}

Instruction
ExecCore::decodeOrInvalid(Word w, Addr pc)
{
    try {
        return decode(w, pc);
    } catch (const FatalError &) {
        // A store wrote an undecodable word. Executing it must panic,
        // but merely resyncing past it must not: map it to the
        // out-of-range opcode, which traps in classOf / the cached
        // dispatch only if the program actually reaches it.
        Instruction in;
        in.op = Opcode::NumOpcodes;
        return in;
    }
}

void
ExecCore::resyncCode()
{
    ++codeResyncs_;
    codeWriteSnap_ = mem_.codeWriteCount();
    const Addr page = MainMemory::pageBytes();
    const std::size_t nwords =
        std::min(textCopy_.size(), wordsCopy_.size());
    std::size_t lo = SIZE_MAX;
    std::size_t hi = 0;
    for (std::size_t k = 0; k < pageGenSnap_.size(); ++k) {
        const Addr page_base =
            (textBase_ / page + static_cast<Addr>(k)) * page;
        const std::uint64_t gen = mem_.codePageGen(page_base);
        if (gen == pageGenSnap_[k])
            continue;
        pageGenSnap_[k] = gen;
        // Word-diff the dirtied page: re-decoding only words whose
        // memory content actually changed keeps the resync idempotent
        // and independent of encode() round-trip fidelity.
        const Addr first = std::max(page_base, textBase_);
        const Addr last =
            std::min(page_base + page, textBase_ + textBytes_);
        for (Addr a = first; a < last; a += 4) {
            const std::size_t w = (a - textBase_) >> 2;
            if (w >= nwords)
                break;
            const Word v = mem_.readWord(a);
            if (v == wordsCopy_[w])
                continue;
            wordsCopy_[w] = v;
            textCopy_[w] = decodeOrInvalid(v, a);
            lo = std::min(lo, w);
            hi = std::max(hi, w);
        }
    }
    if (lo <= hi)
        blocks_.invalidateWords(lo, hi);
}

void
ExecCore::badMmioAccess(Addr pc)
{
    fatal("MMIO access must use lw/sw (pc 0x%x)", pc);
}

void
ExecCore::performMmio(const ExecInfo &info)
{
    if (!info.isMmio)
        return;
    if (info.isLoad) {
        state_.writeInt(info.mmioDest, platform_.load(info.effAddr));
    } else {
        platform_.store(info.effAddr, state_.readInt(info.inst.rt));
    }
}

Cpu::Cpu(const Program &prog, MainMemory &mem, Platform &platform,
         MemController &memctrl,
         const CacheParams &icache_params, const CacheParams &dcache_params)
    : prog_(prog), mem_(mem), platform_(platform), memctrl_(memctrl),
      icache_(icache_params), dcache_(dcache_params),
      core_(prog, mem, platform)
{
}

void
Cpu::resetForTask()
{
    // Bank the finished instance's cycles so the activity counters
    // stay monotonic across tasks (the subclass resets its per-task
    // cycle counter after this call).
    activityCycleBase_ += cycles();
    core_.reset();
    retired_ = 0;
    halted_ = false;
    // No sync here: the subclass zeroes its per-task cycle counter
    // after this call, and the banked base already equals the
    // cumulative count. activity_.cycles refreshes on the first step.
}

void
Cpu::flushCachesAndPredictors()
{
    icache_.flush();
    dcache_.flush();
}

void
Cpu::dumpStats(std::ostream &os) const
{
    StatSet set;
    buildStats(set);
    set.dump(os);
}

void
Cpu::dumpStatsJson(std::ostream &os) const
{
    StatSet set;
    buildStats(set);
    set.dumpJson(os);
}

void
Cpu::buildStats(StatSet &set) const
{
    StatGroup &g = set.group(statsName());
    g.scalar("cycles", "simulated cycles this task").set(cycles());
    g.scalar("instructions", "instructions retired").set(retired_);
    g.formula("ipc",
              [this]() {
                  Cycles c = cycles();
                  return c ? static_cast<double>(retired_) /
                                 static_cast<double>(c)
                           : 0.0;
              },
              "retired instructions per cycle");
    g.scalar("icache_accesses").set(icache_.accesses());
    g.scalar("icache_misses").set(icache_.misses());
    g.scalar("dcache_accesses").set(dcache_.accesses());
    g.scalar("dcache_misses").set(dcache_.misses());
    g.formula("dcache_miss_rate", [this]() {
        return dcache_.accesses()
                   ? static_cast<double>(dcache_.misses()) /
                         static_cast<double>(dcache_.accesses())
                   : 0.0;
    });
    for (int u = 0; u < numUnits; ++u) {
        g.scalar(std::string("activity_") +
                 unitName(static_cast<Unit>(u)))
            .set(activity_.count(static_cast<Unit>(u)));
    }

    const BlockCacheStats bc = core_.blockCacheStats();
    StatGroup &b =
        set.group(std::string(statsName()) + "_block_cache");
    b.scalar("enabled", "1 when the translation cache is active")
        .set(bc.enabled ? 1 : 0);
    b.scalar("blocks_decoded", "basic blocks decoded (incl. re-decodes)")
        .set(bc.blocksDecoded);
    b.scalar("block_hits", "block entries served without decoding")
        .set(bc.blockHits);
    b.scalar("invalidations", "blocks invalidated by stores to code")
        .set(bc.invalidations);
    b.scalar("insts_decoded", "instruction records produced by decodes")
        .set(bc.instsDecoded);
    b.scalar("code_resyncs", "store-to-code resynchronization passes")
        .set(bc.codeResyncs);
    b.formula("avg_block_len",
              [this]() {
                  const BlockCacheStats s = core_.blockCacheStats();
                  return s.blocksDecoded
                             ? static_cast<double>(s.instsDecoded) /
                                   static_cast<double>(s.blocksDecoded)
                             : 0.0;
              },
              "average decoded block length, instructions");
}

} // namespace visa
