#include "cpu/cpu.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace visa
{

void
ExecCore::reset()
{
    state_ = ArchState{};
    state_.pc = prog_.entry;
    state_.writeInt(reg::sp, defaultStackTop);
}

void
ExecCore::badMmioAccess(Addr pc)
{
    fatal("MMIO access must use lw/sw (pc 0x%x)", pc);
}

void
ExecCore::performMmio(const ExecInfo &info)
{
    if (!info.isMmio)
        return;
    if (info.isLoad) {
        state_.writeInt(info.mmioDest, platform_.load(info.effAddr));
    } else {
        platform_.store(info.effAddr, state_.readInt(info.inst.rt));
    }
}

Cpu::Cpu(const Program &prog, MainMemory &mem, Platform &platform,
         MemController &memctrl,
         const CacheParams &icache_params, const CacheParams &dcache_params)
    : prog_(prog), mem_(mem), platform_(platform), memctrl_(memctrl),
      icache_(icache_params), dcache_(dcache_params),
      core_(prog, mem, platform)
{
}

void
Cpu::resetForTask()
{
    // Bank the finished instance's cycles so the activity counters
    // stay monotonic across tasks (the subclass resets its per-task
    // cycle counter after this call).
    activityCycleBase_ += cycles();
    core_.reset();
    retired_ = 0;
    halted_ = false;
    // No sync here: the subclass zeroes its per-task cycle counter
    // after this call, and the banked base already equals the
    // cumulative count. activity_.cycles refreshes on the first step.
}

void
Cpu::flushCachesAndPredictors()
{
    icache_.flush();
    dcache_.flush();
}

void
Cpu::dumpStats(std::ostream &os) const
{
    StatSet set;
    buildStats(set);
    set.dump(os);
}

void
Cpu::dumpStatsJson(std::ostream &os) const
{
    StatSet set;
    buildStats(set);
    set.dumpJson(os);
}

void
Cpu::buildStats(StatSet &set) const
{
    StatGroup &g = set.group(statsName());
    g.scalar("cycles", "simulated cycles this task").set(cycles());
    g.scalar("instructions", "instructions retired").set(retired_);
    g.formula("ipc",
              [this]() {
                  Cycles c = cycles();
                  return c ? static_cast<double>(retired_) /
                                 static_cast<double>(c)
                           : 0.0;
              },
              "retired instructions per cycle");
    g.scalar("icache_accesses").set(icache_.accesses());
    g.scalar("icache_misses").set(icache_.misses());
    g.scalar("dcache_accesses").set(dcache_.accesses());
    g.scalar("dcache_misses").set(dcache_.misses());
    g.formula("dcache_miss_rate", [this]() {
        return dcache_.accesses()
                   ? static_cast<double>(dcache_.misses()) /
                         static_cast<double>(dcache_.accesses())
                   : 0.0;
    });
    for (int u = 0; u < numUnits; ++u) {
        g.scalar(std::string("activity_") +
                 unitName(static_cast<Unit>(u)))
            .set(activity_.count(static_cast<Unit>(u)));
    }
}

} // namespace visa
