/**
 * @file
 * Common CPU machinery: architectural state, the shared functional
 * execution core, and the abstract processor interface implemented by
 * the simple-fixed pipeline and the complex pipeline.
 */

#ifndef VISA_CPU_CPU_HH
#define VISA_CPU_CPU_HH

#include <cstdint>
#include <ostream>

#include "cpu/activity.hh"
#include "isa/program.hh"
#include "isa/semantics.hh"
#include "mem/cache.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "sim/types.hh"

namespace visa
{

/** Architected register state. */
struct ArchState
{
    std::array<Word, numIntRegs> intRegs{};
    std::array<double, numFpRegs> fpRegs{};
    bool fcc = false;
    Addr pc = 0;

    Word
    readInt(int r) const
    {
        return r == 0 ? 0 : intRegs[static_cast<std::size_t>(r)];
    }
    void
    writeInt(int r, Word v)
    {
        if (r != 0)
            intRegs[static_cast<std::size_t>(r)] = v;
    }
};

/**
 * Observer of the architectural (program-order) execution stream.
 *
 * Both pipelines funnel every instruction through ExecCore::step in
 * program order — the in-order pipeline at commit, the complex
 * pipeline at dispatch — so an observer sees the exact retire-order
 * architectural history of either machine. The differential
 * verification harness (src/verify) records this stream on two rigs
 * and diffs them instruction by instruction.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;
    /** One instruction executed; @p post is the state *after* it. */
    virtual void onStep(const struct ExecInfo &info,
                        const struct ArchState &post) = 0;
};

/** Everything a pipeline needs to know about one executed instruction. */
struct ExecInfo
{
    Instruction inst;
    Addr pc = 0;
    Addr nextPc = 0;
    bool halted = false;

    bool isMem = false;
    bool isMmio = false;
    bool isLoad = false;
    Addr effAddr = 0;

    bool taken = false;         ///< control outcome (jumps always taken)

    /** For deferred MMIO loads: destination register to write later. */
    int mmioDest = -1;
};

/**
 * Functional (untimed) executor shared by both pipelines. The complex
 * pipeline executes instructions functionally at dispatch (the
 * SimpleScalar sim-outorder approach); the simple pipeline at commit.
 */
class ExecCore
{
  public:
    ExecCore(const Program &prog, MainMemory &mem, Platform &platform)
        : prog_(prog), mem_(mem), platform_(platform),
          text_(prog.text.data()),
          textBase_(prog.textBase),
          textBytes_(static_cast<Addr>(prog.text.size() * 4))
    {
    }

    /** Reset registers and set the PC to the program entry. */
    void reset();

    /**
     * Execute the instruction at the current PC and advance it.
     * Defined inline below: this is the single hottest function of both
     * pipeline simulators, and out-of-line it could never fold into
     * their per-instruction loops.
     *
     * @param defer_mmio when true, loads/stores to the MMIO window are
     *        *not* performed; the caller must invoke performMmio() once
     *        simulated time has advanced to the instruction's memory
     *        stage (keeps cycle-counter reads exact on the in-order
     *        pipeline).
     */
    ExecInfo step(bool defer_mmio);

    /** Report a non-word MMIO access at @p pc (panics). */
    [[noreturn]] static void badMmioAccess(Addr pc);

    /** Perform the deferred MMIO access of @p info. */
    void performMmio(const ExecInfo &info);

    /**
     * Install @p obs to watch every executed instruction (nullptr
     * detaches). Costs one predictable branch per step() when absent;
     * only the verification harness installs one.
     */
    void setObserver(ExecObserver *obs) { obs_ = obs; }
    ExecObserver *observer() const { return obs_; }

    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }
    const Program &program() const { return prog_; }

  private:
    /**
     * Branch-free instruction fetch: the common case is one bounds
     * check plus an indexed load off the cached text base. Off-text or
     * misaligned PCs take the cold path through Program::at, which
     * preserves the existing panic diagnostics.
     */
    const Instruction &
    fetch(Addr pc) const
    {
        const Addr off = pc - textBase_;    // wraps huge when pc < base
        if (off < textBytes_ && (off & 3u) == 0) [[likely]]
            return text_[off >> 2];
        return prog_.at(pc);
    }

    const Program &prog_;
    MainMemory &mem_;
    Platform &platform_;
    /** Cached view of prog_.text for the fetch fast path. */
    const Instruction *text_;
    Addr textBase_;
    Addr textBytes_;
    ArchState state_;
    ExecObserver *obs_ = nullptr;
};

inline ExecInfo
ExecCore::step(bool defer_mmio)
{
    ExecInfo info;
    info.pc = state_.pc;
    const Instruction &inst = fetch(state_.pc);
    info.inst = inst;
    info.nextPc = state_.pc + 4;

    switch (inst.cls()) {
      case InstrClass::IntAlu:
      case InstrClass::IntMult:
      case InstrClass::IntDiv:
        state_.writeInt(inst.rd,
                        evalIntAlu(inst, state_.readInt(inst.rs),
                                   state_.readInt(inst.rt)));
        break;

      case InstrClass::FpAlu:
      case InstrClass::FpMult:
      case InstrClass::FpDiv:
        switch (inst.op) {
          case Opcode::CVT_D_W:
            state_.fpRegs[inst.rd] = static_cast<double>(
                static_cast<std::int32_t>(state_.readInt(inst.rs)));
            break;
          case Opcode::CVT_W_D:
            state_.writeInt(inst.rd,
                            static_cast<Word>(static_cast<std::int32_t>(
                                state_.fpRegs[inst.rs])));
            break;
          case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
            state_.fcc = evalFpCmp(inst, state_.fpRegs[inst.rs],
                                   state_.fpRegs[inst.rt]);
            break;
          default:
            state_.fpRegs[inst.rd] = evalFpAlu(inst, state_.fpRegs[inst.rs],
                                               state_.fpRegs[inst.rt]);
        }
        break;

      case InstrClass::Load: {
        info.isMem = true;
        info.isLoad = true;
        info.effAddr = effectiveAddr(inst, state_.readInt(inst.rs));
        info.isMmio = mmio::contains(info.effAddr);
        if (info.isMmio) [[unlikely]] {
            if (inst.op != Opcode::LW)
                badMmioAccess(info.pc);
            if (defer_mmio)
                info.mmioDest = inst.rd;
            else
                state_.writeInt(inst.rd, platform_.load(info.effAddr));
        } else if (inst.op == Opcode::LDC1) {
            state_.fpRegs[inst.rd] = mem_.readDouble(info.effAddr);
        } else {
            Word raw = static_cast<Word>(
                mem_.read(info.effAddr, inst.memBytes()));
            state_.writeInt(inst.rd, extendLoad(inst.op, raw));
        }
        break;
      }

      case InstrClass::Store: {
        info.isMem = true;
        info.effAddr = effectiveAddr(inst, state_.readInt(inst.rs));
        info.isMmio = mmio::contains(info.effAddr);
        if (info.isMmio) [[unlikely]] {
            if (inst.op != Opcode::SW)
                badMmioAccess(info.pc);
            if (!defer_mmio)
                platform_.store(info.effAddr, state_.readInt(inst.rt));
            // deferred stores are performed by performMmio()
        } else if (inst.op == Opcode::SDC1) {
            mem_.writeDouble(info.effAddr, state_.fpRegs[inst.rt]);
        } else {
            mem_.write(info.effAddr, state_.readInt(inst.rt),
                       inst.memBytes());
        }
        break;
      }

      case InstrClass::CondBranch:
      case InstrClass::DirectJump:
      case InstrClass::IndirectJump: {
        ControlEval ev = evalControl(inst, info.pc, state_.readInt(inst.rs),
                                     state_.readInt(inst.rt), state_.fcc);
        info.taken = ev.taken;
        info.nextPc = ev.taken ? ev.target : info.pc + 4;
        if (inst.op == Opcode::JAL)
            state_.writeInt(reg::ra, info.pc + 4);
        else if (inst.op == Opcode::JALR)
            state_.writeInt(inst.rd, info.pc + 4);
        break;
      }

      case InstrClass::Nop:
        break;

      case InstrClass::Halt:
        info.halted = true;
        info.nextPc = info.pc;
        break;
    }

    state_.pc = info.nextPc;
    if (obs_) [[unlikely]]
        obs_->onStep(info, state_);
    return info;
}

/** Why a run() call returned. */
enum class StopReason
{
    Halted,             ///< the task executed HALT
    WatchdogExpired,    ///< missed-checkpoint exception (unmasked)
    CycleBudget,        ///< the caller's cycle budget was exhausted
};

/** Result of a run() call. */
struct RunResult
{
    StopReason reason = StopReason::Halted;
};

/** Result of a drainForPreemption() call. */
struct DrainResult
{
    Cycles cycles = 0;          ///< simulated cycles the drain took
    /** An unmasked watchdog expiry fired during the drain; the caller
     *  must take the missed-checkpoint recovery path before the task
     *  is suspended. */
    bool watchdogExpired = false;
};

inline constexpr Cycles noCycleLimit = ~static_cast<Cycles>(0);

/**
 * Abstract processor: a program plus caches, memory timing, platform
 * devices, and power-activity accounting. Concrete subclasses:
 * SimpleCpu (the explicitly-safe simple-fixed processor) and OooCpu
 * (the complex processor with its simple mode).
 */
class Cpu
{
  public:
    Cpu(const Program &prog, MainMemory &mem, Platform &platform,
        MemController &memctrl,
        const CacheParams &icache_params, const CacheParams &dcache_params);
    virtual ~Cpu() = default;

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /**
     * Reset architectural state and per-task cycle accounting for a new
     * task instance. Caches and predictors stay warm (the paper models
     * 200 consecutive executions of a periodic task).
     */
    virtual void resetForTask();

    /**
     * Run until HALT, an unmasked watchdog expiry, or the cycle budget.
     * Resumable: a subsequent call continues from the stop point.
     */
    virtual RunResult run(Cycles max_cycles = noCycleLimit) = 0;

    /** Invalidate caches and predictors (Fig. 4 induced mispredictions). */
    virtual void flushCachesAndPredictors();

    /**
     * Bring the pipeline to a preemption point: complete all in-flight
     * work so another task's context can be switched in. Instructions
     * past a run() stop are already functionally executed, so they
     * must retire before the core is handed over — the complex
     * pipeline runs its back-end stages with fetch halted until the
     * ROB and fetch queue are empty; the in-order pipelines stop
     * between instructions and have nothing to drain.
     */
    virtual DrainResult drainForPreemption() { return {}; }

    /**
     * Advance simulated time by @p n cycles with the pipeline idle
     * (models reconfiguration / frequency-switch overhead).
     */
    virtual void advanceIdle(Cycles n) = 0;

    /** Change the core clock; affects miss penalties in cycles. */
    virtual void
    setFrequency(MHz f)
    {
        freq_ = f;
        platform_.setCurrentFreq(f);
    }
    MHz frequency() const { return freq_; }

    /** Cycles elapsed in the current task instance. */
    virtual Cycles cycles() const = 0;

    /** Instructions retired in the current task instance. */
    std::uint64_t retired() const { return retired_; }

    bool halted() const { return halted_; }

    PowerActivity &activity() { return activity_; }
    const PowerActivity &activity() const { return activity_; }

    ArchState &arch() { return core_.state(); }
    ExecCore &execCore() { return core_; }
    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    Platform &platform() { return platform_; }

    /**
     * Contribute statistics groups to @p set: cycles, instructions,
     * IPC, cache behavior, and per-structure activity counts under
     * statsName(); subclasses add their own stats on top. The groups
     * hold live formulas capturing `this`, so the set must be dumped
     * while the CPU is alive.
     */
    virtual void buildStats(StatSet &set) const;

    /**
     * Dump simulation statistics (gem5-style "name value # desc"
     * lines), via buildStats().
     */
    void dumpStats(std::ostream &os) const;

    /** Dump the same statistics as a hierarchical JSON document. */
    void dumpStatsJson(std::ostream &os) const;

  protected:
    /** Statistics group name ("simple", "complex"). */
    virtual const char *statsName() const = 0;

  protected:
    /**
     * Refresh activity_.cycles as a *cumulative* count across task
     * instances (access counters accumulate, so the cycle counter must
     * too — the power meter differences snapshots across tasks).
     */
    void
    syncActivityCycles()
    {
        activity_.cycles = activityCycleBase_ + cycles();
    }

    /** Uncontended miss penalty at the current frequency. */
    Cycles missPenalty() const { return memctrl_.stallCycles(freq_); }

    const Program &prog_;
    MainMemory &mem_;
    Platform &platform_;
    MemController &memctrl_;
    Cache icache_;
    Cache dcache_;
    ExecCore core_;
    MHz freq_ = 1000;
    std::uint64_t retired_ = 0;
    bool halted_ = false;
    PowerActivity activity_;
    /** Cycles of completed task instances (see syncActivityCycles). */
    Cycles activityCycleBase_ = 0;
};

} // namespace visa

#endif // VISA_CPU_CPU_HH
