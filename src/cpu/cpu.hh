/**
 * @file
 * Common CPU machinery: architectural state, the shared functional
 * execution core, and the abstract processor interface implemented by
 * the simple-fixed pipeline and the complex pipeline.
 */

#ifndef VISA_CPU_CPU_HH
#define VISA_CPU_CPU_HH

#include <cstdint>
#include <ostream>

#include "cpu/activity.hh"
#include "isa/program.hh"
#include "isa/semantics.hh"
#include "mem/cache.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "sim/types.hh"

namespace visa
{

/** Architected register state. */
struct ArchState
{
    std::array<Word, numIntRegs> intRegs{};
    std::array<double, numFpRegs> fpRegs{};
    bool fcc = false;
    Addr pc = 0;

    Word
    readInt(int r) const
    {
        return r == 0 ? 0 : intRegs[static_cast<std::size_t>(r)];
    }
    void
    writeInt(int r, Word v)
    {
        if (r != 0)
            intRegs[static_cast<std::size_t>(r)] = v;
    }
};

/** Everything a pipeline needs to know about one executed instruction. */
struct ExecInfo
{
    Instruction inst;
    Addr pc = 0;
    Addr nextPc = 0;
    bool halted = false;

    bool isMem = false;
    bool isMmio = false;
    bool isLoad = false;
    Addr effAddr = 0;

    bool taken = false;         ///< control outcome (jumps always taken)

    /** For deferred MMIO loads: destination register to write later. */
    int mmioDest = -1;
};

/**
 * Functional (untimed) executor shared by both pipelines. The complex
 * pipeline executes instructions functionally at dispatch (the
 * SimpleScalar sim-outorder approach); the simple pipeline at commit.
 */
class ExecCore
{
  public:
    ExecCore(const Program &prog, MainMemory &mem, Platform &platform)
        : prog_(prog), mem_(mem), platform_(platform)
    {
    }

    /** Reset registers and set the PC to the program entry. */
    void reset();

    /**
     * Execute the instruction at the current PC and advance it.
     *
     * @param defer_mmio when true, loads/stores to the MMIO window are
     *        *not* performed; the caller must invoke performMmio() once
     *        simulated time has advanced to the instruction's memory
     *        stage (keeps cycle-counter reads exact on the in-order
     *        pipeline).
     */
    ExecInfo step(bool defer_mmio);

    /** Perform the deferred MMIO access of @p info. */
    void performMmio(const ExecInfo &info);

    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }
    const Program &program() const { return prog_; }

  private:
    const Program &prog_;
    MainMemory &mem_;
    Platform &platform_;
    ArchState state_;
};

/** Why a run() call returned. */
enum class StopReason
{
    Halted,             ///< the task executed HALT
    WatchdogExpired,    ///< missed-checkpoint exception (unmasked)
    CycleBudget,        ///< the caller's cycle budget was exhausted
};

/** Result of a run() call. */
struct RunResult
{
    StopReason reason = StopReason::Halted;
};

inline constexpr Cycles noCycleLimit = ~static_cast<Cycles>(0);

/**
 * Abstract processor: a program plus caches, memory timing, platform
 * devices, and power-activity accounting. Concrete subclasses:
 * SimpleCpu (the explicitly-safe simple-fixed processor) and OooCpu
 * (the complex processor with its simple mode).
 */
class Cpu
{
  public:
    Cpu(const Program &prog, MainMemory &mem, Platform &platform,
        MemController &memctrl,
        const CacheParams &icache_params, const CacheParams &dcache_params);
    virtual ~Cpu() = default;

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /**
     * Reset architectural state and per-task cycle accounting for a new
     * task instance. Caches and predictors stay warm (the paper models
     * 200 consecutive executions of a periodic task).
     */
    virtual void resetForTask();

    /**
     * Run until HALT, an unmasked watchdog expiry, or the cycle budget.
     * Resumable: a subsequent call continues from the stop point.
     */
    virtual RunResult run(Cycles max_cycles = noCycleLimit) = 0;

    /** Invalidate caches and predictors (Fig. 4 induced mispredictions). */
    virtual void flushCachesAndPredictors();

    /**
     * Advance simulated time by @p n cycles with the pipeline idle
     * (models reconfiguration / frequency-switch overhead).
     */
    virtual void advanceIdle(Cycles n) = 0;

    /** Change the core clock; affects miss penalties in cycles. */
    virtual void
    setFrequency(MHz f)
    {
        freq_ = f;
        platform_.setCurrentFreq(f);
    }
    MHz frequency() const { return freq_; }

    /** Cycles elapsed in the current task instance. */
    virtual Cycles cycles() const = 0;

    /** Instructions retired in the current task instance. */
    std::uint64_t retired() const { return retired_; }

    bool halted() const { return halted_; }

    PowerActivity &activity() { return activity_; }
    const PowerActivity &activity() const { return activity_; }

    ArchState &arch() { return core_.state(); }
    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    Platform &platform() { return platform_; }

    /**
     * Dump simulation statistics (gem5-style "name value # desc"
     * lines): cycles, instructions, IPC, cache behavior, and
     * per-structure activity counts.
     */
    virtual void dumpStats(std::ostream &os) const;

  protected:
    /** Statistics group name ("simple", "complex"). */
    virtual const char *statsName() const = 0;

  protected:
    /**
     * Refresh activity_.cycles as a *cumulative* count across task
     * instances (access counters accumulate, so the cycle counter must
     * too — the power meter differences snapshots across tasks).
     */
    void
    syncActivityCycles()
    {
        activity_.cycles = activityCycleBase_ + cycles();
    }

    /** Uncontended miss penalty at the current frequency. */
    Cycles missPenalty() const { return memctrl_.stallCycles(freq_); }

    const Program &prog_;
    MainMemory &mem_;
    Platform &platform_;
    MemController &memctrl_;
    Cache icache_;
    Cache dcache_;
    ExecCore core_;
    MHz freq_ = 1000;
    std::uint64_t retired_ = 0;
    bool halted_ = false;
    PowerActivity activity_;
    /** Cycles of completed task instances (see syncActivityCycles). */
    Cycles activityCycleBase_ = 0;
};

} // namespace visa

#endif // VISA_CPU_CPU_HH
