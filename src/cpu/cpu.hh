/**
 * @file
 * Common CPU machinery: architectural state, the shared functional
 * execution core, and the abstract processor interface implemented by
 * the simple-fixed pipeline and the complex pipeline.
 */

#ifndef VISA_CPU_CPU_HH
#define VISA_CPU_CPU_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "cpu/activity.hh"
#include "isa/predecode.hh"
#include "isa/program.hh"
#include "isa/semantics.hh"
#include "mem/cache.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "sim/types.hh"

namespace visa
{

/** Architected register state. */
struct ArchState
{
    std::array<Word, numIntRegs> intRegs{};
    std::array<double, numFpRegs> fpRegs{};
    bool fcc = false;
    Addr pc = 0;

    Word
    readInt(int r) const
    {
        return r == 0 ? 0 : intRegs[static_cast<std::size_t>(r)];
    }
    void
    writeInt(int r, Word v)
    {
        if (r != 0)
            intRegs[static_cast<std::size_t>(r)] = v;
    }
};

/**
 * Observer of the architectural (program-order) execution stream.
 *
 * Both pipelines funnel every instruction through ExecCore::step in
 * program order — the in-order pipeline at commit, the complex
 * pipeline at dispatch — so an observer sees the exact retire-order
 * architectural history of either machine. The differential
 * verification harness (src/verify) records this stream on two rigs
 * and diffs them instruction by instruction.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;
    /** One instruction executed; @p post is the state *after* it. */
    virtual void onStep(const struct ExecInfo &info,
                        const struct ArchState &post) = 0;
};

/** Everything a pipeline needs to know about one executed instruction. */
struct ExecInfo
{
    Instruction inst;
    Addr pc = 0;
    Addr nextPc = 0;
    bool halted = false;

    bool isMem = false;
    bool isMmio = false;
    bool isLoad = false;
    Addr effAddr = 0;

    bool taken = false;         ///< control outcome (jumps always taken)

    /** For deferred MMIO loads: destination register to write later. */
    int mmioDest = -1;
};

/** Live counters of one ExecCore's basic-block translation cache. */
struct BlockCacheStats
{
    bool enabled = false;
    std::uint64_t blocksDecoded = 0;    ///< decode + re-decode events
    std::uint64_t blockHits = 0;        ///< entries served without decoding
    std::uint64_t invalidations = 0;    ///< blocks killed by code writes
    std::uint64_t instsDecoded = 0;     ///< records produced by decodes
    std::uint64_t codeResyncs = 0;      ///< store-to-code resync passes
};

/**
 * Functional (untimed) executor shared by both pipelines. The complex
 * pipeline executes instructions functionally at dispatch (the
 * SimpleScalar sim-outorder approach); the simple pipeline at commit.
 *
 * Execution runs through a basic-block translation cache by default:
 * on first entry to a PC the straight-line run up to the next control
 * transfer is decoded into pre-resolved records (isa/predecode.hh) and
 * subsequent steps dispatch straight off the record stream — one dense
 * opcode switch per instruction with no fetch bounds check, class
 * table load, or nested semantic dispatch. Stores into the text range
 * invalidate precisely: MainMemory keeps per-code-page generation
 * counters which are checked on every block entry, and a store from
 * the running program itself additionally ends the current block so
 * the modification is visible to the very next instruction — the same
 * instruction-granular semantics the uncached path implements with its
 * per-step generation probe. setBlockCacheEnabled(false) (or the
 * tools' --no-block-cache flag, which flips the process default)
 * selects the uncached path for differential runs.
 */
class ExecCore
{
  public:
    ExecCore(const Program &prog, MainMemory &mem, Platform &platform)
        : prog_(prog), mem_(mem), platform_(platform),
          textCopy_(prog.text), wordsCopy_(prog.words),
          text_(textCopy_.data()),
          textBase_(prog.textBase),
          textBytes_(static_cast<Addr>(prog.text.size() * 4)),
          cacheOn_(defaultBlockCacheOn_),
          codeWriteSnap_(mem.codeWriteCount())
    {
        blocks_.reset(textCopy_.size());
        const Addr page = MainMemory::pageBytes();
        if (textBytes_) {
            const Addr first = textBase_ / page;
            const Addr last = (textBase_ + textBytes_ - 1) / page;
            pageGenSnap_.resize(last - first + 1);
            for (Addr k = 0; k <= last - first; ++k)
                pageGenSnap_[k] = mem.codePageGen((first + k) * page);
        }
    }

    /** Reset registers and set the PC to the program entry. */
    void reset();

    /**
     * Execute the instruction at the current PC and advance it.
     * Defined inline below: this is the single hottest function of both
     * pipeline simulators, and out-of-line it could never fold into
     * their per-instruction loops.
     *
     * @param defer_mmio when true, loads/stores to the MMIO window are
     *        *not* performed; the caller must invoke performMmio() once
     *        simulated time has advanced to the instruction's memory
     *        stage (keeps cycle-counter reads exact on the in-order
     *        pipeline).
     */
    __attribute__((always_inline)) ExecInfo step(bool defer_mmio);

    /** Result of a runFunctional() call. */
    struct FuncRunResult
    {
        std::uint64_t insts = 0;    ///< instructions executed
        bool halted = false;        ///< stopped on HALT (vs budget)
    };

    /**
     * Execute up to @p max_insts instructions purely functionally
     * (immediate MMIO, no per-instruction ExecInfo) and stop early on
     * HALT. This is the block-granular fast path of the translation
     * cache: whole blocks run in a tight register-resident loop, so the
     * per-instruction bookkeeping step() must do for the timing
     * pipelines (ExecInfo assembly, cursor write-back, PC publication)
     * happens once per block instead of once per instruction. Falls
     * back to step() when the cache is off or an observer is attached
     * (observers are per-instruction by contract). Architecturally
     * identical to calling step(false) in a loop.
     */
    FuncRunResult runFunctional(std::uint64_t max_insts);

    /** Report a non-word MMIO access at @p pc (panics). */
    [[noreturn]] static void badMmioAccess(Addr pc);

    /** Perform the deferred MMIO access of @p info. */
    void performMmio(const ExecInfo &info);

    /**
     * Install @p obs to watch every executed instruction (nullptr
     * detaches). Costs one predictable branch per step() when absent;
     * only the verification harness installs one.
     */
    void setObserver(ExecObserver *obs) { obs_ = obs; }
    ExecObserver *observer() const { return obs_; }

    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }
    const Program &program() const { return prog_; }

    /**
     * Enable or disable the basic-block translation cache for this
     * core. Both paths are architecturally identical for program-driven
     * execution (including store-to-code); disabling exists for
     * differential cache-on/off runs and as an escape hatch.
     */
    void
    setBlockCacheEnabled(bool on)
    {
        cacheOn_ = on;
        leaveBlock();
    }
    bool blockCacheEnabled() const { return cacheOn_; }

    /**
     * Process-wide default for newly constructed cores (the
     * --no-block-cache tool flag). Set before any rigs are built;
     * existing cores are unaffected.
     */
    static void setBlockCacheDefault(bool on) { defaultBlockCacheOn_ = on; }
    static bool blockCacheDefault() { return defaultBlockCacheOn_; }

    /** Live translation-cache counters (see BlockCacheStats). */
    BlockCacheStats
    blockCacheStats() const
    {
        BlockCacheStats s;
        s.enabled = cacheOn_;
        s.blocksDecoded = blocks_.blocksDecoded();
        s.blockHits = blocks_.blockHits() + chainHits_;
        s.invalidations = blocks_.invalidations();
        s.instsDecoded = blocks_.instsDecoded();
        s.codeResyncs = codeResyncs_;
        return s;
    }

    /**
     * The decoded block map (read-only). The WCET analyzer's CFG
     * construction shares the same straight-line scanner
     * (straightLineLength in isa/predecode.hh), so the blocks here
     * carve the text identically to the analysis blocks.
     */
    const BlockMap &blockMap() const { return blocks_; }

  private:
    /**
     * Branch-free instruction fetch: the common case is one bounds
     * check plus an indexed load off the cached text base. Off-text or
     * misaligned PCs take the cold path through Program::at, which
     * preserves the existing panic diagnostics.
     */
    const Instruction &
    fetch(Addr pc) const
    {
        const Addr off = pc - textBase_;    // wraps huge when pc < base
        if (off < textBytes_ && (off & 3u) == 0) [[likely]]
            return text_[off >> 2];
        return prog_.at(pc);
    }

    /** Drop the current block context (forces a refill). */
    void
    leaveBlock()
    {
        cur_ = nullptr;
        curEnd_ = nullptr;
        curBlock_ = nullptr;
    }

    /** True when a @p bytes-wide store at @p ea overlaps the text. */
    bool
    touchesText(Addr ea, Addr bytes) const
    {
        return ea + bytes > textBase_ && ea - textBase_ < textBytes_;
    }

    /** Uncached step: fetch/decode-dispatch every instruction. */
    ExecInfo stepUncached(bool defer_mmio);
    /**
     * Execute the next record of the current block. Force-inlined into
     * step() (and step() into its callers): the dispatch switch must
     * merge into the caller's loop so the ExecInfo never round-trips
     * through a hidden sret buffer — at -O2 the inliner judges the
     * switch too big and leaves ~40% of the step cost in call glue.
     */
    __attribute__((always_inline)) ExecInfo stepCached(bool defer_mmio);
    /** Enter the block at the current PC (chain, map, or decode). */
    void refill();
    /**
     * Re-read changed code words from memory, re-decode them, and
     * invalidate overlapped blocks (store-to-code support).
     */
    void resyncCode();
    /** decode() @p w, mapping undecodable words to a trapping record. */
    static Instruction decodeOrInvalid(Word w, Addr pc);

    const Program &prog_;
    MainMemory &mem_;
    Platform &platform_;
    /**
     * Mutable copies of the program image: execution (cached and
     * uncached) reads these, and resyncCode() re-decodes words that
     * stores into the text range changed, making self-modifying code
     * behave identically on both paths.
     */
    std::vector<Instruction> textCopy_;
    std::vector<Word> wordsCopy_;
    /** Cached view of textCopy_ for the fetch fast path. */
    const Instruction *text_;
    Addr textBase_;
    Addr textBytes_;
    ArchState state_;
    ExecObserver *obs_ = nullptr;

    /** The translation cache and the execution cursor into it. */
    BlockMap blocks_;
    const PredecodedInst *cur_ = nullptr;
    const PredecodedInst *curEnd_ = nullptr;
    CodeBlock *curBlock_ = nullptr;
    /** PC of the record at cur_; mismatch forces a refill. */
    Addr cachePc_ = 0;
    bool cacheOn_;
    /** Snapshot of MainMemory::codeWriteCount at the last resync. */
    std::uint64_t codeWriteSnap_;
    /** Per-text-page generation snapshots, parallel to the mem's. */
    std::vector<std::uint64_t> pageGenSnap_;
    std::uint64_t chainHits_ = 0;
    std::uint64_t codeResyncs_ = 0;

    static inline bool defaultBlockCacheOn_ = true;
};

inline ExecInfo
ExecCore::step(bool defer_mmio)
{
    if (!cacheOn_) [[unlikely]]
        return stepUncached(defer_mmio);
    if (cur_ == curEnd_ || state_.pc != cachePc_) [[unlikely]]
        refill();
    return stepCached(defer_mmio);
}

inline ExecInfo
ExecCore::stepUncached(bool defer_mmio)
{
    // The uncached path picks up store-to-code before the *next*
    // instruction via this per-step generation probe; the cached path
    // reaches the same point by ending the current block on a store
    // into text and re-checking on block entry.
    if (mem_.codeWriteCount() != codeWriteSnap_) [[unlikely]]
        resyncCode();
    ExecInfo info;
    info.pc = state_.pc;
    const Instruction &inst = fetch(state_.pc);
    info.inst = inst;
    info.nextPc = state_.pc + 4;

    switch (inst.cls()) {
      case InstrClass::IntAlu:
      case InstrClass::IntMult:
      case InstrClass::IntDiv:
        state_.writeInt(inst.rd,
                        evalIntAlu(inst, state_.readInt(inst.rs),
                                   state_.readInt(inst.rt)));
        break;

      case InstrClass::FpAlu:
      case InstrClass::FpMult:
      case InstrClass::FpDiv:
        switch (inst.op) {
          case Opcode::CVT_D_W:
            state_.fpRegs[inst.rd] = static_cast<double>(
                static_cast<std::int32_t>(state_.readInt(inst.rs)));
            break;
          case Opcode::CVT_W_D:
            state_.writeInt(inst.rd,
                            static_cast<Word>(static_cast<std::int32_t>(
                                state_.fpRegs[inst.rs])));
            break;
          case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
            state_.fcc = evalFpCmp(inst, state_.fpRegs[inst.rs],
                                   state_.fpRegs[inst.rt]);
            break;
          default:
            state_.fpRegs[inst.rd] = evalFpAlu(inst, state_.fpRegs[inst.rs],
                                               state_.fpRegs[inst.rt]);
        }
        break;

      case InstrClass::Load: {
        info.isMem = true;
        info.isLoad = true;
        info.effAddr = effectiveAddr(inst, state_.readInt(inst.rs));
        info.isMmio = mmio::contains(info.effAddr);
        if (info.isMmio) [[unlikely]] {
            if (inst.op != Opcode::LW)
                badMmioAccess(info.pc);
            if (defer_mmio)
                info.mmioDest = inst.rd;
            else
                state_.writeInt(inst.rd, platform_.load(info.effAddr));
        } else if (inst.op == Opcode::LDC1) {
            state_.fpRegs[inst.rd] = mem_.readDouble(info.effAddr);
        } else {
            Word raw = static_cast<Word>(
                mem_.read(info.effAddr, inst.memBytes()));
            state_.writeInt(inst.rd, extendLoad(inst.op, raw));
        }
        break;
      }

      case InstrClass::Store: {
        info.isMem = true;
        info.effAddr = effectiveAddr(inst, state_.readInt(inst.rs));
        info.isMmio = mmio::contains(info.effAddr);
        if (info.isMmio) [[unlikely]] {
            if (inst.op != Opcode::SW)
                badMmioAccess(info.pc);
            if (!defer_mmio)
                platform_.store(info.effAddr, state_.readInt(inst.rt));
            // deferred stores are performed by performMmio()
        } else if (inst.op == Opcode::SDC1) {
            mem_.writeDouble(info.effAddr, state_.fpRegs[inst.rt]);
        } else {
            mem_.write(info.effAddr, state_.readInt(inst.rt),
                       inst.memBytes());
        }
        break;
      }

      case InstrClass::CondBranch:
      case InstrClass::DirectJump:
      case InstrClass::IndirectJump: {
        ControlEval ev = evalControl(inst, info.pc, state_.readInt(inst.rs),
                                     state_.readInt(inst.rt), state_.fcc);
        info.taken = ev.taken;
        info.nextPc = ev.taken ? ev.target : info.pc + 4;
        if (inst.op == Opcode::JAL)
            state_.writeInt(reg::ra, info.pc + 4);
        else if (inst.op == Opcode::JALR)
            state_.writeInt(inst.rd, info.pc + 4);
        break;
      }

      case InstrClass::Nop:
        break;

      case InstrClass::Halt:
        info.halted = true;
        info.nextPc = info.pc;
        break;
    }

    state_.pc = info.nextPc;
    if (obs_) [[unlikely]]
        obs_->onStep(info, state_);
    return info;
}

/**
 * The translation-cache fast path: one pre-resolved record per
 * instruction, dispatched through a single dense opcode switch whose
 * cases fuse the class dispatch, semantic evaluation, load extension,
 * and effective-address calculation the uncached path performs via
 * nested switches and table loads. Must remain architecturally
 * identical to stepUncached for every opcode — the differential fuzz
 * tiers run both paths against each other.
 */
inline ExecInfo
ExecCore::stepCached(bool defer_mmio)
{
    const PredecodedInst &pi = *cur_++;
    const Instruction &inst = pi.inst;
    const Addr pc = cachePc_;
    ExecInfo info;
    info.pc = pc;
    info.inst = inst;
    Addr next = pc + 4;

    switch (inst.op) {
      case Opcode::ADD:
        state_.writeInt(inst.rd, state_.readInt(inst.rs) +
                                     state_.readInt(inst.rt));
        break;
      case Opcode::SUB:
        state_.writeInt(inst.rd, state_.readInt(inst.rs) -
                                     state_.readInt(inst.rt));
        break;
      case Opcode::MUL:
        state_.writeInt(
            inst.rd,
            static_cast<Word>(
                static_cast<std::int64_t>(
                    static_cast<std::int32_t>(state_.readInt(inst.rs))) *
                static_cast<std::int32_t>(state_.readInt(inst.rt))));
        break;
      case Opcode::DIV: {
        const auto s = static_cast<std::int32_t>(state_.readInt(inst.rs));
        const auto t = static_cast<std::int32_t>(state_.readInt(inst.rt));
        Word r = 0;
        if (t == 0)
            r = 0;
        else if (s == INT32_MIN && t == -1)
            r = static_cast<Word>(INT32_MIN);
        else
            r = static_cast<Word>(s / t);
        state_.writeInt(inst.rd, r);
        break;
      }
      case Opcode::REM: {
        const auto s = static_cast<std::int32_t>(state_.readInt(inst.rs));
        const auto t = static_cast<std::int32_t>(state_.readInt(inst.rt));
        const Word r = (t == 0 || (s == INT32_MIN && t == -1))
                           ? 0
                           : static_cast<Word>(s % t);
        state_.writeInt(inst.rd, r);
        break;
      }
      case Opcode::AND:
        state_.writeInt(inst.rd, state_.readInt(inst.rs) &
                                     state_.readInt(inst.rt));
        break;
      case Opcode::OR:
        state_.writeInt(inst.rd, state_.readInt(inst.rs) |
                                     state_.readInt(inst.rt));
        break;
      case Opcode::XOR:
        state_.writeInt(inst.rd, state_.readInt(inst.rs) ^
                                     state_.readInt(inst.rt));
        break;
      case Opcode::NOR:
        state_.writeInt(inst.rd, ~(state_.readInt(inst.rs) |
                                   state_.readInt(inst.rt)));
        break;
      case Opcode::SLT:
        state_.writeInt(
            inst.rd,
            static_cast<std::int32_t>(state_.readInt(inst.rs)) <
                    static_cast<std::int32_t>(state_.readInt(inst.rt))
                ? 1
                : 0);
        break;
      case Opcode::SLTU:
        state_.writeInt(inst.rd, state_.readInt(inst.rs) <
                                         state_.readInt(inst.rt)
                                     ? 1
                                     : 0);
        break;
      case Opcode::SLLV:
        state_.writeInt(inst.rd, state_.readInt(inst.rs)
                                     << (state_.readInt(inst.rt) & 31));
        break;
      case Opcode::SRLV:
        state_.writeInt(inst.rd, state_.readInt(inst.rs) >>
                                     (state_.readInt(inst.rt) & 31));
        break;
      case Opcode::SRAV:
        state_.writeInt(
            inst.rd,
            static_cast<Word>(
                static_cast<std::int32_t>(state_.readInt(inst.rs)) >>
                (state_.readInt(inst.rt) & 31)));
        break;
      case Opcode::SLL:
        state_.writeInt(inst.rd,
                        state_.readInt(inst.rs) << (inst.imm & 31));
        break;
      case Opcode::SRL:
        state_.writeInt(inst.rd,
                        state_.readInt(inst.rs) >> (inst.imm & 31));
        break;
      case Opcode::SRA:
        state_.writeInt(
            inst.rd,
            static_cast<Word>(
                static_cast<std::int32_t>(state_.readInt(inst.rs)) >>
                (inst.imm & 31)));
        break;
      case Opcode::ADDI:
        state_.writeInt(inst.rd, state_.readInt(inst.rs) +
                                     static_cast<Word>(inst.imm));
        break;
      case Opcode::ANDI:
        state_.writeInt(inst.rd,
                        state_.readInt(inst.rs) &
                            (static_cast<Word>(inst.imm) & 0xFFFF));
        break;
      case Opcode::ORI:
        state_.writeInt(inst.rd,
                        state_.readInt(inst.rs) |
                            (static_cast<Word>(inst.imm) & 0xFFFF));
        break;
      case Opcode::XORI:
        state_.writeInt(inst.rd,
                        state_.readInt(inst.rs) ^
                            (static_cast<Word>(inst.imm) & 0xFFFF));
        break;
      case Opcode::SLTI:
        state_.writeInt(
            inst.rd,
            static_cast<std::int32_t>(state_.readInt(inst.rs)) < inst.imm
                ? 1
                : 0);
        break;
      case Opcode::SLTIU:
        state_.writeInt(inst.rd,
                        state_.readInt(inst.rs) <
                                static_cast<Word>(inst.imm)
                            ? 1
                            : 0);
        break;
      case Opcode::LUI:
        state_.writeInt(inst.rd, static_cast<Word>(inst.imm) << 16);
        break;

      case Opcode::LB: case Opcode::LBU:
      case Opcode::LH: case Opcode::LHU: {
        info.isMem = true;
        info.isLoad = true;
        const Addr ea = state_.readInt(inst.rs) +
                        static_cast<Word>(inst.imm);
        info.effAddr = ea;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(pc);
        const Word raw =
            static_cast<Word>(mem_.read(ea, pi.memBytes));
        Word v;
        switch (inst.op) {
          case Opcode::LB:
            v = static_cast<Word>(static_cast<std::int32_t>(
                static_cast<std::int8_t>(raw & 0xFF)));
            break;
          case Opcode::LBU:
            v = raw & 0xFF;
            break;
          case Opcode::LH:
            v = static_cast<Word>(static_cast<std::int32_t>(
                static_cast<std::int16_t>(raw & 0xFFFF)));
            break;
          default:
            v = raw & 0xFFFF;
        }
        state_.writeInt(inst.rd, v);
        break;
      }
      case Opcode::LW: {
        info.isMem = true;
        info.isLoad = true;
        const Addr ea = state_.readInt(inst.rs) +
                        static_cast<Word>(inst.imm);
        info.effAddr = ea;
        if (mmio::contains(ea)) [[unlikely]] {
            info.isMmio = true;
            if (defer_mmio)
                info.mmioDest = inst.rd;
            else
                state_.writeInt(inst.rd, platform_.load(ea));
        } else {
            state_.writeInt(inst.rd,
                            static_cast<Word>(mem_.read(ea, 4)));
        }
        break;
      }
      case Opcode::LDC1: {
        info.isMem = true;
        info.isLoad = true;
        const Addr ea = state_.readInt(inst.rs) +
                        static_cast<Word>(inst.imm);
        info.effAddr = ea;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(pc);
        state_.fpRegs[inst.rd] = mem_.readDouble(ea);
        break;
      }

      case Opcode::SB: case Opcode::SH: {
        info.isMem = true;
        const Addr ea = state_.readInt(inst.rs) +
                        static_cast<Word>(inst.imm);
        info.effAddr = ea;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(pc);
        mem_.write(ea, state_.readInt(inst.rt), pi.memBytes);
        if (touchesText(ea, pi.memBytes)) [[unlikely]]
            cur_ = curEnd_;    // end the block: re-enter post-store
        break;
      }
      case Opcode::SW: {
        info.isMem = true;
        const Addr ea = state_.readInt(inst.rs) +
                        static_cast<Word>(inst.imm);
        info.effAddr = ea;
        if (mmio::contains(ea)) [[unlikely]] {
            info.isMmio = true;
            if (!defer_mmio)
                platform_.store(ea, state_.readInt(inst.rt));
            // deferred stores are performed by performMmio()
        } else {
            mem_.write(ea, state_.readInt(inst.rt), 4);
            if (touchesText(ea, 4)) [[unlikely]]
                cur_ = curEnd_;
        }
        break;
      }
      case Opcode::SDC1: {
        info.isMem = true;
        const Addr ea = state_.readInt(inst.rs) +
                        static_cast<Word>(inst.imm);
        info.effAddr = ea;
        if (mmio::contains(ea)) [[unlikely]]
            badMmioAccess(pc);
        mem_.writeDouble(ea, state_.fpRegs[inst.rt]);
        if (touchesText(ea, 8)) [[unlikely]]
            cur_ = curEnd_;
        break;
      }

      case Opcode::BEQ:
        info.taken = state_.readInt(inst.rs) == state_.readInt(inst.rt);
        next = info.taken ? static_cast<Addr>(inst.imm) : next;
        break;
      case Opcode::BNE:
        info.taken = state_.readInt(inst.rs) != state_.readInt(inst.rt);
        next = info.taken ? static_cast<Addr>(inst.imm) : next;
        break;
      case Opcode::BLEZ:
        info.taken =
            static_cast<std::int32_t>(state_.readInt(inst.rs)) <= 0;
        next = info.taken ? static_cast<Addr>(inst.imm) : next;
        break;
      case Opcode::BGTZ:
        info.taken =
            static_cast<std::int32_t>(state_.readInt(inst.rs)) > 0;
        next = info.taken ? static_cast<Addr>(inst.imm) : next;
        break;
      case Opcode::BLTZ:
        info.taken =
            static_cast<std::int32_t>(state_.readInt(inst.rs)) < 0;
        next = info.taken ? static_cast<Addr>(inst.imm) : next;
        break;
      case Opcode::BGEZ:
        info.taken =
            static_cast<std::int32_t>(state_.readInt(inst.rs)) >= 0;
        next = info.taken ? static_cast<Addr>(inst.imm) : next;
        break;
      case Opcode::BC1T:
        info.taken = state_.fcc;
        next = info.taken ? static_cast<Addr>(inst.imm) : next;
        break;
      case Opcode::BC1F:
        info.taken = !state_.fcc;
        next = info.taken ? static_cast<Addr>(inst.imm) : next;
        break;
      case Opcode::J:
        info.taken = true;
        next = static_cast<Addr>(inst.imm);
        break;
      case Opcode::JAL:
        info.taken = true;
        next = static_cast<Addr>(inst.imm);
        state_.writeInt(reg::ra, pc + 4);
        break;
      case Opcode::JR:
        info.taken = true;
        next = state_.readInt(inst.rs);
        break;
      case Opcode::JALR:
        info.taken = true;
        next = state_.readInt(inst.rs);    // read rs before a write to rd
        state_.writeInt(inst.rd, pc + 4);
        break;

      case Opcode::ADD_D:
        state_.fpRegs[inst.rd] =
            state_.fpRegs[inst.rs] + state_.fpRegs[inst.rt];
        break;
      case Opcode::SUB_D:
        state_.fpRegs[inst.rd] =
            state_.fpRegs[inst.rs] - state_.fpRegs[inst.rt];
        break;
      case Opcode::MUL_D:
        state_.fpRegs[inst.rd] =
            state_.fpRegs[inst.rs] * state_.fpRegs[inst.rt];
        break;
      case Opcode::DIV_D:
        state_.fpRegs[inst.rd] =
            state_.fpRegs[inst.rs] / state_.fpRegs[inst.rt];
        break;
      case Opcode::NEG_D:
        state_.fpRegs[inst.rd] = -state_.fpRegs[inst.rs];
        break;
      case Opcode::ABS_D:
        state_.fpRegs[inst.rd] = std::fabs(state_.fpRegs[inst.rs]);
        break;
      case Opcode::MOV_D:
        state_.fpRegs[inst.rd] = state_.fpRegs[inst.rs];
        break;
      case Opcode::CVT_D_W:
        state_.fpRegs[inst.rd] = static_cast<double>(
            static_cast<std::int32_t>(state_.readInt(inst.rs)));
        break;
      case Opcode::CVT_W_D:
        state_.writeInt(inst.rd,
                        static_cast<Word>(static_cast<std::int32_t>(
                            state_.fpRegs[inst.rs])));
        break;
      case Opcode::C_EQ_D:
        state_.fcc = state_.fpRegs[inst.rs] == state_.fpRegs[inst.rt];
        break;
      case Opcode::C_LT_D:
        state_.fcc = state_.fpRegs[inst.rs] < state_.fpRegs[inst.rt];
        break;
      case Opcode::C_LE_D:
        state_.fcc = state_.fpRegs[inst.rs] <= state_.fpRegs[inst.rt];
        break;

      case Opcode::NOP:
        break;
      case Opcode::HALT:
        info.halted = true;
        next = pc;
        break;
      default:
        detail::badOpcode("ExecCore::stepCached", inst.op);
    }

    info.nextPc = next;
    cachePc_ = next;
    state_.pc = next;
    if (obs_) [[unlikely]]
        obs_->onStep(info, state_);
    return info;
}

/** Why a run() call returned. */
enum class StopReason
{
    Halted,             ///< the task executed HALT
    WatchdogExpired,    ///< missed-checkpoint exception (unmasked)
    CycleBudget,        ///< the caller's cycle budget was exhausted
};

/** Result of a run() call. */
struct RunResult
{
    StopReason reason = StopReason::Halted;
};

/** Result of a drainForPreemption() call. */
struct DrainResult
{
    Cycles cycles = 0;          ///< simulated cycles the drain took
    /** An unmasked watchdog expiry fired during the drain; the caller
     *  must take the missed-checkpoint recovery path before the task
     *  is suspended. */
    bool watchdogExpired = false;
};

inline constexpr Cycles noCycleLimit = ~static_cast<Cycles>(0);

/**
 * Abstract processor: a program plus caches, memory timing, platform
 * devices, and power-activity accounting. Concrete subclasses:
 * SimpleCpu (the explicitly-safe simple-fixed processor) and OooCpu
 * (the complex processor with its simple mode).
 */
class Cpu
{
  public:
    Cpu(const Program &prog, MainMemory &mem, Platform &platform,
        MemController &memctrl,
        const CacheParams &icache_params, const CacheParams &dcache_params);
    virtual ~Cpu() = default;

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /**
     * Reset architectural state and per-task cycle accounting for a new
     * task instance. Caches and predictors stay warm (the paper models
     * 200 consecutive executions of a periodic task).
     */
    virtual void resetForTask();

    /**
     * Run until HALT, an unmasked watchdog expiry, or the cycle budget.
     * Resumable: a subsequent call continues from the stop point.
     */
    virtual RunResult run(Cycles max_cycles = noCycleLimit) = 0;

    /** Invalidate caches and predictors (Fig. 4 induced mispredictions). */
    virtual void flushCachesAndPredictors();

    /**
     * Bring the pipeline to a preemption point: complete all in-flight
     * work so another task's context can be switched in. Instructions
     * past a run() stop are already functionally executed, so they
     * must retire before the core is handed over — the complex
     * pipeline runs its back-end stages with fetch halted until the
     * ROB and fetch queue are empty; the in-order pipelines stop
     * between instructions and have nothing to drain.
     */
    virtual DrainResult drainForPreemption() { return {}; }

    /**
     * Advance simulated time by @p n cycles with the pipeline idle
     * (models reconfiguration / frequency-switch overhead).
     */
    virtual void advanceIdle(Cycles n) = 0;

    /** Change the core clock; affects miss penalties in cycles. */
    virtual void
    setFrequency(MHz f)
    {
        freq_ = f;
        platform_.setCurrentFreq(f);
    }
    MHz frequency() const { return freq_; }

    /** Cycles elapsed in the current task instance. */
    virtual Cycles cycles() const = 0;

    /** Instructions retired in the current task instance. */
    std::uint64_t retired() const { return retired_; }

    bool halted() const { return halted_; }

    PowerActivity &activity() { return activity_; }
    const PowerActivity &activity() const { return activity_; }

    ArchState &arch() { return core_.state(); }
    ExecCore &execCore() { return core_; }
    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    Platform &platform() { return platform_; }

    /**
     * Contribute statistics groups to @p set: cycles, instructions,
     * IPC, cache behavior, and per-structure activity counts under
     * statsName(); subclasses add their own stats on top. The groups
     * hold live formulas capturing `this`, so the set must be dumped
     * while the CPU is alive.
     */
    virtual void buildStats(StatSet &set) const;

    /**
     * Dump simulation statistics (gem5-style "name value # desc"
     * lines), via buildStats().
     */
    void dumpStats(std::ostream &os) const;

    /** Dump the same statistics as a hierarchical JSON document. */
    void dumpStatsJson(std::ostream &os) const;

  protected:
    /** Statistics group name ("simple", "complex"). */
    virtual const char *statsName() const = 0;

  protected:
    /**
     * Refresh activity_.cycles as a *cumulative* count across task
     * instances (access counters accumulate, so the cycle counter must
     * too — the power meter differences snapshots across tasks).
     */
    void
    syncActivityCycles()
    {
        activity_.cycles = activityCycleBase_ + cycles();
    }

    /** Uncontended miss penalty at the current frequency. */
    Cycles missPenalty() const { return memctrl_.stallCycles(freq_); }

    const Program &prog_;
    MainMemory &mem_;
    Platform &platform_;
    MemController &memctrl_;
    Cache icache_;
    Cache dcache_;
    ExecCore core_;
    MHz freq_ = 1000;
    std::uint64_t retired_ = 0;
    bool halted_ = false;
    PowerActivity activity_;
    /** Cycles of completed task instances (see syncActivityCycles). */
    Cycles activityCycleBase_ = 0;
};

} // namespace visa

#endif // VISA_CPU_CPU_HH
