/**
 * @file
 * Per-structure activity counters reported by the pipeline simulators
 * and consumed by the Wattch-style power model (paper §5.2: separate
 * physical register file, active list, issue queue, load/store queue).
 */

#ifndef VISA_CPU_ACTIVITY_HH
#define VISA_CPU_ACTIVITY_HH

#include <array>
#include <cstdint>

namespace visa
{

/** Microarchitectural structures tracked for power. */
enum class Unit : int
{
    ICache = 0,
    DCache,
    Bpred,          ///< gshare table + indirect target table
    FetchQueue,
    RenameMap,
    IssueQueue,     ///< wakeup/select CAM
    Lsq,            ///< load/store queue CAM
    RegfileRead,    ///< physical (or architectural) register file read
    RegfileWrite,
    Fu,             ///< a function-unit operation
    ActiveList,     ///< reorder buffer / active list
    ResultBus,
    NumUnits
};

inline constexpr int numUnits = static_cast<int>(Unit::NumUnits);

/** Access counts per structure plus total cycles. */
struct PowerActivity
{
    std::array<std::uint64_t, numUnits> accesses{};
    std::uint64_t cycles = 0;

    void
    add(Unit u, std::uint64_t n = 1)
    {
        accesses[static_cast<int>(u)] += n;
    }

    std::uint64_t
    count(Unit u) const
    {
        return accesses[static_cast<int>(u)];
    }

    void
    reset()
    {
        accesses.fill(0);
        cycles = 0;
    }

    /** Element-wise difference (this - earlier snapshot). */
    PowerActivity
    since(const PowerActivity &earlier) const
    {
        PowerActivity d;
        for (int i = 0; i < numUnits; ++i)
            d.accesses[i] = accesses[i] - earlier.accesses[i];
        d.cycles = cycles - earlier.cycles;
        return d;
    }
};

/** @return a short name for @p u ("icache", "iq", ...). */
const char *unitName(Unit u);

} // namespace visa

#endif // VISA_CPU_ACTIVITY_HH
