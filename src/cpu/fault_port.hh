/**
 * @file
 * FaultPort — the narrow fault-injection seam in the complex core.
 *
 * Verification harnesses (verify/inject.hh) install an implementation
 * on an OooCpu to corrupt architectural results or timing at precisely
 * controlled points; production paths never install one. The two hooks
 * cover the whole fault matrix:
 *
 *  - onExecute() fires in the complex-mode fetch stage immediately
 *    after ExecCore::step() produced an instruction's architectural
 *    result and *before* the branch predictors observe its outcome.
 *    An implementation may rewrite the ExecInfo record, the
 *    architectural state, or memory — modeling register-file/ROB
 *    payload bit flips, load value/address corruption, wild stores,
 *    branch direction/target corruption, and decoded-record (block
 *    cache) corruption. Because the record is rewritten before the
 *    predictor update and before dispatch reads it, the corrupted
 *    outcome consistently drives both the functional state and the
 *    timing model, exactly as a real upset would.
 *
 *  - onIssueReady() fires when the issue stage finds a data-ready
 *    entry whose readyAt has arrived. A nonzero return delays the
 *    entry by that many cycles — a stuck/late wakeup in the
 *    event-driven scheduler. Architecturally silent; only the
 *    watchdog can see it.
 *
 * Simple mode takes no faults by design: it is the trusted fallback
 * the VISA safety argument rests on (paper §2), so the hooks live only
 * on the complex path.
 *
 * Cost model mirrors tracing/profiling: building with -DVISA_INJECT=0
 * removes the hooks entirely; in the default build the no-port path is
 * one member load and a predictable [[unlikely]] branch per site,
 * gated below 2% by the bench_gate ctest.
 */

#ifndef VISA_CPU_FAULT_PORT_HH
#define VISA_CPU_FAULT_PORT_HH

#include "sim/types.hh"

#ifndef VISA_INJECT
#define VISA_INJECT 1
#endif

namespace visa
{

class ExecCore;
class MainMemory;
struct ExecInfo;

/** Abstract fault-injection hook installed on an OooCpu (complex mode). */
class FaultPort
{
  public:
    virtual ~FaultPort() = default;

    /**
     * Called after @p info was produced by functional execution, before
     * the predictors and the timing model consume it. May mutate
     * @p info, @p core 's architectural state, and @p mem.
     * @p seq is the instruction's ROB sequence number, @p cycle the
     * current complex-core cycle.
     */
    virtual void onExecute(ExecCore &core, MainMemory &mem, ExecInfo &info,
                           std::uint64_t seq, Cycles cycle) = 0;

    /**
     * Called when entry @p seq is about to issue at @p cycle. Return 0
     * to let it issue; return N to push its wakeup N cycles into the
     * future (a stuck scheduler entry).
     */
    virtual Cycles onIssueReady(std::uint64_t seq, Cycles cycle) = 0;
};

} // namespace visa

#endif // VISA_CPU_FAULT_PORT_HH
