/**
 * @file
 * The explicitly-safe "simple-fixed" processor (paper §3.1 and §5.2):
 * a literal implementation of the VISA — six-stage scalar in-order
 * pipeline, static BTFN prediction, merged BTB/I-cache, one unpipelined
 * universal FU, blocking caches, one outstanding memory request.
 *
 * Implementation strategy: functional execution at commit plus the
 * shared VisaTimer recurrence for cycle-exact timing. Squashed
 * wrong-path fetches do not perturb the I-cache (the fill is cancelled),
 * so the cache reference stream equals the committed path — the same
 * stream the static analyzer reasons about.
 */

#ifndef VISA_CPU_SIMPLE_CPU_HH
#define VISA_CPU_SIMPLE_CPU_HH

#include "cpu/cpu.hh"
#include "cpu/visa_timing.hh"
#include "sim/trace.hh"

namespace visa
{

/** Default VISA cache parameters (Table 1). */
CacheParams visaICacheParams();
CacheParams visaDCacheParams();

/** The simple-fixed in-order pipeline. */
class SimpleCpu final : public Cpu
{
  public:
    SimpleCpu(const Program &prog, MainMemory &mem, Platform &platform,
              MemController &memctrl);

    void resetForTask() override;
    RunResult run(Cycles max_cycles = noCycleLimit) override;
    void advanceIdle(Cycles n) override;
    Cycles cycles() const override
    {
        return cycleBase_ + timer_.totalCycles();
    }

    std::uint64_t mispredicts() const { return mispredicts_; }

    void buildStats(StatSet &set) const override;

  protected:
    const char *statsName() const override { return "simple"; }

  private:
    /**
     * The per-instruction loop, templated on whether a tracer is
     * installed: the untraced instantiation carries no tracing code at
     * all, so an idle tracer hook costs nothing on the hot path.
     */
    template <bool Traced>
    RunResult runLoop(Cycles budget_end, Tracer *tracer);

    /** Bring the platform devices up to absolute cycle @p to. Inline:
     *  called once per committed instruction. */
    Platform::TickResult
    tickTo(Cycles to)
    {
        if (to <= ticked_)
            return {};
        auto res = platform_.tickN(to - ticked_);
        if (res.expired)
            res.offset += ticked_;    // make the offset absolute
        ticked_ = to;
        return res;
    }

    VisaTimer timer_;
    Cycles cycleBase_ = 0;      ///< cycles accumulated before timer reset
    Cycles ticked_ = 0;         ///< absolute cycle the platform has seen
    Instruction prevInst_;
    bool prevWasLoad_ = false;
    std::uint64_t mispredicts_ = 0;
};

} // namespace visa

#endif // VISA_CPU_SIMPLE_CPU_HH
