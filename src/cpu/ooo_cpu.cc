#include "cpu/ooo_cpu.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/prof/prof.hh"
#include "sim/stats.hh"

namespace visa
{

OooCpu::OooCpu(const Program &prog, MainMemory &mem, Platform &platform,
               MemController &memctrl, const OooParams &params)
    : Cpu(prog, mem, platform, memctrl,
          CacheParams{"icache", 64 * 1024, 4, 64},
          CacheParams{"dcache", 64 * 1024, 4, 64}),
      params_(params),
      gshare_(params.gshareLog2),
      indirect_(params.indirectLog2)
{
    lastIntWriter_.fill(-1);
    lastFpWriter_.fill(-1);

    // Ring capacities: next power of two >= the architected size, so
    // occupancy checks still use the architected limits while slot
    // indexing is a mask.
    const std::size_t rob_cap =
        std::bit_ceil(static_cast<std::size_t>(params_.robSize));
    rob_.resize(rob_cap);
    robMask_ = rob_cap - 1;
    const std::size_t fq_cap =
        std::bit_ceil(static_cast<std::size_t>(params_.fetchQueueSize));
    fetchQueue_.resize(fq_cap);
    fqMask_ = fq_cap - 1;
    // Every in-flight store occupies an LSQ slot, so lsqSize bounds
    // the store ring.
    const std::size_t st_cap =
        std::bit_ceil(static_cast<std::size_t>(params_.lsqSize));
    inflightStores_.resize(st_cap);
    storeMask_ = st_cap - 1;

    readyList_.reserve(static_cast<std::size_t>(params_.iqSize));
    wokenBuf_.reserve(static_cast<std::size_t>(params_.iqSize));
    unissuedStoreSeqs_.reserve(static_cast<std::size_t>(params_.lsqSize));
}

void
OooCpu::resetForTask()
{
    Cpu::resetForTask();
    cycle_ = 0;
    ticked_ = 0;
    seqCounter_ = 0;
    fqHead_ = fqCount_ = 0;
    robHead_ = robCount_ = 0;
    lastIntWriter_.fill(-1);
    lastFpWriter_.fill(-1);
    lastFccWriter_ = -1;
    fetchReadyCycle_ = 0;
    fetchBlockedSeq_ = -1;
    lastFetchBlock_ = ~0u;
    haltFetched_ = false;
    mispredicts_ = 0;
    iqCount_ = 0;
    lsqCount_ = 0;
    timer_.reset();
    timerBase_ = 0;
    prevWasLoad_ = false;
    simpleFetchGroup_ = 0;
    memctrl_.reset();
    readyList_.clear();
    wokenBuf_.clear();
    issueEvent_ = noCycleLimit;
    unissuedStoreSeqs_.clear();
    storeHead_ = storeCount_ = 0;
    missFillTimes_.clear();
    lastMshrTraced_ = -1;
}

void
OooCpu::flushCachesAndPredictors()
{
    Cpu::flushCachesAndPredictors();
    gshare_.flush();
    indirect_.flush();
}

Platform::TickResult
OooCpu::tickTo(Cycles to)
{
    if (to <= ticked_)
        return {};
    auto res = platform_.tickN(to - ticked_);
    if (res.expired)
        res.offset += ticked_;
    ticked_ = to;
    return res;
}

void
OooCpu::advanceIdle(Cycles n)
{
    if (prof::BlockProfiler *prof = prof::currentProfiler())
        prof->addUnattributed(n);
    cycle_ += n;
    profLastRetire_ += n;    // idle gap is not the next retire's stall
    if (mode_ == Mode::Simple) {
        timerBase_ = cycle_;
        timer_.reset();
        prevWasLoad_ = false;
    }
    tickTo(cycle_);
    syncActivityCycles();
}

bool
OooCpu::olderStoresIssued(const RobEntry &load) const
{
    // Equivalent to walking the ROB for an unissued older store: the
    // sorted vector holds exactly the unissued non-MMIO stores, so
    // only its front (the minimum) matters.
    return unissuedStoreSeqs_.empty() ||
           unissuedStoreSeqs_.front() >= load.seq;
}

bool
OooCpu::overlapsOlderStore(const RobEntry &load) const
{
    const Addr lo = load.info.effAddr;
    const Addr hi = lo + static_cast<Addr>(load.info.inst.memBytes());
    for (std::size_t i = 0; i < storeCount_; ++i) {
        const StoreRef &s = inflightStores_[(storeHead_ + i) & storeMask_];
        if (s.seq >= load.seq)
            break;
        if (s.lo < hi && lo < s.hi)
            return true;
    }
    return false;
}

int
OooCpu::outstandingLoadMisses()
{
    // Prune fills that have completed; retired miss loads always have
    // completeCycle < cycle_ (retirement waits for completion), so the
    // survivors are exactly the ROB's issued, still-outstanding misses.
    std::erase_if(missFillTimes_,
                  [this](Cycles c) { return c <= cycle_; });
    return static_cast<int>(missFillTimes_.size());
}

int
OooCpu::fetchStage()
{
    if (haltFetched_ || fetchBlockedSeq_ >= 0 || cycle_ < fetchReadyCycle_)
        return 0;

#if VISA_INJECT
    // Hoisted once per stage call: the member could alias the stores
    // below, and a reload per fetched instruction is a real tax on the
    // no-port path.
    FaultPort *const fault_port = faultPort_;
#endif
    int n = 0;
    bool block_end = false;
    std::uint64_t icache_accesses = 0;
    std::uint64_t bpred_accesses = 0;
    const int fetch_width = params_.fetchWidth;
    const int fq_size = params_.fetchQueueSize;
    const std::uint32_t blk_shift = icache_.blockShift();
    while (n < fetch_width && !haltFetched_ && !block_end &&
           static_cast<int>(fqCount_) < fq_size) {
        const Addr pc = core_.state().pc;
        const Addr blk = pc >> blk_shift;
        if (blk != lastFetchBlock_) {
            bool hit = icache_.access(pc, false);
            ++icache_accesses;
            lastFetchBlock_ = blk;
            if (!hit) {
                if (tracer_) [[unlikely]]
                    tracer_->record(EventKind::IcacheMiss, cycle_, pc);
                // Blocking fill; fetch retries once the line arrives.
                fetchReadyCycle_ = cycle_ + missPenalty();
                break;
            }
        } else if (icache_accesses == 0) {
            ++icache_accesses;
        }

        // Functional execution happens here (oracle); MMIO devices are
        // accessed immediately, in program order.
        FetchEntry &fe = fqPushSlot();
        fe.info = core_.step(false);
#if VISA_INJECT
        if (fault_port) [[unlikely]]
            fault_port->onExecute(core_, mem_, fe.info, seqCounter_, cycle_);
#endif
        fe.seq = seqCounter_++;
        fe.fetchCycle = cycle_;
        fe.mispredicted = false;

        const ExecInfo &info = fe.info;
        const Instruction &inst = info.inst;
        if (inst.isCondBranch()) {
            ++bpred_accesses;
            bool pred = gshare_.predict(pc);
            gshare_.update(pc, info.taken);
            if (pred != info.taken) {
                fe.mispredicted = true;
                ++mispredicts_;
                fetchBlockedSeq_ = static_cast<std::int64_t>(fe.seq);
                block_end = true;
            } else if (info.taken) {
                block_end = true;
            }
        } else if (inst.isIndirectJump()) {
            ++bpred_accesses;
            Addr pred_target = indirect_.predict(pc);
            indirect_.update(pc, info.nextPc);
            if (pred_target != info.nextPc) {
                fe.mispredicted = true;
                ++mispredicts_;
                fetchBlockedSeq_ = static_cast<std::int64_t>(fe.seq);
            }
            block_end = true;
        } else if (inst.isDirectJump()) {
            block_end = true;
        }

        if (tracer_) [[unlikely]] {
            tracer_->record(EventKind::Fetch, cycle_, pc, fe.seq);
            if (fe.mispredicted)
                tracer_->record(EventKind::BranchMispredict, cycle_, pc,
                                fe.seq, info.taken);
        }

        if (info.halted)
            haltFetched_ = true;
        ++n;
    }
    activity_.add(Unit::ICache, icache_accesses);
    activity_.add(Unit::Bpred, bpred_accesses);
    activity_.add(Unit::FetchQueue, static_cast<std::uint64_t>(n));
    return n;
}

int
OooCpu::dispatchStage()
{
    int n = 0;
    std::uint64_t mem_dispatched = 0;
    const int dispatch_width = params_.dispatchWidth;
    const Cycles front_latency = static_cast<Cycles>(params_.frontLatency);
    const int iq_size = params_.iqSize;
    const int lsq_size = params_.lsqSize;
    // The ROB head is fixed for the whole stage (retire ran earlier
    // this cycle), so producer lookups in link() below are arithmetic
    // off these two values instead of a full findBySeq(). An empty ROB
    // means every producer has retired; the first entry dispatched
    // this stage then becomes the front, and its seq (the fetch-queue
    // front) is the correct lower bound either way.
    const std::uint64_t head_seq =
        robCount_ > 0 ? rob_[robHead_].seq : fetchQueue_[fqHead_].seq;
    const std::size_t head_idx = robHead_;
    while (n < dispatch_width && fqCount_ > 0) {
        const FetchEntry &fe = fqFront();
        if (fe.fetchCycle + front_latency > cycle_)
            break;
        if (robFull())
            break;
        if (iqOccupancy() >= iq_size)
            break;
        if (fe.info.isMem && !fe.info.isMmio &&
            lsqOccupancy() >= lsq_size)
            break;

        RobEntry &e = robPushSlot();
        e.info = fe.info;
        e.seq = fe.seq;
        e.completeCycle = 0;
        e.readyAt = cycle_ + 1;
        e.waiters.clear();
        e.pending = 0;
        e.issued = false;
        e.mispredicted = fe.mispredicted;

        // Dependence linking. An issued producer folds its completion
        // time into readyAt; an unissued one records this entry as a
        // waiter and will fold/decrement at wakeup. A retired producer
        // constrains nothing (its result committed at least a cycle
        // ago), exactly as the historical sourcesReady() poll treated
        // seqs that fell off the ROB front.
        // One operand-flags load drives renaming, dependence linking,
        // and the regfile activity the issue stage will charge later —
        // the per-query accessors (srcIntRegs() etc.) would reload the
        // same table entry six times per instruction.
        const Instruction &inst = e.info.inst;
        const auto f = detail::operandFlags(inst.op);
        auto link = [&](std::int64_t p) {
            if (p < 0)
                return;
            const auto ps = static_cast<std::uint64_t>(p);
            if (ps < head_seq)
                return;    // producer already retired
            // Producers rename at dispatch, so ps >= head_seq means the
            // producer is still in the ROB: the slot is pure arithmetic
            // off the stage-invariant head (no retire between here and
            // the stage entry).
            RobEntry *prod =
                &rob_[(head_idx + static_cast<std::size_t>(ps - head_seq)) &
                      robMask_];
            if (prod->issued) {
                if (prod->completeCycle > e.readyAt)
                    e.readyAt = prod->completeCycle;
            } else {
                prod->waiters.push_back(e.seq);
                ++e.pending;
            }
        };
        std::uint8_t reg_reads = 0;
        if ((f & detail::opSrcRsInt) && inst.rs > 0) {
            ++reg_reads;
            link(lastIntWriter_[inst.rs]);
        }
        if ((f & detail::opSrcRtInt) && inst.rt > 0) {
            ++reg_reads;
            link(lastIntWriter_[inst.rt]);
        }
        if (f & detail::opSrcRsFp) {
            ++reg_reads;
            link(lastFpWriter_[inst.rs]);
        }
        if (f & detail::opSrcRtFp) {
            ++reg_reads;
            link(lastFpWriter_[inst.rt]);
        }
        if (f & detail::opReadsFcc)
            link(lastFccWriter_);
        e.regReads = reg_reads;

        int di = (f & detail::opDestRdInt) ? inst.rd
                 : (f & detail::opDestRaInt) ? reg::ra
                                             : -1;
        if (di > 0)
            lastIntWriter_[static_cast<std::size_t>(di)] =
                static_cast<std::int64_t>(e.seq);
        const bool df = (f & detail::opDestRdFp) != 0;
        if (df)
            lastFpWriter_[inst.rd] = static_cast<std::int64_t>(e.seq);
        if (f & detail::opWritesFcc)
            lastFccWriter_ = static_cast<std::int64_t>(e.seq);
        e.regWrite = di > 0 || df;

        if (e.info.isMem && !e.info.isLoad && !e.info.isMmio) {
            // Seqs dispatch in ascending order, so push_back keeps the
            // vector sorted.
            unissuedStoreSeqs_.push_back(e.seq);
            StoreRef &s =
                inflightStores_[(storeHead_ + storeCount_) & storeMask_];
            ++storeCount_;
            s.seq = e.seq;
            s.lo = e.info.effAddr;
            s.hi = s.lo + static_cast<Addr>(e.info.inst.memBytes());
        }
        ++iqCount_;
        if (e.info.isMem && !e.info.isMmio) {
            ++lsqCount_;
            ++mem_dispatched;
        }
        if (e.pending == 0) {
            // Ascending-seq push keeps readyList_ sorted here too.
            readyList_.push_back(e.seq);
            if (e.readyAt < issueEvent_)
                issueEvent_ = e.readyAt;
        }
        fqPopFront();
        ++n;
    }
    activity_.add(Unit::RenameMap, static_cast<std::uint64_t>(n));
    activity_.add(Unit::ActiveList, static_cast<std::uint64_t>(n));
    activity_.add(Unit::Lsq, mem_dispatched);
    return n;
}

int
OooCpu::issueStage()
{
    // Walk only the data-ready entries (program order), compacting the
    // survivors in place. readyList_ holds exactly the unissued entries
    // whose pending count is zero; readyAt <= cycle_ is then equivalent
    // to the historical "dispatchCycle < cycle_ && sourcesReady(e)"
    // poll, so issue order, width accounting, and all structural gating
    // are identical to the full unissued-entry walk — this only skips
    // entries that walk would have rejected via sourcesReady().
    int issued = 0;
    int misses_outstanding = outstandingLoadMisses();
    issueEvent_ = noCycleLimit;
    std::size_t keep = 0;
    std::uint64_t lsq_accesses = 0;
    std::uint64_t dcache_accesses = 0;
    std::uint64_t reg_reads = 0;
    std::uint64_t reg_writes = 0;
    const int issue_width = params_.issueWidth;
    const int dcache_ports = params_.dcachePorts;
    const std::size_t n = readyList_.size();
    // Unissued entries cannot retire, so everything on readyList_ (and
    // every waiter, which is younger still) is in the ROB, and the head
    // is fixed for the whole stage: slot lookup is arithmetic off these
    // two values, not a findBySeq() whose front load the compiler must
    // repeat after every ROB store. Unused (garbage) when n == 0.
    const std::uint64_t head_seq = rob_[robHead_].seq;
    const std::size_t head_idx = robHead_;
#if VISA_INJECT
    // Hoisted: this loop is the scheduler's hottest path, and the
    // member pointer would otherwise reload every iteration (the ROB
    // stores below may alias it as far as the compiler knows).
    FaultPort *const fault_port = faultPort_;
#endif
    auto slot = [&](std::uint64_t s) -> RobEntry & {
        return rob_[(head_idx + static_cast<std::size_t>(s - head_seq)) &
                    robMask_];
    };
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t seq = readyList_[i];
        RobEntry &e = slot(seq);
        if (e.readyAt > cycle_) {
            // Data-ready, but the newest producer's result is still in
            // flight (or the entry dispatched only this cycle).
            if (e.readyAt < issueEvent_)
                issueEvent_ = e.readyAt;
            readyList_[keep++] = seq;
            continue;
        }
#if VISA_INJECT
        if (fault_port) [[unlikely]] {
            // A stuck scheduler entry: push the wakeup into the future
            // as if the select logic lost the request.
            const Cycles delay = fault_port->onIssueReady(seq, cycle_);
            if (delay > 0) {
                e.readyAt = cycle_ + delay;
                if (e.readyAt < issueEvent_)
                    issueEvent_ = e.readyAt;
                readyList_[keep++] = seq;
                continue;
            }
        }
#endif
        bool do_issue = false;

        if (issued < issue_width) {
            if (e.info.isMem && !e.info.isMmio) {
                if (e.info.isLoad) {
                    if (olderStoresIssued(e)) {
                        if (overlapsOlderStore(e)) {
                            // Store-to-load forwarding inside the LSQ.
                            e.completeCycle = cycle_ + 2;
                            ++lsq_accesses;
                            do_issue = true;
                        } else if (memPortsUsed_ < dcache_ports) {
                            bool hit = dcache_.probe(e.info.effAddr);
                            if (hit || misses_outstanding <
                                           memctrl_.maxOutstanding()) {
                                ++memPortsUsed_;
                                dcache_.access(e.info.effAddr, false);
                                ++dcache_accesses;
                                ++lsq_accesses;
                                if (hit) {
                                    e.completeCycle = cycle_ + 2;
                                } else {
                                    e.completeCycle =
                                        memctrl_.schedule(cycle_ + 2,
                                                          freq_,
                                                          e.info.effAddr);
                                    ++misses_outstanding;
                                    missFillTimes_.push_back(
                                        e.completeCycle);
                                    if (tracer_) [[unlikely]] {
                                        tracer_->record(
                                            EventKind::DcacheMiss, cycle_,
                                            e.info.effAddr, e.info.pc);
                                        // Occupancy is a counter track:
                                        // emit transitions, not one
                                        // sample per issued miss.
                                        if (misses_outstanding !=
                                            lastMshrTraced_) {
                                            lastMshrTraced_ =
                                                misses_outstanding;
                                            tracer_->record(
                                                EventKind::MshrOccupancy,
                                                cycle_,
                                                static_cast<std::uint64_t>(
                                                    misses_outstanding));
                                        }
                                    }
                                }
                                do_issue = true;
                            }
                        }
                    }
                } else {
                    // Stores compute their address and sit in the LSQ;
                    // the data cache is written at retire. Erasing here
                    // (mid-scan) lets a younger ready load issue in the
                    // same cycle, as the seq-ordered poll did.
                    e.completeCycle = cycle_ + 1;
                    ++lsq_accesses;
                    unissuedStoreSeqs_.erase(
                        std::lower_bound(unissuedStoreSeqs_.begin(),
                                         unissuedStoreSeqs_.end(), seq));
                    do_issue = true;
                }
            } else {
                e.completeCycle = cycle_ + e.info.inst.latency();
                do_issue = true;
            }
        }

        if (!do_issue) {
            // Issuable now but structurally blocked (width, ports,
            // MSHRs, store ordering): retry next cycle.
            if (cycle_ + 1 < issueEvent_)
                issueEvent_ = cycle_ + 1;
            readyList_[keep++] = seq;
            continue;
        }

        e.issued = true;
        --iqCount_;
        ++issued;
        reg_reads += e.regReads;
        reg_writes += e.regWrite ? 1u : 0u;

        if (static_cast<std::int64_t>(seq) == fetchBlockedSeq_) {
            fetchReadyCycle_ = e.completeCycle + 1;
            fetchBlockedSeq_ = -1;
            if (tracer_) [[unlikely]]
                tracer_->record(EventKind::Squash, e.completeCycle,
                                e.info.pc, seq);
        }

        // Wake consumers: fold this result's availability into their
        // readyAt; the ones whose last dependence this was join the
        // ready list. Their readyAt is >= completeCycle > cycle_, so
        // merging after the scan cannot change this cycle's issues.
        for (std::uint64_t w : e.waiters) {
            RobEntry &we = slot(w);
            if (e.completeCycle > we.readyAt)
                we.readyAt = e.completeCycle;
            if (--we.pending == 0)
                wokenBuf_.push_back(w);
        }
        e.waiters.clear();
    }
    readyList_.resize(keep);
    for (std::uint64_t w : wokenBuf_) {
        const RobEntry &we = slot(w);
        if (we.readyAt < issueEvent_)
            issueEvent_ = we.readyAt;
        readyList_.insert(
            std::lower_bound(readyList_.begin(), readyList_.end(), w), w);
    }
    wokenBuf_.clear();
    if (issued > 0) {
        const auto ni = static_cast<std::uint64_t>(issued);
        activity_.add(Unit::IssueQueue, ni);
        activity_.add(Unit::Fu, ni);
        activity_.add(Unit::ResultBus, ni);
        activity_.add(Unit::RegfileRead, reg_reads);
        activity_.add(Unit::RegfileWrite, reg_writes);
        activity_.add(Unit::Lsq, lsq_accesses);
        activity_.add(Unit::DCache, dcache_accesses);
    }
    return issued;
}

int
OooCpu::retireStage()
{
    int n = 0;
    while (n < params_.retireWidth && robCount_ > 0) {
        RobEntry &e = robFront();
        if (!e.issued || e.completeCycle + 1 > cycle_)
            break;
        if (e.info.isMem && !e.info.isLoad && !e.info.isMmio) {
            if (memPortsUsed_ >= params_.dcachePorts)
                break;
            ++memPortsUsed_;
            bool hit = dcache_.access(e.info.effAddr, true);
            activity_.add(Unit::DCache);
            if (!hit) {
                // Write-allocate through the write buffer: consumes
                // memory bandwidth but does not stall retirement.
                memctrl_.schedule(cycle_, freq_, e.info.effAddr);
            }
            // Stores retire in program order, so this store is the
            // ring's front.
            storeHead_ = (storeHead_ + 1) & storeMask_;
            --storeCount_;
        }
        if (e.info.isMem && !e.info.isMmio)
            --lsqCount_;
        if (e.info.halted)
            halted_ = true;
        if (tracer_) [[unlikely]]
            tracer_->record(EventKind::Retire, cycle_, e.info.pc, e.seq);
        if (prof_) [[unlikely]] {
            // Only retired (architectural) instructions are charged;
            // the first retire of a cycle absorbs the stall gap since
            // the previous one, same-cycle retires charge zero.
            prof_->countTimed(e.info.pc, e.info.inst.isControl(),
                              cycle_ - profLastRetire_);
            profLastRetire_ = cycle_;
        }
        robPopFront();
        ++retired_;
        ++n;
    }
    return n;
}

Cycles
OooCpu::nextEventCycle(bool fetching) const
{
    Cycles next = noCycleLimit;
    if (robCount_ > 0) {
        const RobEntry &head = robFront();
        if (head.issued) {
            // Retirement frees as soon as the head's result is a cycle
            // old; width- or port-limited retires retry next cycle.
            Cycles t = head.completeCycle + 1;
            if (t <= cycle_)
                t = cycle_ + 1;
            if (t < next)
                next = t;
        }
        // An unissued head has pending == 0 (its producers, being
        // older, all issued), so it is on readyList_ and issueEvent_
        // covers it.
    }
    if (issueEvent_ < next)
        next = issueEvent_;    // always > cycle_ by construction
    if (fqCount_ > 0) {
        const FetchEntry &fe = fetchQueue_[fqHead_];
        const bool needs_lsq = fe.info.isMem && !fe.info.isMmio;
        if (!robFull() && iqCount_ < params_.iqSize &&
            (!needs_lsq || lsqCount_ < params_.lsqSize)) {
            Cycles t =
                fe.fetchCycle + static_cast<Cycles>(params_.frontLatency);
            if (t <= cycle_)
                t = cycle_ + 1;
            if (t < next)
                next = t;
        }
        // A structurally blocked dispatch waits on a retire or issue,
        // whose events are already accounted; dispatch runs after both
        // in the cycle they fire.
    }
    if (fetching && !haltFetched_ && fetchBlockedSeq_ < 0 &&
        static_cast<int>(fqCount_) < params_.fetchQueueSize) {
        Cycles t = fetchReadyCycle_;
        if (t <= cycle_)
            t = cycle_ + 1;
        if (t < next)
            next = t;
        // A full fetch queue drains at the next dispatch, covered
        // above; fetch runs after dispatch in that same cycle.
    }
    return next;
}

bool
OooCpu::skipIdleCycles(Cycles next, Cycles budget_end)
{
    if (next == noCycleLimit || next <= cycle_ + 1)
        return false;
    Cycles target = next - 1;
    if (target > budget_end)
        target = budget_end;
    if (platform_.watchdogArmed() && !platform_.watchdogMasked()) {
        // Land exactly on the expiry cycle so the stop state is the
        // same as the per-cycle stepper's.
        const Cycles expiry =
            cycle_ + static_cast<Cycles>(platform_.watchdogValue());
        if (target > expiry)
            target = expiry;
    }
    if (target <= cycle_)
        return false;
    // Every cycle in (cycle_, target] is stage-inert (the first
    // possible activity is at `next`), so only the platform needs to
    // observe them — in one batch.
    cycle_ = target;
    syncActivityCycles();
    return tickTo(cycle_).expired;
}

RunResult
OooCpu::runComplex(Cycles budget_end)
{
    while (true) {
        if (halted_ && robCount_ == 0)
            return {StopReason::Halted};
        if (cycle_ >= budget_end)
            return {StopReason::CycleBudget};
        ++cycle_;
        memPortsUsed_ = 0;
        int work = retireStage();
        work += issueStage();
        work += dispatchStage();
        work += fetchStage();
        syncActivityCycles();
        auto t = tickTo(cycle_);
        bool expired = t.expired;
        if (!expired && work == 0)
            expired = skipIdleCycles(nextEventCycle(true), budget_end);
        if (expired) {
            DPRINTF("Watchdog", "expired at cycle %llu (sub-task %d)\n",
                    static_cast<unsigned long long>(cycle_),
                    platform_.currentSubtask());
            return {StopReason::WatchdogExpired};
        }
    }
}

void
OooCpu::switchToSimple()
{
    if (mode_ == Mode::Simple)
        return;
    // Cold path; may be called between run() calls, so consult the
    // installed tracer directly rather than the hoisted member.
    Tracer *tr = currentTracer();
    const Cycles drain_start = cycle_;
    // Drain: stop fetching and let everything in flight retire. The
    // run-time system masks the watchdog before reconfiguring, so
    // expiries during the drain are benign.
    while (robCount_ > 0 || fqCount_ > 0) {
        ++cycle_;
        memPortsUsed_ = 0;
        int work = retireStage();
        work += issueStage();
        work += dispatchStage();
        tickTo(cycle_);
        if (work == 0)
            skipIdleCycles(nextEventCycle(false), noCycleLimit);
    }
    DPRINTF("Mode", "drained at cycle %llu; entering simple mode\n",
            static_cast<unsigned long long>(cycle_));
    if (tr) {
        tr->record(EventKind::ModeSwitchDrain, cycle_,
                   cycle_ - drain_start);
        tr->record(EventKind::SimpleModeEnter, cycle_);
    }
    mode_ = Mode::Simple;
    timerBase_ = cycle_;
    timer_.reset();
    prevWasLoad_ = false;
    fetchBlockedSeq_ = -1;
    fetchReadyCycle_ = cycle_;
    lastFetchBlock_ = ~0u;
    syncActivityCycles();
}

DrainResult
OooCpu::drainForPreemption()
{
    DrainResult res;
    if (mode_ == Mode::Simple || (robCount_ == 0 && fqCount_ == 0))
        return res;    // in-order timing stops between instructions
    const Cycles drain_start = cycle_;
    while (robCount_ > 0 || fqCount_ > 0) {
        ++cycle_;
        memPortsUsed_ = 0;
        int work = retireStage();
        work += issueStage();
        work += dispatchStage();
        auto t = tickTo(cycle_);
        bool expired = t.expired;
        if (!expired && work == 0)
            expired = skipIdleCycles(nextEventCycle(false), noCycleLimit);
        if (expired) {
            // The missed-checkpoint exception preempts the preemption:
            // recovery (which drains the rest) must run first.
            res.watchdogExpired = true;
            break;
        }
    }
    DPRINTF("Mode",
            "preemption drain: %llu cycles%s\n",
            static_cast<unsigned long long>(cycle_ - drain_start),
            res.watchdogExpired ? " (watchdog expired)" : "");
    fetchReadyCycle_ = cycle_;
    lastFetchBlock_ = ~0u;
    syncActivityCycles();
    res.cycles = cycle_ - drain_start;
    return res;
}

void
OooCpu::switchToComplex()
{
    if (mode_ == Mode::Complex)
        return;
    if (robCount_ > 0 || fqCount_ > 0)
        panic("switchToComplex with a non-idle pipeline");
    DPRINTF("Mode", "entering complex mode at cycle %llu\n",
            static_cast<unsigned long long>(cycle_));
    if (Tracer *tr = currentTracer())
        tr->record(EventKind::SimpleModeExit, cycle_);
    mode_ = Mode::Complex;
    fetchReadyCycle_ = cycle_;
    lastFetchBlock_ = ~0u;
}

RunResult
OooCpu::runSimple(Cycles budget_end)
{
    // Dispatch once: the untraced loop instantiation carries no
    // tracing code (see SimpleCpu::runLoop).
    return tracer_ ? runSimpleLoop<true>(budget_end)
                   : runSimpleLoop<false>(budget_end);
}

template <bool Traced>
RunResult
OooCpu::runSimpleLoop(Cycles budget_end)
{
    // The §3.2 simple mode: VISA timing via the shared recurrence,
    // complex-datapath power accounting. The miss penalty only changes
    // with the frequency, i.e. between run() calls — hoist it.
    const Cycles penalty = missPenalty();
    while (true) {
        if (halted_)
            return {StopReason::Halted};
        if (cycle_ >= budget_end)
            return {StopReason::CycleBudget};

        const Addr pc = core_.state().pc;

        bool ihit = icache_.access(pc, false);
        // The fetch unit retrieves a full fetch block and buffers it;
        // the I-cache is read once per four sequential instructions.
        if (simpleFetchGroup_++ % 4 == 0)
            activity_.add(Unit::ICache);
        activity_.add(Unit::FetchQueue);

        ExecInfo info = core_.step(true);
        const Instruction &inst = info.inst;

        bool dhit = true;
        if (info.isMem && !info.isMmio) {
            dhit = dcache_.access(info.effAddr, !info.isLoad);
            activity_.add(Unit::DCache);
        }

        bool redirect = false;
        if (inst.isCondBranch()) {
            redirect = staticPredictTaken(inst, pc) != info.taken;
        } else if (inst.isIndirectJump()) {
            redirect = true;
        }

        TimingRecord rec;
        rec.exLatency = inst.latency();
        rec.imissPenalty = ihit ? 0 : penalty;
        rec.dmissPenalty =
            (info.isMem && !info.isMmio && !dhit) ? penalty : 0;
        rec.loadUseStall = prevWasLoad_ && inst.dependsOn(prevInst_);
        rec.redirect = redirect;
        timer_.consume(rec);
        cycle_ = timerBase_ + timer_.totalCycles();

        if (prof_) [[unlikely]] {
            prof_->countTimed(pc, inst.isControl(),
                              cycle_ - profLastRetire_);
            profLastRetire_ = cycle_;
        }

        if constexpr (Traced) {
            if (!ihit)
                tracer_->record(EventKind::IcacheMiss, cycle_, pc);
            if (info.isMem && !info.isMmio && !dhit)
                tracer_->record(EventKind::DcacheMiss, cycle_,
                                info.effAddr, pc);
            if (redirect)
                tracer_->record(EventKind::BranchMispredict, cycle_, pc,
                                retired_, info.taken);
            tracer_->record(EventKind::Retire, cycle_, pc, retired_);
        }

        // Renaming still locates operands in the physical register
        // file (one map read per source and destination); logical-to-
        // physical mappings never change (§3.2).
        int nmap = 0;
        for (int r : inst.srcIntRegs())
            if (r > 0) {
                ++nmap;
                activity_.add(Unit::RegfileRead);
            }
        for (int r : inst.srcFpRegs())
            if (r >= 0) {
                ++nmap;
                activity_.add(Unit::RegfileRead);
            }
        if (inst.destIntReg() >= 0 || inst.destFpReg() >= 0) {
            ++nmap;
            activity_.add(Unit::RegfileWrite);
        }
        activity_.add(Unit::RenameMap, static_cast<std::uint64_t>(nmap));
        activity_.add(Unit::Fu);
        activity_.add(Unit::ResultBus);

        auto tick = tickTo(timerBase_ + timer_.lastMemDone());
        if (info.isMmio)
            core_.performMmio(info);

        prevInst_ = inst;
        prevWasLoad_ = info.isLoad;
        ++retired_;
        syncActivityCycles();

        if (tick.expired)
            return {StopReason::WatchdogExpired};
        if (info.halted) {
            halted_ = true;
            cycle_ = timerBase_ + timer_.totalCycles();
            tickTo(cycle_);
            return {StopReason::Halted};
        }
    }
}

void
OooCpu::buildStats(StatSet &set) const
{
    Cpu::buildStats(set);
    StatGroup &g = set.group(statsName());
    g.scalar("branch_mispredicts",
             "conditional + indirect mispredictions")
        .set(mispredicts_);
    g.scalar("mode_simple", "1 when in the VISA simple mode")
        .set(mode_ == Mode::Simple ? 1 : 0);
}

RunResult
OooCpu::run(Cycles max_cycles)
{
    const Cycles budget_end = max_cycles == noCycleLimit
        ? noCycleLimit
        : cycle_ + max_cycles;
    if (halted_)
        return {StopReason::Halted};
    tracer_ = currentTracer();
    prof_ = prof::currentProfiler();
    profLastRetire_ = cycle_;
    return mode_ == Mode::Complex ? runComplex(budget_end)
                                  : runSimple(budget_end);
}

} // namespace visa
