#include "cpu/bpred.hh"

namespace visa
{

Gshare::Gshare(unsigned log2_entries)
    : log2Entries_(log2_entries),
      historyMask_((1u << log2_entries) - 1),
      table_(1u << log2_entries, 2)    // weakly taken
{
}

std::uint32_t
Gshare::index(Addr pc) const
{
    return ((pc >> 2) ^ history_) & historyMask_;
}

bool
Gshare::predict(Addr pc) const
{
    ++lookups_;
    return table_[index(pc)] >= 2;
}

bool
Gshare::update(Addr pc, bool taken)
{
    std::uint32_t idx = index(pc);
    bool predicted = table_[idx] >= 2;
    std::uint8_t &ctr = table_[idx];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    bool correct = predicted == taken;
    if (!correct)
        ++mispredicts_;
    return correct;
}

void
Gshare::flush()
{
    std::fill(table_.begin(), table_.end(), 2);
    history_ = 0;
}

IndirectPredictor::IndirectPredictor(unsigned log2_entries)
    : log2Entries_(log2_entries),
      table_(1u << log2_entries, 0)
{
}

std::uint32_t
IndirectPredictor::index(Addr pc) const
{
    return (pc >> 2) & ((1u << log2Entries_) - 1);
}

Addr
IndirectPredictor::predict(Addr pc) const
{
    return table_[index(pc)];
}

bool
IndirectPredictor::update(Addr pc, Addr target)
{
    std::uint32_t idx = index(pc);
    bool correct = table_[idx] == target;
    table_[idx] = target;
    return correct;
}

void
IndirectPredictor::flush()
{
    std::fill(table_.begin(), table_.end(), 0);
}

} // namespace visa
