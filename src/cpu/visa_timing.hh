/**
 * @file
 * The VISA pipeline timing model (paper §3.1): a six-stage scalar
 * in-order pipeline — fetch, decode, register read, execute, memory,
 * writeback — with:
 *   - a blocking I-cache in fetch (merged BTB: correctly-predicted taken
 *     branches redirect fetch with no bubble),
 *   - static backward-taken / forward-not-taken prediction; mispredicted
 *     branches and indirect jumps redirect fetch one cycle after the
 *     execute stage resolves them (four-cycle penalty),
 *   - a single unpipelined universal function unit occupying execute for
 *     the instruction's full latency,
 *   - a load-use interlock: an instruction depending on the load
 *     directly ahead of it stalls in register read until the load's
 *     memory stage completes,
 *   - a blocking memory stage (one outstanding miss).
 *
 * This single implementation is used by three clients: the simple-fixed
 * processor simulator, the complex processor's simple mode, and the
 * static WCET analyzer's pipeline evaluator. Sharing it makes the
 * "simple mode is as timely as the VISA" property structural.
 */

#ifndef VISA_CPU_VISA_TIMING_HH
#define VISA_CPU_VISA_TIMING_HH

#include <cstdint>

#include "sim/types.hh"

namespace visa
{

/** Per-instruction timing inputs for the VISA pipeline model. */
struct TimingRecord
{
    /** Execute-stage occupancy (universal FU latency). */
    Cycles exLatency = 1;
    /** I-cache miss penalty for this fetch (0 on hit). */
    Cycles imissPenalty = 0;
    /** D-cache miss penalty in the memory stage (0 on hit / non-mem). */
    Cycles dmissPenalty = 0;
    /**
     * True when this instruction has a RAW dependence on the
     * *immediately preceding* instruction and that instruction is a
     * load (the only register interlock in the VISA).
     */
    bool loadUseStall = false;
    /**
     * True when fetch must restart after this instruction executes:
     * mispredicted conditional branch, or any indirect jump (targets of
     * indirect branches are not predicted).
     */
    bool redirect = false;
};

/**
 * Incremental evaluator of the VISA pipeline recurrence. Feed committed
 * instructions in order; query cycle counts at any point. Copyable, so
 * the WCET analyzer can fork pipeline states when composing paths.
 */
class VisaTimer
{
  public:
    /** Reset to an empty pipeline at absolute cycle 0. */
    void
    reset()
    {
        fetchNext_ = 0;
        enterRrPrev_ = 0;
        enterExPrev_ = 0;
        enterMemPrev_ = 0;
        leaveMemPrev_ = 0;
        lastWb_ = 0;
        count_ = 0;
    }

    /** Advance the model by one committed instruction. */
    void
    consume(const TimingRecord &rec)
    {
        const std::int64_t fi = fetchNext_;
        const std::int64_t if_done =
            fi + 1 + static_cast<std::int64_t>(rec.imissPenalty);
        const std::int64_t enter_id = max2(if_done, enterRrPrev_);
        const std::int64_t enter_rr = max2(enter_id + 1, enterExPrev_);
        std::int64_t enter_ex = max2(enter_rr + 1, enterMemPrev_);
        if (rec.loadUseStall)
            enter_ex = max2(enter_ex, leaveMemPrev_);
        const std::int64_t leave_ex =
            enter_ex + static_cast<std::int64_t>(rec.exLatency);
        const std::int64_t enter_mem = max2(leave_ex, leaveMemPrev_);
        const std::int64_t leave_mem =
            enter_mem + 1 + static_cast<std::int64_t>(rec.dmissPenalty);

        fetchNext_ = rec.redirect ? leave_ex + 1 : enter_id;
        enterRrPrev_ = enter_rr;
        enterExPrev_ = enter_ex;
        enterMemPrev_ = enter_mem;
        leaveMemPrev_ = leave_mem;
        lastWb_ = leave_mem + 1;
        ++count_;
    }

    /**
     * Total cycles from pipeline start to the writeback of the last
     * consumed instruction (the drained-pipeline completion time).
     */
    Cycles totalCycles() const { return static_cast<Cycles>(lastWb_); }

    /** Memory-stage completion cycle of the last consumed instruction. */
    Cycles lastMemDone() const { return static_cast<Cycles>(leaveMemPrev_); }

    /** Number of instructions consumed since reset. */
    std::uint64_t instructions() const { return count_; }

  private:
    static std::int64_t max2(std::int64_t a, std::int64_t b)
    {
        return a > b ? a : b;
    }

    std::int64_t fetchNext_ = 0;
    std::int64_t enterRrPrev_ = 0;
    std::int64_t enterExPrev_ = 0;
    std::int64_t enterMemPrev_ = 0;
    std::int64_t leaveMemPrev_ = 0;
    std::int64_t lastWb_ = 0;
    std::uint64_t count_ = 0;
};

} // namespace visa

#endif // VISA_CPU_VISA_TIMING_HH
