/**
 * @file
 * Program-level disassembly: render an assembled Program back to
 * annotated text — synthesized labels at branch targets, sub-task
 * markers, loop bounds, and data-symbol cross references. Used by the
 * tooling examples and for debugging generated workloads.
 */

#ifndef VISA_ISA_DISASSEMBLER_HH
#define VISA_ISA_DISASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace visa
{

/** Options controlling the disassembly rendering. */
struct DisasmOptions
{
    bool showAddresses = true;     ///< prefix every line with its PC
    bool showEncodings = false;    ///< include the 32-bit word
    bool showAnnotations = true;   ///< .subtask / .loopbound comments
};

/** Render the whole text segment of @p prog. */
std::string disassembleProgram(const Program &prog,
                               const DisasmOptions &opts = {});

} // namespace visa

#endif // VISA_ISA_DISASSEMBLER_HH
