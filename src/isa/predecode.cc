#include "isa/predecode.hh"

namespace visa
{

namespace
{

/** True when @p op ends a straight-line run (or cannot be decoded). */
bool
endsBlock(Opcode op)
{
    const auto i = static_cast<std::size_t>(op);
    if (i >= detail::numOpcodeSlots)
        return true;    // undecodable word: executed, it panics
    switch (detail::classTable[i]) {
      case InstrClass::CondBranch:
      case InstrClass::DirectJump:
      case InstrClass::IndirectJump:
      case InstrClass::Halt:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

std::uint32_t
straightLineLength(const Instruction *text, std::size_t n, Addr base,
                   Addr start)
{
    const Addr off = start - base;    // wraps huge when start < base
    if (off >= static_cast<Addr>(n * 4) || (off & 3u) != 0)
        return 0;
    std::size_t i = off >> 2;
    std::uint32_t len = 0;
    for (; i < n; ++i) {
        ++len;
        if (endsBlock(text[i].op))
            break;
    }
    return len;
}

void
BlockMap::reset(std::size_t words)
{
    blocks_.clear();
    byWord_.assign(words, nullptr);
}

CodeBlock *
BlockMap::ensure(const Instruction *text, std::size_t n, Addr base,
                 Addr pc)
{
    const Addr off = pc - base;
    if (off >= static_cast<Addr>(n * 4) || (off & 3u) != 0)
        return nullptr;
    const std::size_t w = off >> 2;
    CodeBlock *&slot = byWord_[w];
    if (!slot) {
        blocks_.push_back(std::make_unique<CodeBlock>());
        slot = blocks_.back().get();
        slot->startPc = pc;
        slot->firstWord = static_cast<std::uint32_t>(w);
    }
    CodeBlock *b = slot;
    if (b->valid) {
        ++blockHits_;
        return b;
    }
    const std::uint32_t len = straightLineLength(text, n, base, pc);
    b->insts.clear();
    b->insts.reserve(len + 1);
    for (std::uint32_t k = 0; k < len; ++k) {
        const Instruction &in = text[w + k];
        PredecodedInst pi;
        pi.inst = in;
        pi.flags = detail::operandFlags(in.op);
        const auto oi = static_cast<std::size_t>(in.op);
        if (oi < detail::numOpcodeSlots) {
            pi.memBytes = detail::memBytesTable[oi];
            pi.cls = static_cast<std::uint8_t>(detail::classTable[oi]);
        } else {
            // Normalize any undecodable opcode to the sentinel so the
            // executor's dispatch tables can be indexed unguarded
            // (slots 0..NumOpcodes inclusive).
            pi.inst.op = Opcode::NumOpcodes;
        }
        b->insts.push_back(pi);
    }
    PredecodedInst sentinel;
    sentinel.inst.op = blockEndOpcode;
    b->insts.push_back(sentinel);
    b->count = len;
    b->valid = len > 0;
    b->chainFall = nullptr;
    b->chainTaken = nullptr;
    ++blocksDecoded_;
    instsDecoded_ += len;
    return b->valid ? b : nullptr;
}

void
BlockMap::invalidateWords(std::size_t lo, std::size_t hi)
{
    for (const auto &bp : blocks_) {
        CodeBlock *b = bp.get();
        if (!b->valid)
            continue;
        const std::size_t first = b->firstWord;
        const std::size_t last = first + b->count - 1;
        if (first <= hi && last >= lo) {
            b->valid = false;
            ++invalidations_;
        }
    }
}

} // namespace visa
