/**
 * @file
 * Functional (untimed) semantics of VPISA instructions, shared by the
 * in-order and out-of-order pipeline simulators. All helpers are pure,
 * and all are inline: they sit directly on the per-instruction path of
 * ExecCore::step, where the call overhead of an out-of-line switch is
 * measurable. The unreachable default branches funnel into an
 * out-of-line [[noreturn]] helper so the fast path stays small.
 */

#ifndef VISA_ISA_SEMANTICS_HH
#define VISA_ISA_SEMANTICS_HH

#include <cmath>
#include <cstdint>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace visa
{

/** Outcome of evaluating a control instruction. */
struct ControlEval
{
    bool taken = false;     ///< jumps are always taken
    Addr target = 0;        ///< destination when taken
};

namespace detail
{
/** Report an opcode outside @p who's class (panics). */
[[noreturn]] void badSemantics(const char *who, Opcode op);
} // namespace detail

/**
 * Evaluate an integer ALU operation (including LUI and immediate
 * shifts). Division by zero yields 0 (the ISA defines it so, keeping
 * the simulator free of host UB).
 */
inline Word
evalIntAlu(const Instruction &inst, Word rs_val, Word rt_val)
{
    const auto s = static_cast<std::int32_t>(rs_val);
    const auto t = static_cast<std::int32_t>(rt_val);
    const auto imm = inst.imm;
    switch (inst.op) {
      case Opcode::ADD:   return rs_val + rt_val;
      case Opcode::SUB:   return rs_val - rt_val;
      case Opcode::MUL:
        return static_cast<Word>(static_cast<std::int64_t>(s) * t);
      case Opcode::DIV:
        if (t == 0)
            return 0;
        if (s == INT32_MIN && t == -1)
            return static_cast<Word>(INT32_MIN);
        return static_cast<Word>(s / t);
      case Opcode::REM:
        if (t == 0)
            return 0;
        if (s == INT32_MIN && t == -1)
            return 0;
        return static_cast<Word>(s % t);
      case Opcode::AND:   return rs_val & rt_val;
      case Opcode::OR:    return rs_val | rt_val;
      case Opcode::XOR:   return rs_val ^ rt_val;
      case Opcode::NOR:   return ~(rs_val | rt_val);
      case Opcode::SLT:   return s < t ? 1 : 0;
      case Opcode::SLTU:  return rs_val < rt_val ? 1 : 0;
      case Opcode::SLLV:  return rs_val << (rt_val & 31);
      case Opcode::SRLV:  return rs_val >> (rt_val & 31);
      case Opcode::SRAV:
        return static_cast<Word>(s >> (rt_val & 31));
      case Opcode::SLL:   return rs_val << (imm & 31);
      case Opcode::SRL:   return rs_val >> (imm & 31);
      case Opcode::SRA:   return static_cast<Word>(s >> (imm & 31));
      case Opcode::ADDI:  return rs_val + static_cast<Word>(imm);
      case Opcode::ANDI:  return rs_val & (static_cast<Word>(imm) & 0xFFFF);
      case Opcode::ORI:   return rs_val | (static_cast<Word>(imm) & 0xFFFF);
      case Opcode::XORI:  return rs_val ^ (static_cast<Word>(imm) & 0xFFFF);
      case Opcode::SLTI:  return s < imm ? 1 : 0;
      case Opcode::SLTIU:
        return rs_val < static_cast<Word>(imm) ? 1 : 0;
      case Opcode::LUI:
        return static_cast<Word>(imm) << 16;
      default:
        detail::badSemantics("evalIntAlu", inst.op);
    }
}

/** Evaluate a two-source double-precision FP operation. */
inline double
evalFpAlu(const Instruction &inst, double a, double b)
{
    switch (inst.op) {
      case Opcode::ADD_D: return a + b;
      case Opcode::SUB_D: return a - b;
      case Opcode::MUL_D: return a * b;
      case Opcode::DIV_D: return a / b;
      case Opcode::NEG_D: return -a;
      case Opcode::ABS_D: return std::fabs(a);
      case Opcode::MOV_D: return a;
      default:
        detail::badSemantics("evalFpAlu", inst.op);
    }
}

/** Evaluate an FP compare; @return the new FCC value. */
inline bool
evalFpCmp(const Instruction &inst, double a, double b)
{
    switch (inst.op) {
      case Opcode::C_EQ_D: return a == b;
      case Opcode::C_LT_D: return a < b;
      case Opcode::C_LE_D: return a <= b;
      default:
        detail::badSemantics("evalFpCmp", inst.op);
    }
}

/**
 * Evaluate a control instruction at @p pc.
 * @param rs_val first source value (JR/JALR target, branch operand)
 * @param rt_val second source value (BEQ/BNE)
 * @param fcc    current FP condition code (BC1T/BC1F)
 */
inline ControlEval
evalControl(const Instruction &inst, Addr pc,
            Word rs_val, Word rt_val, bool fcc)
{
    const auto s = static_cast<std::int32_t>(rs_val);
    ControlEval ev;
    ev.target = static_cast<Addr>(inst.imm);
    switch (inst.op) {
      case Opcode::BEQ:  ev.taken = rs_val == rt_val; break;
      case Opcode::BNE:  ev.taken = rs_val != rt_val; break;
      case Opcode::BLEZ: ev.taken = s <= 0; break;
      case Opcode::BGTZ: ev.taken = s > 0; break;
      case Opcode::BLTZ: ev.taken = s < 0; break;
      case Opcode::BGEZ: ev.taken = s >= 0; break;
      case Opcode::BC1T: ev.taken = fcc; break;
      case Opcode::BC1F: ev.taken = !fcc; break;
      case Opcode::J: case Opcode::JAL:
        ev.taken = true;
        break;
      case Opcode::JR: case Opcode::JALR:
        ev.taken = true;
        ev.target = rs_val;
        break;
      default:
        detail::badSemantics("evalControl", inst.op);
    }
    if (!ev.taken)
        ev.target = pc + 4;
    return ev;
}

/** Effective address of a memory instruction. */
inline Addr
effectiveAddr(const Instruction &inst, Word base_val)
{
    return base_val + static_cast<Word>(inst.imm);
}

/** Sign/zero-extend a raw loaded value per the load opcode. */
inline Word
extendLoad(Opcode op, Word raw)
{
    switch (op) {
      case Opcode::LB:
        return static_cast<Word>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(raw & 0xFF)));
      case Opcode::LBU:
        return raw & 0xFF;
      case Opcode::LH:
        return static_cast<Word>(static_cast<std::int32_t>(
            static_cast<std::int16_t>(raw & 0xFFFF)));
      case Opcode::LHU:
        return raw & 0xFFFF;
      case Opcode::LW:
        return raw;
      default:
        detail::badSemantics("extendLoad", op);
    }
}

} // namespace visa

#endif // VISA_ISA_SEMANTICS_HH
