/**
 * @file
 * Functional (untimed) semantics of VPISA instructions, shared by the
 * in-order and out-of-order pipeline simulators. All helpers are pure.
 */

#ifndef VISA_ISA_SEMANTICS_HH
#define VISA_ISA_SEMANTICS_HH

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace visa
{

/** Outcome of evaluating a control instruction. */
struct ControlEval
{
    bool taken = false;     ///< jumps are always taken
    Addr target = 0;        ///< destination when taken
};

/**
 * Evaluate an integer ALU operation (including LUI and immediate
 * shifts). Division by zero yields 0 (the ISA defines it so, keeping
 * the simulator free of host UB).
 */
Word evalIntAlu(const Instruction &inst, Word rs_val, Word rt_val);

/** Evaluate a two-source double-precision FP operation. */
double evalFpAlu(const Instruction &inst, double a, double b);

/** Evaluate an FP compare; @return the new FCC value. */
bool evalFpCmp(const Instruction &inst, double a, double b);

/**
 * Evaluate a control instruction at @p pc.
 * @param rs_val first source value (JR/JALR target, branch operand)
 * @param rt_val second source value (BEQ/BNE)
 * @param fcc    current FP condition code (BC1T/BC1F)
 */
ControlEval evalControl(const Instruction &inst, Addr pc,
                        Word rs_val, Word rt_val, bool fcc);

/** Effective address of a memory instruction. */
inline Addr
effectiveAddr(const Instruction &inst, Word base_val)
{
    return base_val + static_cast<Word>(inst.imm);
}

/** Sign/zero-extend a raw loaded value per the load opcode. */
Word extendLoad(Opcode op, Word raw);

} // namespace visa

#endif // VISA_ISA_SEMANTICS_HH
