/**
 * @file
 * A two-pass assembler for VPISA text.
 *
 * Supported syntax (one statement per line, '#' or ';' comments):
 *
 *   label:    addi r4, r0, 100
 *             lw   r5, 12(r4)
 *             beq  r4, r5, done
 *             .data
 *   arr:      .word 1, 2, 3
 *   buf:      .space 256
 *   tw:       .double 0.5, -1.25
 *
 * Directives: .text .data .word .half .byte .space .double .align
 *             .global (ignored) .entry <label>
 *             .loopbound <N>   -- attaches to the next text instruction,
 *                                 which must be the loop's back-edge
 *                                 branch; N bounds body iterations per
 *                                 loop entry
 *             .subtask <K>     -- next instruction starts sub-task K
 *
 * Pseudo-instructions: li, la, move, b, blt/bge/bgt/ble (via r1=at),
 * subi, neg, not.
 */

#ifndef VISA_ISA_ASSEMBLER_HH
#define VISA_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace visa
{

/**
 * Assemble @p source into a loadable Program.
 *
 * @param source full assembly text
 * @param text_base base address for the text segment
 * @param data_base base address for the data segment
 * @return the assembled program (entry defaults to the first text
 *         instruction, or the .entry label if given)
 *
 * Errors (unknown mnemonic, bad operand, undefined symbol, immediate
 * overflow) raise FatalError with the offending line number.
 */
Program assemble(const std::string &source,
                 Addr text_base = defaultTextBase,
                 Addr data_base = defaultDataBase);

} // namespace visa

#endif // VISA_ISA_ASSEMBLER_HH
