#include "isa/assembler.hh"

#include <cctype>
#include <cstring>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "isa/encoding.hh"
#include "sim/logging.hh"

namespace visa
{

namespace
{

/** How an immediate/operand is resolved in pass 2. */
struct ImmSpec
{
    enum Kind { None, Literal, Symbol, SymbolHi, SymbolLo } kind = None;
    std::int64_t value = 0;     ///< literal value or symbol addend
    std::string symbol;
};

/** An instruction awaiting symbol resolution. */
struct ProtoInst
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0, rs = 0, rt = 0;
    ImmSpec imm;
    int line = 0;
};

/** A pending fixup in the data segment (e.g. .word label). */
struct DataFixup
{
    std::size_t offset;         ///< byte offset in the data vector
    std::string symbol;
    std::int64_t addend;
    int line;
};

[[noreturn]] void
asmError(int line, const std::string &msg)
{
    fatal("assembler: line %d: %s", line, msg.c_str());
}

/** Split a statement into comma/whitespace-separated operand tokens. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty()) { out.push_back(cur); cur.clear(); }
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) { out.push_back(cur); cur.clear(); }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Parse a register token; returns {isFp, index} or nullopt. */
std::optional<std::pair<bool, int>>
parseReg(const std::string &tok)
{
    static const std::unordered_map<std::string, int> aliases = {
        {"zero", 0}, {"at", 1}, {"gp", 28}, {"sp", 29},
        {"fp", 30}, {"ra", 31},
    };
    auto a = aliases.find(tok);
    if (a != aliases.end())
        return {{false, a->second}};
    if (tok.size() >= 2 && (tok[0] == 'r' || tok[0] == 'f')) {
        bool all_digits = true;
        for (std::size_t i = 1; i < tok.size(); ++i)
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                all_digits = false;
        if (all_digits) {
            int idx = std::stoi(tok.substr(1));
            if (idx >= 0 && idx < 32)
                return {{tok[0] == 'f', idx}};
        }
    }
    return std::nullopt;
}

bool
isIntLiteral(const std::string &tok)
{
    if (tok.empty())
        return false;
    std::size_t i = (tok[0] == '-' || tok[0] == '+') ? 1 : 0;
    if (i >= tok.size())
        return false;
    if (tok.size() > i + 2 && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
        for (std::size_t k = i + 2; k < tok.size(); ++k)
            if (!std::isxdigit(static_cast<unsigned char>(tok[k])))
                return false;
        return true;
    }
    for (std::size_t k = i; k < tok.size(); ++k)
        if (!std::isdigit(static_cast<unsigned char>(tok[k])))
            return false;
    return true;
}

std::int64_t
parseIntLiteral(const std::string &tok, int line)
{
    try {
        return std::stoll(tok, nullptr, 0);
    } catch (...) {
        asmError(line, "bad integer literal '" + tok + "'");
    }
}

/** Parse an immediate operand: literal, %hi(sym), %lo(sym), or symbol. */
ImmSpec
parseImm(const std::string &tok, int line)
{
    ImmSpec spec;
    if (isIntLiteral(tok)) {
        spec.kind = ImmSpec::Literal;
        spec.value = parseIntLiteral(tok, line);
        return spec;
    }
    auto wrapped = [&](const char *prefix) -> std::optional<std::string> {
        std::size_t n = std::strlen(prefix);
        if (tok.size() > n + 1 && tok.compare(0, n, prefix) == 0 &&
            tok[n] == '(' && tok.back() == ')') {
            return tok.substr(n + 1, tok.size() - n - 2);
        }
        return std::nullopt;
    };
    if (auto s = wrapped("%hi")) {
        spec.kind = ImmSpec::SymbolHi;
        spec.symbol = *s;
        return spec;
    }
    if (auto s = wrapped("%lo")) {
        spec.kind = ImmSpec::SymbolLo;
        spec.symbol = *s;
        return spec;
    }
    // symbol, optionally with +addend
    auto plus = tok.find('+');
    spec.kind = ImmSpec::Symbol;
    if (plus != std::string::npos) {
        spec.symbol = tok.substr(0, plus);
        spec.value = parseIntLiteral(tok.substr(plus + 1), line);
    } else {
        spec.symbol = tok;
    }
    return spec;
}

/** Parse "off(base)" memory operand. @return {imm, baseReg}. */
std::pair<ImmSpec, int>
parseMemOperand(const std::string &tok, int line)
{
    auto open = tok.rfind('(');
    if (open == std::string::npos || tok.back() != ')')
        asmError(line, "bad memory operand '" + tok + "'");
    std::string off = tok.substr(0, open);
    std::string base = tok.substr(open + 1, tok.size() - open - 2);
    auto breg = parseReg(base);
    if (!breg || breg->first)
        asmError(line, "bad base register in '" + tok + "'");
    ImmSpec imm;
    if (off.empty()) {
        imm.kind = ImmSpec::Literal;
        imm.value = 0;
    } else {
        imm = parseImm(off, line);
    }
    return {imm, breg->second};
}

/** The assembler state machine. */
class Assembler
{
  public:
    Assembler(Addr text_base, Addr data_base)
    {
        prog.textBase = text_base;
        prog.dataBase = data_base;
        prog.entry = text_base;
    }

    Program run(const std::string &source);

  private:
    void processLine(std::string line);
    void directive(const std::string &dir, const std::string &rest);
    void instruction(const std::string &mnem,
                     const std::vector<std::string> &ops);
    void emit(ProtoInst pi);
    void resolve();

    int intReg(const std::string &tok);
    int fpReg(const std::string &tok);

    Addr curTextAddr() const
    {
        return prog.textBase + static_cast<Addr>(protos.size() * 4);
    }

    Program prog;
    std::vector<ProtoInst> protos;
    std::vector<DataFixup> dataFixups;
    bool inText = true;
    int lineNo = 0;
    std::optional<std::uint64_t> pendingLoopBound;
    std::optional<int> pendingSubtask;
    std::string entryLabel;
};

int
Assembler::intReg(const std::string &tok)
{
    auto r = parseReg(tok);
    if (!r || r->first)
        asmError(lineNo, "expected integer register, got '" + tok + "'");
    return r->second;
}

int
Assembler::fpReg(const std::string &tok)
{
    auto r = parseReg(tok);
    if (!r || !r->first)
        asmError(lineNo, "expected FP register, got '" + tok + "'");
    return r->second;
}

void
Assembler::emit(ProtoInst pi)
{
    pi.line = lineNo;
    if (pendingLoopBound) {
        prog.loopBounds[curTextAddr()] = *pendingLoopBound;
        pendingLoopBound.reset();
    }
    if (pendingSubtask) {
        prog.subtaskStarts[curTextAddr()] = *pendingSubtask;
        pendingSubtask.reset();
    }
    protos.push_back(std::move(pi));
}

void
Assembler::directive(const std::string &dir, const std::string &rest)
{
    auto ops = splitOperands(rest);
    if (dir == ".text") {
        inText = true;
    } else if (dir == ".data") {
        inText = false;
    } else if (dir == ".global") {
        // accepted and ignored
    } else if (dir == ".entry") {
        if (ops.size() != 1)
            asmError(lineNo, ".entry needs one label");
        entryLabel = ops[0];
    } else if (dir == ".equ") {
        // .equ NAME, VALUE — an absolute symbol usable anywhere a
        // symbol operand is (immediates, %hi/%lo, .word).
        if (ops.size() != 2 || !isIntLiteral(ops[1]))
            asmError(lineNo, ".equ needs a name and an integer");
        if (prog.symbols.count(ops[0]))
            asmError(lineNo, "duplicate symbol '" + ops[0] + "'");
        prog.symbols[ops[0]] =
            static_cast<Addr>(parseIntLiteral(ops[1], lineNo));
    } else if (dir == ".loopbound") {
        if (ops.size() != 1 || !isIntLiteral(ops[0]))
            asmError(lineNo, ".loopbound needs one integer");
        pendingLoopBound = static_cast<std::uint64_t>(
            parseIntLiteral(ops[0], lineNo));
    } else if (dir == ".subtask") {
        if (ops.size() != 1 || !isIntLiteral(ops[0]))
            asmError(lineNo, ".subtask needs one integer");
        pendingSubtask = static_cast<int>(parseIntLiteral(ops[0], lineNo));
    } else if (dir == ".word" || dir == ".half" || dir == ".byte") {
        if (inText)
            asmError(lineNo, dir + " only allowed in .data");
        int width = dir == ".word" ? 4 : dir == ".half" ? 2 : 1;
        for (const auto &tok : ops) {
            if (isIntLiteral(tok)) {
                std::int64_t v = parseIntLiteral(tok, lineNo);
                for (int b = 0; b < width; ++b)
                    prog.data.push_back(
                        static_cast<std::uint8_t>((v >> (8 * b)) & 0xFF));
            } else {
                if (width != 4)
                    asmError(lineNo, "symbol data must be .word");
                ImmSpec s = parseImm(tok, lineNo);
                dataFixups.push_back(
                    {prog.data.size(), s.symbol, s.value, lineNo});
                for (int b = 0; b < 4; ++b)
                    prog.data.push_back(0);
            }
        }
    } else if (dir == ".double") {
        if (inText)
            asmError(lineNo, ".double only allowed in .data");
        for (const auto &tok : ops) {
            double d;
            try {
                d = std::stod(tok);
            } catch (...) {
                asmError(lineNo, "bad double literal '" + tok + "'");
            }
            std::uint64_t bits;
            std::memcpy(&bits, &d, 8);
            for (int b = 0; b < 8; ++b)
                prog.data.push_back(
                    static_cast<std::uint8_t>((bits >> (8 * b)) & 0xFF));
        }
    } else if (dir == ".ascii" || dir == ".asciz") {
        if (inText)
            asmError(lineNo, dir + " only allowed in .data");
        // The operand is everything between the first and last quote.
        auto first = rest.find('"');
        auto last = rest.rfind('"');
        if (first == std::string::npos || last <= first)
            asmError(lineNo, dir + " needs a double-quoted string");
        std::string text = rest.substr(first + 1, last - first - 1);
        for (std::size_t i = 0; i < text.size(); ++i) {
            char c = text[i];
            if (c == '\\' && i + 1 < text.size()) {
                char e = text[++i];
                c = e == 'n' ? '\n' : e == 't' ? '\t' : e == '0' ? '\0'
                                                                 : e;
            }
            prog.data.push_back(static_cast<std::uint8_t>(c));
        }
        if (dir == ".asciz")
            prog.data.push_back(0);
    } else if (dir == ".space") {
        if (inText)
            asmError(lineNo, ".space only allowed in .data");
        if (ops.size() != 1 || !isIntLiteral(ops[0]))
            asmError(lineNo, ".space needs one integer");
        std::int64_t n = parseIntLiteral(ops[0], lineNo);
        prog.data.insert(prog.data.end(), static_cast<std::size_t>(n), 0);
    } else if (dir == ".align") {
        if (ops.size() != 1 || !isIntLiteral(ops[0]))
            asmError(lineNo, ".align needs one integer");
        std::size_t align = 1ULL << parseIntLiteral(ops[0], lineNo);
        if (inText) {
            while ((protos.size() * 4) % align != 0)
                emit(ProtoInst{Opcode::NOP, 0, 0, 0, {}, lineNo});
        } else {
            while (prog.data.size() % align != 0)
                prog.data.push_back(0);
        }
    } else {
        asmError(lineNo, "unknown directive '" + dir + "'");
    }
}

void
Assembler::instruction(const std::string &mnem,
                       const std::vector<std::string> &ops)
{
    auto need = [&](std::size_t n) {
        if (ops.size() != n) {
            asmError(lineNo, mnem + " expects " + std::to_string(n) +
                             " operands, got " + std::to_string(ops.size()));
        }
    };
    auto rrr = [&](Opcode o) {
        need(3);
        ProtoInst p;
        p.op = o;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(intReg(ops[1]));
        p.rt = static_cast<std::uint8_t>(intReg(ops[2]));
        emit(p);
    };
    auto shiftImm = [&](Opcode o) {
        need(3);
        ProtoInst p;
        p.op = o;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(intReg(ops[1]));
        p.imm = parseImm(ops[2], lineNo);
        emit(p);
    };
    auto ialu = [&](Opcode o) {
        need(3);
        ProtoInst p;
        p.op = o;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(intReg(ops[1]));
        p.imm = parseImm(ops[2], lineNo);
        emit(p);
    };
    auto mem = [&](Opcode o, bool is_store, bool is_fp) {
        need(2);
        ProtoInst p;
        p.op = o;
        int dreg = is_fp ? fpReg(ops[0]) : intReg(ops[0]);
        auto [imm, base] = parseMemOperand(ops[1], lineNo);
        p.imm = imm;
        p.rs = static_cast<std::uint8_t>(base);
        if (is_store)
            p.rt = static_cast<std::uint8_t>(dreg);
        else
            p.rd = static_cast<std::uint8_t>(dreg);
        emit(p);
    };
    auto br2 = [&](Opcode o) {
        need(3);
        ProtoInst p;
        p.op = o;
        p.rs = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rt = static_cast<std::uint8_t>(intReg(ops[1]));
        p.imm = parseImm(ops[2], lineNo);
        emit(p);
    };
    auto br1 = [&](Opcode o) {
        need(2);
        ProtoInst p;
        p.op = o;
        p.rs = static_cast<std::uint8_t>(intReg(ops[0]));
        p.imm = parseImm(ops[1], lineNo);
        emit(p);
    };
    auto brf = [&](Opcode o) {
        need(1);
        ProtoInst p;
        p.op = o;
        p.imm = parseImm(ops[0], lineNo);
        emit(p);
    };
    auto f3 = [&](Opcode o) {
        need(3);
        ProtoInst p;
        p.op = o;
        p.rd = static_cast<std::uint8_t>(fpReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(fpReg(ops[1]));
        p.rt = static_cast<std::uint8_t>(fpReg(ops[2]));
        emit(p);
    };
    auto f2 = [&](Opcode o) {
        need(2);
        ProtoInst p;
        p.op = o;
        p.rd = static_cast<std::uint8_t>(fpReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(fpReg(ops[1]));
        emit(p);
    };
    auto fcmp = [&](Opcode o) {
        need(2);
        ProtoInst p;
        p.op = o;
        p.rs = static_cast<std::uint8_t>(fpReg(ops[0]));
        p.rt = static_cast<std::uint8_t>(fpReg(ops[1]));
        emit(p);
    };
    // Pseudo-instruction helper: cmp+branch via the at register.
    auto cmpBranch = [&](bool swap, Opcode br) {
        need(3);
        ProtoInst cmp;
        cmp.op = Opcode::SLT;
        cmp.rd = reg::at;
        cmp.rs = static_cast<std::uint8_t>(intReg(swap ? ops[1] : ops[0]));
        cmp.rt = static_cast<std::uint8_t>(intReg(swap ? ops[0] : ops[1]));
        emit(cmp);
        ProtoInst b;
        b.op = br;
        b.rs = reg::at;
        b.rt = reg::zero;
        b.imm = parseImm(ops[2], lineNo);
        emit(b);
    };

    if (mnem == "add") rrr(Opcode::ADD);
    else if (mnem == "sub") rrr(Opcode::SUB);
    else if (mnem == "mul") rrr(Opcode::MUL);
    else if (mnem == "div") rrr(Opcode::DIV);
    else if (mnem == "rem") rrr(Opcode::REM);
    else if (mnem == "and") rrr(Opcode::AND);
    else if (mnem == "or") rrr(Opcode::OR);
    else if (mnem == "xor") rrr(Opcode::XOR);
    else if (mnem == "nor") rrr(Opcode::NOR);
    else if (mnem == "slt") rrr(Opcode::SLT);
    else if (mnem == "sltu") rrr(Opcode::SLTU);
    else if (mnem == "sllv") rrr(Opcode::SLLV);
    else if (mnem == "srlv") rrr(Opcode::SRLV);
    else if (mnem == "srav") rrr(Opcode::SRAV);
    else if (mnem == "sll") shiftImm(Opcode::SLL);
    else if (mnem == "srl") shiftImm(Opcode::SRL);
    else if (mnem == "sra") shiftImm(Opcode::SRA);
    else if (mnem == "addi") ialu(Opcode::ADDI);
    else if (mnem == "andi") ialu(Opcode::ANDI);
    else if (mnem == "ori") ialu(Opcode::ORI);
    else if (mnem == "xori") ialu(Opcode::XORI);
    else if (mnem == "slti") ialu(Opcode::SLTI);
    else if (mnem == "sltiu") ialu(Opcode::SLTIU);
    else if (mnem == "lui") {
        need(2);
        ProtoInst p;
        p.op = Opcode::LUI;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.imm = parseImm(ops[1], lineNo);
        emit(p);
    }
    else if (mnem == "lb") mem(Opcode::LB, false, false);
    else if (mnem == "lbu") mem(Opcode::LBU, false, false);
    else if (mnem == "lh") mem(Opcode::LH, false, false);
    else if (mnem == "lhu") mem(Opcode::LHU, false, false);
    else if (mnem == "lw") mem(Opcode::LW, false, false);
    else if (mnem == "ldc1" || mnem == "l.d") mem(Opcode::LDC1, false, true);
    else if (mnem == "sb") mem(Opcode::SB, true, false);
    else if (mnem == "sh") mem(Opcode::SH, true, false);
    else if (mnem == "sw") mem(Opcode::SW, true, false);
    else if (mnem == "sdc1" || mnem == "s.d") mem(Opcode::SDC1, true, true);
    else if (mnem == "beq") br2(Opcode::BEQ);
    else if (mnem == "bne") br2(Opcode::BNE);
    else if (mnem == "blez") br1(Opcode::BLEZ);
    else if (mnem == "bgtz") br1(Opcode::BGTZ);
    else if (mnem == "bltz") br1(Opcode::BLTZ);
    else if (mnem == "bgez") br1(Opcode::BGEZ);
    else if (mnem == "bc1t") brf(Opcode::BC1T);
    else if (mnem == "bc1f") brf(Opcode::BC1F);
    else if (mnem == "j") {
        need(1);
        ProtoInst p;
        p.op = Opcode::J;
        p.imm = parseImm(ops[0], lineNo);
        emit(p);
    }
    else if (mnem == "jal") {
        need(1);
        ProtoInst p;
        p.op = Opcode::JAL;
        p.imm = parseImm(ops[0], lineNo);
        emit(p);
    }
    else if (mnem == "jr") {
        need(1);
        ProtoInst p;
        p.op = Opcode::JR;
        p.rs = static_cast<std::uint8_t>(intReg(ops[0]));
        emit(p);
    }
    else if (mnem == "jalr") {
        ProtoInst p;
        p.op = Opcode::JALR;
        if (ops.size() == 1) {
            p.rd = reg::ra;
            p.rs = static_cast<std::uint8_t>(intReg(ops[0]));
        } else {
            need(2);
            p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
            p.rs = static_cast<std::uint8_t>(intReg(ops[1]));
        }
        emit(p);
    }
    else if (mnem == "add.d") f3(Opcode::ADD_D);
    else if (mnem == "sub.d") f3(Opcode::SUB_D);
    else if (mnem == "mul.d") f3(Opcode::MUL_D);
    else if (mnem == "div.d") f3(Opcode::DIV_D);
    else if (mnem == "neg.d") f2(Opcode::NEG_D);
    else if (mnem == "abs.d") f2(Opcode::ABS_D);
    else if (mnem == "mov.d") f2(Opcode::MOV_D);
    else if (mnem == "cvt.d.w") {
        need(2);
        ProtoInst p;
        p.op = Opcode::CVT_D_W;
        p.rd = static_cast<std::uint8_t>(fpReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(intReg(ops[1]));
        emit(p);
    }
    else if (mnem == "cvt.w.d") {
        need(2);
        ProtoInst p;
        p.op = Opcode::CVT_W_D;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(fpReg(ops[1]));
        emit(p);
    }
    else if (mnem == "c.eq.d") fcmp(Opcode::C_EQ_D);
    else if (mnem == "c.lt.d") fcmp(Opcode::C_LT_D);
    else if (mnem == "c.le.d") fcmp(Opcode::C_LE_D);
    else if (mnem == "nop") {
        need(0);
        emit(ProtoInst{});
    }
    else if (mnem == "halt") {
        need(0);
        ProtoInst p;
        p.op = Opcode::HALT;
        emit(p);
    }
    // ---- pseudo-instructions ----
    else if (mnem == "li") {
        need(2);
        int rd = intReg(ops[0]);
        if (!isIntLiteral(ops[1]))
            asmError(lineNo, "li needs a literal (use la for symbols)");
        std::int64_t v = parseIntLiteral(ops[1], lineNo);
        if (v >= -32768 && v <= 32767) {
            ProtoInst p;
            p.op = Opcode::ADDI;
            p.rd = static_cast<std::uint8_t>(rd);
            p.rs = reg::zero;
            p.imm = {ImmSpec::Literal, v, {}};
            emit(p);
        } else {
            ProtoInst hi;
            hi.op = Opcode::LUI;
            hi.rd = static_cast<std::uint8_t>(rd);
            hi.imm = {ImmSpec::Literal, (v >> 16) & 0xFFFF, {}};
            emit(hi);
            if ((v & 0xFFFF) != 0) {
                ProtoInst lo;
                lo.op = Opcode::ORI;
                lo.rd = static_cast<std::uint8_t>(rd);
                lo.rs = static_cast<std::uint8_t>(rd);
                lo.imm = {ImmSpec::Literal, v & 0xFFFF, {}};
                emit(lo);
            }
        }
    }
    else if (mnem == "la") {
        need(2);
        int rd = intReg(ops[0]);
        ImmSpec s = parseImm(ops[1], lineNo);
        if (s.kind != ImmSpec::Symbol)
            asmError(lineNo, "la needs a symbol operand");
        ProtoInst hi;
        hi.op = Opcode::LUI;
        hi.rd = static_cast<std::uint8_t>(rd);
        hi.imm = s;
        hi.imm.kind = ImmSpec::SymbolHi;
        emit(hi);
        ProtoInst lo;
        lo.op = Opcode::ORI;
        lo.rd = static_cast<std::uint8_t>(rd);
        lo.rs = static_cast<std::uint8_t>(rd);
        lo.imm = s;
        lo.imm.kind = ImmSpec::SymbolLo;
        emit(lo);
    }
    else if (mnem == "move") {
        need(2);
        ProtoInst p;
        p.op = Opcode::OR;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(intReg(ops[1]));
        p.rt = reg::zero;
        emit(p);
    }
    else if (mnem == "b") {
        need(1);
        ProtoInst p;
        p.op = Opcode::BEQ;
        p.rs = reg::zero;
        p.rt = reg::zero;
        p.imm = parseImm(ops[0], lineNo);
        emit(p);
    }
    else if (mnem == "blt") cmpBranch(false, Opcode::BNE);
    else if (mnem == "bge") cmpBranch(false, Opcode::BEQ);
    else if (mnem == "bgt") cmpBranch(true, Opcode::BNE);
    else if (mnem == "ble") cmpBranch(true, Opcode::BEQ);
    else if (mnem == "subi") {
        need(3);
        ProtoInst p;
        p.op = Opcode::ADDI;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(intReg(ops[1]));
        p.imm = parseImm(ops[2], lineNo);
        if (p.imm.kind != ImmSpec::Literal)
            asmError(lineNo, "subi needs a literal");
        p.imm.value = -p.imm.value;
        emit(p);
    }
    else if (mnem == "neg") {
        need(2);
        ProtoInst p;
        p.op = Opcode::SUB;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rs = reg::zero;
        p.rt = static_cast<std::uint8_t>(intReg(ops[1]));
        emit(p);
    }
    else if (mnem == "not") {
        need(2);
        ProtoInst p;
        p.op = Opcode::NOR;
        p.rd = static_cast<std::uint8_t>(intReg(ops[0]));
        p.rs = static_cast<std::uint8_t>(intReg(ops[1]));
        p.rt = reg::zero;
        emit(p);
    }
    else {
        asmError(lineNo, "unknown mnemonic '" + mnem + "'");
    }
}

void
Assembler::processLine(std::string line)
{
    // Strip comments.
    for (char c : {'#', ';'}) {
        auto pos = line.find(c);
        if (pos != std::string::npos)
            line = line.substr(0, pos);
    }
    // Leading label(s).
    for (;;) {
        std::size_t i = 0;
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        std::size_t j = i;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '_' || line[j] == '.'))
            ++j;
        if (j > i && j < line.size() && line[j] == ':' && line[i] != '.') {
            std::string label = line.substr(i, j - i);
            if (prog.symbols.count(label))
                asmError(lineNo, "duplicate label '" + label + "'");
            Addr addr = inText
                ? curTextAddr()
                : prog.dataBase + static_cast<Addr>(prog.data.size());
            prog.symbols[label] = addr;
            line = line.substr(j + 1);
        } else {
            break;
        }
    }
    // Statement.
    std::istringstream ss(line);
    std::string head;
    if (!(ss >> head))
        return;
    std::string rest;
    std::getline(ss, rest);
    if (head[0] == '.') {
        directive(head, rest);
    } else {
        if (!inText)
            asmError(lineNo, "instruction in .data segment");
        instruction(head, splitOperands(rest));
    }
}

void
Assembler::resolve()
{
    auto symAddr = [&](const std::string &name, int line) -> Addr {
        auto it = prog.symbols.find(name);
        if (it == prog.symbols.end())
            asmError(line, "undefined symbol '" + name + "'");
        return it->second;
    };

    prog.text.reserve(protos.size());
    prog.words.reserve(protos.size());
    for (std::size_t i = 0; i < protos.size(); ++i) {
        const ProtoInst &p = protos[i];
        Addr pc = prog.textBase + static_cast<Addr>(i * 4);
        Instruction inst;
        inst.op = p.op;
        inst.rd = p.rd;
        inst.rs = p.rs;
        inst.rt = p.rt;
        std::int64_t v = 0;
        switch (p.imm.kind) {
          case ImmSpec::None:
            break;
          case ImmSpec::Literal:
            v = p.imm.value;
            break;
          case ImmSpec::Symbol:
            v = static_cast<std::int64_t>(symAddr(p.imm.symbol, p.line)) +
                p.imm.value;
            break;
          case ImmSpec::SymbolHi:
            v = (symAddr(p.imm.symbol, p.line) + p.imm.value) >> 16;
            break;
          case ImmSpec::SymbolLo:
            v = (symAddr(p.imm.symbol, p.line) + p.imm.value) & 0xFFFF;
            break;
        }
        inst.imm = static_cast<std::int32_t>(v);
        // Range checks for plain immediates (branch ranges are checked
        // by the encoder, which sees absolute targets).
        if (!inst.isControl() && p.imm.kind == ImmSpec::Literal) {
            bool unsigned_imm = inst.op == Opcode::ANDI ||
                                inst.op == Opcode::ORI ||
                                inst.op == Opcode::XORI ||
                                inst.op == Opcode::LUI;
            if (unsigned_imm) {
                if (v < 0 || v > 0xFFFF)
                    asmError(p.line, "immediate out of unsigned-16 range");
            } else if (inst.op == Opcode::SLL || inst.op == Opcode::SRL ||
                       inst.op == Opcode::SRA) {
                if (v < 0 || v > 31)
                    asmError(p.line, "shift amount out of range");
            } else if (v < -32768 || v > 32767) {
                asmError(p.line, "immediate out of signed-16 range");
            }
        }
        prog.text.push_back(inst);
        prog.words.push_back(encode(inst, pc));
    }

    for (const auto &fix : dataFixups) {
        Addr v = symAddr(fix.symbol, fix.line) +
                 static_cast<Addr>(fix.addend);
        for (int b = 0; b < 4; ++b)
            prog.data[fix.offset + static_cast<std::size_t>(b)] =
                static_cast<std::uint8_t>((v >> (8 * b)) & 0xFF);
    }

    if (!entryLabel.empty())
        prog.entry = symAddr(entryLabel, 0);
}

Program
Assembler::run(const std::string &source)
{
    std::istringstream in(source);
    std::string line;
    while (std::getline(in, line)) {
        ++lineNo;
        processLine(line);
    }
    if (protos.empty())
        fatal("assembler: empty program");
    resolve();
    return std::move(prog);
}

} // anonymous namespace

Program
assemble(const std::string &source, Addr text_base, Addr data_base)
{
    return Assembler(text_base, data_base).run(source);
}

} // namespace visa
