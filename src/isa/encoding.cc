#include "isa/encoding.hh"

#include "sim/logging.hh"

namespace visa
{

namespace
{

// Primary opcode field values.
enum PrimOp : Word
{
    OP_SPECIAL = 0x00,
    OP_ADDI = 0x01, OP_ANDI, OP_ORI, OP_XORI, OP_SLTI, OP_SLTIU, OP_LUI,
    OP_LB = 0x08, OP_LBU, OP_LH, OP_LHU, OP_LW, OP_LDC1,
    OP_SB = 0x0E, OP_SH, OP_SW, OP_SDC1,
    OP_BEQ = 0x12, OP_BNE, OP_BLEZ, OP_BGTZ, OP_BLTZ, OP_BGEZ,
    OP_BC1T = 0x18, OP_BC1F,
    OP_J = 0x1A, OP_JAL,
    OP_COP1 = 0x1C,
};

// SPECIAL funct field values.
enum SpecFunct : Word
{
    F_ADD = 0, F_SUB, F_MUL, F_DIV, F_REM,
    F_AND, F_OR, F_XOR, F_NOR, F_SLT, F_SLTU,
    F_SLLV, F_SRLV, F_SRAV, F_SLL, F_SRL, F_SRA,
    F_JR, F_JALR, F_NOP, F_HALT,
};

// COP1 funct field values.
enum Cop1Funct : Word
{
    C1_ADD = 0, C1_SUB, C1_MUL, C1_DIV,
    C1_NEG, C1_ABS, C1_MOV, C1_CVT_D_W, C1_CVT_W_D,
    C1_C_EQ, C1_C_LT, C1_C_LE,
};

Word
rtype(Word op, Word rs, Word rt, Word rd, Word shamt, Word funct)
{
    return (op << 26) | (rs << 21) | (rt << 16) | (rd << 11) |
           (shamt << 6) | funct;
}

Word
itype(Word op, Word rs, Word rt, std::int32_t imm)
{
    return (op << 26) | (rs << 21) | (rt << 16) |
           (static_cast<Word>(imm) & 0xFFFF);
}

Word
jtype(Word op, Addr target)
{
    return (op << 26) | ((target >> 2) & 0x03FFFFFF);
}

std::int32_t
branchOffset(Addr target, Addr pc)
{
    std::int64_t diff =
        (static_cast<std::int64_t>(target) - (static_cast<std::int64_t>(pc) + 4)) / 4;
    if (diff < -32768 || diff > 32767)
        fatal("branch at 0x%x to 0x%x out of 16-bit range", pc, target);
    return static_cast<std::int32_t>(diff);
}

Addr
branchTarget(std::int32_t off16, Addr pc)
{
    return static_cast<Addr>(static_cast<std::int64_t>(pc) + 4 +
                             static_cast<std::int64_t>(off16) * 4);
}

std::int32_t
sext16(Word w)
{
    return static_cast<std::int16_t>(w & 0xFFFF);
}

} // anonymous namespace

Word
encode(const Instruction &inst, Addr pc)
{
    const Word rd = inst.rd, rs = inst.rs, rt = inst.rt;
    const std::int32_t imm = inst.imm;
    switch (inst.op) {
      case Opcode::ADD:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_ADD);
      case Opcode::SUB:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_SUB);
      case Opcode::MUL:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_MUL);
      case Opcode::DIV:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_DIV);
      case Opcode::REM:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_REM);
      case Opcode::AND:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_AND);
      case Opcode::OR:   return rtype(OP_SPECIAL, rs, rt, rd, 0, F_OR);
      case Opcode::XOR:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_XOR);
      case Opcode::NOR:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_NOR);
      case Opcode::SLT:  return rtype(OP_SPECIAL, rs, rt, rd, 0, F_SLT);
      case Opcode::SLTU: return rtype(OP_SPECIAL, rs, rt, rd, 0, F_SLTU);
      case Opcode::SLLV: return rtype(OP_SPECIAL, rs, rt, rd, 0, F_SLLV);
      case Opcode::SRLV: return rtype(OP_SPECIAL, rs, rt, rd, 0, F_SRLV);
      case Opcode::SRAV: return rtype(OP_SPECIAL, rs, rt, rd, 0, F_SRAV);
      case Opcode::SLL:
        return rtype(OP_SPECIAL, rs, 0, rd, imm & 0x1F, F_SLL);
      case Opcode::SRL:
        return rtype(OP_SPECIAL, rs, 0, rd, imm & 0x1F, F_SRL);
      case Opcode::SRA:
        return rtype(OP_SPECIAL, rs, 0, rd, imm & 0x1F, F_SRA);
      case Opcode::JR:   return rtype(OP_SPECIAL, rs, 0, 0, 0, F_JR);
      case Opcode::JALR: return rtype(OP_SPECIAL, rs, 0, rd, 0, F_JALR);
      case Opcode::NOP:  return rtype(OP_SPECIAL, 0, 0, 0, 0, F_NOP);
      case Opcode::HALT: return rtype(OP_SPECIAL, 0, 0, 0, 0, F_HALT);

      case Opcode::ADDI:  return itype(OP_ADDI, rs, rd, imm);
      case Opcode::ANDI:  return itype(OP_ANDI, rs, rd, imm);
      case Opcode::ORI:   return itype(OP_ORI, rs, rd, imm);
      case Opcode::XORI:  return itype(OP_XORI, rs, rd, imm);
      case Opcode::SLTI:  return itype(OP_SLTI, rs, rd, imm);
      case Opcode::SLTIU: return itype(OP_SLTIU, rs, rd, imm);
      case Opcode::LUI:   return itype(OP_LUI, 0, rd, imm);

      case Opcode::LB:   return itype(OP_LB, rs, rd, imm);
      case Opcode::LBU:  return itype(OP_LBU, rs, rd, imm);
      case Opcode::LH:   return itype(OP_LH, rs, rd, imm);
      case Opcode::LHU:  return itype(OP_LHU, rs, rd, imm);
      case Opcode::LW:   return itype(OP_LW, rs, rd, imm);
      case Opcode::LDC1: return itype(OP_LDC1, rs, rd, imm);
      case Opcode::SB:   return itype(OP_SB, rs, rt, imm);
      case Opcode::SH:   return itype(OP_SH, rs, rt, imm);
      case Opcode::SW:   return itype(OP_SW, rs, rt, imm);
      case Opcode::SDC1: return itype(OP_SDC1, rs, rt, imm);

      case Opcode::BEQ:
        return itype(OP_BEQ, rs, rt, branchOffset(imm, pc));
      case Opcode::BNE:
        return itype(OP_BNE, rs, rt, branchOffset(imm, pc));
      case Opcode::BLEZ:
        return itype(OP_BLEZ, rs, 0, branchOffset(imm, pc));
      case Opcode::BGTZ:
        return itype(OP_BGTZ, rs, 0, branchOffset(imm, pc));
      case Opcode::BLTZ:
        return itype(OP_BLTZ, rs, 0, branchOffset(imm, pc));
      case Opcode::BGEZ:
        return itype(OP_BGEZ, rs, 0, branchOffset(imm, pc));
      case Opcode::BC1T:
        return itype(OP_BC1T, 0, 0, branchOffset(imm, pc));
      case Opcode::BC1F:
        return itype(OP_BC1F, 0, 0, branchOffset(imm, pc));

      case Opcode::J:   return jtype(OP_J, static_cast<Addr>(imm));
      case Opcode::JAL: return jtype(OP_JAL, static_cast<Addr>(imm));

      case Opcode::ADD_D: return rtype(OP_COP1, rs, rt, rd, 0, C1_ADD);
      case Opcode::SUB_D: return rtype(OP_COP1, rs, rt, rd, 0, C1_SUB);
      case Opcode::MUL_D: return rtype(OP_COP1, rs, rt, rd, 0, C1_MUL);
      case Opcode::DIV_D: return rtype(OP_COP1, rs, rt, rd, 0, C1_DIV);
      case Opcode::NEG_D: return rtype(OP_COP1, rs, 0, rd, 0, C1_NEG);
      case Opcode::ABS_D: return rtype(OP_COP1, rs, 0, rd, 0, C1_ABS);
      case Opcode::MOV_D: return rtype(OP_COP1, rs, 0, rd, 0, C1_MOV);
      case Opcode::CVT_D_W:
        return rtype(OP_COP1, rs, 0, rd, 0, C1_CVT_D_W);
      case Opcode::CVT_W_D:
        return rtype(OP_COP1, rs, 0, rd, 0, C1_CVT_W_D);
      case Opcode::C_EQ_D: return rtype(OP_COP1, rs, rt, 0, 0, C1_C_EQ);
      case Opcode::C_LT_D: return rtype(OP_COP1, rs, rt, 0, 0, C1_C_LT);
      case Opcode::C_LE_D: return rtype(OP_COP1, rs, rt, 0, 0, C1_C_LE);
      default:
        panic("encode: bad opcode %d", static_cast<int>(inst.op));
    }
}

Instruction
decode(Word w, Addr pc)
{
    Instruction inst;
    const Word op = (w >> 26) & 0x3F;
    const Word rs = (w >> 21) & 0x1F;
    const Word rt = (w >> 16) & 0x1F;
    const Word rd = (w >> 11) & 0x1F;
    const Word shamt = (w >> 6) & 0x1F;
    const Word funct = w & 0x3F;
    const std::int32_t imm16 = sext16(w);

    auto rrr = [&](Opcode o) {
        inst.op = o;
        inst.rd = rd; inst.rs = rs; inst.rt = rt;
    };
    auto shift = [&](Opcode o) {
        inst.op = o;
        inst.rd = rd; inst.rs = rs;
        inst.imm = static_cast<std::int32_t>(shamt);
    };
    auto ialu = [&](Opcode o) {
        inst.op = o;
        inst.rd = rt; inst.rs = rs; inst.imm = imm16;
    };
    auto ualu = [&](Opcode o) {
        // Logical immediates are zero-extended by the ISA.
        inst.op = o;
        inst.rd = rt; inst.rs = rs;
        inst.imm = static_cast<std::int32_t>(w & 0xFFFF);
    };
    auto load = [&](Opcode o) {
        inst.op = o;
        inst.rd = rt; inst.rs = rs; inst.imm = imm16;
    };
    auto store = [&](Opcode o) {
        inst.op = o;
        inst.rt = rt; inst.rs = rs; inst.imm = imm16;
    };
    auto branch2 = [&](Opcode o) {
        inst.op = o;
        inst.rs = rs; inst.rt = rt;
        inst.imm = static_cast<std::int32_t>(branchTarget(imm16, pc));
    };
    auto branch1 = [&](Opcode o) {
        // rt is a don't-care field for single-source branches.
        inst.op = o;
        inst.rs = rs;
        inst.imm = static_cast<std::int32_t>(branchTarget(imm16, pc));
    };
    auto branchF = [&](Opcode o) {
        // FCC branches carry no register operands.
        inst.op = o;
        inst.imm = static_cast<std::int32_t>(branchTarget(imm16, pc));
    };

    switch (op) {
      case OP_SPECIAL:
        switch (funct) {
          case F_ADD:  rrr(Opcode::ADD); break;
          case F_SUB:  rrr(Opcode::SUB); break;
          case F_MUL:  rrr(Opcode::MUL); break;
          case F_DIV:  rrr(Opcode::DIV); break;
          case F_REM:  rrr(Opcode::REM); break;
          case F_AND:  rrr(Opcode::AND); break;
          case F_OR:   rrr(Opcode::OR); break;
          case F_XOR:  rrr(Opcode::XOR); break;
          case F_NOR:  rrr(Opcode::NOR); break;
          case F_SLT:  rrr(Opcode::SLT); break;
          case F_SLTU: rrr(Opcode::SLTU); break;
          case F_SLLV: rrr(Opcode::SLLV); break;
          case F_SRLV: rrr(Opcode::SRLV); break;
          case F_SRAV: rrr(Opcode::SRAV); break;
          case F_SLL:  shift(Opcode::SLL); break;
          case F_SRL:  shift(Opcode::SRL); break;
          case F_SRA:  shift(Opcode::SRA); break;
          case F_JR:   inst.op = Opcode::JR; inst.rs = rs; break;
          case F_JALR:
            inst.op = Opcode::JALR; inst.rs = rs; inst.rd = rd;
            break;
          case F_NOP:  inst.op = Opcode::NOP; break;
          case F_HALT: inst.op = Opcode::HALT; break;
          default:
            fatal("decode: bad SPECIAL funct %u at 0x%x", funct, pc);
        }
        break;
      case OP_ADDI:  ialu(Opcode::ADDI); break;
      case OP_ANDI:  ualu(Opcode::ANDI); break;
      case OP_ORI:   ualu(Opcode::ORI); break;
      case OP_XORI:  ualu(Opcode::XORI); break;
      case OP_SLTI:  ialu(Opcode::SLTI); break;
      case OP_SLTIU: ialu(Opcode::SLTIU); break;
      case OP_LUI:
        inst.op = Opcode::LUI; inst.rd = rt;
        inst.imm = static_cast<std::int32_t>(w & 0xFFFF);
        break;
      case OP_LB:   load(Opcode::LB); break;
      case OP_LBU:  load(Opcode::LBU); break;
      case OP_LH:   load(Opcode::LH); break;
      case OP_LHU:  load(Opcode::LHU); break;
      case OP_LW:   load(Opcode::LW); break;
      case OP_LDC1: load(Opcode::LDC1); break;
      case OP_SB:   store(Opcode::SB); break;
      case OP_SH:   store(Opcode::SH); break;
      case OP_SW:   store(Opcode::SW); break;
      case OP_SDC1: store(Opcode::SDC1); break;
      case OP_BEQ:  branch2(Opcode::BEQ); break;
      case OP_BNE:  branch2(Opcode::BNE); break;
      case OP_BLEZ: branch1(Opcode::BLEZ); break;
      case OP_BGTZ: branch1(Opcode::BGTZ); break;
      case OP_BLTZ: branch1(Opcode::BLTZ); break;
      case OP_BGEZ: branch1(Opcode::BGEZ); break;
      case OP_BC1T: branchF(Opcode::BC1T); break;
      case OP_BC1F: branchF(Opcode::BC1F); break;
      case OP_J:
        inst.op = Opcode::J;
        inst.imm = static_cast<std::int32_t>((w & 0x03FFFFFF) << 2);
        break;
      case OP_JAL:
        inst.op = Opcode::JAL;
        inst.imm = static_cast<std::int32_t>((w & 0x03FFFFFF) << 2);
        break;
      case OP_COP1:
        switch (funct) {
          case C1_ADD: rrr(Opcode::ADD_D); break;
          case C1_SUB: rrr(Opcode::SUB_D); break;
          case C1_MUL: rrr(Opcode::MUL_D); break;
          case C1_DIV: rrr(Opcode::DIV_D); break;
          case C1_NEG: inst.op = Opcode::NEG_D; inst.rd = rd; inst.rs = rs;
            break;
          case C1_ABS: inst.op = Opcode::ABS_D; inst.rd = rd; inst.rs = rs;
            break;
          case C1_MOV: inst.op = Opcode::MOV_D; inst.rd = rd; inst.rs = rs;
            break;
          case C1_CVT_D_W:
            inst.op = Opcode::CVT_D_W; inst.rd = rd; inst.rs = rs;
            break;
          case C1_CVT_W_D:
            inst.op = Opcode::CVT_W_D; inst.rd = rd; inst.rs = rs;
            break;
          case C1_C_EQ:
            inst.op = Opcode::C_EQ_D; inst.rs = rs; inst.rt = rt;
            break;
          case C1_C_LT:
            inst.op = Opcode::C_LT_D; inst.rs = rs; inst.rt = rt;
            break;
          case C1_C_LE:
            inst.op = Opcode::C_LE_D; inst.rs = rs; inst.rt = rt;
            break;
          default:
            fatal("decode: bad COP1 funct %u at 0x%x", funct, pc);
        }
        break;
      default:
        fatal("decode: bad primary opcode %u at 0x%x", op, pc);
    }
    return inst;
}

} // namespace visa
