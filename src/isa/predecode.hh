/**
 * @file
 * Basic-block pre-decode: the translation-cache data structures shared
 * by the functional execution core (src/cpu) and the WCET analyzer's
 * CFG construction (src/wcet).
 *
 * A CodeBlock is the straight-line run of instructions from one entry
 * PC up to and including the next control transfer (or HALT / end of
 * text). Each instruction is stored as a PredecodedInst: the decoded
 * Instruction plus every per-opcode table value the executor would
 * otherwise reload per dynamic instruction (operand-role flags, memory
 * width, functional class). The BlockMap owns all blocks, indexed by
 * start word for O(1) lookup, and carries chained fall-through/taken
 * pointers so steady-state execution never touches the index at all.
 *
 * This module is purely structural: it reads instruction storage the
 * caller provides and never touches MainMemory. Invalidation policy
 * (per-page generation counters, store-to-code detection) lives in the
 * executor that composes a BlockMap with a memory (cpu/cpu.hh).
 */

#ifndef VISA_ISA_PREDECODE_HH
#define VISA_ISA_PREDECODE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace visa
{

/**
 * One pre-resolved instruction record. The opcode doubles as the
 * dispatch key of the executor's threaded switch (it is already a
 * dense uint8), so no separate handler index is stored; the satellite
 * fields cache the per-opcode table lookups.
 */
struct alignas(16) PredecodedInst
{
    Instruction inst;
    std::uint16_t flags = 0;      ///< detail::operandFlags(inst.op)
    std::uint8_t memBytes = 0;    ///< access width, 0 for non-memory
    std::uint8_t cls = 0;         ///< static_cast<uint8_t>(classOf(op))
};

/**
 * Dispatch key of the trailing end-of-block sentinel record. Every
 * decoded CodeBlock carries one extra PredecodedInst with this opcode
 * after its `count` real records, so a threaded executor can dispatch
 * unconditionally and let the sentinel's handler end the block instead
 * of comparing the cursor against an end pointer per instruction. The
 * value sits one slot past the Opcode::NumOpcodes marker used for
 * undecodable words; BlockMap::ensure normalizes every out-of-range
 * opcode in a real record to NumOpcodes, so no program-supplied word
 * can collide with the sentinel.
 */
constexpr Opcode blockEndOpcode =
    static_cast<Opcode>(detail::numOpcodeSlots + 1);

/**
 * @return the length in instructions of the straight-line run starting
 * at @p start: everything up to and including the first control
 * transfer, HALT, or undecodable opcode, clamped to the end of text.
 * Returns 0 when @p start is outside [@p base, @p base + 4*@p n) or
 * misaligned. Shared by the execution block cache and the WCET CFG
 * builder so both carve identical basic blocks.
 */
std::uint32_t straightLineLength(const Instruction *text, std::size_t n,
                                 Addr base, Addr start);

/** A decoded basic block plus its chained control-flow edges. */
struct CodeBlock
{
    Addr startPc = 0;
    /** Word index of startPc in the text segment. */
    std::uint32_t firstWord = 0;
    /** Instruction count, terminator included. */
    std::uint32_t count = 0;
    /** False after invalidation; re-decoded in place on next entry. */
    bool valid = false;
    /**
     * Lazily resolved successor blocks. Chains are hints: the executor
     * must confirm startPc (an indirect jump can go anywhere) and
     * validity before following one. Blocks are never freed before the
     * owning BlockMap, so a stale chain pointer is checkable, not
     * dangling.
     */
    CodeBlock *chainFall = nullptr;
    CodeBlock *chainTaken = nullptr;
    /** count real records plus the trailing blockEndOpcode sentinel. */
    std::vector<PredecodedInst> insts;

    /** Address of the instruction after the block's last one. */
    Addr fallPc() const { return startPc + 4 * count; }
};

/**
 * The translation cache: every block decoded so far, indexed by start
 * word. Blocks are allocated once per distinct start PC and re-decoded
 * in place after invalidation, which keeps every CodeBlock* stable for
 * the lifetime of the map.
 */
class BlockMap
{
  public:
    /** Size the index for a text segment of @p words instructions. */
    void reset(std::size_t words);

    /**
     * @return the valid block starting at @p pc, decoding (or
     * re-decoding) it from @p text as needed; nullptr when @p pc is
     * outside the indexed text range or misaligned.
     */
    CodeBlock *ensure(const Instruction *text, std::size_t n, Addr base,
                      Addr pc);

    /**
     * Invalidate every block overlapping word indices
     * [@p lo, @p hi] (inclusive). Blocks stay allocated and are
     * re-decoded in place on their next entry.
     */
    void invalidateWords(std::size_t lo, std::size_t hi);

    /** Blocks decoded or re-decoded since construction. */
    std::uint64_t blocksDecoded() const { return blocksDecoded_; }
    /** ensure() calls served by an already-valid block. */
    std::uint64_t blockHits() const { return blockHits_; }
    /** Blocks invalidated by invalidateWords(). */
    std::uint64_t invalidations() const { return invalidations_; }
    /** Instructions decoded into blocks (counts re-decodes). */
    std::uint64_t instsDecoded() const { return instsDecoded_; }

  private:
    std::vector<std::unique_ptr<CodeBlock>> blocks_;
    /** Start-word -> block, nullptr until first entry at that PC. */
    std::vector<CodeBlock *> byWord_;
    std::uint64_t blocksDecoded_ = 0;
    std::uint64_t blockHits_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t instsDecoded_ = 0;
};

} // namespace visa

#endif // VISA_ISA_PREDECODE_HH
