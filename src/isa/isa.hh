/**
 * @file
 * The VPISA instruction set: a MIPS-like 32-bit RISC used as our
 * substitute for SimpleScalar's PISA (see DESIGN.md, substitution 1).
 *
 * Properties the rest of the system relies on:
 *  - fixed 4-byte instructions at linear addresses (drives I-cache
 *    analysis in the WCET tool),
 *  - MIPS R10K execution latencies (Table 1 of the paper),
 *  - direct branches with statically known targets (merged BTB/I-cache),
 *  - indirect jumps (JR/JALR) that stall fetch on the VISA pipeline.
 */

#ifndef VISA_ISA_ISA_HH
#define VISA_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace visa
{

/** Number of architected integer registers (r0 is hard-wired zero). */
inline constexpr int numIntRegs = 32;
/** Number of architected floating-point registers (64-bit each). */
inline constexpr int numFpRegs = 32;

/** Every opcode in the VPISA instruction set. */
enum class Opcode : std::uint8_t
{
    // Integer register-register ALU.
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR, NOR,
    SLT, SLTU,
    SLLV, SRLV, SRAV,
    // Shifts by immediate amount.
    SLL, SRL, SRA,
    // Integer register-immediate ALU.
    ADDI, ANDI, ORI, XORI, SLTI, SLTIU, LUI,
    // Loads.
    LB, LBU, LH, LHU, LW, LDC1,
    // Stores.
    SB, SH, SW, SDC1,
    // Conditional branches (PC-relative).
    BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ,
    // FP-condition-code branches.
    BC1T, BC1F,
    // Direct jumps.
    J, JAL,
    // Indirect jumps.
    JR, JALR,
    // Double-precision floating point.
    ADD_D, SUB_D, MUL_D, DIV_D,
    NEG_D, ABS_D, MOV_D,
    CVT_D_W,    ///< fd <- (double) int-reg rs   (non-standard convenience)
    CVT_W_D,    ///< rd <- (int) trunc fp-reg fs (non-standard convenience)
    C_EQ_D, C_LT_D, C_LE_D,    ///< set the FP condition code (FCC)
    // Miscellaneous.
    NOP,
    HALT,       ///< stop the simulated machine

    NumOpcodes
};

/** Functional classes used for timing (one universal FU executes all). */
enum class InstrClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    Load,
    Store,
    CondBranch,
    DirectJump,
    IndirectJump,
    FpAlu,      ///< add/sub/neg/abs/mov/cmp/cvt
    FpMult,
    FpDiv,
    Nop,
    Halt
};

namespace detail
{

/** classOf without the bad-opcode diagnostic (constexpr-evaluable). */
constexpr InstrClass
classOfImpl(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR: case Opcode::NOR:
      case Opcode::SLT: case Opcode::SLTU:
      case Opcode::SLLV: case Opcode::SRLV: case Opcode::SRAV:
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLTI: case Opcode::SLTIU:
      case Opcode::LUI:
        return InstrClass::IntAlu;
      case Opcode::MUL:
        return InstrClass::IntMult;
      case Opcode::DIV: case Opcode::REM:
        return InstrClass::IntDiv;
      case Opcode::LB: case Opcode::LBU: case Opcode::LH: case Opcode::LHU:
      case Opcode::LW: case Opcode::LDC1:
        return InstrClass::Load;
      case Opcode::SB: case Opcode::SH: case Opcode::SW: case Opcode::SDC1:
        return InstrClass::Store;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLEZ:
      case Opcode::BGTZ: case Opcode::BLTZ: case Opcode::BGEZ:
      case Opcode::BC1T: case Opcode::BC1F:
        return InstrClass::CondBranch;
      case Opcode::J: case Opcode::JAL:
        return InstrClass::DirectJump;
      case Opcode::JR: case Opcode::JALR:
        return InstrClass::IndirectJump;
      case Opcode::ADD_D: case Opcode::SUB_D:
      case Opcode::NEG_D: case Opcode::ABS_D: case Opcode::MOV_D:
      case Opcode::CVT_D_W: case Opcode::CVT_W_D:
      case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
        return InstrClass::FpAlu;
      case Opcode::MUL_D:
        return InstrClass::FpMult;
      case Opcode::DIV_D:
        return InstrClass::FpDiv;
      case Opcode::NOP:
        return InstrClass::Nop;
      case Opcode::HALT:
      default:
        return InstrClass::Halt;
    }
}

/**
 * MIPS R10K execution latencies (paper Table 1). Loads/stores listed
 * as 1 here: address generation takes one execute cycle; the cache
 * access happens in the memory stage.
 */
constexpr Cycles
latencyOfImpl(Opcode op)
{
    switch (classOfImpl(op)) {
      case InstrClass::IntMult:      return 6;
      case InstrClass::IntDiv:       return 35;
      case InstrClass::FpAlu:        return 2;
      case InstrClass::FpMult:       return 2;
      case InstrClass::FpDiv:        return 19;
      default:                       return 1;
    }
}

inline constexpr std::size_t numOpcodeSlots =
    static_cast<std::size_t>(Opcode::NumOpcodes);

inline constexpr auto classTable = [] {
    std::array<InstrClass, numOpcodeSlots> t{};
    for (std::size_t i = 0; i < numOpcodeSlots; ++i)
        t[i] = classOfImpl(static_cast<Opcode>(i));
    return t;
}();

inline constexpr auto latencyTable = [] {
    std::array<Cycles, numOpcodeSlots> t{};
    for (std::size_t i = 0; i < numOpcodeSlots; ++i)
        t[i] = latencyOfImpl(static_cast<Opcode>(i));
    return t;
}();

/**
 * Operand-role flags: which register fields an opcode reads/writes and
 * in which file. The operand/hazard queries in instruction.hh are flag
 * tests against this table instead of opcode switches — they run
 * several times per simulated instruction.
 */
enum OperandFlags : std::uint16_t
{
    opSrcRsInt  = 1u << 0,    ///< reads rs from the integer file
    opSrcRtInt  = 1u << 1,    ///< reads rt from the integer file
    opSrcRsFp   = 1u << 2,    ///< reads rs from the FP file
    opSrcRtFp   = 1u << 3,    ///< reads rt from the FP file
    opDestRdInt = 1u << 4,    ///< writes rd in the integer file
    opDestRaInt = 1u << 5,    ///< writes the link register (JAL)
    opDestRdFp  = 1u << 6,    ///< writes rd in the FP file
    opWritesFcc = 1u << 7,
    opReadsFcc  = 1u << 8,
};

constexpr std::uint16_t
operandFlagsImpl(Opcode op)
{
    switch (op) {
      // rd = rs OP rt
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR: case Opcode::NOR:
      case Opcode::SLT: case Opcode::SLTU:
      case Opcode::SLLV: case Opcode::SRLV: case Opcode::SRAV:
        return opSrcRsInt | opSrcRtInt | opDestRdInt;
      // rd = rs OP imm
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLTI: case Opcode::SLTIU:
        return opSrcRsInt | opDestRdInt;
      case Opcode::LUI:
        return opDestRdInt;
      // integer loads: base rs -> rd
      case Opcode::LB: case Opcode::LBU: case Opcode::LH: case Opcode::LHU:
      case Opcode::LW:
        return opSrcRsInt | opDestRdInt;
      // FP load: base rs -> fp rd
      case Opcode::LDC1:
        return opSrcRsInt | opDestRdFp;
      // integer stores: base rs + integer data rt
      case Opcode::SB: case Opcode::SH: case Opcode::SW:
        return opSrcRsInt | opSrcRtInt;
      // FP store: base rs + FP data rt
      case Opcode::SDC1:
        return opSrcRsInt | opSrcRtFp;
      case Opcode::BEQ: case Opcode::BNE:
        return opSrcRsInt | opSrcRtInt;
      case Opcode::BLEZ: case Opcode::BGTZ:
      case Opcode::BLTZ: case Opcode::BGEZ:
        return opSrcRsInt;
      case Opcode::BC1T: case Opcode::BC1F:
        return opReadsFcc;
      case Opcode::J:
        return 0;
      case Opcode::JAL:
        return opDestRaInt;
      case Opcode::JR:
        return opSrcRsInt;
      case Opcode::JALR:
        return opSrcRsInt | opDestRdInt;
      case Opcode::ADD_D: case Opcode::SUB_D:
      case Opcode::MUL_D: case Opcode::DIV_D:
        return opSrcRsFp | opSrcRtFp | opDestRdFp;
      case Opcode::NEG_D: case Opcode::ABS_D: case Opcode::MOV_D:
        return opSrcRsFp | opDestRdFp;
      case Opcode::CVT_D_W:
        return opSrcRsInt | opDestRdFp;
      case Opcode::CVT_W_D:
        return opSrcRsFp | opDestRdInt;
      case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
        return opSrcRsFp | opSrcRtFp | opWritesFcc;
      default:
        return 0;
    }
}

inline constexpr auto operandTable = [] {
    std::array<std::uint16_t, numOpcodeSlots> t{};
    for (std::size_t i = 0; i < numOpcodeSlots; ++i)
        t[i] = operandFlagsImpl(static_cast<Opcode>(i));
    return t;
}();

/** Byte width of a memory opcode's access (0 for non-memory ops). */
constexpr std::uint8_t
memBytesImpl(Opcode op)
{
    switch (op) {
      case Opcode::LB: case Opcode::LBU: case Opcode::SB:
        return 1;
      case Opcode::LH: case Opcode::LHU: case Opcode::SH:
        return 2;
      case Opcode::LW: case Opcode::SW:
        return 4;
      case Opcode::LDC1: case Opcode::SDC1:
        return 8;
      default:
        return 0;
    }
}

inline constexpr auto memBytesTable = [] {
    std::array<std::uint8_t, numOpcodeSlots> t{};
    for (std::size_t i = 0; i < numOpcodeSlots; ++i)
        t[i] = memBytesImpl(static_cast<Opcode>(i));
    return t;
}();

[[noreturn]] void badOpcode(const char *who, Opcode op);

/** Operand-role flags of @p op (0 for out-of-range opcodes). */
inline std::uint16_t
operandFlags(Opcode op)
{
    const auto i = static_cast<std::size_t>(op);
    return i < numOpcodeSlots ? operandTable[i] : 0;
}

} // namespace detail

/**
 * @return the functional class of @p op.
 *
 * Table lookup: this sits on the per-instruction path of both pipeline
 * simulators (several calls per simulated instruction through cls()),
 * so it must stay inline and branch-light.
 */
inline InstrClass
classOf(Opcode op)
{
    const auto i = static_cast<std::size_t>(op);
    if (i >= detail::numOpcodeSlots) [[unlikely]]
        detail::badOpcode("classOf", op);
    return detail::classTable[i];
}

/**
 * @return the execution (occupancy) latency in cycles of @p op on the
 * universal function unit, per MIPS R10K (paper Table 1).
 */
inline Cycles
latencyOf(Opcode op)
{
    const auto i = static_cast<std::size_t>(op);
    if (i >= detail::numOpcodeSlots) [[unlikely]]
        detail::badOpcode("latencyOf", op);
    return detail::latencyTable[i];
}

/** @return the mnemonic of @p op, lower case ("add.d", "lw", ...). */
const char *mnemonic(Opcode op);

/** @return the integer register name ("r7"; aliases resolved on parse). */
std::string intRegName(int reg);

/** @return the FP register name ("f7"). */
std::string fpRegName(int reg);

/**
 * Well-known register conventions used by the assembler and the
 * workload generators.
 */
namespace reg
{
inline constexpr int zero = 0;   ///< hard-wired zero
inline constexpr int at = 1;     ///< assembler temporary (pseudo-op use)
inline constexpr int gp = 28;    ///< global pointer (parameter table base)
inline constexpr int sp = 29;    ///< stack pointer
inline constexpr int fp = 30;    ///< frame pointer
inline constexpr int ra = 31;    ///< return address (JAL/JALR)
} // namespace reg

/**
 * Memory-mapped device addresses (paper §2.2 and §4.3: watchdog counter,
 * cycle counter, and frequency registers are memory mapped).
 */
namespace mmio
{
inline constexpr Addr base = 0xFFFF0000u;
/** Store: add value to the watchdog counter. Load: current value. */
inline constexpr Addr watchdog = 0xFFFF0000u;
/** Load: cycles since last reset. Store: reset to zero. */
inline constexpr Addr cycleCounter = 0xFFFF0004u;
/** Load: current core frequency in MHz. */
inline constexpr Addr currentFreq = 0xFFFF0008u;
/** Load: recovery frequency in MHz. */
inline constexpr Addr recoveryFreq = 0xFFFF000Cu;
/** Store: announce the id of the sub-task now beginning. */
inline constexpr Addr subtaskId = 0xFFFF0010u;
/** Store: report the AET (cycles) of the sub-task that just ended. */
inline constexpr Addr aetReport = 0xFFFF0014u;
/** Store: report a functional checksum for golden-output validation. */
inline constexpr Addr checksum = 0xFFFF0018u;
/** Store: write a character to the debug console. */
inline constexpr Addr putChar = 0xFFFF001Cu;
inline constexpr Addr top = 0xFFFF0020u;

/** @return true if @p a falls in the memory-mapped device window. */
constexpr bool
contains(Addr a)
{
    return a >= base && a < top;
}
} // namespace mmio

} // namespace visa

#endif // VISA_ISA_ISA_HH
