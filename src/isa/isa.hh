/**
 * @file
 * The VPISA instruction set: a MIPS-like 32-bit RISC used as our
 * substitute for SimpleScalar's PISA (see DESIGN.md, substitution 1).
 *
 * Properties the rest of the system relies on:
 *  - fixed 4-byte instructions at linear addresses (drives I-cache
 *    analysis in the WCET tool),
 *  - MIPS R10K execution latencies (Table 1 of the paper),
 *  - direct branches with statically known targets (merged BTB/I-cache),
 *  - indirect jumps (JR/JALR) that stall fetch on the VISA pipeline.
 */

#ifndef VISA_ISA_ISA_HH
#define VISA_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace visa
{

/** Number of architected integer registers (r0 is hard-wired zero). */
inline constexpr int numIntRegs = 32;
/** Number of architected floating-point registers (64-bit each). */
inline constexpr int numFpRegs = 32;

/** Every opcode in the VPISA instruction set. */
enum class Opcode : std::uint8_t
{
    // Integer register-register ALU.
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR, NOR,
    SLT, SLTU,
    SLLV, SRLV, SRAV,
    // Shifts by immediate amount.
    SLL, SRL, SRA,
    // Integer register-immediate ALU.
    ADDI, ANDI, ORI, XORI, SLTI, SLTIU, LUI,
    // Loads.
    LB, LBU, LH, LHU, LW, LDC1,
    // Stores.
    SB, SH, SW, SDC1,
    // Conditional branches (PC-relative).
    BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ,
    // FP-condition-code branches.
    BC1T, BC1F,
    // Direct jumps.
    J, JAL,
    // Indirect jumps.
    JR, JALR,
    // Double-precision floating point.
    ADD_D, SUB_D, MUL_D, DIV_D,
    NEG_D, ABS_D, MOV_D,
    CVT_D_W,    ///< fd <- (double) int-reg rs   (non-standard convenience)
    CVT_W_D,    ///< rd <- (int) trunc fp-reg fs (non-standard convenience)
    C_EQ_D, C_LT_D, C_LE_D,    ///< set the FP condition code (FCC)
    // Miscellaneous.
    NOP,
    HALT,       ///< stop the simulated machine

    NumOpcodes
};

/** Functional classes used for timing (one universal FU executes all). */
enum class InstrClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    Load,
    Store,
    CondBranch,
    DirectJump,
    IndirectJump,
    FpAlu,      ///< add/sub/neg/abs/mov/cmp/cvt
    FpMult,
    FpDiv,
    Nop,
    Halt
};

/** @return the functional class of @p op. */
InstrClass classOf(Opcode op);

/**
 * @return the execution (occupancy) latency in cycles of @p op on the
 * universal function unit, per MIPS R10K (paper Table 1).
 */
Cycles latencyOf(Opcode op);

/** @return the mnemonic of @p op, lower case ("add.d", "lw", ...). */
const char *mnemonic(Opcode op);

/** @return the integer register name ("r7"; aliases resolved on parse). */
std::string intRegName(int reg);

/** @return the FP register name ("f7"). */
std::string fpRegName(int reg);

/**
 * Well-known register conventions used by the assembler and the
 * workload generators.
 */
namespace reg
{
inline constexpr int zero = 0;   ///< hard-wired zero
inline constexpr int at = 1;     ///< assembler temporary (pseudo-op use)
inline constexpr int gp = 28;    ///< global pointer (parameter table base)
inline constexpr int sp = 29;    ///< stack pointer
inline constexpr int fp = 30;    ///< frame pointer
inline constexpr int ra = 31;    ///< return address (JAL/JALR)
} // namespace reg

/**
 * Memory-mapped device addresses (paper §2.2 and §4.3: watchdog counter,
 * cycle counter, and frequency registers are memory mapped).
 */
namespace mmio
{
inline constexpr Addr base = 0xFFFF0000u;
/** Store: add value to the watchdog counter. Load: current value. */
inline constexpr Addr watchdog = 0xFFFF0000u;
/** Load: cycles since last reset. Store: reset to zero. */
inline constexpr Addr cycleCounter = 0xFFFF0004u;
/** Load: current core frequency in MHz. */
inline constexpr Addr currentFreq = 0xFFFF0008u;
/** Load: recovery frequency in MHz. */
inline constexpr Addr recoveryFreq = 0xFFFF000Cu;
/** Store: announce the id of the sub-task now beginning. */
inline constexpr Addr subtaskId = 0xFFFF0010u;
/** Store: report the AET (cycles) of the sub-task that just ended. */
inline constexpr Addr aetReport = 0xFFFF0014u;
/** Store: report a functional checksum for golden-output validation. */
inline constexpr Addr checksum = 0xFFFF0018u;
/** Store: write a character to the debug console. */
inline constexpr Addr putChar = 0xFFFF001Cu;
inline constexpr Addr top = 0xFFFF0020u;

/** @return true if @p a falls in the memory-mapped device window. */
constexpr bool
contains(Addr a)
{
    return a >= base && a < top;
}
} // namespace mmio

} // namespace visa

#endif // VISA_ISA_ISA_HH
