#include "isa/disassembler.hh"

#include <map>
#include <sstream>

#include "isa/instruction.hh"

namespace visa
{

std::string
disassembleProgram(const Program &prog, const DisasmOptions &opts)
{
    // Collect branch/jump targets so each gets a synthesized label,
    // preferring user symbols when one names the address.
    std::map<Addr, std::string> labels;
    for (const auto &[name, addr] : prog.symbols)
        if (prog.containsPc(addr))
            labels[addr] = name;
    int synth = 0;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        const Instruction &inst = prog.text[i];
        if (inst.isCondBranch() || inst.isDirectJump()) {
            Addr target = static_cast<Addr>(inst.imm);
            if (prog.containsPc(target) && !labels.count(target))
                labels[target] = "L" + std::to_string(synth++);
        }
    }

    std::ostringstream os;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        const Addr pc = prog.textBase + static_cast<Addr>(i * 4);
        if (opts.showAnnotations) {
            auto st = prog.subtaskStarts.find(pc);
            if (st != prog.subtaskStarts.end())
                os << "        .subtask " << st->second << '\n';
            auto lb = prog.loopBounds.find(pc);
            if (lb != prog.loopBounds.end())
                os << "        .loopbound " << lb->second << '\n';
        }
        auto lbl = labels.find(pc);
        if (lbl != labels.end())
            os << lbl->second << ":\n";
        os << "        ";
        if (opts.showAddresses) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%08x  ", pc);
            os << buf;
        }
        if (opts.showEncodings) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%08x  ", prog.words[i]);
            os << buf;
        }
        const Instruction &inst = prog.text[i];
        std::string text = disassemble(inst, pc);
        // Rewrite absolute targets as labels for readability.
        if (inst.isCondBranch() || inst.isDirectJump()) {
            Addr target = static_cast<Addr>(inst.imm);
            auto it = labels.find(target);
            if (it != labels.end()) {
                auto hexpos = text.rfind("0x");
                if (hexpos != std::string::npos)
                    text = text.substr(0, hexpos) + it->second;
            }
        }
        os << text << '\n';
    }
    return os.str();
}

} // namespace visa
