#include "isa/semantics.hh"

#include "sim/logging.hh"

namespace visa::detail
{

void
badSemantics(const char *who, Opcode op)
{
    panic("%s: unexpected opcode: %s", who, mnemonic(op));
}

} // namespace visa::detail
