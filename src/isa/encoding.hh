/**
 * @file
 * Binary encoding of VPISA instructions into 32-bit words, MIPS-style:
 *
 *   R-type: op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)
 *   I-type: op(6) rs(5) rt(5) imm(16)            (branch imm: signed word
 *                                                 offset from pc+4)
 *   J-type: op(6) target(26)                     (word address)
 *
 * Because the decoded Instruction stores branch/jump targets as absolute
 * byte addresses, both encode and decode take the instruction's PC.
 */

#ifndef VISA_ISA_ENCODING_HH
#define VISA_ISA_ENCODING_HH

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace visa
{

/** Encode @p inst located at @p pc into a 32-bit word. */
Word encode(const Instruction &inst, Addr pc);

/** Decode the 32-bit word @p w located at @p pc. */
Instruction decode(Word w, Addr pc);

} // namespace visa

#endif // VISA_ISA_ENCODING_HH
