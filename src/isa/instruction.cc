#include "isa/instruction.hh"

#include <sstream>

#include "sim/logging.hh"

namespace visa
{

int
Instruction::destIntReg() const
{
    int d = -1;
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR: case Opcode::NOR:
      case Opcode::SLT: case Opcode::SLTU:
      case Opcode::SLLV: case Opcode::SRLV: case Opcode::SRAV:
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLTI: case Opcode::SLTIU:
      case Opcode::LUI:
      case Opcode::LB: case Opcode::LBU: case Opcode::LH: case Opcode::LHU:
      case Opcode::LW:
      case Opcode::CVT_W_D:
      case Opcode::JALR:
        d = rd;
        break;
      case Opcode::JAL:
        d = reg::ra;
        break;
      default:
        break;
    }
    return d == 0 ? -1 : d;    // writes to r0 are discarded
}

int
Instruction::destFpReg() const
{
    switch (op) {
      case Opcode::LDC1:
      case Opcode::ADD_D: case Opcode::SUB_D:
      case Opcode::MUL_D: case Opcode::DIV_D:
      case Opcode::NEG_D: case Opcode::ABS_D: case Opcode::MOV_D:
      case Opcode::CVT_D_W:
        return rd;
      default:
        return -1;
    }
}

bool
Instruction::writesFcc() const
{
    return op == Opcode::C_EQ_D || op == Opcode::C_LT_D ||
           op == Opcode::C_LE_D;
}

bool
Instruction::readsFcc() const
{
    return op == Opcode::BC1T || op == Opcode::BC1F;
}

std::array<int, 2>
Instruction::srcIntRegs() const
{
    switch (op) {
      // rd = rs OP rt
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR: case Opcode::NOR:
      case Opcode::SLT: case Opcode::SLTU:
      case Opcode::SLLV: case Opcode::SRLV: case Opcode::SRAV:
      case Opcode::BEQ: case Opcode::BNE:
        return {rs, rt};
      // single int source in rs
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLTI: case Opcode::SLTIU:
      case Opcode::LB: case Opcode::LBU: case Opcode::LH: case Opcode::LHU:
      case Opcode::LW: case Opcode::LDC1:
      case Opcode::BLEZ: case Opcode::BGTZ:
      case Opcode::BLTZ: case Opcode::BGEZ:
      case Opcode::JR: case Opcode::JALR:
      case Opcode::CVT_D_W:
        return {rs, -1};
      // stores: base rs + integer data rt
      case Opcode::SB: case Opcode::SH: case Opcode::SW:
        return {rs, rt};
      // FP store: base rs only (data is FP)
      case Opcode::SDC1:
        return {rs, -1};
      default:
        return {-1, -1};
    }
}

std::array<int, 2>
Instruction::srcFpRegs() const
{
    switch (op) {
      case Opcode::ADD_D: case Opcode::SUB_D:
      case Opcode::MUL_D: case Opcode::DIV_D:
      case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
        return {rs, rt};
      case Opcode::NEG_D: case Opcode::ABS_D: case Opcode::MOV_D:
      case Opcode::CVT_W_D:
        return {rs, -1};
      case Opcode::SDC1:
        return {rt, -1};
      default:
        return {-1, -1};
    }
}

bool
Instruction::dependsOn(const Instruction &prod) const
{
    int pd = prod.destIntReg();
    if (pd >= 0) {
        for (int s : srcIntRegs())
            if (s == pd)
                return true;
    }
    int pf = prod.destFpReg();
    if (pf >= 0) {
        for (int s : srcFpRegs())
            if (s == pf)
                return true;
    }
    if (prod.writesFcc() && readsFcc())
        return true;
    return false;
}

std::string
disassemble(const Instruction &inst, Addr pc)
{
    std::ostringstream os;
    os << mnemonic(inst.op);
    auto target = [&]() {
        std::ostringstream t;
        t << "0x" << std::hex << static_cast<Addr>(inst.imm);
        return t.str();
    };
    (void)pc;
    switch (classOf(inst.op)) {
      case InstrClass::IntAlu:
        switch (inst.op) {
          case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
            os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs)
               << ", " << inst.imm;
            break;
          case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
          case Opcode::XORI: case Opcode::SLTI: case Opcode::SLTIU:
            os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs)
               << ", " << inst.imm;
            break;
          case Opcode::LUI:
            os << ' ' << intRegName(inst.rd) << ", " << inst.imm;
            break;
          default:
            os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs)
               << ", " << intRegName(inst.rt);
        }
        break;
      case InstrClass::IntMult:
      case InstrClass::IntDiv:
        os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs)
           << ", " << intRegName(inst.rt);
        break;
      case InstrClass::Load:
        os << ' '
           << (inst.isFpMem() ? fpRegName(inst.rd) : intRegName(inst.rd))
           << ", " << inst.imm << '(' << intRegName(inst.rs) << ')';
        break;
      case InstrClass::Store:
        os << ' '
           << (inst.isFpMem() ? fpRegName(inst.rt) : intRegName(inst.rt))
           << ", " << inst.imm << '(' << intRegName(inst.rs) << ')';
        break;
      case InstrClass::CondBranch:
        if (inst.op == Opcode::BEQ || inst.op == Opcode::BNE) {
            os << ' ' << intRegName(inst.rs) << ", " << intRegName(inst.rt)
               << ", " << target();
        } else if (inst.readsFcc()) {
            os << ' ' << target();
        } else {
            os << ' ' << intRegName(inst.rs) << ", " << target();
        }
        break;
      case InstrClass::DirectJump:
        os << ' ' << target();
        break;
      case InstrClass::IndirectJump:
        if (inst.op == Opcode::JALR)
            os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs);
        else
            os << ' ' << intRegName(inst.rs);
        break;
      case InstrClass::FpAlu:
      case InstrClass::FpMult:
      case InstrClass::FpDiv:
        switch (inst.op) {
          case Opcode::NEG_D: case Opcode::ABS_D: case Opcode::MOV_D:
            os << ' ' << fpRegName(inst.rd) << ", " << fpRegName(inst.rs);
            break;
          case Opcode::CVT_D_W:
            os << ' ' << fpRegName(inst.rd) << ", " << intRegName(inst.rs);
            break;
          case Opcode::CVT_W_D:
            os << ' ' << intRegName(inst.rd) << ", " << fpRegName(inst.rs);
            break;
          case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
            os << ' ' << fpRegName(inst.rs) << ", " << fpRegName(inst.rt);
            break;
          default:
            os << ' ' << fpRegName(inst.rd) << ", " << fpRegName(inst.rs)
               << ", " << fpRegName(inst.rt);
        }
        break;
      case InstrClass::Nop:
      case InstrClass::Halt:
        break;
    }
    return os.str();
}

} // namespace visa
