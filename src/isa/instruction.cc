#include "isa/instruction.hh"

#include <sstream>

#include "sim/logging.hh"

namespace visa
{

std::string
disassemble(const Instruction &inst, Addr pc)
{
    std::ostringstream os;
    os << mnemonic(inst.op);
    auto target = [&]() {
        std::ostringstream t;
        t << "0x" << std::hex << static_cast<Addr>(inst.imm);
        return t.str();
    };
    (void)pc;
    switch (classOf(inst.op)) {
      case InstrClass::IntAlu:
        switch (inst.op) {
          case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
            os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs)
               << ", " << inst.imm;
            break;
          case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
          case Opcode::XORI: case Opcode::SLTI: case Opcode::SLTIU:
            os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs)
               << ", " << inst.imm;
            break;
          case Opcode::LUI:
            os << ' ' << intRegName(inst.rd) << ", " << inst.imm;
            break;
          default:
            os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs)
               << ", " << intRegName(inst.rt);
        }
        break;
      case InstrClass::IntMult:
      case InstrClass::IntDiv:
        os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs)
           << ", " << intRegName(inst.rt);
        break;
      case InstrClass::Load:
        os << ' '
           << (inst.isFpMem() ? fpRegName(inst.rd) : intRegName(inst.rd))
           << ", " << inst.imm << '(' << intRegName(inst.rs) << ')';
        break;
      case InstrClass::Store:
        os << ' '
           << (inst.isFpMem() ? fpRegName(inst.rt) : intRegName(inst.rt))
           << ", " << inst.imm << '(' << intRegName(inst.rs) << ')';
        break;
      case InstrClass::CondBranch:
        if (inst.op == Opcode::BEQ || inst.op == Opcode::BNE) {
            os << ' ' << intRegName(inst.rs) << ", " << intRegName(inst.rt)
               << ", " << target();
        } else if (inst.readsFcc()) {
            os << ' ' << target();
        } else {
            os << ' ' << intRegName(inst.rs) << ", " << target();
        }
        break;
      case InstrClass::DirectJump:
        os << ' ' << target();
        break;
      case InstrClass::IndirectJump:
        if (inst.op == Opcode::JALR)
            os << ' ' << intRegName(inst.rd) << ", " << intRegName(inst.rs);
        else
            os << ' ' << intRegName(inst.rs);
        break;
      case InstrClass::FpAlu:
      case InstrClass::FpMult:
      case InstrClass::FpDiv:
        switch (inst.op) {
          case Opcode::NEG_D: case Opcode::ABS_D: case Opcode::MOV_D:
            os << ' ' << fpRegName(inst.rd) << ", " << fpRegName(inst.rs);
            break;
          case Opcode::CVT_D_W:
            os << ' ' << fpRegName(inst.rd) << ", " << intRegName(inst.rs);
            break;
          case Opcode::CVT_W_D:
            os << ' ' << intRegName(inst.rd) << ", " << fpRegName(inst.rs);
            break;
          case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
            os << ' ' << fpRegName(inst.rs) << ", " << fpRegName(inst.rt);
            break;
          default:
            os << ' ' << fpRegName(inst.rd) << ", " << fpRegName(inst.rs)
               << ", " << fpRegName(inst.rt);
        }
        break;
      case InstrClass::Nop:
      case InstrClass::Halt:
        break;
    }
    return os.str();
}

} // namespace visa
