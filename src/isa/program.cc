#include "isa/program.hh"

#include "sim/logging.hh"

namespace visa
{

const Instruction &
Program::at(Addr pc) const
{
    if (!containsPc(pc))
        panic("Program::at: pc 0x%x outside text", pc);
    return text[(pc - textBase) / 4];
}

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("unknown symbol '%s'", name.c_str());
    return it->second;
}

} // namespace visa
