#include "isa/isa.hh"

#include "sim/logging.hh"

namespace visa
{

namespace detail
{

void
badOpcode(const char *who, Opcode op)
{
    panic("%s: bad opcode %d", who, static_cast<int>(op));
}

} // namespace detail

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::ADD:     return "add";
      case Opcode::SUB:     return "sub";
      case Opcode::MUL:     return "mul";
      case Opcode::DIV:     return "div";
      case Opcode::REM:     return "rem";
      case Opcode::AND:     return "and";
      case Opcode::OR:      return "or";
      case Opcode::XOR:     return "xor";
      case Opcode::NOR:     return "nor";
      case Opcode::SLT:     return "slt";
      case Opcode::SLTU:    return "sltu";
      case Opcode::SLLV:    return "sllv";
      case Opcode::SRLV:    return "srlv";
      case Opcode::SRAV:    return "srav";
      case Opcode::SLL:     return "sll";
      case Opcode::SRL:     return "srl";
      case Opcode::SRA:     return "sra";
      case Opcode::ADDI:    return "addi";
      case Opcode::ANDI:    return "andi";
      case Opcode::ORI:     return "ori";
      case Opcode::XORI:    return "xori";
      case Opcode::SLTI:    return "slti";
      case Opcode::SLTIU:   return "sltiu";
      case Opcode::LUI:     return "lui";
      case Opcode::LB:      return "lb";
      case Opcode::LBU:     return "lbu";
      case Opcode::LH:      return "lh";
      case Opcode::LHU:     return "lhu";
      case Opcode::LW:      return "lw";
      case Opcode::LDC1:    return "ldc1";
      case Opcode::SB:      return "sb";
      case Opcode::SH:      return "sh";
      case Opcode::SW:      return "sw";
      case Opcode::SDC1:    return "sdc1";
      case Opcode::BEQ:     return "beq";
      case Opcode::BNE:     return "bne";
      case Opcode::BLEZ:    return "blez";
      case Opcode::BGTZ:    return "bgtz";
      case Opcode::BLTZ:    return "bltz";
      case Opcode::BGEZ:    return "bgez";
      case Opcode::BC1T:    return "bc1t";
      case Opcode::BC1F:    return "bc1f";
      case Opcode::J:       return "j";
      case Opcode::JAL:     return "jal";
      case Opcode::JR:      return "jr";
      case Opcode::JALR:    return "jalr";
      case Opcode::ADD_D:   return "add.d";
      case Opcode::SUB_D:   return "sub.d";
      case Opcode::MUL_D:   return "mul.d";
      case Opcode::DIV_D:   return "div.d";
      case Opcode::NEG_D:   return "neg.d";
      case Opcode::ABS_D:   return "abs.d";
      case Opcode::MOV_D:   return "mov.d";
      case Opcode::CVT_D_W: return "cvt.d.w";
      case Opcode::CVT_W_D: return "cvt.w.d";
      case Opcode::C_EQ_D:  return "c.eq.d";
      case Opcode::C_LT_D:  return "c.lt.d";
      case Opcode::C_LE_D:  return "c.le.d";
      case Opcode::NOP:     return "nop";
      case Opcode::HALT:    return "halt";
      default:              return "<bad>";
    }
}

std::string
intRegName(int reg)
{
    return "r" + std::to_string(reg);
}

std::string
fpRegName(int reg)
{
    return "f" + std::to_string(reg);
}

} // namespace visa
