#include "isa/isa.hh"

#include "sim/logging.hh"

namespace visa
{

InstrClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR: case Opcode::NOR:
      case Opcode::SLT: case Opcode::SLTU:
      case Opcode::SLLV: case Opcode::SRLV: case Opcode::SRAV:
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLTI: case Opcode::SLTIU:
      case Opcode::LUI:
        return InstrClass::IntAlu;
      case Opcode::MUL:
        return InstrClass::IntMult;
      case Opcode::DIV: case Opcode::REM:
        return InstrClass::IntDiv;
      case Opcode::LB: case Opcode::LBU: case Opcode::LH: case Opcode::LHU:
      case Opcode::LW: case Opcode::LDC1:
        return InstrClass::Load;
      case Opcode::SB: case Opcode::SH: case Opcode::SW: case Opcode::SDC1:
        return InstrClass::Store;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLEZ:
      case Opcode::BGTZ: case Opcode::BLTZ: case Opcode::BGEZ:
      case Opcode::BC1T: case Opcode::BC1F:
        return InstrClass::CondBranch;
      case Opcode::J: case Opcode::JAL:
        return InstrClass::DirectJump;
      case Opcode::JR: case Opcode::JALR:
        return InstrClass::IndirectJump;
      case Opcode::ADD_D: case Opcode::SUB_D:
      case Opcode::NEG_D: case Opcode::ABS_D: case Opcode::MOV_D:
      case Opcode::CVT_D_W: case Opcode::CVT_W_D:
      case Opcode::C_EQ_D: case Opcode::C_LT_D: case Opcode::C_LE_D:
        return InstrClass::FpAlu;
      case Opcode::MUL_D:
        return InstrClass::FpMult;
      case Opcode::DIV_D:
        return InstrClass::FpDiv;
      case Opcode::NOP:
        return InstrClass::Nop;
      case Opcode::HALT:
        return InstrClass::Halt;
      default:
        panic("classOf: bad opcode %d", static_cast<int>(op));
    }
}

Cycles
latencyOf(Opcode op)
{
    // MIPS R10K execution latencies (paper Table 1). Loads/stores listed
    // as 1 here: address generation takes one execute cycle; the cache
    // access happens in the memory stage.
    switch (classOf(op)) {
      case InstrClass::IntAlu:       return 1;
      case InstrClass::IntMult:      return 6;
      case InstrClass::IntDiv:       return 35;
      case InstrClass::Load:         return 1;
      case InstrClass::Store:        return 1;
      case InstrClass::CondBranch:   return 1;
      case InstrClass::DirectJump:   return 1;
      case InstrClass::IndirectJump: return 1;
      case InstrClass::FpAlu:        return 2;
      case InstrClass::FpMult:       return 2;
      case InstrClass::FpDiv:        return 19;
      case InstrClass::Nop:          return 1;
      case InstrClass::Halt:         return 1;
    }
    panic("latencyOf: bad opcode %d", static_cast<int>(op));
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::ADD:     return "add";
      case Opcode::SUB:     return "sub";
      case Opcode::MUL:     return "mul";
      case Opcode::DIV:     return "div";
      case Opcode::REM:     return "rem";
      case Opcode::AND:     return "and";
      case Opcode::OR:      return "or";
      case Opcode::XOR:     return "xor";
      case Opcode::NOR:     return "nor";
      case Opcode::SLT:     return "slt";
      case Opcode::SLTU:    return "sltu";
      case Opcode::SLLV:    return "sllv";
      case Opcode::SRLV:    return "srlv";
      case Opcode::SRAV:    return "srav";
      case Opcode::SLL:     return "sll";
      case Opcode::SRL:     return "srl";
      case Opcode::SRA:     return "sra";
      case Opcode::ADDI:    return "addi";
      case Opcode::ANDI:    return "andi";
      case Opcode::ORI:     return "ori";
      case Opcode::XORI:    return "xori";
      case Opcode::SLTI:    return "slti";
      case Opcode::SLTIU:   return "sltiu";
      case Opcode::LUI:     return "lui";
      case Opcode::LB:      return "lb";
      case Opcode::LBU:     return "lbu";
      case Opcode::LH:      return "lh";
      case Opcode::LHU:     return "lhu";
      case Opcode::LW:      return "lw";
      case Opcode::LDC1:    return "ldc1";
      case Opcode::SB:      return "sb";
      case Opcode::SH:      return "sh";
      case Opcode::SW:      return "sw";
      case Opcode::SDC1:    return "sdc1";
      case Opcode::BEQ:     return "beq";
      case Opcode::BNE:     return "bne";
      case Opcode::BLEZ:    return "blez";
      case Opcode::BGTZ:    return "bgtz";
      case Opcode::BLTZ:    return "bltz";
      case Opcode::BGEZ:    return "bgez";
      case Opcode::BC1T:    return "bc1t";
      case Opcode::BC1F:    return "bc1f";
      case Opcode::J:       return "j";
      case Opcode::JAL:     return "jal";
      case Opcode::JR:      return "jr";
      case Opcode::JALR:    return "jalr";
      case Opcode::ADD_D:   return "add.d";
      case Opcode::SUB_D:   return "sub.d";
      case Opcode::MUL_D:   return "mul.d";
      case Opcode::DIV_D:   return "div.d";
      case Opcode::NEG_D:   return "neg.d";
      case Opcode::ABS_D:   return "abs.d";
      case Opcode::MOV_D:   return "mov.d";
      case Opcode::CVT_D_W: return "cvt.d.w";
      case Opcode::CVT_W_D: return "cvt.w.d";
      case Opcode::C_EQ_D:  return "c.eq.d";
      case Opcode::C_LT_D:  return "c.lt.d";
      case Opcode::C_LE_D:  return "c.le.d";
      case Opcode::NOP:     return "nop";
      case Opcode::HALT:    return "halt";
      default:              return "<bad>";
    }
}

std::string
intRegName(int reg)
{
    return "r" + std::to_string(reg);
}

std::string
fpRegName(int reg)
{
    return "f" + std::to_string(reg);
}

} // namespace visa
