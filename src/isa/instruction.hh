/**
 * @file
 * Decoded instruction representation plus operand/hazard queries used by
 * both pipeline simulators and the WCET pipeline model.
 */

#ifndef VISA_ISA_INSTRUCTION_HH
#define VISA_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "isa/isa.hh"

namespace visa
{

/**
 * A decoded VPISA instruction. Field meaning depends on the opcode:
 *  - rd: destination register (int or FP per opcode),
 *  - rs, rt: source registers (int or FP per opcode),
 *  - imm: sign-extended immediate, shift amount, or branch/jump target
 *    (branches/jumps store the *absolute byte address* of the target
 *    after assembly, which makes CFG construction trivial).
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::int32_t imm = 0;

    /** @return the functional class. */
    InstrClass cls() const { return classOf(op); }
    /** @return execution latency on the universal FU. */
    Cycles latency() const { return latencyOf(op); }

    bool isLoad() const { return cls() == InstrClass::Load; }
    bool isStore() const { return cls() == InstrClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isCondBranch() const { return cls() == InstrClass::CondBranch; }
    bool isDirectJump() const { return cls() == InstrClass::DirectJump; }
    bool isIndirectJump() const { return cls() == InstrClass::IndirectJump; }
    /** Any instruction that can redirect fetch. */
    bool
    isControl() const
    {
        auto c = cls();
        return c == InstrClass::CondBranch || c == InstrClass::DirectJump ||
               c == InstrClass::IndirectJump;
    }
    bool isHalt() const { return op == Opcode::HALT; }
    bool isNop() const { return op == Opcode::NOP; }

    /** @return true if the conditional branch target is backward. */
    bool
    isBackward(Addr pc) const
    {
        return static_cast<Addr>(imm) <= pc;
    }

    /** True for loads/stores that move a 64-bit FP value. */
    bool isFpMem() const { return op == Opcode::LDC1 || op == Opcode::SDC1; }

    /** Byte width of the memory access (0 for non-memory ops). */
    int
    memBytes() const
    {
        const auto i = static_cast<std::size_t>(op);
        return i < detail::numOpcodeSlots ? detail::memBytesTable[i] : 0;
    }

    /**
     * Destination integer register, or -1. Writes to r0 are reported
     * as no destination (r0 is hard-wired).
     *
     * These operand/hazard queries are defined inline below: both
     * pipeline simulators call several of them per simulated
     * instruction (dispatch renaming, activity accounting, the
     * load-use interlock), so they must not cost a function call.
     */
    int destIntReg() const;
    /** Destination FP register, or -1. */
    int destFpReg() const;
    /** True if this instruction writes the FP condition code. */
    bool writesFcc() const;
    /** True if this instruction reads the FP condition code. */
    bool readsFcc() const;

    /** Source integer registers; -1 entries are unused slots. */
    std::array<int, 2> srcIntRegs() const;
    /** Source FP registers; -1 entries are unused slots. */
    std::array<int, 2> srcFpRegs() const;

    /**
     * @return true if this instruction has a RAW dependence on a
     * producer instruction @p prod (register or FCC carried).
     */
    bool dependsOn(const Instruction &prod) const;

    bool operator==(const Instruction &o) const = default;
};

// Each query reduces to one load from detail::operandTable plus flag
// tests; the roles themselves are encoded next to the class/latency
// tables in isa.hh.

inline int
Instruction::destIntReg() const
{
    const auto f = detail::operandFlags(op);
    int d = -1;
    if (f & detail::opDestRdInt)
        d = rd;
    else if (f & detail::opDestRaInt)
        d = reg::ra;
    return d == 0 ? -1 : d;    // writes to r0 are discarded
}

inline int
Instruction::destFpReg() const
{
    return (detail::operandFlags(op) & detail::opDestRdFp) ? rd : -1;
}

inline bool
Instruction::writesFcc() const
{
    return detail::operandFlags(op) & detail::opWritesFcc;
}

inline bool
Instruction::readsFcc() const
{
    return detail::operandFlags(op) & detail::opReadsFcc;
}

inline std::array<int, 2>
Instruction::srcIntRegs() const
{
    const auto f = detail::operandFlags(op);
    return {(f & detail::opSrcRsInt) ? rs : -1,
            (f & detail::opSrcRtInt) ? rt : -1};
}

inline std::array<int, 2>
Instruction::srcFpRegs() const
{
    // An FP source can sit in either field (rs for FP ALU ops, rt for
    // SDC1's data operand); consumers treat the slots symmetrically.
    const auto f = detail::operandFlags(op);
    return {(f & detail::opSrcRsFp) ? rs : -1,
            (f & detail::opSrcRtFp) ? rt : -1};
}

inline bool
Instruction::dependsOn(const Instruction &prod) const
{
    int pd = prod.destIntReg();
    if (pd >= 0) {
        for (int s : srcIntRegs())
            if (s == pd)
                return true;
    }
    int pf = prod.destFpReg();
    if (pf >= 0) {
        for (int s : srcFpRegs())
            if (s == pf)
                return true;
    }
    if (prod.writesFcc() && readsFcc())
        return true;
    return false;
}

/** Render @p inst as assembly text; @p pc is used for branch targets. */
std::string disassemble(const Instruction &inst, Addr pc);

} // namespace visa

#endif // VISA_ISA_INSTRUCTION_HH
