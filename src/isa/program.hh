/**
 * @file
 * An assembled program image: text, initialized data, symbols, and the
 * annotations the WCET analyzer consumes (loop bounds, sub-task marks).
 */

#ifndef VISA_ISA_PROGRAM_HH
#define VISA_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace visa
{

/** Default base address of the text segment (SimpleScalar convention). */
inline constexpr Addr defaultTextBase = 0x00400000u;
/** Default base address of the data segment. */
inline constexpr Addr defaultDataBase = 0x10000000u;
/** Default initial stack pointer (grows down). */
inline constexpr Addr defaultStackTop = 0x7FFF0000u;

/** An assembled, loadable program. */
struct Program
{
    Addr textBase = defaultTextBase;
    Addr dataBase = defaultDataBase;
    Addr entry = defaultTextBase;

    /** Decoded instructions, in address order starting at textBase. */
    std::vector<Instruction> text;
    /** Encoded 32-bit words, parallel to @ref text. */
    std::vector<Word> words;
    /** Initialized data bytes starting at dataBase. */
    std::vector<std::uint8_t> data;

    /** Label name -> address (text and data labels). */
    std::map<std::string, Addr> symbols;

    /**
     * Loop bound annotations: address of the *branch instruction* that
     * forms a loop back edge -> maximum number of body iterations per
     * loop entry (`.loopbound N` in the assembler). The back edge is
     * therefore taken at most N-1 times per entry — which is why the
     * WCET analyzer charges N-1 repeat iterations on top of the first.
     */
    std::map<Addr, std::uint64_t> loopBounds;

    /** Sub-task start markers: address -> sub-task index (1-based). */
    std::map<Addr, int> subtaskStarts;

    /** @return the number of instructions in the text segment. */
    std::size_t size() const { return text.size(); }

    /** @return the address one past the last text instruction. */
    Addr
    textEnd() const
    {
        return textBase + static_cast<Addr>(text.size() * 4);
    }

    /** @return true if @p pc addresses an instruction in this program. */
    bool
    containsPc(Addr pc) const
    {
        return pc >= textBase && pc < textEnd() && (pc & 3) == 0;
    }

    /** @return the instruction at @p pc (must be contained). */
    const Instruction &at(Addr pc) const;

    /** @return the address of label @p name; fatal if unknown. */
    Addr symbol(const std::string &name) const;
};

} // namespace visa

#endif // VISA_ISA_PROGRAM_HH
