/**
 * @file
 * cnt: count and sum the positive elements of a 64x64 integer matrix
 * (C-lab "cnt"). Five sub-tasks of 13/13/13/13/12 rows (Table 3 lists
 * 5 sub-tasks for cnt). The matrix is a read-only master. Checksum:
 * sum ^ (count << 16).
 */

#include "workloads/clab.hh"

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int cntN = 64;
constexpr int cntSubtasks = 5;

std::vector<std::int32_t>
cntMatrix()
{
    // The original C-lab cnt fills the matrix with rand()%25:
    // non-negative values, so the sign test is highly biased.
    Lcg lcg(0xC047);
    std::vector<std::int32_t> m(cntN * cntN);
    for (auto &v : m)
        v = lcg.range(0, 24);
    return m;
}

Word
cntGolden(const std::vector<std::int32_t> &m)
{
    Word sum = 0;
    Word count = 0;
    for (std::int32_t v : m) {
        if (v > 0) {
            sum += static_cast<Word>(v);
            ++count;
        }
    }
    return sum ^ (count << 16);
}

} // anonymous namespace

Workload
makeCnt()
{
    auto m = cntMatrix();

    AsmBuilder bld;
    bld.ins(".text");
    int row = 0;
    for (int s = 0; s < cntSubtasks; ++s) {
        const int rows =
            (cntN - row) / (cntSubtasks - s);    // 13,13,13,13,12
        const int row0 = row;
        const int row1 = row + rows;
        row = row1;
        bld.subtaskBegin(s + 1);
        if (s == 0) {
            bld.ins("li r22, 0");    // positive count
            bld.ins("li r23, 0");    // positive sum
        }
        bld.ins("li r2, %d", row0);
        bld.label("cnt_i_" + std::to_string(s));
        bld.ins("li r20, %d", cntN * 4);
        bld.ins("mul r4, r2, r20");
        bld.ins("la r5, cntM");
        bld.ins("add r5, r5, r4");    // &M[i][0]
        bld.ins("li r10, %d", cntN);
        bld.label("cnt_e_" + std::to_string(s));
        bld.ins("lw r4, 0(r5)");
        bld.ins("blez r4, cnt_skip_%d", s);
        bld.ins("add r23, r23, r4");
        bld.ins("addi r22, r22, 1");
        bld.label("cnt_skip_" + std::to_string(s));
        bld.ins("addi r5, r5, 4");
        bld.ins("subi r10, r10, 1");
        bld.ins(".loopbound %d", cntN);
        bld.ins("bgtz r10, cnt_e_%d", s);
        bld.ins("addi r2, r2, 1");
        bld.ins("slti r4, r2, %d", row1);
        bld.ins(".loopbound %d", rows);
        bld.ins("bne r4, r0, cnt_i_%d", s);
    }
    bld.ins("sll r24, r22, 16");
    bld.ins("xor r24, r23, r24");
    bld.taskEnd("r24");

    bld.beginData();
    bld.words("cntM", m);

    Workload w;
    w.name = "cnt";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = cntGolden(m);
    return w;
}

} // namespace visa
