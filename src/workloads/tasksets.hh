/**
 * @file
 * Task-set vocabulary for the multi-task scheduler experiments: named
 * benchmark bundles (built from the C-lab suite) and a parser for
 * ad-hoc "cnt,mm:2,srt" member lists. This module only names members;
 * budgets and periods are derived by the harness (bench/bench_util.hh)
 * from the analyzed WCETs and a target core utilization.
 */

#ifndef VISA_WORKLOADS_TASKSETS_HH
#define VISA_WORKLOADS_TASKSETS_HH

#include <string>
#include <vector>

namespace visa
{

/** One member of a task set. */
struct TaskSetMemberSpec
{
    std::string workload;
    /**
     * Multiplies this member's derived period, lowering its share of
     * the target utilization (the harness scales the whole set so the
     * total still hits the target when all scales are 1).
     */
    double periodScale = 1.0;
};

/** Names of the predefined task sets (see parseTaskSet). */
const std::vector<std::string> &taskSetNames();

/**
 * Resolve @p spec into members: either a predefined set name ("trio",
 * "duo", "clab6", "mixed"), or a comma-separated member list where
 * each member is `workload[:periodScale]` (e.g. "cnt,mm:2,srt:1.5").
 * Workload names are validated against the benchmark suite; fatal on
 * unknown names, malformed scales, or an empty spec.
 */
std::vector<TaskSetMemberSpec> parseTaskSet(const std::string &spec);

} // namespace visa

#endif // VISA_WORKLOADS_TASKSETS_HH
