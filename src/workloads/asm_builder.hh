/**
 * @file
 * Assembly-source builder shared by the C-lab workload generators:
 * emits the sub-task instrumentation snippets of paper §2.2/§4.3
 * (watchdog advance, cycle-counter reset, AET reporting) and data
 * helpers. Snippets clobber r1 (at) and r25 only; workload code must
 * keep its state out of those two registers.
 */

#ifndef VISA_WORKLOADS_ASM_BUILDER_HH
#define VISA_WORKLOADS_ASM_BUILDER_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace visa
{

/** Incremental assembly text builder. */
class AsmBuilder
{
  public:
    /** Append one instruction/directive line (printf-style). */
    void
    ins(const char *fmt, ...) __attribute__((format(printf, 2, 3)))
    {
        va_list ap;
        va_start(ap, fmt);
        char buf[256];
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        src_ += "        ";
        src_ += buf;
        src_ += '\n';
    }

    /** Append a label line. */
    void
    label(const std::string &name)
    {
        src_ += name;
        src_ += ":\n";
    }

    /** Append raw text. */
    void raw(const std::string &text) { src_ += text; }

    /**
     * Emit the sub-task begin snippet: report the previous sub-task's
     * AET (not for the first), announce the new sub-task, reset the
     * cycle counter, and advance the watchdog from the wdinc parameter
     * table the run-time system maintains in guest memory.
     */
    void
    subtaskBegin(int i)
    {
        ins(".subtask %d", i);
        if (i > 1) {
            ins("li r25, 0x%X", mmio::cycleCounter);
            ins("lw r1, 0(r25)");
            ins("li r25, 0x%X", mmio::aetReport);
            ins("sw r1, 0(r25)");    // attributed to sub-task i-1
        }
        ins("li r25, 0x%X", mmio::subtaskId);
        ins("li r1, %d", i);
        ins("sw r1, 0(r25)");
        ins("li r25, 0x%X", mmio::cycleCounter);
        ins("sw r0, 0(r25)");
        ins("la r25, wdinc");
        ins("lw r1, %d(r25)", 4 * (i - 1));
        ins("li r25, 0x%X", mmio::watchdog);
        ins("sw r1, 0(r25)");
        if (i > numSubtasks_)
            numSubtasks_ = i;
    }

    /**
     * Emit the task epilogue: report the last sub-task's AET, publish
     * the functional checksum from @p ck_reg, and halt.
     */
    void
    taskEnd(const char *ck_reg)
    {
        ins("li r25, 0x%X", mmio::cycleCounter);
        ins("lw r1, 0(r25)");
        ins("li r25, 0x%X", mmio::aetReport);
        ins("sw r1, 0(r25)");
        ins("li r25, 0x%X", mmio::checksum);
        ins("sw %s, 0(r25)", ck_reg);
        ins("halt");
    }

    /** Switch to the data segment. */
    void beginData() { src_ += "        .data\n"; }

    /** Emit labelled .word data, 8 values per line. */
    void
    words(const std::string &name, const std::vector<std::int32_t> &vals)
    {
        label(name);
        for (std::size_t i = 0; i < vals.size(); i += 8) {
            std::string line = "        .word ";
            for (std::size_t j = i; j < std::min(i + 8, vals.size());
                 ++j) {
                if (j > i)
                    line += ", ";
                line += std::to_string(vals[j]);
            }
            src_ += line + "\n";
        }
    }

    /** Emit labelled .double data, 4 values per line. */
    void
    doubles(const std::string &name, const std::vector<double> &vals)
    {
        label(name);
        for (std::size_t i = 0; i < vals.size(); i += 4) {
            std::string line = "        .double ";
            for (std::size_t j = i; j < std::min(i + 4, vals.size());
                 ++j) {
                if (j > i)
                    line += ", ";
                char buf[48];
                std::snprintf(buf, sizeof(buf), "%.17g", vals[j]);
                line += buf;
            }
            src_ += line + "\n";
        }
    }

    /** Emit labelled zeroed space. */
    void
    space(const std::string &name, std::size_t bytes)
    {
        label(name);
        ins(".space %zu", bytes);
    }

    /**
     * Finalize: appends the wdinc parameter table sized to the number
     * of sub-tasks emitted, and returns the full source.
     */
    std::string
    finish()
    {
        src_ += "wdinc:\n";
        ins(".space %d", 4 * std::max(numSubtasks_, 1));
        return src_;
    }

    int numSubtasks() const { return numSubtasks_; }

  private:
    std::string src_;
    int numSubtasks_ = 0;
};

/** Deterministic LCG for reproducible workload inputs. */
class Lcg
{
  public:
    explicit Lcg(std::uint32_t seed) : state_(seed) {}

    std::uint32_t
    next()
    {
        state_ = state_ * 1664525u + 1013904223u;
        return state_;
    }

    /** Uniform in [lo, hi]. */
    std::int32_t
    range(std::int32_t lo, std::int32_t hi)
    {
        return lo + static_cast<std::int32_t>(
                        next() % static_cast<std::uint32_t>(hi - lo + 1));
    }

    /** Uniform double in [-1, 1) with 20-bit resolution. */
    double
    unit()
    {
        return (static_cast<double>(next() >> 12) /
                static_cast<double>(1u << 20)) *
                   2.0 -
               1.0;
    }

  private:
    std::uint32_t state_;
};

} // namespace visa

#endif // VISA_WORKLOADS_ASM_BUILDER_HH
