/**
 * @file
 * adpcm: IMA ADPCM speech encoder (C-lab "adpcm"). 1600 16-bit
 * samples, peeled into 8 sub-tasks of 200 samples (Table 3 lists 8
 * sub-tasks for adpcm). Heavy data-dependent forward branching
 * (sign/quantize/clamp), which is exactly what makes its WCET bound
 * loose (Table 3: 1.35x). Checksum: wrapping sum of every emitted
 * code and predictor value.
 */

#include "workloads/clab.hh"

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int adpcmSamples = 1600;
constexpr int adpcmSubtasks = 8;
constexpr int adpcmChunk = adpcmSamples / adpcmSubtasks;

const std::int32_t stepsizeTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

const std::int32_t indexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                     -1, -1, -1, -1, 2, 4, 6, 8};

std::vector<std::int32_t>
adpcmInput()
{
    // A synthetic speech-like signal: a couple of mixed tones with
    // deterministic jitter.
    Lcg lcg(0xADCF);
    std::vector<std::int32_t> v(adpcmSamples);
    double phase1 = 0.0, phase2 = 0.0;
    for (int i = 0; i < adpcmSamples; ++i) {
        phase1 += 0.07;
        phase2 += 0.023;
        double s = 9000.0 * (phase1 - static_cast<int>(phase1) - 0.5) +
                   6000.0 * (phase2 - static_cast<int>(phase2) - 0.5);
        v[static_cast<std::size_t>(i)] =
            static_cast<std::int32_t>(s) + lcg.range(-800, 800);
    }
    return v;
}

Word
adpcmGolden(const std::vector<std::int32_t> &in)
{
    Word ck = 0;
    std::int32_t valpred = 0;
    std::int32_t index = 0;
    for (std::int32_t val : in) {
        std::int32_t step = stepsizeTable[index];
        std::int32_t diff = val - valpred;
        std::int32_t sign = 0;
        if (diff < 0) {
            sign = 8;
            diff = -diff;
        }
        std::int32_t delta = 0;
        std::int32_t vpdiff = step >> 3;
        if (diff >= step) {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 1;
            vpdiff += step;
        }
        if (sign)
            valpred -= vpdiff;
        else
            valpred += vpdiff;
        if (valpred > 32767)
            valpred = 32767;
        else if (valpred < -32768)
            valpred = -32768;
        delta |= sign;
        index += indexTable[delta];
        if (index < 0)
            index = 0;
        else if (index > 88)
            index = 88;
        ck += static_cast<Word>(delta);
        ck += static_cast<Word>(valpred);
    }
    return ck;
}

} // anonymous namespace

Workload
makeAdpcm()
{
    auto input = adpcmInput();

    AsmBuilder bld;
    bld.ins(".text");
    for (int s = 0; s < adpcmSubtasks; ++s) {
        bld.subtaskBegin(s + 1);
        if (s == 0) {
            bld.ins("li r16, 0");    // valpred
            bld.ins("li r17, 0");    // index
            bld.ins("li r24, 0");    // checksum
            bld.ins("la r3, adpcmIn");
            bld.ins("la r5, adpcmOut");
            bld.ins("la r18, adpcmStep");
            bld.ins("la r19, adpcmIdx");
        }
        bld.ins("li r2, %d", adpcmChunk);
        bld.label("adpcm_s_" + std::to_string(s));
        bld.ins("lw r4, 0(r3)");            // val
        bld.ins("sll r6, r17, 2");
        bld.ins("add r6, r6, r18");
        bld.ins("lw r7, 0(r6)");            // step
        bld.ins("sub r8, r4, r16");         // diff
        bld.ins("li r9, 0");                // sign
        bld.ins("bgez r8, adpcm_pos_%d", s);
        bld.ins("li r9, 8");
        bld.ins("sub r8, r0, r8");
        bld.label("adpcm_pos_" + std::to_string(s));
        bld.ins("li r10, 0");               // delta
        bld.ins("sra r11, r7, 3");          // vpdiff
        bld.ins("slt r4, r8, r7");
        bld.ins("bne r4, r0, adpcm_no4_%d", s);
        bld.ins("ori r10, r10, 4");
        bld.ins("sub r8, r8, r7");
        bld.ins("add r11, r11, r7");
        bld.label("adpcm_no4_" + std::to_string(s));
        bld.ins("sra r7, r7, 1");
        bld.ins("slt r4, r8, r7");
        bld.ins("bne r4, r0, adpcm_no2_%d", s);
        bld.ins("ori r10, r10, 2");
        bld.ins("sub r8, r8, r7");
        bld.ins("add r11, r11, r7");
        bld.label("adpcm_no2_" + std::to_string(s));
        bld.ins("sra r7, r7, 1");
        bld.ins("slt r4, r8, r7");
        bld.ins("bne r4, r0, adpcm_no1_%d", s);
        bld.ins("ori r10, r10, 1");
        bld.ins("add r11, r11, r7");
        bld.label("adpcm_no1_" + std::to_string(s));
        bld.ins("beq r9, r0, adpcm_up_%d", s);
        bld.ins("sub r16, r16, r11");
        bld.ins("j adpcm_clamp_%d", s);
        bld.label("adpcm_up_" + std::to_string(s));
        bld.ins("add r16, r16, r11");
        bld.label("adpcm_clamp_" + std::to_string(s));
        bld.ins("li r4, 32767");
        bld.ins("slt r6, r4, r16");
        bld.ins("beq r6, r0, adpcm_nohi_%d", s);
        bld.ins("move r16, r4");
        bld.label("adpcm_nohi_" + std::to_string(s));
        bld.ins("li r4, -32768");
        bld.ins("slt r6, r16, r4");
        bld.ins("beq r6, r0, adpcm_nolo_%d", s);
        bld.ins("move r16, r4");
        bld.label("adpcm_nolo_" + std::to_string(s));
        bld.ins("or r10, r10, r9");
        bld.ins("sll r4, r10, 2");
        bld.ins("add r4, r4, r19");
        bld.ins("lw r6, 0(r4)");
        bld.ins("add r17, r17, r6");
        bld.ins("bgez r17, adpcm_idxlo_%d", s);
        bld.ins("li r17, 0");
        bld.label("adpcm_idxlo_" + std::to_string(s));
        bld.ins("li r4, 88");
        bld.ins("slt r6, r4, r17");
        bld.ins("beq r6, r0, adpcm_idxhi_%d", s);
        bld.ins("move r17, r4");
        bld.label("adpcm_idxhi_" + std::to_string(s));
        bld.ins("sb r10, 0(r5)");
        bld.ins("add r24, r24, r10");
        bld.ins("add r24, r24, r16");
        bld.ins("addi r3, r3, 4");
        bld.ins("addi r5, r5, 1");
        bld.ins("subi r2, r2, 1");
        bld.ins(".loopbound %d", adpcmChunk);
        bld.ins("bgtz r2, adpcm_s_%d", s);
    }
    bld.taskEnd("r24");

    bld.beginData();
    bld.words("adpcmIn", input);
    bld.words("adpcmStep",
              std::vector<std::int32_t>(stepsizeTable,
                                        stepsizeTable + 89));
    bld.words("adpcmIdx",
              std::vector<std::int32_t>(indexTable, indexTable + 16));
    bld.space("adpcmOut", adpcmSamples);

    Workload w;
    w.name = "adpcm";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = adpcmGolden(input);
    return w;
}

} // namespace visa
