/**
 * @file
 * crc: bitwise CRC-32 over a message buffer (C-lab "crc"). The
 * byte loop is peeled into 8 sub-tasks; the inner 8-iteration bit loop
 * is the classic nested-loop shape static timing analysis handles
 * well. Extended-suite benchmark (not part of the paper's Table 3
 * six, but in the same C-lab family).
 */

#include "workloads/clab.hh"

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int crcBytes = 480;
constexpr int crcSubtasks = 8;
constexpr int crcChunk = crcBytes / crcSubtasks;
constexpr std::uint32_t crcPoly = 0xEDB88320u;

std::vector<std::int32_t>
crcMessage()
{
    Lcg lcg(0xC12C);
    std::vector<std::int32_t> v(crcBytes);
    for (auto &b : v)
        b = lcg.range(0, 255);
    return v;
}

Word
crcGolden(const std::vector<std::int32_t> &msg)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::int32_t byte : msg) {
        crc ^= static_cast<std::uint32_t>(byte);
        for (int b = 0; b < 8; ++b) {
            if (crc & 1)
                crc = (crc >> 1) ^ crcPoly;
            else
                crc >>= 1;
        }
    }
    return ~crc;
}

} // anonymous namespace

Workload
makeCrc()
{
    auto msg = crcMessage();

    AsmBuilder bld;
    bld.ins(".text");
    for (int s = 0; s < crcSubtasks; ++s) {
        bld.subtaskBegin(s + 1);
        if (s == 0) {
            bld.ins("li r16, -1");            // crc = 0xFFFFFFFF
            bld.ins("la r3, crcMsg");
            bld.ins("li r17, 0x%X", crcPoly >> 16);
            bld.ins("sll r17, r17, 16");
            bld.ins("ori r17, r17, 0x%X", crcPoly & 0xFFFF);
        }
        bld.ins("li r2, %d", crcChunk);
        bld.label("crc_byte_" + std::to_string(s));
        bld.ins("lw r4, 0(r3)");              // message byte (as word)
        bld.ins("xor r16, r16, r4");
        bld.ins("li r5, 8");                  // bit counter
        bld.label("crc_bit_" + std::to_string(s));
        bld.ins("andi r6, r16, 1");
        bld.ins("srl r16, r16, 1");
        bld.ins("beq r6, r0, crc_nox_%d", s);
        bld.ins("xor r16, r16, r17");
        bld.label("crc_nox_" + std::to_string(s));
        bld.ins("subi r5, r5, 1");
        bld.ins(".loopbound 8");
        bld.ins("bgtz r5, crc_bit_%d", s);
        bld.ins("addi r3, r3, 4");
        bld.ins("subi r2, r2, 1");
        bld.ins(".loopbound %d", crcChunk);
        bld.ins("bgtz r2, crc_byte_%d", s);
    }
    bld.ins("not r24, r16");    // final inversion
    bld.taskEnd("r24");

    bld.beginData();
    bld.words("crcMsg", msg);

    Workload w;
    w.name = "crc";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = crcGolden(msg);
    return w;
}

} // namespace visa
