/**
 * @file
 * fir: integer FIR filter, 32 taps over 320 samples (C-lab "fir").
 * The sample loop is peeled into 8 sub-tasks; outputs are written to a
 * result buffer and folded into the checksum. Extended-suite
 * benchmark.
 */

#include "workloads/clab.hh"

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int firTaps = 32;
constexpr int firSamples = 320;
constexpr int firSubtasks = 8;
constexpr int firChunk = firSamples / firSubtasks;

std::vector<std::int32_t>
firSignal(std::uint32_t seed, int n, int lo, int hi)
{
    Lcg lcg(seed);
    std::vector<std::int32_t> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = lcg.range(lo, hi);
    return v;
}

Word
firGolden(const std::vector<std::int32_t> &x,
          const std::vector<std::int32_t> &h)
{
    Word ck = 0;
    for (int i = 0; i < firSamples; ++i) {
        Word acc = 0;
        for (int k = 0; k < firTaps; ++k) {
            acc += static_cast<Word>(x[static_cast<std::size_t>(i + k)]) *
                   static_cast<Word>(h[static_cast<std::size_t>(k)]);
        }
        Word y = static_cast<Word>(
            static_cast<std::int32_t>(acc) >> 6);
        ck += y;
    }
    return ck;
}

} // anonymous namespace

Workload
makeFir()
{
    auto x = firSignal(0xF14, firSamples + firTaps, -2000, 2000);
    auto h = firSignal(0x7A9, firTaps, -64, 64);

    AsmBuilder bld;
    bld.ins(".text");
    for (int s = 0; s < firSubtasks; ++s) {
        bld.subtaskBegin(s + 1);
        if (s == 0) {
            bld.ins("li r24, 0");      // checksum
            bld.ins("li r3, 0");       // global sample index
            bld.ins("la r20, firOut");
        }
        bld.ins("li r2, %d", firChunk);
        bld.label("fir_s_" + std::to_string(s));
        bld.ins("la r5, firH");
        bld.ins("la r6, firX");
        bld.ins("sll r4, r3, 2");
        bld.ins("add r6, r6, r4");     // &x[i]
        bld.ins("li r9, 0");           // acc
        bld.ins("li r10, %d", firTaps);
        bld.label("fir_tap_" + std::to_string(s));
        bld.ins("lw r11, 0(r6)");
        bld.ins("lw r12, 0(r5)");
        bld.ins("mul r11, r11, r12");
        bld.ins("add r9, r9, r11");
        bld.ins("addi r5, r5, 4");
        bld.ins("addi r6, r6, 4");
        bld.ins("subi r10, r10, 1");
        bld.ins(".loopbound %d", firTaps);
        bld.ins("bgtz r10, fir_tap_%d", s);
        bld.ins("sra r9, r9, 6");      // scale
        bld.ins("sw r9, 0(r20)");
        bld.ins("add r24, r24, r9");
        bld.ins("addi r20, r20, 4");
        bld.ins("addi r3, r3, 1");
        bld.ins("subi r2, r2, 1");
        bld.ins(".loopbound %d", firChunk);
        bld.ins("bgtz r2, fir_s_%d", s);
    }
    bld.taskEnd("r24");

    bld.beginData();
    bld.words("firX", x);
    bld.words("firH", h);
    bld.space("firOut", firSamples * 4);

    Workload w;
    w.name = "fir";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = firGolden(x, h);
    return w;
}

} // namespace visa
