/**
 * @file
 * lms: least-mean-squares adaptive FIR filter (C-lab "lms"). 32 taps,
 * 160 samples peeled into 10 sub-tasks of 16. Double-precision
 * arithmetic throughout; the weight vector is working state
 * re-initialized to zero each period. Checksum: the truncated sum of
 * the final weights scaled by 2^20 (identical operation order on the
 * host reference makes this bit-exact).
 */

#include "workloads/clab.hh"

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int lmsTaps = 32;
constexpr int lmsSamples = 160;
constexpr int lmsSubtasks = 10;
constexpr int lmsChunk = lmsSamples / lmsSubtasks;
constexpr double lmsMu = 0.002;

std::vector<double>
lmsSignal(std::uint32_t seed, int n)
{
    Lcg lcg(seed);
    std::vector<double> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = lcg.unit();
    return v;
}

Word
lmsGolden(const std::vector<double> &x, const std::vector<double> &d)
{
    double w[lmsTaps] = {};
    for (int i = 0; i < lmsSamples; ++i) {
        double y = 0.0;
        for (int k = 0; k < lmsTaps; ++k)
            y += w[k] * x[static_cast<std::size_t>(i + k)];
        double e = d[static_cast<std::size_t>(i)] - y;
        double mue = e * lmsMu;
        for (int k = 0; k < lmsTaps; ++k)
            w[k] += x[static_cast<std::size_t>(i + k)] * mue;
    }
    double sum = 0.0;
    for (int k = 0; k < lmsTaps; ++k)
        sum += w[k];
    return static_cast<Word>(
        static_cast<std::int32_t>(sum * 1048576.0));
}

} // anonymous namespace

Workload
makeLms()
{
    auto x = lmsSignal(0x115, lmsSamples + lmsTaps);
    auto d = lmsSignal(0xDE5, lmsSamples);

    AsmBuilder bld;
    bld.ins(".text");
    for (int s = 0; s < lmsSubtasks; ++s) {
        bld.subtaskBegin(s + 1);
        if (s == 0) {
            // Zero the weight vector (fresh adaptation each period).
            bld.ins("cvt.d.w f2, r0");
            bld.ins("la r5, lmsW");
            bld.ins("li r10, %d", lmsTaps);
            bld.label("lms_zero");
            bld.ins("sdc1 f2, 0(r5)");
            bld.ins("addi r5, r5, 8");
            bld.ins("subi r10, r10, 1");
            bld.ins(".loopbound %d", lmsTaps);
            bld.ins("bgtz r10, lms_zero");
            bld.ins("la r20, lmsMuV");
            bld.ins("ldc1 f2, 0(r20)");    // mu
            bld.ins("li r3, 0");           // global sample index
        }
        bld.ins("li r2, %d", lmsChunk);
        bld.label("lms_s_" + std::to_string(s));
        // FIR: y = sum w[k] * x[i+k]
        bld.ins("cvt.d.w f4, r0");
        bld.ins("la r5, lmsW");
        bld.ins("la r6, lmsX");
        bld.ins("sll r4, r3, 3");
        bld.ins("add r6, r6, r4");
        bld.ins("li r10, %d", lmsTaps);
        bld.label("lms_fir_" + std::to_string(s));
        bld.ins("ldc1 f8, 0(r5)");
        bld.ins("ldc1 f10, 0(r6)");
        bld.ins("mul.d f8, f8, f10");
        bld.ins("add.d f4, f4, f8");
        bld.ins("addi r5, r5, 8");
        bld.ins("addi r6, r6, 8");
        bld.ins("subi r10, r10, 1");
        bld.ins(".loopbound %d", lmsTaps);
        bld.ins("bgtz r10, lms_fir_%d", s);
        // e = d[i] - y; mue = e * mu
        bld.ins("la r7, lmsD");
        bld.ins("sll r4, r3, 3");
        bld.ins("add r7, r7, r4");
        bld.ins("ldc1 f6, 0(r7)");
        bld.ins("sub.d f6, f6, f4");
        bld.ins("mul.d f6, f6, f2");
        // w[k] += x[i+k] * mue
        bld.ins("la r5, lmsW");
        bld.ins("la r6, lmsX");
        bld.ins("sll r4, r3, 3");
        bld.ins("add r6, r6, r4");
        bld.ins("li r10, %d", lmsTaps);
        bld.label("lms_upd_" + std::to_string(s));
        bld.ins("ldc1 f10, 0(r6)");
        bld.ins("mul.d f10, f10, f6");
        bld.ins("ldc1 f8, 0(r5)");
        bld.ins("add.d f8, f8, f10");
        bld.ins("sdc1 f8, 0(r5)");
        bld.ins("addi r5, r5, 8");
        bld.ins("addi r6, r6, 8");
        bld.ins("subi r10, r10, 1");
        bld.ins(".loopbound %d", lmsTaps);
        bld.ins("bgtz r10, lms_upd_%d", s);
        bld.ins("addi r3, r3, 1");
        bld.ins("subi r2, r2, 1");
        bld.ins(".loopbound %d", lmsChunk);
        bld.ins("bgtz r2, lms_s_%d", s);
    }
    // Checksum: truncated scaled sum of the adapted weights.
    bld.ins("cvt.d.w f4, r0");
    bld.ins("la r5, lmsW");
    bld.ins("li r10, %d", lmsTaps);
    bld.label("lms_ck");
    bld.ins("ldc1 f8, 0(r5)");
    bld.ins("add.d f4, f4, f8");
    bld.ins("addi r5, r5, 8");
    bld.ins("subi r10, r10, 1");
    bld.ins(".loopbound %d", lmsTaps);
    bld.ins("bgtz r10, lms_ck");
    bld.ins("la r20, lmsScaleV");
    bld.ins("ldc1 f8, 0(r20)");
    bld.ins("mul.d f4, f4, f8");
    bld.ins("cvt.w.d r24, f4");
    bld.taskEnd("r24");

    bld.beginData();
    bld.doubles("lmsX", x);
    bld.doubles("lmsD", d);
    bld.doubles("lmsMuV", {lmsMu});
    bld.doubles("lmsScaleV", {1048576.0});
    bld.space("lmsW", lmsTaps * 8);

    Workload w;
    w.name = "lms";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = lmsGolden(x, d);
    return w;
}

} // namespace visa
