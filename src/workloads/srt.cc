/**
 * @file
 * srt: bubblesort with an early-exit "sorted" flag (C-lab "srt").
 * The pass loop is peeled into 10 sub-tasks. Sorting is in place, so
 * sub-task 1 first copies the pristine master into the working array
 * (a periodic task receives fresh input each period).
 *
 * This benchmark is the paper's WCET stress case (Table 3 reports a
 * 2.0x over-estimate): worst-case analysis must assume every
 * data-dependent swap happens and that the early exit never triggers,
 * while the actual run swaps about half the time and passes shrink.
 */

#include "workloads/clab.hh"

#include <algorithm>

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int srtN = 80;
constexpr int srtSubtasks = 10;

std::vector<std::int32_t>
srtInput()
{
    Lcg lcg(0x5047);
    std::vector<std::int32_t> v(srtN);
    for (auto &x : v)
        x = lcg.range(-30000, 30000);
    return v;
}

Word
srtGolden(std::vector<std::int32_t> v)
{
    std::sort(v.begin(), v.end());
    Word ck = 0;
    for (int i = 0; i < srtN; ++i)
        ck += static_cast<Word>(v[static_cast<std::size_t>(i)]) ^
              static_cast<Word>(i);
    return ck;
}

} // anonymous namespace

Workload
makeSrt()
{
    auto input = srtInput();

    AsmBuilder bld;
    bld.ins(".text");
    int pass = 0;
    const int total_passes = srtN - 1;
    for (int s = 0; s < srtSubtasks; ++s) {
        const int passes =
            (total_passes - pass) / (srtSubtasks - s);
        const int p0 = pass;
        const int p1 = pass + passes;
        pass = p1;
        bld.subtaskBegin(s + 1);
        if (s == 0) {
            // Fresh input: copy the master into the working array.
            bld.ins("li r21, 0");    // sorted flag
            bld.ins("la r5, srtMaster");
            bld.ins("la r6, srtWork");
            bld.ins("li r10, %d", srtN);
            bld.label("srt_copy");
            bld.ins("lw r4, 0(r5)");
            bld.ins("sw r4, 0(r6)");
            bld.ins("addi r5, r5, 4");
            bld.ins("addi r6, r6, 4");
            bld.ins("subi r10, r10, 1");
            bld.ins(".loopbound %d", srtN);
            bld.ins("bgtz r10, srt_copy");
        }
        bld.ins("li r2, %d", p0);    // global pass index
        bld.label("srt_pass_" + std::to_string(s));
        bld.ins("bne r21, r0, srt_passdone_%d", s);    // already sorted
        bld.ins("la r5, srtWork");
        bld.ins("li r9, 0");                 // swapped flag
        bld.ins("li r6, %d", srtN - 1);
        bld.ins("sub r6, r6, r2");           // compares this pass
        bld.label("srt_j_" + std::to_string(s));
        bld.ins("lw r10, 0(r5)");
        bld.ins("lw r11, 4(r5)");
        bld.ins("slt r4, r11, r10");
        bld.ins("beq r4, r0, srt_noswap_%d", s);
        bld.ins("sw r11, 0(r5)");
        bld.ins("sw r10, 4(r5)");
        bld.ins("li r9, 1");
        bld.label("srt_noswap_" + std::to_string(s));
        bld.ins("addi r5, r5, 4");
        bld.ins("subi r6, r6, 1");
        bld.ins(".loopbound %d", srtN - 1);
        bld.ins("bgtz r6, srt_j_%d", s);
        bld.ins("bne r9, r0, srt_passdone_%d", s);
        bld.ins("li r21, 1");                // no swaps: sorted
        bld.label("srt_passdone_" + std::to_string(s));
        bld.ins("addi r2, r2, 1");
        bld.ins("slti r4, r2, %d", p1);
        bld.ins(".loopbound %d", passes);
        bld.ins("bne r4, r0, srt_pass_%d", s);
    }
    // Checksum scan in the final sub-task's tail.
    bld.ins("li r24, 0");
    bld.ins("la r5, srtWork");
    bld.ins("li r2, 0");
    bld.label("srt_ck");
    bld.ins("lw r4, 0(r5)");
    bld.ins("xor r4, r4, r2");
    bld.ins("add r24, r24, r4");
    bld.ins("addi r5, r5, 4");
    bld.ins("addi r2, r2, 1");
    bld.ins("slti r4, r2, %d", srtN);
    bld.ins(".loopbound %d", srtN);
    bld.ins("bne r4, r0, srt_ck");
    bld.taskEnd("r24");

    bld.beginData();
    bld.words("srtMaster", input);
    bld.space("srtWork", srtN * 4);

    Workload w;
    w.name = "srt";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = srtGolden(input);
    return w;
}

} // namespace visa
