/**
 * @file
 * mm: integer matrix multiply C = A x B (C-lab "mm"/matmult). The
 * outermost row loop is peeled into 10 sub-tasks of 2 rows each
 * (paper §5.3). A and B are read-only masters; C is fully rewritten
 * each period. The checksum is the 32-bit wrapping sum of all C
 * elements.
 */

#include "workloads/clab.hh"

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int mmN = 20;
constexpr int mmSubtasks = 10;
constexpr int mmRowsPerSub = mmN / mmSubtasks;

std::vector<std::int32_t>
mmMatrix(std::uint32_t seed)
{
    Lcg lcg(seed);
    std::vector<std::int32_t> m(mmN * mmN);
    for (auto &v : m)
        v = lcg.range(-100, 100);
    return m;
}

Word
mmGolden(const std::vector<std::int32_t> &a,
         const std::vector<std::int32_t> &b)
{
    Word ck = 0;
    for (int i = 0; i < mmN; ++i) {
        for (int j = 0; j < mmN; ++j) {
            Word acc = 0;
            for (int k = 0; k < mmN; ++k) {
                acc += static_cast<Word>(a[i * mmN + k]) *
                       static_cast<Word>(b[k * mmN + j]);
            }
            ck += acc;
        }
    }
    return ck;
}

} // anonymous namespace

Workload
makeMm()
{
    auto a = mmMatrix(0xA11CE);
    auto b = mmMatrix(0xB0B);

    AsmBuilder bld;
    bld.ins(".text");
    for (int s = 0; s < mmSubtasks; ++s) {
        const int row0 = s * mmRowsPerSub;
        const int row1 = row0 + mmRowsPerSub;
        bld.subtaskBegin(s + 1);
        if (s == 0)
            bld.ins("li r24, 0");    // checksum accumulator
        bld.ins("li r2, %d", row0);
        bld.label("mm_i_" + std::to_string(s));
        bld.ins("li r20, %d", mmN * 4);
        bld.ins("mul r4, r2, r20");
        bld.ins("la r5, mmA");
        bld.ins("add r5, r5, r4");    // &A[i][0]
        bld.ins("la r6, mmC");
        bld.ins("add r6, r6, r4");    // &C[i][0]
        bld.ins("li r3, 0");          // j
        bld.label("mm_j_" + std::to_string(s));
        bld.ins("la r7, mmB");
        bld.ins("sll r4, r3, 2");
        bld.ins("add r7, r7, r4");    // &B[0][j]
        bld.ins("move r12, r5");      // &A[i][k]
        bld.ins("li r9, 0");          // acc
        bld.ins("li r10, %d", mmN);   // k counter
        bld.label("mm_k_" + std::to_string(s));
        bld.ins("lw r11, 0(r12)");
        bld.ins("lw r4, 0(r7)");
        bld.ins("mul r11, r11, r4");
        bld.ins("add r9, r9, r11");
        bld.ins("addi r12, r12, 4");
        bld.ins("addi r7, r7, %d", mmN * 4);
        bld.ins("subi r10, r10, 1");
        bld.ins(".loopbound %d", mmN);
        bld.ins("bgtz r10, mm_k_%d", s);
        bld.ins("sw r9, 0(r6)");
        bld.ins("add r24, r24, r9");
        bld.ins("addi r6, r6, 4");
        bld.ins("addi r3, r3, 1");
        bld.ins("slti r4, r3, %d", mmN);
        bld.ins(".loopbound %d", mmN);
        bld.ins("bne r4, r0, mm_j_%d", s);
        bld.ins("addi r2, r2, 1");
        bld.ins("slti r4, r2, %d", row1);
        bld.ins(".loopbound %d", mmRowsPerSub);
        bld.ins("bne r4, r0, mm_i_%d", s);
    }
    bld.taskEnd("r24");

    bld.beginData();
    bld.words("mmA", a);
    bld.words("mmB", b);
    bld.space("mmC", mmN * mmN * 4);

    Workload w;
    w.name = "mm";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = mmGolden(a, b);
    return w;
}

} // namespace visa
