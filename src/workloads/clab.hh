/**
 * @file
 * The six C-lab hard real-time benchmarks (paper §5.3, Table 3),
 * re-implemented as VPISA assembly generators: adpcm, cnt, fft, lms,
 * mm, srt. Each task
 *  - re-initializes its working buffers from a pristine master copy
 *    (a periodic task consumes fresh input every period),
 *  - is manually divided into sub-tasks by peeling chunks of
 *    iterations from the outermost loop (§5.3), with instrumentation
 *    snippets at every boundary,
 *  - carries .loopbound annotations for the timing analyzer,
 *  - publishes a functional checksum whose golden value is computed
 *    host-side with identical arithmetic.
 */

#ifndef VISA_WORKLOADS_CLAB_HH
#define VISA_WORKLOADS_CLAB_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace visa
{

/** An assembled benchmark plus its golden result. */
struct Workload
{
    std::string name;
    std::string source;        ///< assembly text (diagnostics)
    Program program;
    Word expectedChecksum = 0;
    int numSubtasks = 0;
};

Workload makeAdpcm();    ///< IMA ADPCM speech encoder
Workload makeCnt();      ///< count/sum positive matrix elements
Workload makeFft();      ///< 256-point radix-2 complex FFT
Workload makeLms();      ///< LMS adaptive FIR filter
Workload makeMm();       ///< integer matrix multiply
Workload makeSrt();      ///< bubblesort with early exit

Workload makeCrc();      ///< bitwise CRC-32 (extended suite)
Workload makeFir();      ///< integer FIR filter (extended suite)
Workload makeJfdctint(); ///< JPEG 8x8 integer DCT (extended suite)

/** The six Table 3 benchmark names, in the paper's order. */
const std::vector<std::string> &clabNames();

/**
 * Additional C-lab-family kernels beyond the paper's six (crc, fir,
 * jfdctint); they carry the same instrumentation and annotations and
 * run under all harnesses.
 */
const std::vector<std::string> &extendedNames();

/** Table 3 names plus the extended suite. */
const std::vector<std::string> &allWorkloadNames();

/** Construct a benchmark by name; fatal on unknown names. */
Workload makeWorkload(const std::string &name);

} // namespace visa

#endif // VISA_WORKLOADS_CLAB_HH
