#include "workloads/tasksets.hh"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "sim/logging.hh"
#include "workloads/clab.hh"

namespace visa
{

namespace
{

const std::map<std::string, std::vector<TaskSetMemberSpec>> &
namedSets()
{
    // Periods stagger by small coprime-ish scales so the sets exercise
    // preemption (jobs of different tasks overlap) without locking the
    // releases into a trivial harmonic pattern.
    static const std::map<std::string, std::vector<TaskSetMemberSpec>>
        sets = {
            {"duo", {{"cnt", 1.0}, {"fir", 1.5}}},
            {"trio", {{"cnt", 1.0}, {"mm", 1.5}, {"srt", 2.0}}},
            {"mixed",
             {{"crc", 1.0}, {"fft", 1.5}, {"jfdctint", 2.0},
              {"lms", 2.5}}},
            {"clab6",
             {{"adpcm", 1.0}, {"cnt", 1.5}, {"fft", 2.0}, {"lms", 2.5},
              {"mm", 3.0}, {"srt", 3.5}}},
        };
    return sets;
}

} // anonymous namespace

const std::vector<std::string> &
taskSetNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &[name, members] : namedSets())
            v.push_back(name);
        return v;
    }();
    return names;
}

std::vector<TaskSetMemberSpec>
parseTaskSet(const std::string &spec)
{
    if (spec.empty())
        fatal("empty task-set spec");
    const auto &sets = namedSets();
    if (auto it = sets.find(spec); it != sets.end())
        return it->second;

    const std::vector<std::string> &known = allWorkloadNames();
    std::vector<TaskSetMemberSpec> members;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            fatal("task-set spec '%s': empty member", spec.c_str());
        TaskSetMemberSpec m;
        if (std::size_t colon = item.find(':');
            colon != std::string::npos) {
            m.workload = item.substr(0, colon);
            const std::string scale = item.substr(colon + 1);
            char *end = nullptr;
            m.periodScale = std::strtod(scale.c_str(), &end);
            if (scale.empty() || *end != '\0' || m.periodScale <= 0.0)
                fatal("task-set member '%s': bad period scale '%s'",
                      item.c_str(), scale.c_str());
        } else {
            m.workload = item;
        }
        if (std::find(known.begin(), known.end(), m.workload) ==
            known.end())
            fatal("task-set member '%s': unknown workload (not a named "
                  "set either)",
                  m.workload.c_str());
        members.push_back(std::move(m));
    }
    return members;
}

} // namespace visa
