/**
 * @file
 * jfdctint: JPEG forward 8x8 integer DCT (C-lab "jfdctint", the
 * Loeffler-Ligtenberg-Moshovitz algorithm with libjpeg's 13-bit
 * fixed-point constants), applied to 32 blocks. Two 1-D passes per
 * block (rows then columns), each a bounded 8-iteration loop. The
 * block loop is peeled into 8 sub-tasks of 4 blocks. Extended-suite
 * benchmark.
 */

#include "workloads/clab.hh"

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int dctBlocks = 32;
constexpr int dctSubtasks = 8;
constexpr int dctChunk = dctBlocks / dctSubtasks;

// libjpeg jfdctint.c FIX_* constants (13-bit fixed point).
constexpr std::int32_t kF0541 = 4433;     // FIX_0_541196100
constexpr std::int32_t kF0765 = 6270;     // FIX_0_765366865
constexpr std::int32_t kF1847 = 15137;    // FIX_1_847759065
constexpr std::int32_t kF1175 = 9633;     // FIX_1_175875602
constexpr std::int32_t kF0298 = 2446;     // FIX_0_298631336
constexpr std::int32_t kF2053 = 16819;    // FIX_2_053119869
constexpr std::int32_t kF3072 = 25172;    // FIX_3_072711026
constexpr std::int32_t kF1501 = 12299;    // FIX_1_501321110
constexpr std::int32_t kF0899 = 7373;     // FIX_0_899976223
constexpr std::int32_t kF2562 = 20995;    // FIX_2_562915447
constexpr std::int32_t kF1961 = 16069;    // FIX_1_961570560
constexpr std::int32_t kF0390 = 3196;     // FIX_0_390180644

std::int32_t
descale(std::int64_t x, int n)
{
    return static_cast<std::int32_t>((x + (1 << (n - 1))) >> n);
}

/** Host-side 1-D LLM pass (pass 1 = rows, pass 2 = columns). */
void
dct1d(std::int32_t *d, int stride, bool pass2)
{
    std::int32_t v[8];
    for (int i = 0; i < 8; ++i)
        v[i] = d[i * stride];
    std::int32_t tmp0 = v[0] + v[7], tmp7 = v[0] - v[7];
    std::int32_t tmp1 = v[1] + v[6], tmp6 = v[1] - v[6];
    std::int32_t tmp2 = v[2] + v[5], tmp5 = v[2] - v[5];
    std::int32_t tmp3 = v[3] + v[4], tmp4 = v[3] - v[4];

    std::int32_t tmp10 = tmp0 + tmp3, tmp13 = tmp0 - tmp3;
    std::int32_t tmp11 = tmp1 + tmp2, tmp12 = tmp1 - tmp2;

    std::int32_t out0, out4, out2, out6;
    if (!pass2) {
        out0 = (tmp10 + tmp11) << 2;
        out4 = (tmp10 - tmp11) << 2;
    } else {
        out0 = descale(tmp10 + tmp11, 2);
        out4 = descale(tmp10 - tmp11, 2);
    }
    std::int32_t z1e = (tmp12 + tmp13) * kF0541;
    int dshift = pass2 ? 15 : 11;
    out2 = descale(z1e + tmp13 * kF0765, dshift);
    out6 = descale(z1e - tmp12 * kF1847, dshift);

    std::int32_t z1 = tmp4 + tmp7, z2 = tmp5 + tmp6;
    std::int32_t z3 = tmp4 + tmp6, z4 = tmp5 + tmp7;
    std::int32_t z5 = (z3 + z4) * kF1175;
    std::int32_t t4 = tmp4 * kF0298, t5 = tmp5 * kF2053;
    std::int32_t t6 = tmp6 * kF3072, t7 = tmp7 * kF1501;
    z1 *= -kF0899;
    z2 *= -kF2562;
    z3 = z3 * -kF1961 + z5;
    z4 = z4 * -kF0390 + z5;

    d[0 * stride] = out0;
    d[4 * stride] = out4;
    d[2 * stride] = out2;
    d[6 * stride] = out6;
    d[7 * stride] = descale(t4 + z1 + z3, dshift);
    d[5 * stride] = descale(t5 + z2 + z4, dshift);
    d[3 * stride] = descale(t6 + z2 + z3, dshift);
    d[1 * stride] = descale(t7 + z1 + z4, dshift);
}

std::vector<std::int32_t>
dctInput()
{
    Lcg lcg(0xDC7);
    std::vector<std::int32_t> v(dctBlocks * 64);
    for (auto &x : v)
        x = lcg.range(-128, 127);
    return v;
}

Word
dctGolden(std::vector<std::int32_t> data)
{
    Word ck = 0;
    for (int b = 0; b < dctBlocks; ++b) {
        std::int32_t *blk = data.data() + b * 64;
        for (int r = 0; r < 8; ++r)
            dct1d(blk + r * 8, 1, false);
        for (int c = 0; c < 8; ++c)
            dct1d(blk + c, 8, true);
        for (int i = 0; i < 64; ++i)
            ck += static_cast<Word>(blk[i]);
    }
    return ck;
}

/**
 * Emit the 1-D LLM pass over the 8 elements at (r21 + i*stride_bytes).
 * Clobbers r2-r19; pass 2 changes the descale shifts.
 */
void
emit1d(AsmBuilder &b, const std::string &tag, int stride, bool pass2)
{
    auto mulc = [&](const char *dst, const char *src,
                    std::int32_t constant) {
        b.ins("li r2, %d", constant);
        b.ins("mul %s, %s, r2", dst, src);
    };
    auto desc = [&](const char *r, int n) {
        b.ins("addi %s, %s, %d", r, r, 1 << (n - 1));
        b.ins("sra %s, %s, %d", r, r, n);
    };
    const int dshift = pass2 ? 15 : 11;
    (void)tag;

    for (int i = 0; i < 8; ++i)
        b.ins("lw r%d, %d(r21)", 4 + i, i * stride);
    // butterflies
    b.ins("add r12, r4, r11");     // tmp0
    b.ins("sub r19, r4, r11");     // tmp7
    b.ins("add r13, r5, r10");     // tmp1
    b.ins("sub r18, r5, r10");     // tmp6
    b.ins("add r14, r6, r9");      // tmp2
    b.ins("sub r17, r6, r9");      // tmp5
    b.ins("add r15, r7, r8");      // tmp3
    b.ins("sub r16, r7, r8");      // tmp4
    // even part
    b.ins("add r4, r12, r15");     // tmp10
    b.ins("sub r5, r12, r15");     // tmp13
    b.ins("add r6, r13, r14");     // tmp11
    b.ins("sub r7, r13, r14");     // tmp12
    b.ins("add r8, r4, r6");       // out0 pre
    b.ins("sub r9, r4, r6");       // out4 pre
    if (!pass2) {
        b.ins("sll r8, r8, 2");
        b.ins("sll r9, r9, 2");
    } else {
        desc("r8", 2);
        desc("r9", 2);
    }
    b.ins("sw r8, %d(r21)", 0 * stride);
    b.ins("sw r9, %d(r21)", 4 * stride);
    b.ins("add r10, r7, r5");      // tmp12 + tmp13
    mulc("r10", "r10", kF0541);    // z1e
    mulc("r11", "r5", kF0765);
    b.ins("add r11, r10, r11");    // out2 pre
    desc("r11", dshift);
    b.ins("sw r11, %d(r21)", 2 * stride);
    mulc("r12", "r7", kF1847);
    b.ins("sub r12, r10, r12");    // out6 pre
    desc("r12", dshift);
    b.ins("sw r12, %d(r21)", 6 * stride);
    // odd part
    b.ins("add r4, r16, r19");     // z1
    b.ins("add r5, r17, r18");     // z2
    b.ins("add r6, r16, r18");     // z3
    b.ins("add r7, r17, r19");     // z4
    b.ins("add r8, r6, r7");
    mulc("r8", "r8", kF1175);      // z5
    mulc("r16", "r16", kF0298);    // t4
    mulc("r17", "r17", kF2053);    // t5
    mulc("r18", "r18", kF3072);    // t6
    mulc("r19", "r19", kF1501);    // t7
    mulc("r4", "r4", -kF0899);
    mulc("r5", "r5", -kF2562);
    mulc("r6", "r6", -kF1961);
    b.ins("add r6, r6, r8");       // z3 += z5
    mulc("r7", "r7", -kF0390);
    b.ins("add r7, r7, r8");       // z4 += z5
    b.ins("add r9, r16, r4");
    b.ins("add r9, r9, r6");       // out7 pre
    desc("r9", dshift);
    b.ins("sw r9, %d(r21)", 7 * stride);
    b.ins("add r9, r17, r5");
    b.ins("add r9, r9, r7");       // out5 pre
    desc("r9", dshift);
    b.ins("sw r9, %d(r21)", 5 * stride);
    b.ins("add r9, r18, r5");
    b.ins("add r9, r9, r6");       // out3 pre
    desc("r9", dshift);
    b.ins("sw r9, %d(r21)", 3 * stride);
    b.ins("add r9, r19, r4");
    b.ins("add r9, r9, r7");       // out1 pre
    desc("r9", dshift);
    b.ins("sw r9, %d(r21)", 1 * stride);
}

} // anonymous namespace

Workload
makeJfdctint()
{
    auto input = dctInput();

    AsmBuilder bld;
    bld.ins(".text");
    for (int s = 0; s < dctSubtasks; ++s) {
        bld.subtaskBegin(s + 1);
        if (s == 0) {
            bld.ins("li r24, 0");
            bld.ins("la r23, dctWork");
            bld.ins("la r22, dctMaster");
        }
        bld.ins("li r26, %d", dctChunk);    // blocks this sub-task
        bld.label("dct_blk_" + std::to_string(s));
        // Fresh input: copy this block from the master.
        bld.ins("li r20, 64");
        bld.ins("move r21, r23");
        bld.ins("move r27, r22");
        bld.label("dct_copy_" + std::to_string(s));
        bld.ins("lw r4, 0(r27)");
        bld.ins("sw r4, 0(r21)");
        bld.ins("addi r27, r27, 4");
        bld.ins("addi r21, r21, 4");
        bld.ins("subi r20, r20, 1");
        bld.ins(".loopbound 64");
        bld.ins("bgtz r20, dct_copy_%d", s);
        // Row pass: 8 rows, stride 1 word; row base advances 32 B.
        bld.ins("move r21, r23");
        bld.ins("li r20, 8");
        bld.label("dct_row_" + std::to_string(s));
        emit1d(bld, "r", 4, false);
        bld.ins("addi r21, r21, 32");
        bld.ins("subi r20, r20, 1");
        bld.ins(".loopbound 8");
        bld.ins("bgtz r20, dct_row_%d", s);
        // Column pass: 8 columns, stride 8 words; base advances 4 B.
        bld.ins("move r21, r23");
        bld.ins("li r20, 8");
        bld.label("dct_col_" + std::to_string(s));
        emit1d(bld, "c", 32, true);
        bld.ins("addi r21, r21, 4");
        bld.ins("subi r20, r20, 1");
        bld.ins(".loopbound 8");
        bld.ins("bgtz r20, dct_col_%d", s);
        // Fold the block's coefficients into the checksum.
        bld.ins("move r21, r23");
        bld.ins("li r20, 64");
        bld.label("dct_ck_" + std::to_string(s));
        bld.ins("lw r4, 0(r21)");
        bld.ins("add r24, r24, r4");
        bld.ins("addi r21, r21, 4");
        bld.ins("subi r20, r20, 1");
        bld.ins(".loopbound 64");
        bld.ins("bgtz r20, dct_ck_%d", s);
        // Next block.
        bld.ins("addi r22, r22, 256");
        bld.ins("subi r26, r26, 1");
        bld.ins(".loopbound %d", dctChunk);
        bld.ins("bgtz r26, dct_blk_%d", s);
    }
    bld.taskEnd("r24");

    bld.beginData();
    bld.words("dctMaster", input);
    bld.space("dctWork", 64 * 4);

    Workload w;
    w.name = "jfdctint";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = dctGolden(input);
    return w;
}

} // namespace visa
