#include "workloads/clab.hh"

#include "sim/logging.hh"

namespace visa
{

const std::vector<std::string> &
clabNames()
{
    static const std::vector<std::string> names = {
        "adpcm", "cnt", "fft", "lms", "mm", "srt"};
    return names;
}

const std::vector<std::string> &
extendedNames()
{
    static const std::vector<std::string> names = {"crc", "fir",
                                                   "jfdctint"};
    return names;
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v = clabNames();
        const auto &e = extendedNames();
        v.insert(v.end(), e.begin(), e.end());
        return v;
    }();
    return names;
}

Workload
makeWorkload(const std::string &name)
{
    if (name == "adpcm")
        return makeAdpcm();
    if (name == "cnt")
        return makeCnt();
    if (name == "fft")
        return makeFft();
    if (name == "lms")
        return makeLms();
    if (name == "mm")
        return makeMm();
    if (name == "srt")
        return makeSrt();
    if (name == "crc")
        return makeCrc();
    if (name == "fir")
        return makeFir();
    if (name == "jfdctint")
        return makeJfdctint();
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace visa
