/**
 * @file
 * fft: 256-point iterative radix-2 complex FFT (C-lab "fft").
 * Sub-task structure (10, matching Table 3): bit-reversal copy, the
 * eight butterfly stages, and a Parseval-style checksum scan. Twiddle
 * factors and bit-reversal offsets are precomputed constant tables,
 * as a hard real-time implementation would ship them. Checksum:
 * trunc(sum re^2 + im^2) — the host reference performs the identical
 * double-precision operation sequence, so the value is bit-exact.
 */

#include "workloads/clab.hh"

#include <cmath>

#include "isa/assembler.hh"
#include "workloads/asm_builder.hh"

namespace visa
{

namespace
{

constexpr int fftN = 256;
constexpr int fftStages = 8;

std::vector<double>
fftInput()
{
    Lcg lcg(0xFF7);
    std::vector<double> v(fftN);
    for (auto &x : v)
        x = lcg.unit();
    return v;
}

std::vector<std::int32_t>
fftBrevOffsets()
{
    std::vector<std::int32_t> t(fftN);
    for (int i = 0; i < fftN; ++i) {
        int r = 0;
        for (int b = 0; b < 8; ++b)
            if (i & (1 << b))
                r |= 1 << (7 - b);
        t[static_cast<std::size_t>(i)] = r * 8;    // byte offset
    }
    return t;
}

void
fftTwiddles(int stage, std::vector<double> &wr, std::vector<double> &wi)
{
    const int m = 1 << stage;
    const int half = m / 2;
    wr.resize(static_cast<std::size_t>(half));
    wi.resize(static_cast<std::size_t>(half));
    for (int j = 0; j < half; ++j) {
        double ang = -2.0 * M_PI * j / m;
        wr[static_cast<std::size_t>(j)] = std::cos(ang);
        wi[static_cast<std::size_t>(j)] = std::sin(ang);
    }
}

Word
fftGolden(const std::vector<double> &in)
{
    std::vector<double> re(fftN), im(fftN, 0.0);
    auto brev = fftBrevOffsets();
    for (int i = 0; i < fftN; ++i)
        re[static_cast<std::size_t>(i)] =
            in[static_cast<std::size_t>(brev[static_cast<std::size_t>(i)] /
                                        8)];
    for (int s = 1; s <= fftStages; ++s) {
        std::vector<double> wr, wi;
        fftTwiddles(s, wr, wi);
        const int m = 1 << s;
        const int half = m / 2;
        for (int k = 0; k < fftN; k += m) {
            for (int j = 0; j < half; ++j) {
                const std::size_t lo =
                    static_cast<std::size_t>(k + j);
                const std::size_t hi = lo +
                                       static_cast<std::size_t>(half);
                double tr = wr[static_cast<std::size_t>(j)] * re[hi] -
                            wi[static_cast<std::size_t>(j)] * im[hi];
                double ti = wr[static_cast<std::size_t>(j)] * im[hi] +
                            wi[static_cast<std::size_t>(j)] * re[hi];
                double ur = re[lo];
                double ui = im[lo];
                re[hi] = ur - tr;
                im[hi] = ui - ti;
                re[lo] = ur + tr;
                im[lo] = ui + ti;
            }
        }
    }
    double acc = 0.0;
    for (int i = 0; i < fftN; ++i) {
        acc += re[static_cast<std::size_t>(i)] *
               re[static_cast<std::size_t>(i)];
        acc += im[static_cast<std::size_t>(i)] *
               im[static_cast<std::size_t>(i)];
    }
    return static_cast<Word>(static_cast<std::int32_t>(acc));
}

} // anonymous namespace

Workload
makeFft()
{
    auto input = fftInput();
    auto brev = fftBrevOffsets();

    AsmBuilder bld;
    bld.ins(".text");

    // Sub-task 1: bit-reversal copy from the pristine input; zero the
    // imaginary parts.
    bld.subtaskBegin(1);
    bld.ins("li r2, 0");
    bld.ins("la r5, fftBrev");
    bld.ins("la r6, fftRe");
    bld.ins("la r7, fftIm");
    bld.ins("la r8, fftInRe");
    bld.ins("cvt.d.w f2, r0");
    bld.label("fft_rev");
    bld.ins("lw r4, 0(r5)");
    bld.ins("add r9, r8, r4");
    bld.ins("ldc1 f4, 0(r9)");
    bld.ins("sdc1 f4, 0(r6)");
    bld.ins("sdc1 f2, 0(r7)");
    bld.ins("addi r5, r5, 4");
    bld.ins("addi r6, r6, 8");
    bld.ins("addi r7, r7, 8");
    bld.ins("addi r2, r2, 1");
    bld.ins("slti r4, r2, %d", fftN);
    bld.ins(".loopbound %d", fftN);
    bld.ins("bne r4, r0, fft_rev");

    // Sub-tasks 2..9: one butterfly stage each.
    for (int s = 1; s <= fftStages; ++s) {
        const int m = 1 << s;
        const int half = m / 2;
        const int groups = fftN / m;
        const int hioff = half * 8;
        bld.subtaskBegin(s + 1);
        bld.ins("li r2, 0");    // group base, byte offset
        bld.label("fft_grp_" + std::to_string(s));
        bld.ins("la r7, fftWr%d", s);
        bld.ins("la r8, fftWi%d", s);
        bld.ins("la r5, fftRe");
        bld.ins("add r5, r5, r2");
        bld.ins("la r6, fftIm");
        bld.ins("add r6, r6, r2");
        bld.ins("li r3, %d", half);
        bld.label("fft_bf_" + std::to_string(s));
        bld.ins("ldc1 f2, 0(r7)");           // wr
        bld.ins("ldc1 f4, 0(r8)");           // wi
        bld.ins("ldc1 f6, %d(r5)", hioff);   // br
        bld.ins("ldc1 f8, %d(r6)", hioff);   // bi
        bld.ins("mul.d f10, f2, f6");        // wr*br
        bld.ins("mul.d f12, f4, f8");        // wi*bi
        bld.ins("sub.d f10, f10, f12");      // tr
        bld.ins("mul.d f12, f2, f8");        // wr*bi
        bld.ins("mul.d f14, f4, f6");        // wi*br
        bld.ins("add.d f12, f12, f14");      // ti
        bld.ins("ldc1 f6, 0(r5)");           // ur
        bld.ins("ldc1 f8, 0(r6)");           // ui
        bld.ins("sub.d f16, f6, f10");
        bld.ins("sdc1 f16, %d(r5)", hioff);  // re[hi] = ur - tr
        bld.ins("sub.d f16, f8, f12");
        bld.ins("sdc1 f16, %d(r6)", hioff);  // im[hi] = ui - ti
        bld.ins("add.d f16, f6, f10");
        bld.ins("sdc1 f16, 0(r5)");          // re[lo] = ur + tr
        bld.ins("add.d f16, f8, f12");
        bld.ins("sdc1 f16, 0(r6)");          // im[lo] = ui + ti
        bld.ins("addi r5, r5, 8");
        bld.ins("addi r6, r6, 8");
        bld.ins("addi r7, r7, 8");
        bld.ins("addi r8, r8, 8");
        bld.ins("subi r3, r3, 1");
        bld.ins(".loopbound %d", half);
        bld.ins("bgtz r3, fft_bf_%d", s);
        bld.ins("addi r2, r2, %d", m * 8);
        bld.ins("slti r4, r2, %d", fftN * 8);
        bld.ins(".loopbound %d", groups);
        bld.ins("bne r4, r0, fft_grp_%d", s);
    }

    // Sub-task 10: Parseval checksum scan.
    bld.subtaskBegin(fftStages + 2);
    bld.ins("cvt.d.w f4, r0");
    bld.ins("la r5, fftRe");
    bld.ins("la r6, fftIm");
    bld.ins("li r10, %d", fftN);
    bld.label("fft_ck");
    bld.ins("ldc1 f6, 0(r5)");
    bld.ins("mul.d f6, f6, f6");
    bld.ins("add.d f4, f4, f6");
    bld.ins("ldc1 f8, 0(r6)");
    bld.ins("mul.d f8, f8, f8");
    bld.ins("add.d f4, f4, f8");
    bld.ins("addi r5, r5, 8");
    bld.ins("addi r6, r6, 8");
    bld.ins("subi r10, r10, 1");
    bld.ins(".loopbound %d", fftN);
    bld.ins("bgtz r10, fft_ck");
    bld.ins("cvt.w.d r24, f4");
    bld.taskEnd("r24");

    bld.beginData();
    bld.doubles("fftInRe", input);
    bld.words("fftBrev", brev);
    for (int s = 1; s <= fftStages; ++s) {
        std::vector<double> wr, wi;
        fftTwiddles(s, wr, wi);
        bld.doubles("fftWr" + std::to_string(s), wr);
        bld.doubles("fftWi" + std::to_string(s), wi);
    }
    bld.space("fftRe", fftN * 8);
    bld.space("fftIm", fftN * 8);

    Workload w;
    w.name = "fft";
    w.source = bld.finish();
    w.numSubtasks = bld.numSubtasks();
    w.program = assemble(w.source);
    w.expectedChecksum = fftGolden(input);
    return w;
}

} // namespace visa
