/**
 * @file
 * A small statistics package: named scalar counters, formulas, and
 * distributions grouped by owner, with a text dump and a hierarchical
 * JSON export (StatSet). Modeled after the spirit of gem5's stats
 * package but deliberately compact.
 */

#ifndef VISA_SIM_STATS_HH
#define VISA_SIM_STATS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace visa
{

/** A named group of statistics belonging to one simulated object. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** A monotonically increasing scalar counter. */
    class Scalar
    {
      public:
        Scalar() = default;
        Scalar &operator++() { ++_value; return *this; }
        Scalar &operator+=(std::uint64_t v) { _value += v; return *this; }
        void set(std::uint64_t v) { _value = v; }
        std::uint64_t value() const { return _value; }
        void reset() { _value = 0; }

      private:
        std::uint64_t _value = 0;
    };

    /**
     * A bucketed distribution with fixed bucket width. Out-of-range
     * samples are guarded: values below the configured minimum clamp
     * into the first bucket (counted by underflows()), values at or
     * beyond the maximum clamp into the last bucket, which serves as
     * an explicit overflow bucket (counted by overflows()).
     */
    class Distribution
    {
      public:
        Distribution() = default;

        /** Configure the histogram range [min, max) and bucket size. */
        void
        init(std::uint64_t min, std::uint64_t max, std::uint64_t bucket_size)
        {
            _min = min;
            _max = max;
            _bucketSize = bucket_size ? bucket_size : 1;
            _buckets.assign((max - min) / _bucketSize + 1, 0);
            _samples = 0;
            _sum = 0;
            _underflows = 0;
            _overflows = 0;
        }

        void sample(std::uint64_t v);
        std::uint64_t samples() const { return _samples; }
        double mean() const;
        std::uint64_t minSeen() const { return _minSeen; }
        std::uint64_t maxSeen() const { return _maxSeen; }
        /** Samples below the configured minimum (clamped to bucket 0). */
        std::uint64_t underflows() const { return _underflows; }
        /** Samples >= the configured maximum (clamped to the last,
         *  overflow, bucket). */
        std::uint64_t overflows() const { return _overflows; }
        std::uint64_t bucketSize() const { return _bucketSize; }
        std::uint64_t rangeMin() const { return _min; }
        std::uint64_t rangeMax() const { return _max; }
        const std::vector<std::uint64_t> &buckets() const { return _buckets; }
        void reset();

      private:
        std::uint64_t _min = 0;
        std::uint64_t _max = 0;
        std::uint64_t _bucketSize = 1;
        std::vector<std::uint64_t> _buckets;
        std::uint64_t _samples = 0;
        std::uint64_t _sum = 0;
        std::uint64_t _minSeen = UINT64_MAX;
        std::uint64_t _maxSeen = 0;
        std::uint64_t _underflows = 0;
        std::uint64_t _overflows = 0;
    };

    /** Register a scalar under @p stat_name; returns a stable reference. */
    Scalar &scalar(const std::string &stat_name, std::string desc = "");

    /** Register a distribution under @p stat_name. */
    Distribution &distribution(const std::string &stat_name,
                               std::string desc = "");

    /**
     * Register a derived value computed on demand at dump time
     * (e.g., IPC = instructions / cycles).
     */
    void formula(const std::string &stat_name,
                 std::function<double()> fn, std::string desc = "");

    /** Dump all registered stats as "group.stat value # desc" lines. */
    void dump(std::ostream &os) const;

    /**
     * Dump this group's stats as one JSON object (scalars as integers,
     * formulas as numbers — 0 when the result is nan/inf, e.g. a zero
     * denominator — distributions as nested objects with buckets).
     * @p indent is the base indentation depth in two-space steps.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /** Reset all scalars and distributions to zero. */
    void resetAll();

    const std::string &name() const { return _name; }

  private:
    struct Formula
    {
        std::function<double()> fn;
        std::string desc;
    };

    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, Distribution> _distributions;
    std::map<std::string, Formula> _formulas;
    std::map<std::string, std::string> _descs;
};

/**
 * An ordered collection of StatGroups with a combined text dump and a
 * hierarchical JSON export: group names are split on '.' and nested,
 * so groups "visa.runtime" and "visa.cpu" export under one "visa"
 * object. Simulated objects contribute groups via their buildStats()
 * hooks; the drivers then dump one coherent document.
 */
class StatSet
{
  public:
    /** Find or create the group named @p name (reference is stable). */
    StatGroup &group(const std::string &name);

    /** Append a copy of an externally owned group. */
    void add(const StatGroup &g) { _groups.push_back(g); }

    const std::deque<StatGroup> &groups() const { return _groups; }

    /** Text dump of every group, in insertion order. */
    void dump(std::ostream &os) const;

    /** Hierarchical JSON document over all groups (sorted by name). */
    void dumpJson(std::ostream &os) const;

  private:
    std::deque<StatGroup> _groups;    ///< node-stable across growth
};

} // namespace visa

#endif // VISA_SIM_STATS_HH
