/**
 * @file
 * Structured event tracing: a fixed-capacity ring buffer of typed,
 * cycle-stamped events, recorded by the pipelines, the memory system,
 * and the VISA run-time system, with two export formats:
 *
 *  - JSONL: one flat JSON object per event, machine-parseable by
 *    `visa-trace` and byte-stable across runs and VISA_THREADS
 *    settings (golden-trace tests depend on this);
 *  - Chrome trace-event JSON, loadable by chrome://tracing and
 *    Perfetto (instant events per occurrence, counter tracks for MSHR
 *    occupancy and the clock frequency, duration slices for the VISA
 *    simple mode).
 *
 * Cost model: tracing must be zero-overhead when off. Two gates stack:
 *
 *  - compile time: building with -DVISA_TRACING=0 compiles every
 *    VISA_TRACE site out entirely;
 *  - run time: a thread-local "current tracer" pointer. No tracer
 *    installed (the default) costs one TLS load and a predictable
 *    branch per site; the hot per-instruction loops hoist even that
 *    into a per-run() local.
 *
 * The tracer is installed per *thread*: parallel experiment arms
 * (sim/parallel.hh) each install their own tracer and observe only
 * their own rig's events, which is what makes traces deterministic
 * regardless of how arms are interleaved across workers.
 */

#ifndef VISA_SIM_TRACE_HH
#define VISA_SIM_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "sim/types.hh"

#ifndef VISA_TRACING
#define VISA_TRACING 1
#endif

namespace visa
{

/**
 * Version stamped into every exported trace (JSONL header line,
 * Chrome-JSON root key) and stats JSON document. History:
 *  - 1: PR 2 format (no version field; readers treat its absence as 1).
 *       No longer readable by visa-trace (the v1 shim was removed).
 *  - 2: adds the version field and the "sched" event category
 *  - 3: adds the optional per-event "core" field (multi-core chips
 *       stamp the emitting core on cpu/mem/sched events) and per-core
 *       stat groups; single-core traces omit the field, so their event
 *       bodies are byte-identical to v2
 * See TESTING.md ("JSON schema versioning") for the compatibility
 * contract.
 */
inline constexpr int traceSchemaVersion = 3;

/** Every event type the simulator can emit. */
enum class EventKind : std::uint8_t
{
    // run-time system (category "task")
    TaskBegin,          ///< a=task, b=fspec MHz, c=frec MHz, d=deadline s
    TaskEnd,            ///< a=task, b=deadline met, c=missed ckpt, d=secs
    // run-time system (category "checkpoint")
    CheckpointArm,      ///< a=#checkpoints, b=first increment (cycles)
    CheckpointHit,      ///< a=sub-task, b=AET, c=PET, d=slack (cycles)
    CheckpointMiss,     ///< a=sub-task, b=task index
    WatchdogFire,       ///< a=sub-task
    // mode reconfiguration (category "mode")
    SimpleModeEnter,
    SimpleModeExit,
    ModeSwitchDrain,    ///< a=drain cycles
    // DVS (category "dvs")
    FreqDecision,       ///< a=fspec, b=frec, c=speculating, d=PET sum s
    FreqChange,         ///< a=from MHz, b=to MHz
    // pipelines (category "cpu")
    Fetch,              ///< a=pc, b=seq
    Retire,             ///< a=pc, b=seq
    Squash,             ///< a=seq of the resolving mispredict
    BranchMispredict,   ///< a=pc, b=seq, c=actually taken
    // memory system (category "mem")
    IcacheMiss,         ///< a=pc
    DcacheMiss,         ///< a=addr, b=pc
    MshrOccupancy,      ///< a=outstanding misses
    // multi-task scheduler (category "sched"); cycle carries the
    // scheduler's wall clock in integer nanoseconds, d repeats it in
    // seconds (tasks run on per-task cycle domains, so only wall time
    // orders cross-task events)
    SchedRelease,       ///< a=task, b=job, d=wall s
    SchedDispatch,      ///< a=task, b=job, c=core MHz, d=wall s
    SchedPreempt,       ///< a=task, b=job, c=preempting task, d=wall s
    SchedComplete,      ///< a=task, b=job, c=deadline met, d=wall s
    SchedRecovery,      ///< a=task, b=missed sub-task, d=wall s
    // fault injection + recovery (category "fault"); emitted by the
    // verify-side injector (FaultInject) and the runtime's restart
    // recovery path (FaultDetect / RecoveryRestart)
    FaultInject,        ///< a=fault class, b=pc, c=seq
    FaultDetect,        ///< a=detector (0=watchdog 1=lockstep), b=class,
                        ///< c=detection latency (cycles)
    RecoveryRestart,    ///< a=sub-task, b=restore cycles, c=pages restored
};

inline constexpr int numEventKinds =
    static_cast<int>(EventKind::RecoveryRestart) + 1;

/** One recorded event. Fixed-size POD; meaning of a/b/c/d per kind. */
struct TraceEvent
{
    EventKind kind{};
    /** Emitting core id, or -1 outside a multi-core chip (the field
     *  is then omitted from exports, keeping single-core traces
     *  byte-compatible with schema v2 bodies). */
    std::int16_t core = -1;
    Cycles cycle = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    double d = 0.0;
};

/** Stable metadata about one event kind (names drive the sinks). */
struct EventKindInfo
{
    const char *name;        ///< snake_case event name
    const char *category;    ///< "task", "checkpoint", "mode", ...
    /** JSON field names for a, b, c, d; nullptr = field unused. */
    const char *args[4];
};

/** Metadata of @p kind. */
const EventKindInfo &eventKindInfo(EventKind kind);

/** The ring-buffer event recorder. */
class Tracer
{
  public:
    /** @param capacity ring size in events; oldest events are dropped
     *  once it fills (flight-recorder semantics). */
    explicit Tracer(std::size_t capacity = 1 << 16);

    /**
     * Bitmask of enabled kinds (bit i = EventKind i). Defaults to
     * everything. maskFor() builds masks from category names.
     */
    void setKindMask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t kindMask() const { return mask_; }

    /** Mask bit for one kind. */
    static constexpr std::uint32_t
    bit(EventKind k)
    {
        return 1u << static_cast<unsigned>(k);
    }

    /** All kinds enabled. */
    static constexpr std::uint32_t
    allKinds()
    {
        return (1u << numEventKinds) - 1;
    }

    /**
     * Mask covering one category name ("task", "checkpoint", "mode",
     * "dvs", "cpu", "mem", "sched", "fault") or "all". @return 0 for
     * unknown names.
     */
    static std::uint32_t maskFor(std::string_view category);

    bool wants(EventKind k) const { return (mask_ & bit(k)) != 0; }

    /**
     * Record one event. @p cycle is the emitter's local cycle count;
     * the tracer adds its cycle offset so the exported timeline stays
     * monotonic across task instances (see setCycleOffset).
     */
    void
    record(EventKind k, Cycles cycle, std::uint64_t a = 0,
           std::uint64_t b = 0, std::uint64_t c = 0, double d = 0.0)
    {
        if (!wants(k))
            return;
        TraceEvent &e = ring_[wr_];
        e.kind = k;
        e.core = coreId_;
        e.cycle = cycle + cycleOffset_;
        e.a = a;
        e.b = b;
        e.c = c;
        e.d = d;
        if (++wr_ == ring_.size())
            wr_ = 0;
        if (count_ < ring_.size())
            ++count_;
        else
            ++dropped_;
    }

    /**
     * Append an already-stamped event verbatim: no mask, no cycle
     * offset, no core restamp — ring drop semantics only. The merge of
     * per-core epoch rings uses this (the source ring already applied
     * mask/offset/core when the event was recorded).
     */
    void
    append(const TraceEvent &e)
    {
        ring_[wr_] = e;
        if (++wr_ == ring_.size())
            wr_ = 0;
        if (count_ < ring_.size())
            ++count_;
        else
            ++dropped_;
    }

    /**
     * Merge the per-core rings @p perCore into @p dst ordered by
     * (cycle, core id), preserving each ring's own event order, then
     * empty the sources (their masks/offsets/core ids survive for the
     * next epoch). Threaded chip execution records each core's events
     * into its own ring and merges at every quantum barrier, so the
     * destination ring's contents are byte-identical to a serial run
     * no matter how many host threads recorded them.
     */
    static void mergeInto(Tracer &dst, std::vector<Tracer> &perCore);

    /**
     * Per-task cycle counters reset to zero each instance; the run-time
     * system banks the finished instance's cycles here so events from
     * consecutive tasks land on one monotonic timeline.
     */
    void setCycleOffset(Cycles offset) { cycleOffset_ = offset; }
    Cycles cycleOffset() const { return cycleOffset_; }

    /**
     * Core id stamped on subsequently recorded events (-1, the
     * default, leaves events unstamped). The multi-core scheduler sets
     * this around each per-core slice so one tracer can carry a whole
     * chip's timeline.
     */
    void setCoreId(int core) { coreId_ = static_cast<std::int16_t>(core); }
    int coreId() const { return coreId_; }

    std::size_t capacity() const { return ring_.size(); }
    std::size_t size() const { return count_; }
    /** Events lost to ring wraparound. */
    std::uint64_t dropped() const { return dropped_; }

    /** The @p i-th retained event in chronological order. */
    const TraceEvent &
    at(std::size_t i) const
    {
        const std::size_t base = count_ < ring_.size() ? 0 : wr_;
        std::size_t idx = base + i;
        if (idx >= ring_.size())
            idx -= ring_.size();
        return ring_[idx];
    }

    /** Drop every recorded event (capacity and mask are kept). */
    void clear();

    /** One flat JSON object per line; see file comment. */
    void writeJsonl(std::ostream &os) const;

    /** Chrome trace-event JSON (chrome://tracing / Perfetto). */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::vector<TraceEvent> ring_;
    std::size_t wr_ = 0;        ///< next write slot
    std::size_t count_ = 0;     ///< retained events (<= capacity)
    std::uint64_t dropped_ = 0;
    std::uint32_t mask_ = allKinds();
    Cycles cycleOffset_ = 0;
    std::int16_t coreId_ = -1;
};

namespace detail
{
extern thread_local Tracer *tlsTracer;
} // namespace detail

/** The calling thread's installed tracer, or nullptr. */
inline Tracer *
currentTracer()
{
#if VISA_TRACING
    return detail::tlsTracer;
#else
    return nullptr;
#endif
}

/**
 * Install @p tracer as the calling thread's tracer (nullptr disables
 * tracing). @return the previously installed tracer.
 */
Tracer *installTracer(Tracer *tracer);

/** RAII tracer installation for harnesses and tests. */
class ScopedTracer
{
  public:
    explicit ScopedTracer(Tracer &tracer)
        : prev_(installTracer(&tracer))
    {
    }
    ~ScopedTracer() { installTracer(prev_); }
    ScopedTracer(const ScopedTracer &) = delete;
    ScopedTracer &operator=(const ScopedTracer &) = delete;

  private:
    Tracer *prev_;
};

/**
 * Emit an event if a tracer is installed. Cold call sites use this
 * directly; per-instruction loops hoist currentTracer() into a local
 * and call record() themselves.
 */
#if VISA_TRACING
#define VISA_TRACE(kind, cycle, ...)                                        \
    do {                                                                    \
        ::visa::Tracer *vt_ = ::visa::currentTracer();                      \
        if (vt_) [[unlikely]]                                               \
            vt_->record(kind, cycle, ##__VA_ARGS__);                        \
    } while (0)
#else
#define VISA_TRACE(kind, cycle, ...)                                        \
    do {                                                                    \
    } while (0)
#endif

} // namespace visa

#endif // VISA_SIM_TRACE_HH
