#include "sim/parallel.hh"

#include <algorithm>
#include <cstdlib>

namespace visa
{

unsigned
simThreads()
{
    if (const char *env = std::getenv("VISA_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<unsigned>(v);
        return 1;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : nThreads_(threads)
{
    if (nThreads_ <= 1)
        return;
    workers_.reserve(nThreads_);
    for (unsigned i = 0; i < nThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    haveWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++pending_;
    }
    haveWork_.notify_one();
}

bool
ThreadPool::runOne(std::unique_lock<std::mutex> &lock)
{
    if (queue_.empty())
        return false;
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    job();
    lock.lock();
    if (--pending_ == 0)
        allDone_.notify_all();
    return true;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        if (runOne(lock))
            continue;
        if (stopping_)
            return;
        haveWork_.wait(lock,
                       [this] { return !queue_.empty() || stopping_; });
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    // Help drain the queue instead of just blocking; this is also the
    // only execution path when the pool has no worker threads.
    while (runOne(lock)) {
    }
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

namespace detail
{

WorkPool &
WorkPool::instance()
{
    // Deliberately leaked: the detached workers park on mutex_/
    // haveWork_ forever, so the pool must outlive every static
    // destructor that might still touch it.
    static WorkPool *pool = new WorkPool;
    return *pool;
}

void
WorkPool::ensureWorkers(unsigned target)
{
    while (workers_ < target) {
        ++workers_;
        // Detached: workers never exit (they hold no state beyond the
        // leaked pool), and detaching keeps sanitizer thread-leak
        // accounting quiet at process exit.
        std::thread([this] { workerLoop(); }).detach();
    }
}

WorkPool::Group *
WorkPool::claimable(Group *prefer)
{
    if (prefer && prefer->next < prefer->n)
        return prefer;
    // Oldest group first: outer campaigns drain before later arrivals,
    // which keeps the steal pattern close to FIFO.
    for (Group *g : active_)
        if (g->next < g->n)
            return g;
    return nullptr;
}

void
WorkPool::runIndex(Group &g, std::size_t idx,
                   std::unique_lock<std::mutex> &lock)
{
    lock.unlock();
    try {
        (*g.fn)(idx);
    } catch (...) {
        (*g.errors)[idx] = std::current_exception();
    }
    lock.lock();
    if (++g.finished == g.n)
        progress_.notify_all();
}

void
WorkPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        Group *work = claimable(nullptr);
        if (!work) {
            haveWork_.wait(
                lock, [this] { return claimable(nullptr) != nullptr; });
            continue;
        }
        const std::size_t idx = work->next++;
        if (work->next == work->n)
            active_.erase(
                std::find(active_.begin(), active_.end(), work));
        runIndex(*work, idx, lock);
    }
}

void
WorkPool::run(std::size_t n, const std::function<void(std::size_t)> &fn,
              unsigned threads)
{
    // One exception slot per index so a failure in arm i is rethrown
    // exactly as a serial loop would have surfaced it (lowest index
    // first), independent of thread interleaving.
    std::vector<std::exception_ptr> errors(n);
    Group g;
    g.fn = &fn;
    g.n = n;
    g.errors = &errors;

    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t concurrency = std::min<std::size_t>(threads, n);
    ensureWorkers(static_cast<unsigned>(concurrency) - 1);
    active_.push_back(&g);
    haveWork_.notify_all();
    progress_.notify_all();

    // Help: own group first, then steal from any other active group
    // (the only way new claimable work can appear while we wait).
    while (g.finished < g.n) {
        Group *work = claimable(&g);
        if (!work) {
            progress_.wait(lock, [&] {
                return g.finished >= g.n || claimable(&g) != nullptr;
            });
            continue;
        }
        const std::size_t idx = work->next++;
        if (work->next == work->n)
            active_.erase(
                std::find(active_.begin(), active_.end(), work));
        runIndex(*work, idx, lock);
    }
    lock.unlock();

    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

} // namespace detail

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    const unsigned threads = simThreads();
    if (n == 1 || threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    detail::WorkPool::instance().run(n, fn, threads);
}

} // namespace visa
