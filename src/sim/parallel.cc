#include "sim/parallel.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>

namespace visa
{

unsigned
simThreads()
{
    if (const char *env = std::getenv("VISA_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<unsigned>(v);
        return 1;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : nThreads_(threads)
{
    if (nThreads_ <= 1)
        return;
    workers_.reserve(nThreads_);
    for (unsigned i = 0; i < nThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    haveWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++pending_;
    }
    haveWork_.notify_one();
}

bool
ThreadPool::runOne(std::unique_lock<std::mutex> &lock)
{
    if (queue_.empty())
        return false;
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    job();
    lock.lock();
    if (--pending_ == 0)
        allDone_.notify_all();
    return true;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        if (runOne(lock))
            continue;
        if (stopping_)
            return;
        haveWork_.wait(lock,
                       [this] { return !queue_.empty() || stopping_; });
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    // Help drain the queue instead of just blocking; this is also the
    // only execution path when the pool has no worker threads.
    while (runOne(lock)) {
    }
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    const unsigned threads = simThreads();
    if (n == 1 || threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // One exception slot per index so a failure in arm i is rethrown
    // exactly as a serial loop would have surfaced it (lowest index
    // first), independent of thread interleaving.
    std::vector<std::exception_ptr> errors(n);
    {
        ThreadPool pool(
            static_cast<unsigned>(std::min<std::size_t>(threads, n)));
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([i, &fn, &errors] {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

} // namespace visa
