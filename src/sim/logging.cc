#include "sim/logging.hh"

#include <cstdarg>
#include <vector>

namespace visa
{

namespace
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

bool Debug::anyEnabled_ = false;

const std::vector<Debug::FlagInfo> &
Debug::knownFlags()
{
    static const std::vector<FlagInfo> known = {
        {"Exec", "per-instruction execution trace (simple pipeline)"},
        {"Fetch", "fetch-stage events (reserved; no sites yet)"},
        {"Mode", "complex<->simple mode reconfigurations"},
        {"Runtime", "run-time system decisions and recoveries"},
        {"Watchdog", "watchdog expiries (missed checkpoints)"},
    };
    return known;
}

bool
Debug::isKnown(std::string_view flag)
{
    for (const FlagInfo &f : knownFlags())
        if (flag == f.name)
            return true;
    return false;
}

std::set<std::string, std::less<>> &
Debug::flags()
{
    static std::set<std::string, std::less<>> theFlags;
    return theFlags;
}

void
Debug::enable(const std::string &flag)
{
    flags().insert(flag);
    anyEnabled_ = true;
}

void
Debug::disable(const std::string &flag)
{
    flags().erase(flag);
    anyEnabled_ = !flags().empty();
}

bool
Debug::lookup(std::string_view flag)
{
    return flags().count(flag) > 0;
}

} // namespace visa
