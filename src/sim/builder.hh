/**
 * @file
 * SimBuilder: the one way to wire a simulated machine. Every harness
 * used to hand-assemble the same four-element rig (MainMemory,
 * Platform, MemController, a pipeline) plus an optional DVS runtime,
 * each getting the construction order and reset dance subtly right;
 * the builder centralizes that into a fluent API:
 *
 *   auto sim = SimBuilder().workload("cnt").cpu(CpuKind::Complex)
 *                  .runtime(RuntimeKind::Visa, wcet, dvs, cfg)
 *                  .build();
 *   sim->runtime().runTask();
 *
 * The product (Sim) owns the whole rig — and the program, when built
 * from source text or a named workload — so lifetime mistakes (a CPU
 * outliving its memory, a program freed under the analyzer) cannot be
 * expressed.
 */

#ifndef VISA_SIM_BUILDER_HH
#define VISA_SIM_BUILDER_HH

#include <memory>
#include <string>

#include "core/runtime.hh"
#include "workloads/clab.hh"

namespace visa
{

enum class CpuKind
{
    Simple,              ///< the simple-fixed in-order pipeline
    Complex,             ///< the out-of-order pipeline
    ComplexSimpleMode,   ///< OOO pipeline locked into simple mode
};

enum class RuntimeKind
{
    None,
    Visa,          ///< VisaComplexRuntime (EQ 4) on the OOO pipeline
    SimpleFixed,   ///< SimpleFixedRuntime (EQ 2) on simple-fixed
};

/**
 * A fully wired machine. Construction order is the member order below
 * (the CPU references mem/platform/memctrl; the runtime references the
 * CPU), so teardown is automatically safe. Not movable: the references
 * pin the rig in place.
 */
class Sim
{
  public:
    ~Sim();
    Sim(const Sim &) = delete;
    Sim &operator=(const Sim &) = delete;

    const Program &program() const { return *prog_; }
    /** The built workload, or nullptr unless workload() was used. */
    const Workload *workload() const { return workload_.get(); }

    MainMemory &mem() { return mem_; }
    Platform &platform() { return platform_; }
    MemController &memctrl() { return memctrl_; }

    Cpu &cpu() { return *cpu_; }
    /** The pipeline as its concrete type; fatal on a kind mismatch. */
    OooCpu &ooo();
    SimpleCpu &simple();

    bool hasRuntime() const { return runtime_ != nullptr; }
    /** The DVS runtime; fatal unless one was requested. */
    DvsRuntime &runtime();

  private:
    friend class SimBuilder;
    Sim() = default;

    std::unique_ptr<Program> ownedProg_;
    std::unique_ptr<Workload> workload_;
    const Program *prog_ = nullptr;
    MainMemory mem_;
    Platform platform_;
    MemController memctrl_;
    std::unique_ptr<Cpu> cpu_;
    OooCpu *ooo_ = nullptr;
    SimpleCpu *simple_ = nullptr;
    std::unique_ptr<DvsRuntime> runtime_;
};

class SimBuilder
{
  public:
    SimBuilder();

    /** Run @p prog, which the caller keeps alive past the Sim. */
    SimBuilder &program(const Program &prog);
    /** Run @p prog, transferring ownership into the Sim. */
    SimBuilder &program(Program &&prog);
    /** Assemble @p assembly and own the result. */
    SimBuilder &source(const std::string &assembly);
    /** Build benchmark @p name (workloads/clab.hh) and own it. */
    SimBuilder &workload(const std::string &name);

    /** Pipeline choice; defaults to Simple (or to the runtime's). */
    SimBuilder &cpu(CpuKind kind);
    /** Initial clock; defaults to the pipeline's reset frequency. */
    SimBuilder &frequency(MHz f);
    /**
     * Enable or disable the functional core's basic-block translation
     * cache for the built pipeline. Defaults to the process-wide
     * default (ExecCore::blockCacheDefault, flipped by the tools'
     * --no-block-cache flag); both settings are architecturally
     * identical, so this is an escape hatch and differential knob.
     */
    SimBuilder &blockCache(bool on);

    /**
     * Attach a DVS runtime. The runtime dictates the pipeline
     * (Visa -> Complex, SimpleFixed -> Simple); an explicit
     * incompatible cpu() choice is fatal at build(). @p wcet, @p dvs
     * must outlive the Sim; the runtime's deadline and speculation
     * knobs ride in @p cfg.
     */
    SimBuilder &runtime(RuntimeKind kind, const WcetTable &wcet,
                        const DvsTable &dvs, RuntimeConfig cfg);

    /**
     * Wire everything (load memory, construct the pipeline, reset it
     * for the first task, apply the frequency, attach the runtime).
     * Single-shot: the builder's program ownership moves into the Sim.
     */
    std::unique_ptr<Sim> build();

  private:
    std::unique_ptr<Program> ownedProg_;
    std::unique_ptr<Workload> workload_;
    const Program *prog_ = nullptr;
    CpuKind cpuKind_ = CpuKind::Simple;
    bool cpuKindSet_ = false;
    MHz freq_ = 0;
    bool blockCache_ = true;
    bool blockCacheSet_ = false;
    RuntimeKind runtimeKind_ = RuntimeKind::None;
    const WcetTable *wcet_ = nullptr;
    const DvsTable *dvs_ = nullptr;
    RuntimeConfig runtimeCfg_;
};

} // namespace visa

#endif // VISA_SIM_BUILDER_HH
