/**
 * @file
 * SimBuilder: the one way to wire a simulated machine. Every harness
 * used to hand-assemble the same four-element rig (MainMemory,
 * Platform, MemController, a pipeline) plus an optional DVS runtime,
 * each getting the construction order and reset dance subtly right;
 * the builder centralizes that into a fluent API:
 *
 *   auto sim = SimBuilder().workload("cnt").cpu(CpuKind::Complex)
 *                  .runtime(RuntimeKind::Visa, wcet, dvs, cfg)
 *                  .build();
 *   sim->runtime().runTask();
 *
 * The construction target is a Chip (src/chip): N cores — each with
 * its own Platform (watchdog + DVS domain) and SimpleCpu/OooCpu pair
 * — in front of one shared MainMemory and a banked bus + shared L2.
 * cores(1) (the default) is the historical single-core rig,
 * bit-identical: the bus is only attached with two or more cores.
 *
 *   auto chip = SimBuilder().workload("cnt").cpu(CpuKind::Complex)
 *                   .cores(4).buildChip();
 *   chip->runAll(budget);
 *
 * build() wraps the chip in a Sim: the core-0 veneer every tool and
 * test drives (cpu()/ooo()/simple()/runtime() are core 0), with the
 * other cores reachable through chip(). The Sim owns the whole rig —
 * and the program, when built from source text or a named workload —
 * so lifetime mistakes (a CPU outliving its memory, a program freed
 * under the analyzer) cannot be expressed.
 */

#ifndef VISA_SIM_BUILDER_HH
#define VISA_SIM_BUILDER_HH

#include <memory>
#include <string>

#include "chip/chip.hh"
#include "core/runtime.hh"
#include "workloads/clab.hh"

namespace visa
{

enum class CpuKind
{
    Simple,              ///< the simple-fixed in-order pipeline
    Complex,             ///< the out-of-order pipeline
    ComplexSimpleMode,   ///< OOO pipeline locked into simple mode
};

enum class RuntimeKind
{
    None,
    Visa,          ///< VisaComplexRuntime (EQ 4) on the OOO pipeline
    SimpleFixed,   ///< SimpleFixedRuntime (EQ 2) on simple-fixed
};

/**
 * A fully wired machine: a Chip plus the core-0 accessors the
 * single-core harnesses drive. Not movable: CPUs and runtimes hold
 * references into the chip.
 */
class Sim
{
  public:
    ~Sim();
    Sim(const Sim &) = delete;
    Sim &operator=(const Sim &) = delete;

    const Program &program() const { return chip_->program(); }
    /** The built workload, or nullptr unless workload() was used. */
    const Workload *workload() const { return chip_->workload(); }

    /** The whole chip (core 0 is the veneer below). */
    chip::Chip &chip() { return *chip_; }

    // Core 0's image, not the chip's: on a multi-core chip each core
    // runs on a private memory replica, and the runtimes this builder
    // wires up must observe the image core 0 actually executes on.
    MainMemory &mem() { return chip_->core(0).mem(); }
    Platform &platform() { return chip_->core(0).platform(); }
    MemController &memctrl() { return chip_->core(0).memctrl(); }

    Cpu &cpu() { return *cpu_; }
    /** The pipeline as its concrete type; fatal on a kind mismatch. */
    OooCpu &ooo();
    SimpleCpu &simple();

    bool hasRuntime() const { return runtime_ != nullptr; }
    /** The DVS runtime; fatal unless one was requested. */
    DvsRuntime &runtime();

  private:
    friend class SimBuilder;
    Sim() = default;

    std::unique_ptr<chip::Chip> chip_;
    Cpu *cpu_ = nullptr;            ///< core 0's primary pipeline
    OooCpu *ooo_ = nullptr;
    SimpleCpu *simple_ = nullptr;
    std::unique_ptr<DvsRuntime> runtime_;
};

class SimBuilder
{
  public:
    SimBuilder();

    /** Run @p prog, which the caller keeps alive past the Sim. */
    SimBuilder &program(const Program &prog);
    /** Run @p prog, transferring ownership into the Sim. */
    SimBuilder &program(Program &&prog);
    /** Assemble @p assembly and own the result. */
    SimBuilder &source(const std::string &assembly);
    /** Build benchmark @p name (workloads/clab.hh) and own it. */
    SimBuilder &workload(const std::string &name);

    /** Pipeline choice; defaults to Simple (or to the runtime's). */
    SimBuilder &cpu(CpuKind kind);
    /** Initial clock; defaults to the pipeline's reset frequency. */
    SimBuilder &frequency(MHz f);
    /**
     * Enable or disable the functional core's basic-block translation
     * cache for the built pipelines. Defaults to the process-wide
     * default (ExecCore::blockCacheDefault, flipped by the tools'
     * --no-block-cache flag); both settings are architecturally
     * identical, so this is an escape hatch and differential knob.
     */
    SimBuilder &blockCache(bool on);

    /**
     * Chip width: @p n cores in front of the shared bus + L2. One
     * core (the default) keeps the historical private-channel memory
     * model; two or more attach every core's MemController to the
     * chip bus.
     */
    SimBuilder &cores(int n);
    /** Bus/L2/MSHR-pool geometry for multi-core chips. */
    SimBuilder &chipBus(const chip::ChipBusParams &params);

    /**
     * Attach a DVS runtime (to core 0). The runtime dictates the
     * pipeline (Visa -> Complex, SimpleFixed -> Simple); an explicit
     * incompatible cpu() choice is fatal at build(). @p wcet, @p dvs
     * must outlive the Sim; the runtime's deadline and speculation
     * knobs ride in @p cfg.
     */
    SimBuilder &runtime(RuntimeKind kind, const WcetTable &wcet,
                        const DvsTable &dvs, RuntimeConfig cfg);

    /**
     * Wire everything (load memory, construct core 0's pipeline,
     * reset it for the first task, apply the frequency, attach the
     * runtime) and wrap the chip in its Sim veneer. Single-shot: the
     * builder's program ownership moves into the Sim.
     */
    std::unique_ptr<Sim> build();

    /**
     * Wire the bare chip: every core gets the configured pipeline
     * kind, built with the same dance as build() applies to core 0.
     * No runtime (runtimes are per-core; attach them on top, the way
     * the multi-core scheduler does). Single-shot, like build().
     */
    std::unique_ptr<chip::Chip> buildChip();

  private:
    std::unique_ptr<chip::Chip> makeChip();
    void configureCore(chip::ChipCore &core, CpuKind kind);
    CpuKind resolveKind() const;

    std::unique_ptr<Program> ownedProg_;
    std::unique_ptr<Workload> workload_;
    const Program *prog_ = nullptr;
    CpuKind cpuKind_ = CpuKind::Simple;
    bool cpuKindSet_ = false;
    MHz freq_ = 0;
    bool blockCache_ = true;
    bool blockCacheSet_ = false;
    int cores_ = 1;
    chip::ChipBusParams busParams_;
    RuntimeKind runtimeKind_ = RuntimeKind::None;
    const WcetTable *wcet_ = nullptr;
    const DvsTable *dvs_ = nullptr;
    RuntimeConfig runtimeCfg_;
};

} // namespace visa

#endif // VISA_SIM_BUILDER_HH
