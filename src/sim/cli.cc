#include "sim/cli.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "sim/logging.hh"

namespace visa
{

CliParser::CliParser(std::string prog, std::string positional_name,
                     std::string positional_help)
    : prog_(std::move(prog)), posName_(std::move(positional_name)),
      posHelp_(std::move(positional_help))
{
}

CliParser::Flag *
CliParser::find(const std::string &name)
{
    for (Flag &f : flags_)
        if (f.name == name)
            return &f;
    return nullptr;
}

std::string &
CliParser::flag(const std::string &name, const std::string &value_name,
                const std::string &help, std::string def)
{
    if (find(name))
        fatal("CliParser: flag '%s' registered twice", name.c_str());
    Flag f;
    f.name = name;
    f.valueName = value_name;
    f.help = help;
    f.value = std::move(def);
    flags_.push_back(std::move(f));
    return flags_.back().value;
}

bool &
CliParser::boolFlag(const std::string &name, const std::string &help)
{
    if (find(name))
        fatal("CliParser: flag '%s' registered twice", name.c_str());
    Flag f;
    f.name = name;
    f.help = help;
    f.isBool = true;
    flags_.push_back(std::move(f));
    return flags_.back().boolValue;
}

void
CliParser::printUsage(std::FILE *out) const
{
    std::fprintf(out, "usage: %s [options]%s%s\n", prog_.c_str(),
                 posName_.empty() ? "" : " ",
                 posName_.c_str());
    if (!posName_.empty() && !posHelp_.empty())
        std::fprintf(out, "  %-26s %s\n", posName_.c_str(),
                     posHelp_.c_str());
    for (const Flag &f : flags_) {
        std::string left = f.name;
        if (!f.valueName.empty())
            left += " " + f.valueName;
        std::fprintf(out, "  %-26s %s", left.c_str(), f.help.c_str());
        if (!f.isBool && !f.value.empty())
            std::fprintf(out, " (default: %s)", f.value.c_str());
        std::fputc('\n', out);
    }
}

void
CliParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            std::exit(0);
        }
        if (Flag *f = find(arg)) {
            if (f->isBool) {
                f->boolValue = true;
            } else {
                if (i + 1 >= argc)
                    fatal("missing value for %s", arg.c_str());
                f->value = argv[++i];
            }
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            printUsage(stderr);
            fatal("unknown option '%s' (the flags above are the legal "
                  "set)",
                  arg.c_str());
        }
        if (posName_.empty()) {
            printUsage(stderr);
            fatal("unexpected argument '%s'", arg.c_str());
        }
        posValue_ = arg;
    }
}

TraceFlags::TraceFlags(CliParser &cli)
    : trace_(&cli.flag("--trace", "FILE",
                       "Chrome trace-event JSON output")),
      jsonl_(&cli.flag("--trace-jsonl", "FILE",
                       "flat JSONL trace output")),
      events_(&cli.flag("--trace-events", "CAT[,CAT...]",
                        "trace category filter (all task checkpoint "
                        "mode dvs cpu mem sched)")),
      buffer_(&cli.flag("--trace-buffer", "N",
                        "trace ring capacity, events", "262144"))
{
}

bool
TraceFlags::requested() const
{
    return !trace_->empty() || !jsonl_->empty();
}

std::unique_ptr<Tracer>
TraceFlags::makeTracer() const
{
    if (!requested())
        return nullptr;
    auto tracer = std::make_unique<Tracer>(
        static_cast<std::size_t>(std::stoul(*buffer_)));
    if (!events_->empty()) {
        std::uint32_t mask = 0;
        std::istringstream cats(*events_);
        std::string cat;
        while (std::getline(cats, cat, ',')) {
            std::uint32_t m = Tracer::maskFor(cat);
            if (m == 0)
                fatal("unknown trace event category '%s' (categories: "
                      "all task checkpoint mode dvs cpu mem sched)",
                      cat.c_str());
            mask |= m;
        }
        tracer->setKindMask(mask);
    }
    return tracer;
}

void
TraceFlags::writeOutputs(const Tracer &tracer) const
{
    if (!jsonl_->empty())
        withOutputStream(*jsonl_, [&](std::ostream &os) {
            tracer.writeJsonl(os);
        });
    if (!trace_->empty())
        withOutputStream(*trace_, [&](std::ostream &os) {
            tracer.writeChromeTrace(os);
        });
    if (tracer.dropped())
        warn("trace ring overflowed: %llu events dropped (raise "
             "--trace-buffer)",
             static_cast<unsigned long long>(tracer.dropped()));
}

std::string &
addStatsJsonFlag(CliParser &cli)
{
    return cli.flag("--stats-json", "FILE",
                    "hierarchical JSON statistics output ('-' = "
                    "stdout)");
}

std::string &
addThreadsFlag(CliParser &cli)
{
    return cli.flag("--threads", "N",
                    "worker threads for parallel campaigns (default: "
                    "VISA_THREADS or all cores)");
}

void
applyThreadsFlag(const std::string &value)
{
    if (value.empty())
        return;
    const int n = std::stoi(value);
    if (n < 1)
        fatal("--threads must be at least 1");
    // The pool latches the count on first use, so exporting the
    // documented knob keeps one mechanism for both spellings.
    setenv("VISA_THREADS", value.c_str(), 1);
}

std::string &
addCoresFlag(CliParser &cli)
{
    return cli.flag("--cores", "N",
                    "simulated chip width: cores in front of the shared "
                    "bus + L2 (default 1, the single-core rig)");
}

int
parseCoresFlag(const std::string &value)
{
    if (value.empty())
        return 1;
    int n = 0;
    try {
        std::size_t used = 0;
        n = std::stoi(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
    } catch (const std::exception &) {
        fatal("--cores: '%s' is not a core count", value.c_str());
    }
    if (n < 1 || n > 64)
        fatal("--cores must be in [1, 64] (got %d)", n);
    return n;
}

std::string &
addAffinityFlag(CliParser &cli)
{
    return cli.flag("--affinity", "LIST",
                    "per-task core pins, e.g. 0,1,-1,0 (task index -> "
                    "core; -1 = scheduler places it)");
}

std::vector<int>
parseAffinityFlag(const std::string &value)
{
    std::vector<int> pins;
    if (value.empty())
        return pins;
    std::size_t pos = 0;
    for (;;) {
        std::size_t comma = value.find(',', pos);
        if (comma == std::string::npos)
            comma = value.size();
        const std::string item = value.substr(pos, comma - pos);
        if (item.empty())
            fatal("--affinity: empty entry in '%s'", value.c_str());
        try {
            pins.push_back(std::stoi(item));
        } catch (const std::exception &) {
            fatal("--affinity: '%s' is not an integer", item.c_str());
        }
        if (pins.back() < -1)
            fatal("--affinity: core id %d is invalid (-1 = unpinned)",
                  pins.back());
        if (comma == value.size())
            break;
        pos = comma + 1;
    }
    return pins;
}

void
validateAffinity(const std::vector<int> &pins, int cores)
{
    // Fail at the CLI with the offending value, not deep inside chip
    // construction: every tool that accepts both flags calls this
    // right after parsing them.
    for (std::size_t i = 0; i < pins.size(); ++i)
        if (pins[i] >= cores)
            fatal("--affinity: task %d pinned to core %d of a %d-core "
                  "chip",
                  static_cast<int>(i), pins[i], cores);
}

bool &
addNoBlockCacheFlag(CliParser &cli)
{
    return cli.boolFlag("--no-block-cache",
                        "disable the functional core's basic-block "
                        "translation cache (slower; architecturally "
                        "identical)");
}

std::string &
addDebugFlag(CliParser &cli)
{
    return cli.flag("--debug", "help|FLAG[,FLAG...]",
                    "enable debug-trace flags ('help' lists them)");
}

namespace
{

void
listDebugFlags(std::FILE *out)
{
    std::fprintf(out, "debug flags (--debug flag[,flag...]):\n");
    for (const auto &f : Debug::knownFlags())
        std::fprintf(out, "  %-10s %s\n", f.name, f.desc);
}

} // anonymous namespace

void
applyDebugFlag(const std::string &value)
{
    if (value.empty())
        return;
    if (value == "help" || value == "list") {
        listDebugFlags(stdout);
        std::exit(0);
    }
    std::istringstream flags(value);
    std::string flag;
    while (std::getline(flags, flag, ',')) {
        if (!Debug::isKnown(flag)) {
            listDebugFlags(stderr);
            fatal("unknown debug flag '%s' (see the list above)",
                  flag.c_str());
        }
        Debug::enable(flag);
    }
}

void
withOutputStream(const std::string &path,
                 const std::function<void(std::ostream &)> &fn)
{
    if (path == "-") {
        fn(std::cout);
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    fn(out);
}

} // namespace visa
