#include "sim/builder.hh"

#include "isa/assembler.hh"
#include "sim/logging.hh"

namespace visa
{

Sim::~Sim() = default;

OooCpu &
Sim::ooo()
{
    if (!ooo_)
        fatal("Sim: the machine was built with a simple-fixed "
              "pipeline, not the OOO one");
    return *ooo_;
}

SimpleCpu &
Sim::simple()
{
    if (!simple_)
        fatal("Sim: the machine was built with the OOO pipeline, not "
              "the simple-fixed one");
    return *simple_;
}

DvsRuntime &
Sim::runtime()
{
    if (!runtime_)
        fatal("Sim: no runtime was requested at build time");
    return *runtime_;
}

SimBuilder::SimBuilder() = default;

SimBuilder &
SimBuilder::program(const Program &prog)
{
    prog_ = &prog;
    ownedProg_.reset();
    workload_.reset();
    return *this;
}

SimBuilder &
SimBuilder::program(Program &&prog)
{
    ownedProg_ = std::make_unique<Program>(std::move(prog));
    workload_.reset();
    prog_ = ownedProg_.get();
    return *this;
}

SimBuilder &
SimBuilder::source(const std::string &assembly)
{
    return program(assemble(assembly));
}

SimBuilder &
SimBuilder::workload(const std::string &name)
{
    workload_ = std::make_unique<Workload>(makeWorkload(name));
    ownedProg_.reset();
    prog_ = &workload_->program;
    return *this;
}

SimBuilder &
SimBuilder::cpu(CpuKind kind)
{
    cpuKind_ = kind;
    cpuKindSet_ = true;
    return *this;
}

SimBuilder &
SimBuilder::frequency(MHz f)
{
    freq_ = f;
    return *this;
}

SimBuilder &
SimBuilder::blockCache(bool on)
{
    blockCache_ = on;
    blockCacheSet_ = true;
    return *this;
}

SimBuilder &
SimBuilder::runtime(RuntimeKind kind, const WcetTable &wcet,
                    const DvsTable &dvs, RuntimeConfig cfg)
{
    runtimeKind_ = kind;
    wcet_ = &wcet;
    dvs_ = &dvs;
    runtimeCfg_ = cfg;
    return *this;
}

std::unique_ptr<Sim>
SimBuilder::build()
{
    if (!prog_)
        fatal("SimBuilder: no program (use program/source/workload)");

    CpuKind kind = cpuKind_;
    if (runtimeKind_ == RuntimeKind::Visa) {
        if (cpuKindSet_ && cpuKind_ != CpuKind::Complex)
            fatal("SimBuilder: the VISA runtime needs the complex "
                  "pipeline");
        kind = CpuKind::Complex;
    } else if (runtimeKind_ == RuntimeKind::SimpleFixed) {
        if (cpuKindSet_ && cpuKind_ != CpuKind::Simple)
            fatal("SimBuilder: the simple-fixed runtime needs the "
                  "simple pipeline");
        kind = CpuKind::Simple;
    }

    // Sim has a private ctor; tie the ownership transfer together.
    std::unique_ptr<Sim> sim(new Sim);
    sim->ownedProg_ = std::move(ownedProg_);
    sim->workload_ = std::move(workload_);
    sim->prog_ = prog_;
    const Program &prog = *sim->prog_;

    sim->mem_.loadProgram(prog);
    if (kind == CpuKind::Simple) {
        auto cpu = std::make_unique<SimpleCpu>(prog, sim->mem_,
                                               sim->platform_,
                                               sim->memctrl_);
        sim->simple_ = cpu.get();
        sim->cpu_ = std::move(cpu);
    } else {
        auto cpu = std::make_unique<OooCpu>(prog, sim->mem_,
                                            sim->platform_,
                                            sim->memctrl_);
        sim->ooo_ = cpu.get();
        sim->cpu_ = std::move(cpu);
    }
    if (blockCacheSet_)
        sim->cpu_->execCore().setBlockCacheEnabled(blockCache_);
    sim->cpu_->resetForTask();
    if (kind == CpuKind::ComplexSimpleMode)
        sim->ooo_->switchToSimple();
    if (freq_)
        sim->cpu_->setFrequency(freq_);

    if (runtimeKind_ == RuntimeKind::Visa)
        sim->runtime_ = std::make_unique<VisaComplexRuntime>(
            *sim->ooo_, prog, sim->mem_, *wcet_, *dvs_, runtimeCfg_);
    else if (runtimeKind_ == RuntimeKind::SimpleFixed)
        sim->runtime_ = std::make_unique<SimpleFixedRuntime>(
            *sim->simple_, prog, sim->mem_, *wcet_, *dvs_, runtimeCfg_);
    return sim;
}

} // namespace visa
