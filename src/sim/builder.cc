#include "sim/builder.hh"

#include "isa/assembler.hh"
#include "sim/logging.hh"

namespace visa
{

Sim::~Sim() = default;

OooCpu &
Sim::ooo()
{
    if (!ooo_)
        fatal("Sim: the machine was built with a simple-fixed "
              "pipeline, not the OOO one");
    return *ooo_;
}

SimpleCpu &
Sim::simple()
{
    if (!simple_)
        fatal("Sim: the machine was built with the OOO pipeline, not "
              "the simple-fixed one");
    return *simple_;
}

DvsRuntime &
Sim::runtime()
{
    if (!runtime_)
        fatal("Sim: no runtime was requested at build time");
    return *runtime_;
}

SimBuilder::SimBuilder() = default;

SimBuilder &
SimBuilder::program(const Program &prog)
{
    prog_ = &prog;
    ownedProg_.reset();
    workload_.reset();
    return *this;
}

SimBuilder &
SimBuilder::program(Program &&prog)
{
    ownedProg_ = std::make_unique<Program>(std::move(prog));
    workload_.reset();
    prog_ = ownedProg_.get();
    return *this;
}

SimBuilder &
SimBuilder::source(const std::string &assembly)
{
    return program(assemble(assembly));
}

SimBuilder &
SimBuilder::workload(const std::string &name)
{
    workload_ = std::make_unique<Workload>(makeWorkload(name));
    ownedProg_.reset();
    prog_ = &workload_->program;
    return *this;
}

SimBuilder &
SimBuilder::cpu(CpuKind kind)
{
    cpuKind_ = kind;
    cpuKindSet_ = true;
    return *this;
}

SimBuilder &
SimBuilder::frequency(MHz f)
{
    freq_ = f;
    return *this;
}

SimBuilder &
SimBuilder::blockCache(bool on)
{
    blockCache_ = on;
    blockCacheSet_ = true;
    return *this;
}

SimBuilder &
SimBuilder::cores(int n)
{
    if (n < 1)
        fatal("SimBuilder: cores(%d): a chip has at least one core", n);
    cores_ = n;
    return *this;
}

SimBuilder &
SimBuilder::chipBus(const chip::ChipBusParams &params)
{
    busParams_ = params;
    return *this;
}

SimBuilder &
SimBuilder::runtime(RuntimeKind kind, const WcetTable &wcet,
                    const DvsTable &dvs, RuntimeConfig cfg)
{
    runtimeKind_ = kind;
    wcet_ = &wcet;
    dvs_ = &dvs;
    runtimeCfg_ = cfg;
    return *this;
}

CpuKind
SimBuilder::resolveKind() const
{
    if (runtimeKind_ == RuntimeKind::Visa) {
        if (cpuKindSet_ && cpuKind_ != CpuKind::Complex)
            fatal("SimBuilder: the VISA runtime needs the complex "
                  "pipeline");
        return CpuKind::Complex;
    }
    if (runtimeKind_ == RuntimeKind::SimpleFixed) {
        if (cpuKindSet_ && cpuKind_ != CpuKind::Simple)
            fatal("SimBuilder: the simple-fixed runtime needs the "
                  "simple pipeline");
        return CpuKind::Simple;
    }
    return cpuKind_;
}

std::unique_ptr<chip::Chip>
SimBuilder::makeChip()
{
    if (!prog_)
        fatal("SimBuilder: no program (use program/source/workload)");
    chip::ChipConfig cfg;
    cfg.cores = cores_;
    cfg.bus = busParams_;
    auto built = std::make_unique<chip::Chip>(*prog_, cfg);
    built->adoptProgram(std::move(ownedProg_), std::move(workload_));
    return built;
}

/** The historical per-core construction dance, in its exact order:
 *  construct, block-cache knob, reset, mode switch, frequency. */
void
SimBuilder::configureCore(chip::ChipCore &core, CpuKind kind)
{
    Cpu *cpu = nullptr;
    if (kind == CpuKind::Simple)
        cpu = &core.makeSimple();
    else
        cpu = &core.makeOoo();
    if (blockCacheSet_)
        cpu->execCore().setBlockCacheEnabled(blockCache_);
    cpu->resetForTask();
    if (kind == CpuKind::ComplexSimpleMode)
        core.ooo().switchToSimple();
    if (freq_)
        cpu->setFrequency(freq_);
}

std::unique_ptr<Sim>
SimBuilder::build()
{
    const CpuKind kind = resolveKind();

    // Sim has a private ctor; tie the ownership transfer together.
    std::unique_ptr<Sim> sim(new Sim);
    sim->chip_ = makeChip();
    chip::ChipCore &core0 = sim->chip_->core(0);
    configureCore(core0, kind);
    if (kind == CpuKind::Simple) {
        sim->simple_ = &core0.simple();
        sim->cpu_ = sim->simple_;
    } else {
        sim->ooo_ = &core0.ooo();
        sim->cpu_ = sim->ooo_;
    }

    const Program &prog = sim->program();
    if (runtimeKind_ == RuntimeKind::Visa)
        sim->runtime_ = std::make_unique<VisaComplexRuntime>(
            *sim->ooo_, prog, sim->mem(), *wcet_, *dvs_, runtimeCfg_);
    else if (runtimeKind_ == RuntimeKind::SimpleFixed)
        sim->runtime_ = std::make_unique<SimpleFixedRuntime>(
            *sim->simple_, prog, sim->mem(), *wcet_, *dvs_, runtimeCfg_);
    return sim;
}

std::unique_ptr<chip::Chip>
SimBuilder::buildChip()
{
    if (runtimeKind_ != RuntimeKind::None)
        fatal("SimBuilder: buildChip() builds the bare chip; runtimes "
              "are attached per core on top (use build() for the "
              "single-runtime veneer)");
    const CpuKind kind = resolveKind();
    auto built = makeChip();
    for (int i = 0; i < built->numCores(); ++i)
        configureCore(built->core(i), kind);
    return built;
}

} // namespace visa
