/**
 * @file
 * A small work-queue thread pool for running independent simulation
 * arms concurrently. Experiment campaigns (bench/) are embarrassingly
 * parallel: each arm owns a private MainMemory/Platform/MemController/
 * Cpu rig and only shares immutable inputs (Program, WcetTable,
 * DvsTable), so the only requirement on the runner is that results are
 * collected in deterministic input order — which parallelFor
 * guarantees regardless of execution interleaving.
 */

#ifndef VISA_SIM_PARALLEL_HH
#define VISA_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace visa
{

/**
 * Worker-thread count for parallel campaigns: the VISA_THREADS
 * environment variable when set (clamped to >= 1), otherwise
 * std::thread::hardware_concurrency(). VISA_THREADS=1 forces serial
 * execution; tests also use it to exercise the pool on single-core
 * machines.
 */
unsigned simThreads();

/** A fixed-size work-queue thread pool. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. A count of 0 or 1 starts no worker
     * threads; submitted jobs then run inline in wait().
     */
    explicit ThreadPool(unsigned threads = simThreads());

    /** Drains the queue (runs remaining jobs) before joining. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Jobs must not throw (wrap and capture instead). */
    void submit(std::function<void()> job);

    /**
     * Run queued jobs on the calling thread too, then block until every
     * submitted job has finished.
     */
    void wait();

    unsigned threads() const { return nThreads_; }

  private:
    void workerLoop();
    /** Pop-and-run one job. @return false if the queue was empty. */
    bool runOne(std::unique_lock<std::mutex> &lock);

    unsigned nThreads_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable haveWork_;
    std::condition_variable allDone_;
    std::size_t pending_ = 0;    ///< queued + currently running
    bool stopping_ = false;
};

/**
 * Run fn(0) .. fn(n-1), distributing the indices over a transient pool
 * of simThreads() workers (the caller participates as well). Blocks
 * until all calls finish.
 *
 * Deterministic by construction: which thread runs which index is
 * unspecified, but each index runs exactly once and any exceptions are
 * rethrown as if execution had been serial — the one thrown by the
 * lowest index wins; the other arms still run to completion.
 *
 * Nesting is safe (each call owns its workers) but multiplies the
 * thread count, so parallelize at the outermost loop.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace visa

#endif // VISA_SIM_PARALLEL_HH
