/**
 * @file
 * Process-wide parallel execution for independent simulation arms.
 * Experiment campaigns (bench/) are embarrassingly parallel: each arm
 * owns a private MainMemory/Platform/MemController/Cpu rig and only
 * shares immutable inputs (Program, WcetTable, DvsTable), so the only
 * requirement on the runner is that results are collected in
 * deterministic input order — which parallelFor guarantees regardless
 * of execution interleaving.
 *
 * Since PR 10 every parallelFor call shares ONE process-wide helping
 * pool (detail::WorkPool): campaign fan-out and intra-chip per-core
 * threads draw from the same simThreads()-sized worker set, and a
 * nested parallelFor never spawns extra threads — the nested caller
 * claims its own indices while idle workers steal them, so chip-inside-
 * campaign parallelism cannot oversubscribe the host. The standalone
 * ThreadPool class below remains for callers that want a private,
 * explicitly-sized queue.
 */

#ifndef VISA_SIM_PARALLEL_HH
#define VISA_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace visa
{

/**
 * Worker-thread count for parallel campaigns: the VISA_THREADS
 * environment variable when set (clamped to >= 1), otherwise
 * std::thread::hardware_concurrency(). VISA_THREADS=1 forces serial
 * execution; tests also use it to exercise the pool on single-core
 * machines.
 */
unsigned simThreads();

/** A fixed-size work-queue thread pool. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. A count of 0 or 1 starts no worker
     * threads; submitted jobs then run inline in wait().
     */
    explicit ThreadPool(unsigned threads = simThreads());

    /** Drains the queue (runs remaining jobs) before joining. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Jobs must not throw (wrap and capture instead). */
    void submit(std::function<void()> job);

    /**
     * Run queued jobs on the calling thread too, then block until every
     * submitted job has finished.
     */
    void wait();

    unsigned threads() const { return nThreads_; }

  private:
    void workerLoop();
    /** Pop-and-run one job. @return false if the queue was empty. */
    bool runOne(std::unique_lock<std::mutex> &lock);

    unsigned nThreads_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable haveWork_;
    std::condition_variable allDone_;
    std::size_t pending_ = 0;    ///< queued + currently running
    bool stopping_ = false;
};

namespace detail
{

/**
 * The process-wide helping pool behind parallelFor(). One instance per
 * process; worker threads are lazily spawned up to the largest
 * simThreads() demand ever seen and then parked on a condition
 * variable, so the pool costs nothing while no parallelFor runs.
 *
 * Scheduling model: each run() call is a "group" of n indices. The
 * caller participates — it claims indices of its own group first, then
 * steals from any other active group — and workers claim from the
 * oldest active group. A caller blocks only when every index anywhere
 * is already being executed, so nested run() calls (a worker's arm
 * itself calling parallelFor) make progress on the caller's own stack
 * instead of waiting for a free worker: nesting can never deadlock and
 * never grows the thread count.
 */
class WorkPool
{
  public:
    /** The singleton (leaked: workers park forever, never joined). */
    static WorkPool &instance();

    /**
     * Run fn(0)..fn(n-1) across the pool with at most @p threads
     * concurrent executors (including the caller); blocks until all n
     * finished, then rethrows the lowest-index exception, if any.
     * Requires n >= 2 and threads >= 2 (parallelFor handles the serial
     * cases inline).
     */
    void run(std::size_t n, const std::function<void(std::size_t)> &fn,
             unsigned threads);

  private:
    /** One run() call: its indices and completion/exception state. */
    struct Group
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::size_t next = 0;        ///< next unclaimed index
        std::size_t finished = 0;    ///< indices fully executed
        std::vector<std::exception_ptr> *errors = nullptr;
    };

    WorkPool() = default;

    /** Spawn detached workers until @p target exist. */
    void ensureWorkers(unsigned target);
    /** A group with unclaimed indices (@p prefer first), or nullptr. */
    Group *claimable(Group *prefer);
    /** Execute index @p idx of @p g (drops the lock while running). */
    void runIndex(Group &g, std::size_t idx,
                  std::unique_lock<std::mutex> &lock);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable haveWork_;    ///< workers: new group pushed
    std::condition_variable progress_;    ///< callers: group finished
    std::vector<Group *> active_;         ///< groups with unclaimed work
    unsigned workers_ = 0;
};

} // namespace detail

/**
 * Run fn(0) .. fn(n-1) over the process-wide pool, capped at
 * simThreads() concurrent executors (the caller participates). Blocks
 * until all calls finish.
 *
 * Deterministic by construction: which thread runs which index is
 * unspecified, but each index runs exactly once and any exceptions are
 * rethrown as if execution had been serial — the one thrown by the
 * lowest index wins; the other arms still run to completion.
 *
 * Nesting is safe AND free: a nested call claims its own indices on
 * the calling thread while idle workers steal the rest, so the thread
 * count never exceeds simThreads() no matter how deep campaigns and
 * intra-chip parallelism stack.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace visa

#endif // VISA_SIM_PARALLEL_HH
