/**
 * @file
 * Minimal gem5-style logging: panic/fatal for bugs vs user errors,
 * warn/inform for status, and compile-time-cheap debug tracing gated on
 * named flags.
 */

#ifndef VISA_SIM_LOGGING_HH
#define VISA_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace visa
{

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal simulator bug was detected. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/**
 * Abort on an internal simulator bug. Use for conditions that should
 * never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort on a user-caused error (bad configuration, malformed assembly).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; does not stop the simulation. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Runtime-selectable debug-trace flags ("Exec", "Watchdog", ...). */
class Debug
{
  public:
    /** A registered flag name with its one-line description. */
    struct FlagInfo
    {
        const char *name;
        const char *desc;
    };

    /**
     * Every flag the simulator's DPRINTF sites use, for `--debug help`
     * and typo rejection. Kept in logging.cc next to the definition of
     * enable(); adding a DPRINTF with a new flag means adding it here.
     */
    static const std::vector<FlagInfo> &knownFlags();

    /** @return true if @p flag is in knownFlags(). */
    static bool isKnown(std::string_view flag);

    /** Enable a named trace flag. */
    static void enable(const std::string &flag);
    /** Disable a named trace flag. */
    static void disable(const std::string &flag);

    /**
     * @return true if the named flag is enabled.
     *
     * enabled() sits on the per-instruction path of the simulators, so
     * the common no-tracing case must stay a single flag test: the set
     * lookup (and any std::string construction at the call site) only
     * happens once at least one flag has ever been enabled.
     */
    static bool
    enabled(std::string_view flag)
    {
        return anyEnabled_ && lookup(flag);
    }

  private:
    static bool lookup(std::string_view flag);
    static std::set<std::string, std::less<>> &flags();
    /** False until the first enable(); cleared when the set empties. */
    static bool anyEnabled_;
};

/** Emit a trace line if the named debug flag is enabled. */
#define DPRINTF(flag, ...)                                                  \
    do {                                                                    \
        if (::visa::Debug::enabled(flag)) {                                 \
            std::fprintf(stderr, "%s: ", flag);                             \
            std::fprintf(stderr, __VA_ARGS__);                              \
        }                                                                   \
    } while (0)

} // namespace visa

#endif // VISA_SIM_LOGGING_HH
