/**
 * @file
 * Block-granular execution profiler: the consumer of the basic-block
 * translation cache's per-block hooks (DESIGN.md §9/§10). Records, per
 * text word and per dynamic basic block:
 *
 *  - execution counts (how often each block/instruction ran),
 *  - edge (block -> block) transfer counts,
 *  - cycle attribution on the timing pipelines (where simulated cycles
 *    actually went, joined per sub-task phase),
 *  - checkpoint observations from the run-time system (AET/PET/WCET
 *    per sub-task, per DVS frequency) for slack attribution reports.
 *
 * Gating follows the tracing discipline of `sim/trace.hh` exactly:
 *
 *  - compile time: building with -DVISA_PROFILING=0 turns
 *    currentProfiler() into a constant nullptr, so every hook folds
 *    away and the profiler contributes no code to the hot paths;
 *  - run time: a thread-local profiler pointer, hoisted into a local
 *    once per run. The functional batch path pays one predicted
 *    branch per *block*; the timing pipelines pay one per retired
 *    instruction (a fraction of the work those loops already do).
 *
 * Counting semantics are identical across the cached batch path, the
 * per-step fallback, and both timing pipelines: a "block entry" is an
 * arrival at a PC immediately after a control-transfer instruction
 * executed (taken or not) or at the start of profiling. Sequential
 * continuations — budget pauses inside a block, store-to-code resyncs,
 * falling off the end of text — do not count as entries, so cached and
 * uncached runs of the same program produce identical profiles.
 */

#ifndef VISA_SIM_PROF_PROF_HH
#define VISA_SIM_PROF_PROF_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"
#include "sim/types.hh"

#ifndef VISA_PROFILING
#define VISA_PROFILING 1
#endif

namespace visa
{
class StatSet;
} // namespace visa

namespace visa::prof
{

/** Pseudo block id for "profiling started here" edges. */
inline constexpr std::uint32_t entryBlockId = 0xFFFFFFFFu;

/** One checkpoint observation reported by the run-time system. */
struct CheckpointRecord
{
    int subtask = 0;            ///< 1-based sub-task id
    std::uint64_t aet = 0;      ///< measured execution time, cycles
    std::uint64_t pet = 0;      ///< predicted (PET) budget, cycles
    std::uint64_t wcet = 0;     ///< static bound at @ref freq, cycles
    MHz freq = 0;               ///< DVS setting the sub-task ran at
    std::uint64_t stamp = 0;    ///< monotonic cross-task cycle stamp
};

/** Bound-side charge (from the WCET analyzer's worst-case path). */
struct BoundCharge
{
    Addr startPc = 0;
    Addr endPc = 0;    ///< exclusive; 0 when not a text region
    /** "block", "loop", "call", "first_miss" or "dmiss_pad". */
    std::string kind;
    std::uint64_t count = 1;    ///< executions charged (loop: bound)
    std::uint64_t cycles = 0;
};

/** Per-sub-task bound attribution at one frequency. */
struct SubtaskBound
{
    int subtask = 0;    ///< 1-based
    std::uint64_t cycles = 0;
    std::vector<BoundCharge> charges;
};

/** A flattened per-block profile entry (export form). */
struct BlockProfileEntry
{
    Addr pc = 0;
    std::uint32_t words = 0;     ///< instructions in the block extent
    std::uint64_t entries = 0;   ///< times entered
    std::uint64_t insts = 0;     ///< dynamic instructions executed in it
    std::uint64_t cycles = 0;    ///< attributed cycles (timing rigs)
};

/**
 * The per-thread profile accumulator. One instance profiles programs
 * sharing one text image (the text geometry is fixed at construction);
 * install it with ScopedProfiler around the run to record.
 */
class BlockProfiler
{
  public:
    explicit BlockProfiler(const Program &prog);

    // ------------------------------------------------------------------
    // Hot paths (called with a hoisted non-null profiler pointer).
    // ------------------------------------------------------------------

    /** One committed instruction on a timing pipeline. */
    void
    countTimed(Addr pc, bool control, Cycles delta)
    {
        const std::size_t w = wordOf(pc);
        if (w >= nwords_) [[unlikely]]
            return;
        if (pendingEntry_)
            enterBlock(static_cast<std::uint32_t>(w));
        ++instCount_[w];
        instCycles_[w] += delta;
        attributedCycles_ += delta;
        phaseCycles_[phaseIdx_] += delta;
        pendingEntry_ = control;
    }

    /** One functional step (uncached / observer / budget-tail path). */
    void
    countStep(Addr pc, bool control)
    {
        const std::size_t w = wordOf(pc);
        if (w >= nwords_) [[unlikely]]
            return;
        if (pendingEntry_)
            enterBlock(static_cast<std::uint32_t>(w));
        ++instCount_[w];
        pendingEntry_ = control;
    }

    /**
     * A whole-block batch from the threaded functional dispatcher:
     * @p n instructions starting at @p entry_pc ran; @p transfer is
     * true when the run ended in a control transfer (so the *next*
     * arrival counts as a block entry).
     */
    void
    countBlockRun(Addr entry_pc, std::uint32_t n, bool transfer)
    {
        if (n == 0)
            return;
        const std::size_t w = wordOf(entry_pc);
        if (w + n > nwords_) [[unlikely]]
            return;
        if (pendingEntry_)
            enterBlock(static_cast<std::uint32_t>(w));
        // Per-word execution counts fall out of a difference array:
        // one add per block run, prefix-summed once at export.
        rangeAdd_[w] += 1;
        rangeAdd_[w + n] -= 1;
        instsBatched_ += n;
        pendingEntry_ = transfer;
    }

    // ------------------------------------------------------------------
    // Cold paths.
    // ------------------------------------------------------------------

    /** Sub-task phase switch (Platform checkpoint register store). */
    void setPhase(int subtask);

    /** A checkpoint observation from the run-time system. */
    void recordCheckpoint(const CheckpointRecord &rec);

    /** Cycles spent outside any instruction (idle, DVS software). */
    void addUnattributed(Cycles c) { unattributedCycles_ += c; }

    /** Bound-side inputs for the slack report (set before export). */
    void setWcetBound(MHz freq, std::vector<std::uint64_t> subtask_cycles);
    void setBoundAttribution(std::vector<SubtaskBound> attribution);

    // ------------------------------------------------------------------
    // Results.
    // ------------------------------------------------------------------

    /** Total dynamic instructions recorded. */
    std::uint64_t totalInsts() const;
    /** Cycles attributed to instructions by the timing pipelines. */
    std::uint64_t attributedCycles() const { return attributedCycles_; }
    std::uint64_t unattributedCycles() const { return unattributedCycles_; }
    /** Total block entries recorded. */
    std::uint64_t totalEntries() const { return totalEntries_; }
    /** Sum of all reported sub-task AETs. */
    std::uint64_t aetCyclesTotal() const { return aetTotal_; }

    /** Flatten into per-block entries, hottest (by cycles, then insts,
     *  then pc) first. */
    std::vector<BlockProfileEntry> blocks() const;

    /** Edge map: key = (from block word << 32) | to block word, with
     *  from == entryBlockId for profiling-start edges. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    edges() const
    {
        return edges_;
    }

    const std::vector<CheckpointRecord> &checkpoints() const
    {
        return checkpoints_;
    }

    /** Cycles per sub-task phase (index 0 = outside any sub-task). */
    const std::vector<std::uint64_t> &phaseCycles() const
    {
        return phaseCycles_;
    }

    Addr textBase() const { return base_; }
    std::size_t textWords() const { return nwords_; }
    const Program &program() const { return *prog_; }

    /** Per-word execution count (prefix-summed view; for tests). */
    std::vector<std::uint64_t> instCounts() const;

    /** Contribute a "prof" group to the versioned stats tree. */
    void buildStats(StatSet &set) const;

    /**
     * Full profile document: hierarchical JSON (traceSchemaVersion-stamped) with block
     * table (with disassembly), edge list, per-phase cycles, checkpoint
     * records, slack aggregates and headroom histograms per DVS
     * frequency, and the bound-side attribution when provided.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Perfetto counter-track sink: per-sub-task slack / AET counter
     * tracks over the monotonic checkpoint stamps, loadable in the
     * same viewers as Tracer::writeChromeTrace output.
     */
    void writeChromeCounters(std::ostream &os) const;

  private:
    std::size_t
    wordOf(Addr pc) const
    {
        return static_cast<std::size_t>(pc - base_) >> 2;
    }

    void
    enterBlock(std::uint32_t w)
    {
        ++blockCount_[w];
        ++totalEntries_;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(lastBlock_) << 32) | w;
        ++edges_[key];
        lastBlock_ = w;
        pendingEntry_ = false;
    }

    const Program *prog_;
    Addr base_ = 0;
    std::size_t nwords_ = 0;

    std::vector<std::uint64_t> instCount_;     ///< per word, direct
    std::vector<std::int64_t> rangeAdd_;       ///< per word + 1, batched
    std::vector<std::uint64_t> instCycles_;    ///< per word
    std::vector<std::uint64_t> blockCount_;    ///< entries per word
    std::unordered_map<std::uint64_t, std::uint64_t> edges_;

    bool pendingEntry_ = true;    ///< first arrival counts as an entry
    std::uint32_t lastBlock_ = entryBlockId;

    std::uint64_t instsBatched_ = 0;
    std::uint64_t totalEntries_ = 0;
    std::uint64_t attributedCycles_ = 0;
    std::uint64_t unattributedCycles_ = 0;

    int phaseIdx_ = 0;
    std::vector<std::uint64_t> phaseCycles_{0};

    std::vector<CheckpointRecord> checkpoints_;
    std::uint64_t aetTotal_ = 0;

    std::vector<std::pair<MHz, std::vector<std::uint64_t>>> bounds_;
    std::vector<SubtaskBound> boundAttr_;
};

namespace detail
{
extern thread_local BlockProfiler *tlsProfiler;
} // namespace detail

/** The calling thread's installed profiler, or nullptr. */
inline BlockProfiler *
currentProfiler()
{
#if VISA_PROFILING
    return detail::tlsProfiler;
#else
    return nullptr;
#endif
}

/**
 * Install @p prof as the calling thread's profiler (nullptr disables
 * profiling). @return the previously installed profiler.
 */
BlockProfiler *installProfiler(BlockProfiler *prof);

/** RAII profiler installation for tools and tests. */
class ScopedProfiler
{
  public:
    explicit ScopedProfiler(BlockProfiler &prof)
        : prev_(installProfiler(&prof))
    {
    }
    ~ScopedProfiler() { installProfiler(prev_); }
    ScopedProfiler(const ScopedProfiler &) = delete;
    ScopedProfiler &operator=(const ScopedProfiler &) = delete;

  private:
    BlockProfiler *prev_;
};

} // namespace visa::prof

#endif // VISA_SIM_PROF_PROF_HH
