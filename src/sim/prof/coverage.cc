#include "sim/prof/coverage.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/prof/prof.hh"

namespace visa::prof
{

CoverageMap::CoverageMap(std::size_t bits)
{
    if (bits < 64 || (bits & (bits - 1)) != 0)
        fatal("coverage map size must be a power of two >= 64");
    words_.assign(bits / 64, 0);
    mask_ = bits - 1;
}

bool
CoverageMap::insert(std::uint64_t feature)
{
    const std::uint64_t bit = feature & mask_;
    std::uint64_t &w = words_[bit >> 6];
    const std::uint64_t m = 1ULL << (bit & 63);
    if (w & m)
        return false;
    w |= m;
    ++pop_;
    return true;
}

std::uint64_t
CoverageMap::add(const std::vector<std::uint64_t> &features)
{
    std::uint64_t fresh = 0;
    for (std::uint64_t f : features)
        fresh += insert(f) ? 1 : 0;
    return fresh;
}

namespace
{

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

std::uint64_t
fnv(std::uint64_t h, std::uint8_t byte)
{
    return (h ^ byte) * fnvPrime;
}

/**
 * Signature of the straight-line block starting at word @p w: FNV-1a
 * over its opcode bytes up to and including the terminator, capped at
 * 32 instructions so pathological runs stay cheap.
 */
std::uint64_t
blockSignature(const Program &prog, std::uint32_t w)
{
    std::uint64_t h = fnvOffset;
    const std::size_t n = prog.text.size();
    for (std::uint32_t i = 0; i < 32 && w + i < n; ++i) {
        const Instruction &in = prog.text[w + i];
        h = fnv(h, static_cast<std::uint8_t>(in.op));
        if (in.isControl() || in.isHalt())
            break;
    }
    return h;
}

} // anonymous namespace

std::vector<std::uint64_t>
coverageFeatures(const BlockProfiler &prof, const Program &prog)
{
    // Edge keys sorted so the feature list is order-independent.
    std::vector<std::uint64_t> keys;
    keys.reserve(prof.edges().size());
    for (const auto &[key, count] : prof.edges()) {
        (void)count;
        keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());

    std::vector<std::uint64_t> out;
    out.reserve(keys.size() * 2);
    std::uint64_t lastBlockSig = 0;
    std::uint32_t lastBlockWord = entryBlockId;
    for (std::uint64_t key : keys) {
        const std::uint32_t from = static_cast<std::uint32_t>(key >> 32);
        const std::uint32_t to = static_cast<std::uint32_t>(key);
        const std::uint64_t toSig =
            to == lastBlockWord ? lastBlockSig : blockSignature(prog, to);
        lastBlockWord = to;
        lastBlockSig = toSig;
        // Block feature: the destination block ran (salt 0x51).
        out.push_back((toSig * fnvPrime) ^ 0x51);
        // Edge feature: source signature folded with destination.
        const std::uint64_t fromSig = from == entryBlockId
                                          ? fnvOffset
                                          : blockSignature(prog, from);
        out.push_back(((fromSig ^ (toSig * fnvPrime)) * fnvPrime) ^ 0xed);
    }
    return out;
}

} // namespace visa::prof
