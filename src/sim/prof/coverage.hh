/**
 * @file
 * Block/edge coverage over generated programs, for coverage-guided
 * fuzzing (`visa-fuzz --coverage`). Distinct progen programs have
 * distinct text images, so raw PCs are meaningless across a corpus;
 * coverage features are instead *structural* signatures — a hash of
 * the opcode sequences of the source and destination blocks of each
 * executed edge (and of each executed block alone) — folded into a
 * fixed-size bitmap, AFL-style. A program "discovers" coverage when it
 * exercises a block shape or block-pair transition no earlier program
 * produced.
 */

#ifndef VISA_SIM_PROF_COVERAGE_HH
#define VISA_SIM_PROF_COVERAGE_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace visa::prof
{

class BlockProfiler;

/** Fixed-size coverage bitmap with a population count. */
class CoverageMap
{
  public:
    /** @param bits map size; must be a power of two. */
    explicit CoverageMap(std::size_t bits = std::size_t{1} << 22);

    /** Fold @p feature into the map. @return true if its bit was new. */
    bool insert(std::uint64_t feature);

    /** Fold a feature batch; @return how many bits were new. */
    std::uint64_t add(const std::vector<std::uint64_t> &features);

    /** Bits set so far. */
    std::uint64_t population() const { return pop_; }
    /** Map capacity in bits. */
    std::size_t sizeBits() const { return words_.size() * 64; }

  private:
    std::vector<std::uint64_t> words_;
    std::uint64_t pop_ = 0;
    std::uint64_t mask_ = 0;
};

/**
 * Structural coverage features of one profiled run: one feature per
 * distinct executed block (hash of its opcode sequence) and one per
 * distinct executed edge (hash of both endpoint blocks' opcode
 * sequences plus a direction salt). Deterministic for a given
 * profile + program, independent of thread count or execution order.
 */
std::vector<std::uint64_t> coverageFeatures(const BlockProfiler &prof,
                                            const Program &prog);

} // namespace visa::prof

#endif // VISA_SIM_PROF_COVERAGE_HH
