#include "sim/prof/prof.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>

#include "isa/disassembler.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace visa::prof
{

namespace detail
{
thread_local BlockProfiler *tlsProfiler = nullptr;
} // namespace detail

BlockProfiler *
installProfiler(BlockProfiler *prof)
{
#if VISA_PROFILING
    BlockProfiler *prev = detail::tlsProfiler;
    detail::tlsProfiler = prof;
    return prev;
#else
    (void)prof;
    return nullptr;
#endif
}

BlockProfiler::BlockProfiler(const Program &prog)
    : prog_(&prog), base_(prog.textBase), nwords_(prog.text.size()),
      instCount_(nwords_, 0), rangeAdd_(nwords_ + 1, 0),
      instCycles_(nwords_, 0), blockCount_(nwords_, 0)
{
}

void
BlockProfiler::setPhase(int subtask)
{
    if (subtask < 0)
        subtask = 0;
    phaseIdx_ = subtask;
    if (static_cast<std::size_t>(phaseIdx_) >= phaseCycles_.size())
        phaseCycles_.resize(static_cast<std::size_t>(phaseIdx_) + 1, 0);
}

void
BlockProfiler::recordCheckpoint(const CheckpointRecord &rec)
{
    checkpoints_.push_back(rec);
    aetTotal_ += rec.aet;
}

void
BlockProfiler::setWcetBound(MHz freq,
                            std::vector<std::uint64_t> subtask_cycles)
{
    for (auto &[f, row] : bounds_) {
        if (f == freq) {
            row = std::move(subtask_cycles);
            return;
        }
    }
    bounds_.emplace_back(freq, std::move(subtask_cycles));
}

void
BlockProfiler::setBoundAttribution(std::vector<SubtaskBound> attribution)
{
    boundAttr_ = std::move(attribution);
}

std::vector<std::uint64_t>
BlockProfiler::instCounts() const
{
    std::vector<std::uint64_t> out(instCount_);
    std::int64_t run = 0;
    for (std::size_t w = 0; w < nwords_; ++w) {
        run += rangeAdd_[w];
        out[w] += static_cast<std::uint64_t>(run);
    }
    return out;
}

std::uint64_t
BlockProfiler::totalInsts() const
{
    std::uint64_t n = instsBatched_;
    for (std::uint64_t c : instCount_)
        n += c;
    return n;
}

std::vector<BlockProfileEntry>
BlockProfiler::blocks() const
{
    const std::vector<std::uint64_t> counts = instCounts();
    std::vector<BlockProfileEntry> out;
    std::size_t w = 0;
    while (w < nwords_) {
        if (blockCount_[w] == 0 && counts[w] == 0) {
            ++w;
            continue;
        }
        BlockProfileEntry e;
        e.pc = base_ + static_cast<Addr>(4 * w);
        e.entries = blockCount_[w];
        // Extent: run until past a terminator or up to the next word
        // that was itself entered as a block.
        std::size_t end = w;
        while (end < nwords_) {
            e.insts += counts[end];
            e.cycles += instCycles_[end];
            const Instruction &in = prog_->text[end];
            ++end;
            if (in.isControl() || in.isHalt())
                break;
            if (end < nwords_ && blockCount_[end] > 0)
                break;
        }
        e.words = static_cast<std::uint32_t>(end - w);
        out.push_back(e);
        w = end;
    }
    std::sort(out.begin(), out.end(),
              [](const BlockProfileEntry &a, const BlockProfileEntry &b) {
                  if (a.cycles != b.cycles)
                      return a.cycles > b.cycles;
                  if (a.insts != b.insts)
                      return a.insts > b.insts;
                  return a.pc < b.pc;
              });
    return out;
}

void
BlockProfiler::buildStats(StatSet &set) const
{
    StatGroup &g = set.group("prof");
    g.scalar("insts", "dynamic instructions profiled").set(totalInsts());
    g.scalar("block_entries", "basic-block entries recorded")
        .set(totalEntries_);
    std::uint64_t distinct = 0;
    for (std::uint64_t c : blockCount_)
        distinct += c > 0 ? 1 : 0;
    g.scalar("distinct_blocks", "distinct block entry points seen")
        .set(distinct);
    g.scalar("distinct_edges", "distinct block->block edges seen")
        .set(static_cast<std::uint64_t>(edges_.size()));
    g.scalar("attributed_cycles",
             "cycles attributed to instructions by the timing pipelines")
        .set(attributedCycles_);
    g.scalar("unattributed_cycles",
             "idle / DVS-software cycles outside any instruction")
        .set(unattributedCycles_);
    g.scalar("checkpoints", "checkpoint observations recorded")
        .set(static_cast<std::uint64_t>(checkpoints_.size()));
    g.scalar("aet_cycles_total", "sum of reported sub-task AETs")
        .set(aetTotal_);
}

namespace
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

struct SubtaskAgg
{
    std::uint64_t n = 0;
    std::uint64_t aetSum = 0, petSum = 0, wcetSum = 0;
    std::uint64_t aetMin = ~0ULL, aetMax = 0;
    std::uint64_t slackSum = 0, slackMin = ~0ULL;
};

} // anonymous namespace

void
BlockProfiler::writeJson(std::ostream &os) const
{
    os << "{\n\"schema\":" << traceSchemaVersion
       << ",\n\"kind\":\"visa-profile\",\n";
    os << "\"text_base\":" << base_ << ",\"text_words\":" << nwords_
       << ",\n";
    os << "\"total\":{\"insts\":" << totalInsts()
       << ",\"block_entries\":" << totalEntries_
       << ",\"attributed_cycles\":" << attributedCycles_
       << ",\"unattributed_cycles\":" << unattributedCycles_
       << ",\"aet_cycles_total\":" << aetTotal_
       << ",\"checkpoints\":" << checkpoints_.size() << "},\n";

    // Per-phase cycle totals (index 0 = outside any sub-task).
    os << "\"phases\":[";
    for (std::size_t i = 0; i < phaseCycles_.size(); ++i) {
        os << (i ? "," : "") << "{\"subtask\":" << i << ",\"cycles\":"
           << phaseCycles_[i] << "}";
    }
    os << "],\n";

    // Block table, hottest first, with disassembly.
    os << "\"blocks\":[\n";
    bool first = true;
    for (const BlockProfileEntry &b : blocks()) {
        os << (first ? "" : ",\n");
        first = false;
        os << "{\"pc\":" << b.pc << ",\"words\":" << b.words
           << ",\"entries\":" << b.entries << ",\"insts\":" << b.insts
           << ",\"cycles\":" << b.cycles << ",\"disasm\":[";
        for (std::uint32_t i = 0; i < b.words; ++i) {
            const Addr pc = b.pc + 4 * i;
            os << (i ? "," : "");
            jsonEscape(os, disassemble(prog_->at(pc), pc));
        }
        os << "]}";
    }
    os << "\n],\n";

    // Edge list (from == -1 encodes the profiling-start pseudo block).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> edges(
        edges_.begin(), edges_.end());
    std::sort(edges.begin(), edges.end());
    os << "\"edges\":[\n";
    first = true;
    for (const auto &[key, count] : edges) {
        const std::uint32_t from = static_cast<std::uint32_t>(key >> 32);
        const std::uint32_t to = static_cast<std::uint32_t>(key);
        os << (first ? "" : ",\n");
        first = false;
        os << "{\"from\":";
        if (from == entryBlockId)
            os << -1;
        else
            os << base_ + 4 * static_cast<Addr>(from);
        os << ",\"to\":" << base_ + 4 * static_cast<Addr>(to)
           << ",\"count\":" << count << "}";
    }
    os << "\n],\n";

    // Checkpoint observations.
    os << "\"checkpoints\":[\n";
    first = true;
    for (const CheckpointRecord &r : checkpoints_) {
        os << (first ? "" : ",\n");
        first = false;
        os << "{\"subtask\":" << r.subtask << ",\"aet\":" << r.aet
           << ",\"pet\":" << r.pet << ",\"wcet\":" << r.wcet
           << ",\"freq\":" << r.freq << ",\"stamp\":" << r.stamp << "}";
    }
    os << "\n],\n";

    // Slack aggregates per sub-task plus headroom histograms per
    // frequency (10-percent buckets of (WCET - AET) / WCET).
    std::map<int, SubtaskAgg> agg;
    std::map<MHz, std::vector<std::uint64_t>> headroom;
    std::map<MHz, std::uint64_t> overruns;
    for (const CheckpointRecord &r : checkpoints_) {
        SubtaskAgg &a = agg[r.subtask];
        ++a.n;
        a.aetSum += r.aet;
        a.petSum += r.pet;
        a.wcetSum += r.wcet;
        a.aetMin = std::min(a.aetMin, r.aet);
        a.aetMax = std::max(a.aetMax, r.aet);
        const std::uint64_t slack = r.pet > r.aet ? r.pet - r.aet : 0;
        a.slackSum += slack;
        a.slackMin = std::min(a.slackMin, slack);
        if (r.wcet > 0) {
            auto &h = headroom[r.freq];
            if (h.empty())
                h.assign(10, 0);
            if (r.aet > r.wcet) {
                ++overruns[r.freq];
            } else {
                const double pct =
                    static_cast<double>(r.wcet - r.aet) /
                    static_cast<double>(r.wcet);
                std::size_t bucket =
                    static_cast<std::size_t>(pct * 10.0);
                if (bucket > 9)
                    bucket = 9;
                ++h[bucket];
            }
        }
    }
    os << "\"slack\":{\"subtasks\":[\n";
    first = true;
    for (const auto &[sub, a] : agg) {
        os << (first ? "" : ",\n");
        first = false;
        os << "{\"subtask\":" << sub << ",\"n\":" << a.n
           << ",\"aet_total\":" << a.aetSum
           << ",\"aet_min\":" << (a.n ? a.aetMin : 0)
           << ",\"aet_max\":" << a.aetMax
           << ",\"pet_total\":" << a.petSum
           << ",\"wcet_total\":" << a.wcetSum
           << ",\"slack_total\":" << a.slackSum
           << ",\"slack_min\":" << (a.n ? a.slackMin : 0) << "}";
    }
    os << "\n],\"headroom_hist\":[\n";
    first = true;
    for (const auto &[f, h] : headroom) {
        os << (first ? "" : ",\n");
        first = false;
        os << "{\"freq\":" << f << ",\"overruns\":" << overruns[f]
           << ",\"buckets_pct10\":[";
        for (std::size_t i = 0; i < h.size(); ++i)
            os << (i ? "," : "") << h[i];
        os << "]}";
    }
    os << "\n]},\n";

    // Bound side: per-frequency sub-task WCET rows and, when provided,
    // the analyzer's worst-case path charge breakdown.
    os << "\"wcet_bounds\":[\n";
    first = true;
    for (const auto &[f, row] : bounds_) {
        os << (first ? "" : ",\n");
        first = false;
        os << "{\"freq\":" << f << ",\"subtask_cycles\":[";
        for (std::size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << row[i];
        os << "]}";
    }
    os << "\n],\n\"wcet_attribution\":[\n";
    first = true;
    for (const SubtaskBound &sb : boundAttr_) {
        os << (first ? "" : ",\n");
        first = false;
        os << "{\"subtask\":" << sb.subtask << ",\"cycles\":" << sb.cycles
           << ",\"charges\":[";
        for (std::size_t i = 0; i < sb.charges.size(); ++i) {
            const BoundCharge &c = sb.charges[i];
            os << (i ? "," : "") << "{\"pc\":" << c.startPc
               << ",\"end_pc\":" << c.endPc << ",\"kind\":";
            jsonEscape(os, c.kind);
            os << ",\"count\":" << c.count << ",\"cycles\":" << c.cycles
               << "}";
        }
        os << "]}";
    }
    os << "\n]\n}\n";
}

void
BlockProfiler::writeChromeCounters(std::ostream &os) const
{
    os << "{\"schema\":" << traceSchemaVersion << ",\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const CheckpointRecord &r : checkpoints_) {
        const std::uint64_t slack = r.pet > r.aet ? r.pet - r.aet : 0;
        sep();
        os << "{\"name\":\"subtask_slack\",\"ph\":\"C\",\"ts\":" << r.stamp
           << ",\"pid\":0,\"args\":{\"s" << r.subtask << "\":" << slack
           << "}}";
        sep();
        os << "{\"name\":\"subtask_aet\",\"ph\":\"C\",\"ts\":" << r.stamp
           << ",\"pid\":0,\"args\":{\"s" << r.subtask << "\":" << r.aet
           << "}}";
        if (r.wcet > 0) {
            const double pct =
                r.aet >= r.wcet
                    ? 0.0
                    : 100.0 * static_cast<double>(r.wcet - r.aet) /
                          static_cast<double>(r.wcet);
            sep();
            os << "{\"name\":\"checkpoint_headroom_pct\",\"ph\":\"C\","
               << "\"ts\":" << r.stamp << ",\"pid\":0,\"args\":{\"s"
               << r.subtask << "\":" << static_cast<int>(pct) << "}}";
        }
    }
    os << "\n]}\n";
}

} // namespace visa::prof
