#include "sim/json.hh"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace visa::json
{

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        fatal("JSON object has no '%s' key", key.c_str());
    return *v;
}

void
Parser::fail(const char *what) const
{
    fatal("JSON parse error at offset %zu: %s", pos_, what);
}

void
Parser::skipSpace()
{
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
}

char
Parser::peek()
{
    skipSpace();
    if (pos_ >= text_.size())
        fail("unexpected end of input");
    return text_[pos_];
}

void
Parser::expect(char c)
{
    if (peek() != c)
        fail("unexpected character");
    ++pos_;
}

bool
Parser::consume(char c)
{
    if (pos_ < text_.size() && peek() == c) {
        ++pos_;
        return true;
    }
    return false;
}

Value
Parser::parse()
{
    Value v = parseValue();
    skipSpace();
    if (pos_ != text_.size())
        fail("trailing garbage after JSON value");
    return v;
}

Value
Parser::parseValue()
{
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't': case 'f': return parseBool();
      case 'n': return parseNull();
      default: return parseNumber();
    }
}

Value
Parser::parseObject()
{
    Value v;
    v.type = Value::Type::Object;
    expect('{');
    if (consume('}'))
        return v;
    do {
        Value key = parseString();
        expect(':');
        v.object.emplace_back(std::move(key.string), parseValue());
    } while (consume(','));
    expect('}');
    return v;
}

Value
Parser::parseArray()
{
    Value v;
    v.type = Value::Type::Array;
    expect('[');
    if (consume(']'))
        return v;
    do {
        v.array.push_back(parseValue());
    } while (consume(','));
    expect(']');
    return v;
}

Value
Parser::parseString()
{
    Value v;
    v.type = Value::Type::String;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
        char c = text_[pos_++];
        if (c == '\\') {
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'r': c = '\r'; break;
              case '"': case '\\': case '/': c = e; break;
              default: fail("unsupported escape");
            }
        }
        v.string.push_back(c);
    }
    expect('"');
    return v;
}

Value
Parser::parseBool()
{
    Value v;
    v.type = Value::Type::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
        v.boolean = true;
        pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
        v.boolean = false;
        pos_ += 5;
    } else {
        fail("bad literal");
    }
    return v;
}

Value
Parser::parseNull()
{
    if (text_.compare(pos_, 4, "null") != 0)
        fail("bad literal");
    pos_ += 4;
    Value v;
    return v;
}

Value
Parser::parseNumber()
{
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_])))
        ++pos_;
    if (pos_ == start)
        fail("expected a number");
    Value v;
    v.type = Value::Type::Number;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
}

Value
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    return Parser(text).parse();
}

} // namespace visa::json
