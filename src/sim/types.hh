/**
 * @file
 * Fundamental scalar types shared across the VISA simulator.
 */

#ifndef VISA_SIM_TYPES_HH
#define VISA_SIM_TYPES_HH

#include <cstdint>

namespace visa
{

/** A simulated clock cycle count. */
using Cycles = std::uint64_t;

/** Simulated wall-clock time in picoseconds (integral to avoid FP drift). */
using Picos = std::uint64_t;

/** A guest virtual/physical address (flat 32-bit space, widened). */
using Addr = std::uint32_t;

/** A guest machine word. */
using Word = std::uint32_t;

/** Clock frequency in MHz (DVS settings are whole MHz). */
using MHz = std::uint32_t;

/** Picoseconds per second, for frequency/time conversions. */
inline constexpr double picosPerSecond = 1e12;

/** Convert a cycle count at frequency @p f (MHz) to picoseconds. */
constexpr Picos
cyclesToPicos(Cycles c, MHz f)
{
    // One cycle at f MHz lasts 1e6/f ps.
    return static_cast<Picos>((c * 1000000ULL) / f);
}

/** Convert seconds to picoseconds. */
constexpr Picos
secondsToPicos(double s)
{
    return static_cast<Picos>(s * picosPerSecond);
}

/** Convert picoseconds to (fractional) milliseconds. */
constexpr double
picosToMillis(Picos p)
{
    return static_cast<double>(p) / 1e9;
}

} // namespace visa

#endif // VISA_SIM_TYPES_HH
