#include "sim/stats.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace visa
{

void
StatGroup::Distribution::sample(std::uint64_t v)
{
    ++_samples;
    _sum += v;
    if (v < _minSeen)
        _minSeen = v;
    if (v > _maxSeen)
        _maxSeen = v;
    if (_buckets.empty())
        return;
    std::uint64_t idx;
    if (v < _min) {
        idx = 0;
    } else {
        idx = (v - _min) / _bucketSize;
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
    }
    ++_buckets[idx];
}

double
StatGroup::Distribution::mean() const
{
    return _samples ? static_cast<double>(_sum) / _samples : 0.0;
}

void
StatGroup::Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _samples = 0;
    _sum = 0;
    _minSeen = UINT64_MAX;
    _maxSeen = 0;
}

StatGroup::Scalar &
StatGroup::scalar(const std::string &stat_name, std::string desc)
{
    auto [it, fresh] = _scalars.try_emplace(stat_name);
    if (fresh && !desc.empty())
        _descs[stat_name] = std::move(desc);
    return it->second;
}

StatGroup::Distribution &
StatGroup::distribution(const std::string &stat_name, std::string desc)
{
    auto [it, fresh] = _distributions.try_emplace(stat_name);
    if (fresh && !desc.empty())
        _descs[stat_name] = std::move(desc);
    return it->second;
}

void
StatGroup::formula(const std::string &stat_name,
                   std::function<double()> fn, std::string desc)
{
    _formulas[stat_name] = Formula{std::move(fn), std::move(desc)};
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[k, v] : _scalars) {
        os << _name << '.' << k << ' ' << v.value();
        auto d = _descs.find(k);
        if (d != _descs.end())
            os << " # " << d->second;
        os << '\n';
    }
    for (const auto &[k, f] : _formulas) {
        os << _name << '.' << k << ' ' << std::setprecision(6)
           << f.fn() << std::setprecision(6);
        if (!f.desc.empty())
            os << " # " << f.desc;
        os << '\n';
    }
    for (const auto &[k, d] : _distributions) {
        os << _name << '.' << k << ".samples " << d.samples() << '\n';
        os << _name << '.' << k << ".mean " << d.mean() << '\n';
        if (d.samples()) {
            os << _name << '.' << k << ".min " << d.minSeen() << '\n';
            os << _name << '.' << k << ".max " << d.maxSeen() << '\n';
        }
    }
}

void
StatGroup::resetAll()
{
    for (auto &[k, v] : _scalars)
        v.reset();
    for (auto &[k, d] : _distributions)
        d.reset();
}

} // namespace visa
