#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace visa
{

namespace
{

/** Formula results must stay plottable: nan/inf (zero denominators
 *  before any work happened) dump as 0. */
double
finiteOrZero(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

/** Print a double as a JSON-safe number. */
void
printJsonNumber(std::ostream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", finiteOrZero(v));
    os << buf;
}

void
indentBy(std::ostream &os, int depth)
{
    for (int i = 0; i < depth; ++i)
        os << "  ";
}

} // anonymous namespace

void
StatGroup::Distribution::sample(std::uint64_t v)
{
    ++_samples;
    _sum += v;
    if (v < _minSeen)
        _minSeen = v;
    if (v > _maxSeen)
        _maxSeen = v;
    if (_buckets.empty())
        return;
    std::uint64_t idx;
    if (v < _min) {
        // Below-range samples clamp into the first bucket.
        ++_underflows;
        idx = 0;
    } else if (v >= _max) {
        // At-or-beyond-range samples clamp into the explicit overflow
        // bucket (the last one).
        ++_overflows;
        idx = _buckets.size() - 1;
    } else {
        idx = (v - _min) / _bucketSize;
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
    }
    ++_buckets[idx];
}

double
StatGroup::Distribution::mean() const
{
    return _samples ? static_cast<double>(_sum) / _samples : 0.0;
}

void
StatGroup::Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _samples = 0;
    _sum = 0;
    _minSeen = UINT64_MAX;
    _maxSeen = 0;
    _underflows = 0;
    _overflows = 0;
}

StatGroup::Scalar &
StatGroup::scalar(const std::string &stat_name, std::string desc)
{
    auto [it, fresh] = _scalars.try_emplace(stat_name);
    if (fresh && !desc.empty())
        _descs[stat_name] = std::move(desc);
    return it->second;
}

StatGroup::Distribution &
StatGroup::distribution(const std::string &stat_name, std::string desc)
{
    auto [it, fresh] = _distributions.try_emplace(stat_name);
    if (fresh && !desc.empty())
        _descs[stat_name] = std::move(desc);
    return it->second;
}

void
StatGroup::formula(const std::string &stat_name,
                   std::function<double()> fn, std::string desc)
{
    _formulas[stat_name] = Formula{std::move(fn), std::move(desc)};
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[k, v] : _scalars) {
        os << _name << '.' << k << ' ' << v.value();
        auto d = _descs.find(k);
        if (d != _descs.end())
            os << " # " << d->second;
        os << '\n';
    }
    for (const auto &[k, f] : _formulas) {
        os << _name << '.' << k << ' ' << std::setprecision(6)
           << finiteOrZero(f.fn()) << std::setprecision(6);
        if (!f.desc.empty())
            os << " # " << f.desc;
        os << '\n';
    }
    for (const auto &[k, d] : _distributions) {
        os << _name << '.' << k << ".samples " << d.samples() << '\n';
        os << _name << '.' << k << ".mean " << d.mean() << '\n';
        if (d.samples()) {
            os << _name << '.' << k << ".min " << d.minSeen() << '\n';
            os << _name << '.' << k << ".max " << d.maxSeen() << '\n';
        }
        if (d.underflows())
            os << _name << '.' << k << ".underflows " << d.underflows()
               << '\n';
        if (d.overflows())
            os << _name << '.' << k << ".overflows " << d.overflows()
               << '\n';
    }
}

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    os << "{\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[k, v] : _scalars) {
        sep();
        indentBy(os, indent + 1);
        os << '"' << k << "\": " << v.value();
    }
    for (const auto &[k, f] : _formulas) {
        sep();
        indentBy(os, indent + 1);
        os << '"' << k << "\": ";
        printJsonNumber(os, f.fn());
    }
    for (const auto &[k, d] : _distributions) {
        sep();
        indentBy(os, indent + 1);
        os << '"' << k << "\": {\"samples\": " << d.samples()
           << ", \"mean\": ";
        printJsonNumber(os, d.mean());
        if (d.samples())
            os << ", \"min\": " << d.minSeen()
               << ", \"max\": " << d.maxSeen();
        os << ", \"underflows\": " << d.underflows()
           << ", \"overflows\": " << d.overflows()
           << ", \"range_min\": " << d.rangeMin()
           << ", \"range_max\": " << d.rangeMax()
           << ", \"bucket_size\": " << d.bucketSize() << ", \"buckets\": [";
        const auto &buckets = d.buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i)
            os << (i ? "," : "") << buckets[i];
        os << "]}";
    }
    os << '\n';
    indentBy(os, indent);
    os << '}';
}

void
StatGroup::resetAll()
{
    for (auto &[k, v] : _scalars)
        v.reset();
    for (auto &[k, d] : _distributions)
        d.reset();
}

StatGroup &
StatSet::group(const std::string &name)
{
    for (auto &g : _groups)
        if (g.name() == name)
            return g;
    _groups.emplace_back(name);
    return _groups.back();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &g : _groups)
        g.dump(os);
}

namespace
{

/** One node of the dotted-name hierarchy built by StatSet::dumpJson. */
struct JsonNode
{
    std::map<std::string, JsonNode> children;
    const StatGroup *group = nullptr;
};

void
emitNode(std::ostream &os, const JsonNode &node, int depth)
{
    if (node.group && node.children.empty()) {
        node.group->dumpJson(os, depth);
        return;
    }
    os << "{\n";
    bool first = true;
    // A node holding both a group and children ("cpu" and "cpu.x")
    // inlines the group's stats before the child objects.
    if (node.group) {
        // Render the group into the same object by re-emitting its
        // body: simplest is a nested "self" key, which keeps keys
        // collision-free and the schema predictable.
        indentBy(os, depth + 1);
        os << "\"self\": ";
        node.group->dumpJson(os, depth + 1);
        first = false;
    }
    for (const auto &[name, child] : node.children) {
        if (!first)
            os << ",\n";
        first = false;
        indentBy(os, depth + 1);
        os << '"' << name << "\": ";
        emitNode(os, child, depth + 1);
    }
    os << '\n';
    indentBy(os, depth);
    os << '}';
}

} // anonymous namespace

void
StatSet::dumpJson(std::ostream &os) const
{
    JsonNode root;
    for (const auto &g : _groups) {
        JsonNode *node = &root;
        const std::string &name = g.name();
        std::size_t start = 0;
        while (start <= name.size()) {
            std::size_t dot = name.find('.', start);
            std::string part = name.substr(
                start, dot == std::string::npos ? std::string::npos
                                                : dot - start);
            node = &node->children[part];
            if (dot == std::string::npos)
                break;
            start = dot + 1;
        }
        if (node->group)
            warn("duplicate stats group '%s' in JSON export",
                 name.c_str());
        node->group = &g;
    }
    // The root object carries the document's schema version (shared
    // with the trace exports; see TESTING.md).
    os << "{\n  \"schema\": " << traceSchemaVersion;
    for (const auto &[name, child] : root.children) {
        os << ",\n";
        indentBy(os, 1);
        os << '"' << name << "\": ";
        emitNode(os, child, 1);
    }
    os << "\n}\n";
}

} // namespace visa
